(** Events for Event-Driven Boolean Functions (Section 4.2).

    An event is an ordered list of enable predicates; [η(E)] denotes the
    most recent instant after which the predicates fired in order.  Here a
    predicate is represented {e semantically}: as a BDD over
    [(source, shift)] variables, where a source is a primary input or latch
    output {e name} (names of latch outputs are preserved by the synthesis
    passes, and enabled circuits are not retimed — matching the paper's
    experimental setup).  Two circuits being compared must share one
    {!table} so that equal predicates receive equal identities.

    The table optionally applies the paper's rewrite rule (5): when pushing
    predicate [p] onto an event whose head predicate [q] satisfies
    [q ⇒ p], the push is the identity ([η[p,·] = η[·]]) — this removes the
    Fig. 10 class of false negatives.  Disable it to measure the effect
    (the ablation of DESIGN.md). *)

type table

type event = int
(** Hash-consed event identity; equal ids = equal events. *)

val create : ?rewrite:bool -> unit -> table
(** A fresh shared table ([rewrite] defaults to [true]). *)

val man : table -> Bdd.man
(** The BDD manager in which predicates live. *)

val empty : event

val pred_var : table -> source:string -> shift:int -> Bdd.t
(** The predicate variable for [source] delayed by [shift] cycles. *)

val push : table -> pred:Bdd.t -> event -> event
(** [push t ~pred e] is the event [pred :: e], normalized by rule (5) when
    enabled. *)

val elements : table -> event -> Bdd.t list
(** Predicates of the event, most recent first. *)

val count : table -> int
(** Number of distinct events interned so far. *)

val to_string : table -> event -> string
(** Stable, human-readable key (used in unrolled variable names). *)

val var_source : table -> int -> string * int
(** [(source, shift)] behind a predicate-BDD variable index.
    @raise Not_found for unknown indices. *)

val decompose : table -> event -> (Bdd.t * event) option
(** [decompose t e] is [Some (head_predicate, tail_event)] for a non-empty
    event, [None] for {!empty}. *)
