(** The sequential-verification problem IR.

    The paper's whole contribution is a reduction: a sequential
    equivalence question becomes {e one} combinational miter (Fig. 18).
    This module is that miter as a first-class value — the single currency
    handed between the unrollers ({!Cbf}, {!Edbf}), the combinational
    engines ({!Cec}) and the counterexample machinery ({!Verify}):

    - a {e typed} variable universe ({!Var}): every unrolled input is a
      [(base, index)] pair, where the index is a time frame (CBF) or an
      event-qualified shift (EDBF).  Nothing downstream ever parses a
      name string like ["x@3"] again — names exist only for printing.
    - one {e shared, structurally hashed} AIG holding both sides' output
      cones over the united variable array.  Logic replicated across time
      frames, and logic shared between the two sides, is built once.
    - a typed {!diagnosis} channel enumerating the real failure modes of
      the pipeline, replacing [Invalid_argument] plumbing end to end. *)

(** Typed time-frame / event-frame variables. *)
module Var : sig
  type index =
    | Time of int
        (** CBF variable: the source sampled [d] cycles before the
            evaluation instant ([Time 0] = now). *)
    | At of { shift : int; event : Events.event }
        (** EDBF variable: the source sampled [shift] cycles before the
            instant denoted by [event] (from the check's shared
            {!Events.table}). *)

  type t = { base : string; index : index }
  (** [base] is the source name in the original circuit (a primary input
      or an exposed latch output). *)

  val time : string -> int -> t
  val at : string -> shift:int -> event:Events.event -> t

  val delay : t -> int
  (** The time component ([d] or [shift]). *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val to_string : t -> string
  (** Canonical printable form, stable for BLIF/debug dumps:
      ["base@d"] for [Time d], ["base@d~eN"] for [At {shift = d; event = N}].
      {!of_string} inverts it ([of_string (to_string v) = v]) even when
      [base] itself contains ['@']. *)

  val of_string : string -> t
  (** Parses the {!to_string} form (splitting at the {e last} ['@']).  A
      string with no parseable index suffix is read as [{base = s; index =
      Time 0}] — convenient for wrapping plain combinational inputs. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Diagnoses}

    The enumerated failure modes of the whole reduction pipeline.  Every
    stage returns [('a, diagnosis) result]; nothing user-reachable raises
    [Invalid_argument] for these anymore. *)

type diagnosis =
  | Non_exposed_cycle of { circuit : string; signal : string }
      (** A sequential cycle with no exposed latch on it: the circuit has
          no CBF/EDBF (Section 3's acyclicity requirement). *)
  | Hidden_enabled_latch of { circuit : string; latch : string }
      (** A load-enabled latch where only regular latches are supported
          (e.g. the retiming-based optimizing flow, matching the paper's
          experimental setup). *)
  | Infeasible_period of { circuit : string; period : int }
      (** The requested clock period is below the minimum feasible
          period of the retiming graph. *)
  | Output_arity_mismatch of { left : int; right : int }
      (** The two sides expose different numbers of outputs — they cannot
          be positionally compared. *)
  | No_such_latch of { circuit : string; name : string }
      (** An [exposed] name that is missing from the circuit, or present
          but not a latch output. *)

val pp_diagnosis : Format.formatter -> diagnosis -> unit
val diagnosis_to_string : diagnosis -> string

exception Error of diagnosis
(** Internal unwinding convenience for the recursive unrollers; public
    entry points catch it and return [Error _].  It escapes only from
    functions documented to raise on broken internal invariants. *)

(** {1 The problem} *)

type t = {
  graph : Aig.t;  (** shared structurally-hashed AIG, both sides *)
  vars : Var.t array;  (** AIG input index -> variable *)
  outs1 : Aig.lit list;  (** side 1 output cones, positional *)
  outs2 : Aig.lit list;  (** side 2 output cones, positional *)
}

val and_nodes : t -> int
(** AND nodes in the shared graph (the unrolled miter size). *)

val side_replication : t -> int * int
(** AND nodes reachable from each side's outputs (shared nodes count for
    both sides — the overlap is the sharing the IR buys). *)

val cex_is_valid : t -> (Var.t * bool) list -> bool
(** Evaluates both sides under the assignment (unlisted variables are
    [false]) and checks that some positional output pair differs. *)

(** {1 Building}

    A [builder] owns the AIG and the variable interning table.  The two
    unrollers write into one shared builder so that equal variables become
    the {e same} AIG input and shared logic hashes together. *)

type builder

val builder : unit -> builder
val graph : builder -> Aig.t

val var_lit : builder -> Var.t -> Aig.lit
(** The AIG input literal for a variable, interning on first use. *)

val var_count : builder -> int

val builder_vars : builder -> Var.t array
(** Snapshot of the interned variables in input-creation order (what
    {!problem} will freeze into [vars]). *)

val problem :
  builder -> outs1:Aig.lit list -> outs2:Aig.lit list -> (t, diagnosis) result
(** Seals the builder.  [Error (Output_arity_mismatch _)] when the sides
    disagree on output count. *)

val of_circuits : Circuit.t -> Circuit.t -> (t, diagnosis) result
(** Wraps two {e combinational} circuits as a problem: inputs are matched
    by name across the two circuits (each name becomes the variable
    [{base = name; index = Time 0}]; the universe is the union of both
    input sets), outputs by position.  This is the thin compatibility
    shim under the [Circuit.t] entry points of {!Cec}. *)
