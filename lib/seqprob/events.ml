type event = int

type table = {
  bman : Bdd.man;
  rewrite : bool;
  vars : (string * int, int) Hashtbl.t; (* (source, shift) -> bdd var index *)
  interned : (int list, int) Hashtbl.t; (* predicate-id list -> event id *)
  contents : int list Vgraph.Vec.t; (* event id -> predicate-id list *)
  pred_ids : (int, Bdd.t) Hashtbl.t; (* canonical BDD id -> handle *)
}

(* Predicate identity: BDD nodes are hash-consed, so the BDD handle itself
   (an int) is a canonical id. *)

let create ?(rewrite = true) () =
  let t =
    {
      bman = Bdd.man ();
      rewrite;
      vars = Hashtbl.create 64;
      interned = Hashtbl.create 64;
      contents = Vgraph.Vec.create ~dummy:[] ();
      pred_ids = Hashtbl.create 256;
    }
  in
  ignore (Vgraph.Vec.push t.contents []); (* event 0 = empty *)
  Hashtbl.replace t.interned [] 0;
  t

let man t = t.bman

let empty = 0

let pred_var t ~source ~shift =
  let key = (source, shift) in
  let idx =
    match Hashtbl.find_opt t.vars key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length t.vars in
        Hashtbl.replace t.vars key i;
        i
  in
  Bdd.var t.bman idx

(* We need a stable int per distinct predicate BDD.  The BDD handle is such
   an int already (hash-consing), so store lists of raw handles. *)
let intern t lst =
  match Hashtbl.find_opt t.interned lst with
  | Some id -> id
  | None ->
      let id = Vgraph.Vec.push t.contents lst in
      Hashtbl.replace t.interned lst id;
      id

(* Predicate identity: hash-consed BDD ids are canonical per manager, and
   every table owns its manager. *)
let pred_key t (b : Bdd.t) : int =
  let k = Bdd.id b in
  Hashtbl.replace t.pred_ids k b;
  k

let pred_of_key t k = Hashtbl.find t.pred_ids k

let push t ~pred e =
  let lst = Vgraph.Vec.get t.contents e in
  let keep_existing =
    t.rewrite
    &&
    match lst with
    | [] -> false
    | qk :: _ ->
        let q = pred_of_key t qk in
        (* rule (5): q ⇒ p makes the new head redundant *)
        Bdd.leq t.bman q pred
  in
  if keep_existing then e else intern t (pred_key t pred :: lst)

let elements t e = List.map (pred_of_key t) (Vgraph.Vec.get t.contents e)

let count t = Vgraph.Vec.length t.contents

let to_string t e =
  let lst = Vgraph.Vec.get t.contents e in
  match lst with
  | [] -> "now"
  | lst -> String.concat "." (List.map string_of_int lst)

let var_source t i =
  let found = ref None in
  Hashtbl.iter (fun k v -> if v = i then found := Some k) t.vars;
  match !found with Some k -> k | None -> raise Not_found

let decompose t e =
  match Vgraph.Vec.get t.contents e with
  | [] -> None
  | hd :: tl -> Some (pred_of_key t hd, intern t tl)
