module Var = struct
  type index = Time of int | At of { shift : int; event : Events.event }
  type t = { base : string; index : index }

  let time base d = { base; index = Time d }
  let at base ~shift ~event = { base; index = At { shift; event } }
  let delay v = match v.index with Time d -> d | At { shift; _ } -> shift
  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = Stdlib.compare a b

  let to_string v =
    match v.index with
    | Time d -> Printf.sprintf "%s@%d" v.base d
    | At { shift; event } -> Printf.sprintf "%s@%d~e%d" v.base shift event

  let of_string s =
    let fallback = { base = s; index = Time 0 } in
    match String.rindex_opt s '@' with
    | None -> fallback
    | Some i -> (
        let base = String.sub s 0 i in
        let suffix = String.sub s (i + 1) (String.length s - i - 1) in
        match String.index_opt suffix '~' with
        | None -> (
            match int_of_string_opt suffix with
            | Some d -> { base; index = Time d }
            | None -> fallback)
        | Some j -> (
            let shift = String.sub suffix 0 j in
            let ev = String.sub suffix (j + 1) (String.length suffix - j - 1) in
            match (int_of_string_opt shift, ev) with
            | Some shift, ev
              when String.length ev > 1
                   && ev.[0] = 'e'
                   && int_of_string_opt (String.sub ev 1 (String.length ev - 1))
                      <> None ->
                let event =
                  Option.get
                    (int_of_string_opt (String.sub ev 1 (String.length ev - 1)))
                in
                { base; index = At { shift; event } }
            | _ -> fallback))

  let pp ppf v = Format.pp_print_string ppf (to_string v)
end

type diagnosis =
  | Non_exposed_cycle of { circuit : string; signal : string }
  | Hidden_enabled_latch of { circuit : string; latch : string }
  | Infeasible_period of { circuit : string; period : int }
  | Output_arity_mismatch of { left : int; right : int }
  | No_such_latch of { circuit : string; name : string }

let pp_diagnosis ppf = function
  | Non_exposed_cycle { circuit; signal } ->
      Format.fprintf ppf
        "circuit %s: sequential cycle through %s has no exposed latch (no \
         CBF/EDBF exists)"
        circuit signal
  | Hidden_enabled_latch { circuit; latch } ->
      Format.fprintf ppf
        "circuit %s: latch %s is load-enabled; only regular latches are \
         supported here"
        circuit latch
  | Infeasible_period { circuit; period } ->
      Format.fprintf ppf "circuit %s: no retiming achieves clock period %d"
        circuit period
  | Output_arity_mismatch { left; right } ->
      Format.fprintf ppf
        "output counts differ (%d vs %d): sides cannot be compared \
         positionally"
        left right
  | No_such_latch { circuit; name } ->
      Format.fprintf ppf "circuit %s: no latch named %s" circuit name

let diagnosis_to_string d = Format.asprintf "%a" pp_diagnosis d

exception Error of diagnosis

type t = {
  graph : Aig.t;
  vars : Var.t array;
  outs1 : Aig.lit list;
  outs2 : Aig.lit list;
}

let and_nodes p = Aig.and_count p.graph

let cone_and_count g roots =
  let seen = Array.make (Aig.node_count g) false in
  let cnt = ref 0 in
  let rec visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      if n > 0 && not (Aig.is_input_node g n) then begin
        incr cnt;
        let f0, f1 = Aig.fanins g n in
        visit (Aig.node_of f0);
        visit (Aig.node_of f1)
      end
    end
  in
  List.iter (fun l -> visit (Aig.node_of l)) roots;
  !cnt

let side_replication p =
  (cone_and_count p.graph p.outs1, cone_and_count p.graph p.outs2)

let cex_is_valid p cex =
  let idx = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) p.vars;
  let words = Array.make (Array.length p.vars) 0L in
  List.iter
    (fun (v, b) ->
      match Hashtbl.find_opt idx v with
      | Some i -> words.(i) <- (if b then -1L else 0L)
      | None -> ())
    cex;
  let vals = Aig.simulate p.graph words in
  List.exists2
    (fun a b ->
      Int64.logand (Int64.logxor (Aig.sim_lit vals a) (Aig.sim_lit vals b)) 1L
      = 1L)
    p.outs1 p.outs2

type builder = {
  g : Aig.t;
  tbl : (Var.t, Aig.lit) Hashtbl.t;
  mutable rev_vars : Var.t list;
  mutable n : int;
}

let builder () =
  { g = Aig.create (); tbl = Hashtbl.create 256; rev_vars = []; n = 0 }

let graph b = b.g

let var_lit b v =
  match Hashtbl.find_opt b.tbl v with
  | Some l -> l
  | None ->
      let l = Aig.input b.g in
      Hashtbl.add b.tbl v l;
      b.rev_vars <- v :: b.rev_vars;
      b.n <- b.n + 1;
      l

let var_count b = b.n
let builder_vars b = Array.of_list (List.rev b.rev_vars)

let problem b ~outs1 ~outs2 =
  let left = List.length outs1 and right = List.length outs2 in
  if left <> right then Result.Error (Output_arity_mismatch { left; right })
  else
    Ok { graph = b.g; vars = Array.of_list (List.rev b.rev_vars); outs1; outs2 }

let of_circuits c1 c2 =
  let b = builder () in
  let compile c =
    let env =
      Aig.of_circuit_comb b.g c ~source:(fun s ->
          var_lit b (Var.time (Circuit.signal_name c s) 0))
    in
    List.map (fun s -> env.Aig.of_signal.(s)) (Circuit.outputs c)
  in
  let outs1 = compile c1 in
  let outs2 = compile c2 in
  problem b ~outs1 ~outs2
