type metrics = { latches : int; area : int; delay : int }

type row = {
  name : string;
  a : metrics;
  exposed : int;
  exposed_percent : float;
  b : metrics;
  c : metrics;
  d : metrics;
  e : metrics;
  f : metrics;
  g : metrics;
  verify_seconds : float;
  verify_verdict : Verify.verdict;
  verify_stats : Verify.stats;
}

(* Area in unit-gate equivalents, counting a latch cell as 4 units (the
   paper's "active area" from the mapper includes the latch cells, which is
   what makes its area ratios move when retiming changes latch counts). *)
let latch_area = 4

let metrics_of c =
  {
    latches = Circuit.latch_count c;
    area = Circuit.area c + (latch_area * Circuit.latch_count c);
    delay = Circuit.delay c;
  }

(* B: copy of A with the exposed latch outputs added to the primary outputs
   (made observable), so synthesis cannot remove them. *)
let make_b a exposed_names =
  let b = Circuit.copy ~name:(Circuit.name a ^ "_B") a in
  List.iter
    (fun n ->
      match Circuit.find_signal b n with
      | Some s -> if not (Circuit.is_output b s) then Circuit.mark_output b s
      | None -> assert false)
    exposed_names;
  b

let exposed_pred c names =
  let set = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match Circuit.find_signal c n with
      | Some s -> Hashtbl.replace set s ()
      | None -> ())
    names;
  fun s -> Hashtbl.mem set s

let optimize_c ~exposed_names b =
  let sy = Synth_script.delay_script b in
  let rt, _ = Retime.min_period ~exposed:(exposed_pred sy exposed_names) sy in
  rt

let optimize_e ~exposed_names ~period b =
  let sy = Synth_script.delay_script b in
  let exposed = exposed_pred sy exposed_names in
  try
    let rt, _ = Retime.constrained_min_area ~exposed ~period sy in
    rt
  with Invalid_argument _ ->
    (* the requested period is below B's minimum: fall back to min-period *)
    let rt, _ = Retime.min_period ~exposed sy in
    rt

let circuits ?engine:_ a =
  let plan = Feedback.plan_structural a in
  let exposed_names = List.map (Circuit.signal_name a) plan.Feedback.exposed in
  let b = make_b a exposed_names in
  (b, optimize_c ~exposed_names b)

let run ?engine ?jobs ?cache ?(skip_verify = false) a =
  Circuit.check a;
  let plan = Feedback.plan_structural a in
  let exposed_names = List.map (Circuit.signal_name a) plan.Feedback.exposed in
  let b = make_b a exposed_names in
  let d = Synth_script.delay_script a in
  let period_d = Circuit.delay d in
  let c = optimize_c ~exposed_names b in
  let e = optimize_e ~exposed_names ~period:period_d b in
  let f = optimize_c ~exposed_names:[] (Circuit.copy ~name:(Circuit.name a ^ "_F") a) in
  let g =
    optimize_e ~exposed_names:[] ~period:period_d
      (Circuit.copy ~name:(Circuit.name a ^ "_G") a)
  in
  let nl = Circuit.latch_count a in
  let verdict, stats =
    if skip_verify then
      ( Verify.Equivalent,
        {
          Verify.method_ = Verify.Cbf_method;
          depth = 0;
          variables = 0;
          events = 0;
          unrolled_gates = (0, 0);
          cec_sat_calls = 0;
          cec = Cec.empty_stats;
          seconds = 0.;
        } )
    else Verify.check ?engine ?jobs ?cache ~exposed:exposed_names b c
  in
  {
    name = Circuit.name a;
    a = metrics_of a;
    exposed = List.length exposed_names;
    exposed_percent =
      (if nl = 0 then 0. else 100. *. float_of_int (List.length exposed_names) /. float_of_int nl);
    b = metrics_of b;
    c = metrics_of c;
    d = metrics_of d;
    e = metrics_of e;
    f = metrics_of f;
    g = metrics_of g;
    verify_seconds = stats.Verify.seconds;
    verify_verdict = verdict;
    verify_stats = stats;
  }

let exposure_report c =
  let total = Circuit.latch_count c in
  let structural = List.length (Feedback.plan_structural c).Feedback.exposed in
  let functional = List.length (Feedback.plan_functional c).Feedback.exposed in
  (total, structural, functional)
