type metrics = { latches : int; area : int; delay : int }

type row = {
  name : string;
  a : metrics;
  exposed : int;
  exposed_percent : float;
  b : metrics;
  c : metrics;
  d : metrics;
  e : metrics;
  f : metrics;
  g : metrics;
  verify_seconds : float;
  verify_verdict : Verify.verdict;
  verify_stats : Verify.stats;
  stage_seconds : (string * float) list;
}

let ( let* ) = Result.bind

(* Area in unit-gate equivalents, counting a latch cell as 4 units (the
   paper's "active area" from the mapper includes the latch cells, which is
   what makes its area ratios move when retiming changes latch counts). *)
let latch_area = 4

let metrics_of c =
  {
    latches = Circuit.latch_count c;
    area = Circuit.area c + (latch_area * Circuit.latch_count c);
    delay = Circuit.delay c;
  }

(* B: copy of A with the exposed latch outputs added to the primary outputs
   (made observable), so synthesis cannot remove them. *)
let make_b a exposed_names =
  let b = Circuit.copy ~name:(Circuit.name a ^ "_B") a in
  List.iter
    (fun n ->
      match Circuit.find_signal b n with
      | Some s -> if not (Circuit.is_output b s) then Circuit.mark_output b s
      | None -> assert false)
    exposed_names;
  b

(* The min-period and min-area stages of each pair (C/E, F/G) run on the
   same synthesized netlist, so the synthesis (and its exposure predicate)
   is computed once per pair and shared. *)
let synth_for_retime ~exposed_names b =
  let sy = Synth_script.delay_script b in
  let* exposed = Verify.exposed_pred sy exposed_names in
  Ok (sy, exposed)

let min_period_on ?pool (sy, exposed) = fst (Retime.min_period ~exposed ?pool sy)

let min_area_on ?pool ~period ~fallback (sy, exposed) =
  match Retime.constrained_min_area ~exposed ?pool ~period sy with
  | Ok (rt, _) -> Ok rt
  | Error Retime.Infeasible_period ->
      if fallback then
        (* the default target (D's delay) can sit below B's minimum: degrade
           to the best achievable period *)
        Ok (fst (Retime.min_period ~exposed ?pool sy))
      else
        Error
          (Seqprob.Infeasible_period { circuit = Circuit.name sy; period })

let optimize_c ?pool ~exposed_names b =
  let* sy = synth_for_retime ~exposed_names b in
  Ok (min_period_on ?pool sy)

let regular_latches_only a =
  match
    List.find_opt
      (fun l -> snd (Circuit.latch_info a l) <> None)
      (Circuit.latches a)
  with
  | None -> Ok ()
  | Some l ->
      Error
        (Seqprob.Hidden_enabled_latch
           { circuit = Circuit.name a; latch = Circuit.signal_name a l })

let circuits ?engine:_ a =
  let* () = regular_latches_only a in
  let plan = Feedback.plan_structural a in
  let exposed_names = List.map (Circuit.signal_name a) plan.Feedback.exposed in
  let b = make_b a exposed_names in
  let* c = optimize_c ~exposed_names b in
  Ok (b, c)

let run ?engine ?jobs ?limits ?cache ?store ?period ?(skip_verify = false) a =
  Obs.span ~name:"flow.run"
    ~attrs:[ ("circuit", Obs.String (Circuit.name a)) ]
  @@ fun () ->
  Circuit.check a;
  let* () = regular_latches_only a in
  (* the retime stages share one domain pool with the verification sweep's
     [?jobs] budget; [None] (or jobs <= 1) keeps them sequential *)
  let pool =
    match jobs with
    | Some j when j > 1 -> Some (Par.Pool.create ~jobs:j)
    | Some _ | None -> None
  in
  Fun.protect ~finally:(fun () ->
      match pool with Some p -> Par.Pool.shutdown p | None -> ())
  @@ fun () ->
  let stages = ref [] in
  (* one span per flow stage; the measured wall clock also lands in the
     row's [stage_seconds] so callers get per-phase times without a sink *)
  let stage name f =
    let r, dt = Obs.timed_span ~name:("flow." ^ name) f in
    stages := (name, dt) :: !stages;
    r
  in
  let plan = Feedback.plan_structural a in
  let exposed_names = List.map (Circuit.signal_name a) plan.Feedback.exposed in
  let b = stage "B" (fun () -> make_b a exposed_names) in
  let d = stage "D" (fun () -> Synth_script.delay_script a) in
  let period_d = Circuit.delay d in
  (* a user-supplied period is a hard constraint; the default (D's delay)
     degrades to min-period when infeasible *)
  let target, fallback =
    match period with Some p -> (p, false) | None -> (period_d, true)
  in
  (* C synthesizes [b] and E reuses that netlist (same for F/G on the bare
     copy of [a]); each stage's clock still covers the work it performs *)
  let* c, syb =
    stage "C" (fun () ->
        let* sy = synth_for_retime ~exposed_names b in
        Ok (min_period_on ?pool sy, sy))
  in
  let* e = stage "E" (fun () -> min_area_on ?pool ~period:target ~fallback syb) in
  let* f, sya =
    stage "F" (fun () ->
        let* sy =
          synth_for_retime ~exposed_names:[]
            (Circuit.copy ~name:(Circuit.name a ^ "_F") a)
        in
        Ok (min_period_on ?pool sy, sy))
  in
  let* g = stage "G" (fun () -> min_area_on ?pool ~period:target ~fallback sya) in
  let nl = Circuit.latch_count a in
  let* outcome =
    if skip_verify then
      Ok
        {
          Verify.verdict = Verify.Equivalent;
          stats =
            {
              Verify.method_ = Verify.Cbf_method;
              depth = 0;
              variables = 0;
              events = 0;
              unrolled_nodes = 0;
              unrolled_gates = (0, 0);
              cec = Cec.empty_stats;
              unroll_seconds = 0.;
              seconds = 0.;
            };
        }
    else
      stage "verify" (fun () ->
          Verify.check ?engine ?jobs ?limits ?cache ?store
            ~exposed:exposed_names b c)
  in
  Ok
    {
      name = Circuit.name a;
      a = metrics_of a;
      exposed = List.length exposed_names;
      exposed_percent =
        (if nl = 0 then 0.
         else
           100.
           *. float_of_int (List.length exposed_names)
           /. float_of_int nl);
      b = metrics_of b;
      c = metrics_of c;
      d = metrics_of d;
      e = metrics_of e;
      f = metrics_of f;
      g = metrics_of g;
      verify_seconds = outcome.Verify.stats.Verify.seconds;
      verify_verdict = outcome.Verify.verdict;
      verify_stats = outcome.Verify.stats;
      stage_seconds = List.rev !stages;
    }

(* Paired baseline for the bench's retime-speedup column: the same C/E/F/G
   retiming work routed through the retained reference pipeline (per-stage
   re-synthesis, naive cold-start FEAS bisection, unpruned W/D constraints,
   pre-scaling flow core).  Returns the summed wall clock of the four
   stages. *)
let reference_retime_seconds ?period a =
  let* () = regular_latches_only a in
  let plan = Feedback.plan_structural a in
  let exposed_names = List.map (Circuit.signal_name a) plan.Feedback.exposed in
  let b = make_b a exposed_names in
  let target, fallback =
    match period with
    | Some p -> (p, false)
    | None -> (Circuit.delay (Synth_script.delay_script a), true)
  in
  let total = ref 0. in
  let stage f =
    let r, dt = Obs.timed_span ~name:"flow.retime_reference" f in
    total := !total +. dt;
    r
  in
  let min_period_ref ~exposed_names b =
    let sy = Synth_script.delay_script b in
    let* exposed = Verify.exposed_pred sy exposed_names in
    Ok (fst (Retime.min_period_reference ~exposed sy))
  in
  let min_area_ref ~exposed_names b =
    let sy = Synth_script.delay_script b in
    let* exposed = Verify.exposed_pred sy exposed_names in
    match Retime.constrained_min_area_reference ~exposed ~period:target sy with
    | Ok (rt, _) -> Ok rt
    | Error Retime.Infeasible_period ->
        if fallback then Ok (fst (Retime.min_period_reference ~exposed sy))
        else
          Error
            (Seqprob.Infeasible_period
               { circuit = Circuit.name b; period = target })
  in
  let* (_ : Circuit.t) = stage (fun () -> min_period_ref ~exposed_names b) in
  let* (_ : Circuit.t) = stage (fun () -> min_area_ref ~exposed_names b) in
  let* (_ : Circuit.t) =
    stage (fun () ->
        min_period_ref ~exposed_names:[]
          (Circuit.copy ~name:(Circuit.name a ^ "_Fref") a))
  in
  let* (_ : Circuit.t) =
    stage (fun () ->
        min_area_ref ~exposed_names:[]
          (Circuit.copy ~name:(Circuit.name a ^ "_Gref") a))
  in
  Ok !total

let exposure_report c =
  let total = Circuit.latch_count c in
  let structural = List.length (Feedback.plan_structural c).Feedback.exposed in
  let functional = List.length (Feedback.plan_functional c).Feedback.exposed in
  (total, structural, functional)
