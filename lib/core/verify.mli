(** Sequential equivalence checking via combinational verification — the
    paper's headline reduction.

    Both circuits are unrolled (CBF for regular latches, EDBF when
    load-enabled latches are present) and the unrollings are handed to the
    combinational equivalence checker.  Latches listed in [exposed] (by
    name, which must exist in both circuits) are treated as pseudo-I/O, and
    their next-state functions are verified along with the outputs.

    Completeness: for acyclic regular-latch circuits the check is exact
    (Theorem 5.1).  With load-enabled latches it is sound but conservative
    (Theorem 5.2) — an [Inequivalent] answer may be a false negative, which
    the [counterexample] being [None] signals. *)

type method_ = Cbf_method | Edbf_method

type verdict =
  | Equivalent
  | Inequivalent of Cec.counterexample option
      (** [Some cex]: a replayable witness (CBF, exact).  [None]: the
          conservative EDBF check failed — possibly a false negative. *)

type stats = {
  method_ : method_;
  depth : int;
  variables : int;  (** united unrolled variable count *)
  events : int;  (** 1 when CBF (just the empty event) *)
  unrolled_gates : int * int;
  cec_sat_calls : int;  (** = [cec.Cec.sat_calls], kept for convenience *)
  cec : Cec.stats;  (** full per-check combinational statistics *)
  seconds : float;  (** wall-clock of the whole check *)
}

val check :
  ?engine:Cec.engine ->
  ?jobs:int ->
  ?cache:Cec.Cache.t ->
  ?rewrite_events:bool ->
  ?guard_events:bool ->
  ?exposed:string list ->
  Circuit.t ->
  Circuit.t ->
  verdict * stats
(** [rewrite_events] (default true) applies the paper's rule (5);
    [guard_events] (default false) additionally applies the
    event-consistency refinement of {!Edbf.unroll} — a sound strengthening
    beyond the published method that removes more EDBF false negatives.
    [jobs] (default 1) runs the combinational check partitioned per output
    cone on that many domains (see {!Cec.check}); [cache] shares a
    combinational result cache across checks.
    @raise Invalid_argument if an exposed name is missing from either
    circuit, if output counts differ, or if a sequential cycle survives the
    exposure. *)

(** {1 Counterexample replay}

    A CBF counterexample assigns time-indexed variables ["i@d"] (input [i],
    [d] cycles before the failing cycle).  These helpers turn it back into
    a concrete input sequence and confirm it on the original circuits. *)

val cex_to_sequence :
  Circuit.t -> Cec.counterexample -> bool array list
(** [cex_to_sequence c cex] is an input sequence for [c] (vectors in
    [Circuit.inputs] order) of length [depth+1] whose last cycle is the
    failing one.  Variables not mentioned in [cex] (including exposed-latch
    variables, which cannot be driven) read [false]. *)

val confirm_cex :
  ?exposed:string list ->
  Circuit.t ->
  Circuit.t ->
  Cec.counterexample ->
  bool
(** Replays the sequence on both circuits under the exact 3-valued
    semantics (all power-up states, with exposed-latch variables forced
    through their [cex] values where the latch still exists) and checks
    that some output differs at the final cycle.  Only meaningful for
    pairs rejected through the CBF path. *)
