(** Sequential equivalence checking via combinational verification — the
    paper's headline reduction.

    Both circuits are unrolled (CBF for regular latches, EDBF when
    load-enabled latches are present) {e into one shared AIG} — the
    {!Seqprob} problem IR — and that problem is handed to the
    combinational equivalence checker, with no intermediate unrolled
    netlists.  Latches listed in [exposed] (by name, which must exist in
    both circuits) are treated as pseudo-I/O, and their next-state
    functions are verified along with the outputs.

    Completeness: for acyclic regular-latch circuits the check is exact
    (Theorem 5.1).  With load-enabled latches it is sound but conservative
    (Theorem 5.2) — an [Inequivalent] answer may be a false negative, which
    the [counterexample] being [None] signals. *)

type method_ = Cbf_method | Edbf_method

type verdict =
  | Equivalent
  | Inequivalent of Cec.counterexample option
      (** [Some cex]: a replayable typed witness (CBF, exact).  [None]: the
          conservative EDBF check failed — possibly a false negative. *)
  | Undecided of string
      (** the combinational check gave up within its resource limits (see
          {!Cec.limits}); neither equivalence nor inequivalence was
          established *)

type stats = {
  method_ : method_;
  depth : int;
  variables : int;  (** united unrolled variable count (shared builder) *)
  events : int;  (** 1 when CBF (just the empty event) *)
  unrolled_nodes : int;
      (** AND nodes of the shared unrolled AIG, both sides — the miter
          size the engines actually see *)
  unrolled_gates : int * int;
      (** per-side gate replication before structural hashing — what each
          side would cost as a flat netlist unroll *)
  cec : Cec.stats;  (** full per-check combinational statistics *)
  unroll_seconds : float;
      (** wall clock spent unrolling both sides into the shared AIG
          (monotonic, measured whether or not tracing is enabled) *)
  seconds : float;  (** wall-clock of the whole check (monotonic) *)
}

type outcome = { verdict : verdict; stats : stats }

val exposed_pred :
  Circuit.t ->
  string list ->
  (Circuit.signal -> bool, Seqprob.diagnosis) result
(** Resolves exposed-latch names to a signal predicate.  Every name must
    exist and be a latch output: [Error (No_such_latch _)] otherwise.
    This is the one shared resolution used by both {!check} and
    {!Flow.run}. *)

val check :
  ?engine:Cec.engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?limits:Cec.limits ->
  ?cache:Cec.Cache.t ->
  ?store:Store.t ->
  ?rewrite_events:bool ->
  ?guard_events:bool ->
  ?exposed:string list ->
  Circuit.t ->
  Circuit.t ->
  (outcome, Seqprob.diagnosis) result
(** [rewrite_events] (default true) applies the paper's rule (5);
    [guard_events] (default false) additionally applies the
    event-consistency refinement of {!Edbf.unroll} — a sound strengthening
    beyond the published method that removes more EDBF false negatives.
    [jobs] (default 1) runs the combinational check partitioned per output
    cone on that many domains (see {!Cec.check_problem}); [pool] runs it
    on a caller-owned (possibly shared) pool instead, which is left
    running afterwards — the verification server passes one pool to every
    concurrent request; [limits]
    (default {!Cec.no_limits}) bounds the combinational engines and turns
    a blown budget into an [Undecided] verdict; [cache] shares a
    combinational result cache across checks, and [store] backs a fresh
    per-check cache with a persistent verdict store instead (ignored when
    [cache] is given — see {!Cec.check_problem}).

    Diagnoses instead of exceptions: [No_such_latch] when an exposed name
    is missing or not a latch, [Non_exposed_cycle] when a sequential cycle
    survives the exposure, [Hidden_enabled_latch] (CBF path only — the
    EDBF path handles enabled latches), [Output_arity_mismatch] when the
    two sides disagree on output count. *)

(** {1 Counterexample replay}

    A CBF counterexample assigns typed variables [{base; index = Time d}]
    (source [base], [d] cycles before the failing cycle).  These helpers
    turn it back into a concrete input sequence and confirm it on the
    original circuits — no string parsing involved. *)

val cex_to_sequence : Circuit.t -> Cec.counterexample -> bool array list
(** [cex_to_sequence c cex] is an input sequence for [c] (vectors in
    [Circuit.inputs] order) of length [depth+1] whose last cycle is the
    failing one.  Variables not mentioned in [cex] (including exposed-latch
    variables, which cannot be driven) read [false]; variables whose base
    is not an input of [c] are ignored, so the same counterexample yields
    each circuit's own sequence even when the input sets differ. *)

val confirm_cex :
  ?exposed:string list ->
  Circuit.t ->
  Circuit.t ->
  Cec.counterexample ->
  bool
(** Replays per-circuit sequences on both circuits under the exact
    3-valued semantics (all power-up states, with exposed-latch variables
    forced through their [cex] values where the latch still exists) and
    checks that some output differs at the final cycle.  Each circuit
    replays over its own input list, so counterexamples over asymmetric
    (united) input sets are honoured on both sides.  Only meaningful for
    pairs rejected through the CBF path. *)
