(** Event-Driven Boolean Functions (Sections 4.2, 5.2).

    Extends CBF unrolling to load-enabled latches: the value of an enabled
    latch at evaluation context [(d, E)] (delay [d] relative to the event
    [E]) is its data input at context [(0, push(pred, E))], where [pred] is
    the semantic predicate of its enable at shift [d].  Unrolled input
    variables are the typed [Seqprob.Var.at source ~shift ~event] — event
    identities are drawn from a {!Events.table} that must be {e shared}
    between the two circuits being compared, which is exactly what makes
    the integer event id a sound part of the variable's identity.

    The check is {e conservative} (Theorem 5.2): equal unrollings imply
    equivalence for circuits related by enable-class-preserving synthesis,
    but false negatives exist (Figs. 10, 11); the rule-(5) rewrite in
    {!Events} removes the Fig. 10 class. *)

type info = {
  depth : int;  (** largest delay used in any context *)
  variables : int;  (** distinct unrolled variables of this unroll *)
  events : int;  (** distinct events in the shared table after unrolling *)
  replication : int;  (** gate instances translated (before hashing) *)
}

val unroll :
  ?guard:bool ->
  table:Events.table ->
  ?exposed:(Circuit.signal -> bool) ->
  Seqprob.builder ->
  Circuit.t ->
  (Aig.lit list * info, Seqprob.diagnosis) result
(** Unrolls into the builder's shared AIG, returning the output cones.

    With [~guard:true] (default false), every unrolled output is weakened
    by the {e event-consistency} facts — the head predicate of each event
    held at the instant the event denotes — so the comparison becomes
    [facts → outputs equal].  This is a sound refinement implementing the
    paper's future-work direction ("a complete technique to distinguish
    events and combination of events and signals"): data functions that
    differ only where their enable is false no longer cause false
    negatives.  Both circuits sharing the table build identical guards
    over the same typed variables.

    Outputs: primary outputs in order, then exposed-latch data functions
    (name order), then exposed-latch enable functions (name order, enabled
    latches only) — the same convention as {!Cbf.unroll}.  Diagnoses:
    [Non_exposed_cycle] for a sequential cycle with no exposed latch. *)

val unroll_netlist :
  ?guard:bool ->
  table:Events.table ->
  ?exposed:(Circuit.signal -> bool) ->
  Circuit.t ->
  Circuit.t * info
(** Reference netlist materialization (inputs named
    ["source@d@event"]), kept for netlist-level experiments and as the
    baseline the AIG path is measured against.
    @raise Invalid_argument on a sequential cycle with no exposed latch. *)
