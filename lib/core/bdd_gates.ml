(* Shared BDD -> netlist synthesis (mux tree per DAG node). *)

let to_gates nc man f ~sig_of =
  Bdd.fold man f
    ~const:(fun b -> if b then Circuit.const_true nc else Circuit.const_false nc)
    ~node:(fun v lo hi ->
      if lo = hi then lo else Circuit.add_gate nc Mux [ sig_of v; hi; lo ])

let to_aig g man f ~lit_of =
  Bdd.fold man f
    ~const:(fun b -> if b then Aig.lit_true else Aig.lit_false)
    ~node:(fun v lo hi -> if lo = hi then lo else Aig.mux g (lit_of v) hi lo)
