(** Synthesize a BDD back into netlist gates: one [Mux] per DAG node,
    shared through the fold's memoization. *)

val to_gates :
  Circuit.t -> Bdd.man -> Bdd.t -> sig_of:(int -> Circuit.signal) -> Circuit.signal

val to_aig : Aig.t -> Bdd.man -> Bdd.t -> lit_of:(int -> Aig.lit) -> Aig.lit
(** Same synthesis into an AIG: one [Aig.mux] per DAG node; [lit_of]
    supplies the literal for each BDD variable. *)
