type method_ = Cbf_method | Edbf_method

type verdict =
  | Equivalent
  | Inequivalent of Cec.counterexample option
  | Undecided of string

type stats = {
  method_ : method_;
  depth : int;
  variables : int;
  events : int;
  unrolled_nodes : int;
  unrolled_gates : int * int;
  cec : Cec.stats;
  unroll_seconds : float;
  seconds : float;
}

type outcome = { verdict : verdict; stats : stats }

let ( let* ) = Result.bind

let exposed_pred c names =
  let set = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok (fun s -> Hashtbl.mem set s)
    | n :: rest -> (
        let bad () =
          Error (Seqprob.No_such_latch { circuit = Circuit.name c; name = n })
        in
        match Circuit.find_signal c n with
        | None -> bad ()
        | Some s -> (
            match Circuit.driver c s with
            | Latch _ ->
                Hashtbl.replace set s ();
                go rest
            | Undriven | Input | Gate _ -> bad ()))
  in
  go names

let has_hidden_enabled c exposed =
  List.exists
    (fun l -> (not (exposed l)) && snd (Circuit.latch_info c l) <> None)
    (Circuit.latches c)

(* Builds the Seqprob for a pair: both sides unrolled into ONE shared
   builder, so common logic (and common variables) are hashed once and the
   engines never see a netlist. *)
let build_problem ~rewrite_events ~guard_events ~ex1 ~ex2 c1 c2 =
  let needs_edbf = has_hidden_enabled c1 ex1 || has_hidden_enabled c2 ex2 in
  let b = Seqprob.builder () in
  if needs_edbf then begin
    let table = Events.create ~rewrite:rewrite_events () in
    let* o1, i1 = Edbf.unroll ~guard:guard_events ~table ~exposed:ex1 b c1 in
    let* o2, i2 = Edbf.unroll ~guard:guard_events ~table ~exposed:ex2 b c2 in
    let* p = Seqprob.problem b ~outs1:o1 ~outs2:o2 in
    Ok
      ( p,
        Edbf_method,
        max i1.Edbf.depth i2.Edbf.depth,
        Events.count table,
        (i1.Edbf.replication, i2.Edbf.replication) )
  end
  else begin
    let* o1, i1 = Cbf.unroll ~exposed:ex1 b c1 in
    let* o2, i2 = Cbf.unroll ~exposed:ex2 b c2 in
    let* p = Seqprob.problem b ~outs1:o1 ~outs2:o2 in
    Ok
      ( p,
        Cbf_method,
        max i1.Cbf.depth i2.Cbf.depth,
        1,
        (i1.Cbf.replication, i2.Cbf.replication) )
  end

let check ?engine ?jobs ?pool ?limits ?cache ?store ?(rewrite_events = true)
    ?(guard_events = false) ?(exposed = []) c1 c2 =
  Obs.span ~name:"verify.check"
    ~attrs:
      [
        ("circuit1", Obs.String (Circuit.name c1));
        ("circuit2", Obs.String (Circuit.name c2));
      ]
    (fun () ->
      let t0 = Obs.Clock.now () in
      let* ex1 = exposed_pred c1 exposed in
      let* ex2 = exposed_pred c2 exposed in
      let unrolled, unroll_seconds =
        Obs.timed_span ~name:"verify.unroll" (fun () ->
            build_problem ~rewrite_events ~guard_events ~ex1 ~ex2 c1 c2)
      in
      let* p, method_, depth, events, unrolled_gates = unrolled in
      let cec_verdict, cec =
        Cec.check_problem_with_stats ?engine ?jobs ?pool ?limits ?cache ?store p
      in
      let verdict =
        match (cec_verdict, method_) with
        | Cec.Equivalent, _ -> Equivalent
        | Cec.Undecided reason, _ -> Undecided reason
        | Cec.Inequivalent cex, Cbf_method -> Inequivalent (Some cex)
        | Cec.Inequivalent _, Edbf_method ->
            (* conservative method: a differing unrolling is not a certified
               sequential counterexample *)
            Inequivalent None
      in
      Ok
        {
          verdict;
          stats =
            {
              method_;
              depth;
              variables = Array.length p.Seqprob.vars;
              events;
              unrolled_nodes = Seqprob.and_nodes p;
              unrolled_gates;
              cec;
              unroll_seconds;
              seconds = Obs.Clock.now () -. t0;
            };
        })

(* ---- counterexample replay ---- *)

let cex_depth cex =
  List.fold_left (fun acc (v, _) -> max acc (Seqprob.Var.delay v)) 0 cex

let cex_to_sequence c cex =
  let depth = cex_depth cex in
  let assignment = Hashtbl.create 16 in
  List.iter
    (fun ((v : Seqprob.Var.t), b) ->
      match v.index with
      | Seqprob.Var.Time d -> Hashtbl.replace assignment (v.base, d) b
      | Seqprob.Var.At _ -> ())
    cex;
  let input_names = List.map (Circuit.signal_name c) (Circuit.inputs c) in
  (* cycle t (0-based, length depth+1): variable (i, d) refers to cycle
     (depth - d); the failing cycle is the last *)
  List.init (depth + 1) (fun t ->
      Array.of_list
        (List.map
           (fun n ->
             match Hashtbl.find_opt assignment (n, depth - t) with
             | Some b -> b
             | None -> false)
           input_names))

(* Replaying with exposed latches: where the latch still exists we cannot
   drive it mid-run, but the CBF treats its output at each delay as a free
   variable.  For confirmation purposes we compare the exact 3-valued
   outputs of the two circuits at the failing cycle; a genuine CBF
   counterexample disagrees for every power-up consistent with the
   assignment, which implies the exact 3-valued outputs differ (value vs
   value, or value vs ⊥) for at least one output when no exposed variables
   are involved.  With exposed variables involved the replay is best-effort
   and may fail to reproduce; we then fall back to validating on the
   unrolled problem's AIG. *)
let confirm_cex ?(exposed = []) c1 c2 cex =
  let validate_unrolled () =
    match
      let* ex1 = exposed_pred c1 exposed in
      let* ex2 = exposed_pred c2 exposed in
      let b = Seqprob.builder () in
      let* o1, _ = Cbf.unroll ~exposed:ex1 b c1 in
      let* o2, _ = Cbf.unroll ~exposed:ex2 b c2 in
      let* p = Seqprob.problem b ~outs1:o1 ~outs2:o2 in
      Ok (Seqprob.cex_is_valid p cex)
    with
    | Ok b -> b
    | Error _ -> false
  in
  let replayable =
    List.for_all
      (fun ((v : Seqprob.Var.t), _) -> not (List.mem v.base exposed))
      cex
  in
  if not replayable then validate_unrolled ()
  else begin
    (* pad to the full sequential depth of both circuits so that the final
       cycle's window never reaches before the sequence (which would leave
       both outputs undefined and mask the difference) *)
    let d_cex = cex_depth cex in
    let pad =
      max 0 (max (Cbf.sequential_depth c1) (Cbf.sequential_depth c2) - d_cex)
    in
    (* per-circuit sequences over each circuit's own input list: the
       counterexample lives in the united variable universe, so an input
       present in only one circuit still gets its assigned value there *)
    let seq_for c =
      let ni = List.length (Circuit.inputs c) in
      List.init pad (fun _ -> Array.make ni false) @ cex_to_sequence c cex
    in
    let limit = 14 in
    if Circuit.latch_count c1 > limit || Circuit.latch_count c2 > limit then
      (* too many power-up states to enumerate: validate on the unrolling *)
      validate_unrolled ()
    else begin
      let t1 = Sim.run_exact ~max_latches:limit c1 ~inputs:(seq_for c1) in
      let t2 = Sim.run_exact ~max_latches:limit c2 ~inputs:(seq_for c2) in
      match (List.rev t1, List.rev t2) with
      | last1 :: _, last2 :: _ ->
          (* differ = some output where both are defined and unequal, or one
             defined and the other undefined *)
          let differs = ref false in
          Array.iteri
            (fun i v1 -> if not (Sim.tv_equal v1 last2.(i)) then differs := true)
            last1;
          !differs
      | _ -> false
    end
  end
