type method_ = Cbf_method | Edbf_method

type verdict = Equivalent | Inequivalent of Cec.counterexample option

type stats = {
  method_ : method_;
  depth : int;
  variables : int;
  events : int;
  unrolled_gates : int * int;
  cec_sat_calls : int;
  cec : Cec.stats;
  seconds : float;
}

let exposed_pred c names =
  let set = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match Circuit.find_signal c n with
      | Some s -> (
          match Circuit.driver c s with
          | Latch _ -> Hashtbl.replace set s ()
          | Undriven | Input | Gate _ ->
              invalid_arg (Printf.sprintf "Verify.check: %s is not a latch" n))
      | None -> invalid_arg (Printf.sprintf "Verify.check: no signal named %s" n))
    names;
  fun s -> Hashtbl.mem set s

let has_hidden_enabled c exposed =
  List.exists
    (fun l -> (not (exposed l)) && snd (Circuit.latch_info c l) <> None)
    (Circuit.latches c)

let check ?engine ?jobs ?cache ?(rewrite_events = true) ?(guard_events = false)
    ?(exposed = []) c1 c2 =
  let t0 = Unix.gettimeofday () in
  let ex1 = exposed_pred c1 exposed in
  let ex2 = exposed_pred c2 exposed in
  let needs_edbf = has_hidden_enabled c1 ex1 || has_hidden_enabled c2 ex2 in
  let result =
    if needs_edbf then begin
      let table = Events.create ~rewrite:rewrite_events () in
      let u1, i1 = Edbf.unroll ~guard:guard_events ~table ~exposed:ex1 c1 in
      let u2, i2 = Edbf.unroll ~guard:guard_events ~table ~exposed:ex2 c2 in
      let cec_verdict, cec = Cec.check_with_stats ?engine ?jobs ?cache u1 u2 in
      let verdict =
        match cec_verdict with
        | Cec.Equivalent -> Equivalent
        | Cec.Inequivalent _ ->
            (* conservative method: a differing unrolling is not a certified
               sequential counterexample *)
            Inequivalent None
      in
      ( verdict,
        cec,
        Edbf_method,
        max i1.Edbf.depth i2.Edbf.depth,
        i1.Edbf.variables + i2.Edbf.variables,
        Events.count table,
        (Circuit.area u1, Circuit.area u2) )
    end
    else begin
      let u1, i1 = Cbf.unroll ~exposed:ex1 c1 in
      let u2, i2 = Cbf.unroll ~exposed:ex2 c2 in
      let cec_verdict, cec = Cec.check_with_stats ?engine ?jobs ?cache u1 u2 in
      let verdict =
        match cec_verdict with
        | Cec.Equivalent -> Equivalent
        | Cec.Inequivalent cex -> Inequivalent (Some cex)
      in
      ( verdict,
        cec,
        Cbf_method,
        max i1.Cbf.depth i2.Cbf.depth,
        i1.Cbf.variables + i2.Cbf.variables,
        1,
        (Circuit.area u1, Circuit.area u2) )
    end
  in
  let verdict, cec, method_, depth, variables, events, unrolled_gates = result in
  ( verdict,
    {
      method_;
      depth;
      variables;
      events;
      unrolled_gates;
      cec_sat_calls = cec.Cec.sat_calls;
      cec;
      seconds = Unix.gettimeofday () -. t0;
    } )

(* ---- counterexample replay ---- *)

let parse_var n =
  match String.rindex_opt n '@' with
  | None -> None
  | Some j -> (
      let base = String.sub n 0 j in
      match int_of_string_opt (String.sub n (j + 1) (String.length n - j - 1)) with
      | Some d when d >= 0 -> Some (base, d)
      | Some _ | None -> None)

let cex_depth cex =
  List.fold_left
    (fun acc (n, _) -> match parse_var n with Some (_, d) -> max acc d | None -> acc)
    0 cex

let cex_to_sequence c cex =
  let depth = cex_depth cex in
  let assignment = Hashtbl.create 16 in
  List.iter
    (fun (n, b) ->
      match parse_var n with
      | Some (base, d) -> Hashtbl.replace assignment (base, d) b
      | None -> ())
    cex;
  let input_names = List.map (Circuit.signal_name c) (Circuit.inputs c) in
  (* cycle t (0-based, length depth+1): variable i@d refers to cycle
     (depth - d); the failing cycle is the last *)
  List.init (depth + 1) (fun t ->
      Array.of_list
        (List.map
           (fun n ->
             match Hashtbl.find_opt assignment (n, depth - t) with
             | Some b -> b
             | None -> false)
           input_names))

(* Replaying with exposed latches: where the latch still exists we cannot
   drive it mid-run, but the CBF treats its output at each delay as a free
   variable.  For confirmation purposes we compare the exact 3-valued
   outputs of the two circuits at the failing cycle; a genuine CBF
   counterexample disagrees for every power-up consistent with the
   assignment, which implies the exact 3-valued outputs differ (value vs
   value, or value vs ⊥) for at least one output when no exposed variables
   are involved.  With exposed variables involved the replay is best-effort
   and may fail to reproduce; we then fall back to validating on the
   unrolled circuits. *)
let confirm_cex ?(exposed = []) c1 c2 cex =
  let replayable =
    List.for_all
      (fun (n, _) ->
        match parse_var n with
        | Some (base, _) -> not (List.mem base exposed)
        | None -> true)
      cex
  in
  if not replayable then begin
    let ex1 = exposed_pred c1 exposed in
    let ex2 = exposed_pred c2 exposed in
    let u1, _ = Cbf.unroll ~exposed:ex1 c1 in
    let u2, _ = Cbf.unroll ~exposed:ex2 c2 in
    Cec.counterexample_is_valid u1 u2 cex
  end
  else begin
    (* pad to the full sequential depth of both circuits so that the final
       cycle's window never reaches before the sequence (which would leave
       both outputs undefined and mask the difference) *)
    let d_cex = cex_depth cex in
    let d1 = try Cbf.sequential_depth c1 with Invalid_argument _ -> d_cex in
    let d2 = try Cbf.sequential_depth c2 with Invalid_argument _ -> d_cex in
    let pad = max 0 (max d1 d2 - d_cex) in
    let ni = List.length (Circuit.inputs c1) in
    let seq =
      List.init pad (fun _ -> Array.make ni false) @ cex_to_sequence c1 cex
    in
    let limit = 14 in
    if Circuit.latch_count c1 > limit || Circuit.latch_count c2 > limit then begin
      (* too many power-up states to enumerate: validate on the unrollings *)
      let ex1 = exposed_pred c1 exposed in
      let ex2 = exposed_pred c2 exposed in
      let u1, _ = Cbf.unroll ~exposed:ex1 c1 in
      let u2, _ = Cbf.unroll ~exposed:ex2 c2 in
      Cec.counterexample_is_valid u1 u2 cex
    end
    else begin
      let t1 = Sim.run_exact ~max_latches:limit c1 ~inputs:seq in
      let t2 = Sim.run_exact ~max_latches:limit c2 ~inputs:seq in
      match (List.rev t1, List.rev t2) with
      | last1 :: _, last2 :: _ ->
          (* differ = some output where both are defined and unequal, or one
             defined and the other undefined *)
          let differs = ref false in
          Array.iteri
            (fun i v1 -> if not (Sim.tv_equal v1 last2.(i)) then differs := true)
            last1;
          !differs
      | _ -> false
    end
  end
