type info = { depth : int; variables : int; events : int; replication : int }

let unroll_exn ?(guard = false) ~table ?(exposed = fun _ -> false) b c =
  Circuit.check c;
  let man = Events.man table in
  let g = Seqprob.graph b in
  let memo : (Circuit.signal * int * Events.event, Aig.lit) Hashtbl.t =
    Hashtbl.create 256
  in
  let used_vars : (Seqprob.Var.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let pred_memo : (Circuit.signal * int, Bdd.t) Hashtbl.t = Hashtbl.create 64 in
  let used_events : (Events.event, unit) Hashtbl.t = Hashtbl.create 16 in
  let depth = ref 0 in
  let replication = ref 0 in
  let visiting = Hashtbl.create 64 in
  let pin name d e =
    depth := max !depth d;
    Hashtbl.replace used_events e ();
    let v = Seqprob.Var.at name ~shift:d ~event:e in
    Hashtbl.replace used_vars v ();
    Seqprob.var_lit b v
  in
  (* Semantic enable predicate at shift [d]: a BDD over (source, shift)
     variables; latch outputs are opaque sources matched by name. *)
  let rec pred_bdd s d =
    match Hashtbl.find_opt pred_memo (s, d) with
    | Some f -> f
    | None ->
        let f =
          match Circuit.driver c s with
          | Input | Latch _ ->
              Events.pred_var table ~source:(Circuit.signal_name c s) ~shift:d
          | Undriven -> assert false
          | Gate (fn, fs) ->
              let ins = Array.map (fun f -> pred_bdd f d) fs in
              let ins_l = Array.to_list ins in
              (match fn with
              | Const b -> if b then Bdd.one man else Bdd.zero man
              | Buf -> ins.(0)
              | Not -> Bdd.not_ man ins.(0)
              | And -> Bdd.and_list man ins_l
              | Nand -> Bdd.not_ man (Bdd.and_list man ins_l)
              | Or -> Bdd.or_list man ins_l
              | Nor -> Bdd.not_ man (Bdd.or_list man ins_l)
              | Xor -> List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l
              | Xnor -> Bdd.not_ man (List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l)
              | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2))
        in
        Hashtbl.replace pred_memo (s, d) f;
        f
  in
  (* Compute_EDBF_Recursively (Fig. 8), with delays for regular latches *)
  let rec edbf s d e =
    match Hashtbl.find_opt memo (s, d, e) with
    | Some r -> r
    | None ->
        if Hashtbl.mem visiting s then
          raise
            (Seqprob.Error
               (Non_exposed_cycle
                  {
                    circuit = Circuit.name c;
                    signal = Circuit.signal_name c s;
                  }));
        Hashtbl.replace visiting s ();
        let r =
          match Circuit.driver c s with
          | Input -> pin (Circuit.signal_name c s) d e
          | Latch _ when exposed s -> pin (Circuit.signal_name c s) d e
          | Latch { data; enable = None } -> edbf data (d + 1) e
          | Latch { data; enable = Some en } ->
              let p = pred_bdd en d in
              let e' = Events.push table ~pred:p e in
              edbf data 0 e'
          | Gate (fn, fs) ->
              incr replication;
              Aig.apply_fn g fn (Array.map (fun f -> edbf f d e) fs)
          | Undriven -> assert false
        in
        Hashtbl.remove visiting s;
        Hashtbl.replace memo (s, d, e) r;
        r
  in
  let outs = ref (List.map (fun o -> edbf o 0 Events.empty) (Circuit.outputs c)) in
  let exposed_latches =
    List.filter exposed (Circuit.latches c)
    |> List.sort (fun a b ->
           compare (Circuit.signal_name c a) (Circuit.signal_name c b))
  in
  List.iter
    (fun l ->
      let data, _ = Circuit.latch_info c l in
      outs := !outs @ [ edbf data 0 Events.empty ])
    exposed_latches;
  List.iter
    (fun l ->
      match Circuit.latch_info c l with
      | _, Some en -> outs := !outs @ [ edbf en 0 Events.empty ]
      | _, None -> ())
    exposed_latches;
  (* Event-consistency guard (the paper's future-work refinement): the
     predicate at the head of every event was, by definition of η, true at
     the instant the event denotes.  Guarding each output with the
     conjunction of those facts lets data functions that differ only where
     an enable is false still compare equal: the miter becomes
     [constraints → outputs equal].  Both sides of a comparison build the
     same guard over the same typed variables, because events are interned
     in the shared table. *)
  if guard then begin
    (* close the used-event set under tails *)
    let rec close e =
      match Events.decompose table e with
      | None -> ()
      | Some (_, tail) ->
          if not (Hashtbl.mem used_events tail) then begin
            Hashtbl.replace used_events tail ();
            close tail
          end
    in
    Hashtbl.iter (fun e () -> close e) (Hashtbl.copy used_events);
    let constraints = ref [] in
    let events = Hashtbl.fold (fun e () acc -> e :: acc) used_events [] in
    List.iter
      (fun e ->
        match Events.decompose table e with
        | None -> ()
        | Some (pred, _) ->
            let lit_of v =
              let source, shift = Events.var_source table v in
              pin source shift e
            in
            constraints := Bdd_gates.to_aig g man pred ~lit_of :: !constraints)
      (List.sort compare events);
    match !constraints with
    | [] -> ()
    | cs ->
        let all = Aig.and_list g cs in
        outs := List.map (fun o -> Aig.or_ g o (Aig.neg all)) !outs
  end;
  ( !outs,
    {
      depth = !depth;
      variables = Hashtbl.length used_vars;
      events = Events.count table;
      replication = !replication;
    } )

let unroll ?guard ~table ?exposed b c =
  Obs.span ~name:"unroll.edbf"
    ~attrs:[ ("circuit", Obs.String (Circuit.name c)) ]
    (fun () ->
      let n0 = Aig.and_count (Seqprob.graph b) in
      let r =
        match unroll_exn ?guard ~table ?exposed b c with
        | r -> Ok r
        | exception Seqprob.Error d -> Error d
      in
      Obs.attr (fun () ->
          match r with
          | Ok (_, info) ->
              [
                ("depth", Obs.Int info.depth);
                ("variables", Obs.Int info.variables);
                ("replication", Obs.Int info.replication);
                ( "aig_nodes_added",
                  Obs.Int (Aig.and_count (Seqprob.graph b) - n0) );
              ]
          | Error d -> [ ("error", Obs.String (Seqprob.diagnosis_to_string d)) ]);
      r)

let unroll_netlist ?(guard = false) ~table ?(exposed = fun _ -> false) c =
  Circuit.check c;
  let man = Events.man table in
  let nc = Circuit.create (Circuit.name c ^ "_edbf") in
  let memo : (Circuit.signal * int * Events.event, Circuit.signal) Hashtbl.t =
    Hashtbl.create 256
  in
  let pins : (string, Circuit.signal) Hashtbl.t = Hashtbl.create 64 in
  let pred_memo : (Circuit.signal * int, Bdd.t) Hashtbl.t = Hashtbl.create 64 in
  let used_events : (Events.event, unit) Hashtbl.t = Hashtbl.create 16 in
  let depth = ref 0 in
  let replication = ref 0 in
  let visiting = Hashtbl.create 64 in
  let pin name d e =
    depth := max !depth d;
    Hashtbl.replace used_events e ();
    let n = Printf.sprintf "%s@%d@%s" name d (Events.to_string table e) in
    match Hashtbl.find_opt pins n with
    | Some s -> s
    | None ->
        let s = Circuit.add_input nc n in
        Hashtbl.replace pins n s;
        s
  in
  let rec pred_bdd s d =
    match Hashtbl.find_opt pred_memo (s, d) with
    | Some b -> b
    | None ->
        let b =
          match Circuit.driver c s with
          | Input | Latch _ ->
              Events.pred_var table ~source:(Circuit.signal_name c s) ~shift:d
          | Undriven -> assert false
          | Gate (fn, fs) ->
              let ins = Array.map (fun f -> pred_bdd f d) fs in
              let ins_l = Array.to_list ins in
              (match fn with
              | Const b -> if b then Bdd.one man else Bdd.zero man
              | Buf -> ins.(0)
              | Not -> Bdd.not_ man ins.(0)
              | And -> Bdd.and_list man ins_l
              | Nand -> Bdd.not_ man (Bdd.and_list man ins_l)
              | Or -> Bdd.or_list man ins_l
              | Nor -> Bdd.not_ man (Bdd.or_list man ins_l)
              | Xor -> List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l
              | Xnor -> Bdd.not_ man (List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l)
              | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2))
        in
        Hashtbl.replace pred_memo (s, d) b;
        b
  in
  let rec edbf s d e =
    match Hashtbl.find_opt memo (s, d, e) with
    | Some r -> r
    | None ->
        if Hashtbl.mem visiting s then
          invalid_arg "Edbf.unroll_netlist: sequential cycle with no exposed latch";
        Hashtbl.replace visiting s ();
        let r =
          match Circuit.driver c s with
          | Input -> pin (Circuit.signal_name c s) d e
          | Latch _ when exposed s -> pin (Circuit.signal_name c s) d e
          | Latch { data; enable = None } -> edbf data (d + 1) e
          | Latch { data; enable = Some en } ->
              let p = pred_bdd en d in
              let e' = Events.push table ~pred:p e in
              edbf data 0 e'
          | Gate (fn, fs) ->
              incr replication;
              Circuit.add_gate nc fn (Array.to_list (Array.map (fun f -> edbf f d e) fs))
          | Undriven -> assert false
        in
        Hashtbl.remove visiting s;
        Hashtbl.replace memo (s, d, e) r;
        r
  in
  let out_signals =
    ref (List.map (fun o -> edbf o 0 Events.empty) (Circuit.outputs c))
  in
  let exposed_latches =
    List.filter exposed (Circuit.latches c)
    |> List.sort (fun a b -> compare (Circuit.signal_name c a) (Circuit.signal_name c b))
  in
  List.iter
    (fun l ->
      let data, _ = Circuit.latch_info c l in
      out_signals := !out_signals @ [ edbf data 0 Events.empty ])
    exposed_latches;
  List.iter
    (fun l ->
      match Circuit.latch_info c l with
      | _, Some en -> out_signals := !out_signals @ [ edbf en 0 Events.empty ]
      | _, None -> ())
    exposed_latches;
  if guard then begin
    let rec close e =
      match Events.decompose table e with
      | None -> ()
      | Some (_, tail) ->
          if not (Hashtbl.mem used_events tail) then begin
            Hashtbl.replace used_events tail ();
            close tail
          end
    in
    Hashtbl.iter (fun e () -> close e) (Hashtbl.copy used_events);
    let constraints = ref [] in
    let events = Hashtbl.fold (fun e () acc -> e :: acc) used_events [] in
    List.iter
      (fun e ->
        match Events.decompose table e with
        | None -> ()
        | Some (pred, _) ->
            let sig_of v =
              let source, shift = Events.var_source table v in
              pin source shift e
            in
            constraints := Bdd_gates.to_gates nc man pred ~sig_of :: !constraints)
      (List.sort compare events);
    match !constraints with
    | [] -> ()
    | cs ->
        let all = Circuit.add_gate nc And cs in
        let not_all = Circuit.add_gate nc Not [ all ] in
        out_signals := List.map (fun o -> Circuit.add_gate nc Or [ o; not_all ]) !out_signals
  end;
  List.iter (Circuit.mark_output nc) !out_signals;
  Circuit.check nc;
  ( nc,
    {
      depth = !depth;
      variables = Hashtbl.length pins;
      events = Events.count table;
      replication = !replication;
    } )
