(** The experimental flow of Fig. 19 (Section 8).

    From an original circuit [A]:
    - [B]: [A] with a minimal feedback vertex set of latches exposed
      (their outputs are made observable, i.e. added to the primary
      outputs, and they are pinned during retiming);
    - [C]: [B] after delay-oriented synthesis and minimum-period retiming;
    - [D]: [A] after combinational synthesis only;
    - [E]: [B] after synthesis and minimum-area retiming constrained to
      [D]'s delay;
    - [F]: like [C] but from the unmodified [A] (measures the optimization
      penalty of exposure);
    - [G]: like [E] but from the unmodified [A];
    - [H]/[J]: CBF unrollings of [B] and [C], checked by combinational
      equivalence (Table 1's "H vs J" time). *)

type metrics = { latches : int; area : int; delay : int }

type row = {
  name : string;
  a : metrics;
  exposed : int;
  exposed_percent : float;
  b : metrics;
  c : metrics;
  d : metrics;
  e : metrics;
  f : metrics;
  g : metrics;
  verify_seconds : float;
  verify_verdict : Verify.verdict;
  verify_stats : Verify.stats;
  stage_seconds : (string * float) list;
      (** wall clock per pipeline stage, in execution order: ["B"]; ["D"];
          ["C"]; ["E"]; ["F"]; ["G"]; ["verify"] (absent under
          [skip_verify]).  Derived from the {!Obs} stage spans (monotonic
          clock), measured whether or not tracing is enabled. *)
}

val metrics_of : Circuit.t -> metrics

val run :
  ?engine:Cec.engine ->
  ?jobs:int ->
  ?limits:Cec.limits ->
  ?cache:Cec.Cache.t ->
  ?store:Store.t ->
  ?period:int ->
  ?skip_verify:bool ->
  Circuit.t ->
  (row, Seqprob.diagnosis) result
(** Runs the full pipeline on a regular-latch circuit.  [jobs], [limits],
    [cache] and [store] are passed to the H-vs-J combinational check (see
    {!Verify.check}); a blown budget surfaces as a
    [Verify.Undecided _] verdict in the row, never as an error.
    [period], when given, replaces [D]'s delay as the clock-period target
    for the area-constrained retimings [E]/[G]; a user-supplied period is a
    hard constraint, so an unachievable one yields
    [Error (Infeasible_period _)] (the default target silently degrades to
    the minimum feasible period instead).  When [skip_verify] is set the
    H-vs-J check is skipped (the verdict reads [Equivalent] and the time is
    0 — used when only optimization numbers are wanted).

    Load-enabled latches yield [Error (Hidden_enabled_latch _)]: like the
    paper (which lacked a retiming tool for them), the optimizing flow
    covers regular latches; load-enabled circuits get {!exposure_report},
    {!Verify.check}, and {!Classes.min_period_single_class} instead.  Any
    diagnosis from the embedded {!Verify.check} propagates unchanged. *)

val circuits :
  ?engine:Cec.engine ->
  Circuit.t ->
  (Circuit.t * Circuit.t, Seqprob.diagnosis) result
(** Just [B] and [C] (exposed + optimized), for callers that want to verify
    or inspect them separately. *)

val reference_retime_seconds :
  ?period:int -> Circuit.t -> (float, Seqprob.diagnosis) result
(** The summed wall clock of the [C]/[E]/[F]/[G] stages re-run through the
    retained reference retiming pipeline (per-stage re-synthesis, naive
    FEAS bisection, unpruned W/D constraints, pre-scaling flow core) — the
    paired "before" measurement for the bench's retime-speedup column.
    [period] as in {!run}. *)

val exposure_report : Circuit.t -> int * int * int
(** [(total_latches, structural_exposed, functional_exposed)] — the Table 2
    numbers plus the paper's predicted improvement from unateness
    analysis. *)
