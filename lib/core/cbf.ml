type info = { depth : int; variables : int; replication : int }

let var_name i d = Seqprob.Var.to_string (Seqprob.Var.time i d)

let unroll_exn ?(exposed = fun _ -> false) b c =
  Circuit.check c;
  let g = Seqprob.graph b in
  let memo : (Circuit.signal * int, Aig.lit) Hashtbl.t = Hashtbl.create 256 in
  let used : (Seqprob.Var.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let depth = ref 0 in
  let replication = ref 0 in
  (* keyed by signal alone: a signal repeated on the current DFS path is a
     dependency cycle whatever the delays, and an un-exposed cycle would
     otherwise unroll forever (each lap shifts the delay) *)
  let visiting : (Circuit.signal, unit) Hashtbl.t = Hashtbl.create 64 in
  let pin name d =
    depth := max !depth d;
    let v = Seqprob.Var.time name d in
    Hashtbl.replace used v ();
    Seqprob.var_lit b v
  in
  (* Compute_CBF_Recursively (Fig. 7), straight into the shared AIG *)
  let rec cbf s d =
    match Hashtbl.find_opt memo (s, d) with
    | Some r -> r
    | None ->
        if Hashtbl.mem visiting s then
          raise
            (Seqprob.Error
               (Non_exposed_cycle
                  {
                    circuit = Circuit.name c;
                    signal = Circuit.signal_name c s;
                  }));
        Hashtbl.replace visiting s ();
        let r =
          match Circuit.driver c s with
          | Input -> pin (Circuit.signal_name c s) d
          | Latch _ when exposed s -> pin (Circuit.signal_name c s) d
          | Latch { data; enable = None } -> cbf data (d + 1)
          | Latch { enable = Some _; _ } ->
              raise
                (Seqprob.Error
                   (Hidden_enabled_latch
                      {
                        circuit = Circuit.name c;
                        latch = Circuit.signal_name c s;
                      }))
          | Gate (fn, fs) ->
              incr replication;
              Aig.apply_fn g fn (Array.map (fun f -> cbf f d) fs)
          | Undriven -> assert false
        in
        Hashtbl.remove visiting s;
        Hashtbl.replace memo (s, d) r;
        r
  in
  let outs = List.map (fun o -> cbf o 0) (Circuit.outputs c) in
  (* exposed latches: data (and enable) functions become outputs, ordered by
     latch name so both sides of a comparison line up *)
  let exposed_latches =
    List.filter exposed (Circuit.latches c)
    |> List.sort (fun a b ->
           compare (Circuit.signal_name c a) (Circuit.signal_name c b))
  in
  let data_outs =
    List.map
      (fun l ->
        let data, _ = Circuit.latch_info c l in
        cbf data 0)
      exposed_latches
  in
  let enable_outs =
    List.filter_map
      (fun l ->
        match Circuit.latch_info c l with
        | _, Some e -> Some (cbf e 0)
        | _, None -> None)
      exposed_latches
  in
  ( outs @ data_outs @ enable_outs,
    {
      depth = !depth;
      variables = Hashtbl.length used;
      replication = !replication;
    } )

let unroll ?exposed b c =
  Obs.span ~name:"unroll.cbf"
    ~attrs:[ ("circuit", Obs.String (Circuit.name c)) ]
    (fun () ->
      let n0 = Aig.and_count (Seqprob.graph b) in
      let r =
        match unroll_exn ?exposed b c with
        | r -> Ok r
        | exception Seqprob.Error d -> Error d
      in
      Obs.attr (fun () ->
          match r with
          | Ok (_, info) ->
              [
                ("depth", Obs.Int info.depth);
                ("variables", Obs.Int info.variables);
                ("replication", Obs.Int info.replication);
                ( "aig_nodes_added",
                  Obs.Int (Aig.and_count (Seqprob.graph b) - n0) );
              ]
          | Error d -> [ ("error", Obs.String (Seqprob.diagnosis_to_string d)) ]);
      r)

let unroll_netlist ?(exposed = fun _ -> false) c =
  Circuit.check c;
  let nc = Circuit.create (Circuit.name c ^ "_cbf") in
  let memo : (Circuit.signal * int, Circuit.signal) Hashtbl.t = Hashtbl.create 256 in
  let pins : (string, Circuit.signal) Hashtbl.t = Hashtbl.create 64 in
  let depth = ref 0 in
  let replication = ref 0 in
  let visiting : (Circuit.signal, unit) Hashtbl.t = Hashtbl.create 64 in
  let pin name d =
    depth := max !depth d;
    let n = var_name name d in
    match Hashtbl.find_opt pins n with
    | Some s -> s
    | None ->
        let s = Circuit.add_input nc n in
        Hashtbl.replace pins n s;
        s
  in
  let rec cbf s d =
    match Hashtbl.find_opt memo (s, d) with
    | Some r -> r
    | None ->
        if Hashtbl.mem visiting s then
          invalid_arg "Cbf.unroll_netlist: sequential cycle with no exposed latch";
        Hashtbl.replace visiting s ();
        let r =
          match Circuit.driver c s with
          | Input -> pin (Circuit.signal_name c s) d
          | Latch _ when exposed s -> pin (Circuit.signal_name c s) d
          | Latch { data; enable = None } -> cbf data (d + 1)
          | Latch { enable = Some _; _ } ->
              invalid_arg
                (Printf.sprintf
                   "Cbf.unroll_netlist: non-exposed load-enabled latch %s"
                   (Circuit.signal_name c s))
          | Gate (fn, fs) ->
              incr replication;
              Circuit.add_gate nc fn (Array.to_list (Array.map (fun f -> cbf f d) fs))
          | Undriven -> assert false
        in
        Hashtbl.remove visiting s;
        Hashtbl.replace memo (s, d) r;
        r
  in
  List.iter (fun o -> Circuit.mark_output nc (cbf o 0)) (Circuit.outputs c);
  let exposed_latches =
    List.filter exposed (Circuit.latches c)
    |> List.sort (fun a b -> compare (Circuit.signal_name c a) (Circuit.signal_name c b))
  in
  List.iter
    (fun l ->
      let data, _ = Circuit.latch_info c l in
      Circuit.mark_output nc (cbf data 0))
    exposed_latches;
  List.iter
    (fun l ->
      match Circuit.latch_info c l with
      | _, Some e -> Circuit.mark_output nc (cbf e 0)
      | _, None -> ())
    exposed_latches;
  Circuit.check nc;
  (nc, { depth = !depth; variables = Hashtbl.length pins; replication = !replication })

let sequential_depth ?(exposed = fun _ -> false) c =
  let memo = Hashtbl.create 256 in
  let rec go s =
    match Hashtbl.find_opt memo s with
    | Some d -> d
    | None ->
        Hashtbl.replace memo s 0;
        (* cycle guard: exposed breaks cycles; a hit during recursion would
           mean a non-exposed cycle, reported by unroll *)
        let d =
          match Circuit.driver c s with
          | Input -> 0
          | Latch _ when exposed s -> 0
          | Latch { data; _ } -> 1 + go data
          | Gate (_, fs) -> Array.fold_left (fun acc f -> max acc (go f)) 0 fs
          | Undriven -> 0
        in
        Hashtbl.replace memo s d;
        d
  in
  let at_outputs = List.fold_left (fun acc o -> max acc (go o)) 0 (Circuit.outputs c) in
  List.fold_left
    (fun acc l ->
      if exposed l then
        let data, enable = Circuit.latch_info c l in
        let acc = max acc (go data) in
        match enable with None -> acc | Some e -> max acc (go e)
      else acc)
    at_outputs (Circuit.latches c)

let functional_depth ?exposed c =
  let b = Seqprob.builder () in
  match unroll ?exposed b c with
  | Error _ as e -> e
  | Ok (outs, _) ->
      let g = Seqprob.graph b in
      let vars = Seqprob.builder_vars b in
      let man = Bdd.man () in
      (* BDD var = input index; the vars array maps it back to a delay *)
      let input_index = Hashtbl.create 64 in
      for i = 0 to Aig.num_inputs g - 1 do
        Hashtbl.replace input_index (Aig.node_of (Aig.input_lit g i)) i
      done;
      let node_bdd = Hashtbl.create 256 in
      let rec go n =
        if n = 0 then Bdd.zero man
        else
          match Hashtbl.find_opt node_bdd n with
          | Some f -> f
          | None ->
              let f =
                if Aig.is_input_node g n then
                  Bdd.var man (Hashtbl.find input_index n)
                else
                  let f0, f1 = Aig.fanins g n in
                  Bdd.and_ man (lit_bdd f0) (lit_bdd f1)
              in
              Hashtbl.replace node_bdd n f;
              f
      and lit_bdd l =
        let f = go (Aig.node_of l) in
        if Aig.is_complement l then Bdd.not_ man f else f
      in
      let depth = ref 0 in
      List.iter
        (fun o ->
          List.iter
            (fun v -> depth := max !depth (Seqprob.Var.delay vars.(v)))
            (Bdd.support man (lit_bdd o)))
        outs;
      Ok !depth
