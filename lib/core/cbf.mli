(** Clocked Boolean Functions (Section 4.1, 5.1 of the paper).

    For an acyclic sequential circuit with regular latches, the CBF of each
    output is an ordinary Boolean function over time-indexed copies of the
    primary inputs: a latch output at relative delay [d] is its data input
    at delay [d+1].  {!unroll} materializes the CBFs {e directly as cones
    of a shared structurally-hashed AIG} (a {!Seqprob.builder}): input
    [(i, d)] becomes the typed variable [Seqprob.Var.time i d], and logic
    replicated across time frames — or shared with the other side of a
    comparison unrolled into the same builder — is hashed to a single
    node.

    Theorem 5.1: two such circuits are exact 3-valued equivalent iff their
    CBFs are equal — so equivalence of the unrolled cones (decided by
    {!Cec.check_problem}) decides sequential equivalence.

    Latches designated [exposed] are treated as an I/O boundary: their
    output is a fresh CBF variable and their data function is appended to
    the unrolled outputs (so that verification also checks the exposed
    next-state functions).  Exposed latches may be load-enabled (their
    enable is then also checked, as part of the data / enable output
    pair). *)

type info = {
  depth : int;  (** largest delay at which any input variable is used *)
  variables : int;  (** distinct (source, delay) variables of this unroll *)
  replication : int;
      (** gate instances translated (before structural hashing) — the size
          the unrolling would have as a netlist *)
}

val unroll :
  ?exposed:(Circuit.signal -> bool) ->
  Seqprob.builder ->
  Circuit.t ->
  (Aig.lit list * info, Seqprob.diagnosis) result
(** Unrolls into the builder's AIG and returns the output cones: the
    original primary outputs (in order) at delay 0, then for every exposed
    latch (in name order) its data CBF, then for every exposed
    load-enabled latch its enable CBF.  Non-exposed latches must be
    regular.  Diagnoses: [Non_exposed_cycle] for a sequential cycle that
    contains no exposed latch, [Hidden_enabled_latch] for a non-exposed
    load-enabled latch. *)

val unroll_netlist :
  ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * info
(** Reference implementation materializing the unrolling as a flat
    [Circuit.t] netlist (input [(i, d)] becomes a primary input named
    [var_name i d]), with no structural hashing.  Kept for netlist-level
    experiments and as the baseline the AIG path is measured against.
    @raise Invalid_argument on the conditions {!unroll} diagnoses. *)

val sequential_depth : ?exposed:(Circuit.signal -> bool) -> Circuit.t -> int
(** Topological latch depth (an upper bound on the functional sequential
    depth of Definition 4, which can be lower due to false
    dependencies). *)

val var_name : string -> int -> string
(** [var_name i d] is the printable name of the CBF variable for source
    [i] at delay [d] — [Seqprob.Var.to_string (Seqprob.Var.time i d)]
    (["i@0" = i] at the current cycle). *)

val functional_depth :
  ?exposed:(Circuit.signal -> bool) ->
  Circuit.t ->
  (int, Seqprob.diagnosis) result
(** The {e functional} sequential depth of Definition 4: the largest delay
    [d] such that some output (or exposed next-state function) truly
    depends on an input at delay [d].  Can be strictly smaller than
    {!sequential_depth} when deep paths carry only false dependencies
    (e.g. logic that cancels, like [q XOR q]).  Detected with BDDs built
    over the unrolled AIG, reading delays off the typed variables. *)
