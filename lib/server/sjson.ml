type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg pos))

(* ---------- parsing ---------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c.pos (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c.pos "bad hex digit in \\u escape"

let u16 c =
  if c.pos + 4 > String.length c.s then fail c.pos "truncated \\u escape";
  let v =
    (hex_digit c c.s.[c.pos] lsl 12)
    lor (hex_digit c c.s.[c.pos + 1] lsl 8)
    lor (hex_digit c c.s.[c.pos + 2] lsl 4)
    lor hex_digit c c.s.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.pos "truncated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hi = u16 c in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* surrogate pair *)
                  expect c '\\';
                  expect c 'u';
                  let lo = u16 c in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail c.pos "unpaired surrogate";
                  add_utf8 buf
                    (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if hi >= 0xDC00 && hi <= 0xDFFF then
                  fail c.pos "unpaired surrogate"
                else add_utf8 buf hi
            | _ -> fail (c.pos - 1) "bad escape");
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c.pos "raw control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = advance c in
  (match peek c with Some '-' -> consume () | _ -> ());
  while
    match peek c with
    | Some ('0' .. '9') ->
        consume ();
        true
    | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        consume ();
        true
    | _ -> false
  do
    ()
  done;
  let text = String.sub c.s start (c.pos - start) in
  if text = "" || text = "-" then fail start "expected number";
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail start "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c.pos "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c.pos "expected ',' or ']'"
        in
        items []
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage";
  v

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf ch
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---------- accessors ---------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
