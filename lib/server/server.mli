(** [seqver serve]: a long-lived concurrent verification server.

    One process owns the expensive shared state — a single {!Par.Pool}
    (every request's partitioned check runs on it; safe because the pool
    supports concurrent submitters), a single {!Cec.Cache.t} optionally
    backed by one persistent {!Store.t} — and answers line-delimited JSON
    requests over a Unix-domain socket.  Warm requests hit the shared
    cache/store, which is the whole point: the second verification of a
    structurally familiar miter costs a table lookup, not a SAT run.

    {b Architecture.}  The main thread accepts connections; each
    connection gets a reader {e thread} (cheap, blocks on socket reads);
    admitted [check] requests land on a bounded pending queue drained by
    [executors] worker {e domains}, each running the full verification on
    the shared pool.  Fairness is round-robin {e per connection}: one
    chatty client cannot starve the others.  [stats], [metrics], [trace]
    and [ping] answer inline from the reader thread, so the server is
    observable while saturated.

    {b Admission control.}  At most [max_pending] admitted-but-unstarted
    requests; beyond that a [check] is shed immediately with verdict
    [undecided], reason ["busy"] — the client sees a well-formed response,
    never a hang.

    {b Telemetry.}  Live {!Obs} metrics are always on: request-latency
    and queue-wait histograms ([server.request_seconds],
    [server.queue_wait_seconds]), queue/in-flight/connection gauges,
    per-engine solve-seconds histograms ([cec.engine_seconds.*]),
    per-cone-cost-decade histograms ([cec.cone_seconds.*]) and pool
    queue-wait/run histograms ([pool.*]).  Scraped three ways: the
    [stats] op (quantiles inline), the [metrics] op, and — when
    [metrics_addr] is set — a minimal HTTP/1.1 listener answering
    [GET /metrics] with Prometheus text exposition (format 0.0.4).

    {b Request tracing.}  Every [trace_sample]-th admitted check (by
    admission sequence number, so sampling is deterministic), plus every
    check slower than [slow_ms], lands in a bounded in-memory ring of 64
    entries: trace id, verdict, seconds, queue wait, engine, escalations,
    phase breakdown, and — when the request was captured — its span tree
    ({!Obs.capture}; spans emitted by pool-worker domains on the
    request's behalf are not included).  The ring is served by the
    [trace] op; [stats] summarizes the slow entries as a slow-request
    log.  Set [slow_ms = infinity] and [trace_sample = 0] to disable
    capture entirely.

    {b Shutdown.}  {!request_stop} (async-signal-safe — the CLI calls it
    from the SIGTERM/SIGINT handler) stops accepting, finishes every
    admitted request, joins the metrics listener, flushes and closes the
    store, joins every thread and domain, removes the socket, then
    {!run} returns.

    {b Wire protocol} (one JSON object per line, response mirrors the
    request's [id]):

    {v
    -> {"id":1,"op":"check","left":"@fifo64x16s","right":"@fifo64x16m",
        "exposed":"auto","engine":"sweep","timeout":30,"sat_conflicts":50000}
    <- {"id":1,"ok":true,"verdict":"equivalent","method":"CBF",
        "seconds":1.93,
        "phases":{"unroll_seconds":0.12,"cec_elapsed_seconds":1.71,
                  "partition_seconds":0.05,"sweep_cpu_seconds":3.1,
                  "sat_cpu_seconds":0.4,"bdd_cpu_seconds":0.0},
        "counters":{"sat_calls":18,"partitions":16,"cache_hits":0,
                    "store_hits":0,"store_writes":16}}
    v}

    [left]/[right] are ["@name"] (a {!Workloads.by_name} suite circuit)
    or inline {!Netlist_io} text.  [exposed] is a list of latch names,
    or ["auto"] (the default) for {!Feedback.plan_structural} on [left].
    [engine] is ["sweep"]/["sat"]/["bdd"]; [timeout] and [sat_conflicts]
    build the request's {!Cec.limits} (defaulting to the server's);
    [jobs] narrows the pool parallelism for this one request.
    An [inequivalent] response carries ["cex":[[var,bool],...]] when the
    counterexample is certified (CBF) and ["certified":false] when it is
    the conservative EDBF rejection.  Failures (bad netlist, unknown
    name, exposure diagnosis) answer [{"ok":false,"error":...}] — the
    connection survives.

    The other ops:
    - [{"op":"ping"}] returns [{"ok":true,"pong":true}].
    - [{"op":"stats"}] returns
      [{"ok":true,"uptime_seconds":...,
        "server":{"connections","checks","completed","shed","errors",
                  "inflight","pending","executors","pool_jobs",
                  "pool_spawned"},
        "config":{"executors","pool_jobs","max_pending","engine",
                  "timeout_seconds","sat_conflicts","cache_dir",
                  "metrics_addr","trace_sample","slow_ms"},
        "counters":{...live Obs counter totals...},
        "gauges":{...live Obs gauge values...},
        "latency":{"count","sum_seconds","p50_ms","p95_ms","p99_ms"},
        "queue_wait":{...same shape...},
        "dropped_events":N,
        "slow":[...up to 8 newest slow trace entries, no spans...],
        "store":{"entries","file_bytes","hits","misses","writes"}}]
      ([latency]/[queue_wait] are [null] before the first completed
      check; quantiles come from {!Obs.Histogram} and carry its
      bucket-bound error).
    - [{"op":"metrics"}] returns
      [{"ok":true,"content_type":"text/plain; version=0.0.4",
        "metrics":"...Prometheus exposition text..."}] — the scrape for
      socket-only deployments.
    - [{"op":"trace"}] returns
      [{"ok":true,"trace_ring_capacity":64,"traces":[...oldest to
        newest...]}]; each entry is
      [{"trace_id","id","verdict","seconds","queue_wait_seconds",
        "slow","sampled","engine","escalations",
        "phases":{"unroll_seconds","sweep_cpu_seconds","sat_cpu_seconds",
                  "bdd_cpu_seconds"},
        "spans":[{"name","count","total_seconds","self_seconds",
                  "children":[...]}]}]
      (error responses omit [engine]/[escalations]/[phases]; [spans] is
      [null] when the entry was kept for slowness without a capture). *)

type config = {
  socket_path : string;
  executors : int;  (** worker domains draining the admission queue *)
  pool_jobs : int;  (** parallelism of the one shared {!Par.Pool} *)
  max_pending : int;  (** admission bound: queued (unstarted) requests *)
  limits : Cec.limits;  (** default per-request budgets *)
  engine : Cec.engine;  (** default engine *)
  cache_dir : string option;
      (** back the shared cache with one persistent store *)
  metrics_addr : string option;
      (** ["host:port"], [":port"] or ["port"]: serve HTTP
          [GET /metrics] (Prometheus text exposition) on this TCP
          address; [None] disables the listener (the [metrics] wire op
          always works).  Port [0] binds an ephemeral port, readable via
          {!metrics_port}. *)
  trace_sample : int;
      (** capture every Nth admitted check's span tree into the trace
          ring; [0] disables periodic sampling *)
  slow_ms : float;
      (** checks at least this slow (wall-clock milliseconds) always
          enter the trace ring and the [stats] slow-request log;
          [infinity] disables the slow path *)
}

val default_config : socket_path:string -> config
(** 2 executors, pool of {!Par.cpu_count} jobs, 64 pending,
    {!Cec.default_limits}, sweep engine, no store, no HTTP metrics
    listener, no periodic sampling, [slow_ms = 500.]. *)

type t

val create : config -> t
(** Binds and listens on [socket_path] (an existing socket file is
    replaced) and on [metrics_addr] when set, opens the store when
    configured, enables live {!Obs} counters.  No thread is started yet.
    @raise Unix.Unix_error when a socket cannot be bound.
    @raise Invalid_argument on a malformed [metrics_addr] or a negative
    [trace_sample]. *)

val run : t -> unit
(** The accept loop; blocks until {!request_stop}, then drains (finishes
    every admitted request), tears everything down and returns.  Call at
    most once. *)

val start : config -> t
(** [create] plus {!run} on a background thread — the in-process form
    used by tests and the bench harness. *)

val request_stop : t -> unit
(** Begin graceful shutdown.  Only sets a flag — safe from a signal
    handler, safe to call repeatedly and from any thread. *)

val stop : t -> unit
(** {!request_stop}, then waits until {!run} has returned (joining the
    {!start} thread when there is one). *)

val socket_path : t -> string

val metrics_port : t -> int option
(** The TCP port the /metrics listener is bound to ([None] when
    [metrics_addr] is unset) — the actual port, so binding port [0]
    works in tests. *)

(** Blocking single-connection client for the wire protocol — what
    [seqver client] and the bench harness use.  One request at a time per
    connection; run several clients for concurrency. *)
module Client : sig
  type t

  val connect : ?retries:int -> string -> t
  (** Connects to the server socket.  [retries] (default 0) retries a
      refused/missing socket at 100 ms intervals — for scripts that
      start the daemon and connect immediately.
      @raise Unix.Unix_error when the connection (still) fails. *)

  val request : t -> Sjson.t -> Sjson.t
  (** Sends one request line, blocks for the one response line.
      @raise End_of_file if the server hangs up first. *)

  val close : t -> unit
end
