(** [seqver serve]: a long-lived concurrent verification server.

    One process owns the expensive shared state — a single {!Par.Pool}
    (every request's partitioned check runs on it; safe because the pool
    supports concurrent submitters), a single {!Cec.Cache.t} optionally
    backed by one persistent {!Store.t} — and answers line-delimited JSON
    requests over a Unix-domain socket.  Warm requests hit the shared
    cache/store, which is the whole point: the second verification of a
    structurally familiar miter costs a table lookup, not a SAT run.

    {b Architecture.}  The main thread accepts connections; each
    connection gets a reader {e thread} (cheap, blocks on socket reads);
    admitted [check] requests land on a bounded pending queue drained by
    [executors] worker {e domains}, each running the full verification on
    the shared pool.  Fairness is round-robin {e per connection}: one
    chatty client cannot starve the others.  [stats] and [ping] answer
    inline from the reader thread, so the server is observable while
    saturated.

    {b Admission control.}  At most [max_pending] admitted-but-unstarted
    requests; beyond that a [check] is shed immediately with verdict
    [undecided], reason ["busy"] — the client sees a well-formed response,
    never a hang.

    {b Shutdown.}  {!request_stop} (async-signal-safe — the CLI calls it
    from the SIGTERM/SIGINT handler) stops accepting, finishes every
    admitted request, flushes and closes the store, joins every thread
    and domain, removes the socket, then {!run} returns.

    {b Wire protocol} (one JSON object per line, response mirrors the
    request's [id]):

    {v
    -> {"id":1,"op":"check","left":"@fifo64x16s","right":"@fifo64x16m",
        "exposed":"auto","engine":"sweep","timeout":30,"sat_conflicts":50000}
    <- {"id":1,"ok":true,"verdict":"equivalent","method":"CBF",
        "seconds":1.93,
        "phases":{"unroll_seconds":0.12,"cec_elapsed_seconds":1.71,
                  "partition_seconds":0.05,"sweep_cpu_seconds":3.1,
                  "sat_cpu_seconds":0.4,"bdd_cpu_seconds":0.0},
        "counters":{"sat_calls":18,"partitions":16,"cache_hits":0,
                    "store_hits":0,"store_writes":16}}
    v}

    [left]/[right] are ["@name"] (a {!Workloads.by_name} suite circuit)
    or inline {!Netlist_io} text.  [exposed] is a list of latch names,
    or ["auto"] (the default) for {!Feedback.plan_structural} on [left].
    [engine] is ["sweep"]/["sat"]/["bdd"]; [timeout] and [sat_conflicts]
    build the request's {!Cec.limits} (defaulting to the server's);
    [jobs] narrows the pool parallelism for this one request.
    An [inequivalent] response carries ["cex":[[var,bool],...]] when the
    counterexample is certified (CBF) and ["certified":false] when it is
    the conservative EDBF rejection.  Failures (bad netlist, unknown
    name, exposure diagnosis) answer [{"ok":false,"error":...}] — the
    connection survives.  [{"op":"stats"}] returns live {!Obs} counter
    totals, per-server request counts and the store {!Store.info};
    [{"op":"ping"}] returns [{"ok":true,"pong":true}]. *)

type config = {
  socket_path : string;
  executors : int;  (** worker domains draining the admission queue *)
  pool_jobs : int;  (** parallelism of the one shared {!Par.Pool} *)
  max_pending : int;  (** admission bound: queued (unstarted) requests *)
  limits : Cec.limits;  (** default per-request budgets *)
  engine : Cec.engine;  (** default engine *)
  cache_dir : string option;
      (** back the shared cache with one persistent store *)
}

val default_config : socket_path:string -> config
(** 2 executors, pool of {!Par.cpu_count} jobs, 64 pending,
    {!Cec.default_limits}, sweep engine, no store. *)

type t

val create : config -> t
(** Binds and listens on [socket_path] (an existing socket file is
    replaced), opens the store when configured, enables live {!Obs}
    counters.  No thread is started yet.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val run : t -> unit
(** The accept loop; blocks until {!request_stop}, then drains (finishes
    every admitted request), tears everything down and returns.  Call at
    most once. *)

val start : config -> t
(** [create] plus {!run} on a background thread — the in-process form
    used by tests and the bench harness. *)

val request_stop : t -> unit
(** Begin graceful shutdown.  Only sets a flag — safe from a signal
    handler, safe to call repeatedly and from any thread. *)

val stop : t -> unit
(** {!request_stop}, then waits until {!run} has returned (joining the
    {!start} thread when there is one). *)

val socket_path : t -> string

(** Blocking single-connection client for the wire protocol — what
    [seqver client] and the bench harness use.  One request at a time per
    connection; run several clients for concurrency. *)
module Client : sig
  type t

  val connect : ?retries:int -> string -> t
  (** Connects to the server socket.  [retries] (default 0) retries a
      refused/missing socket at 100 ms intervals — for scripts that
      start the daemon and connect immediately.
      @raise Unix.Unix_error when the connection (still) fails. *)

  val request : t -> Sjson.t -> Sjson.t
  (** Sends one request line, blocks for the one response line.
      @raise End_of_file if the server hangs up first. *)

  val close : t -> unit
end
