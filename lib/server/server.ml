(* The verification server.  See server.mli for the architecture; the
   short version of the concurrency story:

     main thread          accept loop (select, polls the stop flag)
     reader threads       one per connection; parse lines, answer
                          ping/stats inline, submit checks
     executor domains     [cfg.executors] of them; drain the admission
                          queue round-robin per connection and run each
                          check on the ONE shared Par.Pool
     shared Par.Pool      intra-check parallelism, concurrent submitters

   Scheduler state lives under one mutex [t.m]; per-connection write
   serialization under each connection's [wm].  Lock order: never hold
   [t.m] while taking a [wm] or doing I/O — every send happens after
   [t.m] is released, so the two levels never nest. *)

type config = {
  socket_path : string;
  executors : int;
  pool_jobs : int;
  max_pending : int;
  limits : Cec.limits;
  engine : Cec.engine;
  cache_dir : string option;
  metrics_addr : string option;
  trace_sample : int;
  slow_ms : float;
}

let default_config ~socket_path =
  {
    socket_path;
    executors = 2;
    pool_jobs = Par.cpu_count ();
    max_pending = 64;
    limits = Cec.default_limits;
    engine = Cec.Sweep_engine;
    cache_dir = None;
    metrics_addr = None;
    trace_sample = 0;
    slow_ms = 500.;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  ic : in_channel;  (* reader thread only *)
  wm : Mutex.t;  (* serializes writes; guards [alive] *)
  mutable alive : bool;
}

type pending = {
  pconn : conn;
  req : Sjson.t;
  pseq : int;  (* 1-based admitted-check sequence number = trace id *)
  psub : float;  (* Clock.now at admission, for the queue-wait histogram *)
  pcapture : bool;  (* capture this request's span tree *)
}

(* per-request phase breakdown carried into the trace ring / slow log *)
type phases = {
  ph_unroll : float;
  ph_sweep : float;
  ph_sat : float;
  ph_bdd : float;
}

(* what the executor learns from a completed check besides the response *)
type req_meta = {
  m_verdict : string;
  m_engine : string;  (* requested engine *)
  m_escalations : int;
  m_phases : phases;
}

type trace_entry = {
  tr_seq : int;  (* trace id *)
  tr_id : Sjson.t;  (* client-supplied request id *)
  tr_verdict : string;  (* "equivalent" / ... / "error" *)
  tr_seconds : float;
  tr_queue_wait : float;
  tr_slow : bool;
  tr_sampled : bool;  (* picked by the 1-in-N policy (vs slow-only) *)
  tr_meta : req_meta option;  (* None for error responses *)
  tr_spans : Sjson.t;  (* span tree, or Null when not captured *)
}

let trace_ring_cap = 64

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  metrics_fd : Unix.file_descr option;  (* TCP /metrics listener *)
  t_created : float;  (* Obs.Clock.now at create, for uptime *)
  pool : Par.Pool.t;
  cache : Cec.Cache.t;
  store : Store.t option;
  stop_req : bool Atomic.t;  (* the only thing a signal handler touches *)
  m : Mutex.t;
  work_cv : Condition.t;  (* executors sleep here *)
  drain_cv : Condition.t;  (* run/stop wait here *)
  queues : (int, pending Queue.t) Hashtbl.t;  (* cid -> queued checks *)
  rr : int Queue.t;  (* cids with a nonempty queue, round-robin order *)
  mutable npending : int;  (* admitted, not yet started *)
  mutable inflight : int;  (* started, not yet finished *)
  mutable stopping : bool;  (* drain begun: no new admissions *)
  mutable quit : bool;  (* queue empty and drained: executors exit *)
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  mutable readers : Thread.t list;
  mutable runner : Thread.t option;  (* the [start] thread, if any *)
  mutable finished : bool;  (* [run] has returned *)
  (* request accounting, reported by the stats op *)
  mutable n_accepted : int;
  mutable n_checks : int;
  mutable n_completed : int;
  mutable n_shed : int;
  mutable n_errors : int;
  (* bounded ring of traced requests (sampled or slow), newest at
     [(t_pos - 1) mod cap]; guarded by [t.m] *)
  traces : trace_entry option array;
  mutable t_pos : int;
}

let socket_path t = t.cfg.socket_path

let metrics_port t =
  Option.map
    (fun fd ->
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> 0)
    t.metrics_fd

(* ---------- responses ---------- *)

let send conn (j : Sjson.t) =
  let line = Sjson.to_string j ^ "\n" in
  Mutex.lock conn.wm;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wm) @@ fun () ->
  if conn.alive then begin
    try
      let b = Bytes.of_string line in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write conn.fd b !off (n - !off)
      done
    with Unix.Unix_error _ | Sys_error _ ->
      (* client went away; its reader thread will clean up *)
      conn.alive <- false
  end

let conn_alive conn =
  Mutex.lock conn.wm;
  let a = conn.alive in
  Mutex.unlock conn.wm;
  a

let error_response id msg =
  Sjson.(Obj [ ("id", id); ("ok", Bool false); ("error", String msg) ])

let shed_response id reason =
  Sjson.(
    Obj
      [
        ("id", id);
        ("ok", Bool true);
        ("verdict", String "undecided");
        ("reason", String reason);
      ])

(* ---------- request decoding ---------- *)

let circuit_of req field =
  match Sjson.member field req with
  | Some (Sjson.String s) when String.length s > 0 && s.[0] = '@' -> (
      let name = String.sub s 1 (String.length s - 1) in
      (* any registered workload, hier designs' flattened sides included;
         the error carries the registry's near-miss suggestions *)
      match Workloads.lookup name with
      | Ok c -> c
      | Error msg -> failwith msg)
  | Some (Sjson.String s) -> Netlist_io.parse s
  | Some _ -> failwith (field ^ ": expected a string")
  | None -> failwith ("missing field " ^ field)

let exposed_of req c1 =
  match Sjson.member "exposed" req with
  | None | Some (Sjson.String "auto") ->
      (* the paper's default: expose a minimum feedback vertex set of the
         left circuit (names must also exist on the right, else the check
         reports the diagnosis) *)
      let plan = Feedback.plan_structural c1 in
      List.map (Circuit.signal_name c1) plan.Feedback.exposed
  | Some (Sjson.List l) ->
      List.map
        (fun v ->
          match Sjson.get_string v with
          | Some s -> s
          | None -> failwith "exposed: expected latch names")
        l
  | Some _ -> failwith "exposed: expected a list of names or \"auto\""

let engine_of cfg req =
  match Option.bind (Sjson.member "engine" req) Sjson.get_string with
  | None -> cfg.engine
  | Some "sweep" -> Cec.Sweep_engine
  | Some "sat" -> Cec.Sat_engine
  | Some "bdd" -> Cec.Bdd_engine
  | Some other -> failwith (Printf.sprintf "unknown engine %S" other)

let limits_of cfg req =
  let timeout = Option.bind (Sjson.member "timeout" req) Sjson.get_float in
  let sc = Option.bind (Sjson.member "sat_conflicts" req) Sjson.get_int in
  let l = cfg.limits in
  let l =
    match timeout with Some s -> { l with Cec.seconds = Some s } | None -> l
  in
  match sc with Some n -> { l with Cec.sat_conflicts = Some n } | None -> l

(* ---------- the check itself (executor domain) ---------- *)

(* Returns the wire response plus the metadata the executor needs for
   the trace ring / slow log ([None] on an error response). *)
let check_response t req =
  let id = Option.value ~default:Sjson.Null (Sjson.member "id" req) in
  try
    let c1 = circuit_of req "left" in
    let c2 = circuit_of req "right" in
    let exposed = exposed_of req c1 in
    let engine = engine_of t.cfg req in
    let limits = limits_of t.cfg req in
    let jobs = Option.bind (Sjson.member "jobs" req) Sjson.get_int in
    match
      Verify.check ~engine ?jobs ~pool:t.pool ~limits ~cache:t.cache ~exposed
        c1 c2
    with
    | Error d -> (error_response id (Seqprob.diagnosis_to_string d), None)
    | Ok outcome ->
        let s = outcome.Verify.stats in
        let cec = s.Verify.cec in
        let verdict_str =
          match outcome.Verify.verdict with
          | Verify.Equivalent -> "equivalent"
          | Verify.Inequivalent _ -> "inequivalent"
          | Verify.Undecided _ -> "undecided"
        in
        let meta =
          {
            m_verdict = verdict_str;
            m_engine = Cec.engine_name (engine_of t.cfg req);
            m_escalations = cec.Cec.escalations;
            m_phases =
              {
                ph_unroll = s.Verify.unroll_seconds;
                ph_sweep = cec.Cec.sweep_seconds;
                ph_sat = cec.Cec.sat_seconds;
                ph_bdd = cec.Cec.bdd_seconds;
              };
          }
        in
        let verdict_fields =
          match outcome.Verify.verdict with
          | Verify.Equivalent -> [ ("verdict", Sjson.String "equivalent") ]
          | Verify.Inequivalent (Some cex) ->
              [
                ("verdict", Sjson.String "inequivalent");
                ("certified", Sjson.Bool true);
                ( "cex",
                  Sjson.List
                    (List.map
                       (fun (v, b) ->
                         Sjson.List
                           [
                             Sjson.String (Seqprob.Var.to_string v);
                             Sjson.Bool b;
                           ])
                       cex) );
              ]
          | Verify.Inequivalent None ->
              [
                ("verdict", Sjson.String "inequivalent");
                ("certified", Sjson.Bool false);
              ]
          | Verify.Undecided reason ->
              [
                ("verdict", Sjson.String "undecided");
                ("reason", Sjson.String reason);
              ]
        in
        ( Sjson.Obj
            ([ ("id", id); ("ok", Sjson.Bool true) ]
            @ verdict_fields
            @ [
              ( "method",
                Sjson.String
                  (match s.Verify.method_ with
                  | Verify.Cbf_method -> "CBF"
                  | Verify.Edbf_method -> "EDBF") );
              ("seconds", Sjson.Float s.Verify.seconds);
              ( "phases",
                Sjson.Obj
                  [
                    ("unroll_seconds", Sjson.Float s.Verify.unroll_seconds);
                    ( "cec_elapsed_seconds",
                      Sjson.Float cec.Cec.elapsed_seconds );
                    ("partition_seconds", Sjson.Float cec.Cec.partition_seconds);
                    ("sweep_cpu_seconds", Sjson.Float cec.Cec.sweep_seconds);
                    ("sat_cpu_seconds", Sjson.Float cec.Cec.sat_seconds);
                    ("bdd_cpu_seconds", Sjson.Float cec.Cec.bdd_seconds);
                  ] );
                ( "counters",
                  Sjson.Obj
                    [
                      ("sat_calls", Sjson.Int cec.Cec.sat_calls);
                      ("partitions", Sjson.Int cec.Cec.partitions);
                      ("cache_hits", Sjson.Int cec.Cec.cache_hits);
                      ("store_hits", Sjson.Int cec.Cec.store_hits);
                      ("store_writes", Sjson.Int cec.Cec.store_writes);
                    ] );
              ]),
          Some meta )
  with e -> (error_response id (Printexc.to_string e), None)

(* ---------- traces, stats, metrics (reader thread, answered inline) ---------- *)

let rec span_node_json (n : Obs.Summary.node) =
  Sjson.Obj
    [
      ("name", Sjson.String n.Obs.Summary.name);
      ("count", Sjson.Int n.Obs.Summary.count);
      ("total_seconds", Sjson.Float n.Obs.Summary.total);
      ("self_seconds", Sjson.Float n.Obs.Summary.self);
      ("children", Sjson.List (List.map span_node_json n.Obs.Summary.children));
    ]

let span_tree_json events =
  Sjson.List (List.map span_node_json (Obs.Summary.tree events))

let phases_json ph =
  Sjson.Obj
    [
      ("unroll_seconds", Sjson.Float ph.ph_unroll);
      ("sweep_cpu_seconds", Sjson.Float ph.ph_sweep);
      ("sat_cpu_seconds", Sjson.Float ph.ph_sat);
      ("bdd_cpu_seconds", Sjson.Float ph.ph_bdd);
    ]

let trace_entry_json ~with_spans e =
  let meta_fields =
    match e.tr_meta with
    | None -> []
    | Some m ->
        [
          ("engine", Sjson.String m.m_engine);
          ("escalations", Sjson.Int m.m_escalations);
          ("phases", phases_json m.m_phases);
        ]
  in
  Sjson.Obj
    ([
       ("trace_id", Sjson.Int e.tr_seq);
       ("id", e.tr_id);
       ("verdict", Sjson.String e.tr_verdict);
       ("seconds", Sjson.Float e.tr_seconds);
       ("queue_wait_seconds", Sjson.Float e.tr_queue_wait);
       ("slow", Sjson.Bool e.tr_slow);
       ("sampled", Sjson.Bool e.tr_sampled);
     ]
    @ meta_fields
    @ if with_spans then [ ("spans", e.tr_spans) ] else [])

(* Caller holds [t.m].  Newest-first list of ring entries. *)
let ring_entries t =
  let cap = Array.length t.traces in
  let rec go i acc =
    if i >= cap then acc
    else
      match t.traces.((t.t_pos - 1 - i + (2 * cap)) mod cap) with
      | None -> acc
      | Some e -> go (i + 1) (e :: acc)
  in
  List.rev (go 0 [])

(* Caller holds [t.m]. *)
let push_trace t e =
  t.traces.(t.t_pos mod Array.length t.traces) <- Some e;
  t.t_pos <- t.t_pos + 1

let quantiles_json name =
  match Obs.Histogram.find name with
  | None -> Sjson.Null
  | Some h ->
      let q p = Sjson.Float (Obs.Histogram.quantile h p *. 1000.) in
      Sjson.Obj
        [
          ("count", Sjson.Int h.Obs.Histogram.count);
          ("sum_seconds", Sjson.Float h.Obs.Histogram.sum);
          ("p50_ms", q 0.5);
          ("p95_ms", q 0.95);
          ("p99_ms", q 0.99);
        ]

let config_json cfg =
  Sjson.Obj
    [
      ("executors", Sjson.Int cfg.executors);
      ("pool_jobs", Sjson.Int cfg.pool_jobs);
      ("max_pending", Sjson.Int cfg.max_pending);
      ("engine", Sjson.String (Cec.engine_name cfg.engine));
      ( "timeout_seconds",
        match cfg.limits.Cec.seconds with
        | None -> Sjson.Null
        | Some s -> Sjson.Float s );
      ( "sat_conflicts",
        match cfg.limits.Cec.sat_conflicts with
        | None -> Sjson.Null
        | Some n -> Sjson.Int n );
      ( "cache_dir",
        match cfg.cache_dir with
        | None -> Sjson.Null
        | Some d -> Sjson.String d );
      ( "metrics_addr",
        match cfg.metrics_addr with
        | None -> Sjson.Null
        | Some a -> Sjson.String a );
      ("trace_sample", Sjson.Int cfg.trace_sample);
      ("slow_ms", Sjson.Float cfg.slow_ms);
    ]

(* Point-in-time gauges only the server can compute; refreshed on every
   scrape (stats, metrics op, GET /metrics) rather than on a timer. *)
let refresh_scrape_gauges t =
  Obs.Gauge.set "pool.spawned" (float_of_int (Par.Pool.spawned t.pool));
  match t.store with
  | None -> ()
  | Some st ->
      let i = Store.info st in
      Obs.Gauge.set "store.entries" (float_of_int i.Store.entries);
      Obs.Gauge.set "store.file_bytes" (float_of_int i.Store.file_bytes)

let stats_response t id =
  refresh_scrape_gauges t;
  Mutex.lock t.m;
  let server =
    Sjson.Obj
      [
        ("connections", Sjson.Int t.n_accepted);
        ("checks", Sjson.Int t.n_checks);
        ("completed", Sjson.Int t.n_completed);
        ("shed", Sjson.Int t.n_shed);
        ("errors", Sjson.Int t.n_errors);
        ("inflight", Sjson.Int t.inflight);
        ("pending", Sjson.Int t.npending);
        ("executors", Sjson.Int t.cfg.executors);
        ("pool_jobs", Sjson.Int (Par.Pool.jobs t.pool));
        ("pool_spawned", Sjson.Int (Par.Pool.spawned t.pool));
      ]
  in
  let slow =
    ring_entries t
    |> List.filter (fun e -> e.tr_slow)
    |> List.filteri (fun i _ -> i < 8)
    |> List.map (trace_entry_json ~with_spans:false)
  in
  Mutex.unlock t.m;
  let counters =
    Sjson.Obj
      (List.map (fun (k, v) -> (k, Sjson.Int v)) (Obs.Counters.snapshot ()))
  in
  let gauges =
    Sjson.Obj
      (List.map (fun (k, v) -> (k, Sjson.Float v)) (Obs.Gauge.snapshot ()))
  in
  let store =
    match t.store with
    | None -> Sjson.Null
    | Some st ->
        let i = Store.info st in
        Sjson.Obj
          [
            ("entries", Sjson.Int i.Store.entries);
            ("file_bytes", Sjson.Int i.Store.file_bytes);
            ("hits", Sjson.Int i.Store.hits);
            ("misses", Sjson.Int i.Store.misses);
            ("writes", Sjson.Int i.Store.writes);
          ]
  in
  Sjson.Obj
    [
      ("id", id);
      ("ok", Sjson.Bool true);
      ("uptime_seconds", Sjson.Float (Obs.Clock.now () -. t.t_created));
      ("server", server);
      ("config", config_json t.cfg);
      ("counters", counters);
      ("gauges", gauges);
      ("latency", quantiles_json "server.request_seconds");
      ("queue_wait", quantiles_json "server.queue_wait_seconds");
      ("dropped_events", Sjson.Int (Obs.dropped_events ()));
      ("slow", Sjson.List slow);
      ("store", store);
    ]

let metrics_text t =
  refresh_scrape_gauges t;
  Obs.Prom.to_string ()

let metrics_response t id =
  Sjson.Obj
    [
      ("id", id);
      ("ok", Sjson.Bool true);
      ("content_type", Sjson.String "text/plain; version=0.0.4");
      ("metrics", Sjson.String (metrics_text t));
    ]

let trace_response t id =
  Mutex.lock t.m;
  (* newest-first ring order flipped: the wire presents oldest to newest *)
  let entries = List.rev (ring_entries t) in
  Mutex.unlock t.m;
  Sjson.Obj
    [
      ("id", id);
      ("ok", Sjson.Bool true);
      ("trace_ring_capacity", Sjson.Int trace_ring_cap);
      ("traces", Sjson.List (List.map (trace_entry_json ~with_spans:true) entries));
    ]

(* ---------- scheduling ---------- *)

(* Caller holds [t.m].  Pops the next request round-robin by connection:
   first cid in [rr], one request from its queue, cid re-queued at the
   tail while its queue stays nonempty — a connection streaming 100
   requests shares the executors equally with one sending a single
   request. *)
let take_next t =
  match Queue.take_opt t.rr with
  | None -> None
  | Some cid -> (
      match Hashtbl.find_opt t.queues cid with
      | None -> None (* unreachable: rr entries always have a queue *)
      | Some q ->
          let item = Queue.pop q in
          if Queue.is_empty q then Hashtbl.remove t.queues cid
          else Queue.add cid t.rr;
          t.npending <- t.npending - 1;
          Some item)

let submit t conn req id =
  Mutex.lock t.m;
  let decision =
    if t.stopping then `Shed "shutting down"
    else if t.npending >= t.cfg.max_pending then `Shed "busy"
    else begin
      let q =
        match Hashtbl.find_opt t.queues conn.cid with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace t.queues conn.cid q;
            q
      in
      if Queue.is_empty q then Queue.add conn.cid t.rr;
      t.n_checks <- t.n_checks + 1;
      let pseq = t.n_checks in
      (* deterministic 1-in-N sampling by admission sequence number; a
         finite slow threshold also needs the capture, because slowness is
         only known at completion *)
      let pcapture =
        (t.cfg.trace_sample > 0 && pseq mod t.cfg.trace_sample = 0)
        || Float.is_finite t.cfg.slow_ms
      in
      Queue.add
        { pconn = conn; req; pseq; psub = Obs.Clock.now (); pcapture }
        q;
      t.npending <- t.npending + 1;
      Obs.Gauge.set "server.pending" (float_of_int t.npending);
      Condition.signal t.work_cv;
      `Admitted
    end
  in
  (match decision with `Shed _ -> t.n_shed <- t.n_shed + 1 | `Admitted -> ());
  Mutex.unlock t.m;
  match decision with
  | `Admitted -> Obs.count "server.admitted" 1
  | `Shed reason ->
      Obs.count "server.shed" 1;
      send conn (shed_response id reason)

let executor t () =
  let rec loop () =
    Mutex.lock t.m;
    while (not t.quit) && Queue.is_empty t.rr do
      Condition.wait t.work_cv t.m
    done;
    match take_next t with
    | None ->
        (* quit, queue drained *)
        Mutex.unlock t.m
    | Some { pconn; req; pseq; psub; pcapture } ->
        t.inflight <- t.inflight + 1;
        Obs.Gauge.set "server.pending" (float_of_int t.npending);
        Obs.Gauge.set "server.inflight" (float_of_int t.inflight);
        Mutex.unlock t.m;
        let queue_wait = Obs.Clock.now () -. psub in
        Obs.observe "server.queue_wait_seconds" queue_wait;
        (* a client that disconnected while queued gets no check run on
           its behalf — the response could never be delivered *)
        let result =
          if not (conn_alive pconn) then None
          else begin
            let t0 = Obs.Clock.now () in
            let (resp, meta), events =
              if pcapture then Obs.capture (fun () -> check_response t req)
              else (check_response t req, [])
            in
            let dt = Obs.Clock.now () -. t0 in
            Obs.observe "server.request_seconds" dt;
            Some (resp, meta, events, dt)
          end
        in
        let failed =
          match result with
          | Some (Sjson.Obj kvs, _, _, _) ->
              List.assoc_opt "ok" kvs = Some (Sjson.Bool false)
          | _ -> false
        in
        (* account BEFORE sending: a client that reads its response and
           immediately asks for stats must see this check completed *)
        Obs.count "server.completed" 1;
        Mutex.lock t.m;
        t.inflight <- t.inflight - 1;
        Obs.Gauge.set "server.inflight" (float_of_int t.inflight);
        t.n_completed <- t.n_completed + 1;
        if failed then t.n_errors <- t.n_errors + 1;
        (* trace ring: keep the request if it was picked by the sampler or
           turned out slow; spans only exist when the capture ran *)
        (match result with
        | None -> ()
        | Some (_, meta, events, dt) ->
            let sampled =
              t.cfg.trace_sample > 0 && pseq mod t.cfg.trace_sample = 0
            in
            let slow = dt *. 1000. >= t.cfg.slow_ms in
            if sampled || slow then
              push_trace t
                {
                  tr_seq = pseq;
                  tr_id =
                    Option.value ~default:Sjson.Null (Sjson.member "id" req);
                  tr_verdict =
                    (match meta with
                    | Some m -> m.m_verdict
                    | None -> "error");
                  tr_seconds = dt;
                  tr_queue_wait = queue_wait;
                  tr_slow = slow;
                  tr_sampled = sampled;
                  tr_meta = meta;
                  tr_spans =
                    (if pcapture then span_tree_json events else Sjson.Null);
                });
        Condition.broadcast t.drain_cv;
        Mutex.unlock t.m;
        (match result with Some (r, _, _, _) -> send pconn r | None -> ());
        loop ()
  in
  loop ()

(* ---------- connections ---------- *)

let handle_line t conn line =
  match Sjson.parse line with
  | exception Sjson.Parse_error msg ->
      Mutex.lock t.m;
      t.n_errors <- t.n_errors + 1;
      Mutex.unlock t.m;
      send conn (error_response Sjson.Null ("parse error: " ^ msg))
  | req -> (
      let id = Option.value ~default:Sjson.Null (Sjson.member "id" req) in
      match Option.bind (Sjson.member "op" req) Sjson.get_string with
      | Some "ping" ->
          send conn
            (Sjson.Obj
               [ ("id", id); ("ok", Sjson.Bool true); ("pong", Sjson.Bool true) ])
      | Some "check" -> submit t conn req id
      | Some "stats" -> send conn (stats_response t id)
      | Some "metrics" -> send conn (metrics_response t id)
      | Some "trace" -> send conn (trace_response t id)
      | Some op ->
          Mutex.lock t.m;
          t.n_errors <- t.n_errors + 1;
          Mutex.unlock t.m;
          send conn (error_response id (Printf.sprintf "unknown op %S" op))
      | None ->
          Mutex.lock t.m;
          t.n_errors <- t.n_errors + 1;
          Mutex.unlock t.m;
          send conn (error_response id "missing op"))

let reader t conn () =
  (try
     while true do
       let line = input_line conn.ic in
       if String.trim line <> "" then handle_line t conn line
     done
   with End_of_file | Sys_error _ -> ());
  (* mark dead under [wm] BEFORE closing the fd, so no executor write can
     land on a closed (or recycled) descriptor *)
  Mutex.lock conn.wm;
  conn.alive <- false;
  Mutex.unlock conn.wm;
  close_in_noerr conn.ic;
  Mutex.lock t.m;
  Hashtbl.remove t.conns conn.cid;
  Obs.Gauge.set "server.connections_open" (float_of_int (Hashtbl.length t.conns));
  Mutex.unlock t.m

let spawn_reader t fd =
  Mutex.lock t.m;
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  t.n_accepted <- t.n_accepted + 1;
  let conn =
    {
      cid;
      fd;
      ic = Unix.in_channel_of_descr fd;
      wm = Mutex.create ();
      alive = true;
    }
  in
  Hashtbl.replace t.conns cid conn;
  Obs.Gauge.set "server.connections_open" (float_of_int (Hashtbl.length t.conns));
  let th = Thread.create (reader t conn) () in
  t.readers <- th :: t.readers;
  Mutex.unlock t.m;
  Obs.count "server.connections" 1

(* ---------- the /metrics HTTP listener ---------- *)

(* "host:port", ":port" or "port"; the host must be numeric (or
   "localhost") — this is a scrape endpoint, not a web server. *)
let parse_metrics_addr s =
  let host, port =
    match String.rindex_opt s ':' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> ("", s)
  in
  let host = if host = "" then "127.0.0.1" else host in
  let host = if host = "localhost" then "127.0.0.1" else host in
  let port =
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 -> p
    | _ -> invalid_arg ("Server: bad --metrics-addr port in " ^ s)
  in
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> invalid_arg ("Server: bad --metrics-addr host in " ^ s)
  in
  (addr, port)

let bind_metrics addr_str =
  let addr, port = parse_metrics_addr addr_str in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 16;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* One scrape at a time, handled inline in the metrics thread: reads the
   request head, answers GET /metrics with the exposition, everything
   else with 404, then closes (Connection: close).  A stuck client is
   bounded by the socket receive timeout. *)
let serve_http_client t cfd =
  (try Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 5. with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr cfd in
  let respond status ctype body =
    let msg =
      Printf.sprintf
        "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
        status ctype (String.length body) body
    in
    let b = Bytes.of_string msg in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write cfd b !off (n - !off)
    done
  in
  (try
     let request_line = input_line ic in
     (* drain the headers so the client sees a clean close *)
     (try
        while
          let l = input_line ic in
          String.trim l <> ""
        do
          ()
        done
      with End_of_file -> ());
     match String.split_on_char ' ' (String.trim request_line) with
     | "GET" :: path :: _
       when path = "/metrics"
            || String.length path > 8
               && String.sub path 0 9 = "/metrics?" ->
         respond "200 OK" "text/plain; version=0.0.4; charset=utf-8"
           (metrics_text t)
     | _ -> respond "404 Not Found" "text/plain" "not found\n"
   with End_of_file | Unix.Unix_error _ | Sys_error _ -> ());
  close_in_noerr ic

let rec metrics_loop t fd =
  if not (Atomic.get t.stop_req) then begin
    (match Unix.select [ fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true fd with
        | exception Unix.Unix_error _ -> ()
        | cfd, _ -> serve_http_client t cfd));
    metrics_loop t fd
  end

(* ---------- lifecycle ---------- *)

let create cfg =
  if
    cfg.executors < 1 || cfg.pool_jobs < 1 || cfg.max_pending < 0
    || cfg.trace_sample < 0
  then invalid_arg "Server.create: bad config";
  (* a client hanging up mid-response must be an EPIPE error, not a
     process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let store = Option.map Store.open_ cfg.cache_dir in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Option.iter Store.close store;
     raise e);
  let metrics_fd =
    match cfg.metrics_addr with
    | None -> None
    | Some a -> (
        try Some (bind_metrics a)
        with e ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Option.iter Store.close store;
          raise e)
  in
  Obs.enable_counters ();
  {
    cfg;
    listen_fd;
    metrics_fd;
    t_created = Obs.Clock.now ();
    pool = Par.Pool.create ~jobs:cfg.pool_jobs;
    cache = Cec.Cache.create ?store ();
    store;
    stop_req = Atomic.make false;
    m = Mutex.create ();
    work_cv = Condition.create ();
    drain_cv = Condition.create ();
    queues = Hashtbl.create 16;
    rr = Queue.create ();
    npending = 0;
    inflight = 0;
    stopping = false;
    quit = false;
    conns = Hashtbl.create 16;
    next_cid = 0;
    readers = [];
    runner = None;
    finished = false;
    n_accepted = 0;
    n_checks = 0;
    n_completed = 0;
    n_shed = 0;
    n_errors = 0;
    traces = Array.make trace_ring_cap None;
    t_pos = 0;
  }

let request_stop t = Atomic.set t.stop_req true

let rec accept_loop t =
  if not (Atomic.get t.stop_req) then begin
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> spawn_reader t fd));
    accept_loop t
  end

let run t =
  let execs =
    List.init t.cfg.executors (fun _ -> Domain.spawn (executor t))
  in
  let metrics_th =
    Option.map (fun fd -> Thread.create (fun () -> metrics_loop t fd) ()) t.metrics_fd
  in
  accept_loop t;
  (* 1. stop accepting *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Thread.join metrics_th;
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.metrics_fd;
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  (* 2. drain: no new admissions, finish everything admitted *)
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  while t.npending > 0 || t.inflight > 0 do
    Condition.wait t.drain_cv t.m
  done;
  (* 3. release the executors *)
  t.quit <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  List.iter Domain.join execs;
  (* 4. hang up on the remaining connections and join their readers.
     [shutdown] (not [close]) wakes a reader blocked in [input_line] while
     leaving the fd for the reader's own close; a reader that already
     closed makes this EBADF, which is fine — nothing opens new fds at
     this point, so the descriptor cannot have been recycled. *)
  Mutex.lock t.m;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let readers = t.readers in
  t.readers <- [];
  Mutex.unlock t.m;
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    conns;
  List.iter Thread.join readers;
  (* 5. shared state: pool down, store flushed and closed *)
  Par.Pool.shutdown t.pool;
  Option.iter Store.close t.store;
  Mutex.lock t.m;
  t.finished <- true;
  Condition.broadcast t.drain_cv;
  Mutex.unlock t.m

let start cfg =
  let t = create cfg in
  let th = Thread.create run t in
  t.runner <- Some th;
  t

let stop t =
  request_stop t;
  match t.runner with
  | Some th -> Thread.join th
  | None ->
      Mutex.lock t.m;
      while not t.finished do
        Condition.wait t.drain_cv t.m
      done;
      Mutex.unlock t.m

(* ---------- client ---------- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect ?(retries = 0) path =
    let rec go attempt =
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> { fd; ic = Unix.in_channel_of_descr fd }
      | exception
          Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        when attempt < retries ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.1;
          go (attempt + 1)
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    go 0

  let request t j =
    let line = Sjson.to_string j ^ "\n" in
    let b = Bytes.of_string line in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write t.fd b !off (n - !off)
    done;
    Sjson.parse (input_line t.ic)

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
