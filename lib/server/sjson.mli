(** Minimal JSON for the server's line-delimited wire protocol.

    The repository carries no JSON dependency; this is a small, strict
    parser/printer covering exactly what the protocol needs: the standard
    seven value shapes, UTF-8 pass-through, [\uXXXX] escapes (surrogate
    pairs included) decoded to UTF-8 on input.  Numbers without a
    fraction or exponent parse as [Int]; everything else as [Float].
    Printing never emits newlines, so one value is always one line. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} on malformed input; the message includes the
    offending byte offset. *)

val parse : string -> t
(** Parses exactly one JSON value (leading/trailing whitespace allowed;
    trailing garbage is an error). *)

val to_string : t -> string
(** Compact single-line rendering; strings are escaped, non-finite floats
    print as [null] (they have no JSON form). *)

(** {1 Accessors} — total, [None]/default on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val get_string : t -> string option
val get_int : t -> int option
val get_float : t -> float option
(** [get_float] also accepts [Int]. *)

val get_bool : t -> bool option
val get_list : t -> t list option
