type report = { removed : int; sat_calls : int; area_before : int; area_after : int }

(* Rebuild [c] with fanin position [j] of gate [g] tied to constant [b]. *)
let with_fault c ~gate ~pos ~const =
  let nc = Circuit.create (Circuit.name c) in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  for s = 0 to Circuit.signal_count c - 1 do
    let ns =
      match Circuit.driver c s with
      | Input -> Circuit.add_input nc (Circuit.signal_name c s)
      | Undriven | Gate _ | Latch _ -> Circuit.declare nc ~name:(Circuit.signal_name c s) ()
    in
    Hashtbl.replace map s ns
  done;
  let const_sig = if const then Circuit.const_true nc else Circuit.const_false nc in
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Undriven | Input -> ()
    | Latch { data; enable } ->
        Circuit.set_latch nc (get s) ?enable:(Option.map get enable) ~data:(get data) ()
    | Gate (fn, fs) ->
        let fanins =
          Array.to_list
            (Array.mapi (fun j f -> if s = gate && j = pos then const_sig else get f) fs)
        in
        Circuit.set_gate nc (get s) fn fanins
  done;
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  Circuit.check nc;
  nc

(* 64-pattern fault screening: recompute everything at or after [gate] in
   topological order with the faulty fanin and compare the sink words. *)
let screen c ~topo ~pos_of ~base ~words ~sinks ~gate ~pos ~const =
  let n = Circuit.signal_count c in
  let value = Array.make n 0L in
  Array.blit base 0 value 0 n;
  let const_word = if const then Int64.minus_one else 0L in
  let start = pos_of.(gate) in
  let rec go rest =
    match rest with
    | [] -> ()
    | s :: tl ->
        (match Circuit.driver c s with
        | Gate (fn, fs) ->
            let ins =
              Array.mapi
                (fun j f -> if s = gate && j = pos then const_word else value.(f))
                fs
            in
            value.(s) <- Eval.gate_eval_word fn ins
        | Undriven | Input | Latch _ -> assert false);
        go tl
  in
  ignore words;
  go (List.filteri (fun i _ -> i >= start) topo);
  List.for_all (fun s -> Int64.equal value.(s) base.(s)) sinks

let sinks_of c =
  Circuit.outputs c
  @ List.concat_map
      (fun l ->
        let data, enable = Circuit.latch_info c l in
        match enable with None -> [ data ] | Some e -> [ data; e ])
      (Circuit.latches c)

let run ?(max_rounds = 50) c =
  Circuit.check c;
  let area_before = Circuit.area c in
  let st = Random.State.make [| 0x8edd |] in
  let removed = ref 0 in
  let sat_calls = ref 0 in
  let current = ref c in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < max_rounds do
    incr round;
    continue := false;
    let c = !current in
    let topo = Circuit.comb_topo c in
    let pos_of = Array.make (Circuit.signal_count c) max_int in
    List.iteri (fun i s -> pos_of.(s) <- i) topo;
    let words = Hashtbl.create 64 in
    let source s =
      match Hashtbl.find_opt words s with
      | Some w -> w
      | None ->
          let w = Random.State.int64 st Int64.max_int in
          Hashtbl.replace words s w;
          w
    in
    let base = Eval.comb_eval_words c ~source in
    let sinks = sinks_of c in
    (* scan gates in topological order; commit at most one removal per gate
       per round (a committed fault invalidates this round's base words for
       downstream candidates, so we re-enter with a fresh round) *)
    let committed = ref false in
    List.iter
      (fun g ->
        if not !committed then
          match Circuit.driver c g with
          | Gate ((Const _ | Buf), _) -> ()
          | Gate (_, fs) ->
              Array.iteri
                (fun j _ ->
                  if not !committed then
                    List.iter
                      (fun const ->
                        if
                          (not !committed)
                          && screen c ~topo ~pos_of ~base ~words ~sinks ~gate:g ~pos:j
                               ~const
                        then begin
                          (* SAT confirmation on the combinational views *)
                          let faulty = with_fault c ~gate:g ~pos:j ~const in
                          let v, cstats =
                            Cec.check_with_stats ~engine:Cec.Sat_engine
                              (Comb_view.of_sequential c)
                              (Comb_view.of_sequential faulty)
                          in
                          sat_calls := !sat_calls + cstats.Cec.sat_calls;
                          match v with
                          | Cec.Equivalent ->
                              current := faulty;
                              incr removed;
                              committed := true;
                              continue := true
                          (* without a proof the fault is kept un-removed *)
                          | Cec.Inequivalent _ | Cec.Undecided _ -> ()
                        end)
                      [ false; true ])
                fs
          | Undriven | Input | Latch _ -> ())
      (Circuit.gates c)
  done;
  let result = Sweep_pass.run !current in
  ( result,
    {
      removed = !removed;
      sat_calls = !sat_calls;
      area_before;
      area_after = Circuit.area result;
    } )
