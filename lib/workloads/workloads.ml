(* All generators are deterministic in their parameters (fixed seeds). *)

(* Array-backed signal pool: O(1) pick (list pools are quadratic at the
   industrial sizes of Table 2). *)
type pool = { mutable data : Circuit.signal array; mutable len : int }

let pool_of_list l =
  let data = Array.of_list l in
  { data = (if Array.length data = 0 then Array.make 4 0 else data); len = Array.length data }

let pool_add p s =
  if p.len = Array.length p.data then begin
    let d = Array.make (2 * p.len) 0 in
    Array.blit p.data 0 d 0 p.len;
    p.data <- d
  end;
  p.data.(p.len) <- s;
  p.len <- p.len + 1

let pick st p = p.data.(Random.State.int st p.len)

let random_gate st c pool =
  let fn : Circuit.gate_fn =
    match Random.State.int st 8 with
    | 0 -> And
    | 1 -> Or
    | 2 -> Nand
    | 3 -> Nor
    | 4 | 5 -> Xor
    | 6 -> Not
    | _ -> Mux
  in
  let arity = match fn with Not -> 1 | Mux -> 3 | _ -> 2 in
  Circuit.add_gate c fn (List.init arity (fun _ -> pick st pool))

(* A block of [n] random gates over [ins]; returns [outs] freshly picked
   from the created gates (so depth grows with n). *)
let logic_block st c ~ins ~gates ~outs =
  let p = pool_of_list ins in
  let created = pool_of_list [] in
  for _ = 1 to gates do
    let g = random_gate st c p in
    pool_add p g;
    pool_add created g
  done;
  let deep = if created.len = 0 then p else created in
  List.init outs (fun _ -> pick st deep)

(* ---- minmax ---- *)

(* Tree comparator (log depth): true iff a < b (unsigned, a.(0) = LSB). *)
let tree_less c a b =
  let w = Array.length a in
  (* per-bit (lt, eq) pairs, combined pairwise: MSB side dominates *)
  let bits =
    List.init w (fun i ->
        let j = w - 1 - i in
        (* list is MSB-first *)
        let na = Circuit.add_gate c Not [ a.(j) ] in
        let lt = Circuit.add_gate c And [ na; b.(j) ] in
        let eq = Circuit.add_gate c Xnor [ a.(j); b.(j) ] in
        (lt, eq))
  in
  let combine (lt_hi, eq_hi) (lt_lo, eq_lo) =
    let lt = Circuit.add_gate c Or [ lt_hi; Circuit.add_gate c And [ eq_hi; lt_lo ] ] in
    let eq = Circuit.add_gate c And [ eq_hi; eq_lo ] in
    (lt, eq)
  in
  let rec reduce = function
    | [] -> (Circuit.const_false c, Circuit.const_true c)
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | x :: y :: rest -> combine x y :: pair rest
          | rest -> rest
        in
        reduce (pair xs)
  in
  fst (reduce bits)

let minmax ~width =
  let c = Circuit.create (Printf.sprintf "minmax%d" width) in
  let din = Array.init width (fun i -> Circuit.add_input c (Printf.sprintf "in%d" i)) in
  let reset = Circuit.add_input c "reset" in
  (* Input conditioning: a deep, unbalanced mixing chain in front of the
     input registers.  It is purely combinational, so the latch count stays
     at 3*width, but its depth dwarfs the (log-depth) comparator loop —
     min-period retiming recovers the slack by moving the input bank into
     the chain (the delay gains of the paper's minmax rows). *)
  let cond = Array.make width din.(0) in
  let acc = ref din.(0) in
  for pass = 0 to 1 do
    for i = 0 to width - 1 do
      acc := Circuit.add_gate c Xor [ !acc; din.(i) ];
      let mixed = Circuit.add_gate c Xnor [ !acc; din.((i + pass + 1) mod width) ] in
      cond.(i) <-
        Circuit.add_gate c And
          [ mixed; Circuit.add_gate c Or [ (if pass = 0 then din.(i) else cond.(i)); !acc ] ]
    done
  done;
  (* input register bank *)
  let inreg = Array.map (fun d -> Circuit.add_latch c ~data:d ()) cond in
  (* min and max feedback registers *)
  let minreg = Array.init width (fun i -> Circuit.declare c ~name:(Printf.sprintf "min%d" i) ()) in
  let maxreg = Array.init width (fun i -> Circuit.declare c ~name:(Printf.sprintf "max%d" i) ()) in
  let lt_min = tree_less c inreg minreg in
  let gt_max = tree_less c maxreg inreg in
  let nreset = Circuit.add_gate c Not [ reset ] in
  let upd_min = Circuit.add_gate c Or [ lt_min; reset ] in
  let upd_max = Circuit.add_gate c Or [ gt_max; reset ] in
  ignore nreset;
  Array.iteri
    (fun i m ->
      let next = Circuit.add_gate c Mux [ upd_min; inreg.(i); m ] in
      Circuit.set_latch c m ~data:next ())
    minreg;
  Array.iteri
    (fun i m ->
      let next = Circuit.add_gate c Mux [ upd_max; inreg.(i); m ] in
      Circuit.set_latch c m ~data:next ())
    maxreg;
  (* outputs: min, max and a comparison flag *)
  Array.iter (fun m -> Circuit.mark_output c m) minreg;
  Array.iter (fun m -> Circuit.mark_output c m) maxreg;
  Circuit.mark_output c (tree_less c minreg maxreg);
  Circuit.check c;
  c

(* ---- pipeline ---- *)

let pipeline ~name ~width ~stages ~imbalance ~seed =
  let st = Random.State.make [| seed; 0x9e3779 |] in
  let c = Circuit.create name in
  let ins = List.init width (fun i -> Circuit.add_input c (Printf.sprintf "in%d" i)) in
  let bus = ref ins in
  for stage = 1 to stages do
    let gates = if stage mod 2 = 0 then width * imbalance else max 2 (width / 2) in
    let outs = logic_block st c ~ins:!bus ~gates ~outs:width in
    bus := List.map (fun o -> Circuit.add_latch c ~data:o ()) outs
  done;
  let final = logic_block st c ~ins:!bus ~gates:width ~outs:(max 1 (width / 2)) in
  List.iter (Circuit.mark_output c) final;
  Circuit.check c;
  c

(* ---- conditional-update and toggle registers (Figs. 14, 15) ----

   Their control and data come from a shallow prefix of the pool (control
   signals are decoded near the inputs in real designs), which also keeps
   the unateness analysis cones small. *)

let shallow_prefix pool = { pool with len = min pool.len 64 }

(* q' = cond ? d : q  — positive unate in q, convertible *)
let conditional_register st c pool =
  let shallow = shallow_prefix pool in
  let q = Circuit.declare c () in
  let cond = random_gate st c shallow in
  let d = random_gate st c shallow in
  let next = Circuit.add_gate c Mux [ cond; d; q ] in
  Circuit.set_latch c q ~data:next ();
  q

(* q' = cond ? ~q : q  — toggle, NOT unate in q, must be exposed *)
let toggle_register st c pool =
  let shallow = shallow_prefix pool in
  let q = Circuit.declare c () in
  let cond = random_gate st c shallow in
  let nq = Circuit.add_gate c Not [ q ] in
  let next = Circuit.add_gate c Mux [ cond; nq; q ] in
  Circuit.set_latch c q ~data:next ();
  q

(* ---- deep pipelined datapath (retiming stress) ---- *)

let deep_datapath ~name ~width ~stages ~seed =
  let st = Random.State.make [| seed; 0xDEE9 |] in
  let c = Circuit.create name in
  let ins = Array.init width (fun i -> Circuit.add_input c (Printf.sprintf "in%d" i)) in
  let bus = ref ins in
  for stage = 1 to stages do
    let b = !bus in
    (* Depth sawtooth: most stages are one gate per lane, every eighth is a
       deep per-lane chain.  The slack sits in long stretches between deep
       stages, so min-period retiming has to drag registers across many
       stage boundaries (long FEAS relabel chains), and min-area sees a
       W/D-constraint system whose shortest paths span hundreds of
       vertices. *)
    let deep = stage mod 8 = 0 in
    let next =
      Array.mapi
        (fun i x ->
          (* cross-lane mixing keeps every lane on the critical cycle *)
          let peer = b.((i + 1 + (stage mod max 1 (width - 1))) mod width) in
          if deep then begin
            let acc = ref (Circuit.add_gate c Xor [ x; peer ]) in
            for k = 1 to 5 do
              let other = b.((i + k) mod width) in
              acc :=
                Circuit.add_gate c (if k land 1 = 0 then And else Or) [ !acc; other ]
            done;
            !acc
          end
          else
            Circuit.add_gate c
              (match Random.State.int st 3 with 0 -> Xor | 1 -> Nand | _ -> Or)
              [ x; peer ])
        b
    in
    bus := Array.map (fun d -> Circuit.add_latch c ~data:d ()) next
  done;
  Array.iter (fun s -> Circuit.mark_output c s) !bus;
  Circuit.check c;
  c

(* ---- fsm_datapath (Table 1 shape) ---- *)

let fsm_datapath ~name ~latches ~self_loops ~gates ~width ~seed =
  let st = Random.State.make [| seed; 0xABCDEF |] in
  let c = Circuit.create name in
  let ins = List.init width (fun i -> Circuit.add_input c (Printf.sprintf "in%d" i)) in
  let pool = pool_of_list ins in
  if latches - self_loops < 0 then invalid_arg "fsm_datapath: self_loops > latches";
  (* one acyclic latch is reserved for the observation register below *)
  let observe_reserved = latches - self_loops >= 1 in
  let n_acyclic = latches - self_loops - if observe_reserved then 1 else 0 in
  (* Feedback registers are declared first so the datapath reads them (they
     are live state, like the FSMs of the paper's designs); their next-state
     logic is connected at the end. *)
  let fb = Array.init self_loops (fun i -> Circuit.declare c ~name:(Printf.sprintf "fsm_q%d" i) ()) in
  Array.iter (fun q -> pool_add pool q) fb;
  (* interleave pipeline latches and logic *)
  let budget = max gates (2 * latches) in
  let gate_count = ref 0 in
  let latch_count = ref 0 in
  while !gate_count < budget || !latch_count < n_acyclic do
    if
      !latch_count < n_acyclic
      && (!gate_count >= budget || Random.State.int st (max 1 (budget / max 1 n_acyclic)) = 0)
    then begin
      incr latch_count;
      pool_add pool (Circuit.add_latch c ~data:(pick st pool) ())
    end
    else begin
      incr gate_count;
      pool_add pool (random_gate st c pool)
    end
  done;
  (* Connect the feedback registers: half toggles (non-unate), half
     conditional updates (unate); each is a self-loop, so the structural
     analysis exposes exactly these. *)
  Array.iteri
    (fun i q ->
      let shallow = shallow_prefix pool in
      let cond = random_gate st c shallow in
      let next =
        if i mod 2 = 0 then
          Circuit.add_gate c Mux [ cond; random_gate st c shallow; q ]
        else Circuit.add_gate c Mux [ cond; Circuit.add_gate c Not [ q ]; q ]
      in
      Circuit.set_latch c q ~data:next ())
    fb;
  (* Outputs are registered (realistic, and it leaves retiming freedom on
     the input-to-register paths); the last pipeline latch is re-purposed
     as an observation register over every latch, so no latch is dead. *)
  let latches = Circuit.latches c in
  let n_out = max 1 (width / 2) in
  let registered =
    List.filteri (fun i _ -> i mod (max 1 (List.length latches / n_out)) = 0) latches
  in
  List.iteri (fun i l -> if i < n_out then Circuit.mark_output c l) registered;
  (* observation register: balanced xor tree over all latch outputs,
     registered (it uses the reserved acyclic-latch slot, keeping the
     published latch count).  The tree is balanced so that observation does
     not dominate the critical path — the datapath's own imbalance is what
     retiming exploits. *)
  let rec xor_tree = function
    | [] -> Circuit.const_false c
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> Circuit.add_gate c Xor [ a; b ] :: pair rest
          | rest -> rest
        in
        xor_tree (pair xs)
  in
  let parity = xor_tree latches in
  if observe_reserved then
    Circuit.mark_output c (Circuit.add_latch c ~name:"observe" ~data:parity ())
  else Circuit.mark_output c parity;
  Circuit.check c;
  c

(* ---- industrial (Table 2 shape) ---- *)

let industrial ~name ~latches ~exposed ~unate_fraction ~enable_fraction ~seed =
  let st = Random.State.make [| seed; 0x51DE |] in
  let c = Circuit.create name in
  let width = 16 in
  let ins = List.init width (fun i -> Circuit.add_input c (Printf.sprintf "in%d" i)) in
  let pool = pool_of_list ins in
  let n_acyclic = latches - exposed in
  if n_acyclic < 0 then invalid_arg "industrial: exposed > latches";
  (* acyclic glue logic with load-enabled latches *)
  let gates = 4 * latches in
  let gate_count = ref 0 in
  let latch_count = ref 0 in
  while !gate_count < gates || !latch_count < n_acyclic do
    if
      !latch_count < n_acyclic
      && (!gate_count >= gates || Random.State.int st (max 1 (gates / max 1 n_acyclic)) = 0)
    then begin
      incr latch_count;
      let enable =
        if Random.State.float st 1.0 < enable_fraction then Some (pick st pool) else None
      in
      pool_add pool (Circuit.add_latch c ?enable ~data:(pick st pool) ())
    end
    else begin
      incr gate_count;
      pool_add pool (random_gate st c pool)
    end
  done;
  (* feedback registers to be exposed; a [unate_fraction] of them are
     conditional updates, which the functional analysis converts instead *)
  let n_unate = int_of_float (Float.round (unate_fraction *. float_of_int exposed)) in
  for i = 1 to exposed do
    let q =
      if i <= n_unate then conditional_register st c pool else toggle_register st c pool
    in
    pool_add pool q
  done;
  for _ = 1 to 8 do
    Circuit.mark_output c (random_gate st c pool)
  done;
  Circuit.check c;
  c

(* ---- large tier: designs where partitioned checking has to pay ---- *)

(* Balanced reduction tree over a 2-input gate function. *)
let rec gate_tree c fn = function
  | [] -> invalid_arg "gate_tree: empty"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> Circuit.add_gate c fn [ a; b ] :: pair rest
        | rest -> rest
      in
      gate_tree c fn (pair xs)

(* Linear left fold over the same gate — functionally identical to
   [gate_tree] but a different association order, so the two styles keep
   distinct AIG structure all the way to the shared root. *)
let gate_chain c fn = function
  | [] -> invalid_arg "gate_chain: empty"
  | x :: rest -> List.fold_left (fun acc y -> Circuit.add_gate c fn [ acc; y ]) x rest

let log2_exact what n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg (Printf.sprintf "%s: expected a power of two >= 2, got %d" what n);
  let rec go b = if 1 lsl b = n then b else go (b + 1) in
  go 1

(* Parameterized FIFO: [entries] x [width] data latches, each a hold-mux
   self-loop (q' = we ? din : q), plus write/read pointer counters.  The
   two gate-level [style]s compute the same function with genuinely
   different structure:

   - [`Sop]: one-hot decode as balanced AND trees, read port as a
     sum-of-products (OR tree of decode AND data);
   - [`Mux]: decode as linear AND chains, read port as a binary 2:1-mux
     tree over the pointer bits (no explicit read decode at all).

   Every latch is on a structural self-loop and shares its name across
   styles, so [Feedback.plan_structural] exposes the same cut in both and
   CBF verifies at depth 1 over many small, independent next-state cones
   plus one wide read-port cone — the partitioned checker's favourite
   shape.  [~bug] swaps two data bits in entry 0's write mux (style-
   independent), an inequivalence a single write+readback exposes. *)
let fifo ?(bug = false) ~entries ~width ~style () =
  let pb = log2_exact "fifo entries" entries in
  if width < 2 then invalid_arg "fifo: width must be >= 2";
  let sname = match style with `Sop -> "s" | `Mux -> "m" in
  let c =
    Circuit.create
      (Printf.sprintf "fifo%dx%d%s%s" entries width sname
         (if bug then "_bug" else ""))
  in
  let din = Array.init width (fun i -> Circuit.add_input c (Printf.sprintf "din%d" i)) in
  let write = Circuit.add_input c "write" in
  let read = Circuit.add_input c "read" in
  let wp = Array.init pb (fun i -> Circuit.declare c ~name:(Printf.sprintf "wp%d" i) ()) in
  let rp = Array.init pb (fun i -> Circuit.declare c ~name:(Printf.sprintf "rp%d" i) ()) in
  let combine = match style with `Sop -> gate_tree | `Mux -> gate_chain in
  (* eq(ptr, e) over the style's association order *)
  let eq_const ptr e =
    combine c And
      (List.init pb (fun i ->
           if (e lsr i) land 1 = 1 then ptr.(i)
           else Circuit.add_gate c Not [ ptr.(i) ]))
  in
  (* ptr + 1 (wraps): shared ripple increment; the interesting structural
     divergence lives in the decode and the read port *)
  let increment ptr =
    let carry = ref (Circuit.const_true c) in
    Array.init pb (fun i ->
        let s = Circuit.add_gate c Xor [ ptr.(i); !carry ] in
        carry := Circuit.add_gate c And [ ptr.(i); !carry ];
        s)
  in
  let advance ptr en =
    let inc = increment ptr in
    Array.iteri
      (fun i p -> Circuit.set_latch c p ~data:(Circuit.add_gate c Mux [ en; inc.(i); p ]) ())
      ptr
  in
  advance wp write;
  advance rp read;
  (* data array: hold-mux registers, write-decoded from wptr *)
  let we = Array.init entries (fun e -> Circuit.add_gate c And [ write; eq_const wp e ]) in
  let regs =
    Array.init entries (fun e ->
        Array.init width (fun w ->
            let q = Circuit.declare c ~name:(Printf.sprintf "r%d_%d" e w) () in
            let d =
              if bug && e = 0 && w = 0 then din.(1)
              else if bug && e = 0 && w = 1 then din.(0)
              else din.(w)
            in
            Circuit.set_latch c q ~data:(Circuit.add_gate c Mux [ we.(e); d; q ]) ();
            q))
  in
  (* read port *)
  (match style with
  | `Sop ->
      let re = Array.init entries (fun e -> eq_const rp e) in
      for w = 0 to width - 1 do
        Circuit.mark_output c
          (gate_tree c Or
             (List.init entries (fun e ->
                  Circuit.add_gate c And [ re.(e); regs.(e).(w) ])))
      done
  | `Mux ->
      for w = 0 to width - 1 do
        (* binary mux tree: bit k of rptr selects between halves of 2^(k+1)
           consecutive entries *)
        let rec sel base len =
          if len = 1 then regs.(base).(w)
          else
            let half = len / 2 in
            let bit = log2_exact "fifo mux level" len - 1 in
            Circuit.add_gate c Mux
              [ rp.(bit); sel (base + half) half; sel base half ]
        in
        Circuit.mark_output c (sel 0 entries)
      done);
  (* empty flag: pointer equality, folded in the style's order *)
  Circuit.mark_output c
    (combine c And
       (List.init pb (fun i -> Circuit.add_gate c Xnor [ wp.(i); rp.(i) ])));
  Circuit.check c;
  c

(* Wide lane-parallel ALU pipeline: [lanes] independent [width]-bit
   datapaths, [stages] register stages deep — [lanes*width*stages]
   flip-flops with {e block-local} mixing only, so the unrolled output
   cones split exactly per lane and the partitioned checker gets [lanes]
   disjoint clusters.  Each stage adds the lane value to its own
   rotation and XOR-mixes another rotation in; the adder is the style
   point:

   - [`Ripple]: plain ripple-carry chain;
   - [`Select]: carry-select — low half ripple, high half computed for
     both carry-ins and 2:1-muxed on the low carry.

   The pipeline is acyclic (no exposure needed); CBF unrolls it to depth
   [stages].  [~bug] inverts one sum bit in lane 0's last stage. *)
let lane_alu ?(bug = false) ~lanes ~width ~stages ~style () =
  if width < 4 || width land 1 <> 0 then
    invalid_arg "lane_alu: width must be even and >= 4";
  if lanes < 1 || stages < 1 then invalid_arg "lane_alu: lanes/stages >= 1";
  let sname = match style with `Ripple -> "r" | `Select -> "s" in
  let c =
    Circuit.create
      (Printf.sprintf "alu%dx%dx%d%s%s" lanes width stages sname
         (if bug then "_bug" else ""))
  in
  let din = Array.init width (fun i -> Circuit.add_input c (Printf.sprintf "din%d" i)) in
  let full_adder a b cin =
    let axb = Circuit.add_gate c Xor [ a; b ] in
    let s = Circuit.add_gate c Xor [ axb; cin ] in
    let cout =
      Circuit.add_gate c Or
        [ Circuit.add_gate c And [ a; b ]; Circuit.add_gate c And [ axb; cin ] ]
    in
    (s, cout)
  in
  let ripple a b cin =
    let carry = ref cin in
    Array.init width (fun i ->
        let s, cout = full_adder a.(i) b.(i) !carry in
        carry := cout;
        s)
  in
  let adder a b =
    match style with
    | `Ripple -> ripple a b (Circuit.const_false c)
    | `Select ->
        (* low half ripple; high half twice (cin 0 and 1), selected *)
        let half = width / 2 in
        let carry = ref (Circuit.const_false c) in
        let low =
          Array.init half (fun i ->
              let s, cout = full_adder a.(i) b.(i) !carry in
              carry := cout;
              s)
        in
        let hi cin =
          let carry = ref cin in
          Array.init half (fun i ->
              let s, cout = full_adder a.(half + i) b.(half + i) !carry in
              carry := cout;
              s)
        in
        let h0 = hi (Circuit.const_false c) and h1 = hi (Circuit.const_true c) in
        Array.init width (fun i ->
            if i < half then low.(i)
            else
              Circuit.add_gate c Mux
                [ !carry; h1.(i - half); h0.(i - half) ])
  in
  let lane_bits =
    let rec go b = if 1 lsl b >= lanes then b else go (b + 1) in
    go 1
  in
  for lane = 0 to lanes - 1 do
    (* Lane-distinct seeding of the shared inputs: each lane inverts the
       bit positions of its own index (repeated across the width), so no
       two lanes compute the same function — structural hashing would
       otherwise collapse identical lanes into one shared cone. *)
    let bus =
      ref
        (Array.init width (fun i ->
             if (lane lsr (i mod lane_bits)) land 1 = 1 then
               Circuit.add_gate c Not [ din.(i) ]
             else din.(i)))
    in
    for stage = 0 to stages - 1 do
      let b = !bus in
      let rot k i = b.((i + k) mod width) in
      let sum = adder b (Array.init width (rot 1)) in
      let mixed =
        Array.init width (fun i ->
            let u = Circuit.add_gate c Xor [ sum.(i); rot 2 i ] in
            if bug && lane = 0 && stage = stages - 1 && i = 0 then
              Circuit.add_gate c Not [ u ]
            else u)
      in
      bus := Array.map (fun d -> Circuit.add_latch c ~data:d ()) mixed
    done;
    Array.iter (fun q -> Circuit.mark_output c q) !bus
  done;
  Circuit.check c;
  c

(* ---- suites ---- *)

(* (name, latches, percent exposed, gate scale) from Table 1; the minmax
   rows are generated structurally. *)
let table1_params =
  [
    ("prolog", 65, 43, 6);
    ("s1196", 18, 0, 8);
    ("s1238", 18, 0, 8);
    ("s1269", 37, 75, 7);
    ("s1423", 74, 95, 7);
    ("s3271", 116, 94, 6);
    ("s3384", 183, 39, 6);
    ("s400", 21, 71, 6);
    ("s444", 21, 71, 6);
    ("s4863", 88, 18, 6);
    ("s641", 19, 78, 7);
    ("s6669", 231, 17, 5);
    ("s713", 19, 78, 7);
    ("s9234", 135, 66, 5);
    ("s953", 29, 20, 7);
    ("s967", 29, 20, 7);
    ("s3330", 65, 43, 6);
    ("s15850", 515, 72, 3);
    ("s38417", 1464, 70, 3);
  ]

let table1_gen (name, latches, percent, scale) =
  let self_loops = latches * percent / 100 in
  let seed = Hashtbl.hash name in
  fsm_datapath ~name ~latches ~self_loops ~gates:(scale * latches)
    ~width:(8 + (latches / 64)) ~seed

let table1_suite () =
  let minmaxes = List.map (fun w -> minmax ~width:w) [ 10; 12; 20; 32 ] in
  List.map (fun c -> (Circuit.name c, c)) minmaxes
  @ List.map (fun p -> (let n, _, _, _ = p in n), table1_gen p) table1_params

let table1_suite_small () =
  List.filter (fun (_, c) -> Circuit.latch_count c <= 120) (table1_suite ())

(* (name, latches, exposed) from Table 2 *)
let table2_params =
  [
    ("ex1", 2157, 934);
    ("ex2", 160, 16);
    ("ex3", 146, 56);
    ("ex4", 1437, 835);
    ("ex5", 672, 305);
    ("ex6", 412, 250);
    ("ex7", 453, 81);
    ("ex8", 968, 470);
    ("ex9", 783, 15);
    ("ex10", 634, 174);
    ("ex11", 792, 369);
    ("ex12", 2206, 691);
  ]

let table2_suite () =
  List.map
    (fun (name, latches, exposed) ->
      ( name,
        industrial ~name ~latches ~exposed ~unate_fraction:0.5 ~enable_fraction:0.35
          ~seed:(Hashtbl.hash name) ))
    table2_params

(* (name, width, stages, seed); the first is small enough for the
   fast-vs-reference differential *)
let retime_params =
  [
    ("deep_w4x64", 4, 64, 11);
    ("deep_w6x120", 6, 120, 12);
    ("deep_w8x160", 8, 160, 13);
    ("deep_w8x300", 8, 300, 14);
  ]

let retime_suite () =
  List.map
    (fun (name, width, stages, seed) ->
      (name, deep_datapath ~name ~width ~stages ~seed))
    retime_params

(* Equivalent style pairs for the large tier: (name, style A, style B).
   Sized so the adaptive layout's cost model is well above its monolithic
   threshold — these are the workloads where partitioned checking has to
   beat the monolithic path. *)
let large_suite ?(smoke = false) () =
  let fifo_pair ~entries ~width =
    ( Printf.sprintf "fifo%dx%d" entries width,
      fifo ~entries ~width ~style:`Sop (),
      fifo ~entries ~width ~style:`Mux () )
  in
  let alu_pair ~lanes ~width ~stages =
    ( Printf.sprintf "alu%dx%dx%d" lanes width stages,
      lane_alu ~lanes ~width ~stages ~style:`Ripple (),
      lane_alu ~lanes ~width ~stages ~style:`Select () )
  in
  (* Sizing: every pair must clear the adaptive layout's cost threshold
     (or the bench would measure the monolithic fast path against itself)
     while keeping the jobs=1 monolithic *baseline* tractable — which
     means many medium cones, not a few huge ones.  The wide-lane ALUs
     hit 2048+ flip-flops by lane count (64 cheap cones), not by lane
     size: a 16-bit x 8-stage lane cone alone takes minutes to sweep. *)
  if smoke then
    [ fifo_pair ~entries:64 ~width:16; alu_pair ~lanes:8 ~width:8 ~stages:4 ]
  else
    [
      fifo_pair ~entries:64 ~width:16;
      fifo_pair ~entries:128 ~width:8;
      alu_pair ~lanes:8 ~width:8 ~stages:4;
      alu_pair ~lanes:64 ~width:8 ~stages:4;
    ]

(* Intentionally inequivalent pair (style A pristine, style B with the
   write-mux bit swap): exercises first-counterexample cancellation across
   partitions.  Same verdict must come back at every jobs value. *)
let large_mutant () =
  (* sized past the cost threshold so the adaptive layout partitions it —
     the point is first-counterexample cancellation across clusters *)
  ( "fifo64x16_bug",
    fifo ~entries:64 ~width:16 ~style:`Sop (),
    fifo ~entries:64 ~width:16 ~style:`Mux ~bug:true () )

(* ---- hierarchical designs (the hier suite) ---- *)

(* Wrap a generator circuit as a hier leaf: its inputs become the module
   ports, its outputs the module outputs, no instances. *)
let leaf_module name c =
  {
    Hier.mod_name = name;
    glue = c;
    ports_in = List.map (Circuit.signal_name c) (Circuit.inputs c);
    out_count = List.length (Circuit.outputs c);
    instances = [];
  }

(* Parent glue circuits below all follow one discipline: besides the
   mixed/combined outputs they expose a {e direct spine} — instance
   outputs passed through (or registered) unmixed — so a corrupted leaf
   is never masked by a self-cancelling combine (xor of two identically
   broken instances of one module cancels; a pass-through never does)
   and the flat reference check agrees with the compositional verdict on
   every broken mutant. *)

(* Two qsmall banks behind a write-select, read through a registered
   last-select mux. *)
let build_qpair qsmall =
  let b = Hier.Build.create "qpair" in
  let g = Hier.Build.glue b in
  let d = List.init 4 (fun i -> Hier.Build.input b (Printf.sprintf "d%d" i)) in
  let w = Hier.Build.input b "w" in
  let r = Hier.Build.input b "r" in
  let sel = Hier.Build.input b "sel" in
  let w0 = Circuit.add_gate g And [ w; sel ] in
  let w1 = Circuit.add_gate g And [ w; Circuit.add_gate g Not [ sel ] ] in
  let q0 = Hier.Build.inst b ~name:"q0" ~child:qsmall ~inputs:(d @ [ w0; r ]) in
  let rot = match d with x :: tl -> tl @ [ x ] | [] -> assert false in
  let q1 = Hier.Build.inst b ~name:"q1" ~child:qsmall ~inputs:(rot @ [ w1; r ]) in
  let psel = Circuit.declare g ~name:"psel" () in
  Circuit.set_latch g psel ~data:sel ();
  List.iter2
    (fun a z -> Hier.Build.output b (Circuit.add_gate g Mux [ psel; a; z ]))
    q0 q1;
  List.iter (Hier.Build.output b) q0;
  Hier.Build.finish b

(* A qwide stream cross-checked against a qsmall fed xor-mixed data. *)
let build_qmix qsmall qwide =
  let b = Hier.Build.create "qmix" in
  let g = Hier.Build.glue b in
  let e = List.init 6 (fun i -> Hier.Build.input b (Printf.sprintf "e%d" i)) in
  let w = Hier.Build.input b "w" in
  let r = Hier.Build.input b "r" in
  let qw = Hier.Build.inst b ~name:"qw" ~child:qwide ~inputs:(e @ [ w; r ]) in
  let ea = Array.of_list e in
  let mixed =
    List.init 4 (fun k -> Circuit.add_gate g Xor [ ea.(k); ea.(k + 2) ])
  in
  let qs = Hier.Build.inst b ~name:"qs" ~child:qsmall ~inputs:(mixed @ [ w; r ]) in
  let qwa = Array.of_list qw and qsa = Array.of_list qs in
  for k = 0 to 3 do
    Hier.Build.output b (Circuit.add_gate g Xor [ qwa.(k); qsa.(k) ])
  done;
  Hier.Build.output b (Circuit.add_gate g And [ qwa.(6); qsa.(4) ]);
  List.iter (Hier.Build.output b) qw;
  List.iter (Hier.Build.output b) qs;
  Hier.Build.finish b

let build_hfifo_top qpair qmix =
  let b = Hier.Build.create "hfifo_top" in
  let g = Hier.Build.glue b in
  let i = List.init 6 (fun k -> Hier.Build.input b (Printf.sprintf "i%d" k)) in
  let w = Hier.Build.input b "w" in
  let r = Hier.Build.input b "r" in
  let sel = Hier.Build.input b "sel" in
  let ia = Array.of_list i in
  let p =
    Hier.Build.inst b ~name:"p" ~child:qpair
      ~inputs:[ ia.(0); ia.(1); ia.(2); ia.(3); w; r; sel ]
  in
  let m = Hier.Build.inst b ~name:"m" ~child:qmix ~inputs:(i @ [ w; r ]) in
  let pa = Array.of_list p and ma = Array.of_list m in
  (* one self-feedback register in the top glue, so the hierarchy's own
     state participates in the exposure cut too *)
  let st = Circuit.declare g ~name:"st" () in
  Circuit.set_latch g st ~data:(Circuit.add_gate g Xor [ st; pa.(0) ]) ();
  Hier.Build.output b st;
  List.iter (Hier.Build.output b) p;
  List.iter (Hier.Build.output b) m;
  for k = 0 to 4 do
    Hier.Build.output b (Circuit.add_gate g Xor [ pa.(k); ma.(k) ])
  done;
  Hier.Build.finish b

(* FIFO-of-queues: qsmall/qwide leaves (the large tier's fifo generator,
   downsized), a banked pair, a mixer, and a stateful top — 5 modules,
   3 levels.  [style] picks the leaf read-port structure; [glue_seed]
   additionally resynthesizes every parent glue, so the two sides of a
   pair differ at {e every} level of the hierarchy. *)
let hfifo_design ~design_name ~style ~glue_seed =
  let qsmall = leaf_module "qsmall" (fifo ~entries:4 ~width:4 ~style ()) in
  let qwide = leaf_module "qwide" (fifo ~entries:4 ~width:6 ~style ()) in
  let qpair = build_qpair qsmall in
  let qmix = build_qmix qsmall qwide in
  let top = build_hfifo_top qpair qmix in
  let d =
    Hier.make_design ~name:design_name ~top:"hfifo_top"
      [ qsmall; qwide; qpair; qmix; top ]
  in
  match glue_seed with
  | None -> d
  | Some seed ->
      List.fold_left
        (fun d n -> Hier.map_module d ~name:n ~f:(Hier.resynthesize ~seed))
        d
        [ "qpair"; "qmix"; "hfifo_top" ]

let build_alane alu_x alu_y =
  let b = Hier.Build.create "alane" in
  let g = Hier.Build.glue b in
  let a = List.init 6 (fun k -> Hier.Build.input b (Printf.sprintf "a%d" k)) in
  let aa = Array.of_list a in
  let x =
    Hier.Build.inst b ~name:"x" ~child:alu_x
      ~inputs:[ aa.(0); aa.(1); aa.(2); aa.(3) ]
  in
  let y = Hier.Build.inst b ~name:"y" ~child:alu_y ~inputs:a in
  let xa = Array.of_list x and ya = Array.of_list y in
  let acc = Circuit.declare g ~name:"acc" () in
  Circuit.set_latch g acc ~data:(Circuit.add_gate g Xor [ acc; xa.(0) ]) ();
  Hier.Build.output b acc;
  List.iter (Hier.Build.output b) x;
  List.iter (Hier.Build.output b) y;
  for k = 0 to 5 do
    Hier.Build.output b (Circuit.add_gate g Xor [ xa.(k); ya.(k) ])
  done;
  Hier.Build.finish b

let build_halu_top alane =
  let b = Hier.Build.create "halu_top" in
  let g = Hier.Build.glue b in
  let t = List.init 6 (fun k -> Hier.Build.input b (Printf.sprintf "t%d" k)) in
  let rot = match t with x :: tl -> tl @ [ x ] | [] -> assert false in
  let u = Hier.Build.inst b ~name:"u" ~child:alane ~inputs:t in
  let v = Hier.Build.inst b ~name:"v" ~child:alane ~inputs:rot in
  let ua = Array.of_list u and va = Array.of_list v in
  List.iter (Hier.Build.output b) u;
  for k = 0 to List.length u - 1 do
    Hier.Build.output b (Circuit.add_gate g Xor [ ua.(k); va.(k) ])
  done;
  Hier.Build.finish b

(* Lane-ALU cluster: two lane_alu leaves under a cross-checking lane
   module instantiated twice (rotated inputs) by the top — 4 modules,
   3 levels, with a module ("alane") that is multiply instantiated.
   [bug] breaks the aluX leaf (lane_alu's intentional sum-bit bug). *)
let halu_design ~design_name ~style ~bug ~glue_seed =
  let alu_x =
    leaf_module "aluX" (lane_alu ~bug ~lanes:2 ~width:4 ~stages:2 ~style ())
  in
  let alu_y = leaf_module "aluY" (lane_alu ~lanes:1 ~width:6 ~stages:2 ~style ()) in
  let alane = build_alane alu_x alu_y in
  let top = build_halu_top alane in
  let d =
    Hier.make_design ~name:design_name ~top:"halu_top"
      [ alu_x; alu_y; alane; top ]
  in
  match glue_seed with
  | None -> d
  | Some seed ->
      List.fold_left
        (fun d n -> Hier.map_module d ~name:n ~f:(Hier.resynthesize ~seed))
        d [ "alane"; "halu_top" ]

let hier_suite () =
  let hfifo_a = hfifo_design ~design_name:"hfifo_a" ~style:`Sop ~glue_seed:None in
  let hfifo_b =
    hfifo_design ~design_name:"hfifo_b" ~style:`Mux ~glue_seed:(Some 7)
  in
  let halu_a =
    halu_design ~design_name:"halu_a" ~style:`Ripple ~bug:false ~glue_seed:None
  in
  let halu_b =
    halu_design ~design_name:"halu_b" ~style:`Select ~bug:false
      ~glue_seed:(Some 9)
  in
  let hfifo_mut =
    {
      (Hier.map_module hfifo_b ~name:"qwide" ~f:(Hier.break_output ~output:0)) with
      Hier.design_name = "hfifo_mut_b";
    }
  in
  let halu_mut =
    halu_design ~design_name:"halu_mut_b" ~style:`Select ~bug:true
      ~glue_seed:(Some 9)
  in
  [
    ("hfifo", hfifo_a, hfifo_b, `Eq);
    ("halu", halu_a, halu_b, `Eq);
    ("hfifo_mut", hfifo_a, hfifo_mut, `Neq "qwide");
    ("halu_mut", halu_a, halu_mut, `Neq "aluX");
  ]

(* ---- the name registry ---- *)

(* Every circuit any suite can produce, as (name, thunk): lookups build
   only the named circuit, never a whole suite.  Hier designs register
   their flattened sides under the design name, so a server check request
   can name them like any flat workload. *)
let registry () =
  let entries = ref [] in
  let seen = Hashtbl.create 64 in
  let add n th =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      entries := (n, th) :: !entries
    end
  in
  List.iter
    (fun w -> add (Printf.sprintf "minmax%d" w) (fun () -> minmax ~width:w))
    [ 10; 12; 20; 32 ];
  List.iter
    (fun p ->
      let n, _, _, _ = p in
      add n (fun () -> table1_gen p))
    table1_params;
  List.iter
    (fun (name, latches, exposed) ->
      add name (fun () ->
          industrial ~name ~latches ~exposed ~unate_fraction:0.5
            ~enable_fraction:0.35 ~seed:(Hashtbl.hash name)))
    table2_params;
  List.iter
    (fun (name, width, stages, seed) ->
      add name (fun () -> deep_datapath ~name ~width ~stages ~seed))
    retime_params;
  (* large-tier circuits go by their own Circuit.name (the pair name plus
     a style suffix, e.g. "fifo64x16s"), the mutant side by its _bug name *)
  List.iter
    (fun (entries, width) ->
      add
        (Printf.sprintf "fifo%dx%ds" entries width)
        (fun () -> fifo ~entries ~width ~style:`Sop ());
      add
        (Printf.sprintf "fifo%dx%dm" entries width)
        (fun () -> fifo ~entries ~width ~style:`Mux ()))
    [ (64, 16); (128, 8) ];
  List.iter
    (fun (lanes, width, stages) ->
      add
        (Printf.sprintf "alu%dx%dx%dr" lanes width stages)
        (fun () -> lane_alu ~lanes ~width ~stages ~style:`Ripple ());
      add
        (Printf.sprintf "alu%dx%dx%ds" lanes width stages)
        (fun () -> lane_alu ~lanes ~width ~stages ~style:`Select ()))
    [ (8, 8, 4); (64, 8, 4) ];
  add "fifo64x16m_bug" (fun () ->
      fifo ~entries:64 ~width:16 ~style:`Mux ~bug:true ());
  List.iter
    (fun (_, l, r, _) ->
      add l.Hier.design_name (fun () -> Hier.flatten l);
      add r.Hier.design_name (fun () -> Hier.flatten r))
    (hier_suite ());
  List.rev !entries

let names () = List.map fst (registry ())

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggestions n =
  let cutoff = max 2 (String.length n / 3) in
  names ()
  |> List.filter_map (fun m ->
         let d = levenshtein n m in
         if d <= cutoff then Some (d, m) else None)
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 5)
  |> List.map snd

let lookup n =
  match List.assoc_opt n (registry ()) with
  | Some th -> Ok (th ())
  | None ->
      Error
        (Printf.sprintf "unknown circuit %S%s" n
           (match suggestions n with
           | [] -> ""
           | near -> Printf.sprintf "; did you mean %s?" (String.concat ", " near)))

let by_name n = match lookup n with Ok c -> c | Error _ -> raise Not_found
