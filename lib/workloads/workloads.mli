(** Benchmark circuit generators.

    The paper evaluates on MCNC/ISCAS'89 netlists ([minmax*], [prolog],
    [s*]) and twelve proprietary industrial designs; neither set ships with
    this repository.  These generators rebuild the {e shape} of each
    benchmark from fixed seeds: published latch count, feedback structure
    (share of latches that must be exposed), pipeline depth imbalance (what
    retiming exploits) and, for the industrial set, load-enabled latches
    with conditional-update feedback (Figs. 14, 20).  See DESIGN.md,
    "Substitutions". *)

val minmax : width:int -> Circuit.t
(** Pipelined min/max tracker over a [width]-bit input stream: an input
    register bank plus feedback min- and max-registers behind ripple
    comparators.  [3*width] latches, two thirds of which are feedback
    (matching the 66% exposure of the paper's minmax rows). *)

val pipeline :
  name:string -> width:int -> stages:int -> imbalance:int -> seed:int -> Circuit.t
(** Acyclic pipeline (Fig. 6): [stages] register banks of [width] bits
    separated by random logic whose depth alternates between shallow and
    [imbalance]-times deeper — the slack min-period retiming recovers. *)

val deep_datapath :
  name:string -> width:int -> stages:int -> seed:int -> Circuit.t
(** Deep pipelined datapath sized to stress retiming: [stages] register
    banks of [width] lanes with cross-lane mixing, one gate per lane per
    stage except every eighth stage, which carries a six-gate chain.  The
    slack sits in long stretches between the deep stages, so min-period
    retiming must drag registers across many stage boundaries and min-area
    retiming sees W/D shortest paths spanning hundreds of vertices.
    [width * stages] latches. *)

val fsm_datapath :
  name:string ->
  latches:int ->
  self_loops:int ->
  gates:int ->
  width:int ->
  seed:int ->
  Circuit.t
(** The Table 1 shape: [self_loops] conditional/toggle registers (each
    forces itself into the feedback vertex set) embedded in an otherwise
    acyclic latch network of [latches] total latches and roughly [gates]
    gates. *)

val industrial :
  name:string ->
  latches:int ->
  exposed:int ->
  unate_fraction:float ->
  enable_fraction:float ->
  seed:int ->
  Circuit.t
(** The Table 2 shape (Fig. 20): [exposed] self-feedback registers (a
    [unate_fraction] of them conditional-update, hence convertible by the
    functional analysis), the rest an acyclic glue/pipeline network, with
    [enable_fraction] of the acyclic latches load-enabled. *)

val table1_suite : unit -> (string * Circuit.t) list
(** The 23 circuits of Table 1 (published latch counts, scaled gate
    counts). *)

val table1_suite_small : unit -> (string * Circuit.t) list
(** The subset of {!table1_suite} cheap enough for unit tests and quick
    benches. *)

val table2_suite : unit -> (string * Circuit.t) list
(** ex1..ex12 of Table 2 (published latch and exposure counts). *)

val retime_suite : unit -> (string * Circuit.t) list
(** Deep-datapath instances for the retiming bench tier ([bench --suite
    retime]): from a small differential-checkable instance (256 latches) up
    to thousands of latches, all within the exact min-area vertex bound. *)

val fifo :
  ?bug:bool ->
  entries:int ->
  width:int ->
  style:[ `Sop | `Mux ] ->
  unit ->
  Circuit.t
(** Parameterized FIFO: [entries * width] hold-mux data latches
    (self-loops, so the structural analysis exposes them all) plus
    write/read pointer counters.  The two [style]s compute the same
    function with genuinely different gate structure ([`Sop]: balanced
    one-hot decode + sum-of-products read port; [`Mux]: linear decode
    chains + a binary mux tree over the pointer bits); latch names are
    shared across styles so one exposure cut fits both.  [~bug] swaps two
    data bits in entry 0's write mux — an intentional inequivalence for
    cancellation tests.  [entries] must be a power of two. *)

val lane_alu :
  ?bug:bool ->
  lanes:int ->
  width:int ->
  stages:int ->
  style:[ `Ripple | `Select ] ->
  unit ->
  Circuit.t
(** Wide ALU pipeline: [lanes] independent [width]-bit datapaths, [stages]
    register stages deep ([lanes*width*stages] flip-flops), mixing kept
    strictly lane-local so the unrolled output cones split exactly per
    lane.  Per-stage rotate-add-xor; the adder is the style point
    ([`Ripple] carry chain vs [`Select] carry-select).  Acyclic — no
    exposure needed; CBF unrolls to depth [stages].  [~bug] inverts one
    sum bit in lane 0's last stage.  [width] must be even and >= 4. *)

val large_suite : ?smoke:bool -> unit -> (string * Circuit.t * Circuit.t) list
(** The large tier ([bench --suite large]): equivalent style pairs
    [(name, style A, style B)] of {!fifo}s (64-128 entries) and
    {!lane_alu}s (2048-4096 flip-flops), sized so the adaptive layout
    partitions them.  [~smoke:true] selects two smaller instances for
    CI. *)

val large_mutant : unit -> string * Circuit.t * Circuit.t
(** Intentionally inequivalent pair (a pristine style-A {!fifo} against a
    [~bug] style-B one) exercising first-counterexample cancellation; the
    verdict must be the same at every jobs value. *)

val hier_suite :
  unit -> (string * Hier.design * Hier.design * [ `Eq | `Neq of string ]) list
(** The hierarchical tier ([bench --suite hier] and [seqver hier]):
    [(pair name, left design, right design, expected)] rows.

    - ["hfifo"]: FIFO-of-queues — {!fifo} leaves (two sizes), a banked
      pair, a mixer and a stateful top (5 modules, 3 levels); the right
      side uses the other read-port style {e and} resynthesized parent
      glue, so every level differs structurally.
    - ["halu"]: lane-ALU cluster — {!lane_alu} leaves under a
      cross-checking lane module the top instantiates twice (4 modules,
      one multiply-instantiated).
    - ["hfifo_mut"] / ["halu_mut"]: intentionally broken right sides; the
      compositional check must attribute the counterexample to the named
      module ([`Neq "qwide"] / [`Neq "aluX"]), agreeing with flat
      verification of the flattened pair.

    Every design's flattened side is registered by its design name
    (e.g. ["@hfifo_a"]) for {!lookup}/server resolution. *)

val names : unit -> string list
(** Every circuit name {!lookup} resolves — all suite circuits by name,
    large-tier circuits by their [Circuit.name] (e.g. ["fifo64x16s"],
    mutant side ["fifo64x16m_bug"]), and the {!hier_suite} designs'
    flattened sides by design name. *)

val lookup : string -> (Circuit.t, string) result
(** Look up (and build) one named circuit.  On failure the error message
    lists up to five near-miss names (edit distance), ready to show to a
    CLI or server user. *)

val by_name : string -> Circuit.t
(** {!lookup}, raising.  @raise Not_found on an unknown name. *)
