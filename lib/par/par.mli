(** Fixed-size domain pool for data-parallel sweeps.

    OCaml 5 gives us true shared-memory parallelism through [Domain]; this
    module wraps it in the only two shapes the verification stack needs:
    an order-preserving parallel [map] and an early-cancelling
    [find_first].  Workers are plain domains blocked on a condition
    variable; the submitting domain participates in the work instead of
    idling.  Worker domains spawn {e lazily}: creating a pool is free, and
    domains appear only when a batch can actually use them — never more
    than [jobs - 1], never more than the largest batch's task count minus
    one.  A pool of [jobs = 1], or one only ever handed single-task
    batches, spawns no domains at all and runs the tasks inline
    (bit-for-bit the sequential behavior).

    Tasks must be self-contained: they may share read-only data with the
    submitter (publication happens-before is provided by the internal
    queue mutex) but must not mutate anything another task can reach
    unless they synchronize it themselves.

    {b Concurrent submitters.}  One pool may be shared by several domains
    submitting batches {e simultaneously} (the verification server runs
    every request's partitioned check on one pool).  The guarantees:
    batches are isolated — each {!Pool.run} returns exactly when {e its}
    [n] tasks have completed, an exception raised by a task re-raises in
    the batch that submitted it and never in a sibling batch, and
    {!Pool.map}/{!Pool.find_first} results never mix across batches.
    Tasks of concurrent batches interleave on the shared queue (a
    submitting domain helping to drain the queue may execute a sibling
    batch's task — that only speeds the sibling up), and worker-domain
    sizing counts the {e total} outstanding demand across batches, so
    concurrent small batches still get [min (jobs-1) total] workers.
    Fairness is cooperative, not preemptive: tasks run to completion. *)

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible default for
    [~jobs]. *)

module Pool : sig
  type t

  val create : jobs:int -> t
  (** A pool that runs up to [max 1 jobs] tasks in parallel (at most
      [jobs - 1] worker domains plus the submitting domain).  No domain
      is spawned here — workers appear on the first {!run} that can use
      them. *)

  val jobs : t -> int

  val spawned : t -> int
  (** Worker domains actually spawned so far (grows with demand, [0]
      until a parallel batch arrives, reset by {!shutdown}). *)

  val shutdown : t -> unit
  (** Drains queued tasks, stops the workers and joins their domains.
      All pool state is read and written under the internal mutex, so a
      concurrent {!spawned} probe or a batch still in flight observes a
      consistent pool; a batch racing [shutdown] still completes (its
      submitting domain drains what the stopped workers leave behind),
      but no {e new} batch may be submitted once [shutdown] begins. *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [create], run, then [shutdown] (also on exception). *)

  val run : t -> int -> (int -> unit) -> unit
  (** [run p n f] executes [f 0 .. f (n-1)], distributing indices over
      the pool, and returns when all have completed.  If any task raises,
      one of the exceptions is re-raised in the caller after all tasks
      finish.  Effects made by the tasks happen-before the return. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Parallel [List.map] with deterministic (input-order) results. *)

  val find_first :
    ?found:bool Atomic.t -> t -> ('a -> 'b option) -> 'a list -> 'b option
  (** [find_first p f xs] returns [f x] for the {e first} element (in
      list order) on which [f] answers [Some _], or [None].  The result
      is deterministic — identical to [List.find_map f xs] whenever [f]
      is a pure function — but once some match is found, elements beyond
      it are cancelled (their [f] is never started), which is the
      counterexample short-circuit of the partitioned checker.

      [found], when given, is set to [true] the moment {e any} match is
      recorded — before in-flight siblings finish — so a long-running
      [f] can poll it and stop early (cooperative cancellation). *)
end
