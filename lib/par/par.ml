let cpu_count () = Domain.recommended_domain_count ()

module Pool = struct
  type t = {
    jobs : int;
    mutable domains : unit Domain.t list;
    mutable nspawned : int;
    q : (unit -> unit) Queue.t;
    qm : Mutex.t;
    qcv : Condition.t;
    mutable stop : bool;
    (* queued tasks plus tasks currently executing on a worker domain —
       the number of tasks that could use a worker right now, summed over
       every concurrent batch.  Tasks the submitting domain runs itself
       (the inline task, helper-drained tasks) never count. *)
    mutable demand : int;
  }

  let jobs p = p.jobs

  let spawned p =
    Mutex.lock p.qm;
    let n = p.nspawned in
    Mutex.unlock p.qm;
    n

  let rec worker p =
    Mutex.lock p.qm;
    while Queue.is_empty p.q && not p.stop do
      Condition.wait p.qcv p.qm
    done;
    if Queue.is_empty p.q then Mutex.unlock p.qm (* stop, queue drained *)
    else begin
      let task = Queue.pop p.q in
      Mutex.unlock p.qm;
      task ();
      Mutex.lock p.qm;
      p.demand <- p.demand - 1;
      Mutex.unlock p.qm;
      worker p
    end

  let create ~jobs =
    let jobs = max 1 jobs in
    {
      jobs;
      domains = [];
      nspawned = 0;
      q = Queue.create ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      stop = false;
      demand = 0;
    }

  (* Workers spawn lazily, on the first batch that can use them, and never
     more than the {e total outstanding} demand warrants: with concurrent
     submitters the target is [min (jobs-1) demand] where [demand] counts
     every batch's queued-or-worker-running tasks, not just the current
     batch's — two 2-task batches on a jobs=4 pool get two workers, not
     one.  A pool whose batches all run inline (jobs = 1 or n = 1) spawns
     none.  Called with [p.qm] held; never spawns after [shutdown] began
     (the submitter's helper drain still completes such a batch). *)
  let ensure_workers p =
    let want = if p.stop then 0 else min (p.jobs - 1) p.demand in
    while p.nspawned < want do
      p.nspawned <- p.nspawned + 1;
      p.domains <-
        Domain.spawn (fun () ->
            (* one span per worker lifetime: in a trace, the gap between
               this span and the pool.task spans inside it is idle time,
               which is exactly the domain-utilization picture *)
            Obs.span ~name:"pool.worker" (fun () -> worker p))
        :: p.domains
    done

  (* The domain list and spawn count are only read or written under [qm]:
     a concurrent [spawned] probe or submitter's [ensure_workers] must
     never observe the fields mid-teardown.  The joins happen outside the
     lock (a worker draining the queue may be arbitrarily slow), on a
     snapshot taken under it. *)
  let shutdown p =
    Mutex.lock p.qm;
    p.stop <- true;
    let doms = p.domains in
    p.domains <- [];
    Condition.broadcast p.qcv;
    Mutex.unlock p.qm;
    List.iter Domain.join doms;
    Mutex.lock p.qm;
    p.nspawned <- 0;
    Mutex.unlock p.qm

  let with_pool ~jobs f =
    let p = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

  let run p n f =
    if n > 0 then begin
      if p.jobs = 1 || n = 1 then
        for i = 0 to n - 1 do
          f i
        done
      else begin
        let jm = Mutex.create () and jcv = Condition.create () in
        let pending = ref n in
        let failure = Atomic.make None in
        let task i () =
          (try f i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          Mutex.lock jm;
          decr pending;
          if !pending = 0 then Condition.signal jcv;
          Mutex.unlock jm
        in
        (* Tracing wrapper: a span per task, recording how long the task
           sat in the queue before a domain picked it up (run time is the
           span itself), plus queue-wait/run histograms under live
           metrics.  Tasks run by the submitting domain never queue, so
           their wait is 0 by construction. *)
        let wrap ~enqueued i =
          if not (Obs.enabled () || Obs.counters_enabled ()) then task i
          else fun () ->
            let wait =
              match enqueued with
              | None -> 0.
              | Some t -> Obs.Clock.now () -. t
            in
            Obs.count "pool.queue_wait_ns" (int_of_float (wait *. 1e9));
            Obs.observe "pool.queue_wait_seconds" wait;
            let (), dt =
              Obs.timed_span ~name:"pool.task"
                ~attrs:
                  [
                    ("task", Obs.Int i);
                    ("queue_wait_us", Obs.Float (wait *. 1e6));
                  ]
                (task i)
            in
            Obs.observe "pool.task_run_seconds" dt
        in
        Mutex.lock p.qm;
        let tq =
          if Obs.enabled () || Obs.counters_enabled () then
            Some (Obs.Clock.now ())
          else None
        in
        for i = 1 to n - 1 do
          Queue.push (wrap ~enqueued:tq i) p.q
        done;
        p.demand <- p.demand + (n - 1);
        ensure_workers p;
        Condition.broadcast p.qcv;
        Mutex.unlock p.qm;
        wrap ~enqueued:None 0 ();
        (* The submitter helps drain the queue instead of blocking.  The
           queue is shared: under concurrent batches the helper may pop a
           {e sibling batch's} task — that is by design and safe, because
           every task closure carries its own batch's completion counter
           and failure slot, so results and exceptions always land in the
           batch that submitted them; helping a sibling only speeds it
           up.  A popped task no longer needs a worker domain, so the
           demand drops at pop time (workers, by contrast, hold their
           demand until the task completes — they stay busy). *)
        let rec help () =
          Mutex.lock p.qm;
          let t =
            if Queue.is_empty p.q then None
            else begin
              p.demand <- p.demand - 1;
              Some (Queue.pop p.q)
            end
          in
          Mutex.unlock p.qm;
          match t with
          | Some t ->
              t ();
              help ()
          | None -> ()
        in
        help ();
        Mutex.lock jm;
        while !pending > 0 do
          Condition.wait jcv jm
        done;
        Mutex.unlock jm;
        match Atomic.get failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end

  let map p f xs =
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let arr = Array.of_list xs in
        let res = Array.make (Array.length arr) None in
        run p (Array.length arr) (fun i -> res.(i) <- Some (f arr.(i)));
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             res)

  (* Determinism argument: indices are handed out in increasing order, and
     a started task always runs to completion, so when a match at index [i]
     is recorded every index [< i] either already ran or is running and
     will still be able to lower [best].  Indices above the current best
     are skipped.  The final [best] is therefore the smallest matching
     index, independent of scheduling. *)
  let find_first ?found p f xs =
    match xs with
    | [] -> None
    | _ ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let res = Array.make n None in
        let best = Atomic.make max_int in
        run p n (fun i ->
            if i < Atomic.get best then
              match f arr.(i) with
              | None -> ()
              | Some r ->
                  res.(i) <- Some r;
                  (match found with
                  | Some flag -> Atomic.set flag true
                  | None -> ());
                  let rec lower () =
                    let b = Atomic.get best in
                    if i < b && not (Atomic.compare_and_set best b i) then lower ()
                  in
                  lower ());
        let b = Atomic.get best in
        if b = max_int then None else res.(b)
end
