(** A CDCL SAT solver.

    Conflict-driven clause learning with two-literal watches, first-UIP
    learning, VSIDS branching, phase saving, Luby restarts and
    activity-based learned-clause deletion.

    Literals use the DIMACS convention: variables are positive integers
    [1..nvars]; a negative integer denotes negation.  Variables are created
    on demand by {!new_var} or implicitly by {!add_clause}. *)

type t

type result = Sat | Unsat | Unknown

type budget = {
  max_conflicts : int option;
  max_propagations : int option;
  max_seconds : float option;
}
(** Resource limits for a single {!solve} call.  Each cap is relative to the
    call (a shared solver gets a fresh budget every time).  [None] means
    unlimited. *)

val budget :
  ?conflicts:int -> ?propagations:int -> ?seconds:float -> unit -> budget

val create : unit -> t

val new_var : t -> int
(** Allocates the next variable (1-based). *)

val nvars : t -> int

val add_clause : t -> int list -> unit
(** Adds a clause.  The empty clause makes the instance trivially
    unsatisfiable.  @raise Invalid_argument on literal 0. *)

val solve :
  ?assumptions:int list -> ?budget:budget -> ?cancel:bool Atomic.t -> t -> result
(** Decides satisfiability under the given assumption literals.  The solver
    may be re-used: clauses persist across calls, assumptions do not.

    When a [budget] cap is exceeded, or [cancel] reads [true] (it is polled
    once per search-loop iteration, so an external thread can stop a running
    solve), the answer is [Unknown].  An interrupted solver remains valid:
    learnt clauses are kept and a later call may re-solve with a larger
    budget.  A zero conflict budget gives up before the first propagation. *)

val value : t -> int -> bool
(** [value s v] is the model value of variable [v] after a [Sat] answer
    (unassigned variables read [false]). *)

val model : t -> bool array
(** Model indexed by variable (entry 0 unused). *)

val stats : t -> int * int * int
(** [(conflicts, decisions, propagations)] since creation. *)

val restarts : t -> int
(** Search restarts since creation. *)
