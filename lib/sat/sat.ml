(* CDCL solver in the MiniSat lineage.
   Internal literal encoding: lit = 2*var for the positive literal, 2*var+1
   for the negation (var >= 1).  [neg l = l lxor 1], [var l = l lsr 1]. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learned : bool;
  mutable dead : bool;
}

type t = {
  mutable num_vars : int;
  clauses : clause Vgraph.Vec.t;
  mutable learnts : int list; (* indices of learned clauses *)
  mutable num_learnts : int;
  mutable watches : int Vgraph.Vec.t array; (* lit -> clause indices *)
  mutable assign : int array; (* var -> -1 undef / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable var_act : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array;
  trail : int Vgraph.Vec.t;
  trail_lim : int Vgraph.Vec.t;
  mutable qhead : int;
  order : (float * int) Vgraph.Heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once a top-level conflict is found *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable max_learnts : int;
}

type result = Sat | Unsat | Unknown

type budget = {
  max_conflicts : int option;
  max_propagations : int option;
  max_seconds : float option;
}

let budget ?conflicts ?propagations ?seconds () =
  {
    max_conflicts = conflicts;
    max_propagations = propagations;
    max_seconds = seconds;
  }

let heap_cmp (a1, v1) (a2, v2) =
  (* max-activity first; tie-break on var id for determinism *)
  if a1 <> a2 then compare a2 a1 else compare v1 v2

let create () =
  {
    num_vars = 0;
    clauses = Vgraph.Vec.create ~dummy:{ lits = [||]; activity = 0.; learned = false; dead = true } ();
    learnts = [];
    num_learnts = 0;
    watches = Array.init 4 (fun _ -> Vgraph.Vec.create ~dummy:(-1) ());
    assign = Array.make 4 (-1);
    level = Array.make 4 0;
    reason = Array.make 4 (-1);
    var_act = Array.make 4 0.;
    polarity = Array.make 4 false;
    seen = Array.make 4 false;
    trail = Vgraph.Vec.create ~dummy:0 ();
    trail_lim = Vgraph.Vec.create ~dummy:0 ();
    qhead = 0;
    order = Vgraph.Heap.create ~cmp:heap_cmp ~dummy:(0., 0) ();
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    max_learnts = 8192;
  }

let nvars s = s.num_vars

let grow_arrays s n =
  let old = Array.length s.assign in
  if n >= old then begin
    let size = max (2 * old) (n + 1) in
    let extend a fill =
      let b = Array.make size fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason (-1);
    s.var_act <- extend s.var_act 0.;
    s.polarity <- extend s.polarity false;
    s.seen <- extend s.seen false
  end;
  let oldw = Array.length s.watches in
  let wsize = (2 * n) + 2 in
  if wsize > oldw then begin
    let w =
      Array.init (max wsize (2 * oldw)) (fun i ->
          if i < oldw then s.watches.(i) else Vgraph.Vec.create ~dummy:(-1) ())
    in
    s.watches <- w
  end

let new_var s =
  s.num_vars <- s.num_vars + 1;
  grow_arrays s s.num_vars;
  Vgraph.Heap.add s.order (0., s.num_vars);
  s.num_vars

let ensure_var s v = while s.num_vars < v do ignore (new_var s) done

(* lit helpers *)
let neg l = l lxor 1
let var_of l = l lsr 1
let of_dimacs d =
  if d = 0 then invalid_arg "Sat: literal 0";
  let v = abs d in
  if d > 0 then 2 * v else (2 * v) + 1

let lit_value s l =
  let a = s.assign.(var_of l) in
  if a = -1 then -1 else a lxor (l land 1)

let decision_level s = Vgraph.Vec.length s.trail_lim

let enqueue s l reason =
  s.assign.(var_of l) <- 1 lxor (l land 1);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  ignore (Vgraph.Vec.push s.trail l)

let var_bump s v =
  s.var_act.(v) <- s.var_act.(v) +. s.var_inc;
  if s.var_act.(v) > 1e100 then begin
    for i = 1 to s.num_vars do
      s.var_act.(i) <- s.var_act.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100;
    (* every heap entry now carries a pre-rescale activity and would fail
       pick_branch's staleness check, degrading decisions to the O(n)
       linear fallback; re-enqueue the live keys under their new
       activities *)
    for i = 1 to s.num_vars do
      if s.assign.(i) = -1 then Vgraph.Heap.add s.order (s.var_act.(i), i)
    done
  end;
  Vgraph.Heap.add s.order (s.var_act.(v), v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    List.iter
      (fun i ->
        let cl = Vgraph.Vec.get s.clauses i in
        cl.activity <- cl.activity *. 1e-20)
      s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

let watch s l ci = ignore (Vgraph.Vec.push s.watches.(l) ci)

(* Attach a clause of length >= 2. *)
let attach s ci =
  let c = Vgraph.Vec.get s.clauses ci in
  watch s c.lits.(0) ci;
  watch s c.lits.(1) ci

let add_clause_internal s lits ~learned =
  let c = { lits; activity = 0.; learned; dead = false } in
  let ci = Vgraph.Vec.push s.clauses c in
  if Array.length lits >= 2 then attach s ci;
  if learned then begin
    s.learnts <- ci :: s.learnts;
    s.num_learnts <- s.num_learnts + 1
  end;
  ci

exception Conflict of int

(* Unit propagation; returns conflicting clause index or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl = -1 && s.qhead < Vgraph.Vec.length s.trail do
    let p = Vgraph.Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = neg p in
    let ws = s.watches.(false_lit) in
    let n = Vgraph.Vec.length ws in
    let keep = ref [] in
    (try
       let i = ref 0 in
       while !i < n do
         let ci = Vgraph.Vec.get ws !i in
         incr i;
         let c = Vgraph.Vec.get s.clauses ci in
         if c.dead then () (* drop *)
         else begin
           let lits = c.lits in
           (* ensure false_lit is lits.(1) *)
           if lits.(0) = false_lit then begin
             lits.(0) <- lits.(1);
             lits.(1) <- false_lit
           end;
           if lit_value s lits.(0) = 1 then keep := ci :: !keep
           else begin
             (* search replacement watch *)
             let len = Array.length lits in
             let k = ref 2 in
             while !k < len && lit_value s lits.(!k) = 0 do
               incr k
             done;
             if !k < len then begin
               lits.(1) <- lits.(!k);
               lits.(!k) <- false_lit;
               watch s lits.(1) ci
             end
             else begin
               keep := ci :: !keep;
               if lit_value s lits.(0) = 0 then begin
                 (* conflict: retain remaining watches *)
                 while !i < n do
                   keep := Vgraph.Vec.get ws !i :: !keep;
                   incr i
                 done;
                 raise (Conflict ci)
               end
               else enqueue s lits.(0) ci
             end
           end
         end
       done
     with Conflict ci -> confl := ci);
    Vgraph.Vec.clear ws;
    List.iter (fun ci -> ignore (Vgraph.Vec.push ws ci)) (List.rev !keep)
  done;
  !confl

let backtrack s lvl =
  if decision_level s > lvl then begin
    let bound = Vgraph.Vec.get s.trail_lim lvl in
    for i = Vgraph.Vec.length s.trail - 1 downto bound do
      let l = Vgraph.Vec.get s.trail i in
      let v = var_of l in
      s.assign.(v) <- -1;
      s.polarity.(v) <- l land 1 = 0;
      s.reason.(v) <- -1;
      Vgraph.Heap.add s.order (s.var_act.(v), v)
    done;
    Vgraph.Vec.shrink s.trail bound;
    Vgraph.Vec.shrink s.trail_lim lvl;
    s.qhead <- min s.qhead bound
  end

let add_clause s lits =
  if s.ok then begin
    (* a previous Sat answer may have left a full assignment in place; the
       root-level simplifications below must only see root facts *)
    backtrack s 0;
    let lits = List.map (of_dimacs) lits in
    List.iter (fun l -> ensure_var s (var_of l)) lits;
    (* simplify: drop false lits, detect satisfied/tautological clauses *)
    let module IS = Set.Make (Int) in
    let set = ref IS.empty in
    let sat_or_taut = ref false in
    List.iter
      (fun l ->
        if lit_value s l = 1 || IS.mem (neg l) !set then sat_or_taut := true
        else if lit_value s l = 0 then ()
        else set := IS.add l !set)
      lits;
    if not !sat_or_taut then begin
      match IS.elements !set with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l (-1);
          if propagate s <> -1 then s.ok <- false
      | l0 :: l1 :: rest ->
          ignore (add_clause_internal s (Array.of_list (l0 :: l1 :: rest)) ~learned:false)
    end
  end

(* First-UIP conflict analysis.  Returns (learnt lits with asserting literal
   first, backtrack level). *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vgraph.Vec.length s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = Vgraph.Vec.get s.clauses !confl in
    if c.learned then cla_bump s c;
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else learnt := q :: !learnt
          end
        end)
      c.lits;
    (* next literal to resolve on *)
    let rec find () =
      let l = Vgraph.Vec.get s.trail !index in
      decr index;
      if s.seen.(var_of l) then l else find ()
    in
    let l = find () in
    p := l;
    s.seen.(var_of l) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else begin
      let r = s.reason.(var_of l) in
      assert (r <> -1);
      confl := r
    end
  done;
  let asserting = neg !p in
  (* compute backtrack level and clear seen *)
  let bt = List.fold_left (fun acc q -> max acc s.level.(var_of q)) 0 !learnt in
  List.iter (fun q -> s.seen.(var_of q) <- false) !learnt;
  (* asserting literal first; a literal of backtrack level second *)
  let tail =
    match !learnt with
    | [] -> []
    | lits ->
        let at_bt, rest = List.partition (fun q -> s.level.(var_of q) = bt) lits in
        (match at_bt with
        | [] -> assert false
        | w :: others -> w :: (others @ rest))
  in
  (Array.of_list (asserting :: tail), bt)

let reduce_db s =
  let arr =
    List.filter_map
      (fun ci ->
        let c = Vgraph.Vec.get s.clauses ci in
        if c.dead then None else Some (ci, c))
      s.learnts
  in
  let locked (_, c) =
    Array.length c.lits > 0
    &&
    let v = var_of c.lits.(0) in
    s.assign.(v) <> -1 && s.reason.(v) <> -1
    && Vgraph.Vec.get s.clauses s.reason.(v) == c
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a.activity b.activity) arr in
  let target = List.length sorted / 2 in
  let killed = ref 0 in
  List.iter
    (fun (_, c) ->
      if !killed < target && (not (locked ((), c))) && Array.length c.lits > 2 then begin
        c.dead <- true;
        incr killed
      end)
    (List.map (fun (ci, c) -> (ci, c)) sorted);
  s.learnts <- List.filter_map (fun (ci, c) -> if c.dead then None else Some ci) arr;
  s.num_learnts <- List.length s.learnts

let pick_branch s =
  let rec from_heap () =
    if Vgraph.Heap.is_empty s.order then -1
    else
      let a, v = Vgraph.Heap.pop_min s.order in
      if s.assign.(v) = -1 && a = s.var_act.(v) then v
      else begin
        if s.assign.(v) = -1 then Vgraph.Heap.add s.order (s.var_act.(v), v);
        from_heap ()
      end
  in
  let v = from_heap () in
  if v >= 0 then v
  else begin
    let r = ref (-1) in
    let v = ref 1 in
    while !r = -1 && !v <= s.num_vars do
      if s.assign.(!v) = -1 then r := !v;
      incr v
    done;
    !r
  end

(* Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let solve_body ~assumptions ?budget ?cancel s =
  if not s.ok then Unsat
  else begin
    let assumptions = List.map of_dimacs assumptions in
    List.iter (fun l -> ensure_var s (var_of l)) assumptions;
    let n_assumps = List.length assumptions in
    let assump = Array.of_list assumptions in
    backtrack s 0;
    (* absolute caps, so re-solving a shared solver gets a fresh budget *)
    let conflict_cap =
      match budget with
      | Some { max_conflicts = Some n; _ } -> s.conflicts + n
      | _ -> max_int
    in
    let prop_cap =
      match budget with
      | Some { max_propagations = Some n; _ } -> s.propagations + n
      | _ -> max_int
    in
    (* monotonic: an NTP step must not blow (or extend) the time slice *)
    let deadline =
      match budget with
      | Some { max_seconds = Some sec; _ } -> Obs.Clock.now () +. sec
      | _ -> infinity
    in
    let ticks = ref 0 in
    let interrupted () =
      (match cancel with Some c -> Atomic.get c | None -> false)
      || s.conflicts >= conflict_cap
      || s.propagations >= prop_cap
      || deadline < infinity
         && (incr ticks;
             (* poll the clock sparingly: every 64 loop iterations *)
             !ticks land 63 = 0 && Obs.Clock.now () > deadline)
    in
    let result = ref None in
    let restart_count = ref 0 in
    let conflict_budget = ref (100 * luby 1) in
    let conflicts_here = ref 0 in
    while !result = None do
      if interrupted () then result := Some Unknown
      else begin
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_here;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else begin
          let learnt, bt = analyze s confl in
          backtrack s bt;
          if Array.length learnt = 1 then enqueue s learnt.(0) (-1)
          else begin
            let ci = add_clause_internal s learnt ~learned:true in
            cla_bump s (Vgraph.Vec.get s.clauses ci);
            enqueue s learnt.(0) ci
          end;
          var_decay s;
          cla_decay s;
          if s.num_learnts > s.max_learnts then begin
            reduce_db s;
            s.max_learnts <- s.max_learnts + (s.max_learnts / 10)
          end
        end
      end
      else if !conflicts_here > !conflict_budget && decision_level s > n_assumps
      then begin
        (* restart *)
        incr restart_count;
        s.restarts <- s.restarts + 1;
        conflicts_here := 0;
        conflict_budget := 100 * luby (!restart_count + 1);
        backtrack s 0
      end
      else if decision_level s < n_assumps then begin
        (* establish next assumption *)
        let l = assump.(decision_level s) in
        match lit_value s l with
        | 1 -> ignore (Vgraph.Vec.push s.trail_lim (Vgraph.Vec.length s.trail))
        | 0 -> result := Some Unsat
        | _ ->
            ignore (Vgraph.Vec.push s.trail_lim (Vgraph.Vec.length s.trail));
            enqueue s l (-1)
      end
      else begin
        let v = pick_branch s in
        if v = -1 then result := Some Sat
        else begin
          s.decisions <- s.decisions + 1;
          ignore (Vgraph.Vec.push s.trail_lim (Vgraph.Vec.length s.trail));
          let l = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
          enqueue s l (-1)
        end
      end
      end
    done;
    let r = match !result with Some r -> r | None -> assert false in
    (match r with
    | Sat -> () (* keep assignment for model queries *)
    | Unsat | Unknown -> backtrack s 0);
    r
  end

(* One span per call, carrying this call's conflict/propagation/restart
   deltas (the solver counters are cumulative across calls on a shared
   solver).  Disabled tracing costs one branch plus the closure. *)
let solve ?(assumptions = []) ?budget ?cancel s =
  let c0 = s.conflicts and p0 = s.propagations and r0 = s.restarts in
  Obs.span ~name:"sat.solve" (fun () ->
      let r = solve_body ~assumptions ?budget ?cancel s in
      Obs.attr (fun () ->
          [
            ( "result",
              Obs.String
                (match r with
                | Sat -> "sat"
                | Unsat -> "unsat"
                | Unknown -> "unknown") );
            ("vars", Obs.Int s.num_vars);
            ("conflicts", Obs.Int (s.conflicts - c0));
            ("propagations", Obs.Int (s.propagations - p0));
            ("restarts", Obs.Int (s.restarts - r0));
          ]);
      r)

let value s v =
  if v < 1 || v > s.num_vars then invalid_arg "Sat.value";
  s.assign.(v) = 1

let model s = Array.init (s.num_vars + 1) (fun v -> v >= 1 && s.assign.(v) = 1)

let stats s = (s.conflicts, s.decisions, s.propagations)
let restarts s = s.restarts
