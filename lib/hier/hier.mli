(** Hierarchical compositional SEC: a module overlay on the flat netlist,
    a leaf-first planner that verifies module pairs bottom-up with
    already-verified submodules black-boxed, and a store-backed per-module
    verdict table so unchanged subtrees are warm hits across runs.

    {b The overlay.}  A {!design} is a tree of named {!module_def}s.  Each
    module owns a {e glue} circuit built by {!Build}: the module's own
    logic and state, with every submodule instance represented by
    {e cut-point inputs} (one fresh primary input per instance output,
    named ["<inst>.o<k>"]) and {e obligation outputs} (the signals driving
    the instance's inputs, appended after the module's own outputs).  This
    convention makes the black-boxed parent check {e exactly} a
    {!Verify.check} of the two glue circuits: cut-point inputs are united
    by name across the pair (the abstracted submodule produces equal
    outputs on both sides), and the obligation outputs are compared
    positionally (both sides must drive the submodule identically).

    {b Soundness.}  Black-boxing a submodule is sound only in the proving
    direction, and only once the submodule pair itself is proven
    equivalent: if every child pair is [Equivalent] and the glue pair is
    [Equivalent] (over free cut-points, with obligation outputs equal),
    the composed pair is equivalent.  An [Inequivalent] or [Undecided]
    glue answer proves {e nothing} — free cut-points over-approximate the
    values a real child can produce — so the planner re-runs that subtree
    {e flat} ({!flatten}) rather than ever reporting a spurious verdict.
    A refuted {e leaf} (or flat-fallback) pair is a real inequivalence of
    those modules and is attributed to them.

    {b Verdict reuse.}  With a {!Store.t}, every decided module-pair
    verdict persists under key
    [(left subtree signature, right subtree signature, boundary
    signature)].  Subtree signatures hash the glue netlist {e and} the
    children's subtree signatures, so editing one leaf invalidates the
    keys of exactly that leaf's ancestor chain: siblings and unrelated
    modules answer from the store on the next run.  Hier records are
    written with the store's ["hier"] kind tag, so [seqver cache stats]
    can attribute entries and mixed flat/hier caches stay readable. *)

type module_def = {
  mod_name : string;
  glue : Circuit.t;
      (** module logic; inputs = [ports_in] plus instance cut-points,
          outputs = module outputs then per-instance obligation outputs *)
  ports_in : string list;  (** module-level input ports, in port order *)
  out_count : int;  (** module-level outputs = first [out_count] glue outputs *)
  instances : (string * string) list;
      (** [(instance name, child module name)], in instantiation order *)
}

type design = {
  design_name : string;
  top : string;
  modules : module_def list;
}

(** Glue-circuit builder enforcing the cut-point/obligation convention. *)
module Build : sig
  type t

  val create : string -> t
  (** A fresh module named after the argument; its glue circuit carries
      the same name. *)

  val glue : t -> Circuit.t
  (** The underlying circuit, for adding gates and latches directly. *)

  val input : t -> string -> Circuit.signal
  (** Declare a module-level input port (in call order). *)

  val inst :
    t -> name:string -> child:module_def -> inputs:Circuit.signal list ->
    Circuit.signal list
  (** Instantiate [child] as [name]: records the obligation outputs
      ([inputs], one per child input port, in port order) and returns the
      instance's output cut-points (fresh inputs ["name.o<k>"], one per
      child output).  @raise Invalid_argument on an arity mismatch or a
      duplicate instance name. *)

  val output : t -> Circuit.signal -> unit
  (** Mark a module-level output (positional, in call order). *)

  val finish : t -> module_def
  (** Seals the module: marks module outputs, then each instance's
      obligation outputs, validates the circuit. *)
end

val make_design : name:string -> top:string -> module_def list -> design
(** Validates the module table: unique module names, [top] present, every
    instance's child present, the instance graph acyclic.
    @raise Invalid_argument otherwise. *)

val find_module : design -> string -> module_def
(** @raise Invalid_argument on an unknown module name. *)

val module_order : design -> string list
(** Modules reachable from [top] in leaf-first (post-)order, each name
    once — the planner's checking order. *)

val invalidation_set : design -> string -> string list
(** The modules whose subtree signature changes when the named module's
    glue changes: the module itself plus every ancestor, in
    {!module_order} order.  This is exactly the set a warm rerun
    re-checks after {!map_module}. *)

val flatten : ?name:string -> design -> Circuit.t
(** Inline the whole hierarchy into one flat circuit (instance-path
    prefixes like ["p0/q1/"] on inner latch names, so the exposure cut of
    a flattened pair lines up when the two designs use the same hierarchy
    and latch names).  [name] defaults to [design_name]. *)

val flatten_at : design -> string -> Circuit.t
(** Flatten the subtree rooted at the named module — the planner's flat
    fallback. *)

val circuit_signature : Circuit.t -> string
(** Content hash of a circuit's netlist text (hex digest). *)

val subtree_signature : design -> string -> string
(** Hash of the module's glue signature and, recursively, its children's
    subtree signatures — changes exactly on the {!invalidation_set} of an
    edit. *)

val boundary_signature : design -> string -> string
(** Hash of the module's interface: input port names, output count, and
    per instance the child's name and interface. *)

val store_kind : string
(** ["hier"] — the {!Store} kind tag of per-module verdict records. *)

val module_key : left:design -> right:design -> string -> string
(** The store key of a module pair's verdict. *)

(** {1 Adversarial resynthesis} *)

val resynthesize : ?seed:int -> Circuit.t -> Circuit.t
(** Equivalence-preserving local rewrites, applied gate-by-gate with a
    seeded RNG: De Morgan flips, XOR/MUX re-encodings, fanin commutation.
    Input, output and latch names and positions are preserved, so the
    result drops into the same module boundary. *)

val break_output : ?output:int -> Circuit.t -> Circuit.t
(** An intentionally-broken mutant: the same circuit with one output
    (default the first) inverted — an observable inequivalence.
    @raise Invalid_argument when [output] is out of range. *)

val map_module : design -> name:string -> f:(Circuit.t -> Circuit.t) -> design
(** Replace one module's glue with [f glue].  [f] must preserve the
    module interface (port names, output positions); checked.
    @raise Invalid_argument when the interface changed or [name] is
    unknown. *)

(** {1 The planner} *)

type mode = Leaf | Blackbox | Flat
(** How a module pair was decided: a leaf check, a black-boxed glue
    check, or the flat fallback of its subtree. *)

type source = Checked | Store_hit

type module_verdict = M_equivalent | M_inequivalent | M_undecided of string

type module_report = {
  rm_module : string;
  rm_mode : mode;
  rm_source : source;
  rm_verdict : module_verdict;
  rm_seconds : float;
}

type verdict =
  | Equivalent
  | Inequivalent of {
      offending : string;  (** the module pair that differs *)
      cex : Cec.counterexample option;
          (** the module-level counterexample when freshly proven (absent
              on warm store hits and conservative EDBF rejections) *)
    }
  | Undecided of { module_ : string; reason : string }

type report = {
  verdict : verdict;
  modules : module_report list;  (** leaf-first, as processed *)
  store_hits : int;
  checked : int;  (** module pairs decided by running an engine *)
  flat_fallbacks : int;
  seconds : float;
}

val check :
  ?engine:Cec.engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?limits:Cec.limits ->
  ?cache:Cec.Cache.t ->
  ?store:Store.t ->
  design ->
  design ->
  report
(** Leaf-first compositional check of two designs.  Modules are paired by
    name; a hierarchy or boundary mismatch falls back to one flat check
    of the whole pair.  Each module pair is answered from the store when
    possible, otherwise checked ({!mode}) and its verdict persisted
    (kind ["hier"]; [Undecided] is never stored).  The first refuted
    module pair stops the run with an attributed [Inequivalent]; an
    undecidable one stops with [Undecided].  The store also backs the
    inner combinational checks, so even a cold ancestor re-check reuses
    surviving cone verdicts.  Obs: span [hier.module] per check, counters
    [hier.module_checked], [hier.module_store_hits],
    [hier.flat_fallback]. *)
