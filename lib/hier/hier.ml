(* Hierarchical compositional SEC: module overlay, glue-circuit builder,
   flattening, signatures, adversarial resynthesis and the leaf-first
   planner.  See hier.mli for the conventions and the soundness argument. *)

type module_def = {
  mod_name : string;
  glue : Circuit.t;
  ports_in : string list;
  out_count : int;
  instances : (string * string) list;
}

type design = { design_name : string; top : string; modules : module_def list }

(* ---------- glue builder ---------- *)

module Build = struct
  type t = {
    b_name : string;
    b_glue : Circuit.t;
    mutable b_ports : string list;  (* reversed *)
    mutable b_outs : Circuit.signal list;  (* reversed *)
    mutable b_insts : (string * module_def * Circuit.signal list) list;
        (* reversed; obligation signals in child port order *)
    mutable b_done : bool;
  }

  let create name =
    {
      b_name = name;
      b_glue = Circuit.create name;
      b_ports = [];
      b_outs = [];
      b_insts = [];
      b_done = false;
    }

  let glue b = b.b_glue

  let sealed b = if b.b_done then invalid_arg "Hier.Build: module already finished"

  let input b port =
    sealed b;
    b.b_ports <- port :: b.b_ports;
    Circuit.add_input b.b_glue port

  let inst b ~name ~child ~inputs =
    sealed b;
    if List.exists (fun (n, _, _) -> n = name) b.b_insts then
      invalid_arg (Printf.sprintf "Hier.Build.inst: duplicate instance %S" name);
    if List.length inputs <> List.length child.ports_in then
      invalid_arg
        (Printf.sprintf
           "Hier.Build.inst: %s expects %d inputs for %s, got %d" name
           (List.length child.ports_in) child.mod_name (List.length inputs));
    b.b_insts <- (name, child, inputs) :: b.b_insts;
    List.init child.out_count (fun k ->
        Circuit.add_input b.b_glue (Printf.sprintf "%s.o%d" name k))

  let output b s =
    sealed b;
    b.b_outs <- s :: b.b_outs

  let finish b =
    sealed b;
    b.b_done <- true;
    let insts = List.rev b.b_insts in
    List.iter (fun s -> Circuit.mark_output b.b_glue s) (List.rev b.b_outs);
    List.iter
      (fun (_, _, obligations) ->
        List.iter (fun s -> Circuit.mark_output b.b_glue s) obligations)
      insts;
    Circuit.check b.b_glue;
    {
      mod_name = b.b_name;
      glue = b.b_glue;
      ports_in = List.rev b.b_ports;
      out_count = List.length b.b_outs;
      instances = List.map (fun (n, c, _) -> (n, c.mod_name)) insts;
    }
end

(* ---------- design table ---------- *)

let find_module d name =
  match List.find_opt (fun m -> m.mod_name = name) d.modules with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Hier: no module %S in design %s" name d.design_name)

let make_design ~name ~top modules =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen m.mod_name then
        invalid_arg (Printf.sprintf "Hier.make_design: duplicate module %S" m.mod_name);
      Hashtbl.add seen m.mod_name ())
    modules;
  let d = { design_name = name; top; modules } in
  (* reachability, child presence and acyclicity in one DFS *)
  let visiting = Hashtbl.create 8 in
  let visited = Hashtbl.create 8 in
  let rec visit mn =
    if Hashtbl.mem visiting mn then
      invalid_arg (Printf.sprintf "Hier.make_design: instance cycle through %S" mn);
    if not (Hashtbl.mem visited mn) then begin
      Hashtbl.add visiting mn ();
      List.iter (fun (_, child) -> visit child) (find_module d mn).instances;
      Hashtbl.remove visiting mn;
      Hashtbl.add visited mn ()
    end
  in
  visit top;
  d

let module_order d =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit mn =
    if not (Hashtbl.mem visited mn) then begin
      Hashtbl.add visited mn ();
      List.iter (fun (_, child) -> visit child) (find_module d mn).instances;
      order := mn :: !order
    end
  in
  visit d.top;
  List.rev !order

let invalidation_set d name =
  ignore (find_module d name);
  (* a module is invalidated iff [name] is in its instance subtree *)
  let contains = Hashtbl.create 8 in
  let rec mark mn =
    match Hashtbl.find_opt contains mn with
    | Some b -> b
    | None ->
        let b =
          mn = name
          || List.exists (fun (_, child) -> mark child) (find_module d mn).instances
        in
        Hashtbl.add contains mn b;
        b
  in
  List.filter mark (module_order d)

(* ---------- flattening ---------- *)

let cutpoint_name inst k = Printf.sprintf "%s.o%d" inst k

let signal_of c name =
  match Circuit.find_signal c name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Hier: circuit %s has no signal %S" (Circuit.name c) name)

(* Inline [m] (and recursively its instances) into [c].  [inputs] are the
   already-built signals feeding the module's input ports, positionally;
   returns the module's output signals.  Inner latch names get the
   instance-path [prefix], so a flattened pair built from same-shaped
   hierarchies shares its latch names (the exposure cut lines up). *)
let rec instantiate c d ~prefix m inputs =
  let g = m.glue in
  let map = Array.make (Circuit.signal_count g) (-1) in
  let bind s v = map.(s) <- v in
  let get s =
    if map.(s) < 0 then
      invalid_arg
        (Printf.sprintf "Hier.flatten: unmapped signal %s in %s"
           (Circuit.signal_name g s) m.mod_name);
    map.(s)
  in
  List.iter2 (fun port v -> bind (signal_of g port) v) m.ports_in inputs;
  (* cut-points become placeholders, connected to child outputs below *)
  let cut_sigs =
    List.map
      (fun (iname, cname) ->
        let child = find_module d cname in
        ( iname,
          child,
          List.init child.out_count (fun k ->
              let ph = Circuit.declare c () in
              bind (signal_of g (cutpoint_name iname k)) ph;
              ph) ))
      m.instances
  in
  (* glue latches keep their names under the instance path *)
  let glue_latches = Circuit.latches g in
  List.iter
    (fun l ->
      bind l (Circuit.declare c ~name:(prefix ^ Circuit.signal_name g l) ()))
    glue_latches;
  List.iter
    (fun s ->
      match Circuit.driver g s with
      | Circuit.Gate (fn, fanins) ->
          bind s (Circuit.add_gate c fn (List.map get (Array.to_list fanins)))
      | _ -> ())
    (Circuit.comb_topo g);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info g l in
      Circuit.set_latch c map.(l) ?enable:(Option.map get enable) ~data:(get data) ())
    glue_latches;
  (* recurse: each instance reads its obligation outputs, placeholders
     buffer its results back into the glue *)
  let outs = Array.of_list (Circuit.outputs g) in
  let obligation_base = ref m.out_count in
  List.iter
    (fun (iname, child, placeholders) ->
      let n_in = List.length child.ports_in in
      let drivers =
        List.init n_in (fun k -> get outs.(!obligation_base + k))
      in
      obligation_base := !obligation_base + n_in;
      let child_outs =
        instantiate c d ~prefix:(prefix ^ iname ^ "/") child drivers
      in
      List.iter2
        (fun ph o -> Circuit.set_gate c ph Circuit.Buf [ o ])
        placeholders child_outs)
    cut_sigs;
  List.init m.out_count (fun k -> get outs.(k))

let flatten ?name d =
  let top = find_module d d.top in
  let c = Circuit.create (Option.value name ~default:d.design_name) in
  let inputs = List.map (fun p -> Circuit.add_input c p) top.ports_in in
  let outs = instantiate c d ~prefix:"" top inputs in
  List.iter (fun o -> Circuit.mark_output c o) outs;
  Circuit.check c;
  c

let flatten_at d name =
  ignore (find_module d name);
  flatten ~name:(d.design_name ^ ":" ^ name)
    { d with top = name; design_name = d.design_name ^ ":" ^ name }

(* ---------- signatures ---------- *)

let circuit_signature c = Digest.to_hex (Digest.string (Netlist_io.to_string c))

let subtree_signatures d =
  let memo = Hashtbl.create 8 in
  let rec go mn =
    match Hashtbl.find_opt memo mn with
    | Some s -> s
    | None ->
        let m = find_module d mn in
        let children =
          List.map (fun (iname, child) -> iname ^ "=" ^ go child) m.instances
        in
        let s =
          Digest.to_hex
            (Digest.string
               (circuit_signature m.glue ^ "|" ^ String.concat ";" children))
        in
        Hashtbl.add memo mn s;
        s
  in
  List.iter (fun mn -> ignore (go mn)) (module_order d);
  memo

let subtree_signature d name =
  ignore (find_module d name);
  Hashtbl.find (subtree_signatures d) name

let boundary_signature d name =
  let m = find_module d name in
  let iface m =
    Printf.sprintf "in:%s/out:%d" (String.concat "," m.ports_in) m.out_count
  in
  let insts =
    List.map
      (fun (iname, cname) ->
        Printf.sprintf "%s:%s[%s]" iname cname (iface (find_module d cname)))
      m.instances
  in
  Digest.to_hex (Digest.string (iface m ^ "|" ^ String.concat ";" insts))

let store_kind = "hier"

let module_key ~left ~right name =
  Printf.sprintf "hier|%s|%s|%s"
    (subtree_signature left name)
    (subtree_signature right name)
    (boundary_signature left name)

(* ---------- adversarial resynthesis ---------- *)

(* Rebuilds [c] gate by gate through [rewrite] (identity by default),
   preserving input/latch names and output positions — the shared
   machinery of [resynthesize] and [break_output]. *)
let rebuild ?(rewrite = fun c fn ins -> Circuit.add_gate c fn ins)
    ?(final = fun _ _ s -> s) c =
  let out = Circuit.create (Circuit.name c) in
  let map = Array.make (Circuit.signal_count c) (-1) in
  let get s = map.(s) in
  List.iter
    (fun i -> map.(i) <- Circuit.add_input out (Circuit.signal_name c i))
    (Circuit.inputs c);
  let latches = Circuit.latches c in
  List.iter
    (fun l -> map.(l) <- Circuit.declare out ~name:(Circuit.signal_name c l) ())
    latches;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Circuit.Gate (fn, fanins) ->
          map.(s) <- rewrite out fn (List.map get (Array.to_list fanins))
      | _ -> ())
    (Circuit.comb_topo c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.set_latch out map.(l)
        ?enable:(Option.map get enable)
        ~data:(get data) ())
    latches;
  List.iteri (fun i o -> Circuit.mark_output out (final out i (get o))) (Circuit.outputs c);
  Circuit.check out;
  out

let resynthesize ?(seed = 0) c =
  let st = Random.State.make [| seed; 0x5EC7; Hashtbl.hash (Circuit.name c) |] in
  let rewrite out fn ins =
    let g f l = Circuit.add_gate out f l in
    let flip = Random.State.bool st in
    match ((fn : Circuit.gate_fn), ins) with
    | And, [ a; b ] when flip ->
        if Random.State.bool st then g Not [ g Nand [ a; b ] ]
        else g Nor [ g Not [ a ]; g Not [ b ] ]
    | Or, [ a; b ] when flip ->
        if Random.State.bool st then g Not [ g Nor [ a; b ] ]
        else g Nand [ g Not [ a ]; g Not [ b ] ]
    | Xor, [ a; b ] when flip -> g Mux [ a; g Not [ b ]; b ]
    | Xnor, [ a; b ] when flip -> g Mux [ a; b; g Not [ b ] ]
    | Nand, [ a; b ] when flip -> g Not [ g And [ a; b ] ]
    | Nor, [ a; b ] when flip -> g Not [ g Or [ a; b ] ]
    | Not, [ a ] when flip -> g Nand [ a; a ]
    | Mux, [ s; t; e ] when flip ->
        g Or [ g And [ s; t ]; g And [ g Not [ s ]; e ] ]
    | (And | Or | Xor | Xnor | Nand | Nor), [ a; b ] -> g fn [ b; a ]
    | _ -> g fn ins
  in
  rebuild ~rewrite c

let break_output ?(output = 0) c =
  let n = List.length (Circuit.outputs c) in
  if output < 0 || output >= n then
    invalid_arg (Printf.sprintf "Hier.break_output: output %d of %d" output n);
  rebuild
    ~final:(fun out i s ->
      if i = output then Circuit.add_gate out Circuit.Not [ s ] else s)
    c

let map_module d ~name ~f =
  let m = find_module d name in
  let glue' = f m.glue in
  let iface_ok =
    List.for_all
      (fun p ->
        match Circuit.find_signal glue' p with
        | Some s -> Circuit.driver glue' s = Circuit.Input
        | None -> false)
      m.ports_in
    && List.length (Circuit.outputs glue') = List.length (Circuit.outputs m.glue)
  in
  if not iface_ok then
    invalid_arg
      (Printf.sprintf "Hier.map_module: %s's interface changed" name);
  {
    d with
    modules =
      List.map
        (fun md -> if md.mod_name = name then { md with glue = glue' } else md)
        d.modules;
  }

(* ---------- the planner ---------- *)

type mode = Leaf | Blackbox | Flat
type source = Checked | Store_hit
type module_verdict = M_equivalent | M_inequivalent | M_undecided of string

type module_report = {
  rm_module : string;
  rm_mode : mode;
  rm_source : source;
  rm_verdict : module_verdict;
  rm_seconds : float;
}

type verdict =
  | Equivalent
  | Inequivalent of { offending : string; cex : Cec.counterexample option }
  | Undecided of { module_ : string; reason : string }

type report = {
  verdict : verdict;
  modules : module_report list;
  store_hits : int;
  checked : int;
  flat_fallbacks : int;
  seconds : float;
}

let mode_str = function Leaf -> "leaf" | Blackbox -> "blackbox" | Flat -> "flat"

(* One Verify.check of a circuit pair, exposure cut from the left side's
   structural feedback plan (the repo-wide "auto" convention). *)
let run_pair ?engine ?jobs ?pool ?limits ?cache ?store l r =
  let exposed =
    List.map (Circuit.signal_name l) (Feedback.plan_structural l).Feedback.exposed
  in
  match Verify.check ?engine ?jobs ?pool ?limits ?cache ?store ~exposed l r with
  | Ok o -> (
      match o.Verify.verdict with
      | Verify.Equivalent -> (M_equivalent, None)
      | Verify.Inequivalent cex -> (M_inequivalent, cex)
      | Verify.Undecided reason -> (M_undecided reason, None))
  | Error d -> (M_undecided (Seqprob.diagnosis_to_string d), None)

let boundaries_compatible (dl : design) (dr : design) name =
  match List.find_opt (fun m -> m.mod_name = name) dr.modules with
  | None -> false
  | Some r ->
      let l = find_module dl name in
      l.ports_in = r.ports_in && l.out_count = r.out_count
      && l.instances = r.instances

let check ?engine ?jobs ?pool ?limits ?cache ?store dl dr =
  Obs.span ~name:"hier.check"
    ~attrs:
      [ ("left", Obs.String dl.design_name); ("right", Obs.String dr.design_name) ]
  @@ fun () ->
  let t0 = Obs.Clock.now () in
  let reports = ref [] in
  let store_hits = ref 0 and checked = ref 0 and fallbacks = ref 0 in
  let finish verdict =
    {
      verdict;
      modules = List.rev !reports;
      store_hits = !store_hits;
      checked = !checked;
      flat_fallbacks = !fallbacks;
      seconds = Obs.Clock.now () -. t0;
    }
  in
  let record rm = reports := rm :: !reports in
  let timed_pair ~mod_name ~mode l r =
    Obs.count "hier.module_checked" 1;
    incr checked;
    let (v, cex), secs =
      Obs.timed_span ~name:"hier.module"
        ~attrs:
          [ ("module", Obs.String mod_name); ("mode", Obs.String (mode_str mode)) ]
        (fun () -> run_pair ?engine ?jobs ?pool ?limits ?cache ?store l r)
    in
    (v, cex, secs)
  in
  let order = module_order dl in
  let hierarchies_match =
    dl.top = dr.top && List.for_all (boundaries_compatible dl dr) order
  in
  if not hierarchies_match then begin
    (* no usable module pairing: one flat check of the whole design pair *)
    Obs.instant "hier.hierarchy_mismatch";
    incr fallbacks;
    Obs.count "hier.flat_fallback" 1;
    let v, cex, secs =
      timed_pair ~mod_name:dl.top ~mode:Flat (flatten dl) (flatten dr)
    in
    record
      {
        rm_module = dl.top;
        rm_mode = Flat;
        rm_source = Checked;
        rm_verdict = v;
        rm_seconds = secs;
      };
    finish
      (match v with
      | M_equivalent -> Equivalent
      | M_inequivalent -> Inequivalent { offending = dl.top; cex }
      | M_undecided reason -> Undecided { module_ = dl.top; reason })
  end
  else begin
    let result = ref None in
    let rec go = function
      | [] -> ()
      | mn :: rest when !result = None ->
          let l = find_module dl mn and r = find_module dr mn in
          let key = module_key ~left:dl ~right:dr mn in
          let mode = if l.instances = [] then Leaf else Blackbox in
          (match Option.bind store (fun st -> Store.find st key) with
          | Some Store.Equivalent ->
              incr store_hits;
              Obs.count "hier.module_store_hits" 1;
              record
                {
                  rm_module = mn;
                  rm_mode = mode;
                  rm_source = Store_hit;
                  rm_verdict = M_equivalent;
                  rm_seconds = 0.;
                }
          | Some (Store.Inequivalent _) ->
              incr store_hits;
              Obs.count "hier.module_store_hits" 1;
              record
                {
                  rm_module = mn;
                  rm_mode = mode;
                  rm_source = Store_hit;
                  rm_verdict = M_inequivalent;
                  rm_seconds = 0.;
                };
              result := Some (Inequivalent { offending = mn; cex = None })
          | None ->
              let persist v =
                match (store, v) with
                | Some st, M_equivalent ->
                    ignore (Store.add ~kind:store_kind st key Store.Equivalent)
                | Some st, M_inequivalent ->
                    ignore (Store.add ~kind:store_kind st key (Store.Inequivalent []))
                | _ -> ()
              in
              let conclude ~rm_mode ~secs v cex =
                record
                  {
                    rm_module = mn;
                    rm_mode;
                    rm_source = Checked;
                    rm_verdict = v;
                    rm_seconds = secs;
                  };
                persist v;
                match v with
                | M_equivalent -> ()
                | M_inequivalent ->
                    result := Some (Inequivalent { offending = mn; cex })
                | M_undecided reason ->
                    result := Some (Undecided { module_ = mn; reason })
              in
              let v, cex, secs = timed_pair ~mod_name:mn ~mode l.glue r.glue in
              (match (mode, v) with
              | _, M_equivalent | (Leaf | Flat), _ ->
                  conclude ~rm_mode:mode ~secs v cex
              | Blackbox, (M_inequivalent | M_undecided _) ->
                  (* free cut-points over-approximate the children: a glue
                     refutation proves nothing, so decide the subtree flat *)
                  incr fallbacks;
                  Obs.count "hier.flat_fallback" 1;
                  let v', cex', secs' =
                    timed_pair ~mod_name:mn ~mode:Flat (flatten_at dl mn)
                      (flatten_at dr mn)
                  in
                  conclude ~rm_mode:Flat ~secs:(secs +. secs') v' cex'));
          go rest
      | _ -> ()
    in
    go order;
    finish (match !result with Some v -> v | None -> Equivalent)
  end
