type lit = int

(* Node storage: fanin arrays; inputs have fanin0 = -1.  Node 0 is the
   constant false. *)
type t = {
  fanin0 : lit Vgraph.Vec.t;
  fanin1 : lit Vgraph.Vec.t;
  levels : int Vgraph.Vec.t;
  strash : (int * int, int) Hashtbl.t; (* (lit0, lit1) with lit0 <= lit1 -> node *)
  inputs : int Vgraph.Vec.t; (* node ids *)
}

let lit_false = 0
let lit_true = 1
let neg l = l lxor 1
let is_complement l = l land 1 = 1
let node_of l = l lsr 1
let mk_lit node compl = (2 * node) lor (if compl then 1 else 0)

let create () =
  let g =
    {
      fanin0 = Vgraph.Vec.create ~dummy:0 ();
      fanin1 = Vgraph.Vec.create ~dummy:0 ();
      levels = Vgraph.Vec.create ~dummy:0 ();
      strash = Hashtbl.create 4096;
      inputs = Vgraph.Vec.create ~dummy:0 ();
    }
  in
  (* constant node *)
  ignore (Vgraph.Vec.push g.fanin0 (-2));
  ignore (Vgraph.Vec.push g.fanin1 (-2));
  ignore (Vgraph.Vec.push g.levels 0);
  g

let node_count g = Vgraph.Vec.length g.fanin0

let input g =
  let n = Vgraph.Vec.push g.fanin0 (-1) in
  ignore (Vgraph.Vec.push g.fanin1 (-1));
  ignore (Vgraph.Vec.push g.levels 0);
  ignore (Vgraph.Vec.push g.inputs n);
  mk_lit n false

let num_inputs g = Vgraph.Vec.length g.inputs
let input_lit g i = mk_lit (Vgraph.Vec.get g.inputs i) false

let is_input_node g n = Vgraph.Vec.get g.fanin0 n = -1

let fanins g n =
  let f0 = Vgraph.Vec.get g.fanin0 n in
  if f0 < 0 then invalid_arg "Aig.fanins: not an AND node";
  (f0, Vgraph.Vec.get g.fanin1 n)

let level g n = Vgraph.Vec.get g.levels n

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = neg b then lit_false
  else
    match Hashtbl.find_opt g.strash (a, b) with
    | Some n -> mk_lit n false
    | None ->
        let n = Vgraph.Vec.push g.fanin0 a in
        ignore (Vgraph.Vec.push g.fanin1 b);
        let lv = 1 + max (level g (node_of a)) (level g (node_of b)) in
        ignore (Vgraph.Vec.push g.levels lv);
        Hashtbl.add g.strash (a, b) n;
        mk_lit n false

let or_ g a b = neg (and_ g (neg a) (neg b))

let xor_ g a b =
  (* a xor b = (a + b)(~a + ~b) *)
  and_ g (or_ g a b) (neg (and_ g a b))

let mux g s t e = or_ g (and_ g s t) (and_ g (neg s) e)

let and_list g = List.fold_left (and_ g) lit_true
let or_list g = List.fold_left (or_ g) lit_false

let and_count g =
  let c = ref 0 in
  for n = 1 to node_count g - 1 do
    if not (is_input_node g n) then incr c
  done;
  !c

let simulate g in_words =
  if Array.length in_words <> num_inputs g then
    invalid_arg "Aig.simulate: wrong number of input words";
  let n = node_count g in
  let vals = Array.make n 0L in
  let next_input = ref 0 in
  for v = 1 to n - 1 do
    let f0 = Vgraph.Vec.get g.fanin0 v in
    if f0 = -1 then begin
      vals.(v) <- in_words.(!next_input);
      incr next_input
    end
    else begin
      let f1 = Vgraph.Vec.get g.fanin1 v in
      let w0 = vals.(node_of f0) in
      let w0 = if is_complement f0 then Int64.lognot w0 else w0 in
      let w1 = vals.(node_of f1) in
      let w1 = if is_complement f1 then Int64.lognot w1 else w1 in
      vals.(v) <- Int64.logand w0 w1
    end
  done;
  vals

let sim_lit vals l =
  let w = vals.(node_of l) in
  if is_complement l then Int64.lognot w else w

let eval g env l =
  if Array.length env <> num_inputs g then invalid_arg "Aig.eval: env size";
  let words = Array.map (fun b -> if b then 1L else 0L) env in
  let vals = simulate g words in
  Int64.logand (sim_lit vals l) 1L = 1L

let cone_nodes g roots =
  let seen = Array.make (node_count g) false in
  let rec visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      if n > 0 && not (is_input_node g n) then begin
        let f0, f1 = fanins g n in
        visit (node_of f0);
        visit (node_of f1)
      end
    end
  in
  List.iter (fun l -> visit (node_of l)) roots;
  seen

let cone_inputs g groups =
  let seen = Array.make (node_count g) false in
  let acc = ref [] in
  let rec visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      if is_input_node g n then acc := n :: !acc
      else if n > 0 then begin
        let f0, f1 = fanins g n in
        visit (node_of f0);
        visit (node_of f1)
      end
    end
  in
  List.iter (List.iter (fun l -> visit (node_of l))) groups;
  List.rev !acc

type extraction = { sub : t; map : lit array; sub_inputs : int array }

let extract g ~roots =
  let keep = cone_nodes g roots in
  let sub = create () in
  let map = Array.make (node_count g) (-1) in
  map.(0) <- lit_false;
  let rev_inputs = ref [] in
  let sub_lit l =
    let m = map.(node_of l) in
    assert (m >= 0);
    if is_complement l then neg m else m
  in
  (* parent ids are topologically ordered: fanins precede their ANDs *)
  let input_pos = Hashtbl.create 64 in
  Vgraph.Vec.iteri (fun i n -> Hashtbl.replace input_pos n i) g.inputs;
  for n = 1 to node_count g - 1 do
    if keep.(n) then
      if is_input_node g n then begin
        map.(n) <- input sub;
        rev_inputs := Hashtbl.find input_pos n :: !rev_inputs
      end
      else
        let f0, f1 = fanins g n in
        map.(n) <- and_ sub (sub_lit f0) (sub_lit f1)
  done;
  { sub; map; sub_inputs = Array.of_list (List.rev !rev_inputs) }

let cone_signature g ~input_label groups =
  let buf = Buffer.create 1024 in
  let canon = Hashtbl.create 256 in
  (* node -> canonical id *)
  let next = ref 0 in
  let canon_lit l =
    (2 * Hashtbl.find canon (node_of l)) lor (if is_complement l then 1 else 0)
  in
  let rec visit n =
    if not (Hashtbl.mem canon n) then
      if n = 0 then begin
        Hashtbl.add canon n !next;
        incr next;
        Buffer.add_string buf "K;"
      end
      else if is_input_node g n then begin
        Hashtbl.add canon n !next;
        incr next;
        Buffer.add_char buf 'I';
        Buffer.add_string buf (input_label n);
        Buffer.add_char buf ';'
      end
      else begin
        let f0, f1 = fanins g n in
        visit (node_of f0);
        visit (node_of f1);
        Hashtbl.add canon n !next;
        incr next;
        Buffer.add_char buf 'A';
        Buffer.add_string buf (string_of_int (canon_lit f0));
        Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int (canon_lit f1));
        Buffer.add_char buf ';'
      end
  in
  List.iter
    (fun roots ->
      List.iter (fun l -> visit (node_of l)) roots;
      Buffer.add_char buf '[';
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int (canon_lit l));
          Buffer.add_char buf ' ')
        roots;
      Buffer.add_char buf ']')
    groups;
  Buffer.contents buf

type cnf_map = { var_of_node : int array; solver : Sat.t }

let cnf_lit m l =
  let v = m.var_of_node.(node_of l) in
  if v = 0 then invalid_arg "Aig.cnf_lit: node not encoded";
  if is_complement l then -v else v

let to_cnf ?solver g ~roots =
  let solver = match solver with Some s -> s | None -> Sat.create () in
  let var_of_node = Array.make (node_count g) 0 in
  (* mark cones *)
  let rec mark n =
    if var_of_node.(n) = 0 then begin
      var_of_node.(n) <- Sat.new_var solver;
      if n > 0 && not (is_input_node g n) then begin
        let f0, f1 = fanins g n in
        mark (node_of f0);
        mark (node_of f1)
      end
    end
  in
  List.iter (fun l -> mark (node_of l)) roots;
  let m = { var_of_node; solver } in
  (* constant node, if referenced *)
  if var_of_node.(0) <> 0 then Sat.add_clause solver [ -var_of_node.(0) ];
  for n = 1 to node_count g - 1 do
    if var_of_node.(n) <> 0 && not (is_input_node g n) then begin
      let f0, f1 = fanins g n in
      let ln = var_of_node.(n) in
      let l0 = cnf_lit m f0 and l1 = cnf_lit m f1 in
      Sat.add_clause solver [ -ln; l0 ];
      Sat.add_clause solver [ -ln; l1 ];
      Sat.add_clause solver [ ln; -l0; -l1 ]
    end
  done;
  m

let apply_fn g fn ins =
  match (fn : Circuit.gate_fn) with
  | Const b -> if b then lit_true else lit_false
  | Buf -> ins.(0)
  | Not -> neg ins.(0)
  | And -> Array.fold_left (and_ g) lit_true ins
  | Nand -> neg (Array.fold_left (and_ g) lit_true ins)
  | Or -> Array.fold_left (or_ g) lit_false ins
  | Nor -> neg (Array.fold_left (or_ g) lit_false ins)
  | Xor -> Array.fold_left (xor_ g) lit_false ins
  | Xnor -> neg (Array.fold_left (xor_ g) lit_false ins)
  | Mux -> mux g ins.(0) ins.(1) ins.(2)

type env = { of_signal : lit array }

let of_circuit_comb g c ~source =
  let n = Circuit.signal_count c in
  let of_signal = Array.make n (-1) in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input | Latch _ -> of_signal.(s) <- source s
    | Undriven | Gate _ -> ()
  done;
  let lit_of s =
    let l = of_signal.(s) in
    assert (l >= 0);
    l
  in
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) -> of_signal.(s) <- apply_fn g fn (Array.map lit_of fs)
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  { of_signal }
