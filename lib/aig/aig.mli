(** Structurally hashed and-inverter graphs.

    The combinational workhorse behind the equivalence checker: circuits are
    compiled into a shared AIG, simulated 64 assignments at a time, and
    exported to CNF for SAT queries.

    Literals pack a node id and a complement bit: [lit = 2*node + compl].
    Node 0 is the constant false, so literal 0 is false and literal 1 is
    true. *)

type t
(** AIG manager. *)

type lit = int

val create : unit -> t

val lit_false : lit
val lit_true : lit

val input : t -> lit
(** A fresh primary-input node (positive literal). *)

val num_inputs : t -> int

val input_lit : t -> int -> lit
(** [input_lit g i] is the positive literal of the [i]-th input (creation
    order). *)

val neg : lit -> lit
val is_complement : lit -> bool
val node_of : lit -> int

val and_ : t -> lit -> lit -> lit
(** Hash-consed conjunction with constant and unit simplification. *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux : t -> lit -> lit -> lit -> lit
(** [mux g s t e] is [if s then t else e]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

val node_count : t -> int
(** Number of nodes including the constant and inputs. *)

val and_count : t -> int

val is_input_node : t -> int -> bool

val fanins : t -> int -> lit * lit
(** Fanins of an AND node.  @raise Invalid_argument for inputs/constant. *)

val level : t -> int -> int
(** Depth of a node: inputs at 0, an AND at [1 + max fanin levels]. *)

(** {1 Simulation} *)

val simulate : t -> int64 array -> int64 array
(** [simulate g in_words] computes 64 parallel evaluations.  [in_words]
    gives one word per input (creation order); the result has one word per
    node.  Read a literal's value with {!sim_lit}. *)

val sim_lit : int64 array -> lit -> int64
(** Interprets a node-indexed simulation vector at a literal (applies the
    complement). *)

val eval : t -> bool array -> lit -> bool
(** Single-pattern reference evaluation. *)

val cone_nodes : t -> lit list -> bool array
(** [cone_nodes g roots] marks every node (constant, input, AND) in the
    transitive fanin of [roots], including the root nodes themselves. *)

val cone_inputs : t -> lit list list -> int list
(** Input {e node ids} of the cones of the root-literal groups, in
    first-visit DFS order — the same traversal order as
    {!cone_signature}, so the k-th element corresponds to the k-th input
    mentioned by the signature.  This is what lets a cached
    counterexample, stored by canonical input position, be replayed on a
    different but structurally identical cone. *)

type extraction = {
  sub : t;  (** the extracted sub-AIG *)
  map : lit array;  (** parent node id -> sub literal ([-1] outside cone) *)
  sub_inputs : int array;  (** sub input index -> parent input index *)
}

val extract : t -> roots:lit list -> extraction
(** Copies the cones of [roots] into a fresh AIG (nodes in parent id
    order, so the copy is also structurally hashed and topologically
    ordered).  Translate a parent literal [l] into the sub-AIG with
    [map.(node_of l) lxor (l land 1)]. *)

val cone_signature : t -> input_label:(int -> string) -> lit list list -> string
(** Canonical structural signature of the cones of the given root-literal
    groups.  Nodes are renumbered in first-visit (DFS, fanin-before-node)
    order starting from the roots, so the signature is invariant under the
    creation order of nodes outside the cones; input nodes are rendered
    through [input_label] (which receives the node id).  Two calls return
    the same string iff the root groups denote structurally identical
    cones over identically labelled inputs — the key used by the
    equivalence checker's result cache. *)

(** {1 CNF export} *)

type cnf_map = { var_of_node : int array; solver : Sat.t }

val to_cnf : ?solver:Sat.t -> t -> roots:lit list -> cnf_map
(** Tseitin-encodes the cones of [roots] into a SAT solver (a fresh one
    unless [solver] is given).  Every node in the cones gets a SAT
    variable. *)

val cnf_lit : cnf_map -> lit -> int
(** DIMACS literal for an encoded AIG literal.
    @raise Invalid_argument if the node was not encoded. *)

(** {1 Circuit conversion} *)

val apply_fn : t -> Circuit.gate_fn -> lit array -> lit
(** Translates one gate application over already-translated fanin
    literals.  Arity must match the function (checked upstream by
    {!Circuit.add_gate}). *)

type env = { of_signal : lit array }
(** Mapping from circuit signals to AIG literals. *)

val of_circuit_comb :
  t -> Circuit.t -> source:(Circuit.signal -> lit) -> env
(** Compiles the combinational part of a circuit into the AIG.  [source]
    supplies literals for primary inputs and latch outputs; gate-driven
    signals are translated.  The returned environment maps every signal
    that lies in the combinational cones. *)
