(* Cost-model-driven partition layout for the partitioned CEC.

   Two layers, with different invariants:

   - [clusters] — the verdict units.  Output pairs whose fanin cones
     overlap by at least half of the smaller cone are greedily merged, so
     shared logic is swept once.  Clustering depends only on the problem
     (never on [jobs], never on cache state), so cluster boundaries — and
     hence verdicts and cache keys — are identical at every parallelism
     level and across warm/cold runs.

   - [bins] — the scheduling units.  Clusters are packed largest-first
     into a number of bins proportional to the total *estimated cost*
     (again never to [jobs]); a pool never spawns more domains than there
     are bins.  Because bins only group work and each cluster is still
     checked (and cached) on its own, cost refinement from observed engine
     seconds can reshape the bins without perturbing any verdict or key.

   The cost estimate for a cluster is [nodes * depth]: the cone's node
   count in the shared unrolled AIG times its time-frame depth (1 + the
   deepest unroll frame among its inputs).  Node count is what simulation
   and CNF size scale with; depth is a proxy for how much replicated logic
   the unroller fed the cone, which correlates with how hard its SAT
   merges are.  When the caller can supply observed engine seconds for a
   cluster's signature (a prior verdict in the result cache or the
   persistent store), the observation replaces the estimate.

   Below [threshold] total cost the whole layout collapses to a
   monolithic check: partitioning overhead (per-cluster extraction,
   solver warm-up, pool spin-up) dwarfs the work on small problems —
   BENCH_table1.json historically showed jobs=2 as a net slowdown on
   every table-1 row for exactly this reason. *)

type cluster = {
  members : int list; (* output-pair indices, ascending *)
  nodes : int; (* distinct AIG nodes in the pair's combined cone *)
  depth : int; (* 1 + deepest unroll frame among the cone's inputs *)
  cost : float; (* estimated work, node-frames *)
}

type t = {
  monolithic : bool;
      (* total cost below threshold: check the whole problem in one
         piece, no pool *)
  total_cost : float;
  clusters : cluster list;
  bins : int list list;
      (* scheduling groups of cluster indices, heaviest bin first; empty
         when [monolithic] *)
  bin_costs : float array;
}

(* Calibrated on this repository's workloads (see DESIGN.md §11): every
   table-1 circuit that partitioning slows down measures at or below
   ~13.6k node-frames (s6669) and verifies in single-digit milliseconds —
   per-cluster setup alone costs a comparable amount — while the
   large-tier FIFOs and lane ALUs measure 15.7k node-frames and up with
   multi-second monolithic checks. *)
let default_threshold = 15_000.

(* Second guard, for problems whose total clears the threshold but whose
   clusters are confetti (s38417: 47k node-frames across 1035 clusters of
   ~46 each): every cluster pays a fixed setup cost — signature hash,
   solver and simulator warm-up — so a layout whose {e mean} cluster cost
   is under this floor is pure overhead and runs monolithically no matter
   the total. *)
let min_mean_cluster_cost = 150.

(* Target work per scheduling bin.  A quarter of the threshold: the
   smallest partitioned problem still yields ~4 bins, enough to keep a
   small pool busy, and big problems get cost-proportionally more (up to
   [max_bins]). *)
let bin_cost_target = 5_000.

let max_bins = 64

(* Two underfull bins are merged while their combined cost stays within
   this factor of the per-bin target: fewer tasks, bounded imbalance. *)
let bin_slack = 1.5

(* Node-frames per observed engine second, used to convert a prior's
   seconds back into the estimate's unit.  Rough by design — priors only
   steer bin packing, never verdicts. *)
let cost_per_second = 2e5

let estimate ~nodes ~depth = float_of_int nodes *. float_of_int (max 1 depth)

(* AIG input node -> unroll frame of the variable it carries *)
let input_delays (p : Seqprob.t) =
  let d = Hashtbl.create 64 in
  for i = 0 to Aig.num_inputs p.graph - 1 do
    Hashtbl.replace d
      (Aig.node_of (Aig.input_lit p.graph i))
      (Seqprob.Var.delay p.vars.(i))
  done;
  d

(* Greedy overlap clustering (moved here from the checker, unchanged
   semantics): a pair joins an existing group when at least half of the
   smaller cone (its own, or the group's accumulated one) is already
   covered by the other.  Chains collapse into one group — degrading
   gracefully to the monolithic check — while independent cones split. *)
type out_group = {
  mutable g_members : int list; (* reversed *)
  marks : bool array; (* accumulated cone marks over AIG nodes *)
  mutable gsize : int; (* marked node count *)
  mutable gdepth : int; (* deepest input frame seen in the group *)
}

let clusters (p : Seqprob.t) =
  let o1 = Array.of_list p.outs1 and o2 = Array.of_list p.outs2 in
  let delays = input_delays p in
  let n = Array.length o1 in
  let groups = ref [] in
  let marked m =
    let acc = ref [] in
    Array.iteri (fun s b -> if b then acc := s :: !acc) m;
    !acc
  in
  for i = 0 to n - 1 do
    let m = Aig.cone_nodes p.graph [ o1.(i); o2.(i) ] in
    (* work on the marked-node list so scoring an output against a group
       costs O(|cone|), not O(|graph|) *)
    let nodes = marked m in
    let size = List.length nodes in
    let depth =
      List.fold_left
        (fun acc s ->
          match Hashtbl.find_opt delays s with
          | Some d -> max acc d
          | None -> acc)
        0 nodes
    in
    let best = ref None in
    List.iter
      (fun g ->
        let overlap = ref 0 in
        List.iter (fun s -> if g.marks.(s) then incr overlap) nodes;
        let score = 2 * !overlap in
        if score >= min size g.gsize then
          match !best with
          | Some (bscore, _) when bscore >= score -> ()
          | _ -> best := Some (score, g))
      !groups;
    match !best with
    | Some (_, g) ->
        List.iter
          (fun s ->
            if not g.marks.(s) then begin
              g.marks.(s) <- true;
              g.gsize <- g.gsize + 1
            end)
          nodes;
        g.gdepth <- max g.gdepth depth;
        g.g_members <- i :: g.g_members
    | None ->
        groups :=
          { g_members = [ i ]; marks = m; gsize = size; gdepth = depth }
          :: !groups
  done;
  List.rev_map
    (fun g ->
      let depth = 1 + g.gdepth in
      {
        members = List.rev g.g_members;
        nodes = g.gsize;
        depth;
        cost = estimate ~nodes:g.gsize ~depth;
      })
    !groups

(* Purely structural signature of a cluster's cone pair over the shared
   graph — by canonicity of {!Aig.cone_signature} it equals the signature
   the checker computes on the extracted sub-problem, so it indexes the
   same cache and store entries. *)
let cluster_signature (p : Seqprob.t) cl =
  let o1 = Array.of_list p.outs1 and o2 = Array.of_list p.outs2 in
  let roots1 = List.map (fun i -> o1.(i)) cl.members in
  let roots2 = List.map (fun i -> o2.(i)) cl.members in
  Aig.cone_signature p.graph ~input_label:(fun _ -> "") [ roots1; roots2 ]

(* Largest-first (LPT) packing into [bins] bins; deterministic — ties keep
   cluster order (stable sort) and go to the lowest-index bin. *)
let pack ~bins cls =
  let bins = max 1 bins in
  let order =
    List.stable_sort (fun (_, a) (_, b) -> Float.compare b.cost a.cost) cls
  in
  let bin_members = Array.make bins [] in
  let bin_cost = Array.make bins 0. in
  List.iter
    (fun (idx, c) ->
      let lightest = ref 0 in
      for i = 1 to bins - 1 do
        if bin_cost.(i) < bin_cost.(!lightest) then lightest := i
      done;
      bin_members.(!lightest) <- idx :: bin_members.(!lightest);
      bin_cost.(!lightest) <- bin_cost.(!lightest) +. c.cost)
    order;
  let nonempty = ref [] in
  for i = bins - 1 downto 0 do
    if bin_members.(i) <> [] then
      nonempty := (List.sort compare bin_members.(i), bin_cost.(i)) :: !nonempty
  done;
  !nonempty

(* Merge underfull bins: repeatedly combine the two lightest while their
   sum stays within [bin_slack * bin_cost_target].  Deterministic, and
   bounded (each merge reduces the bin count). *)
let merge_slack packed =
  let by_cost = List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) in
  let rec go l =
    match by_cost l with
    | (m1, c1) :: (m2, c2) :: rest
      when c1 +. c2 <= bin_slack *. bin_cost_target ->
        go ((List.sort compare (m1 @ m2), c1 +. c2) :: rest)
    | l -> l
  in
  go packed

(* Cheap upper bound on the total cost, no clustering pass needed: every
   cluster's node set is a subset of the graph and its depth is at most
   the deepest unroll frame anywhere; the factor 2 covers node duplication
   across overlapping clusters (overlap clustering merges any pair sharing
   half the smaller cone, so duplication stays mild). *)
let quick_bound (p : Seqprob.t) =
  let maxd =
    Array.fold_left (fun a v -> max a (Seqprob.Var.delay v)) 0 p.vars
  in
  2. *. float_of_int (Aig.node_count p.graph) *. float_of_int (1 + maxd)

let compute ?(threshold = default_threshold) ?(forced = false) ?prior
    (p : Seqprob.t) =
  if (not forced) && quick_bound p < threshold then
    (* problem too small to possibly clear the threshold: monolithic
       without even paying the clustering pass ([clusters] left empty) *)
    {
      monolithic = true;
      total_cost = quick_bound p;
      clusters = [];
      bins = [];
      bin_costs = [||];
    }
  else
  let cls = clusters p in
  let base_total = List.fold_left (fun a c -> a +. c.cost) 0. cls in
  let ncl = List.length cls in
  (* The monolithic decision uses the *unrefined* estimate: priors say a
     cone's verdict will replay cheaply from the cache, but only the
     partitioned path has per-cluster keys to replay under — collapsing a
     warm problem to one monolithic check would throw those verdicts
     away.  Refined costs steer packing only. *)
  if
    (not forced)
    && (base_total < threshold
       || base_total < min_mean_cluster_cost *. float_of_int (max 1 ncl))
  then
    {
      monolithic = true;
      total_cost = base_total;
      clusters = cls;
      bins = [];
      bin_costs = [||];
    }
  else begin
    let cls =
      match prior with
      | None -> cls
      | Some f ->
          List.map
            (fun c ->
              match f ~signature:(cluster_signature p c) with
              | Some seconds ->
                  { c with cost = Float.max 1. (seconds *. cost_per_second) }
              | None -> c)
            cls
    in
    let total = List.fold_left (fun a c -> a +. c.cost) 0. cls in
    let bins =
      min (min max_bins ncl)
        (max 1 (int_of_float (Float.ceil (total /. bin_cost_target))))
    in
    let packed = merge_slack (pack ~bins (List.mapi (fun i c -> (i, c)) cls)) in
    (* heaviest bin first, so the pool starts the critical work early *)
    let packed =
      List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) packed
    in
    {
      monolithic = false;
      total_cost = total;
      clusters = cls;
      bins = List.map fst packed;
      bin_costs = Array.of_list (List.map snd packed);
    }
  end
