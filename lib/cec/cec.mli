(** Combinational equivalence checking.

    The paper reduces sequential verification to combinational verification
    and hands the result to "an in-house tool similar to [10, 12]".  This is
    that tool: three engines over latch-free netlists, optionally run in
    parallel over cone-clustered output partitions of the miter.

    Inputs of the two circuits are matched {e by name}; the variable
    universe is the union of both input sets (a missing input is a free
    variable the circuit ignores) — exactly the semantics needed for
    CBF/EDBF comparison, where the time- or event-indexed variables are
    encoded in the names.  Outputs are matched by position. *)

type counterexample = (string * bool) list
(** Assignment to (a subset of) the united primary inputs; unlisted inputs
    are [false]. *)

type verdict = Equivalent | Inequivalent of counterexample

type engine =
  | Bdd_engine  (** monolithic BDDs, shared variable per input name *)
  | Sat_engine  (** one CNF miter, one SAT call *)
  | Sweep_engine
      (** fraig-style: random simulation classes + incremental SAT merging,
          then a miter check on the swept AIG *)

type stats = {
  sat_calls : int;  (** SAT solver invocations *)
  sim_rounds : int;  (** 64-pattern random simulation rounds (sweep) *)
  partitions : int;  (** output-cone partitions checked (1 = monolithic) *)
  cache_hits : int;  (** partitions answered from the result cache *)
  bdd_seconds : float;
      (** wall-clock spent in each engine; in parallel mode these are
          summed across partitions, so they can exceed the elapsed time *)
  sat_seconds : float;
  sweep_seconds : float;
}
(** Per-check statistics.  Unlike the old [stats_last_sat_calls] global,
    a [stats] value is owned by the caller of one check: concurrent checks
    (and the partitions within one check) never share mutable state. *)

val empty_stats : stats

val stats_pp : Format.formatter -> stats -> unit

(** Structural-hash result cache.  Keyed by the canonical AIG signature of
    an output-cone pair (see {!Aig.cone_signature}); structurally identical
    cone pairs — common across the Table-1 variants of one circuit and
    across unrolling depths — are proven once.  Counterexamples are stored
    over united-input indices so a hit replays under the hitting pair's own
    input names.  Safe to share across domains and across checks. *)
module Cache : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val size : t -> int
end

val check :
  ?engine:engine ->
  ?jobs:int ->
  ?partition:bool ->
  ?cache:Cache.t ->
  Circuit.t ->
  Circuit.t ->
  verdict
(** Decides functional equivalence.  Default engine: [Sweep_engine].

    With [jobs > 1] (or [~partition:true]) the miter is split into
    output-cone partitions — each an independent check by soundness of
    output splitting.  Output pairs whose fanin cones overlap by at least
    half of the smaller cone are clustered into one partition (so shared
    logic is swept once), and clusters are packed largest-first into a
    bounded number of partitions to cap per-partition fixed costs.  The
    layout depends only on the circuits, never on [jobs].  Partitions run
    on a {!Par.Pool} of [jobs] domains with early cancellation once a
    counterexample is found.  The verdict is deterministic: the reported
    counterexample comes from the lowest-index failing partition,
    regardless of scheduling.  Each partition builds its own AIG and SAT
    solver; a fresh {!Cache} is used per check unless [cache] supplies a
    shared one.

    @raise Invalid_argument if either circuit contains latches or the output
    counts differ. *)

val check_with_stats :
  ?engine:engine ->
  ?jobs:int ->
  ?partition:bool ->
  ?cache:Cache.t ->
  Circuit.t ->
  Circuit.t ->
  verdict * stats
(** Like {!check}, also returning the per-check statistics. *)

val counterexample_is_valid :
  Circuit.t -> Circuit.t -> counterexample -> bool
(** Replays a counterexample on both circuits and confirms some output pair
    differs. *)
