(** Combinational equivalence checking.

    The paper reduces sequential verification to combinational verification
    and hands the result to "an in-house tool similar to [10, 12]".  This is
    that tool: three engines over the {!Seqprob.t} problem IR — one shared
    structurally-hashed AIG holding both sides' output cones over a typed
    variable universe — optionally run in parallel over cone-clustered
    output partitions of the miter.

    {!check_problem} is the native entry point; the unrollers ({!Cbf},
    {!Edbf}) build problems directly.  The [Circuit.t] entry points are
    thin wrappers that wrap two combinational netlists into a problem
    first (inputs matched {e by name} — each name becomes the variable
    [Seqprob.Var.time name 0], and the universe is the union of both input
    sets; outputs are matched by position). *)

type counterexample = (Seqprob.Var.t * bool) list
(** Assignment to (a subset of) the problem's variables; unlisted variables
    are [false]. *)

type verdict =
  | Equivalent
  | Inequivalent of counterexample
  | Undecided of string
      (** the check gave up within its resource {!limits}; the string is a
          human-readable reason ("SAT conflict budget", "BDD node ceiling",
          "partition deadline", "cancelled", prefixed by the partition) *)

type engine =
  | Bdd_engine  (** monolithic BDDs over the AIG, one variable per input *)
  | Sat_engine  (** one CNF miter, one SAT call *)
  | Sweep_engine
      (** fraig-style: random simulation classes + incremental SAT merging,
          then a miter check on the swept AIG *)

val engine_name : engine -> string
(** ["bdd"] / ["sat"] / ["sweep"] — the CLI/wire spelling. *)

type limits = {
  sat_conflicts : int option;
      (** base conflict budget per SAT call; the escalation ladder's SAT
          rung multiplies it *)
  bdd_nodes : int option;
      (** approximate live-node ceiling for the BDD engine *)
  seconds : float option;
      (** wall-clock deadline per partition, covering every escalation
          rung spent on it *)
  escalate : bool;
      (** when a budget blows, climb the engine ladder (bigger-budget SAT,
          then BDD) before answering [Undecided] *)
}
(** Resource limits for one check.  [None] caps are unlimited. *)

val no_limits : limits
(** No caps, escalation on — engines run to completion (the pre-budget
    behavior); only cross-partition cancellation can interrupt them. *)

val default_limits : limits
(** Generous defaults (50k conflicts per SAT call, 2M BDD nodes, no
    deadline, escalation on) that stop runaway solves without affecting
    easy problems. *)

type stats = {
  sat_calls : int;  (** SAT solver invocations *)
  sim_rounds : int;  (** 64-pattern random simulation rounds (sweep) *)
  partitions : int;
      (** output-cone clusters checked — the {!Layout}'s verdict units
          (1 = monolithic) *)
  cache_hits : int;
      (** partitions answered from the in-memory result cache *)
  store_hits : int;
      (** partitions answered from the persistent verdict store (disjoint
          from [cache_hits]: a verdict promoted into memory counts here
          once, then as a cache hit on repeats) *)
  store_writes : int;
      (** verdicts appended write-through to the persistent store *)
  cache_evictions : int;
      (** entries dropped from the in-memory cache by its capacity bound *)
  conflicts : int;  (** SAT conflicts spent, summed over all calls *)
  budget_hits : int;
      (** engine runs stopped by a blown conflict budget or node ceiling *)
  deadline_hits : int;
      (** engine runs stopped by a partition deadline or cancellation *)
  escalations : int;  (** ladder rungs climbed after a blown budget *)
  undecided : int;
      (** partitions left undecided (includes partitions abandoned because
          a sibling already found a counterexample) *)
  elapsed_seconds : float;
      (** true wall clock of the whole check (monotonic), including
          partitioning and cache probing *)
  partition_seconds : float;
      (** wall clock spent computing the partition layout (output
          clustering, cost estimation, bin packing and sub-AIG
          extraction); [0.] for an explicitly monolithic check *)
  bdd_seconds : float;
      (** CPU-seconds spent in each engine, summed across clusters.  The
          three buckets are {e disjoint}: time inside [Sat.solve] is
          always SAT time ([sat_seconds]), wherever the call came from —
          the sweep engine's merge queries included — and each engine's
          bucket gets the remainder of its runs' wall time.  In parallel
          mode clusters overlap in time, so the sums can legitimately
          {e exceed} [elapsed_seconds] — compare against
          [elapsed_seconds] for the wall-clock story *)
  sat_seconds : float;
  sweep_seconds : float;
}
(** Per-check statistics.  A [stats] value is owned by the caller of one
    check: concurrent checks (and the partitions within one check) never
    share mutable state.  All [*_seconds] fields are derived from the
    {!Obs} span instrumentation (monotonic clock) and are measured whether
    or not tracing is enabled; {!stats_pp} prints both the wall clock and
    the per-engine CPU-second sums. *)

val empty_stats : stats

val stats_pp : Format.formatter -> stats -> unit
(** One-line rendering printing {e every} field: counters, the elapsed
    wall clock (with the partitioning share) and the per-engine
    CPU-seconds (labelled as such, since they can exceed the wall clock
    in parallel runs). *)

(** Structural-hash result cache.  Keyed by the purely structural canonical
    AIG signature of an output-cone pair (see {!Aig.cone_signature});
    structurally identical cone pairs — common across the Table-1 variants
    of one circuit, across unrolling depths, and under renamed inputs —
    are proven once.  Counterexamples are stored over canonical input
    positions (first-visit DFS order) so a hit replays under the hitting
    problem's own typed variables.  Safe to share across domains and
    across checks.

    The in-memory index is {e bounded}: growing past [capacity] triggers a
    batch eviction of the least-recently-hit entries down to 3/4 of
    capacity (counted in {!type-stats}[.cache_evictions]), so arbitrarily
    long runs hold at most [capacity] verdicts in memory.  With a [store]
    backing, misses fall through to the persistent store (a disk hit is
    promoted back into memory) and new verdicts are written through —
    evicted entries are therefore recoverable, and verdicts survive the
    process.  [Undecided] answers are never cached or persisted. *)
module Cache : sig
  type t

  val default_capacity : int
  (** 65536 entries. *)

  val create : ?capacity:int -> ?store:Store.t -> unit -> t
  (** [create ()] is unbacked at the default capacity; [~store] makes the
      cache write-through to (and fall back on) a persistent store. *)

  val clear : t -> unit
  (** Drops the in-memory index only; a backing store is untouched. *)

  val size : t -> int

  val store : t -> Store.t option

  val observed_cost : t -> string -> float option
  (** Engine seconds observed when the cone pair with this signature was
      last checked (the maximum over observations), if any — the
      {!Layout}'s cost prior.  Observations are kept even for verdicts
      the cache cannot store ([Undecided]). *)
end

module Layout = Layout
(** Cost-model-driven partition layout: overlap clustering into
    verdict-unit {e clusters}, a [nodes × depth] cone cost estimate
    refinable by observed engine seconds, a monolithic fast path below a
    total-cost threshold, and cost-balanced packing of clusters into
    scheduling {e bins}.  See {!Layout.compute}. *)

val check_problem :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?partition:bool ->
  ?limits:limits ->
  ?cache:Cache.t ->
  ?store:Store.t ->
  Seqprob.t ->
  verdict
(** Decides equivalence of the problem's two output-cone groups.  Default
    engine: [Sweep_engine]; default limits: {!no_limits}.

    With [jobs > 1] the split is {e adaptive}, driven by the {!Layout}
    cost model: below a total-cost threshold the whole miter is checked
    in one piece (no layout, no {!Par.Pool} spin-up — parallelism costs
    nothing on small problems), and above it the miter is split into
    output-cone {e clusters} — each an independent check by soundness of
    output splitting.  Output pairs whose fanin cones (in the shared AIG)
    overlap by at least half of the smaller cone are clustered together
    (so shared logic is swept once); each cluster is checked — and cached
    — on its own, and clusters are packed by estimated cost (refined by
    observed engine seconds when the cache or store has seen a cluster's
    cone before) into cost-proportional scheduling {e bins}, the unit of
    pool work.  Cluster boundaries depend only on the problem — never on
    [jobs], never on cache state — so verdicts and cache keys are
    identical at every parallelism level; bin shapes may vary with cost
    priors but never influence a verdict.  [~partition:true] forces the
    clustered path regardless of cost; [~partition:false] forces the
    monolithic check.  Clusters are carved out of the problem graph with
    {!Aig.extract} — no netlist round-trip — and bins run on a lazily
    spawned {!Par.Pool} of at most [min jobs bins] domains.

    {b Shared pools.}  [pool] runs the partitioned search on a
    caller-owned pool instead of a per-check one: the pool is {e not}
    shut down afterwards, and — because {!Par.Pool} is safe under
    concurrent submitters — many simultaneous checks (the verification
    server's concurrent requests) may share one pool, whose lazy
    demand-driven sizing never spawns more domains than outstanding bins
    warrant.  When [pool] is given and [jobs] is not, the parallelism
    level defaults to the pool's [jobs]; an explicit [jobs] below that
    narrows this one check (and [~jobs:1] keeps it monolithic).

    {b Budgets.}  With [limits] set, each cluster checks under its own
    wall-clock deadline and each SAT call / BDD build under its resource
    cap; a blown budget climbs the escalation ladder (requested engine at
    base budget → SAT at a larger conflict budget → BDD under the node
    ceiling) before giving up.  A partition that still cannot be decided
    makes the overall verdict [Undecided] — unless some other partition
    finds a counterexample, which always wins.  Budgets never flip a
    verdict: anything short of a full proof or a concrete counterexample
    is reported as [Undecided], never as [Equivalent].

    {b Cancellation.}  The moment any partition finds a counterexample a
    shared flag is set and every in-flight sibling solver stops mid-solve.
    The {e verdict} is still deterministic, but under parallel cancellation
    the reported counterexample may come from any failing partition (at
    [jobs = 1] partitions run in order, so it is the lowest-index one).
    A fresh {!Cache} is used per check unless [cache] supplies a shared
    one; [Undecided] answers are never cached.  [store] is shorthand for
    [~cache:(Cache.create ~store ())] — a persistent verdict store backing
    a fresh per-check cache — and is ignored when [cache] is given (a
    caller-provided cache decides its own backing).

    @raise Invalid_argument if the two output groups differ in length
    (impossible for problems built by {!Seqprob.problem}). *)

val check_problem_with_stats :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?partition:bool ->
  ?limits:limits ->
  ?cache:Cache.t ->
  ?store:Store.t ->
  Seqprob.t ->
  verdict * stats
(** Like {!check_problem}, also returning the per-check statistics. *)

val check :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?partition:bool ->
  ?limits:limits ->
  ?cache:Cache.t ->
  ?store:Store.t ->
  Circuit.t ->
  Circuit.t ->
  verdict
(** [Circuit.t] wrapper over {!check_problem}: wraps the two circuits via
    {!Seqprob.of_circuits} (inputs united by name at time 0).
    @raise Invalid_argument if either circuit contains latches or the
    output counts differ. *)

val check_with_stats :
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?partition:bool ->
  ?limits:limits ->
  ?cache:Cache.t ->
  ?store:Store.t ->
  Circuit.t ->
  Circuit.t ->
  verdict * stats
(** Like {!check}, also returning the per-check statistics. *)

val counterexample_is_valid :
  Circuit.t -> Circuit.t -> counterexample -> bool
(** Replays a counterexample on both circuits and confirms some output pair
    differs.  Signals are matched by full variable identity: a signal named
    ["x"] reads the value of variable [x@0], and a signal named ["x@1"] (an
    unrolled time frame) reads frame 1 of [x] — distinct frames of one
    input never collide.  For problem-level replay use
    {!Seqprob.cex_is_valid}. *)
