(** Cost-model-driven partition layout for the partitioned CEC.

    Splits a {!Seqprob.t} into overlap-clustered output-cone {e clusters}
    (the verdict and cache-key units — a pure function of the problem,
    independent of [jobs] and of cache state) and packs the clusters by
    estimated cost into scheduling {e bins} (what the domain pool actually
    runs; also jobs-independent, but reshaped freely by cost priors since
    bins never influence a verdict or a cache key).  Below a total-cost
    threshold the layout collapses to a monolithic check so small problems
    never pay partitioning or pool overhead.  Re-exported as
    [Cec.Layout]. *)

type cluster = {
  members : int list;  (** output-pair indices, ascending *)
  nodes : int;  (** distinct AIG nodes in the pair's combined fanin cone *)
  depth : int;  (** 1 + deepest unroll frame among the cone's inputs *)
  cost : float;  (** estimated work in node-frames, [>= nodes] *)
}

type t = {
  monolithic : bool;
      (** total estimated cost under the threshold (or mean cluster cost
          under the floor): check the whole problem in one piece, spin up
          no pool *)
  total_cost : float;
      (** sum of cluster costs; for a quick-rejected monolithic layout, a
          cheap upper bound computed without clustering *)
  clusters : cluster list;
      (** empty for a quick-rejected monolithic layout (the problem was
          too small to even pay the clustering pass) *)
  bins : int list list;
      (** scheduling groups of indices into [clusters], heaviest first;
          [[]] when [monolithic] *)
  bin_costs : float array;
}

val default_threshold : float
(** 15k node-frames — above every table-1 circuit that partitioning slows
    down (milliseconds of engine work, where per-cluster setup is pure
    overhead), below every large-tier workload. *)

val min_mean_cluster_cost : float
(** Mean-cluster-cost floor (150 node-frames): a problem whose total
    clears the threshold but whose clusters are confetti — each paying
    fixed signature/solver/simulator setup for almost no work — still
    runs monolithically. *)

val bin_cost_target : float
(** Aimed-for work per scheduling bin (a quarter of the threshold), so
    bin count grows with problem cost up to {!max_bins}. *)

val max_bins : int

val estimate : nodes:int -> depth:int -> float
(** [nodes * max 1 depth] — monotone in both arguments. *)

val clusters : Seqprob.t -> cluster list
(** Greedy overlap clustering of the problem's output pairs, with each
    cluster's base cost estimate filled in.  Depends only on the
    problem. *)

val cluster_signature : Seqprob.t -> cluster -> string
(** The purely structural cone-pair signature of a cluster, computed on
    the shared graph; equal to the signature of the extracted
    sub-problem, so it indexes the same {!Cec.Cache} / {!Store} entries. *)

val compute :
  ?threshold:float ->
  ?forced:bool ->
  ?prior:(signature:string -> float option) ->
  Seqprob.t ->
  t
(** Full layout: cluster, estimate, threshold-check, pack.  The layout is
    monolithic when the total base estimate is under [threshold] {e or}
    the mean cluster cost is under {!min_mean_cluster_cost}.
    [~forced:true] disables the monolithic fast path (the
    [~partition:true] contract).
    [prior] maps a cluster's signature to observed engine seconds from an
    earlier check (result cache / persistent store); a prior replaces that
    cluster's estimate for {e packing} purposes only — the monolithic
    decision uses the unrefined estimate so warm runs keep the partition
    boundaries (and so the cache keys) of their cold run. *)
