type counterexample = (Seqprob.Var.t * bool) list

type verdict =
  | Equivalent
  | Inequivalent of counterexample
  | Undecided of string

type engine = Bdd_engine | Sat_engine | Sweep_engine

type limits = {
  sat_conflicts : int option; (* base conflict budget per SAT call *)
  bdd_nodes : int option; (* live-node ceiling for the BDD engine *)
  seconds : float option; (* wall-clock deadline per partition *)
  escalate : bool; (* retry a blown budget up the engine ladder *)
}

let no_limits =
  { sat_conflicts = None; bdd_nodes = None; seconds = None; escalate = true }

let default_limits =
  {
    sat_conflicts = Some 50_000;
    bdd_nodes = Some 2_000_000;
    seconds = None;
    escalate = true;
  }

type stats = {
  sat_calls : int;
  sim_rounds : int;
  partitions : int;
  cache_hits : int;
  store_hits : int;
  store_writes : int;
  cache_evictions : int;
  conflicts : int;
  budget_hits : int;
  deadline_hits : int;
  escalations : int;
  undecided : int;
  elapsed_seconds : float;
  partition_seconds : float;
  bdd_seconds : float;
  sat_seconds : float;
  sweep_seconds : float;
}

let empty_stats =
  {
    sat_calls = 0;
    sim_rounds = 0;
    partitions = 0;
    cache_hits = 0;
    store_hits = 0;
    store_writes = 0;
    cache_evictions = 0;
    conflicts = 0;
    budget_hits = 0;
    deadline_hits = 0;
    escalations = 0;
    undecided = 0;
    elapsed_seconds = 0.;
    partition_seconds = 0.;
    bdd_seconds = 0.;
    sat_seconds = 0.;
    sweep_seconds = 0.;
  }

let stats_pp ppf s =
  Format.fprintf ppf
    "%d partitions, %d SAT calls, %d sim rounds, %d cache hits, %d store hits, %d store writes, %d cache evictions, %d conflicts, %d budget hits, %d deadline hits, %d escalations, %d undecided, elapsed %.3fs (partitioning %.3fs), engine CPU-seconds bdd %.3f sat %.3f sweep %.3f"
    s.partitions s.sat_calls s.sim_rounds s.cache_hits s.store_hits
    s.store_writes s.cache_evictions s.conflicts s.budget_hits s.deadline_hits
    s.escalations s.undecided s.elapsed_seconds s.partition_seconds
    s.bdd_seconds s.sat_seconds s.sweep_seconds

(* Per-partition mutable counters.  Each partition task owns exactly one of
   these, so no synchronization is needed; they are merged after the pool
   joins (the join provides the happens-before edge). *)
type counters = {
  mutable k_sat_calls : int;
  mutable k_sim_rounds : int;
  mutable k_cache_hits : int;
  mutable k_store_hits : int;
  mutable k_store_writes : int;
  mutable k_cache_evictions : int;
  mutable k_conflicts : int;
  mutable k_budget_hits : int;
  mutable k_deadline_hits : int;
  mutable k_escalations : int;
  mutable k_undecided : int;
  mutable k_bdd_s : float;
  mutable k_sat_s : float;
  mutable k_sweep_s : float;
}

let fresh_counters () =
  {
    k_sat_calls = 0;
    k_sim_rounds = 0;
    k_cache_hits = 0;
    k_store_hits = 0;
    k_store_writes = 0;
    k_cache_evictions = 0;
    k_conflicts = 0;
    k_budget_hits = 0;
    k_deadline_hits = 0;
    k_escalations = 0;
    k_undecided = 0;
    k_bdd_s = 0.;
    k_sat_s = 0.;
    k_sweep_s = 0.;
  }

let stats_of_counters ~partitions cts =
  Array.fold_left
    (fun acc k ->
      {
        acc with
        sat_calls = acc.sat_calls + k.k_sat_calls;
        sim_rounds = acc.sim_rounds + k.k_sim_rounds;
        cache_hits = acc.cache_hits + k.k_cache_hits;
        store_hits = acc.store_hits + k.k_store_hits;
        store_writes = acc.store_writes + k.k_store_writes;
        cache_evictions = acc.cache_evictions + k.k_cache_evictions;
        conflicts = acc.conflicts + k.k_conflicts;
        budget_hits = acc.budget_hits + k.k_budget_hits;
        deadline_hits = acc.deadline_hits + k.k_deadline_hits;
        escalations = acc.escalations + k.k_escalations;
        undecided = acc.undecided + k.k_undecided;
        bdd_seconds = acc.bdd_seconds +. k.k_bdd_s;
        sat_seconds = acc.sat_seconds +. k.k_sat_s;
        sweep_seconds = acc.sweep_seconds +. k.k_sweep_s;
      })
    { empty_stats with partitions }
    cts

(* Monotonic: NTP steps must neither fire per-partition deadlines early
   nor skew the reported engine seconds. *)
let now () = Obs.Clock.now ()

(* Budget/deadline exhaustion counters double as trace instants, so a blown
   budget is attributed to the partition span it happened in. *)
let note_budget_hit ct reason =
  ct.k_budget_hits <- ct.k_budget_hits + 1;
  Obs.instant "cec.budget_hit" ~attrs:[ ("reason", Obs.String reason) ]

let note_deadline_hit ct reason =
  ct.k_deadline_hits <- ct.k_deadline_hits + 1;
  Obs.instant "cec.deadline_hit" ~attrs:[ ("reason", Obs.String reason) ]

(* Budget context for one partition: the limits, an absolute wall-clock
   deadline (fixed when the partition starts, so escalation rungs share it),
   and the cross-partition cancel flag. *)
type bctx = {
  lim : limits;
  deadline : float option;
  cancel : bool Atomic.t option;
}

let bctx_of_limits lim =
  {
    lim;
    deadline = Option.map (fun s -> now () +. s) lim.seconds;
    cancel = None;
  }

let cancelled b = match b.cancel with Some c -> Atomic.get c | None -> false

let expired b =
  match b.deadline with Some d -> now () > d | None -> false

(* ---------- result cache ---------- *)

module Cache = struct
  (* Keys are purely structural cone signatures; counterexamples are stored
     over *canonical input positions* (first-visit DFS order, the order of
     Aig.cone_inputs), so a hit on a structurally identical cone pair with
     different variables — the same cone at another unrolling depth, or
     under renamed inputs — replays under the hitting problem's own
     variables. *)
  type entry = E_equivalent | E_inequivalent of (int * bool) list

  type slot = { entry : entry; mutable stamp : int }

  (* Bounded in-memory index, optionally backed by a persistent Store.
     When over capacity a batch eviction drops the least-recently-hit
     quarter-plus of entries (down to 3/4 capacity), so long Flow runs pay
     an amortized O(1) per insertion instead of growing without limit.
     Evicted verdicts that were store-backed are not lost: the store keeps
     them (under its own, larger bound) and a later miss re-promotes. *)
  type t = {
    tbl : (string, slot) Hashtbl.t;
    costs : (string, float) Hashtbl.t;
        (* observed engine seconds per signature, feeding the layout's
           cost prior; best-effort (reset wholesale when over capacity) *)
    m : Mutex.t;
    capacity : int;
    store : Store.t option;
    mutable gen : int; (* LRU logical clock *)
  }

  let default_capacity = 65_536

  let create ?(capacity = default_capacity) ?store () =
    {
      tbl = Hashtbl.create 256;
      costs = Hashtbl.create 256;
      m = Mutex.create ();
      capacity = max 1 capacity;
      store;
      gen = 0;
    }

  let store t = t.store

  let clear t =
    Mutex.lock t.m;
    Hashtbl.reset t.tbl;
    Mutex.unlock t.m

  let size t =
    Mutex.lock t.m;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.m;
    n

  (* A verdict we could serve without engine work — in memory or in the
     backing store.  Store.mem is an in-memory index probe, no I/O. *)
  let mem t key =
    Mutex.lock t.m;
    let hit = Hashtbl.mem t.tbl key in
    Mutex.unlock t.m;
    hit || (match t.store with Some st -> Store.mem st key | None -> false)

  let note_cost t key seconds =
    Mutex.lock t.m;
    if Hashtbl.length t.costs >= t.capacity then Hashtbl.reset t.costs;
    (match Hashtbl.find_opt t.costs key with
    | Some s when s >= seconds -> () (* keep the worst observation *)
    | _ -> Hashtbl.replace t.costs key seconds);
    Mutex.unlock t.m

  let observed_cost t key =
    Mutex.lock t.m;
    let c = Hashtbl.find_opt t.costs key in
    Mutex.unlock t.m;
    c

  let entry_of_store = function
    | Store.Equivalent -> E_equivalent
    | Store.Inequivalent cex -> E_inequivalent cex

  let store_of_entry = function
    | E_equivalent -> Store.Equivalent
    | E_inequivalent cex -> Store.Inequivalent cex

  (* m held.  Batch-evict oldest-stamp entries down to 3/4 capacity;
     returns the number dropped. *)
  let evict_locked t =
    let n = Hashtbl.length t.tbl in
    if n <= t.capacity then 0
    else begin
      let arr = Array.make n ("", 0) in
      let i = ref 0 in
      Hashtbl.iter
        (fun k s ->
          arr.(!i) <- (k, s.stamp);
          incr i)
        t.tbl;
      Array.sort (fun (_, a) (_, b) -> compare (a : int) b) arr;
      let drop = n - max 1 (t.capacity * 3 / 4) in
      for j = 0 to drop - 1 do
        Hashtbl.remove t.tbl (fst arr.(j))
      done;
      drop
    end

  (* where a hit was served from — callers account the two differently *)
  type hit = Memory of entry | Disk of entry

  (* Lookup, memory first, then the backing store; a disk hit is promoted
     into memory so repeats stay off the store's mutex.  Also returns how
     many entries the promotion evicted. *)
  let find_hit t key =
    Mutex.lock t.m;
    match Hashtbl.find_opt t.tbl key with
    | Some s ->
        s.stamp <- t.gen;
        t.gen <- t.gen + 1;
        let e = s.entry in
        Mutex.unlock t.m;
        (Some (Memory e), 0)
    | None -> (
        Mutex.unlock t.m;
        match t.store with
        | None -> (None, 0)
        | Some st -> (
            match Store.find st key with
            | None -> (None, 0)
            | Some v ->
                let e = entry_of_store v in
                Mutex.lock t.m;
                let evicted =
                  if Hashtbl.mem t.tbl key then 0
                  else begin
                    Hashtbl.add t.tbl key { entry = e; stamp = t.gen };
                    t.gen <- t.gen + 1;
                    evict_locked t
                  end
                in
                Mutex.unlock t.m;
                (Some (Disk e), evicted)))

  (* Insert if absent, write-through to the store (outside the cache
     mutex: Store.add dedupes on its own).  Returns (records appended to
     the store, entries evicted). *)
  let add_entry t key entry =
    Mutex.lock t.m;
    let fresh = not (Hashtbl.mem t.tbl key) in
    let evicted =
      if fresh then begin
        Hashtbl.add t.tbl key { entry; stamp = t.gen };
        t.gen <- t.gen + 1;
        evict_locked t
      end
      else 0
    in
    Mutex.unlock t.m;
    let wrote =
      fresh
      &&
      match t.store with
      | Some st -> Store.add st key (store_of_entry entry)
      | None -> false
    in
    ((if wrote then 1 else 0), evicted)
end

let require_comb c =
  if Circuit.latch_count c > 0 then
    invalid_arg
      (Printf.sprintf "Cec: circuit %s is not combinational" (Circuit.name c))

let input_index_tbl g =
  let t = Hashtbl.create 64 in
  for i = 0 to Aig.num_inputs g - 1 do
    Hashtbl.replace t (Aig.node_of (Aig.input_lit g i)) i
  done;
  t

(* ---------- BDD engine ---------- *)

exception Bdd_give_up of string

let check_bdd ct b (p : Seqprob.t) =
  let g = p.graph in
  let man = Bdd.man () in
  (* BDD variable = AIG input index; the problem's vars array names it *)
  let input_index = input_index_tbl g in
  let node_bdd = Hashtbl.create 256 in
  let steps = ref 0 in
  (* The ceiling is approximate: it is polled between AIG-node builds, so a
     single wide conjunction may overshoot before being caught. *)
  let check_budget () =
    (match b.lim.bdd_nodes with
    | Some ceiling when Bdd.node_count man > ceiling ->
        note_budget_hit ct "BDD node ceiling";
        raise (Bdd_give_up "BDD node ceiling")
    | _ -> ());
    if cancelled b then begin
      note_deadline_hit ct "cancelled";
      raise (Bdd_give_up "cancelled")
    end;
    incr steps;
    if !steps land 255 = 0 && expired b then begin
      note_deadline_hit ct "partition deadline";
      raise (Bdd_give_up "partition deadline")
    end
  in
  let rec go n =
    if n = 0 then Bdd.zero man
    else
      match Hashtbl.find_opt node_bdd n with
      | Some f -> f
      | None ->
          check_budget ();
          let f =
            if Aig.is_input_node g n then
              Bdd.var man (Hashtbl.find input_index n)
            else
              let f0, f1 = Aig.fanins g n in
              Bdd.and_ man (lit_bdd f0) (lit_bdd f1)
          in
          Hashtbl.replace node_bdd n f;
          f
  and lit_bdd l =
    let f = go (Aig.node_of l) in
    if Aig.is_complement l then Bdd.not_ man f else f
  in
  let rec cmp o1 o2 =
    match (o1, o2) with
    | [], [] -> Equivalent
    | f :: r1, h :: r2 ->
        let bf = lit_bdd f and bh = lit_bdd h in
        if Bdd.equal bf bh then cmp r1 r2
        else begin
          match Bdd.any_sat man (Bdd.xor_ man bf bh) with
          | None -> assert false
          | Some assignment ->
              Inequivalent
                (List.map (fun (v, b) -> (p.vars.(v), b)) assignment)
        end
    | _ -> invalid_arg "Cec: output counts differ"
  in
  try cmp p.outs1 p.outs2 with Bdd_give_up reason -> Undecided reason

(* Incremental Tseitin encoder over a (possibly growing) AIG. *)
module Encoder = struct
  type t = {
    g : Aig.t;
    solver : Sat.t;
    vars : int Vgraph.Vec.t; (* node -> sat var, 0 = unencoded *)
  }

  let create g = { g; solver = Sat.create (); vars = Vgraph.Vec.create ~dummy:0 () }

  let var_of e n =
    while Vgraph.Vec.length e.vars <= n do
      ignore (Vgraph.Vec.push e.vars 0)
    done;
    Vgraph.Vec.get e.vars n

  let rec encode_node e n =
    let v = var_of e n in
    if v <> 0 then v
    else begin
      let v = Sat.new_var e.solver in
      Vgraph.Vec.set e.vars n v;
      if n = 0 then Sat.add_clause e.solver [ -v ]
      else if not (Aig.is_input_node e.g n) then begin
        let f0, f1 = Aig.fanins e.g n in
        let l0 = encode_lit e f0 and l1 = encode_lit e f1 in
        Sat.add_clause e.solver [ -v; l0 ];
        Sat.add_clause e.solver [ -v; l1 ];
        Sat.add_clause e.solver [ v; -l0; -l1 ]
      end;
      v
    end

  and encode_lit e l =
    let v = encode_node e (Aig.node_of l) in
    if Aig.is_complement l then -v else v
end

(* One budgeted SAT call.  [factor] scales the base conflict budget (the
   escalation ladder retries with a larger factor); the wall-clock slice is
   whatever remains until the partition deadline. *)
let sat_solve_counted ct b ?(factor = 1) solver ?assumptions () =
  ct.k_sat_calls <- ct.k_sat_calls + 1;
  let c0, _, _ = Sat.stats solver in
  let budget =
    let conflicts = Option.map (fun n -> n * factor) b.lim.sat_conflicts in
    let seconds = Option.map (fun d -> d -. now ()) b.deadline in
    match (conflicts, seconds) with
    | None, None -> None
    | _ -> Some (Sat.budget ?conflicts ?seconds ())
  in
  (* Time the solve here, into the SAT bucket, whichever engine is
     calling: the sweep engine's merge queries are SAT work and must show
     up as such (historically they were folded into sweep_seconds,
     leaving sat_seconds at 0.0 despite hundreds of calls). *)
  let t0 = now () in
  let r = Sat.solve ?assumptions ?budget ?cancel:b.cancel solver in
  ct.k_sat_s <- ct.k_sat_s +. (now () -. t0);
  let c1, _, _ = Sat.stats solver in
  ct.k_conflicts <- ct.k_conflicts + (c1 - c0);
  (match r with
  | Sat.Unknown ->
      if cancelled b || expired b then
        note_deadline_hit ct
          (if cancelled b then "cancelled" else "partition deadline")
      else note_budget_hit ct "SAT conflict budget"
  | Sat.Sat | Sat.Unsat -> ());
  r

let give_up_reason b =
  if cancelled b then "cancelled"
  else if expired b then "partition deadline"
  else "SAT conflict budget"

(* extract input assignment from a SAT model *)
let model_cex enc g vars =
  let n_in = Aig.num_inputs g in
  let cex = ref [] in
  for i = 0 to n_in - 1 do
    let l = Aig.input_lit g i in
    let node = Aig.node_of l in
    let v = Encoder.var_of enc node in
    if v <> 0 then cex := (vars.(i), Sat.value enc.Encoder.solver v) :: !cex
  done;
  List.rev !cex

let check_sat ct b ?factor (p : Seqprob.t) =
  let g = p.graph in
  let enc = Encoder.create g in
  (* miter: OR of XORs *)
  let diffs = List.map2 (fun a b -> Aig.xor_ g a b) p.outs1 p.outs2 in
  let miter = Aig.or_list g diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match
      sat_solve_counted ct b ?factor enc.Encoder.solver ~assumptions:[ ml ] ()
    with
    | Sat.Unsat -> Equivalent
    | Sat.Sat -> Inequivalent (model_cex enc g p.vars)
    | Sat.Unknown -> Undecided (give_up_reason b)
  end

(* ---------- sweep engine ---------- *)

let sim_rounds = 4 (* 4 * 64 = 256 random patterns *)

let check_sweep ct b ?(seed = 0xC0FFEE) (p : Seqprob.t) =
  let g = p.graph in
  let st = Random.State.make [| seed |] in
  let n_in = Aig.num_inputs g in
  let n_nodes = Aig.node_count g in
  (* signatures *)
  let sigs = Array.make n_nodes [] in
  for _round = 1 to sim_rounds do
    (* bits64 gives full-width words; int64 below max_int never sets bit 63,
       which would make pattern lane 63 simulate the all-zeros input *)
    let words = Array.init n_in (fun _ -> Random.State.bits64 st) in
    let vals = Aig.simulate g words in
    for n = 0 to n_nodes - 1 do
      sigs.(n) <- vals.(n) :: sigs.(n)
    done
  done;
  ct.k_sim_rounds <- ct.k_sim_rounds + sim_rounds;
  (* canonical signature: complement so that bit0 of first word is 0 *)
  let canon n =
    match sigs.(n) with
    | [] -> ([], false)
    | w :: _ as ws ->
        if Int64.logand w 1L = 1L then (List.map Int64.lognot ws, true) else (ws, false)
  in
  (* rebuild into g2 merging proven-equivalent nodes *)
  let g2 = Aig.create () in
  let enc = Encoder.create g2 in
  let map = Array.make n_nodes (-1) in
  map.(0) <- Aig.lit_false;
  let classes : (int64 list, int) Hashtbl.t = Hashtbl.create 1024 in
  (* class table: canonical signature -> representative node (original id) *)
  let lit_map l =
    let m = map.(Aig.node_of l) in
    assert (m >= 0);
    if Aig.is_complement l then Aig.neg m else m
  in
  let prove_equal la lb =
    (* equal iff both (la & ~lb) and (~la & lb) unsatisfiable; an Unknown
       (blown per-call budget) counts as not-proven, which is sound — the
       nodes simply stay unmerged and the final miter decides *)
    let a = Encoder.encode_lit enc la and sb = Encoder.encode_lit enc lb in
    match
      sat_solve_counted ct b enc.Encoder.solver ~assumptions:[ a; -sb ] ()
    with
    | Sat.Sat | Sat.Unknown -> false
    | Sat.Unsat -> (
        match
          sat_solve_counted ct b enc.Encoder.solver ~assumptions:[ -a; sb ] ()
        with
        | Sat.Sat | Sat.Unknown -> false
        | Sat.Unsat -> true)
  in
  for n = 1 to n_nodes - 1 do
    if Aig.is_input_node g n then begin
      map.(n) <- Aig.input g2;
      (* inputs are never merged, but register their class so that internal
         nodes equivalent to an input can merge into it *)
      let key, phase = canon n in
      if not (Hashtbl.mem classes key) then Hashtbl.replace classes key n
      else ignore phase
    end
    else begin
      let f0, f1 = Aig.fanins g n in
      let l = Aig.and_ g2 (lit_map f0) (lit_map f1) in
      map.(n) <- l;
      (* once the deadline passes or a sibling cancels, stop attempting
         merges — the rebuild itself must finish so the final miter (which
         will then give up quickly too) stays well-defined *)
      if Aig.node_of l <> 0 && not (cancelled b || expired b) then begin
        let key, phase = canon n in
        match Hashtbl.find_opt classes key with
        | None -> Hashtbl.replace classes key n
        | Some repr when repr = n -> ()
        | Some repr ->
            let _, rphase = canon repr in
            let rlit = map.(repr) in
            let rlit = if phase <> rphase then Aig.neg rlit else rlit in
            if Aig.node_of rlit <> Aig.node_of l && prove_equal l rlit then
              map.(n) <- rlit
      end
    end
  done;
  (* final miter on g2 *)
  let m1 = List.map lit_map p.outs1 and m2 = List.map lit_map p.outs2 in
  let diffs = List.map2 (fun a b -> Aig.xor_ g2 a b) m1 m2 in
  let miter = Aig.or_list g2 diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match sat_solve_counted ct b enc.Encoder.solver ~assumptions:[ ml ] () with
    | Sat.Unsat -> Equivalent
    | Sat.Unknown -> Undecided (give_up_reason b)
    | Sat.Sat ->
        (* map model back through original input order: input i of g maps to
           input i of g2 (inputs created in the same order) *)
        let cex = ref [] in
        for i = 0 to n_in - 1 do
          let l2 = map.(Aig.node_of (Aig.input_lit g i)) in
          let v = Encoder.var_of enc (Aig.node_of l2) in
          if v <> 0 then
            cex := (p.vars.(i), Sat.value enc.Encoder.solver v) :: !cex
        done;
        Inequivalent (List.rev !cex)
  end

(* ---------- engine dispatch, cache, partitioning ---------- *)

let engine_name = function
  | Bdd_engine -> "bdd"
  | Sat_engine -> "sat"
  | Sweep_engine -> "sweep"

let verdict_attr = function
  | Equivalent -> Obs.String "equivalent"
  | Inequivalent _ -> Obs.String "inequivalent"
  | Undecided r -> Obs.String ("undecided: " ^ r)

(* Cone-cost attribution: one live histogram per decade of estimated
   cluster cost (node-frames, {!Layout.estimate}), so a metrics scrape
   answers "which cone class burns the time" without a trace.  Names are
   preallocated — the disabled path must not sprintf. *)
let cost_decade_names =
  Array.init 8 (fun d -> Printf.sprintf "cec.cone_seconds.cost_1e%d" d)

let observe_cone_cost ~cost dt =
  if Obs.counters_enabled () then begin
    let d = if cost < 10. then 0 else int_of_float (Float.log10 cost) in
    let d = max 0 (min (Array.length cost_decade_names - 1) d) in
    Obs.observe cost_decade_names.(d) dt
  end

(* Runs one engine on one (sub)problem, charging wall-clock to the engine's
   stats bucket.  The clock is the span instrumentation itself
   (Obs.timed_span measures even with tracing disabled), so the stats
   seconds and the trace always agree.  Every engine consumes the
   problem's AIG directly — no per-engine netlist or AIG rebuild.

   SAT solve time is charged to the SAT bucket at the call site
   ([sat_solve_counted]), so here each engine is charged the engine span
   {e minus} what its inner SAT calls already took: the three buckets are
   disjoint and sum to the engine wall-clock.  For the SAT engine the
   remainder is its encoding time, so its bucket still totals the span. *)
let run_one ct b ~engine ~factor p =
  let sat0 = ct.k_sat_s in
  let v, dt =
    Obs.timed_span
      ~name:("cec.engine." ^ engine_name engine)
      (fun () ->
        let v =
          match engine with
          | Bdd_engine -> check_bdd ct b p
          | Sat_engine -> check_sat ct b ~factor p
          | Sweep_engine -> check_sweep ct b p
        in
        Obs.attr (fun () -> [ ("verdict", verdict_attr v) ]);
        v)
  in
  let sat_dt = ct.k_sat_s -. sat0 in
  (match engine with
  | Bdd_engine -> ct.k_bdd_s <- ct.k_bdd_s +. dt
  | Sat_engine -> ct.k_sat_s <- ct.k_sat_s +. Float.max 0. (dt -. sat_dt)
  | Sweep_engine -> ct.k_sweep_s <- ct.k_sweep_s +. Float.max 0. (dt -. sat_dt));
  (* per-engine attribution histogram (whole engine run incl. inner SAT) *)
  (match engine with
  | Bdd_engine -> Obs.observe "cec.engine_seconds.bdd" dt
  | Sat_engine -> Obs.observe "cec.engine_seconds.sat" dt
  | Sweep_engine -> Obs.observe "cec.engine_seconds.sweep" dt);
  v

(* Staged escalation: a blown budget retries harder instead of failing.
   Rung 0 is the requested engine at its base budget; rung 1 is the SAT
   engine with a [escalation_factor]-times conflict budget; rung 2 is the
   BDD engine under its node ceiling.  Cancellation and an expired deadline
   are final — the partition is being abandoned, not retried. *)
let escalation_factor = 4

let run_engine ct b ~engine p =
  if cancelled b then Undecided "cancelled"
  else
    match run_one ct b ~engine ~factor:1 p with
    | (Equivalent | Inequivalent _) as v -> v
    | Undecided _ as v when not b.lim.escalate -> v
    | Undecided _ as v ->
        let rungs =
          (* skip a rung that would repeat the base run unchanged *)
          (if engine = Sat_engine && b.lim.sat_conflicts = None then []
           else [ (Sat_engine, escalation_factor) ])
          @ (if engine = Bdd_engine then [] else [ (Bdd_engine, 1) ])
        in
        let rec climb v = function
          | [] -> v
          | (e, factor) :: rest ->
              if cancelled b || expired b then v
              else begin
                ct.k_escalations <- ct.k_escalations + 1;
                Obs.instant "cec.escalate"
                  ~attrs:
                    [
                      ("engine", Obs.String (engine_name e));
                      ("factor", Obs.Int factor);
                    ];
                match run_one ct b ~engine:e ~factor p with
                | (Equivalent | Inequivalent _) as v -> v
                | Undecided _ as v -> climb v rest
              end
        in
        climb v rungs

(* Cache key: purely structural canonical signature of the two output-lit
   groups.  Key equality means the two cone pairs are structurally
   identical under the first-visit input correspondence, so verdicts (and
   counterexamples stored by canonical input position) transfer even when
   the variables differ — the same cone at another depth, or over renamed
   inputs. *)
let pair_signature (p : Seqprob.t) =
  Aig.cone_signature p.graph ~input_label:(fun _ -> "") [ p.outs1; p.outs2 ]

(* variable of the k-th canonical cone input, per canonical position *)
let canonical_vars (p : Seqprob.t) =
  let input_index = input_index_tbl p.graph in
  Aig.cone_inputs p.graph [ p.outs1; p.outs2 ]
  |> List.map (fun n -> p.vars.(Hashtbl.find input_index n))
  |> Array.of_list

let check_pair ct b ~engine ~cache p =
  match cache with
  | None -> run_engine ct b ~engine p
  | Some cache -> (
      let key = pair_signature p in
      let note_cache_hit () =
        ct.k_cache_hits <- ct.k_cache_hits + 1;
        Obs.instant "cec.cache_hit";
        Obs.count "cec.cache_hits" 1
      in
      let note_store_hit () =
        (* disjoint from cache_hits: served by the persistent store, not
           the in-memory index (Store.find already emits store.hit) *)
        ct.k_store_hits <- ct.k_store_hits + 1;
        Obs.instant "cec.store_hit"
      in
      let replay pos =
        (* cex stored by canonical position → this problem's variables *)
        let cvars = canonical_vars p in
        Inequivalent
          (List.filter_map
             (fun (k, b) ->
               if k < Array.length cvars then Some (cvars.(k), b) else None)
             pos)
      in
      let hit, evicted = Cache.find_hit cache key in
      ct.k_cache_evictions <- ct.k_cache_evictions + evicted;
      match hit with
      | Some (Cache.Memory e | Cache.Disk e as h) -> (
          (match h with
          | Cache.Memory _ -> note_cache_hit ()
          | Cache.Disk _ -> note_store_hit ());
          match e with
          | Cache.E_equivalent -> Equivalent
          | Cache.E_inequivalent pos -> replay pos)
      | None -> (
          let spent0 = ct.k_bdd_s +. ct.k_sat_s +. ct.k_sweep_s in
          let v = run_engine ct b ~engine p in
          (* observed engine seconds for this cone pair: the layout's cost
             prior on later checks of a structurally identical cone *)
          Cache.note_cost cache key
            (ct.k_bdd_s +. ct.k_sat_s +. ct.k_sweep_s -. spent0);
          let remember entry =
            let wrote, evicted = Cache.add_entry cache key entry in
            ct.k_store_writes <- ct.k_store_writes + wrote;
            ct.k_cache_evictions <- ct.k_cache_evictions + evicted
          in
          match v with
          | Undecided _ ->
              (* never cached (and never persisted): a bigger budget or no
                 sibling cex might decide the same cone pair next time *)
              v
          | Equivalent ->
              remember Cache.E_equivalent;
              v
          | Inequivalent cex ->
              let cvars = canonical_vars p in
              let pos_of_var = Hashtbl.create 16 in
              Array.iteri (fun k v -> Hashtbl.replace pos_of_var v k) cvars;
              remember
                (Cache.E_inequivalent
                   (List.filter_map
                      (fun (v, b) ->
                        Option.map
                          (fun k -> (k, b))
                          (Hashtbl.find_opt pos_of_var v))
                      cex));
              v))

(* Partition layout — overlap clustering, the cone cost model and cost-
   driven bin packing — lives in {!Layout} (re-exported from this module's
   interface).  Clusters are the verdict and cache-key units; bins only
   group clusters into pool tasks. *)
module Layout = Layout

(* One sub-AIG per cluster, carved out of the shared problem graph with
   Aig.extract; the sub-problem's variables come through the extraction's
   input map, so nothing is re-translated from netlists. *)
let extract_part (p : Seqprob.t) members o1 o2 =
  let roots1 = List.map (fun i -> o1.(i)) members in
  let roots2 = List.map (fun i -> o2.(i)) members in
  let ex = Aig.extract p.graph ~roots:(roots1 @ roots2) in
  let tr l =
    let m = ex.Aig.map.(Aig.node_of l) in
    if Aig.is_complement l then Aig.neg m else m
  in
  {
    Seqprob.graph = ex.Aig.sub;
    vars = Array.map (fun pi -> p.vars.(pi)) ex.Aig.sub_inputs;
    outs1 = List.map tr roots1;
    outs2 = List.map tr roots2;
  }

(* Nominal engine seconds to replay an already-known verdict: a cache probe
   plus a counterexample translation, no solving. *)
let replay_seconds = 1e-4

(* Cost prior for the layout: observed engine seconds when this cone pair
   (or a structurally identical one) was checked before; a near-zero cost
   when its verdict is already in the cache or the persistent store. *)
let prior_of_cache cache ~signature =
  match Cache.observed_cost cache signature with
  | Some s -> Some s
  | None -> if Cache.mem cache signature then Some replay_seconds else None

let check_monolithic ~engine ~limits ~cache p =
  let ct = fresh_counters () in
  let b = bctx_of_limits limits in
  let v = check_pair ct b ~engine ~cache p in
  (match v with
  | Undecided _ -> ct.k_undecided <- ct.k_undecided + 1
  | Equivalent | Inequivalent _ -> ());
  (v, stats_of_counters ~partitions:1 [| ct |])

let check_partitioned ~engine ~jobs ~pool ~limits ~cache ~forced (p : Seqprob.t)
    =
  if p.outs1 = [] then (Equivalent, empty_stats)
  else begin
    let o1 = Array.of_list p.outs1 and o2 = Array.of_list p.outs2 in
    let prior = Option.map (fun c -> prior_of_cache c) cache in
    (* Layout and sub-AIG extraction are cheap and sequential; afterwards
       every pool task owns its sub-problems outright, so nothing mutable
       crosses domains. *)
    let (layout, subs), layout_seconds =
      Obs.timed_span ~name:"cec.layout" (fun () ->
          let l = Layout.compute ~forced ?prior p in
          Obs.attr (fun () ->
              [
                ("clusters", Obs.Int (List.length l.Layout.clusters));
                ("bins", Obs.Int (List.length l.Layout.bins));
                ("monolithic", Obs.Bool l.Layout.monolithic);
                ("cost", Obs.Float l.Layout.total_cost);
              ]);
          let subs =
            if l.Layout.monolithic then [||]
            else
              Array.of_list l.Layout.clusters
              |> Array.map (fun cl -> extract_part p cl.Layout.members o1 o2)
          in
          (l, subs))
    in
    if layout.Layout.monolithic then begin
      (* Below the cost threshold the whole check is cheaper than the
         partitioning machinery: run it in one piece, spin up no pool. *)
      let t0 = now () in
      let v, st = check_monolithic ~engine ~limits ~cache p in
      observe_cone_cost ~cost:layout.Layout.total_cost (now () -. t0);
      (v, { st with partition_seconds = layout_seconds })
    end
    else begin
      let cache = match cache with Some c -> c | None -> Cache.create () in
      let n = Array.length subs in
      let counters = Array.init n (fun _ -> fresh_counters ()) in
      (* Set by find_first the moment any cluster reports a counterexample;
         every in-flight sibling's SAT loop / BDD build polls it and stops
         mid-solve, and bins abandon their not-yet-started clusters. *)
      let cancel = Atomic.make false in
      let undecided = Array.make n None in
      let clusters = Array.of_list layout.Layout.clusters in
      let check_cluster_span k sub =
        Obs.span ~name:"cec.partition"
          ~attrs:
            [
              ("cluster", Obs.Int k);
              ("outputs", Obs.Int (List.length sub.Seqprob.outs1));
              ("aig_nodes", Obs.Int (Aig.node_count sub.Seqprob.graph));
            ]
          (fun () ->
            let b =
              {
                lim = limits;
                (* per-cluster deadline starts when the cluster does *)
                deadline = Option.map (fun s -> now () +. s) limits.seconds;
                cancel = Some cancel;
              }
            in
            match check_pair counters.(k) b ~engine ~cache:(Some cache) sub with
            | Equivalent -> None
            | Undecided reason ->
                counters.(k).k_undecided <- counters.(k).k_undecided + 1;
                undecided.(k) <- Some reason;
                None
            | Inequivalent cex ->
                (* siblings observe the shared flag the moment find_first
                   records this answer *)
                Obs.instant "cec.first_cex" ~attrs:[ ("cluster", Obs.Int k) ];
                Some cex)
      in
      let check_cluster k =
        let sub = subs.(k) in
        let t0 = now () in
        let res = check_cluster_span k sub in
        observe_cone_cost ~cost:clusters.(k).Layout.cost (now () -. t0);
        res
      in
      let found =
        (* one pool task per scheduling bin; a task checks its clusters in
           ascending index order.  Never spawn more workers than bins.
           With a caller-supplied pool (the shared server pool) the batch
           runs on it as-is — the pool's lazy demand-driven worker sizing
           already never spawns more domains than there are outstanding
           tasks — and the pool is left running for the next batch. *)
        let bins = layout.Layout.bins in
        let search pool =
          Par.Pool.find_first ~found:cancel pool
            (fun bin ->
              let rec go = function
                | [] -> None
                | k :: rest ->
                    if Atomic.get cancel then None
                    else (
                      match check_cluster k with
                      | None -> go rest
                      | Some cex -> Some cex)
              in
              go bin)
            bins
        in
        match pool with
        | Some pool -> search pool
        | None -> Par.Pool.with_pool ~jobs:(min jobs (List.length bins)) search
      in
      let stats =
        {
          (stats_of_counters ~partitions:n counters) with
          partition_seconds = layout_seconds;
        }
      in
      match found with
      | Some cex -> (Inequivalent cex, stats)
      | None -> (
          (* no counterexample anywhere, so the cancel flag was never set
             and every Undecided is a genuine budget exhaustion *)
          let rec first k =
            if k >= n then None
            else
              match undecided.(k) with
              | Some reason -> Some (k, reason)
              | None -> first (k + 1)
          in
          match first 0 with
          | Some (k, reason) ->
              (Undecided (Printf.sprintf "partition %d: %s" k reason), stats)
          | None -> (Equivalent, stats))
    end
  end

let check_problem_with_stats ?(engine = Sweep_engine) ?jobs ?pool ?partition
    ?(limits = no_limits) ?cache ?store (p : Seqprob.t) =
  if List.length p.outs1 <> List.length p.outs2 then
    invalid_arg "Cec: output counts differ";
  (* [store] is only consulted when the caller supplies no cache: a
     caller-provided cache decides its own backing *)
  let cache =
    match (cache, store) with
    | (Some _ as c), _ -> c
    | None, Some st -> Some (Cache.create ~store:st ())
    | None, None -> cache
  in
  (* a shared pool implies its own parallelism level unless the caller
     narrows it (e.g. a per-request jobs cap below the server's pool) *)
  let jobs =
    match (jobs, pool) with
    | Some j, _ -> max 1 j
    | None, Some pl -> Par.Pool.jobs pl
    | None, None -> 1
  in
  (* elapsed_seconds is the true wall clock of the whole check, derived
     from the enclosing span — in parallel runs the per-engine CPU-second
     sums can legitimately exceed it *)
  let (v, stats), elapsed =
    Obs.timed_span ~name:"cec.check"
      ~attrs:
        [
          ("engine", Obs.String (engine_name engine));
          ("jobs", Obs.Int jobs);
          ("outputs", Obs.Int (List.length p.outs1));
        ]
      (fun () ->
        match partition with
        | Some true ->
            (* forced: always lay out and run per-cluster, the historical
               [~partition:true] contract tests rely on *)
            check_partitioned ~engine ~jobs ~pool ~limits ~cache ~forced:true p
        | Some false -> check_monolithic ~engine ~limits ~cache p
        | None when jobs > 1 ->
            (* adaptive: the layout's cost model decides — monolithic
               below the threshold, cost-packed bins above *)
            check_partitioned ~engine ~jobs ~pool ~limits ~cache ~forced:false p
        | None -> check_monolithic ~engine ~limits ~cache p)
  in
  (v, { stats with elapsed_seconds = elapsed })

let check_problem ?engine ?jobs ?pool ?partition ?limits ?cache ?store p =
  fst
    (check_problem_with_stats ?engine ?jobs ?pool ?partition ?limits ?cache
       ?store p)

(* ---------- Circuit.t entry points (thin wrappers) ---------- *)

let problem_of_circuits c1 c2 =
  require_comb c1;
  require_comb c2;
  match Seqprob.of_circuits c1 c2 with
  | Ok p -> p
  | Error (Seqprob.Output_arity_mismatch _) ->
      invalid_arg "Cec: output counts differ"
  | Error d -> invalid_arg (Seqprob.diagnosis_to_string d)

let check_with_stats ?engine ?jobs ?pool ?partition ?limits ?cache ?store c1 c2
    =
  check_problem_with_stats ?engine ?jobs ?pool ?partition ?limits ?cache ?store
    (problem_of_circuits c1 c2)

let check ?engine ?jobs ?pool ?partition ?limits ?cache ?store c1 c2 =
  fst
    (check_with_stats ?engine ?jobs ?pool ?partition ?limits ?cache ?store c1
       c2)

let counterexample_is_valid c1 c2 cex =
  (* The environment is keyed by the full variable, not just its base —
     two time frames of the same input ("x@0" and "x@1" after unrolling)
     are distinct assignment points and must not collide. *)
  let env = Hashtbl.create 16 in
  List.iter (fun (v, b) -> Hashtbl.replace env v b) cex;
  let outs c =
    let source s =
      let name = Circuit.signal_name c s in
      (* an input literally named "x@1" interns as {base = "x@1"; Time 0},
         so try the exact name first and only then parse a frame suffix *)
      match Hashtbl.find_opt env (Seqprob.Var.time name 0) with
      | Some b -> b
      | None -> (
          match Hashtbl.find_opt env (Seqprob.Var.of_string name) with
          | Some b -> b
          | None -> false)
    in
    let values = Eval.comb_eval c ~source in
    List.map (fun o -> values.(o)) (Circuit.outputs c)
  in
  let o1 = outs c1 and o2 = outs c2 in
  List.exists2 (fun a b -> a <> b) o1 o2
