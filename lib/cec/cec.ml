type counterexample = (string * bool) list

type verdict = Equivalent | Inequivalent of counterexample

type engine = Bdd_engine | Sat_engine | Sweep_engine

type stats = {
  sat_calls : int;
  sim_rounds : int;
  partitions : int;
  cache_hits : int;
  bdd_seconds : float;
  sat_seconds : float;
  sweep_seconds : float;
}

let empty_stats =
  {
    sat_calls = 0;
    sim_rounds = 0;
    partitions = 0;
    cache_hits = 0;
    bdd_seconds = 0.;
    sat_seconds = 0.;
    sweep_seconds = 0.;
  }

let stats_pp ppf s =
  Format.fprintf ppf
    "%d partitions, %d SAT calls, %d sim rounds, %d cache hits, engines bdd %.3fs sat %.3fs sweep %.3fs"
    s.partitions s.sat_calls s.sim_rounds s.cache_hits s.bdd_seconds
    s.sat_seconds s.sweep_seconds

(* Per-partition mutable counters.  Each partition task owns exactly one of
   these, so no synchronization is needed; they are merged after the pool
   joins (the join provides the happens-before edge). *)
type counters = {
  mutable k_sat_calls : int;
  mutable k_sim_rounds : int;
  mutable k_cache_hits : int;
  mutable k_bdd_s : float;
  mutable k_sat_s : float;
  mutable k_sweep_s : float;
}

let fresh_counters () =
  {
    k_sat_calls = 0;
    k_sim_rounds = 0;
    k_cache_hits = 0;
    k_bdd_s = 0.;
    k_sat_s = 0.;
    k_sweep_s = 0.;
  }

let stats_of_counters ~partitions cts =
  Array.fold_left
    (fun acc k ->
      {
        acc with
        sat_calls = acc.sat_calls + k.k_sat_calls;
        sim_rounds = acc.sim_rounds + k.k_sim_rounds;
        cache_hits = acc.cache_hits + k.k_cache_hits;
        bdd_seconds = acc.bdd_seconds +. k.k_bdd_s;
        sat_seconds = acc.sat_seconds +. k.k_sat_s;
        sweep_seconds = acc.sweep_seconds +. k.k_sweep_s;
      })
    { empty_stats with partitions }
    cts

let now () = Unix.gettimeofday ()

(* ---------- result cache ---------- *)

module Cache = struct
  (* Counterexamples are stored over united-input *indices*, so a hit on a
     structurally identical cone pair with different input names (e.g. the
     same cone at another unrolling depth) can be replayed by renaming. *)
  type entry = E_equivalent | E_inequivalent of (int * bool) list

  type t = { tbl : (string, entry) Hashtbl.t; m : Mutex.t }

  let create () = { tbl = Hashtbl.create 256; m = Mutex.create () }

  let clear t =
    Mutex.lock t.m;
    Hashtbl.reset t.tbl;
    Mutex.unlock t.m

  let size t =
    Mutex.lock t.m;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.m;
    n

  let find t key =
    Mutex.lock t.m;
    let r = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.m;
    r

  let add t key entry =
    Mutex.lock t.m;
    if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key entry;
    Mutex.unlock t.m
end

let require_comb c =
  if Circuit.latch_count c > 0 then
    invalid_arg
      (Printf.sprintf "Cec: circuit %s is not combinational" (Circuit.name c))

(* United input universe: name -> index, in order of first appearance. *)
let united_inputs c1 c2 =
  let names = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let collect c =
    List.iter
      (fun s ->
        let n = Circuit.signal_name c s in
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n !count;
          incr count;
          names := n :: !names
        end)
      (Circuit.inputs c)
  in
  collect c1;
  collect c2;
  (List.rev !names, seen)

(* ---------- BDD engine ---------- *)

let bdd_outputs man index c =
  let source s = Bdd.var man (Hashtbl.find index (Circuit.signal_name c s)) in
  let n = Circuit.signal_count c in
  let node = Array.make n (Bdd.zero man) in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input -> node.(s) <- source s
    | Undriven | Gate _ | Latch _ -> ()
  done;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          let ins = Array.map (fun f -> node.(f)) fs in
          let v =
            match fn with
            | Const b -> if b then Bdd.one man else Bdd.zero man
            | Buf -> ins.(0)
            | Not -> Bdd.not_ man ins.(0)
            | And -> Array.fold_left (Bdd.and_ man) (Bdd.one man) ins
            | Nand -> Bdd.not_ man (Array.fold_left (Bdd.and_ man) (Bdd.one man) ins)
            | Or -> Array.fold_left (Bdd.or_ man) (Bdd.zero man) ins
            | Nor -> Bdd.not_ man (Array.fold_left (Bdd.or_ man) (Bdd.zero man) ins)
            | Xor -> Array.fold_left (Bdd.xor_ man) (Bdd.zero man) ins
            | Xnor -> Bdd.not_ man (Array.fold_left (Bdd.xor_ man) (Bdd.zero man) ins)
            | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2)
          in
          node.(s) <- v
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.map (fun o -> node.(o)) (Circuit.outputs c)

let check_bdd c1 c2 =
  let names, index = united_inputs c1 c2 in
  let man = Bdd.man () in
  (* allocate variables in order *)
  List.iteri (fun i _ -> ignore (Bdd.var man i)) names;
  let o1 = bdd_outputs man index c1 in
  let o2 = bdd_outputs man index c2 in
  let rec cmp o1 o2 =
    match (o1, o2) with
    | [], [] -> Equivalent
    | f :: r1, g :: r2 ->
        if Bdd.equal f g then cmp r1 r2
        else begin
          let diff = Bdd.xor_ man f g in
          match Bdd.any_sat man diff with
          | None -> assert false
          | Some assignment ->
              let name_arr = Array.of_list names in
              Inequivalent
                (List.map (fun (v, b) -> (name_arr.(v), b)) assignment)
        end
    | _ -> invalid_arg "Cec: output counts differ"
  in
  cmp o1 o2

(* ---------- shared AIG construction ---------- *)

let build_shared_aig c1 c2 =
  let names, index = united_inputs c1 c2 in
  let g = Aig.create () in
  let input_lits = List.map (fun _ -> Aig.input g) names in
  let lit_arr = Array.of_list input_lits in
  let source c s = lit_arr.(Hashtbl.find index (Circuit.signal_name c s)) in
  let env1 = Aig.of_circuit_comb g c1 ~source:(source c1) in
  let env2 = Aig.of_circuit_comb g c2 ~source:(source c2) in
  let outs c (env : Aig.env) =
    List.map (fun o -> env.of_signal.(o)) (Circuit.outputs c)
  in
  (g, names, outs c1 env1, outs c2 env2)

(* Incremental Tseitin encoder over a (possibly growing) AIG. *)
module Encoder = struct
  type t = {
    g : Aig.t;
    solver : Sat.t;
    vars : int Vgraph.Vec.t; (* node -> sat var, 0 = unencoded *)
  }

  let create g = { g; solver = Sat.create (); vars = Vgraph.Vec.create ~dummy:0 () }

  let var_of e n =
    while Vgraph.Vec.length e.vars <= n do
      ignore (Vgraph.Vec.push e.vars 0)
    done;
    Vgraph.Vec.get e.vars n

  let rec encode_node e n =
    let v = var_of e n in
    if v <> 0 then v
    else begin
      let v = Sat.new_var e.solver in
      Vgraph.Vec.set e.vars n v;
      if n = 0 then Sat.add_clause e.solver [ -v ]
      else if not (Aig.is_input_node e.g n) then begin
        let f0, f1 = Aig.fanins e.g n in
        let l0 = encode_lit e f0 and l1 = encode_lit e f1 in
        Sat.add_clause e.solver [ -v; l0 ];
        Sat.add_clause e.solver [ -v; l1 ];
        Sat.add_clause e.solver [ v; -l0; -l1 ]
      end;
      v
    end

  and encode_lit e l =
    let v = encode_node e (Aig.node_of l) in
    if Aig.is_complement l then -v else v
end

let sat_solve_counted ct solver ?assumptions () =
  ct.k_sat_calls <- ct.k_sat_calls + 1;
  Sat.solve ?assumptions solver

(* extract input assignment from a SAT model *)
let model_cex enc g names =
  let n_in = Aig.num_inputs g in
  let cex = ref [] in
  let name_arr = Array.of_list names in
  for i = 0 to n_in - 1 do
    let l = Aig.input_lit g i in
    let node = Aig.node_of l in
    let v = Encoder.var_of enc node in
    if v <> 0 then cex := (name_arr.(i), Sat.value enc.Encoder.solver v) :: !cex
  done;
  List.rev !cex

let check_sat ct (g, names, o1, o2) =
  let enc = Encoder.create g in
  (* miter: OR of XORs *)
  let diffs = List.map2 (fun a b -> Aig.xor_ g a b) o1 o2 in
  let miter = Aig.or_list g diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match sat_solve_counted ct enc.Encoder.solver ~assumptions:[ ml ] () with
    | Sat.Unsat -> Equivalent
    | Sat.Sat -> Inequivalent (model_cex enc g names)
  end

(* ---------- sweep engine ---------- *)

let sim_rounds = 4 (* 4 * 64 = 256 random patterns *)

let check_sweep ct ?(seed = 0xC0FFEE) (g, names, o1, o2) =
  let st = Random.State.make [| seed |] in
  let n_in = Aig.num_inputs g in
  let n_nodes = Aig.node_count g in
  (* signatures *)
  let sigs = Array.make n_nodes [] in
  for _round = 1 to sim_rounds do
    let words = Array.init n_in (fun _ -> Random.State.int64 st Int64.max_int) in
    let vals = Aig.simulate g words in
    for n = 0 to n_nodes - 1 do
      sigs.(n) <- vals.(n) :: sigs.(n)
    done
  done;
  ct.k_sim_rounds <- ct.k_sim_rounds + sim_rounds;
  (* canonical signature: complement so that bit0 of first word is 0 *)
  let canon n =
    match sigs.(n) with
    | [] -> ([], false)
    | w :: _ as ws ->
        if Int64.logand w 1L = 1L then (List.map Int64.lognot ws, true) else (ws, false)
  in
  (* rebuild into g2 merging proven-equivalent nodes *)
  let g2 = Aig.create () in
  let enc = Encoder.create g2 in
  let map = Array.make n_nodes (-1) in
  map.(0) <- Aig.lit_false;
  let classes : (int64 list, int) Hashtbl.t = Hashtbl.create 1024 in
  (* class table: canonical signature -> representative node (original id) *)
  let lit_map l =
    let m = map.(Aig.node_of l) in
    assert (m >= 0);
    if Aig.is_complement l then Aig.neg m else m
  in
  let prove_equal la lb =
    (* equal iff both (la & ~lb) and (~la & lb) unsatisfiable *)
    let a = Encoder.encode_lit enc la and b = Encoder.encode_lit enc lb in
    match sat_solve_counted ct enc.Encoder.solver ~assumptions:[ a; -b ] () with
    | Sat.Sat -> false
    | Sat.Unsat -> (
        match sat_solve_counted ct enc.Encoder.solver ~assumptions:[ -a; b ] () with
        | Sat.Sat -> false
        | Sat.Unsat -> true)
  in
  for n = 1 to n_nodes - 1 do
    if Aig.is_input_node g n then begin
      map.(n) <- Aig.input g2;
      (* inputs are never merged, but register their class so that internal
         nodes equivalent to an input can merge into it *)
      let key, phase = canon n in
      if not (Hashtbl.mem classes key) then Hashtbl.replace classes key n
      else ignore phase
    end
    else begin
      let f0, f1 = Aig.fanins g n in
      let l = Aig.and_ g2 (lit_map f0) (lit_map f1) in
      map.(n) <- l;
      if Aig.node_of l <> 0 then begin
        let key, phase = canon n in
        match Hashtbl.find_opt classes key with
        | None -> Hashtbl.replace classes key n
        | Some repr when repr = n -> ()
        | Some repr ->
            let _, rphase = canon repr in
            let rlit = map.(repr) in
            let rlit = if phase <> rphase then Aig.neg rlit else rlit in
            if Aig.node_of rlit <> Aig.node_of l && prove_equal l rlit then
              map.(n) <- rlit
      end
    end
  done;
  (* final miter on g2 *)
  let m1 = List.map lit_map o1 and m2 = List.map lit_map o2 in
  let diffs = List.map2 (fun a b -> Aig.xor_ g2 a b) m1 m2 in
  let miter = Aig.or_list g2 diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match sat_solve_counted ct enc.Encoder.solver ~assumptions:[ ml ] () with
    | Sat.Unsat -> Equivalent
    | Sat.Sat ->
        (* map model back through original input order: input i of g maps to
           input i of g2 (inputs created in the same order) *)
        let cex = ref [] in
        let name_arr = Array.of_list names in
        for i = 0 to n_in - 1 do
          let l2 = map.(Aig.node_of (Aig.input_lit g i)) in
          let v = Encoder.var_of enc (Aig.node_of l2) in
          if v <> 0 then
            cex := (name_arr.(i), Sat.value enc.Encoder.solver v) :: !cex
        done;
        Inequivalent (List.rev !cex)
  end

(* ---------- engine dispatch, cache, partitioning ---------- *)

(* Runs one engine on one (sub)circuit pair, charging wall-clock to the
   engine's stats bucket.  [prebuilt] avoids rebuilding the shared AIG when
   the caller already made one for the cache key. *)
let run_engine ct ~engine ?prebuilt c1 c2 =
  let built () =
    match prebuilt with Some t -> t | None -> build_shared_aig c1 c2
  in
  let t0 = now () in
  match engine with
  | Bdd_engine ->
      let v = check_bdd c1 c2 in
      ct.k_bdd_s <- ct.k_bdd_s +. (now () -. t0);
      v
  | Sat_engine ->
      let v = check_sat ct (built ()) in
      ct.k_sat_s <- ct.k_sat_s +. (now () -. t0);
      v
  | Sweep_engine ->
      let v = check_sweep ct (built ()) in
      ct.k_sweep_s <- ct.k_sweep_s +. (now () -. t0);
      v

(* Cache key: canonical signature of the two output-literal groups in the
   shared AIG, with input nodes labelled by their united-input index.  Key
   equality implies the pair computes the same two functions over the
   united index space, so verdicts (and index-encoded counterexamples)
   transfer even when the input *names* differ. *)
let pair_signature g o1 o2 =
  let idx_of_node = Hashtbl.create 64 in
  for i = 0 to Aig.num_inputs g - 1 do
    Hashtbl.replace idx_of_node (Aig.node_of (Aig.input_lit g i)) i
  done;
  Aig.cone_signature g
    ~input_label:(fun n -> string_of_int (Hashtbl.find idx_of_node n))
    [ o1; o2 ]

let check_pair ct ~engine ~cache c1 c2 =
  match cache with
  | None -> run_engine ct ~engine c1 c2
  | Some cache -> (
      let ((g, names, o1, o2) as prebuilt) = build_shared_aig c1 c2 in
      let key = pair_signature g o1 o2 in
      match Cache.find cache key with
      | Some Cache.E_equivalent ->
          ct.k_cache_hits <- ct.k_cache_hits + 1;
          Equivalent
      | Some (Cache.E_inequivalent ixs) ->
          ct.k_cache_hits <- ct.k_cache_hits + 1;
          let name_arr = Array.of_list names in
          Inequivalent (List.map (fun (i, b) -> (name_arr.(i), b)) ixs)
      | None ->
          let v = run_engine ct ~engine ~prebuilt c1 c2 in
          let entry =
            match v with
            | Equivalent -> Cache.E_equivalent
            | Inequivalent cex ->
                let index = Hashtbl.create 16 in
                List.iteri (fun i n -> Hashtbl.replace index n i) names;
                Cache.E_inequivalent
                  (List.map (fun (n, b) -> (Hashtbl.find index n, b)) cex)
          in
          Cache.add cache key entry;
          v)

(* Output clustering.  Checking each output pair in isolation is sound but
   can be quadratically wasteful: when cones overlap heavily (a min/max
   chain, a shared datapath) every partition re-extracts, re-sweeps and
   re-SATs nearly the whole circuit.  So outputs are greedily clustered:
   an output joins an existing partition when at least half of the smaller
   cone (its own, or the partition's accumulated one) is already covered
   by the other.  Chains collapse into one partition — degrading
   gracefully to the monolithic check — while independent cones split.
   The clustering depends only on the two circuits, never on [jobs], so
   partition boundaries (and hence verdicts and cache keys) are identical
   at every parallelism level. *)
type out_group = {
  mutable members : int list; (* output indices, reversed *)
  g1 : bool array; (* accumulated cone marks over c1 signals *)
  g2 : bool array; (* accumulated cone marks over c2 signals *)
  mutable gsize : int; (* marked signals across both arrays *)
}

let cluster_outputs c1 c2 =
  let outs1 = Array.of_list (Circuit.outputs c1) in
  let outs2 = Array.of_list (Circuit.outputs c2) in
  let n = Array.length outs1 in
  let groups = ref [] in
  let marked m =
    let acc = ref [] in
    Array.iteri (fun s b -> if b then acc := s :: !acc) m;
    !acc
  in
  for i = 0 to n - 1 do
    let m1 = Circuit.cone c1 [ outs1.(i) ] in
    let m2 = Circuit.cone c2 [ outs2.(i) ] in
    (* work on the marked-signal lists so scoring an output against a group
       costs O(|cone|), not O(|circuit|) *)
    let sigs1 = marked m1 and sigs2 = marked m2 in
    let size = List.length sigs1 + List.length sigs2 in
    let best = ref None in
    List.iter
      (fun g ->
        let overlap = ref 0 in
        List.iter (fun s -> if g.g1.(s) then incr overlap) sigs1;
        List.iter (fun s -> if g.g2.(s) then incr overlap) sigs2;
        let score = 2 * !overlap in
        if score >= min size g.gsize then
          match !best with
          | Some (bscore, _) when bscore >= score -> ()
          | _ -> best := Some (score, g))
      !groups;
    match !best with
    | Some (_, g) ->
        List.iter
          (fun s -> if not g.g1.(s) then (g.g1.(s) <- true; g.gsize <- g.gsize + 1))
          sigs1;
        List.iter
          (fun s -> if not g.g2.(s) then (g.g2.(s) <- true; g.gsize <- g.gsize + 1))
          sigs2;
        g.members <- i :: g.members
    | None -> groups := { members = [ i ]; g1 = m1; g2 = m2; gsize = size } :: !groups
  done;
  List.rev_map (fun g -> (List.rev g.members, g.gsize)) !groups

(* Each partition pays a fixed cost (extraction, AIG build, simulation
   warm-up, solver setup), so hundreds of tiny cones are much slower to
   check separately than together.  Pack the overlap clusters into at most
   [max_partitions] bins, largest first onto the lightest bin.  The bound
   is a constant — not a function of [jobs] — so the partition layout is
   identical at every parallelism level. *)
let max_partitions = 16

let pack_clusters clusters =
  let n = List.length clusters in
  if n <= max_partitions then List.map fst clusters
  else begin
    let sorted =
      List.stable_sort (fun (_, a) (_, b) -> compare (b : int) a) clusters
    in
    let bins = Array.make max_partitions ([], 0) in
    List.iter
      (fun (members, size) ->
        let lightest = ref 0 in
        Array.iteri
          (fun i (_, w) -> if w < snd bins.(!lightest) then lightest := i)
          bins;
        let ms, w = bins.(!lightest) in
        bins.(!lightest) <- (members :: ms, w + size))
      sorted;
    Array.to_list bins
    |> List.filter_map (fun (ms, _) ->
           match List.concat (List.rev ms) with
           | [] -> None
           | members -> Some (List.sort compare members))
  end

let check_partitioned ~engine ~jobs ~cache c1 c2 =
  let outs1 = Array.of_list (Circuit.outputs c1) in
  let outs2 = Array.of_list (Circuit.outputs c2) in
  if Array.length outs1 = 0 then (Equivalent, empty_stats)
  else begin
    let cache = match cache with Some c -> c | None -> Cache.create () in
    let clusters = pack_clusters (cluster_outputs c1 c2) in
    (* Cone extraction is cheap and sequential; afterwards every partition
       task owns its two sub-circuits outright, so nothing mutable crosses
       domains. *)
    let parts =
      List.mapi
        (fun k members ->
          let e1, _ =
            Circuit.extract c1 ~keep_outputs:(List.map (fun i -> outs1.(i)) members)
          in
          let e2, _ =
            Circuit.extract c2 ~keep_outputs:(List.map (fun i -> outs2.(i)) members)
          in
          (k, e1, e2))
        clusters
    in
    let n = List.length parts in
    let counters = Array.init n (fun _ -> fresh_counters ()) in
    let found =
      (* never spawn more workers than there are partitions *)
      Par.Pool.with_pool ~jobs:(min jobs n) (fun pool ->
          Par.Pool.find_first pool
            (fun (k, e1, e2) ->
              match check_pair counters.(k) ~engine ~cache:(Some cache) e1 e2 with
              | Equivalent -> None
              | Inequivalent cex -> Some cex)
            parts)
    in
    let stats = stats_of_counters ~partitions:n counters in
    match found with
    | Some cex -> (Inequivalent cex, stats)
    | None -> (Equivalent, stats)
  end

let check_with_stats ?(engine = Sweep_engine) ?(jobs = 1) ?partition ?cache c1 c2 =
  require_comb c1;
  require_comb c2;
  if List.length (Circuit.outputs c1) <> List.length (Circuit.outputs c2) then
    invalid_arg "Cec: output counts differ";
  let jobs = max 1 jobs in
  let partitioned = match partition with Some b -> b | None -> jobs > 1 in
  if partitioned then check_partitioned ~engine ~jobs ~cache c1 c2
  else begin
    let ct = fresh_counters () in
    let v = check_pair ct ~engine ~cache c1 c2 in
    (v, stats_of_counters ~partitions:1 [| ct |])
  end

let check ?engine ?jobs ?partition ?cache c1 c2 =
  fst (check_with_stats ?engine ?jobs ?partition ?cache c1 c2)

let counterexample_is_valid c1 c2 cex =
  let env = Hashtbl.create 16 in
  List.iter (fun (n, b) -> Hashtbl.replace env n b) cex;
  let outs c =
    let source s =
      match Hashtbl.find_opt env (Circuit.signal_name c s) with
      | Some b -> b
      | None -> false
    in
    let values = Eval.comb_eval c ~source in
    List.map (fun o -> values.(o)) (Circuit.outputs c)
  in
  let o1 = outs c1 and o2 = outs c2 in
  List.exists2 (fun a b -> a <> b) o1 o2
