(* Persistent content-addressed verdict store: an append-only binary log of
   (cone signature -> verdict) records with CRC-guarded framing, advisory
   file locking for cross-process sharing, and tmp-file+rename compaction
   with LRU-by-last-hit eviction.  See store.mli for the contract. *)

type verdict = Equivalent | Inequivalent of (int * bool) list

type info = {
  entries : int;
  capacity : int;
  file_bytes : int;
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  compactions : int;
  quarantined_to : string option;
  kinds : (string * int) list;
}

let default_capacity = 262_144
let default_dir = ".seqver-cache"
let file_name = "verdicts.bin"

(* Version is baked into the magic: a format change bumps the suffix and
   old files read as "bad magic" (quarantined, cold start) rather than
   being misparsed. *)
let magic = "SEQVST01"

(* Records larger than this are treated as corruption, not as a request
   to allocate whatever a torn length prefix happens to say. *)
let max_payload = 1 lsl 28

(* ---------- CRC-32 (IEEE, reflected 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------- record encoding ---------- *)

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int (n land 0xFFFFFFFF))
let get_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

(* The record kind of plain combinational cone verdicts.  Records of this
   kind are written in the original (tag 0/1) framing, byte-identical to
   pre-kind logs, so existing caches keep reading and old readers keep
   understanding everything a "flat"-only writer produces. *)
let default_kind = "flat"

(* payload := tag u8 | last_hit u32 | keylen u32 | key
            | (tags 2,3) kindlen u8 | kind
            | (tags 1,3) n u32 | n * (pos u32, value u8)

   Tags 0/1 are the legacy kind-less framing (implicitly kind "flat");
   tags 2/3 carry an explicit kind string.  Old readers treat tags 2/3 as
   an unknown tag — corruption — and quarantine the log into a safe cold
   start rather than misreading it. *)
let encode_payload ~last_hit ~kind key v =
  if String.length kind > 255 then
    invalid_arg (Printf.sprintf "Store: kind %S longer than 255 bytes" kind);
  let tagged = kind <> default_kind in
  let buf = Buffer.create (String.length key + 32) in
  Buffer.add_char buf
    (match (v, tagged) with
    | Equivalent, false -> '\000'
    | Inequivalent _, false -> '\001'
    | Equivalent, true -> '\002'
    | Inequivalent _, true -> '\003');
  add_u32 buf last_hit;
  add_u32 buf (String.length key);
  Buffer.add_string buf key;
  if tagged then begin
    Buffer.add_char buf (Char.chr (String.length kind));
    Buffer.add_string buf kind
  end;
  (match v with
  | Equivalent -> ()
  | Inequivalent cex ->
      add_u32 buf (List.length cex);
      List.iter
        (fun (pos, b) ->
          add_u32 buf pos;
          Buffer.add_char buf (if b then '\001' else '\000'))
        cex);
  Buffer.contents buf

let decode_payload s =
  let len = String.length s in
  if len < 9 then None
  else begin
    let tag = Char.code s.[0] in
    let last_hit = get_u32 s 1 in
    let klen = get_u32 s 5 in
    if 9 + klen > len then None
    else begin
      let key = String.sub s 9 klen in
      let off = 9 + klen in
      (* tags 2/3 interpose the kind string before any cex payload *)
      let kinded =
        if tag < 2 then Some (default_kind, off)
        else if off >= len then None
        else begin
          let kl = Char.code s.[off] in
          if off + 1 + kl > len then None
          else Some (String.sub s (off + 1) kl, off + 1 + kl)
        end
      in
      match kinded with
      | None -> None
      | Some (kind, off) -> (
          match tag with
          | 0 | 2 -> if off = len then Some (key, Equivalent, kind, last_hit) else None
          | 1 | 3 ->
              if len - off < 4 then None
              else begin
                let n = get_u32 s off in
                if off + 4 + (n * 5) <> len then None
                else
                  let cex =
                    List.init n (fun i ->
                        let o = off + 4 + (i * 5) in
                        (get_u32 s o, s.[o + 4] = '\001'))
                  in
                  Some (key, Inequivalent cex, kind, last_hit)
              end
          | _ -> None)
    end
  end

let output_record oc ~last_hit ~kind key v =
  let payload = encode_payload ~last_hit ~kind key v in
  let buf = Buffer.create (String.length payload + 8) in
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.output_buffer oc buf

(* ---------- log parsing ---------- *)

exception Bad of string

(* Returns the records of the valid prefix (file order) and, when the file
   is damaged, the reason parsing stopped.  Never raises on content. *)
let load_records path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let len = in_channel_length ic in
  if len < String.length magic then ([], Some "truncated header")
  else if really_input_string ic (String.length magic) <> magic then
    ([], Some "bad magic")
  else begin
    let acc = ref [] in
    let err = ref None in
    (try
       while pos_in ic < len do
         if len - pos_in ic < 8 then raise (Bad "torn record header");
         let hdr = really_input_string ic 8 in
         let plen = get_u32 hdr 0 in
         let crc = get_u32 hdr 4 in
         if plen > max_payload then raise (Bad "implausible record length");
         if len - pos_in ic < plen then raise (Bad "torn record payload");
         let payload = really_input_string ic plen in
         if crc32 payload <> crc then raise (Bad "CRC mismatch");
         match decode_payload payload with
         | None -> raise (Bad "malformed payload")
         | Some r -> acc := r :: !acc
       done
     with Bad reason -> err := Some reason);
    (List.rev !acc, !err)
  end

(* ---------- the store ---------- *)

type slot = { verdict : verdict; kind : string; mutable last_hit : int }

type t = {
  dir : string;
  path : string;
  capacity : int;
  m : Mutex.t;  (* in-process exclusion (fcntl locks are per-process) *)
  lock_fd : Unix.file_descr;  (* advisory cross-process lock ([dir]/lock) *)
  tbl : (string, slot) Hashtbl.t;
  mutable gen : int;  (* LRU logical clock, > every loaded last_hit *)
  mutable oc : out_channel option;  (* append channel; None once closed *)
  mutable closed : bool;
  (* true exactly while [file_locked] holds the advisory lock.  Written
     under [m] (the one exception is [open_], before the handle is
     shared); lets [close] assert it never closes [lock_fd] while the
     lock is held — releasing an flock by closing the fd mid-critical-
     section would silently break cross-process exclusion. *)
  mutable lock_held : bool;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable evictions : int;
  mutable compactions : int;
  mutable quarantined_to : string option;
}

let check_open t = if t.closed then invalid_arg "Store: store is closed"

(* Advisory lock over the side lock file, held across every file access.
   fcntl-style locks are per-process, so two handles on one directory in
   the same process do not exclude each other here — the [m] mutex of each
   handle plus O_APPEND record atomicity keeps that case safe. *)
let file_locked t f =
  Unix.lockf t.lock_fd Unix.F_LOCK 0;
  t.lock_held <- true;
  Fun.protect
    ~finally:(fun () ->
      t.lock_held <- false;
      try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_append path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  (* a fresh (or externally deleted) file needs its header before any
     record lands *)
  if out_channel_length oc = 0 then begin
    output_string oc magic;
    flush oc
  end;
  oc

(* Atomically replaces the log with the current in-memory state (tmp file
   + rename), then reopens the append channel.  Caller holds [m] and the
   file lock. *)
let rewrite_locked t =
  (match t.oc with
  | Some oc -> close_out_noerr oc; t.oc <- None
  | None -> ());
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  (try
     output_string oc magic;
     Hashtbl.iter
       (fun k s -> output_record oc ~last_hit:s.last_hit ~kind:s.kind k s.verdict)
       t.tbl;
     close_out oc
   with e -> close_out_noerr oc; raise e);
  Sys.rename tmp t.path;
  t.oc <- Some (open_append t.path)

(* Folds the log's records into the in-memory index: unknown keys are
   adopted (another process's appends), known keys only refresh recency —
   the first verdict for a signature wins, and any two verdicts for one
   signature agree by construction anyway. *)
let merge_file_locked t =
  if Sys.file_exists t.path then begin
    let records, _damaged = load_records t.path in
    List.iter
      (fun (k, v, kind, lh) ->
        t.gen <- max t.gen (lh + 1);
        match Hashtbl.find_opt t.tbl k with
        | Some s -> s.last_hit <- max s.last_hit lh
        | None -> Hashtbl.add t.tbl k { verdict = v; kind; last_hit = lh })
      records
  end

(* Eviction target after a capacity compaction: low enough that the next
   compaction is ~capacity/4 insertions away (amortized cost), high
   enough to keep most of the working set. *)
let evict_target capacity = max 1 (capacity * 3 / 4)

let compact_locked t =
  merge_file_locked t;
  let n = Hashtbl.length t.tbl in
  if n > t.capacity then begin
    let arr = Array.make n ("", 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun k s ->
        arr.(!i) <- (k, s.last_hit);
        incr i)
      t.tbl;
    Array.sort (fun (_, a) (_, b) -> compare (a : int) b) arr;
    let drop = n - evict_target t.capacity in
    for j = 0 to drop - 1 do
      Hashtbl.remove t.tbl (fst arr.(j))
    done;
    t.evictions <- t.evictions + drop;
    Obs.count "store.evictions" drop
  end;
  rewrite_locked t;
  t.compactions <- t.compactions + 1

let quarantine_path dir =
  let rec go k =
    let p = Filename.concat dir (Printf.sprintf "%s.quarantine.%d" file_name k) in
    if Sys.file_exists p then go (k + 1) else p
  in
  go 0

let open_ ?(capacity = default_capacity) dir =
  Obs.span ~name:"store.open" ~attrs:[ ("dir", Obs.String dir) ] @@ fun () ->
  mkdirs dir;
  let lock_fd =
    Unix.openfile (Filename.concat dir "lock") [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let t =
    {
      dir;
      path = Filename.concat dir file_name;
      capacity = max 1 capacity;
      m = Mutex.create ();
      lock_fd;
      tbl = Hashtbl.create 1024;
      gen = 0;
      oc = None;
      closed = false;
      lock_held = false;
      hits = 0;
      misses = 0;
      writes = 0;
      evictions = 0;
      compactions = 0;
      quarantined_to = None;
    }
  in
  file_locked t (fun () ->
      let size = try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0 in
      if size > 0 then begin
        let records, damaged = load_records t.path in
        List.iter
          (fun (k, v, kind, lh) ->
            t.gen <- max t.gen (lh + 1);
            match Hashtbl.find_opt t.tbl k with
            | Some s -> s.last_hit <- max s.last_hit lh
            | None -> Hashtbl.add t.tbl k { verdict = v; kind; last_hit = lh })
          records;
        match damaged with
        | None -> t.oc <- Some (open_append t.path)
        | Some reason ->
            (* quarantine the damaged file and cold-start from the salvaged
               valid prefix: a crash or bit flip must never be fatal *)
            let q = quarantine_path dir in
            Sys.rename t.path q;
            t.quarantined_to <- Some q;
            Obs.instant "store.quarantine"
              ~attrs:
                [ ("reason", Obs.String reason); ("quarantined_to", Obs.String q) ];
            rewrite_locked t
      end
      else t.oc <- Some (open_append t.path));
  Obs.attr (fun () ->
      [
        ("entries", Obs.Int (Hashtbl.length t.tbl));
        ("quarantined", Obs.Bool (t.quarantined_to <> None));
      ]);
  t

(* Idempotent teardown.  The whole body runs under [m], so a second call
   — or two concurrent ones — finds [closed] already set and does
   nothing; an operation racing [close] either completes first (it held
   [m]) or fails cleanly on its own [check_open], never on a closed fd,
   because [closed] flips before any fd is touched.  Holding [m] also
   means [file_locked] cannot be in flight, which the assertion pins
   down: closing [lock_fd] while the advisory lock is held would release
   the cross-process lock out from under the critical section.  The
   append channel closes with [close_out] (not [_noerr]): this is the
   server's drain path, and a failed final flush must be loud, but the
   lock fd is closed even then. *)
let close t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    assert (not t.lock_held);
    Fun.protect
      ~finally:(fun () ->
        try Unix.close t.lock_fd with Unix.Unix_error _ -> ())
      (fun () ->
        match t.oc with
        | Some oc ->
            t.oc <- None;
            close_out oc
        | None -> ())
  end

(* [check_open] runs under [m] in every operation: a closed flag read
   outside the mutex could pass just before a concurrent [close], and the
   operation would then act on a closed fd. *)
let find t key =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  check_open t;
  match Hashtbl.find_opt t.tbl key with
  | Some s ->
      s.last_hit <- t.gen;
      t.gen <- t.gen + 1;
      t.hits <- t.hits + 1;
      Obs.count "store.hit" 1;
      Some s.verdict
  | None ->
      t.misses <- t.misses + 1;
      Obs.count "store.miss" 1;
      None

let mem t key =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  check_open t;
  Hashtbl.mem t.tbl key

(* The append channel can be left pointing at a replaced inode when some
   other process compacts (rename over the path): re-sync before writing. *)
let resync_append_locked t =
  let oc =
    match t.oc with Some oc -> oc | None -> let oc = open_append t.path in t.oc <- Some oc; oc
  in
  let stale =
    try
      let here = Unix.fstat (Unix.descr_of_out_channel oc) in
      let disk = Unix.stat t.path in
      here.Unix.st_ino <> disk.Unix.st_ino || here.Unix.st_dev <> disk.Unix.st_dev
    with Unix.Unix_error _ -> true (* path gone: reopen recreates it *)
  in
  if stale then begin
    close_out_noerr oc;
    let oc = open_append t.path in
    t.oc <- Some oc;
    oc
  end
  else oc

let add ?(kind = default_kind) t key v =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  check_open t;
  if Hashtbl.mem t.tbl key then false
  else begin
    let lh = t.gen in
    t.gen <- t.gen + 1;
    Hashtbl.add t.tbl key { verdict = v; kind; last_hit = lh };
    file_locked t (fun () ->
        let oc = resync_append_locked t in
        output_record oc ~last_hit:lh ~kind key v;
        flush oc);
    t.writes <- t.writes + 1;
    Obs.count "store.write" 1;
    if Hashtbl.length t.tbl > t.capacity then
      Obs.span ~name:"store.compact"
        ~attrs:[ ("trigger", Obs.String "capacity") ]
        (fun () -> file_locked t (fun () -> compact_locked t));
    true
  end

let compact t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  check_open t;
  Obs.span ~name:"store.compact"
    ~attrs:[ ("trigger", Obs.String "manual") ]
    (fun () -> file_locked t (fun () -> compact_locked t))

let clear t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  check_open t;
  Hashtbl.reset t.tbl;
  file_locked t (fun () -> rewrite_locked t)

let info t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
  let by_kind = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ s ->
      Hashtbl.replace by_kind s.kind
        (1 + Option.value (Hashtbl.find_opt by_kind s.kind) ~default:0))
    t.tbl;
  let kinds =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind [])
  in
  {
    entries = Hashtbl.length t.tbl;
    kinds;
    capacity = t.capacity;
    file_bytes =
      (try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0);
    hits = t.hits;
    misses = t.misses;
    writes = t.writes;
    evictions = t.evictions;
    compactions = t.compactions;
    quarantined_to = t.quarantined_to;
  }

let pp_info ppf i =
  Format.fprintf ppf
    "%d entries (capacity %d)%s, %d bytes on disk, %d hits, %d misses, %d writes, %d evictions, %d compactions%s"
    i.entries i.capacity
    (match i.kinds with
    | [] | [ ("flat", _) ] -> ""
    | kinds ->
        Printf.sprintf " [%s]"
          (String.concat ", "
             (List.map (fun (k, n) -> Printf.sprintf "%s: %d" k n) kinds)))
    i.file_bytes i.hits i.misses i.writes i.evictions i.compactions
    (match i.quarantined_to with
    | None -> ""
    | Some q -> ", corrupt log quarantined to " ^ q)

(* keep the unused-field warning quiet: [dir] documents the handle and is
   useful in the debugger *)
let _ = fun t -> t.dir
