(** Persistent content-addressed verdict store.

    A crash-safe on-disk map from structural cone signatures (see
    {!Aig.cone_signature}) to combinational verdicts, shared across runs
    and across processes.  Because keys are purely structural and
    counterexamples are stored over {e canonical input positions}
    (first-visit DFS order), a verdict proven in one run transfers to a
    structurally identical cone pair in any later run — the same cone at
    another unrolling depth, under renamed signals, or in a differently
    named circuit.

    {b Format.}  One directory holds an append-only binary log
    ([verdicts.bin]: an 8-byte versioned magic header followed by
    length-prefixed, CRC32-guarded records) and an advisory lock file
    ([lock]).  New verdicts are appended write-through; compaction
    rewrites the log through a temporary file and an atomic rename, so a
    crash at any instant leaves either the old or the new file, never a
    torn one.

    {b Sharing.}  One {!t} may be used from many domains (operations are
    mutex-guarded), and many processes may share one directory: every
    file access happens under an advisory [lockf] lock on the side lock
    file, and appends go through [O_APPEND].  Reads are served from the
    in-memory index loaded at {!open_} — verdicts appended by another
    process after that point become visible on the next open or
    {!compact} (which re-reads and merges the log before rewriting it).

    {b Capacity.}  The store holds at most [capacity] verdicts.  Growing
    past the bound triggers a compaction that evicts the
    least-recently-hit entries down to 3/4 of capacity; last-hit order is
    persisted at compaction time, so recency survives across runs
    (approximately: hits between compactions are only in memory).

    {b Corruption.}  A log that fails validation — bad magic, torn or
    bit-flipped record — is never fatal: the valid prefix is salvaged,
    the damaged file is renamed aside (quarantined), and a fresh log is
    written from the salvaged entries.  {!info} reports the quarantine
    path so callers can log it. *)

type t

type verdict =
  | Equivalent
  | Inequivalent of (int * bool) list
      (** counterexample over canonical cone-input positions, exactly the
          payload the {!Cec} cache stores; [Undecided] verdicts are never
          persisted *)

type info = {
  entries : int;  (** verdicts in the in-memory index *)
  capacity : int;
  file_bytes : int;  (** current size of [verdicts.bin] *)
  hits : int;  (** successful {!find}s since open *)
  misses : int;
  writes : int;  (** records appended since open *)
  evictions : int;  (** entries dropped by capacity compactions since open *)
  compactions : int;  (** compaction passes since open (manual + automatic) *)
  quarantined_to : string option;
      (** set when {!open_} found a corrupt log and renamed it aside *)
  kinds : (string * int) list;
      (** entry counts per record {e kind} (sorted by kind name) — e.g.
          [("flat", _)] for combinational cone verdicts, [("hier", _)]
          for per-module hierarchical verdicts *)
}

val default_capacity : int
(** 262144 entries. *)

val default_dir : string
(** [".seqver-cache"] — the conventional per-repo cache directory (the
    CLI's [--cache-dir] default for the [cache] subcommand). *)

val file_name : string
(** ["verdicts.bin"], the log file inside the store directory. *)

val open_ : ?capacity:int -> string -> t
(** [open_ dir] opens (creating the directory and an empty log if needed)
    and loads the verdict store in [dir].  Corrupt logs are quarantined,
    never raised on — see {!info}.
    @raise Unix.Unix_error when the directory cannot be created or the
    log cannot be opened at all (permissions, not corruption). *)

val close : t -> unit
(** Flushes and closes the log and lock file descriptors.  Verdicts are
    durable as soon as {!add} returns; [close] is hygiene, not a commit
    point.  Idempotent: closing twice (or from two domains at once) is a
    no-op after the first, and an operation racing [close] either
    completes first or raises [Invalid_argument] — it never touches a
    closed descriptor, and the advisory cross-process lock is never
    released by closing its fd mid-critical-section.  Further operations
    on a closed store raise [Invalid_argument]; a failed final flush
    propagates (data loss is not silent). *)

val find : t -> string -> verdict option
(** In-memory index lookup; a hit refreshes the entry's recency. *)

val mem : t -> string -> bool

val add : ?kind:string -> t -> string -> verdict -> bool
(** [add t key v] appends the record write-through and returns [true], or
    returns [false] without touching the file when [key] is already
    present (first verdict wins — verdicts for one signature are unique,
    so a duplicate is always benign).  May trigger an automatic
    capacity compaction.

    [kind] (default ["flat"], at most 255 bytes) tags the record's schema
    class so mixed caches stay attributable ({!info}[.kinds]) and
    readable across versions: ["flat"] records use the original framing
    (byte-identical to pre-kind logs), any other kind is written with a
    newer record tag that {e pre-kind readers quarantine} — a safe cold
    start, never a misread. *)

val compact : t -> unit
(** Re-reads the log (merging records appended by other processes),
    evicts least-recently-hit entries if over capacity, and atomically
    rewrites the log with persisted recency. *)

val clear : t -> unit
(** Drops every entry and truncates the log to a fresh header. *)

val info : t -> info
val pp_info : Format.formatter -> info -> unit

(**/**)

val crc32 : string -> int
(** Exposed for tests: IEEE CRC-32 of a string, as a non-negative int. *)
