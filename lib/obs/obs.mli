(** Structured tracing and metrics.

    A dependency-free (stdlib + one local C stub) observability layer:
    hierarchical
    {e spans}, named {e counters} and point {e instants}, buffered in
    per-domain lock-free event buffers and merged at collection time, so
    instrumenting code that runs inside a {!Par.Pool} never contends on
    the hot path.

    The global sink is disabled by default; every emitting call then costs
    a branch or two (atomic loads) plus whatever the caller spent
    building its arguments — instrumentation sites that would allocate
    should pass attributes through the lazy {!attr} form.  Timing helpers
    ({!timed_span}) measure even while disabled, so derived statistics
    (e.g. {!Cec.stats}) stay correct with tracing off.

    Three sinks render a collected event list: {!Chrome} (trace-event
    JSON, loadable in Perfetto, one track per domain), {!Summary} (a
    span-tree with self/total times) and {!Jsonl} (structured events, one
    JSON object per line).  A synchronous {!set_hook} feeds live progress
    displays. *)

module Clock : sig
  external now : unit -> float = "obs_clock_monotonic_s"
  (** Monotonic seconds ([clock_gettime(CLOCK_MONOTONIC)] via a local C
      stub); immune to NTP steps, so deadlines and span durations never
      jump.  The epoch is arbitrary — only differences are meaningful. *)
end

(** Attribute values attached to spans and instants. *)
type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

type event =
  | Begin of { name : string; t : float; dom : int; attrs : attrs }
  | End of { name : string; t : float; dom : int; attrs : attrs }
  | Instant of { name : string; t : float; dom : int; attrs : attrs }
  | Count of { name : string; t : float; dom : int; n : int }
      (** [dom] is the integer id of the domain that emitted the event;
          [t] is a {!Clock} timestamp. *)

(** {1 Recording} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turns the global sink on.  Events emitted before [enable] are not
    retroactively recorded. *)

val disable : unit -> unit

val counters_enabled : unit -> bool

val enable_counters : unit -> unit
(** Turns on {e live counters} — a switch independent of {!enable}:
    {!count} calls accumulate into per-domain tables (no event buffering,
    so memory stays bounded over an arbitrarily long run) and
    {!Counters.snapshot} reads the merged totals at any time.  This is
    the long-lived server's stats source: full tracing would grow the
    event buffers without bound, live counters do not. *)

val disable_counters : unit -> unit

val reset : unit -> unit
(** Drops all buffered events and zeroes the live counter accumulators.
    Call only while no other domain is emitting (e.g. between benchmark
    runs). *)

val collect : unit -> event list
(** Merges every domain's buffer into one list sorted by timestamp
    (stable, so each domain's own order is preserved).  Safe to call
    after the emitting domains have been joined; collecting while they
    still run yields a consistent prefix of each buffer. *)

val set_hook : (event -> unit) option -> unit
(** Synchronous observer called on every emitted event {e in addition to}
    buffering, from the emitting domain — it must be thread-safe and
    fast.  Only invoked while {!enabled}. *)

(** {1 Emitting} *)

val span : name:string -> ?attrs:attrs -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f] inside a span: a [Begin] event, then [f ()],
    then an [End] event (also on exceptions).  Spans nest per domain.
    Disabled: exactly [f ()]. *)

val timed_span : name:string -> ?attrs:attrs -> (unit -> 'a) -> 'a * float
(** Like {!span} but also returns [f]'s wall-clock seconds.  The duration
    is measured even when tracing is disabled (two clock reads), so stats
    fields can be derived from the span instrumentation alone. *)

val attr : (unit -> attrs) -> unit
(** Attaches attributes to the innermost open span of the calling domain;
    they are carried on its [End] event.  The thunk is only evaluated
    when tracing is enabled — use this for attributes whose construction
    allocates (end-of-call counter deltas and the like). *)

val instant : ?attrs:attrs -> string -> unit
(** A point event (cache hit, escalation, cancellation...). *)

val count : string -> int -> unit
(** [count name n] increments counter [name] by [n].  Per-domain buffers
    make this contention-free; totals are merged at collection time.
    Under {!enable_counters} the increment additionally lands in the
    domain's live accumulator (readable via {!Counters.snapshot}),
    whether or not tracing is enabled. *)

(** {1 Sinks} *)

module Counters : sig
  val totals : event list -> (string * int) list
  (** Counter sums across all domains, sorted by name. *)

  val snapshot : unit -> (string * int) list
  (** Current live-counter totals merged across every domain, sorted by
      name — empty unless {!enable_counters} is (or was) on.  Safe to
      call from any domain while others are counting; the result is a
      consistent-per-counter snapshot (counters are summed one domain at
      a time, so a concurrent increment may or may not be included). *)
end

module Chrome : sig
  (** Chrome trace-event JSON ({{:https://ui.perfetto.dev}Perfetto}, or
      [chrome://tracing]): one [pid], one [tid] (track) per domain,
      [B]/[E] duration events with [args], [i] instants, [C] counters
      (running totals).  Timestamps are microseconds from the earliest
      collected event. *)

  val write : out_channel -> event list -> unit
  val to_string : event list -> string
end

module Jsonl : sig
  (** One JSON object per line:
      [{"type":"begin"|"end"|"instant"|"count","name":...,"t":...,
        "dom":...,...}]. *)

  val write : out_channel -> event list -> unit
  val to_string : event list -> string
end

module Summary : sig
  type node = {
    name : string;
    count : int;  (** completed spans aggregated into this node *)
    total : float;  (** summed durations (CPU-like: across domains) *)
    self : float;  (** [total] minus time inside child spans *)
    children : node list;  (** sorted by [total], largest first *)
  }

  val tree : event list -> node list
  (** Aggregates spans by name path: the same name under the same parent
      path is one node, merged across domains.  Spans left open are
      closed at their domain's last event. *)

  val pp : Format.formatter -> event list -> unit
  (** Renders the tree plus counter totals, durations in seconds. *)
end
