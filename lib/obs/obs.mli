(** Structured tracing and metrics.

    A dependency-free (stdlib + one local C stub) observability layer:
    hierarchical
    {e spans}, named {e counters}, {e histograms}, {e gauges} and point
    {e instants}, buffered in per-domain lock-free event buffers and
    merged at collection time, so instrumenting code that runs inside a
    {!Par.Pool} never contends on the hot path.

    The global sink is disabled by default; every emitting call then costs
    a branch or two (atomic loads) plus whatever the caller spent
    building its arguments — instrumentation sites that would allocate
    should pass attributes through the lazy {!attr} form.  Timing helpers
    ({!timed_span}) measure even while disabled, so derived statistics
    (e.g. {!Cec.stats}) stay correct with tracing off.

    Three sinks render a collected event list: {!Chrome} (trace-event
    JSON, loadable in Perfetto, one track per domain), {!Summary} (a
    span-tree with self/total times) and {!Jsonl} (structured events, one
    JSON object per line).  {!Prom} renders the {e live} metrics
    (counters, gauges, histograms) in Prometheus text exposition format.
    A synchronous {!set_hook} feeds live progress displays. *)

module Clock : sig
  external now : unit -> float = "obs_clock_monotonic_s"
  (** Monotonic seconds ([clock_gettime(CLOCK_MONOTONIC)] via a local C
      stub); immune to NTP steps, so deadlines and span durations never
      jump.  The epoch is arbitrary — only differences are meaningful. *)
end

(** Attribute values attached to spans and instants. *)
type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

type event =
  | Begin of { name : string; t : float; dom : int; attrs : attrs }
  | End of { name : string; t : float; dom : int; attrs : attrs }
  | Instant of { name : string; t : float; dom : int; attrs : attrs }
  | Count of { name : string; t : float; dom : int; n : int }
      (** [dom] is the integer id of the domain that emitted the event;
          [t] is a {!Clock} timestamp. *)

(** {1 Recording} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turns the global sink on.  Events emitted before [enable] are not
    retroactively recorded. *)

val disable : unit -> unit

val counters_enabled : unit -> bool

val enable_counters : unit -> unit
(** Turns on {e live metrics} — a switch independent of {!enable}:
    {!count} calls accumulate into per-domain tables, {!observe} into
    per-domain histogram accumulators and {!Gauge} writes into a shared
    gauge table (no event buffering, so memory stays bounded over an
    arbitrarily long run); {!Counters.snapshot}, {!Histogram.snapshot}
    and {!Gauge.snapshot} read merged values at any time.  This is the
    long-lived server's metrics source. *)

val disable_counters : unit -> unit

val reset : unit -> unit
(** Drops all buffered events and zeroes the live counter, histogram and
    gauge accumulators.  Safe to call while other domains are emitting:
    the event buffers are invalidated by bumping a global generation
    (each owner lazily abandons its stale buffer on the next emit, so a
    concurrent append can never resurrect pre-reset events), and the
    accumulator tables are cleared under their own locks.  Events a
    racing domain emits {e during} the reset may land on either side of
    it; there is no torn state. *)

val set_buffer_cap : int -> unit
(** Caps each domain's event buffer at [n] events (clamped to >= 1;
    default 1_000_000).  Once a domain's buffer is full, further events
    from it are discarded and counted in {!dropped_events} — so enabling
    tracing in a long-lived server degrades to a bounded window instead
    of growing memory without bound.  {!reset} empties the buffers and
    restarts the window. *)

val buffer_cap : unit -> int

val dropped_events : unit -> int
(** Events discarded by the buffer cap since the last {!reset}, summed
    across domains.  Also exported by {!Prom} as
    [seqver_obs_dropped_events_total]. *)

val collect : unit -> event list
(** Merges every domain's buffer into one list sorted by timestamp
    (stable, so each domain's own order is preserved).  Safe to call
    after the emitting domains have been joined; collecting while they
    still run yields a consistent prefix of each buffer. *)

val capture : (unit -> 'a) -> 'a * event list
(** [capture f] runs [f] and returns the span/instant/count events the
    {e calling domain} emitted during it, in emission order — whether or
    not the global sink is {!enabled} (events still land in the global
    buffers only when it is).  This is the request-scoped tracing
    primitive: a server wraps one request in [capture] and keeps the
    event list in a bounded ring without ever turning global tracing on.
    Work the request hands to other domains (pool tasks) is not
    captured.  Captures nest by shadowing: an inner capture takes the
    events.  At most 10_000 events are kept per capture; the excess is
    discarded.  Cost when no capture is active anywhere: one extra
    atomic load per (otherwise disabled) site. *)

val set_hook : (event -> unit) option -> unit
(** Synchronous observer called on every emitted event {e in addition to}
    buffering, from the emitting domain — it must be thread-safe and
    fast.  Only invoked while {!enabled}. *)

(** {1 Emitting} *)

val span : name:string -> ?attrs:attrs -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f] inside a span: a [Begin] event, then [f ()],
    then an [End] event (also on exceptions).  Spans nest per domain.
    Disabled: exactly [f ()]. *)

val timed_span : name:string -> ?attrs:attrs -> (unit -> 'a) -> 'a * float
(** Like {!span} but also returns [f]'s wall-clock seconds.  The duration
    is measured even when tracing is disabled (two clock reads), so stats
    fields can be derived from the span instrumentation alone. *)

val attr : (unit -> attrs) -> unit
(** Attaches attributes to the innermost open span of the calling domain;
    they are carried on its [End] event.  The thunk is only evaluated
    when tracing (or a capture) is active — use this for attributes whose
    construction allocates (end-of-call counter deltas and the like). *)

val instant : ?attrs:attrs -> string -> unit
(** A point event (cache hit, escalation, cancellation...). *)

val count : string -> int -> unit
(** [count name n] increments counter [name] by [n].  Per-domain buffers
    make this contention-free; totals are merged at collection time.
    Under {!enable_counters} the increment additionally lands in the
    domain's live accumulator (readable via {!Counters.snapshot}),
    whether or not tracing is enabled. *)

val observe : string -> float -> unit
(** [observe name v] records sample [v] into live histogram [name] —
    the distribution-valued sibling of {!count}.  Only active under
    {!enable_counters}; the sample lands in the calling domain's own
    accumulator (a bucket increment under an uncontended per-domain
    lock), merged across domains by {!Histogram.snapshot}.  Disabled
    cost: one atomic load. *)

(** {1 Live metrics} *)

(** Mergeable log-linear histograms.  Buckets are base-2 octaves split
    into 8 linear sub-buckets, covering [2^-20, 2^10) (~1 microsecond to
    ~17 minutes when samples are seconds) plus underflow/overflow
    buckets — 242 buckets, so a quantile estimate is off by at most one
    bucket width, i.e. a relative error of at most 12.5%
    ({!Histogram.max_relative_error}). *)
module Histogram : sig
  type snap = {
    name : string;
    count : int;  (** total samples *)
    sum : float;  (** sum of samples *)
    buckets : (float * int) list;
        (** non-empty buckets as [(upper_bound, count)], ascending;
            a bucket covers [(lower, upper_bound]] where [lower] is the
            previous bucket's bound; the overflow bucket's bound is
            [infinity] *)
  }

  val max_relative_error : float
  (** Worst-case relative width of a finite bucket: 1/8. *)

  val snapshot : unit -> snap list
  (** Current histograms merged across every domain, sorted by name —
      empty unless {!enable_counters} is (or was) on.  Safe concurrently
      with {!observe} (per-domain accumulators are read under their own
      locks, one domain at a time). *)

  val find : string -> snap option
  (** [find name] = the named histogram from a fresh {!snapshot}. *)

  val quantile : snap -> float -> float
  (** [quantile s q] for [q] in [0,1]: the upper bound of the bucket
      holding the nearest-rank sample — an overestimate of the exact
      quantile by at most one bucket width.  Overflow-bucket ranks clamp
      to the largest finite bound; [0.] when the histogram is empty. *)

  val bucket_bounds_of_value : float -> float * float
  (** [(lower, upper)] bounds of the bucket sample [v] falls in — the
      interval a {!quantile} answer is accurate to.  Exposed for tests
      and for the bench's histogram-vs-exact cross-check. *)

  val nearest_rank : float array -> float -> float
  (** Exact nearest-rank percentile of a {e sorted} array: the element at
      rank [ceil (q * n)] (1-based), clamped to the array.  The reference
      definition histogram quantiles are checked against; also the
      bench's exact percentile. *)
end

(** Named gauges: last-written values (queue depth, in-flight requests,
    pool workers...).  A single shared table under one lock — gauge
    writes are low-frequency control-path events, unlike {!observe}. *)
module Gauge : sig
  val set : string -> float -> unit
  (** Only active under {!enable_counters}. *)

  val add : string -> float -> unit

  val snapshot : unit -> (string * float) list
  (** Sorted by name. *)
end

(** {1 Sinks} *)

module Counters : sig
  val totals : event list -> (string * int) list
  (** Counter sums across all domains, sorted by name. *)

  val snapshot : unit -> (string * int) list
  (** Current live-counter totals merged across every domain, sorted by
      name — empty unless {!enable_counters} is (or was) on.  Safe to
      call from any domain while others are counting; the result is a
      consistent-per-counter snapshot (counters are summed one domain at
      a time, so a concurrent increment may or may not be included). *)
end

module Prom : sig
  (** Prometheus text exposition (format 0.0.4) over the {e live}
      metrics: every counter as [seqver_<name>_total], every gauge as
      [seqver_<name>], every histogram as [seqver_<name>] with cumulative
      [_bucket{le="..."}] lines (only non-empty buckets, plus the
      mandatory [+Inf]), [_sum] and [_count], each preceded by
      [# HELP]/[# TYPE].  Metric names are sanitized to
      [[a-zA-Z0-9_:]].  Serve with
      [Content-Type: text/plain; version=0.0.4]. *)

  val to_string : unit -> string
end

module Chrome : sig
  (** Chrome trace-event JSON ({{:https://ui.perfetto.dev}Perfetto}, or
      [chrome://tracing]): one [pid], one [tid] (track) per domain,
      [B]/[E] duration events with [args], [i] instants, [C] counters
      (running totals).  Timestamps are microseconds from the earliest
      collected event. *)

  val write : out_channel -> event list -> unit
  val to_string : event list -> string
end

module Jsonl : sig
  (** One JSON object per line:
      [{"type":"begin"|"end"|"instant"|"count","name":...,"t":...,
        "dom":...,...}]. *)

  val write : out_channel -> event list -> unit
  val to_string : event list -> string
end

module Summary : sig
  type node = {
    name : string;
    count : int;  (** completed spans aggregated into this node *)
    total : float;  (** summed durations (CPU-like: across domains) *)
    self : float;  (** [total] minus time inside child spans *)
    children : node list;  (** sorted by [total], largest first *)
  }

  val tree : event list -> node list
  (** Aggregates spans by name path: the same name under the same parent
      path is one node, merged across domains.  Spans left open are
      closed at their domain's last event. *)

  val pp : Format.formatter -> event list -> unit
  (** Renders the tree plus counter totals, durations in seconds. *)
end
