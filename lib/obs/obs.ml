module Clock = struct
  external now : unit -> float = "obs_clock_monotonic_s"
end

type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

type event =
  | Begin of { name : string; t : float; dom : int; attrs : attrs }
  | End of { name : string; t : float; dom : int; attrs : attrs }
  | Instant of { name : string; t : float; dom : int; attrs : attrs }
  | Count of { name : string; t : float; dom : int; n : int }

let time_of = function
  | Begin { t; _ } | End { t; _ } | Instant { t; _ } | Count { t; _ } -> t

let dom_of = function
  | Begin { dom; _ } | End { dom; _ } | Instant { dom; _ } | Count { dom; _ }
    ->
      dom

let dummy = Count { name = ""; t = 0.; dom = 0; n = 0 }

(* ---------- histogram bucket layout ---------- *)

(* Log-linear buckets: base-2 octaves, each split into [h_sub] linear
   sub-buckets, covering [2^h_emin, 2^(h_emax+1)) plus an underflow and
   an overflow bucket.  A finite bucket's width is 2^e / h_sub, i.e. at
   most 1/h_sub of the value itself — the quantile error bound. *)
let h_sub = 8
let h_emin = -20 (* lowest octave: [2^-20, 2^-19) — ~0.95us in seconds *)
let h_emax = 9 (* highest octave: [2^9, 2^10) = [512s, 1024s) *)
let h_nbuckets = ((h_emax - h_emin + 1) * h_sub) + 2
let h_underflow_bound = Float.ldexp 1. h_emin
let h_overflow_lower = Float.ldexp 1. (h_emax + 1)

let h_index v =
  if Float.is_nan v || v < h_underflow_bound then 0
  else if v >= h_overflow_lower then h_nbuckets - 1
  else begin
    let m, p = Float.frexp v in
    (* v = m * 2^p with m in [0.5, 1), so v = (2m) * 2^(p-1), 2m in [1,2) *)
    let e = p - 1 in
    let sub = int_of_float (((m *. 2.) -. 1.) *. float_of_int h_sub) in
    let sub = if sub >= h_sub then h_sub - 1 else if sub < 0 then 0 else sub in
    1 + ((e - h_emin) * h_sub) + sub
  end

(* Inclusive upper bound of bucket [i] (the value reported by quantile
   estimation and rendered as the Prometheus [le] label). *)
let h_bound i =
  if i <= 0 then h_underflow_bound
  else if i >= h_nbuckets - 1 then infinity
  else begin
    let j = i - 1 in
    let e = h_emin + (j / h_sub) and s = j mod h_sub in
    Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int h_sub)) e
  end

let h_lower i = if i <= 0 then 0. else h_bound (i - 1)

(* per-domain histogram accumulator *)
type hacc = { mutable h_count : int; mutable h_sum : float; h_buckets : int array }

let fresh_hacc () =
  { h_count = 0; h_sum = 0.; h_buckets = Array.make h_nbuckets 0 }

(* ---------- per-domain buffers ---------- *)

(* Bumped by [reset]; a buffer whose [epoch] lags is logically empty and
   is abandoned (length zeroed) by its owner on the next emit.  This is
   what makes [reset] safe concurrently with emitters: no foreign domain
   ever writes a buffer's length, so an in-flight append cannot
   resurrect pre-reset events. *)
let generation = Atomic.make 0

(* Per-domain event buffer.  Only the owning domain appends; [len] is
   published with a release store so a collector on another domain sees
   every slot below the length it reads.  Growth replaces [arr] (the old
   array stays valid for concurrent readers holding it). *)
type buf = {
  dom : int;
  mutable arr : event array;
  len : int Atomic.t;
  epoch : int Atomic.t; (* generation this buffer's contents belong to *)
  mutable dropped : int; (* events discarded by the cap, this epoch *)
  mutable cap : (int * event list) ref option;
      (* active request-scoped capture, owner-domain only *)
  (* open spans of this domain, innermost first; each cell accumulates the
     attrs to be carried on the span's End event.  Owner-domain only. *)
  mutable open_spans : (string * attrs ref) list;
  (* live counter/histogram accumulators (see [enable_counters]); written
     by the owning domain, read by snapshots on any domain — both under
     [counts_m].  The per-buf mutex is uncontended except during a
     snapshot, so the owner's increment stays cheap. *)
  counts : (string, int ref) Hashtbl.t;
  hists : (string, hacc) Hashtbl.t;
  counts_m : Mutex.t;
}

let registry : buf list ref = ref []
let registry_m = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          arr = Array.make 256 dummy;
          len = Atomic.make 0;
          epoch = Atomic.make (Atomic.get generation);
          dropped = 0;
          cap = None;
          open_spans = [];
          counts = Hashtbl.create 16;
          hists = Hashtbl.create 16;
          counts_m = Mutex.create ();
        }
      in
      Mutex.lock registry_m;
      registry := b :: !registry;
      Mutex.unlock registry_m;
      b)

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* Live counters are a separate, cheaper switch: no event buffering, just
   per-domain accumulators a server can scrape at any time. *)
let counters_on = Atomic.make false
let counters_enabled () = Atomic.get counters_on
let enable_counters () = Atomic.set counters_on true
let disable_counters () = Atomic.set counters_on false

(* nonzero while any domain has a [capture] in flight; keeps the
   no-tracing fast path at two atomic loads *)
let ncaptures = Atomic.make 0
let capture_event_cap = 10_000

let default_buffer_cap = 1_000_000
let event_cap = Atomic.make default_buffer_cap
let set_buffer_cap n = Atomic.set event_cap (max 1 n)
let buffer_cap () = Atomic.get event_cap

(* gauges are a single shared table: writes are control-path-frequency
   (queue depth on admit/complete), not hot-path *)
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16
let gauges_m = Mutex.create ()

let hook : (event -> unit) option ref = ref None
let set_hook h = hook := h

(* Owner-side: abandon a stale (pre-reset) buffer before appending. *)
let roll_if_stale b =
  let g = Atomic.get generation in
  if Atomic.get b.epoch <> g then begin
    Atomic.set b.len 0;
    b.dropped <- 0;
    b.open_spans <- [];
    Atomic.set b.epoch g
  end

let reset () =
  Atomic.incr generation;
  Mutex.lock registry_m;
  let bufs = !registry in
  Mutex.unlock registry_m;
  List.iter
    (fun b ->
      Mutex.lock b.counts_m;
      Hashtbl.reset b.counts;
      Hashtbl.reset b.hists;
      Mutex.unlock b.counts_m)
    bufs;
  Mutex.lock gauges_m;
  Hashtbl.reset gauges;
  Mutex.unlock gauges_m;
  roll_if_stale (Domain.DLS.get buf_key)

let push b e =
  roll_if_stale b;
  let n = Atomic.get b.len in
  if n >= Atomic.get event_cap then b.dropped <- b.dropped + 1
  else begin
    if n = Array.length b.arr then begin
      let bigger = Array.make (2 * n) dummy in
      Array.blit b.arr 0 bigger 0 n;
      b.arr <- bigger
    end;
    b.arr.(n) <- e;
    Atomic.set b.len (n + 1)
  end;
  match !hook with None -> () | Some f -> f e

(* Every buffered emission funnels through here: the event goes to the
   domain's active capture (if any) and, when the global sink is on, to
   the global buffer. *)
let emit b e =
  (match b.cap with
  | Some r ->
      let n, l = !r in
      if n < capture_event_cap then r := (n + 1, e :: l)
  | None -> ());
  if Atomic.get on then push b e

let dropped_events () =
  let g = Atomic.get generation in
  Mutex.lock registry_m;
  let bufs = !registry in
  Mutex.unlock registry_m;
  List.fold_left
    (fun acc b -> if Atomic.get b.epoch = g then acc + b.dropped else acc)
    0 bufs

let collect () =
  let g = Atomic.get generation in
  Mutex.lock registry_m;
  let bufs = !registry in
  Mutex.unlock registry_m;
  let evs =
    List.concat_map
      (fun b ->
        if Atomic.get b.epoch <> g then [] (* logically emptied by reset *)
        else begin
          let n = Atomic.get b.len in
          let a = b.arr in
          (* if a stale (pre-growth) array is read, expose its prefix only *)
          let n = min n (Array.length a) in
          List.init n (fun i -> a.(i))
        end)
      bufs
  in
  (* stable: within one domain timestamps are non-decreasing, so each
     domain's own event order survives the merge *)
  List.stable_sort (fun e1 e2 -> Float.compare (time_of e1) (time_of e2)) evs

let capture f =
  let b = Domain.DLS.get buf_key in
  let saved = b.cap in
  let r = ref (0, []) in
  b.cap <- Some r;
  Atomic.incr ncaptures;
  let x =
    Fun.protect
      ~finally:(fun () ->
        b.cap <- saved;
        Atomic.decr ncaptures)
      f
  in
  (x, List.rev (snd !r))

(* ---------- emitting ---------- *)

(* fast path: some sink might want events / this domain's sink is live *)
let armed () = Atomic.get on || Atomic.get ncaptures > 0
let live b = Atomic.get on || b.cap <> None

let span ~name ?(attrs = []) f =
  if not (armed ()) then f ()
  else begin
    let b = Domain.DLS.get buf_key in
    if not (live b) then f ()
    else begin
      let cell = ref [] in
      b.open_spans <- (name, cell) :: b.open_spans;
      emit b (Begin { name; t = Clock.now (); dom = b.dom; attrs });
      Fun.protect
        ~finally:(fun () ->
          (match b.open_spans with
          | (_, c) :: rest when c == cell -> b.open_spans <- rest
          | _ -> () (* imbalanced by an enable-toggle mid-span; tolerate *));
          emit b (End { name; t = Clock.now (); dom = b.dom; attrs = !cell }))
        f
    end
  end

let timed_span ~name ?attrs f =
  let t0 = Clock.now () in
  let r = span ~name ?attrs f in
  (r, Clock.now () -. t0)

let attr fattrs =
  if armed () then begin
    let b = Domain.DLS.get buf_key in
    if live b then
      match b.open_spans with
      | (_, cell) :: _ -> cell := !cell @ fattrs ()
      | [] -> ()
  end

let instant ?(attrs = []) name =
  if armed () then begin
    let b = Domain.DLS.get buf_key in
    if live b then emit b (Instant { name; t = Clock.now (); dom = b.dom; attrs })
  end

let count name n =
  if Atomic.get counters_on then begin
    let b = Domain.DLS.get buf_key in
    Mutex.lock b.counts_m;
    (match Hashtbl.find_opt b.counts name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add b.counts name (ref n));
    Mutex.unlock b.counts_m
  end;
  if armed () then begin
    let b = Domain.DLS.get buf_key in
    if live b then emit b (Count { name; t = Clock.now (); dom = b.dom; n })
  end

let observe name v =
  if Atomic.get counters_on then begin
    let b = Domain.DLS.get buf_key in
    Mutex.lock b.counts_m;
    let h =
      match Hashtbl.find_opt b.hists name with
      | Some h -> h
      | None ->
          let h = fresh_hacc () in
          Hashtbl.add b.hists name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    let i = h_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    Mutex.unlock b.counts_m
  end

(* ---------- live metrics ---------- *)

module Histogram = struct
  type snap = {
    name : string;
    count : int;
    sum : float;
    buckets : (float * int) list;
  }

  let max_relative_error = 1. /. float_of_int h_sub

  let bucket_bounds_of_value v =
    let i = h_index v in
    (h_lower i, h_bound i)

  let snapshot () =
    Mutex.lock registry_m;
    let bufs = !registry in
    Mutex.unlock registry_m;
    let tbl : (string, hacc) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Mutex.lock b.counts_m;
        Hashtbl.iter
          (fun k h ->
            let acc =
              match Hashtbl.find_opt tbl k with
              | Some a -> a
              | None ->
                  let a = fresh_hacc () in
                  Hashtbl.add tbl k a;
                  a
            in
            acc.h_count <- acc.h_count + h.h_count;
            acc.h_sum <- acc.h_sum +. h.h_sum;
            Array.iteri
              (fun i n -> acc.h_buckets.(i) <- acc.h_buckets.(i) + n)
              h.h_buckets)
          b.hists;
        Mutex.unlock b.counts_m)
      bufs;
    Hashtbl.fold
      (fun name a l ->
        let buckets = ref [] in
        for i = h_nbuckets - 1 downto 0 do
          if a.h_buckets.(i) > 0 then
            buckets := (h_bound i, a.h_buckets.(i)) :: !buckets
        done;
        { name; count = a.h_count; sum = a.h_sum; buckets = !buckets } :: l)
      tbl []
    |> List.sort (fun s1 s2 -> compare s1.name s2.name)

  let find name = List.find_opt (fun s -> s.name = name) (snapshot ())

  let quantile s q =
    if s.count = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank =
        max 1 (min s.count (int_of_float (Float.ceil (q *. float_of_int s.count))))
      in
      let rec go cum = function
        | [] -> h_overflow_lower
        | (bound, n) :: rest ->
            if cum + n >= rank then
              if Float.is_finite bound then bound else h_overflow_lower
            else go (cum + n) rest
      in
      go 0 s.buckets
    end

  let nearest_rank sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
    end
end

module Gauge = struct
  let update name f =
    if Atomic.get counters_on then begin
      Mutex.lock gauges_m;
      (match Hashtbl.find_opt gauges name with
      | Some r -> r := f !r
      | None -> Hashtbl.add gauges name (ref (f 0.)));
      Mutex.unlock gauges_m
    end

  let set name v = update name (fun _ -> v)
  let add name d = update name (fun x -> x +. d)

  let snapshot () =
    Mutex.lock gauges_m;
    let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges [] in
    Mutex.unlock gauges_m;
    List.sort (fun (a, _) (b, _) -> compare (a : string) b) l
end

(* ---------- sinks ---------- *)

module Counters = struct
  let totals evs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (function
        | Count { name; n; _ } ->
            Hashtbl.replace tbl name
              (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))
        | _ -> ())
      evs;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

  let snapshot () =
    Mutex.lock registry_m;
    let bufs = !registry in
    Mutex.unlock registry_m;
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Mutex.lock b.counts_m;
        Hashtbl.iter
          (fun k r ->
            Hashtbl.replace tbl k
              (!r + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          b.counts;
        Mutex.unlock b.counts_m)
      bufs;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
end

module Prom = struct
  let sanitize name =
    let s =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    if s = "" then "_"
    else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

  let to_buffer buf () =
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    List.iter
      (fun (name, n) ->
        let m = "seqver_" ^ sanitize name ^ "_total" in
        p "# HELP %s Live counter %s.\n" m name;
        p "# TYPE %s counter\n" m;
        p "%s %d\n" m n)
      (Counters.snapshot ());
    let d = dropped_events () in
    p "# HELP %s Trace events discarded by the per-domain buffer cap.\n"
      "seqver_obs_dropped_events_total";
    p "# TYPE seqver_obs_dropped_events_total counter\n";
    p "seqver_obs_dropped_events_total %d\n" d;
    List.iter
      (fun (name, v) ->
        let m = "seqver_" ^ sanitize name in
        p "# HELP %s Gauge %s.\n" m name;
        p "# TYPE %s gauge\n" m;
        p "%s %.9g\n" m v)
      (Gauge.snapshot ());
    List.iter
      (fun (s : Histogram.snap) ->
        let m = "seqver_" ^ sanitize s.name in
        p "# HELP %s Histogram %s.\n" m s.name;
        p "# TYPE %s histogram\n" m;
        let cum = ref 0 in
        List.iter
          (fun (bound, n) ->
            cum := !cum + n;
            if Float.is_finite bound then
              p "%s_bucket{le=\"%.9g\"} %d\n" m bound !cum)
          s.buckets;
        p "%s_bucket{le=\"+Inf\"} %d\n" m s.count;
        p "%s_sum %.9g\n" m s.sum;
        p "%s_count %d\n" m s.count)
      (Histogram.snapshot ())

  let to_string () =
    let buf = Buffer.create 4096 in
    to_buffer buf ();
    Buffer.contents buf
end

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.17g" f
      else Printf.sprintf "\"%h\"" f
  | Bool b -> string_of_bool b
  | String s -> Printf.sprintf "\"%s\"" (json_escape s)

let attrs_to_json attrs =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v))
       attrs)

module Chrome = struct
  let to_buffer buf evs =
    let base = List.fold_left (fun m e -> min m (time_of e)) infinity evs in
    let base = if Float.is_finite base then base else 0. in
    let us t = (t -. base) *. 1e6 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    p "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"seqver\"}}";
    (* one named track per domain *)
    let doms = List.sort_uniq compare (List.map dom_of evs) in
    List.iter
      (fun d ->
        p
          ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
          d d)
      doms;
    (* counter tracks plot running totals *)
    let totals = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e with
        | Begin { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | End { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | Instant { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | Count { name; t; dom; n } ->
            let total =
              n + Option.value ~default:0 (Hashtbl.find_opt totals name)
            in
            Hashtbl.replace totals name total;
            p
              ",\n{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"value\":%d}}"
              (json_escape name) dom (us t) total)
      evs;
    p "]}\n"

  let to_string evs =
    let buf = Buffer.create 4096 in
    to_buffer buf evs;
    Buffer.contents buf

  let write oc evs = output_string oc (to_string evs)
end

module Jsonl = struct
  let to_buffer buf evs =
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let line kind name t dom attrs tail =
      p "{\"type\":\"%s\",\"name\":\"%s\",\"t\":%.9f,\"dom\":%d%s" kind
        (json_escape name) t dom tail;
      (match attrs with
      | [] -> ()
      | attrs -> p ",\"attrs\":{%s}" (attrs_to_json attrs));
      p "}\n"
    in
    List.iter
      (fun e ->
        match e with
        | Begin { name; t; dom; attrs } -> line "begin" name t dom attrs ""
        | End { name; t; dom; attrs } -> line "end" name t dom attrs ""
        | Instant { name; t; dom; attrs } -> line "instant" name t dom attrs ""
        | Count { name; t; dom; n } ->
            line "count" name t dom [] (Printf.sprintf ",\"n\":%d" n))
      evs

  let to_string evs =
    let buf = Buffer.create 4096 in
    to_buffer buf evs;
    Buffer.contents buf

  let write oc evs = output_string oc (to_string evs)
end

module Summary = struct
  type node = {
    name : string;
    count : int;
    total : float;
    self : float;
    children : node list;
  }

  (* aggregation cell: one per (parent path, name) *)
  type acc = {
    mutable a_count : int;
    mutable a_total : float;
    mutable a_child : float;
    a_children : (string, acc) Hashtbl.t;
  }

  let fresh_acc () =
    { a_count = 0; a_total = 0.; a_child = 0.; a_children = Hashtbl.create 4 }

  let tree evs =
    let root = fresh_acc () in
    (* split back into per-domain streams (collect preserved their order) *)
    let by_dom = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let d = dom_of e in
        let l =
          match Hashtbl.find_opt by_dom d with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add by_dom d l;
              l
        in
        l := e :: !l)
      evs;
    let close stack t =
      (* close every span still open at [t], charging parents *)
      List.fold_left
        (fun inner_dur (a, t0) ->
          let d = t -. t0 in
          a.a_count <- a.a_count + 1;
          a.a_total <- a.a_total +. d;
          a.a_child <- a.a_child +. inner_dur;
          d)
        0. stack
      |> ignore
    in
    Hashtbl.iter
      (fun _dom levs ->
        let levs = List.rev !levs in
        let last_t = List.fold_left (fun m e -> max m (time_of e)) 0. levs in
        let stack = ref [] in
        List.iter
          (fun e ->
            match e with
            | Begin { name; t; _ } ->
                let tbl =
                  match !stack with
                  | (a, _) :: _ -> a.a_children
                  | [] -> root.a_children
                in
                let a =
                  match Hashtbl.find_opt tbl name with
                  | Some a -> a
                  | None ->
                      let a = fresh_acc () in
                      Hashtbl.add tbl name a;
                      a
                in
                stack := (a, t) :: !stack
            | End { t; _ } -> (
                match !stack with
                | [] -> () (* unmatched end *)
                | (a, t0) :: rest ->
                    let d = t -. t0 in
                    a.a_count <- a.a_count + 1;
                    a.a_total <- a.a_total +. d;
                    (match rest with
                    | (parent, _) :: _ -> parent.a_child <- parent.a_child +. d
                    | [] -> ());
                    stack := rest)
            | Instant _ | Count _ -> ())
          levs;
        close !stack last_t)
      by_dom;
    let rec nodes_of acc =
      Hashtbl.fold
        (fun name a l ->
          {
            name;
            count = a.a_count;
            total = a.a_total;
            self = Float.max 0. (a.a_total -. a.a_child);
            children = nodes_of a;
          }
          :: l)
        acc.a_children []
      |> List.sort (fun n1 n2 -> Float.compare n2.total n1.total)
    in
    nodes_of root

  let pp ppf evs =
    let t = tree evs in
    Format.fprintf ppf "%-46s %7s %10s %10s@." "span" "count" "total" "self";
    let rec go depth n =
      Format.fprintf ppf "%-46s %7d %9.3fs %9.3fs@."
        (String.make (2 * depth) ' ' ^ n.name)
        n.count n.total n.self;
      List.iter (go (depth + 1)) n.children
    in
    List.iter (go 0) t;
    match Counters.totals evs with
    | [] -> ()
    | cts ->
        Format.fprintf ppf "counters:@.";
        List.iter
          (fun (name, n) -> Format.fprintf ppf "  %-44s %7d@." name n)
          cts
end
