module Clock = struct
  external now : unit -> float = "obs_clock_monotonic_s"
end

type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

type event =
  | Begin of { name : string; t : float; dom : int; attrs : attrs }
  | End of { name : string; t : float; dom : int; attrs : attrs }
  | Instant of { name : string; t : float; dom : int; attrs : attrs }
  | Count of { name : string; t : float; dom : int; n : int }

let time_of = function
  | Begin { t; _ } | End { t; _ } | Instant { t; _ } | Count { t; _ } -> t

let dom_of = function
  | Begin { dom; _ } | End { dom; _ } | Instant { dom; _ } | Count { dom; _ }
    ->
      dom

let dummy = Count { name = ""; t = 0.; dom = 0; n = 0 }

(* Per-domain event buffer.  Only the owning domain appends; [len] is
   published with a release store so a collector on another domain sees
   every slot below the length it reads.  Growth replaces [arr] (the old
   array stays valid for concurrent readers holding it). *)
type buf = {
  dom : int;
  mutable arr : event array;
  len : int Atomic.t;
  (* open spans of this domain, innermost first; each cell accumulates the
     attrs to be carried on the span's End event.  Owner-domain only. *)
  mutable open_spans : (string * attrs ref) list;
  (* live counter accumulators (see [enable_counters]); written by the
     owning domain, read by [Counters.snapshot] on any domain — both under
     [counts_m].  The per-buf mutex is uncontended except during a
     snapshot, so the owner's increment stays cheap. *)
  counts : (string, int ref) Hashtbl.t;
  counts_m : Mutex.t;
}

let registry : buf list ref = ref []
let registry_m = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          arr = Array.make 256 dummy;
          len = Atomic.make 0;
          open_spans = [];
          counts = Hashtbl.create 16;
          counts_m = Mutex.create ();
        }
      in
      Mutex.lock registry_m;
      registry := b :: !registry;
      Mutex.unlock registry_m;
      b)

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* Live counters are a separate, cheaper switch: no event buffering, just
   per-domain accumulators a server can scrape at any time. *)
let counters_on = Atomic.make false
let counters_enabled () = Atomic.get counters_on
let enable_counters () = Atomic.set counters_on true
let disable_counters () = Atomic.set counters_on false

let hook : (event -> unit) option ref = ref None
let set_hook h = hook := h

let reset () =
  Mutex.lock registry_m;
  List.iter
    (fun b ->
      Atomic.set b.len 0;
      Mutex.lock b.counts_m;
      Hashtbl.reset b.counts;
      Mutex.unlock b.counts_m)
    !registry;
  Mutex.unlock registry_m;
  (Domain.DLS.get buf_key).open_spans <- []

let push b e =
  let n = Atomic.get b.len in
  if n = Array.length b.arr then begin
    let bigger = Array.make (2 * n) dummy in
    Array.blit b.arr 0 bigger 0 n;
    b.arr <- bigger
  end;
  b.arr.(n) <- e;
  Atomic.set b.len (n + 1);
  match !hook with None -> () | Some f -> f e

let collect () =
  Mutex.lock registry_m;
  let bufs = !registry in
  Mutex.unlock registry_m;
  let evs =
    List.concat_map
      (fun b ->
        let n = Atomic.get b.len in
        let a = b.arr in
        (* if a stale (pre-growth) array is read, expose its prefix only *)
        let n = min n (Array.length a) in
        List.init n (fun i -> a.(i)))
      bufs
  in
  (* stable: within one domain timestamps are non-decreasing, so each
     domain's own event order survives the merge *)
  List.stable_sort (fun e1 e2 -> Float.compare (time_of e1) (time_of e2)) evs

(* ---------- emitting ---------- *)

let span ~name ?(attrs = []) f =
  if not (Atomic.get on) then f ()
  else begin
    let b = Domain.DLS.get buf_key in
    let cell = ref [] in
    b.open_spans <- (name, cell) :: b.open_spans;
    push b (Begin { name; t = Clock.now (); dom = b.dom; attrs });
    Fun.protect
      ~finally:(fun () ->
        (match b.open_spans with
        | (_, c) :: rest when c == cell -> b.open_spans <- rest
        | _ -> () (* imbalanced by an enable-toggle mid-span; tolerate *));
        push b (End { name; t = Clock.now (); dom = b.dom; attrs = !cell }))
      f
  end

let timed_span ~name ?attrs f =
  let t0 = Clock.now () in
  let r = span ~name ?attrs f in
  (r, Clock.now () -. t0)

let attr fattrs =
  if Atomic.get on then begin
    let b = Domain.DLS.get buf_key in
    match b.open_spans with
    | (_, cell) :: _ -> cell := !cell @ fattrs ()
    | [] -> ()
  end

let instant ?(attrs = []) name =
  if Atomic.get on then begin
    let b = Domain.DLS.get buf_key in
    push b (Instant { name; t = Clock.now (); dom = b.dom; attrs })
  end

let count name n =
  if Atomic.get counters_on then begin
    let b = Domain.DLS.get buf_key in
    Mutex.lock b.counts_m;
    (match Hashtbl.find_opt b.counts name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add b.counts name (ref n));
    Mutex.unlock b.counts_m
  end;
  if Atomic.get on then begin
    let b = Domain.DLS.get buf_key in
    push b (Count { name; t = Clock.now (); dom = b.dom; n })
  end

(* ---------- sinks ---------- *)

module Counters = struct
  let totals evs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (function
        | Count { name; n; _ } ->
            Hashtbl.replace tbl name
              (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))
        | _ -> ())
      evs;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

  let snapshot () =
    Mutex.lock registry_m;
    let bufs = !registry in
    Mutex.unlock registry_m;
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Mutex.lock b.counts_m;
        Hashtbl.iter
          (fun k r ->
            Hashtbl.replace tbl k
              (!r + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          b.counts;
        Mutex.unlock b.counts_m)
      bufs;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
end

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.17g" f
      else Printf.sprintf "\"%h\"" f
  | Bool b -> string_of_bool b
  | String s -> Printf.sprintf "\"%s\"" (json_escape s)

let attrs_to_json attrs =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v))
       attrs)

module Chrome = struct
  let to_buffer buf evs =
    let base = List.fold_left (fun m e -> min m (time_of e)) infinity evs in
    let base = if Float.is_finite base then base else 0. in
    let us t = (t -. base) *. 1e6 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    p "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"seqver\"}}";
    (* one named track per domain *)
    let doms = List.sort_uniq compare (List.map dom_of evs) in
    List.iter
      (fun d ->
        p
          ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
          d d)
      doms;
    (* counter tracks plot running totals *)
    let totals = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e with
        | Begin { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | End { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | Instant { name; t; dom; attrs } ->
            p
              ",\n{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}"
              (json_escape name) dom (us t) (attrs_to_json attrs)
        | Count { name; t; dom; n } ->
            let total =
              n + Option.value ~default:0 (Hashtbl.find_opt totals name)
            in
            Hashtbl.replace totals name total;
            p
              ",\n{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"value\":%d}}"
              (json_escape name) dom (us t) total)
      evs;
    p "]}\n"

  let to_string evs =
    let buf = Buffer.create 4096 in
    to_buffer buf evs;
    Buffer.contents buf

  let write oc evs = output_string oc (to_string evs)
end

module Jsonl = struct
  let to_buffer buf evs =
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let line kind name t dom attrs tail =
      p "{\"type\":\"%s\",\"name\":\"%s\",\"t\":%.9f,\"dom\":%d%s" kind
        (json_escape name) t dom tail;
      (match attrs with
      | [] -> ()
      | attrs -> p ",\"attrs\":{%s}" (attrs_to_json attrs));
      p "}\n"
    in
    List.iter
      (fun e ->
        match e with
        | Begin { name; t; dom; attrs } -> line "begin" name t dom attrs ""
        | End { name; t; dom; attrs } -> line "end" name t dom attrs ""
        | Instant { name; t; dom; attrs } -> line "instant" name t dom attrs ""
        | Count { name; t; dom; n } ->
            line "count" name t dom [] (Printf.sprintf ",\"n\":%d" n))
      evs

  let to_string evs =
    let buf = Buffer.create 4096 in
    to_buffer buf evs;
    Buffer.contents buf

  let write oc evs = output_string oc (to_string evs)
end

module Summary = struct
  type node = {
    name : string;
    count : int;
    total : float;
    self : float;
    children : node list;
  }

  (* aggregation cell: one per (parent path, name) *)
  type acc = {
    mutable a_count : int;
    mutable a_total : float;
    mutable a_child : float;
    a_children : (string, acc) Hashtbl.t;
  }

  let fresh_acc () =
    { a_count = 0; a_total = 0.; a_child = 0.; a_children = Hashtbl.create 4 }

  let tree evs =
    let root = fresh_acc () in
    (* split back into per-domain streams (collect preserved their order) *)
    let by_dom = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let d = dom_of e in
        let l =
          match Hashtbl.find_opt by_dom d with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add by_dom d l;
              l
        in
        l := e :: !l)
      evs;
    let close stack t =
      (* close every span still open at [t], charging parents *)
      List.fold_left
        (fun inner_dur (a, t0) ->
          let d = t -. t0 in
          a.a_count <- a.a_count + 1;
          a.a_total <- a.a_total +. d;
          a.a_child <- a.a_child +. inner_dur;
          d)
        0. stack
      |> ignore
    in
    Hashtbl.iter
      (fun _dom levs ->
        let levs = List.rev !levs in
        let last_t = List.fold_left (fun m e -> max m (time_of e)) 0. levs in
        let stack = ref [] in
        List.iter
          (fun e ->
            match e with
            | Begin { name; t; _ } ->
                let tbl =
                  match !stack with
                  | (a, _) :: _ -> a.a_children
                  | [] -> root.a_children
                in
                let a =
                  match Hashtbl.find_opt tbl name with
                  | Some a -> a
                  | None ->
                      let a = fresh_acc () in
                      Hashtbl.add tbl name a;
                      a
                in
                stack := (a, t) :: !stack
            | End { t; _ } -> (
                match !stack with
                | [] -> () (* unmatched end *)
                | (a, t0) :: rest ->
                    let d = t -. t0 in
                    a.a_count <- a.a_count + 1;
                    a.a_total <- a.a_total +. d;
                    (match rest with
                    | (parent, _) :: _ -> parent.a_child <- parent.a_child +. d
                    | [] -> ());
                    stack := rest)
            | Instant _ | Count _ -> ())
          levs;
        close !stack last_t)
      by_dom;
    let rec nodes_of acc =
      Hashtbl.fold
        (fun name a l ->
          {
            name;
            count = a.a_count;
            total = a.a_total;
            self = Float.max 0. (a.a_total -. a.a_child);
            children = nodes_of a;
          }
          :: l)
        acc.a_children []
      |> List.sort (fun n1 n2 -> Float.compare n2.total n1.total)
    in
    nodes_of root

  let pp ppf evs =
    let t = tree evs in
    Format.fprintf ppf "%-46s %7s %10s %10s@." "span" "count" "total" "self";
    let rec go depth n =
      Format.fprintf ppf "%-46s %7d %9.3fs %9.3fs@."
        (String.make (2 * depth) ' ' ^ n.name)
        n.count n.total n.self;
      List.iter (go (depth + 1)) n.children
    in
    List.iter (go 0) t;
    match Counters.totals evs with
    | [] -> ()
    | cts ->
        Format.fprintf ppf "counters:@.";
        List.iter
          (fun (name, n) -> Format.fprintf ppf "  %-44s %7d@." name n)
          cts
end
