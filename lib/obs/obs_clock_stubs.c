/* Monotonic clock for Obs.Clock: immune to NTP steps, unlike
   Unix.gettimeofday.  POSIX clock_gettime(CLOCK_MONOTONIC). */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
