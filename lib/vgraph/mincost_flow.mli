(** Minimum-cost flow by scaling successive shortest paths with potentials.

    Used as the LP engine for minimum-area retiming: the dual of
    [min Σ a(v)·r(v)  s.t.  r(u) − r(v) ≤ b(u,v)] is a min-cost flow whose
    optimal node potentials give the optimal retiming labels. *)

type arc = { src : int; dst : int; capacity : int; cost : int }

type result = {
  flow : int array;  (** flow on each arc, in input order *)
  potentials : int array;
      (** node potentials [π] with [cost + π(src) − π(dst) ≥ 0] on every
          residual arc at optimality *)
  total_cost : int;
}

val solve :
  ?init_potentials:int array ->
  nodes:int ->
  arcs:arc list ->
  int array ->
  result option
(** [solve ~nodes ~arcs supply] computes a feasible min-cost flow where node
    [v] has net outflow [supply.(v)] (positive = source, negative = sink).
    Supplies must sum to zero.  Returns [None] when no feasible flow
    exists.

    [init_potentials] seeds the node potentials, skipping the Bellman–Ford
    initialization pass — the caller (e.g. {!Minarea}) typically already ran
    one over the same constraint system.  They must be reduced-cost feasible
    ([cost + π(src) − π(dst) ≥ 0] on every arc with positive capacity).

    @raise Invalid_argument on malformed input: sizes, negative capacities,
    supplies not summing to zero, potentials that are not reduced-cost
    feasible, or a negative-cost cycle of positive-capacity arcs (whose
    min-cost circulation would be unbounded below; the former implementation
    silently proceeded with stale potentials). *)

val solve_reference : nodes:int -> arcs:arc list -> int array -> result option
(** The original (pre-scaling, list-adjacency) successive-shortest-paths
    solver, retained as a differential-testing and benchmarking reference.
    Same contract as {!solve} except negative-cost cycles are not
    detected. *)
