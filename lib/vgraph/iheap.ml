type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 64) () = { data = Array.make (max capacity 4) 0; len = 0 }

let size h = h.len

let is_empty h = h.len = 0

let grow h =
  let data = Array.make (2 * Array.length h.data) 0 in
  Array.blit h.data 0 data 0 h.len;
  h.data <- data

let add h x =
  if h.len = Array.length h.data then grow h;
  (* sift up *)
  let d = h.data in
  let i = ref h.len in
  h.len <- h.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if Array.unsafe_get d p > x then begin
      Array.unsafe_set d !i (Array.unsafe_get d p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set d !i x

let pop_min h =
  if h.len = 0 then invalid_arg "Iheap.pop_min: empty";
  let d = h.data in
  let root = Array.unsafe_get d 0 in
  h.len <- h.len - 1;
  let n = h.len in
  if n > 0 then begin
    let x = Array.unsafe_get d n in
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && Array.unsafe_get d r < Array.unsafe_get d l then r else l
        in
        if Array.unsafe_get d c < x then begin
          Array.unsafe_set d !i (Array.unsafe_get d c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set d !i x
  end;
  root

let clear h = h.len <- 0
