type arc = { src : int; dst : int; capacity : int; cost : int }

type result = { flow : int array; potentials : int array; total_cost : int }

(* Both solvers share the paired-arc residual encoding: arc [2i] is forward
   arc [i], arc [2i+1] its reverse; [head.(a)], [tail.(a)], [res.(a)]
   (residual capacity), [cost_.(a)]. *)

(* ------------------------------------------------------------------ *)
(* Scaling successive-shortest-paths core.                             *)
(*                                                                     *)
(* Data layout: CSR adjacency (one flat [int array] of residual-arc    *)
(* ids indexed by an offset table) instead of an [int list] per node;  *)
(* one set of distance / parent / settled scratch arrays reset via a   *)
(* touched list, so an augmentation allocates nothing; heap entries    *)
(* are [(dist lsl node_bits) lor node] in an unboxed int heap.         *)
(*                                                                     *)
(* Capacity scaling (Ahuja–Magnanti–Orlin): phases with Δ halving from *)
(* the largest power of two ≤ max |supply|.  Each phase first          *)
(* saturates every Δ-residual arc whose reduced cost went negative     *)
(* while it was below Δ, restoring reduced-cost feasibility of the     *)
(* Δ-network, then routes from nodes with excess ≥ Δ to nodes with     *)
(* deficit ≥ Δ along shortest reduced-cost paths.  Dijkstra stops at   *)
(* the first settled deficit node; the potential update               *)
(* [π(v) += d(v) − D] for settled [v] only (a uniform shift of the     *)
(* unsettled rest is a no-op on reduced costs) keeps the update        *)
(* O(settled) instead of O(V).                                         *)
(* ------------------------------------------------------------------ *)

let solve ?init_potentials ~nodes ~arcs supply =
  Obs.span ~name:"flow.solve" @@ fun () ->
  let arcs_a = Array.of_list arcs in
  let m = Array.length arcs_a in
  if Array.length supply <> nodes then invalid_arg "Mincost_flow.solve: supply size";
  if Array.fold_left ( + ) 0 supply <> 0 then
    invalid_arg "Mincost_flow.solve: supplies must sum to zero";
  let head = Array.make (2 * m) 0 in
  let tail = Array.make (2 * m) 0 in
  let res = Array.make (2 * m) 0 in
  let cost_ = Array.make (2 * m) 0 in
  Array.iteri
    (fun i a ->
      if a.capacity < 0 then invalid_arg "Mincost_flow.solve: negative capacity";
      if a.src < 0 || a.src >= nodes || a.dst < 0 || a.dst >= nodes then
        invalid_arg "Mincost_flow.solve: arc endpoint out of range";
      let f = 2 * i and b = (2 * i) + 1 in
      head.(f) <- a.dst;
      tail.(f) <- a.src;
      res.(f) <- a.capacity;
      cost_.(f) <- a.cost;
      head.(b) <- a.src;
      tail.(b) <- a.dst;
      res.(b) <- 0;
      cost_.(b) <- -a.cost)
    arcs_a;
  (* CSR adjacency keyed by tail, built by counting sort. *)
  let off = Array.make (nodes + 1) 0 in
  for a = 0 to (2 * m) - 1 do
    off.(tail.(a) + 1) <- off.(tail.(a) + 1) + 1
  done;
  for v = 1 to nodes do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.copy off in
  for a = 0 to (2 * m) - 1 do
    let v = tail.(a) in
    adj.(cursor.(v)) <- a;
    cursor.(v) <- cursor.(v) + 1
  done;
  let excess = Array.copy supply in
  let pi =
    match init_potentials with
    | Some p ->
        if Array.length p <> nodes then
          invalid_arg "Mincost_flow.solve: init_potentials size";
        let pi = Array.copy p in
        for a = 0 to (2 * m) - 1 do
          if res.(a) > 0 && cost_.(a) + pi.(tail.(a)) - pi.(head.(a)) < 0 then
            invalid_arg "Mincost_flow.solve: init_potentials not reduced-cost feasible"
        done;
        pi
    | None ->
        (* Bellman–Ford from a virtual source over residual arcs with
           capacity (handles negative arc costs).  Distances from an
           all-zero start converge within [nodes] passes; a pass that still
           relaxes after that exposes a negative-cost cycle. *)
        let dist = Array.make nodes 0 in
        let changed = ref true in
        let rounds = ref 0 in
        while !changed do
          if !rounds >= nodes then
            invalid_arg "Mincost_flow.solve: negative-cost cycle";
          changed := false;
          incr rounds;
          for a = 0 to (2 * m) - 1 do
            if res.(a) > 0 && dist.(tail.(a)) + cost_.(a) < dist.(head.(a)) then begin
              dist.(head.(a)) <- dist.(tail.(a)) + cost_.(a);
              changed := true
            end
          done
        done;
        dist
  in
  (* Dijkstra scratch, reset via the touched list after every search. *)
  let node_bits =
    let b = ref 1 in
    while 1 lsl !b < nodes do incr b done;
    !b
  in
  let node_mask = (1 lsl node_bits) - 1 in
  let max_dist = max_int asr (node_bits + 1) in
  let d = Array.make (max nodes 1) max_int in
  let parent = Array.make (max nodes 1) (-1) in
  let settled = Array.make (max nodes 1) false in
  let touched = Array.make (max nodes 1) 0 in
  let ntouched = ref 0 in
  let heap = Iheap.create () in
  let touch v =
    if d.(v) = max_int then begin
      touched.(!ntouched) <- v;
      incr ntouched
    end
  in
  let reset_search () =
    for i = 0 to !ntouched - 1 do
      let v = touched.(i) in
      d.(v) <- max_int;
      parent.(v) <- -1;
      settled.(v) <- false
    done;
    ntouched := 0;
    Iheap.clear heap
  in
  let augmentations = ref 0 in
  let saturations = ref 0 in
  (* Shortest reduced-cost path from [s] in the Δ-residual network, stopping
     at the first settled node with excess ≤ −Δ.  Returns that node or −1. *)
  let dijkstra ~delta s =
    touch s;
    d.(s) <- 0;
    Iheap.add heap s;
    let found = ref (-1) in
    while !found = -1 && not (Iheap.is_empty heap) do
      let e = Iheap.pop_min heap in
      let v = e land node_mask in
      let dv = e asr node_bits in
      if (not settled.(v)) && dv = d.(v) then begin
        settled.(v) <- true;
        if excess.(v) <= -delta then found := v
        else
          for k = off.(v) to off.(v + 1) - 1 do
            let a = adj.(k) in
            if res.(a) >= delta then begin
              let w = head.(a) in
              if not settled.(w) then begin
                let rc = cost_.(a) + pi.(v) - pi.(w) in
                assert (rc >= 0);
                let nd = dv + rc in
                if nd < d.(w) then begin
                  if nd > max_dist then
                    invalid_arg "Mincost_flow.solve: distance overflow";
                  touch w;
                  d.(w) <- nd;
                  parent.(w) <- a;
                  Iheap.add heap ((nd lsl node_bits) lor w)
                end
              end
            end
          done
      end
    done;
    !found
  in
  let maxex = Array.fold_left (fun acc e -> max acc (abs e)) 0 excess in
  let delta = ref 1 in
  while 2 * !delta <= maxex do
    delta := 2 * !delta
  done;
  let sources = Array.make (max nodes 1) 0 in
  let nsources = ref 0 in
  while !delta >= 1 do
    let dl = !delta in
    (* Restore reduced-cost feasibility of the Δ-network: saturate every
       Δ-residual arc with negative reduced cost. *)
    for a = 0 to (2 * m) - 1 do
      if res.(a) >= dl && cost_.(a) + pi.(tail.(a)) - pi.(head.(a)) < 0 then begin
        let r = res.(a) in
        excess.(tail.(a)) <- excess.(tail.(a)) - r;
        excess.(head.(a)) <- excess.(head.(a)) + r;
        res.(a lxor 1) <- res.(a lxor 1) + r;
        res.(a) <- 0;
        incr saturations
      end
    done;
    nsources := 0;
    for v = 0 to nodes - 1 do
      if excess.(v) >= dl then begin
        sources.(!nsources) <- v;
        incr nsources
      end
    done;
    while !nsources > 0 do
      nsources := !nsources - 1;
      let s = sources.(!nsources) in
      if excess.(s) >= dl then begin
        let t = dijkstra ~delta:dl s in
        if t >= 0 then begin
          let dt = d.(t) in
          (* π(v) += d(v) − D for settled v; the implicit uniform +D on the
             rest cancels in every reduced cost. *)
          for i = 0 to !ntouched - 1 do
            let v = touched.(i) in
            if settled.(v) then pi.(v) <- pi.(v) + d.(v) - dt
          done;
          let rec bottleneck v acc =
            let a = parent.(v) in
            if a = -1 then acc else bottleneck tail.(a) (min acc res.(a))
          in
          let amount = min (min excess.(s) (-excess.(t))) (bottleneck t max_int) in
          assert (amount >= dl);
          let rec push v =
            let a = parent.(v) in
            if a <> -1 then begin
              res.(a) <- res.(a) - amount;
              res.(a lxor 1) <- res.(a lxor 1) + amount;
              push tail.(a)
            end
          in
          push t;
          excess.(s) <- excess.(s) - amount;
          excess.(t) <- excess.(t) + amount;
          incr augmentations;
          if excess.(s) >= dl then begin
            sources.(!nsources) <- s;
            incr nsources
          end
        end;
        reset_search ()
        (* no reachable deficit at this Δ: retry s at a smaller Δ *)
      end
    done;
    delta := dl / 2
  done;
  Obs.count "flow.augmentations" !augmentations;
  Obs.count "flow.saturations" !saturations;
  Obs.attr (fun () ->
      [ ("nodes", Obs.Int nodes);
        ("arcs", Obs.Int m);
        ("augmentations", Obs.Int !augmentations) ]);
  if Array.exists (fun e -> e > 0) excess then None
  else begin
    let flow = Array.make m 0 in
    let total = ref 0 in
    Array.iteri
      (fun i a ->
        let f = res.((2 * i) + 1) in
        flow.(i) <- f;
        total := !total + (f * a.cost))
      arcs_a;
    Some { flow; potentials = pi; total_cost = !total }
  end

(* ------------------------------------------------------------------ *)
(* Reference solver: the original list-adjacency successive-shortest-  *)
(* paths implementation, retained verbatim for differential tests and  *)
(* the paired old/new bench rows.  Note its Bellman–Ford init silently *)
(* proceeds with stale potentials on a negative-cost cycle — the fast  *)
(* core rejects that input instead.                                    *)
(* ------------------------------------------------------------------ *)

let solve_reference ~nodes ~arcs supply =
  let m = List.length arcs in
  if Array.length supply <> nodes then invalid_arg "Mincost_flow.solve: supply size";
  if Array.fold_left ( + ) 0 supply <> 0 then
    invalid_arg "Mincost_flow.solve: supplies must sum to zero";
  let head = Array.make (2 * m) 0 in
  let tail = Array.make (2 * m) 0 in
  let res = Array.make (2 * m) 0 in
  let cost_ = Array.make (2 * m) 0 in
  let adj = Array.make nodes [] in
  List.iteri
    (fun i a ->
      if a.capacity < 0 then invalid_arg "Mincost_flow.solve: negative capacity";
      let f = 2 * i and b = (2 * i) + 1 in
      head.(f) <- a.dst;
      tail.(f) <- a.src;
      res.(f) <- a.capacity;
      cost_.(f) <- a.cost;
      head.(b) <- a.src;
      tail.(b) <- a.dst;
      res.(b) <- 0;
      cost_.(b) <- -a.cost;
      adj.(a.src) <- f :: adj.(a.src);
      adj.(a.dst) <- b :: adj.(a.dst))
    arcs;
  let excess = Array.copy supply in
  let pi = Array.make nodes 0 in
  let dist = Array.make nodes 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < nodes do
    changed := false;
    incr rounds;
    for a = 0 to (2 * m) - 1 do
      if res.(a) > 0 && dist.(tail.(a)) + cost_.(a) < dist.(head.(a)) then begin
        dist.(head.(a)) <- dist.(tail.(a)) + cost_.(a);
        changed := true
      end
    done
  done;
  Array.blit dist 0 pi 0 nodes;
  let infeasible = ref false in
  let total_excess () =
    let t = ref 0 in
    Array.iter (fun e -> if e > 0 then t := !t + e) excess;
    !t
  in
  let parent_arc = Array.make nodes (-1) in
  while (not !infeasible) && total_excess () > 0 do
    let d = Array.make nodes max_int in
    Array.fill parent_arc 0 nodes (-1);
    let heap =
      Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) ~dummy:(0, -1) ()
    in
    for v = 0 to nodes - 1 do
      if excess.(v) > 0 then begin
        d.(v) <- 0;
        Heap.add heap (0, v)
      end
    done;
    while not (Heap.is_empty heap) do
      let dv, v = Heap.pop_min heap in
      if dv = d.(v) then
        List.iter
          (fun a ->
            if res.(a) > 0 then begin
              let w = head.(a) in
              let rc = cost_.(a) + pi.(v) - pi.(w) in
              assert (rc >= 0);
              let nd = dv + rc in
              if nd < d.(w) then begin
                d.(w) <- nd;
                parent_arc.(w) <- a;
                Heap.add heap (nd, w)
              end
            end)
          adj.(v)
    done;
    let sink = ref (-1) in
    for v = 0 to nodes - 1 do
      if excess.(v) < 0 && d.(v) < max_int && (!sink = -1 || d.(v) < d.(!sink)) then
        sink := v
    done;
    if !sink = -1 then infeasible := true
    else begin
      let cap = d.(!sink) in
      for v = 0 to nodes - 1 do
        pi.(v) <- pi.(v) + min d.(v) cap
      done;
      let rec bottleneck v acc =
        let a = parent_arc.(v) in
        if a = -1 then acc else bottleneck tail.(a) (min acc res.(a))
      in
      let s = !sink in
      let rec path_src v = if parent_arc.(v) = -1 then v else path_src tail.(parent_arc.(v)) in
      let src = path_src s in
      let amount = min (min excess.(src) (- excess.(s))) (bottleneck s max_int) in
      assert (amount > 0);
      let rec push v =
        let a = parent_arc.(v) in
        if a <> -1 then begin
          res.(a) <- res.(a) - amount;
          res.(a lxor 1) <- res.(a lxor 1) + amount;
          push tail.(a)
        end
      in
      push s;
      excess.(src) <- excess.(src) - amount;
      excess.(s) <- excess.(s) + amount
    end
  done;
  if !infeasible then None
  else begin
    let flow = Array.make m 0 in
    let total = ref 0 in
    List.iteri
      (fun i a ->
        let f = res.((2 * i) + 1) in
        flow.(i) <- f;
        total := !total + (f * a.cost))
      arcs;
    Some { flow; potentials = pi; total_cost = !total }
  end
