(** Monomorphic int min-heap.

    A binary heap over plain [int] keys backed by a bare [int array] — no
    boxing, no comparator closure — for the hot loops of {!Dijkstra}-style
    searches where entries are (priority, payload) pairs packed into one
    integer.  The heap is reusable: {!clear} keeps the backing storage, so
    a search run thousands of times (one per augmenting path, one per
    constraint source) allocates nothing after warm-up. *)

type t

val create : ?capacity:int -> unit -> t

val size : t -> int

val is_empty : t -> bool

val add : t -> int -> unit

val pop_min : t -> int
(** @raise Invalid_argument when empty. *)

val clear : t -> unit
(** Empties the heap without releasing storage. *)
