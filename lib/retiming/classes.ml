let latch_class c l = snd (Circuit.latch_info c l)

let classes c =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let cl = latch_class c l in
      let prev = Option.value (Hashtbl.find_opt tbl cl) ~default:[] in
      Hashtbl.replace tbl cl (l :: prev))
    (Circuit.latches c);
  Hashtbl.fold (fun cl ls acc -> (cl, List.rev ls) :: acc) tbl []

let can_forward_move c ~gate =
  match Circuit.driver c gate with
  | Gate (_, fs) when Array.length fs > 0 ->
      let cls =
        Array.map
          (fun f ->
            match Circuit.driver c f with
            | Latch { enable; _ } -> Some enable
            | Undriven | Input | Gate _ -> None)
          fs
      in
      Array.for_all Option.is_some cls
      && Array.for_all (fun cl -> cl = cls.(0)) cls
  | Undriven | Input | Latch _ | Gate _ -> false

(* Rebuild the circuit with the move applied.  The rebuilt circuit maps
   every old signal to a new one except that [gate]'s consumers read the new
   latch and [gate] itself reads the old latches' data inputs. *)
let forward_move c ~gate =
  if not (can_forward_move c ~gate) then
    invalid_arg "Classes.forward_move: illegal move";
  let fn, latch_fanins =
    match Circuit.driver c gate with
    | Gate (fn, fs) -> (fn, fs)
    | Undriven | Input | Latch _ -> assert false
  in
  let enable =
    match Circuit.driver c latch_fanins.(0) with
    | Latch { enable; _ } -> enable
    | Undriven | Input | Gate _ -> assert false
  in
  let nc = Circuit.create (Circuit.name c ^ "_fwd") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  (* declare everything first so forward references work *)
  List.iter
    (fun s ->
      let ns =
        match Circuit.driver c s with
        | Input -> Circuit.add_input nc (Circuit.signal_name c s)
        | Undriven | Gate _ | Latch _ ->
            Circuit.declare nc ~name:(Circuit.signal_name c s) ()
      in
      Hashtbl.replace map s ns)
    (List.init (Circuit.signal_count c) Fun.id);
  let moved = Circuit.declare nc ~name:(Circuit.signal_name c gate ^ "$moved") () in
  (* drive old signals *)
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Undriven -> ()
    | Input -> ()
    | Latch { data; enable = e } ->
        Circuit.set_latch nc (get s) ?enable:(Option.map get e) ~data:(get data) ()
    | Gate (fn', fs) ->
        if s = gate then begin
          (* the gate now reads the latch data inputs *)
          let datas =
            Array.to_list
              (Array.map
                 (fun f ->
                   match Circuit.driver c f with
                   | Latch { data; _ } -> get data
                   | Undriven | Input | Gate _ -> assert false)
                 latch_fanins)
          in
          Circuit.set_gate nc moved fn datas;
          (* the old gate signal becomes the output of the moved latch *)
          Circuit.set_latch nc (get s) ?enable:(Option.map get enable) ~data:moved ()
        end
        else Circuit.set_gate nc (get s) fn' (Array.to_list (Array.map get fs))
  done;
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  Circuit.check nc;
  nc

(* ---- single-class retiming ---- *)

let single_class_enable c =
  match Circuit.latches c with
  | [] -> None
  | l0 :: rest -> (
      match Circuit.latch_info c l0 with
      | _, None -> None
      | _, Some e ->
          let is_pi =
            match Circuit.driver c e with Input -> true | Undriven | Gate _ | Latch _ -> false
          in
          if
            is_pi
            && List.for_all (fun l -> snd (Circuit.latch_info c l) = Some e) rest
          then Some e
          else None)

(* Rebuild with every latch's enable dropped (Some e) or attached (None ->
   add enable net by name). *)
let map_enables c ~f =
  let nc = Circuit.create (Circuit.name c) in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  for s = 0 to Circuit.signal_count c - 1 do
    let ns =
      match Circuit.driver c s with
      | Input -> Circuit.add_input nc (Circuit.signal_name c s)
      | Undriven | Gate _ | Latch _ -> Circuit.declare nc ~name:(Circuit.signal_name c s) ()
    in
    Hashtbl.replace map s ns
  done;
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Undriven | Input -> ()
    | Gate (fn, fs) -> Circuit.set_gate nc (get s) fn (Array.to_list (Array.map get fs))
    | Latch { data; enable } ->
        let enable' = f (Option.map get enable) in
        Circuit.set_latch nc (get s) ?enable:enable' ~data:(get data) ()
  done;
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  Circuit.check nc;
  nc

let reattach_enable e_name (rt, report) =
  let e' =
    match Circuit.find_signal rt e_name with
    | Some s -> s
    | None ->
        (* the enable input survived retiming only if used; re-add *)
        Circuit.add_input rt e_name
  in
  (map_enables rt ~f:(fun _ -> Some e'), report)

let strip_single_class c =
  match single_class_enable c with
  | None ->
      invalid_arg
        "Classes: not a single-class circuit (all latches must share one \
         primary-input enable)"
  | Some e -> (Circuit.signal_name c e, map_enables c ~f:(fun _ -> None))

let with_single_class retimer c =
  let e_name, stripped = strip_single_class c in
  reattach_enable e_name (retimer stripped)

let min_period_single_class c = with_single_class (fun c -> Retime.min_period c) c

let constrained_min_area_single_class ~period c =
  let e_name, stripped = strip_single_class c in
  Result.map (reattach_enable e_name)
    (Retime.constrained_min_area ~period stripped)
