(** Top-level retiming transformations on netlists. *)

type report = {
  period_before : int;
  period_after : int;
  latches_before : int;
  latches_after : int;
}

type error = Infeasible_period
(** The one input-dependent failure mode of constrained retiming: the
    requested clock period is below the graph's minimum feasible period. *)

val min_period :
  ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * report
(** Retimes for the minimum feasible clock period, then minimizes latch
    count under that period.  [exposed] latches stay in place (pseudo-I/O).
    The circuit must contain only regular latches. *)

val constrained_min_area :
  ?exposed:(Circuit.signal -> bool) ->
  period:int ->
  Circuit.t ->
  (Circuit.t * report, error) result
(** Minimizes latch count subject to a clock-period bound.
    [Error Infeasible_period] if the period is infeasible. *)

val min_area :
  ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * report
(** Minimizes latch count with no period constraint. *)
