(** Top-level retiming transformations on netlists. *)

type report = {
  period_before : int;
  period_after : int;
  latches_before : int;
  latches_after : int;
}

type error = Infeasible_period
(** The one input-dependent failure mode of constrained retiming: the
    requested clock period is below the graph's minimum feasible period. *)

val min_period :
  ?exposed:(Circuit.signal -> bool) ->
  ?pool:Par.Pool.t ->
  Circuit.t ->
  Circuit.t * report
(** Retimes for the minimum feasible clock period, then minimizes latch
    count under that period.  [exposed] latches stay in place (pseudo-I/O).
    The circuit must contain only regular latches.  [pool] parallelizes
    the period search probes and the W/D constraint generation. *)

val constrained_min_area :
  ?exposed:(Circuit.signal -> bool) ->
  ?pool:Par.Pool.t ->
  period:int ->
  Circuit.t ->
  (Circuit.t * report, error) result
(** Minimizes latch count subject to a clock-period bound.
    [Error Infeasible_period] if the period is infeasible. *)

val min_area :
  ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * report
(** Minimizes latch count with no period constraint. *)

(** {1 Reference pipeline}

    The retained pre-optimization implementations (naive cold-start FEAS,
    unpruned W/D constraints, pre-scaling flow core), for differential
    testing and the paired before/after bench rows.  Same reports up to
    tie-breaking between equal-latch-count optimal labelings. *)

val min_period_reference :
  ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * report

val constrained_min_area_reference :
  ?exposed:(Circuit.signal -> bool) ->
  period:int ->
  Circuit.t ->
  (Circuit.t * report, error) result
