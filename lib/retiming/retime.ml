type report = {
  period_before : int;
  period_after : int;
  latches_before : int;
  latches_after : int;
}

type error = Infeasible_period

let finish g c r =
  let nc = Rgraph.apply g ~r in
  let report =
    {
      period_before = Circuit.delay c;
      period_after = Circuit.delay nc;
      latches_before = Circuit.latch_count c;
      latches_after = Circuit.latch_count nc;
    }
  in
  (nc, report)

let min_period ?exposed ?pool c =
  Obs.span ~name:"retime.min_period" @@ fun () ->
  let g = Rgraph.build ?exposed c in
  let period, _ = Feas.min_period ?pool g in
  (* among the min-period retimings, take a latch-minimal one; the period
     is feasible by construction, so solve cannot return None *)
  match Minarea.solve ~period ?pool g with
  | Some r -> finish g c r
  | None -> assert false

let constrained_min_area ?exposed ?pool ~period c =
  Obs.span ~name:"retime.constrained_min_area" @@ fun () ->
  let g = Rgraph.build ?exposed c in
  match Minarea.solve ~period ?pool g with
  | Some r -> Ok (finish g c r)
  | None -> Error Infeasible_period

let min_area ?exposed c =
  Obs.span ~name:"retime.min_area" @@ fun () ->
  let g = Rgraph.build ?exposed c in
  match Minarea.solve g with Some r -> finish g c r | None -> assert false

(* Reference pipeline: naive FEAS bisection + unpruned constraints + the
   pre-scaling flow core.  Used for differential tests and the paired
   before/after bench rows. *)

let min_period_reference ?exposed c =
  let g = Rgraph.build ?exposed c in
  let period, _ = Feas.Naive.min_period g in
  match Minarea.solve ~period ~reference:true g with
  | Some r -> finish g c r
  | None -> assert false

let constrained_min_area_reference ?exposed ~period c =
  let g = Rgraph.build ?exposed c in
  match Minarea.solve ~period ~reference:true g with
  | Some r -> Ok (finish g c r)
  | None -> Error Infeasible_period
