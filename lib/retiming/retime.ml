type report = {
  period_before : int;
  period_after : int;
  latches_before : int;
  latches_after : int;
}

type error = Infeasible_period

let finish g c r =
  let nc = Rgraph.apply g ~r in
  let report =
    {
      period_before = Circuit.delay c;
      period_after = Circuit.delay nc;
      latches_before = Circuit.latch_count c;
      latches_after = Circuit.latch_count nc;
    }
  in
  (nc, report)

let min_period ?exposed c =
  let g = Rgraph.build ?exposed c in
  let period, _ = Feas.min_period g in
  (* among the min-period retimings, take a latch-minimal one; the period
     is feasible by construction, so solve cannot return None *)
  match Minarea.solve ~period g with
  | Some r -> finish g c r
  | None -> assert false

let constrained_min_area ?exposed ~period c =
  let g = Rgraph.build ?exposed c in
  match Minarea.solve ~period g with
  | Some r -> Ok (finish g c r)
  | None -> Error Infeasible_period

let min_area ?exposed c =
  let g = Rgraph.build ?exposed c in
  match Minarea.solve g with Some r -> finish g c r | None -> assert false
