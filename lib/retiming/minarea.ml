open Vgraph
(* Constraints have the form r(u) - r(v) <= b.  The LP
     min Σ_v a(v)·r(v)   s.t.   r(u) − r(v) ≤ b(u,v)
   with a(v) = indeg(v) − outdeg(v) is the dual of a min-cost flow problem:
   one arc per constraint (u -> v, cost b, infinite capacity), node net
   outflow −a(v); the optimal node potentials π give r = −π. *)

let lp_solve ~nvertices ~constraints ~a =
  (* Feasibility first: the difference-constraint graph (edge v -> u with
     weight b per constraint r(u) - r(v) <= b) must have no negative cycle;
     otherwise the flow below would see a negative-cost cycle. *)
  let cg = Digraph.create () in
  Digraph.add_nodes cg nvertices;
  List.iter (fun (u, v, b) -> ignore (Digraph.add_edge cg ~weight:b v u)) constraints;
  if Bellman_ford.feasible_potentials cg = None then None
  else
  let cap =
    1 + Array.fold_left (fun acc x -> acc + abs x) 0 a
  in
  let arcs =
    List.map
      (fun (u, v, b) -> { Mincost_flow.src = u; dst = v; capacity = cap; cost = b })
      constraints
  in
  let supply = Array.map (fun x -> -x) a in
  match Mincost_flow.solve ~nodes:nvertices ~arcs ~supply with
  | None -> None
  | Some { potentials; _ } -> Some (Array.map (fun p -> -p) potentials)

let edge_constraints g =
  (* the two host vertices must retime identically *)
  let acc = ref [ (Rgraph.host, Rgraph.host_sink, 0); (Rgraph.host_sink, Rgraph.host, 0) ] in
  Digraph.iter_edges (fun _ e -> acc := (e.src, e.dst, e.weight) :: !acc) g.Rgraph.graph;
  !acc

let period_constraints g ~period =
  let n = Digraph.node_count g.Rgraph.graph in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let w, d = Dijkstra.lexicographic g.graph ~src:u ~tie:(fun e -> g.delay.(e.dst)) in
    for v = 0 to n - 1 do
      if w.(v) < max_int then begin
        let duv = d.(v) + g.delay.(u) in
        if duv > period && u <> v then acc := (u, v, w.(v) - 1) :: !acc
      end
    done
  done;
  !acc

let objective g =
  let n = Digraph.node_count g.Rgraph.graph in
  let a = Array.make n 0 in
  Digraph.iter_edges
    (fun _ e ->
      a.(e.dst) <- a.(e.dst) + 1;
      a.(e.src) <- a.(e.src) - 1)
    g.Rgraph.graph;
  a

let check_constraints r constraints =
  List.for_all (fun (u, v, b) -> r.(u) - r.(v) <= b) constraints

let solve ?period ?(max_exact_vertices = 1500) g =
  let n = Digraph.node_count g.Rgraph.graph in
  let a = objective g in
  let base = edge_constraints g in
  let exact_period =
    match period with
    | Some c when n <= max_exact_vertices -> Some c
    | Some _ | None -> None
  in
  let constraints =
    match exact_period with
    | Some c -> period_constraints g ~period:c @ base
    | None -> base
  in
  match lp_solve ~nvertices:n ~constraints ~a with
  | None ->
      (* base constraints alone are always satisfiable (r = 0), so a failure
         without a period bound is an internal bug, not an input property *)
      if period = None then
        invalid_arg "Minarea.solve: infeasible constraint system"
      else None
  | Some r -> (
      let r = Rgraph.normalize g ~r in
      assert (check_constraints r base);
      if not (check_constraints r constraints) then None
      else
        match period with
        | None -> Some r
        | Some c ->
            (* exact mode already satisfies the period; fallback mode
               repairs.  FEAS's round bound only covers the all-zero start,
               so if the repair from the min-area labels stalls, restart
               from scratch (area-suboptimal but correct). *)
            if Feas.period_of g ~r <= c then Some r
            else (
              match Feas.feasible ~init:r g ~period:c with
              | Some _ as s -> s
              | None -> Feas.feasible g ~period:c))
