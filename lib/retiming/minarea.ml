open Vgraph
(* Constraints have the form r(u) - r(v) <= b.  The LP
     min Σ_v a(v)·r(v)   s.t.   r(u) − r(v) ≤ b(u,v)
   with a(v) = indeg(v) − outdeg(v) is the dual of a min-cost flow problem:
   one arc per constraint (u -> v, cost b, infinite capacity), node net
   outflow −a(v); the optimal node potentials π give r = −π. *)

let edge_constraints g =
  (* the two host vertices must retime identically *)
  let acc = ref [ (Rgraph.host, Rgraph.host_sink, 0); (Rgraph.host_sink, Rgraph.host, 0) ] in
  Digraph.iter_edges (fun _ e -> acc := (e.src, e.dst, e.weight) :: !acc) g.Rgraph.graph;
  !acc

let objective g =
  let n = Digraph.node_count g.Rgraph.graph in
  let a = Array.make n 0 in
  Digraph.iter_edges
    (fun _ e ->
      a.(e.dst) <- a.(e.dst) + 1;
      a.(e.src) <- a.(e.src) - 1)
    g.Rgraph.graph;
  a

let check_constraints r constraints =
  List.for_all (fun (u, v, b) -> r.(u) - r.(v) <= b) constraints

(* ------------------------------------------------------------------ *)
(* W/D-matrix period constraints.                                      *)
(* ------------------------------------------------------------------ *)

(* Original generator: one {!Dijkstra.lexicographic} per source, every
   violating pair emitted.  Reference for differential tests and paired
   benchmarks. *)
let period_constraints_reference g ~period =
  let n = Digraph.node_count g.Rgraph.graph in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let w, d = Dijkstra.lexicographic g.graph ~src:u ~tie:(fun e -> g.delay.(e.dst)) in
    for v = 0 to n - 1 do
      if w.(v) < max_int then begin
        let duv = d.(v) + g.delay.(u) in
        if duv > period && u <> v then acc := (u, v, w.(v) - 1) :: !acc
      end
    done
  done;
  !acc

(* Fast generator.  Two ideas on top of the reference:

   Packed Dijkstra: the lexicographic (min W, then max D) search runs over
   the shared {!Rgraph.csr} image with reusable distance/heap scratch and
   keys [W·DB + (DB−1−D)] packed into an unboxed int heap (DB bounds the
   accumulated delay; min-weight paths are simple because zero-weight
   cycles would be register-free feedback loops).

   Dominance pruning: the constraint [r(u) − r(v) ≤ W(u,v) − 1] is implied
   whenever some violating predecessor [x] of [v] has
   [W(u,x) + w(x→v) ≤ W(u,v)]: chaining x's constraint with the base edge
   constraint of [x→v] gives a bound at least as strong (and x's own
   constraint is either emitted or implied in turn — a cyclic chain would
   need two zero-weight edges closing a register-free cycle, which cannot
   exist).  Only the earliest violating vertices along each shortest path
   survive, typically a few percent of the violating pairs.  (Stopping
   the search itself at the violation frontier was tried and rejected: it
   starves the dominance check of marked predecessors, inflating the kept
   set ~7x and shifting the cost into the flow.)

   Sources are swept in parallel on the {!Par.Pool} when one is given;
   every chunk runs against the shared read-only CSR with its own
   scratch. *)
let period_constraints_csr (c : Rgraph.csr) ~delay ~period ~lo ~hi () =
  let n = c.nv in
  let db = 1 + Array.fold_left ( + ) 0 delay in
  let node_bits =
    let b = ref 1 in
    while 1 lsl !b < n do incr b done;
    !b
  in
  let w = Array.make n max_int in
  let d = Array.make n 0 in
  let touched = Array.make n 0 in
  let ntouched = ref 0 in
  let cand = Array.make n (-1) in
  let heap = Iheap.create () in
  let acc = ref [] in
  let kept = ref 0 and pruned = ref 0 in
  for u = lo to hi do
    (* lexicographic Dijkstra from u, stopped at the violation frontier *)
    let du = delay.(u) in
    ntouched := 0;
    w.(u) <- 0;
    d.(u) <- 0;
    touched.(!ntouched) <- u;
    incr ntouched;
    (* key(v) = w(v)·db + (db − 1 − d(v)); entry = key lsl node_bits | v *)
    Iheap.add heap (((db - 1) lsl node_bits) lor u);
    while not (Iheap.is_empty heap) do
      let e = Iheap.pop_min heap in
      let v = e land ((1 lsl node_bits) - 1) in
      let key = e lsr node_bits in
      if key = (w.(v) * db) + (db - 1 - d.(v)) then
        for k = c.succ_off.(v) to c.succ_off.(v + 1) - 1 do
          let y = c.succ_dst.(k) in
          let nw = w.(v) + c.succ_weight.(k) in
          let nd = d.(v) + delay.(y) in
          if
            nw < w.(y)
            || (nw = w.(y) && nd > d.(y))
          then begin
            if w.(y) = max_int then begin
              touched.(!ntouched) <- y;
              incr ntouched
            end;
            w.(y) <- nw;
            d.(y) <- nd;
            Iheap.add heap ((((nw * db) + (db - 1 - nd)) lsl node_bits) lor y)
          end
        done
    done;
    (* violating targets of u *)
    for i = 0 to !ntouched - 1 do
      let v = touched.(i) in
      if v <> u && d.(v) + du > period then cand.(v) <- u
    done;
    (* emit the dominance-free subset *)
    for i = 0 to !ntouched - 1 do
      let v = touched.(i) in
      if cand.(v) = u then begin
        let implied = ref false in
        let k = ref c.pred_off.(v) in
        let stop = c.pred_off.(v + 1) in
        while (not !implied) && !k < stop do
          let x = c.pred_src.(!k) in
          if cand.(x) = u && w.(x) + c.pred_weight.(!k) <= w.(v) then
            implied := true;
          incr k
        done;
        if !implied then incr pruned
        else begin
          acc := (u, v, w.(v) - 1) :: !acc;
          incr kept
        end
      end
    done;
    (* reset scratch *)
    for i = 0 to !ntouched - 1 do
      let v = touched.(i) in
      w.(v) <- max_int;
      d.(v) <- 0
    done;
    Iheap.clear heap
  done;
  (!acc, !kept, !pruned)

let period_constraints ?pool g ~period =
  Obs.span ~name:"minarea.period_constraints" @@ fun () ->
  let c = Rgraph.csr g in
  let delay = g.Rgraph.delay in
  let n = c.nv in
  let db = 1 + Array.fold_left ( + ) 0 delay in
  let wb =
    1 + Array.fold_left ( + ) 0 c.succ_weight
  in
  let node_bits =
    let b = ref 1 in
    while 1 lsl !b < n do incr b done;
    !b
  in
  (* keys must pack: fall back to the reference generator on (absurdly)
     wide graphs rather than overflow *)
  if n > 0 && wb > max_int asr (node_bits + 2) / db then
    period_constraints_reference g ~period
  else begin
    let chunks =
      match pool with
      | Some pool when Par.Pool.jobs pool > 1 && n > 64 ->
          let jobs = Par.Pool.jobs pool in
          let pieces = min n (4 * jobs) in
          List.init pieces (fun i ->
              (i * n / pieces, ((i + 1) * n / pieces) - 1))
      | _ -> [ (0, n - 1) ]
    in
    let work (lo, hi) = period_constraints_csr c ~delay ~period ~lo ~hi () in
    let results =
      match (pool, chunks) with
      | Some pool, _ :: _ :: _ -> Par.Pool.map pool work chunks
      | _ -> List.map work chunks
    in
    let kept = List.fold_left (fun t (_, k, _) -> t + k) 0 results in
    let pruned = List.fold_left (fun t (_, _, p) -> t + p) 0 results in
    Obs.count "minarea.constraints_kept" kept;
    Obs.count "minarea.constraints_pruned" pruned;
    Obs.attr (fun () ->
        [ ("kept", Obs.Int kept); ("pruned", Obs.Int pruned) ]);
    List.concat_map (fun (l, _, _) -> l) results
  end

(* ------------------------------------------------------------------ *)
(* LP via min-cost flow                                                *)
(* ------------------------------------------------------------------ *)

let lp_solve ~reference ~nvertices ~constraints ~a =
  (* Feasibility first: the difference-constraint graph (edge v -> u with
     weight b per constraint r(u) - r(v) <= b) must have no negative cycle;
     otherwise the flow below would see a negative-cost cycle.  Its
     distances double as reduced-cost-feasible initial potentials for the
     flow (π = −dist), so Bellman–Ford runs exactly once. *)
  let bf =
    Obs.span ~name:"minarea.bellman_ford" @@ fun () ->
    let cg = Digraph.create () in
    Digraph.add_nodes cg nvertices;
    List.iter (fun (u, v, b) -> ignore (Digraph.add_edge cg ~weight:b v u)) constraints;
    Bellman_ford.feasible_potentials cg
  in
  match bf with
  | None -> None
  | Some dist ->
      let cap = 1 + Array.fold_left (fun acc x -> acc + abs x) 0 a in
      let arcs =
        List.map
          (fun (u, v, b) -> { Mincost_flow.src = u; dst = v; capacity = cap; cost = b })
          constraints
      in
      let supply = Array.map (fun x -> -x) a in
      let flow =
        if reference then Mincost_flow.solve_reference ~nodes:nvertices ~arcs supply
        else
          let init_potentials = Array.map (fun p -> -p) dist in
          Mincost_flow.solve ~init_potentials ~nodes:nvertices ~arcs supply
      in
      (match flow with
      | None -> None
      | Some { potentials; _ } -> Some (Array.map (fun p -> -p) potentials))

let solve ?period ?(max_exact_vertices = 4000) ?pool ?(reference = false) g =
  Obs.span ~name:"minarea.solve" @@ fun () ->
  let n = Digraph.node_count g.Rgraph.graph in
  let a = objective g in
  let base = edge_constraints g in
  let exact_period =
    match period with
    | Some c when n <= max_exact_vertices -> Some c
    | Some _ | None -> None
  in
  let constraints =
    match exact_period with
    | Some c ->
        let pc =
          if reference then period_constraints_reference g ~period:c
          else period_constraints ?pool g ~period:c
        in
        pc @ base
    | None -> base
  in
  let feas_feasible ?init g ~period =
    if reference then Feas.Naive.feasible ?init g ~period
    else Feas.feasible ?init g ~period
  in
  match lp_solve ~reference ~nvertices:n ~constraints ~a with
  | None ->
      (* base constraints alone are always satisfiable (r = 0), so a failure
         without a period bound is an internal bug, not an input property *)
      if period = None then
        invalid_arg "Minarea.solve: infeasible constraint system"
      else None
  | Some r -> (
      let r = Rgraph.normalize g ~r in
      assert (check_constraints r base);
      if not (check_constraints r constraints) then None
      else
        match period with
        | None -> Some r
        | Some c ->
            (* exact mode already satisfies the period; fallback mode
               repairs.  FEAS's round bound only covers the all-zero start,
               so if the repair from the min-area labels stalls, restart
               from scratch (area-suboptimal but correct). *)
            if Feas.period_of g ~r <= c then Some r
            else (
              match feas_feasible ~init:r g ~period:c with
              | Some _ as s -> s
              | None -> feas_feasible g ~period:c))
