open Vgraph
type origin = { vertex : int; weight : int; src : Circuit.signal }

type t = {
  graph : Digraph.t;
  delay : int array;
  signal_of_vertex : Circuit.signal array;
  fanin_origin : origin array array;
  po_origin : origin array;
  exposed_origin : (Circuit.signal * origin) array;
  circuit : Circuit.t;
}

let host = 0
let host_sink = 1

let vertex_count g = Digraph.node_count g.graph

type csr = {
  nv : int;
  pred_off : int array;
  pred_src : int array;
  pred_weight : int array;
  succ_off : int array;
  succ_dst : int array;
  succ_weight : int array;
}

let csr g =
  let n = Digraph.node_count g.graph in
  let m = Digraph.edge_count g.graph in
  let pred_off = Array.make (n + 1) 0 in
  let succ_off = Array.make (n + 1) 0 in
  Digraph.iter_edges
    (fun _ e ->
      pred_off.(e.dst + 1) <- pred_off.(e.dst + 1) + 1;
      succ_off.(e.src + 1) <- succ_off.(e.src + 1) + 1)
    g.graph;
  for v = 1 to n do
    pred_off.(v) <- pred_off.(v) + pred_off.(v - 1);
    succ_off.(v) <- succ_off.(v) + succ_off.(v - 1)
  done;
  let pred_src = Array.make m 0 and pred_weight = Array.make m 0 in
  let succ_dst = Array.make m 0 and succ_weight = Array.make m 0 in
  let pcur = Array.copy pred_off and scur = Array.copy succ_off in
  Digraph.iter_edges
    (fun _ e ->
      let kp = pcur.(e.dst) in
      pred_src.(kp) <- e.src;
      pred_weight.(kp) <- e.weight;
      pcur.(e.dst) <- kp + 1;
      let ks = scur.(e.src) in
      succ_dst.(ks) <- e.dst;
      succ_weight.(ks) <- e.weight;
      scur.(e.src) <- ks + 1)
    g.graph;
  { nv = n; pred_off; pred_src; pred_weight; succ_off; succ_dst; succ_weight }

let build ?(exposed = fun _ -> false) c =
  Obs.span ~name:"retime.rgraph_build" @@ fun () ->
  Circuit.check c;
  List.iter
    (fun l ->
      match Circuit.latch_info c l with
      | _, Some _ ->
          invalid_arg
            (Printf.sprintf "Rgraph.build: latch %s is load-enabled"
               (Circuit.signal_name c l))
      | _, None -> ())
    (Circuit.latches c);
  let n = Circuit.signal_count c in
  (* Only logic that reaches an observable sink participates: dangling
     cones would otherwise bound the period (their arrival times count)
     and attract pointless registers.  Dropping them is sweep semantics. *)
  let roots =
    Circuit.outputs c
    @ List.concat_map
        (fun l ->
          if exposed l then
            let data, enable = Circuit.latch_info c l in
            data :: (match enable with None -> [] | Some e -> [ e ])
          else [])
        (Circuit.latches c)
  in
  let live = Circuit.seq_cone c roots in
  let graph = Digraph.create () in
  let h = Digraph.add_node graph in
  let hs = Digraph.add_node graph in
  assert (h = host && hs = host_sink);
  let vertex_of_signal = Array.make n (-1) in
  let gate_signals = List.filter (fun s -> live.(s)) (Circuit.gates c) in
  List.iter (fun s -> vertex_of_signal.(s) <- Digraph.add_node graph) gate_signals;
  let nv = Digraph.node_count graph in
  let signal_of_vertex = Array.make nv (-1) in
  let delay = Array.make nv 0 in
  List.iter
    (fun s ->
      let v = vertex_of_signal.(s) in
      signal_of_vertex.(v) <- s;
      match Circuit.driver c s with
      | Gate (fn, _) -> delay.(v) <- Circuit.fn_cost fn
      | Undriven | Input | Latch _ -> assert false)
    gate_signals;
  (* Origin walk.  A latch-only ring (a cycle containing no gate) has no
     place in the gate graph; its latches are frozen in place by exposing
     them automatically. *)
  let memo = Array.make n None in
  let visiting = Array.make n false in
  let auto_exposed = Array.make n false in
  let rec origin s =
    match memo.(s) with
    | Some o -> o
    | None ->
        let o =
          match Circuit.driver c s with
          | Gate _ -> { vertex = vertex_of_signal.(s); weight = 0; src = s }
          | Input -> { vertex = host; weight = 0; src = s }
          | Latch { data; enable = _ } ->
              if exposed s || auto_exposed.(s) || visiting.(s) then begin
                if visiting.(s) then auto_exposed.(s) <- true;
                { vertex = host; weight = 0; src = s }
              end
              else begin
                visiting.(s) <- true;
                let o = origin data in
                visiting.(s) <- false;
                { o with weight = o.weight + 1 }
              end
          | Undriven -> assert false
        in
        (* a latch that was auto-exposed mid-walk must not memoize a stale
           chain passing through itself *)
        if not (match Circuit.driver c s with
                | Latch _ -> auto_exposed.(s)
                | Undriven | Input | Gate _ -> false)
        then memo.(s) <- Some o
        else memo.(s) <- Some { vertex = host; weight = 0; src = s };
        (match memo.(s) with Some o -> o | None -> assert false)
  in
  let fanin_origin = Array.make nv [||] in
  List.iter
    (fun s ->
      let v = vertex_of_signal.(s) in
      match Circuit.driver c s with
      | Gate (_, fs) ->
          fanin_origin.(v) <-
            Array.map
              (fun f ->
                let o = origin f in
                ignore (Digraph.add_edge graph ~weight:o.weight o.vertex v);
                o)
              fs
      | Undriven | Input | Latch _ -> assert false)
    gate_signals;
  let po_origin =
    Array.of_list
      (List.map
         (fun p ->
           let o = origin p in
           ignore (Digraph.add_edge graph ~weight:o.weight o.vertex host_sink);
           o)
         (Circuit.outputs c))
  in
  let is_exposed l = exposed l || auto_exposed.(l) in
  let exposed_origin =
    Array.of_list
      (List.filter_map
         (fun l ->
           if is_exposed l then begin
             let data, _ = Circuit.latch_info c l in
             let o = origin data in
             ignore (Digraph.add_edge graph ~weight:o.weight o.vertex host_sink);
             Some (l, o)
           end
           else None)
         (Circuit.latches c))
  in
  { graph; delay; signal_of_vertex; fanin_origin; po_origin; exposed_origin; circuit = c }

let normalize g ~r =
  ignore g;
  if r.(host) <> r.(host_sink) then
    invalid_arg "Rgraph.normalize: host labels differ";
  let shift = r.(host) in
  Array.map (fun x -> x - shift) r

let is_legal g ~r =
  r.(host) = 0 && r.(host_sink) = 0
  &&
  let ok = ref true in
  Digraph.iter_edges
    (fun _ e -> if e.weight + r.(e.dst) - r.(e.src) < 0 then ok := false)
    g.graph;
  !ok

let total_latches_after g ~r =
  let total = ref 0 in
  Digraph.iter_edges (fun _ e -> total := !total + e.weight + r.(e.dst) - r.(e.src)) g.graph;
  !total

let apply g ~r =
  let r = normalize g ~r in
  if not (is_legal g ~r) then invalid_arg "Rgraph.apply: illegal retiming";
  let c = g.circuit in
  let nc = Circuit.create (Circuit.name c ^ "_rt") in
  let new_of = Hashtbl.create 128 in
  (* primary inputs keep their names *)
  List.iter
    (fun s -> Hashtbl.replace new_of s (Circuit.add_input nc (Circuit.signal_name c s)))
    (Circuit.inputs c);
  (* exposed latch outputs keep their names too (declared, driven below) *)
  Array.iter
    (fun (l, _) -> Hashtbl.replace new_of l (Circuit.declare nc ~name:(Circuit.signal_name c l) ()))
    g.exposed_origin;
  (* declare gate outputs *)
  Array.iter
    (fun s ->
      if s >= 0 then
        Hashtbl.replace new_of s (Circuit.declare nc ~name:(Circuit.signal_name c s) ()))
    g.signal_of_vertex;
  (* latch chains, shared per source signal *)
  let chains = Hashtbl.create 128 in
  let fresh = ref 0 in
  let rec tap src k =
    if k = 0 then Hashtbl.find new_of src
    else
      match Hashtbl.find_opt chains (src, k) with
      | Some s -> s
      | None ->
          let below = tap src (k - 1) in
          incr fresh;
          let name = Printf.sprintf "rt$%s$%d" (Circuit.signal_name c src) k in
          let name = if Circuit.find_signal nc name = None then name
            else Printf.sprintf "rt$%s$%d$%d" (Circuit.signal_name c src) k !fresh in
          let s = Circuit.add_latch nc ~name ~data:below () in
          Hashtbl.replace chains (src, k) s;
          s
  in
  let retimed_weight v (o : origin) = o.weight + r.(v) - r.(o.vertex) in
  (* drive the gates *)
  Array.iteri
    (fun v s ->
      if s >= 0 then begin
        match Circuit.driver c s with
        | Gate (fn, _) ->
            let fanins =
              Array.to_list
                (Array.map (fun o -> tap o.src (retimed_weight v o)) g.fanin_origin.(v))
            in
            Circuit.set_gate nc (Hashtbl.find new_of s) fn fanins
        | Undriven | Input | Latch _ -> assert false
      end)
    g.signal_of_vertex;
  (* exposed latches stay where they were *)
  Array.iter
    (fun (l, o) ->
      let data = tap o.src (retimed_weight host_sink o) in
      Circuit.set_latch nc (Hashtbl.find new_of l) ~data ())
    g.exposed_origin;
  (* primary outputs in order *)
  Array.iter (fun o -> Circuit.mark_output nc (tap o.src (retimed_weight host_sink o))) g.po_origin;
  Circuit.check nc;
  nc
