open Vgraph
(** Retiming graphs (Leiserson–Saxe model) extracted from netlists.

    Vertices are combinational gates plus a host vertex 0 representing the
    environment (all primary inputs and outputs).  An edge [u -> v] with
    weight [w] records a connection passing through [w] latches.

    Only regular (non-load-enabled) latches participate; latches named by
    [exposed] are treated as an I/O boundary (their output is a pseudo
    primary input and their data a pseudo primary output), which is exactly
    the paper's latch-exposure mechanism, and they keep their position.

    Logic with no path to a primary output (or to an exposed latch's data
    or enable) is pruned: dangling cones would otherwise bound the clock
    period and attract pointless registers, and {!apply} rebuilds only what
    the graph covers (sweep semantics).

    @raise Invalid_argument on load-enabled latches or on latch-only cycles
    (a feedback loop with no gate must be exposed first). *)

type origin = { vertex : int; weight : int; src : Circuit.signal }
(** Where a connection comes from: the driving vertex, the number of latches
    crossed, and the driving signal in the original circuit (the gate
    output, primary input, or exposed latch output). *)

type t = {
  graph : Digraph.t;
      (** vertex 0 = host source (drives primary inputs), vertex 1 = host
          sink (reads primary outputs).  Splitting the environment in two
          keeps the graph free of cycles through the host, so the
          register-free subgraph used for timing is always acyclic. *)
  delay : int array;  (** combinational delay per vertex (hosts 0) *)
  signal_of_vertex : Circuit.signal array;  (** vertex -> gate-output signal *)
  fanin_origin : origin array array;
      (** [fanin_origin.(vertex).(k)]: origin of the [k]-th fanin *)
  po_origin : origin array;  (** per primary output, in order *)
  exposed_origin : (Circuit.signal * origin) array;
      (** per exposed latch: (latch signal, origin of its data) *)
  circuit : Circuit.t;
}

val host : int
(** The host source vertex (0). *)

val host_sink : int
(** The host sink vertex (1).  Legal retimings keep both hosts at label
    0. *)

val build : ?exposed:(Circuit.signal -> bool) -> Circuit.t -> t

val vertex_count : t -> int

(** Read-only CSR image of the graph: both adjacency directions as flat
    offset-indexed arrays, shared by the incremental FEAS states and the
    W/D-matrix Dijkstras (which run on many domains against one image). *)
type csr = {
  nv : int;
  pred_off : int array;  (** length [nv + 1] *)
  pred_src : int array;
  pred_weight : int array;
  succ_off : int array;  (** length [nv + 1] *)
  succ_dst : int array;
  succ_weight : int array;
}

val csr : t -> csr

val is_legal : t -> r:int array -> bool
(** [r.(host) = r.(host_sink) = 0] and all retimed edge weights
    [w + r(dst) - r(src)] non-negative. *)

val normalize : t -> r:int array -> int array
(** Shifts labels so that [r.(host) = 0].
    @raise Invalid_argument if the two host labels differ. *)

val total_latches_after : t -> r:int array -> int
(** Per-edge latch total after retiming (an upper bound on the real latch
    count; {!apply} shares fanout chains). *)

val apply : t -> r:int array -> Circuit.t
(** Rebuilds the netlist with latches moved according to [r] (fanout latch
    chains shared per driver).  Exposed latches are reinstated unmoved.
    Primary input/output names are preserved.
    @raise Invalid_argument if [r] is not legal. *)
