open Vgraph

(* ------------------------------------------------------------------ *)
(* Naive reference engine: rebuilds the zero-weight subgraph and       *)
(* re-sorts it on every FEAS round, and cold-starts every period       *)
(* probed by the binary search.  Retained for differential tests and   *)
(* paired benchmarks.                                                  *)
(* ------------------------------------------------------------------ *)

module Naive = struct
  let zero_weight_topo (g : Rgraph.t) ~r =
    (* subgraph of register-free edges *)
    let sub = Digraph.create () in
    Digraph.add_nodes sub (Digraph.node_count g.graph);
    Digraph.iter_edges
      (fun _ e ->
        let w = e.weight + r.(e.dst) - r.(e.src) in
        assert (w >= 0);
        if w = 0 then ignore (Digraph.add_edge sub e.src e.dst))
      g.graph;
    (sub, Topo.sort_exn sub)

  let arrival g ~r =
    let sub, order = zero_weight_topo g ~r in
    let n = Digraph.node_count sub in
    let delta = Array.make n 0 in
    List.iter
      (fun v ->
        let best = ref 0 in
        Digraph.iter_pred sub v (fun _ e -> best := max !best delta.(e.src));
        delta.(v) <- !best + g.delay.(v))
      order;
    delta

  let period_of g ~r = Array.fold_left max 0 (arrival g ~r)

  let feasible ?init g ~period =
    let n = Digraph.node_count g.Rgraph.graph in
    let r = match init with Some r -> Array.copy r | None -> Array.make n 0 in
    assert (Rgraph.is_legal g ~r:(Rgraph.normalize g ~r));
    (* FEAS: repeatedly advance every too-late gate by one register.  The host
       vertices are pinned; if an increment would make an I/O edge negative
       the period is unachievable (a register cannot move past the
       environment), which surfaces as an illegal intermediate labeling. *)
    let ok = ref false in
    let legal = ref true in
    let i = ref 0 in
    while !legal && (not !ok) && !i <= n do
      let delta = arrival g ~r in
      let violated = ref false in
      for v = 2 to n - 1 do
        if delta.(v) > period then begin
          violated := true;
          r.(v) <- r.(v) + 1
        end
      done;
      if not !violated then ok := true
      else if not (Rgraph.is_legal g ~r) then legal := false;
      incr i
    done;
    if !ok then Some (Rgraph.normalize g ~r) else None

  let min_period g =
    let n = Digraph.node_count g.Rgraph.graph in
    let r0 = Array.make n 0 in
    let hi0 = period_of g ~r:r0 in
    let lo0 = Array.fold_left max 0 g.delay in
    let rec search lo hi best =
      if lo >= hi then best
      else
        let mid = (lo + hi) / 2 in
        match feasible g ~period:mid with
        | Some r -> search lo mid (mid, r)
        | None -> search (mid + 1) hi best
    in
    search lo0 hi0 (hi0, r0)
end

(* ------------------------------------------------------------------ *)
(* Incremental engine.                                                 *)
(*                                                                     *)
(* One CSR image of the retiming graph (predecessor and successor      *)
(* halves) is built per search and shared, read-only, by every FEAS    *)
(* run; each run owns a small mutable state (labels, arrivals and the  *)
(* Kahn/DFS scratch).  A FEAS round then touches only the "dirty"      *)
(* region — the zero-weight-successor closure of the vertices whose    *)
(* label changed — instead of re-deriving the whole zero-weight        *)
(* subgraph:                                                           *)
(*   · incrementing r(v) changes retimed weights only on edges         *)
(*     incident to v, so arrivals can change only inside that          *)
(*     closure (a clean vertex keeps its zero-predecessor set and      *)
(*     their final arrivals);                                          *)
(*   · within the region arrivals are recomputed by a local Kahn       *)
(*     pass seeded with the arrivals of clean zero-predecessors.       *)
(* Legality is likewise incremental: an edge weight can only drop      *)
(* when its source was incremented, so checking the out-edges of the   *)
(* round's violators catches the first illegal labeling.               *)
(* ------------------------------------------------------------------ *)

type csr = {
  g : Rgraph.t;
  n : int;
  delay : int array;
  pof : int array;  (* length n+1: predecessor offsets *)
  psrc : int array;
  pw : int array;
  sof : int array;  (* length n+1: successor offsets *)
  sdst : int array;
  sw : int array;
}

type state = {
  c : csr;
  r : int array;
  delta : int array;
  indeg : int array;
  best : int array;
  queue : int array;
  dirty : int array;
  mutable ndirty : int;
  mark : int array;
  mutable stamp : int;
  viol : int array;
  mutable nviol : int;
}

let csr (g : Rgraph.t) =
  let c = Rgraph.csr g in
  {
    g;
    n = c.Rgraph.nv;
    delay = g.delay;
    pof = c.pred_off;
    psrc = c.pred_src;
    pw = c.pred_weight;
    sof = c.succ_off;
    sdst = c.succ_dst;
    sw = c.succ_weight;
  }

let make_state c =
  let n = max c.n 1 in
  {
    c;
    r = Array.make n 0;
    delta = Array.make n 0;
    indeg = Array.make n 0;
    best = Array.make n 0;
    queue = Array.make n 0;
    dirty = Array.make n 0;
    ndirty = 0;
    mark = Array.make n (-1);
    stamp = 0;
    viol = Array.make n 0;
    nviol = 0;
  }

(* Arrival of every vertex from scratch: one Kahn pass over the implicit
   zero-weight subgraph. *)
let full_arrival st =
  let c = st.c in
  let n = c.n in
  let r = st.r in
  let indeg = st.indeg and best = st.best and queue = st.queue in
  for v = 0 to n - 1 do
    indeg.(v) <- 0;
    best.(v) <- 0
  done;
  for v = 0 to n - 1 do
    for k = c.pof.(v) to c.pof.(v + 1) - 1 do
      let w = c.pw.(k) + r.(v) - r.(c.psrc.(k)) in
      assert (w >= 0);
      if w = 0 then indeg.(v) <- indeg.(v) + 1
    done
  done;
  let qt = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      queue.(!qt) <- v;
      incr qt
    end
  done;
  let qh = ref 0 in
  while !qh < !qt do
    let v = queue.(!qh) in
    incr qh;
    let dv = best.(v) + c.delay.(v) in
    st.delta.(v) <- dv;
    for k = c.sof.(v) to c.sof.(v + 1) - 1 do
      let y = c.sdst.(k) in
      if c.sw.(k) + r.(y) - r.(v) = 0 then begin
        if dv > best.(y) then best.(y) <- dv;
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then begin
          queue.(!qt) <- y;
          incr qt
        end
      end
    done
  done;
  (* a zero-weight cycle would mean a register-free feedback loop *)
  assert (!qt = n)

(* Recompute arrivals after the labels of [st.viol] were incremented.
   The affected region is the closure of the changed vertices over
   currently-zero-weight successor edges (an out-edge of a changed vertex
   just dropped 1 -> 0, an in-edge of a changed vertex rose 0 -> 1; both
   endpoints whose arrival can move are in that closure). *)
let update_arrival st =
  let c = st.c in
  let r = st.r in
  st.stamp <- st.stamp + 1;
  let stamp = st.stamp in
  let mark = st.mark and queue = st.queue and dirty = st.dirty in
  let qt = ref 0 in
  for i = 0 to st.nviol - 1 do
    let v = st.viol.(i) in
    if mark.(v) <> stamp then begin
      mark.(v) <- stamp;
      queue.(!qt) <- v;
      incr qt
    end
  done;
  st.ndirty <- 0;
  while !qt > 0 do
    decr qt;
    let v = queue.(!qt) in
    dirty.(st.ndirty) <- v;
    st.ndirty <- st.ndirty + 1;
    for k = c.sof.(v) to c.sof.(v + 1) - 1 do
      let y = c.sdst.(k) in
      if c.sw.(k) + r.(y) - r.(v) = 0 && mark.(y) <> stamp then begin
        mark.(y) <- stamp;
        queue.(!qt) <- y;
        incr qt
      end
    done
  done;
  let indeg = st.indeg and best = st.best in
  for i = 0 to st.ndirty - 1 do
    let v = dirty.(i) in
    indeg.(v) <- 0;
    best.(v) <- 0
  done;
  for i = 0 to st.ndirty - 1 do
    let v = dirty.(i) in
    for k = c.pof.(v) to c.pof.(v + 1) - 1 do
      let u = c.psrc.(k) in
      let w = c.pw.(k) + r.(v) - r.(u) in
      assert (w >= 0);
      if w = 0 then
        if mark.(u) = stamp then indeg.(v) <- indeg.(v) + 1
        else if st.delta.(u) > best.(v) then best.(v) <- st.delta.(u)
    done
  done;
  let qh = ref 0 in
  qt := 0;
  for i = 0 to st.ndirty - 1 do
    let v = dirty.(i) in
    if indeg.(v) = 0 then begin
      queue.(!qt) <- v;
      incr qt
    end
  done;
  while !qh < !qt do
    let v = queue.(!qh) in
    incr qh;
    let dv = best.(v) + c.delay.(v) in
    st.delta.(v) <- dv;
    for k = c.sof.(v) to c.sof.(v + 1) - 1 do
      let y = c.sdst.(k) in
      if c.sw.(k) + r.(y) - r.(v) = 0 then begin
        (* zero successors of a dirty vertex are dirty by construction *)
        if dv > best.(y) then best.(y) <- dv;
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then begin
          queue.(!qt) <- y;
          incr qt
        end
      end
    done
  done;
  assert (!qt = st.ndirty);
  Obs.count "feas.dirty_vertices" st.ndirty

type outcome = Feasible | Illegal | Exhausted

(* FEAS rounds at [period], starting from the labeling held in [st]
   (whose [delta] must be current).  On [Feasible], [st.r] holds the
   result; on [Illegal]/[Exhausted] the state is left mid-iteration. *)
let run st ~period =
  let c = st.c in
  let n = c.n in
  let r = st.r in
  st.nviol <- 0;
  for v = 2 to n - 1 do
    if st.delta.(v) > period then begin
      st.viol.(st.nviol) <- v;
      st.nviol <- st.nviol + 1
    end
  done;
  let rounds = ref 0 in
  let outcome = ref Feasible in
  while st.nviol > 0 && !outcome = Feasible do
    if !rounds > n then outcome := Exhausted
    else begin
      incr rounds;
      Obs.count "feas.rounds" 1;
      Obs.count "feas.relabels" st.nviol;
      for i = 0 to st.nviol - 1 do
        let v = st.viol.(i) in
        r.(v) <- r.(v) + 1
      done;
      (* only out-edges of incremented vertices can have dropped below 0 *)
      let legal = ref true in
      for i = 0 to st.nviol - 1 do
        let v = st.viol.(i) in
        for k = c.sof.(v) to c.sof.(v + 1) - 1 do
          if c.sw.(k) + r.(c.sdst.(k)) - r.(v) < 0 then legal := false
        done
      done;
      if not !legal then outcome := Illegal
      else begin
        update_arrival st;
        st.nviol <- 0;
        for i = 0 to st.ndirty - 1 do
          let v = st.dirty.(i) in
          if v >= 2 && st.delta.(v) > period then begin
            st.viol.(st.nviol) <- v;
            st.nviol <- st.nviol + 1
          end
        done
      end
    end
  done;
  !outcome

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let arrival g ~r =
  let c = csr g in
  let st = make_state c in
  Array.blit r 0 st.r 0 c.n;
  full_arrival st;
  st.delta

let period_of g ~r = Array.fold_left max 0 (arrival g ~r)

let feasible ?init g ~period =
  let c = csr g in
  let st = make_state c in
  (match init with
  | Some r ->
      assert (Rgraph.is_legal g ~r:(Rgraph.normalize g ~r));
      Array.blit r 0 st.r 0 c.n
  | None -> ());
  full_arrival st;
  match run st ~period with
  | Feasible -> Some (Rgraph.normalize g ~r:st.r)
  | Illegal | Exhausted -> None

(* Warm-started binary search.
   FEAS from the all-zero labeling computes the pointwise-minimal feasible
   retiming at its period (every increment it performs is forced), and the
   feasible labelings at period p' < p are a subset of those at p — so the
   minimal labelings are monotone: r_min(p) <= r_min(p') pointwise.
   Seeding FEAS at p' with r_min(p) is therefore sound (it starts below
   the labeling it must reach) and preserves minimality, so the invariant
   carries across the whole search.  A run that exhausts its round bound
   is re-checked cold before the period is declared infeasible. *)
let min_period ?pool g =
  Obs.span ~name:"feas.min_period" @@ fun () ->
  let c = csr g in
  let n = c.n in
  let st = make_state c in
  full_arrival st;
  let hi0 = Array.fold_left max 0 st.delta in
  let lo0 = Array.fold_left max 0 g.Rgraph.delay in
  Obs.attr (fun () -> [ ("lo", Obs.Int lo0); ("hi", Obs.Int hi0) ]);
  if hi0 <= lo0 then (hi0, Array.make n 0)
  else begin
    let best_r = Array.make n 0 in
    let best_delta = Array.copy st.delta in
    let save st =
      Array.blit st.r 0 best_r 0 n;
      Array.blit st.delta 0 best_delta 0 n
    in
    let restore st =
      Array.blit best_r 0 st.r 0 n;
      Array.blit best_delta 0 st.delta 0 n
    in
    (* probe [p] on [st], warm from the saved minimal labeling of the
       current upper bound; false-negative-free thanks to the cold retry *)
    let probe st p =
      restore st;
      match run st ~period:p with
      | Feasible -> true
      | Illegal -> false
      | Exhausted ->
          Array.fill st.r 0 n 0;
          full_arrival st;
          run st ~period:p = Feasible
    in
    let lo = ref (lo0 - 1) and hi = ref hi0 in
    (* delay-profile lower bound first: for balanced pipelines the search
       collapses to a single FEAS run *)
    if probe st lo0 then begin
      save st;
      hi := lo0
    end
    else lo := lo0;
    (match pool with
    | Some pool when Par.Pool.jobs pool > 1 && !hi - !lo > 2 ->
        let jobs = Par.Pool.jobs pool in
        while !hi - !lo > 1 do
          let w = !hi - !lo - 1 in
          let np = min jobs w in
          let pts =
            if np = 1 then [ (!lo + !hi) / 2 ]
            else
              List.init np (fun j -> !lo + 1 + (j * (w - 1) / (np - 1)))
          in
          let results =
            Par.Pool.map pool
              (fun p ->
                let stp = make_state c in
                let ok = probe stp p in
                (p, ok, (if ok then Some (Array.copy stp.r) else None)))
              pts
          in
          let feas = List.filter (fun (_, ok, _) -> ok) results in
          (match feas with
          | [] -> lo := List.fold_left (fun acc (p, _, _) -> max acc p) !lo results
          | _ ->
              let p, _, rl =
                List.fold_left
                  (fun ((bp, _, _) as b) ((p, _, _) as x) ->
                    if p < bp then x else b)
                  (List.hd feas) (List.tl feas)
              in
              hi := p;
              Array.blit (Option.get rl) 0 best_r 0 n;
              Array.blit (Option.get rl) 0 st.r 0 n;
              full_arrival st;
              Array.blit st.delta 0 best_delta 0 n;
              List.iter
                (fun (q, ok, _) -> if (not ok) && q < !hi then lo := max !lo q)
                results)
        done
    | _ ->
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if probe st mid then begin
            save st;
            hi := mid
          end
          else lo := mid
        done);
    (!hi, Array.copy best_r)
  end
