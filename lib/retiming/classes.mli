(** Latch classes for load-enabled retiming (Legl et al. [9], Fig. 16).

    A latch class [cl = (e)] groups all latches sharing the enable signal
    [e] (regular latches form the class [None]).  Latches may merge during a
    retiming move only within one class; moving a load-enabled latch
    forward across a gate produces one latch of the same class on the gate
    output (the enable connection travels with the latch). *)

val latch_class : Circuit.t -> Circuit.signal -> Circuit.signal option
(** The enable of a latch ([None] for a regular latch).
    @raise Invalid_argument on non-latches. *)

val classes : Circuit.t -> (Circuit.signal option * Circuit.signal list) list
(** Latches grouped by class. *)

val can_forward_move : Circuit.t -> gate:Circuit.signal -> bool
(** True iff every fanin of [gate] is a latch output and all those latches
    belong to the same class — the legality condition of a forward move. *)

val forward_move : Circuit.t -> gate:Circuit.signal -> Circuit.t
(** Applies the Fig. 16 move: the gate reads the latch data inputs directly
    and a single latch of the common class is placed on the gate output.
    The original latches are kept (they may be dangling; a sweep removes
    them).  All other structure, input names, and output order are
    preserved.
    @raise Invalid_argument if the move is illegal. *)

(** {1 Single-class retiming (Legl et al.'s reduction)}

    When every latch in the circuit belongs to one class — all load-enabled
    by the {e same primary input} — retiming reduces to the regular-latch
    problem: conceptually the machine only advances on enabled cycles, and
    on those cycles it behaves exactly like the underlying regular-latch
    machine.  We strip the enables, retime, and re-attach the enable to
    every latch of the result. *)

val single_class_enable : Circuit.t -> Circuit.signal option
(** [Some e] when every latch is load-enabled by the same primary input
    [e]; [None] otherwise (including all-regular circuits — those retime
    directly). *)

val min_period_single_class : Circuit.t -> Circuit.t * Retime.report
(** Minimum-period retiming of a single-class circuit.
    @raise Invalid_argument if {!single_class_enable} is [None]. *)

val constrained_min_area_single_class :
  period:int -> Circuit.t -> (Circuit.t * Retime.report, Retime.error) result
(** Period-constrained minimum-area retiming of a single-class circuit.
    [Error Infeasible_period] if the period is infeasible.
    @raise Invalid_argument if {!single_class_enable} is [None]. *)
