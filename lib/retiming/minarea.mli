(** Minimum-area retiming as a dual min-cost-flow (the algorithm underlying
    Minaret [6]).

    Minimizes the per-edge latch total [Σ_e w_r(e)] subject to legality
    ([w_r(e) ≥ 0]) and, optionally, a clock-period bound implemented by the
    classical [W]/[D]-matrix constraints: [r(u) − r(v) ≤ W(u,v) − 1] for
    every vertex pair with [D(u,v) > c]. *)

val solve : ?period:int -> ?max_exact_vertices:int -> Rgraph.t -> int array option
(** Optimal (normalized, legal) labels, or [None] iff the requested period
    is infeasible (without [period] the base constraint system is always
    satisfiable, so the result is always [Some]).  When a period is
    requested and the graph has more than [max_exact_vertices] (default
    1500) vertices, the quadratic [W]/[D] constraint generation is
    skipped: the unconstrained optimum is repaired with FEAS iterations
    instead (area-suboptimal but period-legal). *)
