(** Minimum-area retiming as a dual min-cost-flow (the algorithm underlying
    Minaret [6]).

    Minimizes the per-edge latch total [Σ_e w_r(e)] subject to legality
    ([w_r(e) ≥ 0]) and, optionally, a clock-period bound implemented by the
    classical [W]/[D]-matrix constraints: [r(u) − r(v) ≤ W(u,v) − 1] for
    every vertex pair with [D(u,v) > c].  Dominated period constraints
    (implied by an earlier violating vertex on the same shortest path plus
    the base edge constraints) are pruned before the flow sees them, and
    the Bellman–Ford feasibility distances seed the flow's potentials. *)

val solve :
  ?period:int ->
  ?max_exact_vertices:int ->
  ?pool:Par.Pool.t ->
  ?reference:bool ->
  Rgraph.t ->
  int array option
(** Optimal (normalized, legal) labels, or [None] iff the requested period
    is infeasible (without [period] the base constraint system is always
    satisfiable, so the result is always [Some]).  When a period is
    requested and the graph has more than [max_exact_vertices] (default
    4000) vertices, the quadratic [W]/[D] constraint generation is
    skipped: the unconstrained optimum is repaired with FEAS iterations
    instead (area-suboptimal but period-legal).

    [pool] parallelizes the per-source W/D Dijkstras of the constraint
    generation.  [reference] (default false) routes the whole solve
    through the retained original implementations — unpruned constraint
    generation, the pre-scaling flow core, naive FEAS repair — for
    differential testing and paired benchmarks; both engines reach the
    same optimal latch total, though tie-breaking between equal-cost
    labelings may differ. *)
