(** Minimum-period retiming: the FEAS algorithm of Leiserson–Saxe with a
    binary search over clock periods (unit-delay model).

    The engine is incremental: one CSR image of the retiming graph is
    shared by every FEAS run, and each round recomputes arrival times only
    over the zero-weight-successor closure of the vertices whose label
    changed.  The binary search is warm-started — FEAS from the all-zero
    labeling yields the pointwise-{e minimal} feasible retiming, and
    minimal labelings are monotone in the period, so each probe seeds from
    the labeling of the best period found so far.  {!Naive} retains the
    original cold-start implementation as a differential-testing
    reference. *)

val arrival : Rgraph.t -> r:int array -> int array
(** Combinational arrival time Δ(v) of every vertex under retiming labels
    [r]: the longest register-free path delay ending at (and including)
    [v]. *)

val period_of : Rgraph.t -> r:int array -> int
(** Clock period of the retimed graph: max arrival time. *)

val feasible : ?init:int array -> Rgraph.t -> period:int -> int array option
(** [feasible g ~period] is [Some r] (normalized, legal) if a retiming
    achieving the period exists, starting the FEAS iteration from [init]
    (default all-zero, which must be legal). *)

val min_period : ?pool:Par.Pool.t -> Rgraph.t -> int * int array
(** The minimum feasible clock period and labels achieving it.  The search
    interval comes from the delay profile (max gate delay up to the period
    of the unretimed graph), and the delay-profile lower bound is probed
    first so balanced pipelines collapse to a single FEAS run.  With
    [pool], each bisection step probes [Par.Pool.jobs pool] candidate
    periods in parallel (each probe runs on its own state against the
    shared CSR). *)

(** The original implementation: per-round zero-weight subgraph + topo
    sort, cold-started bisection.  Reference for property tests and the
    paired before/after benchmark rows. *)
module Naive : sig
  val arrival : Rgraph.t -> r:int array -> int array

  val period_of : Rgraph.t -> r:int array -> int

  val feasible : ?init:int array -> Rgraph.t -> period:int -> int array option

  val min_period : Rgraph.t -> int * int array
end
