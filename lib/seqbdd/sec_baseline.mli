(** The classical baseline: sequential equivalence by symbolic traversal of
    the product machine ([13, 14] in the paper).

    The two circuits are joined on their (name-matched) primary inputs and
    the product machine is traversed from the all-zero power-up state (the
    classical reset-equivalence setting — with unknown power-up the strong
    all-pairs criterion would reject even identical circuits whose state
    never flushes, e.g. any load-enabled latch).  Because a retimed circuit
    may disagree during the first few cycles (the initialization transient
    — see README "fine print"), outputs are compared on the {e recurrent}
    subset of the reachable states: the greatest fixpoint of the image
    inside the reachable set.

    This is exactly the approach whose cost explodes with the latch count;
    the bench uses it to reproduce the paper's observation that "for only
    few of these sequential circuits the state-space can be traversed". *)

type verdict =
  | Equivalent
  | Inequivalent  (** some recurrent product state distinguishes them *)
  | Resource_out of string  (** node budget / step bound exceeded *)

type stats = {
  steps : int;  (** image computations performed *)
  peak_nodes : int;  (** BDD manager size at the end *)
  product_states : float;  (** recurrent product states (if finished) *)
  seconds : float;  (** wall clock ({!Obs.Clock}, monotonic) *)
}

val check :
  ?node_limit:int ->
  ?max_steps:int ->
  Circuit.t ->
  Circuit.t ->
  verdict * stats
(** [check c1 c2] with a default node budget of 2_000_000 nodes and at most
    [max_steps] (default 4096) image steps.
    @raise Invalid_argument if output counts differ. *)
