type verdict = Equivalent | Inequivalent | Resource_out of string

type stats = {
  steps : int;
  peak_nodes : int;
  product_states : float;
  seconds : float;
}

(* Join the two circuits into one netlist over name-matched inputs: the
   product machine is then just [Transition.build] of the join. *)
let product_circuit c1 c2 =
  if List.length (Circuit.outputs c1) <> List.length (Circuit.outputs c2) then
    invalid_arg "Sec_baseline.check: output counts differ";
  let nc = Circuit.create (Circuit.name c1 ^ "_x_" ^ Circuit.name c2) in
  let inputs = Hashtbl.create 16 in
  let input_for name =
    match Hashtbl.find_opt inputs name with
    | Some s -> s
    | None ->
        let s = Circuit.add_input nc name in
        Hashtbl.replace inputs name s;
        s
  in
  let copy prefix c =
    let map = Hashtbl.create 64 in
    (* declare *)
    for s = 0 to Circuit.signal_count c - 1 do
      match Circuit.driver c s with
      | Input -> Hashtbl.replace map s (input_for (Circuit.signal_name c s))
      | Gate _ | Latch _ ->
          Hashtbl.replace map s
            (Circuit.declare nc ~name:(prefix ^ Circuit.signal_name c s) ())
      | Undriven -> ()
    done;
    let get s = Hashtbl.find map s in
    for s = 0 to Circuit.signal_count c - 1 do
      match Circuit.driver c s with
      | Undriven | Input -> ()
      | Gate (fn, fs) -> Circuit.set_gate nc (get s) fn (Array.to_list (Array.map get fs))
      | Latch { data; enable } ->
          Circuit.set_latch nc (get s) ?enable:(Option.map get enable) ~data:(get data) ()
    done;
    List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c)
  in
  copy "l$" c1;
  copy "r$" c2;
  Circuit.check nc;
  nc

let check ?(node_limit = 2_000_000) ?(max_steps = 4096) c1 c2 =
  (* monotonic wall clock, like every other [seconds] in the tree — CPU
     time would under-report a baseline that blocks or over-report one
     racing other domains *)
  let t0 = Obs.Clock.now () in
  let n_out = List.length (Circuit.outputs c1) in
  let finish verdict steps product_states man =
    ( verdict,
      {
        steps;
        peak_nodes = (match man with Some m -> Bdd.node_count m | None -> 0);
        product_states;
        seconds = Obs.Clock.now () -. t0;
      } )
  in
  match Transition.build ~node_limit (product_circuit c1 c2) with
  | exception Transition.Node_limit ->
      finish (Resource_out "node budget during transition-function construction") 0 0. None
  | t -> (
      let man = t.Transition.man in
      (* miter over outputs: out1_i <> out2_i for some i *)
      let miter =
        let acc = ref (Bdd.zero man) in
        for i = 0 to n_out - 1 do
          acc :=
            Bdd.or_ man !acc
              (Bdd.xor_ man t.Transition.outputs.(i) t.Transition.outputs.(n_out + i))
        done;
        !acc
      in
      (* reset-style traversal: both machines power up at the all-zero
         state, the reachable set R is computed (least fixpoint), and the
         transient is discarded by a greatest fixpoint of the image inside
         R (the recurrent set). *)
      let zero =
        Bdd.and_list man
          (List.map
             (fun v -> Bdd.not_ man (Bdd.var man v))
             (Array.to_list t.Transition.state_vars))
      in
      match Transition.reachable ~node_limit ~max_steps t ~init:zero with
      | None -> finish (Resource_out "node/step budget during reachability") 0 0. (Some man)
      | Some reached -> (
          let rec settle s steps =
            if steps > max_steps then Error "step bound"
            else
              match Transition.image ~node_limit t s with
              | exception Transition.Node_limit -> Error "node budget during traversal"
              | s' -> if Bdd.equal s' s then Ok (s, steps) else settle s' (steps + 1)
          in
          match settle reached 0 with
          | Error why -> finish (Resource_out why) 0 0. (Some man)
          | Ok (recurrent, steps) ->
              let bad = Bdd.and_ man recurrent miter in
              let verdict = if Bdd.is_zero man bad then Equivalent else Inequivalent in
              finish verdict steps (Transition.state_count t recurrent) (Some man)))
