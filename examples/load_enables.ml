(* Load-enabled latches and Event-Driven Boolean Functions (Sections 4.2,
   5.2): the Fig. 10 false negative removed by the rule-(5) rewrite, and a
   Fig. 11-style genuine false negative that survives it.

   Run with: dune exec examples/load_enables.exe *)

let fig10 () =
  (* (a): c -> L1(enable a) -> L2(enable a·b) -> out
     (b): c -> L (enable a·b) -> out
     Because a·b implies a, both capture the same value. *)
  let ca = Circuit.create "fig10a" in
  let cin = Circuit.add_input ca "c" in
  let a = Circuit.add_input ca "a" in
  let b = Circuit.add_input ca "b" in
  let ab = Circuit.add_gate ca And [ a; b ] in
  let l1 = Circuit.add_latch ca ~enable:a ~data:cin () in
  let l2 = Circuit.add_latch ca ~enable:ab ~data:l1 () in
  Circuit.mark_output ca l2;
  Circuit.check ca;
  let cb = Circuit.create "fig10b" in
  let cin = Circuit.add_input cb "c" in
  let a = Circuit.add_input cb "a" in
  let b = Circuit.add_input cb "b" in
  let ab = Circuit.add_gate cb And [ a; b ] in
  Circuit.mark_output cb (Circuit.add_latch cb ~enable:ab ~data:cin ());
  Circuit.check cb;
  (ca, cb)

let show_events table c =
  match Edbf.unroll ~table (Seqprob.builder ()) c with
  | Ok (_, info) -> info
  | Error d -> failwith (Seqprob.diagnosis_to_string d)

let () =
  let ca, cb = fig10 () in

  Format.printf "--- Fig. 10: the rewrite rule (5) ---@.";
  (* without the rewrite: conservative false negative *)
  (match Result.get_ok (Verify.check ~rewrite_events:false ca cb) with
  | { Verify.verdict = Verify.Inequivalent None; _ } ->
      Format.printf "without rule (5): NOT EQUIVALENT — a false negative@."
  | { verdict = Verify.Equivalent; _ } ->
      Format.printf "without rule (5): equivalent (unexpected)@."
  | { verdict = Verify.Inequivalent (Some _); _ } -> assert false
  | { verdict = Verify.Undecided _; _ } -> assert false);
  (* with it (the default): proven *)
  (match Result.get_ok (Verify.check ca cb) with
  | { Verify.verdict = Verify.Equivalent; stats } ->
      Format.printf "with rule (5):    EQUIVALENT (%d events interned)@." stats.Verify.events
  | { verdict = Verify.Inequivalent _; _ } ->
      Format.printf "with rule (5):    still inequivalent (bug)@."
  | { verdict = Verify.Undecided _; _ } ->
      Format.printf "with rule (5):    undecided (bug)@.");

  (* peek at the event structure *)
  let table = Events.create () in
  let ia = show_events table ca in
  let ib = show_events table cb in
  Format.printf "unrolled: (a) %d vars / %d gate instances, (b) %d vars / %d@."
    ia.Edbf.variables ia.Edbf.replication ib.Edbf.variables ib.Edbf.replication;

  Format.printf "@.--- Fig. 11: a genuine false negative ---@.";
  (* L(enable a+b, data b)  vs  L(enable a+b, data a+b): different data
     functions picked from different decompositions of the same feedback
     behaviour; the EDBF comparison conservatively rejects them. *)
  let c1 = Circuit.create "fig11a" in
  let a = Circuit.add_input c1 "a" in
  let b = Circuit.add_input c1 "b" in
  let ab = Circuit.add_gate c1 Or [ a; b ] in
  Circuit.mark_output c1 (Circuit.add_latch c1 ~enable:ab ~data:b ());
  Circuit.check c1;
  let c2 = Circuit.create "fig11b" in
  let a = Circuit.add_input c2 "a" in
  let b = Circuit.add_input c2 "b" in
  let ab = Circuit.add_gate c2 Or [ a; b ] in
  Circuit.mark_output c2 (Circuit.add_latch c2 ~enable:ab ~data:ab ());
  Circuit.check c2;
  (match Result.get_ok (Verify.check c1 c2) with
  | { Verify.verdict = Verify.Inequivalent None; _ } ->
      Format.printf
        "EDBF says NOT EQUIVALENT, with no counterexample: possibly a false@.";
      Format.printf
        "negative (here the machines genuinely differ when a=1, b=0 fires).@."
  | { verdict = Verify.Equivalent; _ } -> Format.printf "equivalent (unexpected)@."
  | { verdict = Verify.Inequivalent (Some _); _ } -> assert false
  | { verdict = Verify.Undecided _; _ } -> assert false);

  Format.printf "@.--- load-enabled synthesis is still verifiable ---@.";
  let c = Circuit.create "enabled_design" in
  let din = List.init 6 (fun i -> Circuit.add_input c (Printf.sprintf "d%d" i)) in
  let en = Circuit.add_input c "en" in
  let stage1 =
    List.map (fun d -> Circuit.add_latch c ~enable:en ~data:d ()) din
  in
  let reduced = Circuit.add_gate c Xor stage1 in
  let out = Circuit.add_latch c ~enable:en ~data:reduced () in
  Circuit.mark_output c out;
  Circuit.check c;
  let optimized = Synth_script.delay_script c in
  match Result.get_ok (Verify.check c optimized) with
  | { Verify.verdict = Verify.Equivalent; stats } ->
      Format.printf "synthesized enabled design: EQUIVALENT (%s, %d events)@."
        (match stats.Verify.method_ with
        | Verify.Edbf_method -> "EDBF"
        | Verify.Cbf_method -> "CBF")
        stats.Verify.events
  | { verdict = Verify.Inequivalent _; _ } ->
      Format.printf "synthesized enabled design: NOT EQUIVALENT (bug!)@."
  | { verdict = Verify.Undecided _; _ } ->
      Format.printf "synthesized enabled design: UNDECIDED (bug!)@."
