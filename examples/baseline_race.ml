(* The core scaling claim: classical symbolic state traversal dies where
   the combinational reduction keeps cruising — plus the semantic gap
   between reset equivalence and the paper's exact 3-valued equivalence.

   Run with: dune exec examples/baseline_race.exe *)

let () =
  Format.printf "retimed-pipeline verification: traversal vs reduction@.@.";
  List.iter
    (fun (width, stages) ->
      let name = Printf.sprintf "pipe%dx%d" width stages in
      let c = Workloads.pipeline ~name ~width ~stages ~imbalance:3 ~seed:7 in
      let optimized, _ = Retime.min_period (Synth_script.delay_script c) in
      let bverdict, bstats = Sec_baseline.check ~node_limit:300_000 c optimized in
      let outcome = Result.get_ok (Verify.check c optimized) in
      Format.printf "%-10s %3d latches | traversal %8.3fs %-8s | reduction %8.3fs %s@."
        name (Circuit.latch_count c) bstats.Sec_baseline.seconds
        (match bverdict with
        | Sec_baseline.Equivalent -> "EQ"
        | Sec_baseline.Inequivalent -> "NEQ"
        | Sec_baseline.Resource_out _ -> "gave up")
        outcome.Verify.stats.Verify.seconds
        (match outcome.Verify.verdict with
        | Verify.Equivalent -> "EQ"
        | Verify.Inequivalent _ -> "NEQ"
        | Verify.Undecided _ -> "UNDEC"))
    [ (4, 3); (8, 4); (12, 5); (16, 6) ];

  (* The two notions of equivalence part ways on feedback state that
     integrates a power-up transient. *)
  Format.printf "@.semantic gap demo (toggle fed by a retimed pipeline latch):@.";
  let b = Circuit.create "gapB" in
  let i = Circuit.add_input b "i" in
  let p = Circuit.add_latch b ~data:i () in
  let q = Circuit.declare b ~name:"q" () in
  Circuit.set_latch b q ~data:(Circuit.add_gate b Xor [ q; p ]) ();
  Circuit.mark_output b q;
  Circuit.check b;
  let c = Circuit.create "gapC" in
  let i = Circuit.add_input c "i" in
  let p' = Circuit.add_latch c ~data:(Circuit.add_gate c Not [ i ]) () in
  let q' = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q'
    ~data:(Circuit.add_gate c Xor [ q'; Circuit.add_gate c Not [ p' ] ])
    ();
  Circuit.mark_output c q';
  Circuit.check c;
  let rv = (Result.get_ok (Verify.check ~exposed:[ "q" ] b c)).Verify.verdict in
  let bv, _ = Sec_baseline.check b c in
  Format.printf "  reduction (exact 3-valued): %s@."
    (match rv with Verify.Equivalent -> "EQUIVALENT" | _ -> "NOT EQUIVALENT");
  Format.printf "  traversal (reset from 0):   %s@."
    (match bv with
    | Sec_baseline.Equivalent -> "EQUIVALENT"
    | Sec_baseline.Inequivalent -> "NOT EQUIVALENT"
    | Sec_baseline.Resource_out _ -> "gave up");
  Format.printf
    "  (both are right: under unknown power-up the toggles' phases are ⊥ in@.";
  Format.printf
    "   both circuits; from the all-zero reset the retimed inverter pair@.";
  Format.printf "   flips the accumulated parity forever — Section 3.2's point.)@."
