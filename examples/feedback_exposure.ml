(* Section 6 end to end: a design mixing pipeline latches with FSM-style
   feedback registers.  The structural analysis finds a minimum feedback
   vertex set to expose; the functional (unateness) analysis additionally
   converts conditional-update registers into load-enabled latches
   (Figs. 12-15), reducing the exposed count.  The full Fig. 19 flow then
   optimizes and verifies the design.

   Run with: dune exec examples/feedback_exposure.exe *)

let () =
  let c =
    Workloads.fsm_datapath ~name:"controller" ~latches:48 ~self_loops:16 ~gates:400
      ~width:10 ~seed:99
  in
  Format.printf "design: %a@." Circuit.stats_pp c;

  (* per-latch feedback analysis *)
  let analyses = Feedback.analyze c in
  let self_loops = List.filter (fun a -> a.Feedback.self_feedback) analyses in
  let unate = List.filter (fun a -> a.Feedback.positive_unate) self_loops in
  Format.printf "feedback:  %d of %d latches have self-feedback, %d positive-unate@."
    (List.length self_loops) (List.length analyses) (List.length unate);

  (* exposure plans: structural (paper's experiments) vs functional *)
  let structural = Feedback.plan_structural c in
  let functional = Feedback.plan_functional c in
  Format.printf "exposure:  structural %d latches, functional %d (+ %d converted)@."
    (List.length structural.Feedback.exposed)
    (List.length functional.Feedback.exposed)
    (List.length functional.Feedback.converted);

  (* Lemma 6.1 decomposition of one conditional register, spelled out *)
  (match functional.Feedback.converted with
  | [] -> ()
  | l :: _ ->
      let man, f, _ = Feedback.next_state_function c l in
      (match Feedback.decompose man f ~x:0 ~dchoice:Feedback.D_low with
      | Some (e, d) ->
          Format.printf
            "lemma 6.1: latch %s: F = e·d + ē·x with |e| = %d BDD nodes, |d| = %d@."
            (Circuit.signal_name c l) (Bdd.size man e) (Bdd.size man d)
      | None -> assert false));

  (* the full experimental flow (Fig. 19) *)
  let row =
    match Flow.run c with
    | Ok row -> row
    | Error d -> failwith (Seqprob.diagnosis_to_string d)
  in
  Format.printf "flow:      exposed %d (%.0f%%)@." row.Flow.exposed row.Flow.exposed_percent;
  Format.printf "  C (retime+synth): delay %d, area %d, latches %d@." row.Flow.c.Flow.delay
    row.Flow.c.Flow.area row.Flow.c.Flow.latches;
  Format.printf "  D (synth only):   delay %d, area %d@." row.Flow.d.Flow.delay
    row.Flow.d.Flow.area;
  Format.printf "  E (min-area at D): latches %d@." row.Flow.e.Flow.latches;
  Format.printf "  F (no exposure):  delay %d, latches %d@." row.Flow.f.Flow.delay
    row.Flow.f.Flow.latches;
  Format.printf "  verification:     %s in %.3fs@."
    (match row.Flow.verify_verdict with
    | Verify.Equivalent -> "EQUIVALENT"
    | Verify.Inequivalent _ -> "NOT EQUIVALENT"
    | Verify.Undecided _ -> "UNDECIDED")
    row.Flow.verify_seconds
