(* Tracing: run the full Table-1 pipeline on one circuit with the Obs sink
   enabled, write a Chrome trace (load it at https://ui.perfetto.dev or in
   chrome://tracing) and print the span-tree summary on stdout.

   Run with: dune exec examples/tracing.exe *)

let () =
  let circuit = Workloads.by_name "s953" in

  (* Everything emitted after [enable] is buffered per domain; with the
     sink disabled (the default) each instrumentation site costs a single
     atomic load, so libraries stay instrumented in production. *)
  Obs.enable ();

  (match Flow.run ~jobs:2 ~limits:Cec.default_limits circuit with
  | Error d -> failwith (Seqprob.diagnosis_to_string d)
  | Ok row ->
      Format.printf "%s: verdict %s, verify %.3fs@." row.Flow.name
        (match row.Flow.verify_verdict with
        | Verify.Equivalent -> "EQUIVALENT"
        | Verify.Inequivalent _ -> "NOT EQUIVALENT"
        | Verify.Undecided r -> "UNDECIDED (" ^ r ^ ")")
        row.Flow.verify_seconds;
      (* per-stage wall clock straight off the row — no sink needed *)
      List.iter
        (fun (stage, dt) -> Format.printf "  stage %-7s %.3fs@." stage dt)
        row.Flow.stage_seconds);

  (* one merged, time-sorted event list; each sink renders the same list *)
  let events = Obs.collect () in

  let oc = open_out "trace.json" in
  Obs.Chrome.write oc events;
  close_out oc;
  Format.printf "@.wrote trace.json — open it at https://ui.perfetto.dev@.@.";

  Format.printf "%a@." Obs.Summary.pp events;
  Obs.disable ()
