(* Fig. 1 of the paper: two circuits that conservative 3-valued simulation
   cannot match (it loses X correlation) but that are equivalent under the
   paper's exact 3-valued semantics — and under the CBF reduction.

   Circuit (a): out = q XOR q for a latch q   (always 0, but naive X-sim
   says X at cycle 0).
   Circuit (b): out = constant 0.

   Run with: dune exec examples/three_valued.exe *)

let () =
  let a = Circuit.create "fig1a" in
  let d = Circuit.add_input a "d" in
  let q = Circuit.add_latch a ~data:d () in
  Circuit.mark_output a (Circuit.add_gate a Xor [ q; q ]);
  Circuit.check a;

  let b = Circuit.create "fig1b" in
  let _ = Circuit.add_input b "d" in
  Circuit.mark_output b (Circuit.const_false b);
  Circuit.check b;

  let inputs = [ [| true |]; [| false |]; [| true |] ] in

  Format.printf "conservative 3-valued simulation of (a): ";
  List.iter
    (fun outs -> Array.iter (fun v -> Format.printf "%a" Sim.tv_pp v) outs)
    (Sim.run_3v a ~inputs);
  Format.printf "   <- the X is spurious@.";

  Format.printf "exact 3-valued semantics of (a):         ";
  List.iter
    (fun outs -> Array.iter (fun v -> Format.printf "%a" Sim.tv_pp v) outs)
    (Sim.run_exact a ~inputs);
  Format.printf "@.";

  (match Sim.equivalent_exact a b ~input_seqs:[ inputs ] with
  | None -> Format.printf "exact 3-valued equivalence: (a) = (b)@."
  | Some _ -> Format.printf "exact 3-valued equivalence: (a) <> (b)  (unexpected!)@.");

  (* the CBF reduction agrees: both unroll to the constant 0 function *)
  match Result.get_ok (Verify.check a b) with
  | { Verify.verdict = Verify.Equivalent; stats } ->
      Format.printf "CBF verification: EQUIVALENT (%d variables, %.3fs)@."
        stats.Verify.variables stats.Verify.seconds
  | { verdict = Verify.Inequivalent _; _ } ->
      Format.printf "CBF verification: NOT EQUIVALENT (bug!)@."
  | { verdict = Verify.Undecided _; _ } ->
      Format.printf "CBF verification: UNDECIDED (bug!)@."
