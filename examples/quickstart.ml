(* Quickstart: build a small sequential circuit, optimize it with retiming +
   combinational synthesis, and prove the result equivalent with the
   combinational reduction (CBF).

   Run with: dune exec examples/quickstart.exe *)

(* Copy [c] with every primary output inverted — a seeded bug. *)
let invert_outputs c =
  let inverted = Circuit.create (Circuit.name c ^ "_bug") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  List.iter
    (fun s -> Hashtbl.replace map s (Circuit.add_input inverted (Circuit.signal_name c s)))
    (Circuit.inputs c);
  List.iter
    (fun l ->
      Hashtbl.replace map l (Circuit.declare inverted ~name:(Circuit.signal_name c l) ()))
    (Circuit.latches c);
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          Hashtbl.replace map s
            (Circuit.add_gate inverted fn (Array.to_list (Array.map get fs)))
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.set_latch inverted (get l) ?enable:(Option.map get enable) ~data:(get data) ())
    (Circuit.latches c);
  List.iter
    (fun out -> Circuit.mark_output inverted (Circuit.add_gate inverted Not [ get out ]))
    (Circuit.outputs c);
  Circuit.check inverted;
  inverted

let () =
  (* A 2-stage circuit: parity of the last input nibbles with all the logic
     crammed after the registers (retiming will move it around). *)
  let c = Circuit.create "quickstart" in
  let bits = List.init 4 (fun i -> Circuit.add_input c (Printf.sprintf "x%d" i)) in
  let parity = Circuit.add_gate c Xor bits in
  let r1 = Circuit.add_latch c ~data:parity () in
  let r2 = Circuit.add_latch c ~data:r1 () in
  let mixed = Circuit.add_gate c Xor [ r1; r2 ] in
  let deep =
    List.fold_left
      (fun acc b -> Circuit.add_gate c And [ acc; Circuit.add_gate c Or [ b; mixed ] ])
      mixed bits
  in
  Circuit.mark_output c deep;
  Circuit.check c;
  Format.printf "original:  %a@." Circuit.stats_pp c;

  (* Combinational synthesis (the paper's script.delay stand-in) *)
  let synthesized = Synth_script.delay_script c in
  Format.printf "synth:     %a@." Circuit.stats_pp synthesized;

  (* Min-period retiming *)
  let retimed, report = Retime.min_period synthesized in
  Format.printf "retimed:   %a@." Circuit.stats_pp retimed;
  Format.printf "  period %d -> %d, latches %d -> %d@." report.Retime.period_before
    report.Retime.period_after report.Retime.latches_before report.Retime.latches_after;

  (* Sequential verification via the combinational reduction *)
  let { Verify.verdict; stats } = Result.get_ok (Verify.check c retimed) in
  (match verdict with
  | Verify.Equivalent -> Format.printf "verdict:   EQUIVALENT@."
  | Verify.Inequivalent _ -> Format.printf "verdict:   NOT EQUIVALENT (bug!)@."
  | Verify.Undecided _ -> Format.printf "verdict:   UNDECIDED (bug!)@.");
  Format.printf
    "  method: %s, sequential depth %d, %d unrolled variables, %d AIG nodes, %d SAT calls, %.3fs@."
    (match stats.Verify.method_ with
    | Verify.Cbf_method -> "CBF"
    | Verify.Edbf_method -> "EDBF")
    stats.Verify.depth stats.Verify.variables stats.Verify.unrolled_nodes
    stats.Verify.cec.Cec.sat_calls stats.Verify.seconds;

  (* The checker is not a rubber stamp: a seeded bug is caught. *)
  match Result.get_ok (Verify.check c (invert_outputs retimed)) with
  | { Verify.verdict = Verify.Inequivalent (Some cex); _ } ->
      Format.printf "seeded bug: caught; counterexample assigns %d time-indexed inputs@."
        (List.length cex)
  | { verdict = Verify.Inequivalent None; _ } ->
      Format.printf "seeded bug: caught (conservative)@."
  | { verdict = Verify.Equivalent; _ } ->
      Format.printf "seeded bug: MISSED (checker bug!)@."
  | { verdict = Verify.Undecided _; _ } ->
      Format.printf "seeded bug: UNDECIDED (checker bug!)@."
