(* The Fig. 6 scenario: an acyclic pipelined circuit whose register banks
   sit at the wrong places.  Min-period retiming balances the stages;
   constrained min-area retiming then recovers registers at a target clock;
   both results are verified by the CBF reduction.

   Run with: dune exec examples/pipeline_retiming.exe *)

let show tag c = Format.printf "%-12s %a@." tag Circuit.stats_pp c

let () =
  let c = Workloads.pipeline ~name:"pipeline" ~width:10 ~stages:6 ~imbalance:5 ~seed:2024 in
  show "original" c;

  (* D in the paper's flow: combinational synthesis only *)
  let d = Synth_script.delay_script c in
  show "synth-only" d;

  (* C: synthesis + min-period retiming *)
  let cfast, rep = Retime.min_period d in
  show "min-period" cfast;
  Format.printf "  clock period improved %d -> %d (%.0f%%)@." rep.Retime.period_before
    rep.Retime.period_after
    (100.
    *. float_of_int (rep.Retime.period_before - rep.Retime.period_after)
    /. float_of_int (max 1 rep.Retime.period_before));

  (* E: min-area retiming constrained to the synth-only clock period (the
     circuit already meets it, so the period is feasible by construction) *)
  let carea, rep_a =
    Result.get_ok (Retime.constrained_min_area ~period:(Circuit.delay d) d)
  in
  show "min-area" carea;
  Format.printf "  at period %d: latches %d -> %d@." (Circuit.delay d)
    rep_a.Retime.latches_before rep_a.Retime.latches_after;

  (* both are sequentially equivalent to the original *)
  List.iter
    (fun (tag, opt) ->
      let { Verify.verdict; stats } = Result.get_ok (Verify.check c opt) in
      Format.printf "verify %-11s %s (depth %d, %d vars, %.3fs)@." tag
        (match verdict with
        | Verify.Equivalent -> "EQUIVALENT"
        | Verify.Inequivalent _ -> "NOT EQUIVALENT"
        | Verify.Undecided _ -> "UNDECIDED")
        stats.Verify.depth stats.Verify.variables stats.Verify.seconds)
    [ ("min-period:", cfast); ("min-area:", carea) ]
