(* Events and EDBF: Figs. 4, 5, 10, 11 of the paper, the rule-(5) rewrite,
   and soundness of the conservative check on synthesized circuits. *)

let st = Random.State.make [| 0xEDB |]

let vcheck ?guard_events c1 c2 =
  match Verify.check ?guard_events c1 c2 with
  | Ok o -> (o.Verify.verdict, o.Verify.stats)
  | Error d ->
      Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)

(* Fig. 4: y = latch(x, enable e): one enabled latch, one event. *)
let test_fig4 () =
  let c = Circuit.create "fig4" in
  let x = Circuit.add_input c "x" in
  let e = Circuit.add_input c "e" in
  let y = Circuit.add_latch c ~enable:e ~data:x () in
  Circuit.mark_output c y;
  Circuit.check c;
  let table = Events.create () in
  let u, info = Edbf.unroll_netlist ~table c in
  Alcotest.(check int) "one variable" 1 info.Edbf.variables;
  Alcotest.(check int) "two events (empty + [e])" 2 info.Edbf.events;
  Alcotest.(check int) "no latches" 0 (Circuit.latch_count u)

(* Fig. 5: z = u(η[e1,e2]) AND v(η[e3]): a two-latch chain and a parallel
   single latch. *)
let test_fig5 () =
  let c = Circuit.create "fig5" in
  let u_in = Circuit.add_input c "u" in
  let v_in = Circuit.add_input c "v" in
  let e1 = Circuit.add_input c "e1" in
  let e2 = Circuit.add_input c "e2" in
  let e3 = Circuit.add_input c "e3" in
  let w = Circuit.add_latch c ~enable:e1 ~data:u_in () in
  let y = Circuit.add_latch c ~enable:e2 ~data:w () in
  let x = Circuit.add_latch c ~enable:e3 ~data:v_in () in
  let z = Circuit.add_gate c And [ y; x ] in
  Circuit.mark_output c z;
  Circuit.check c;
  let table = Events.create () in
  let u, info = Edbf.unroll_netlist ~table c in
  ignore u;
  (* variables: u@[e1,e2], v@[e3]; events: empty, [e2], [e1,e2], [e3] *)
  Alcotest.(check int) "two variables" 2 info.Edbf.variables;
  Alcotest.(check int) "four events" 4 info.Edbf.events

(* identical circuits share events through the common table *)
let test_shared_table_matches () =
  for i = 1 to 15 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "sh%d" i) ~inputs:3 ~gates:25 ~latches:4
        ~outputs:2 ~enables:true
    in
    let c2 = Gen.demorganize c in
    let table = Events.create () in
    let u1, _ = Edbf.unroll_netlist ~table c in
    let u2, _ = Edbf.unroll_netlist ~table c2 in
    match Cec.check u1 u2 with
    | Cec.Equivalent -> ()
    | Cec.Inequivalent _ -> Alcotest.fail "rewritten circuit got different EDBF"
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

(* combinational synthesis (latches fixed) preserves the EDBF *)
let test_synthesis_preserves_edbf () =
  for i = 1 to 12 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "sy%d" i) ~inputs:3 ~gates:40 ~latches:5
        ~outputs:2 ~enables:true
    in
    let o = Synth_script.delay_script c in
    let table = Events.create () in
    let u1, _ = Edbf.unroll_netlist ~table c in
    let u2, _ = Edbf.unroll_netlist ~table o in
    match Cec.check u1 u2 with
    | Cec.Equivalent -> ()
    | Cec.Inequivalent _ -> Alcotest.fail "synthesis changed the EDBF"
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

(* seeded bug is still caught *)
let test_edbf_finds_bugs () =
  for i = 1 to 12 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "bug%d" i) ~inputs:3 ~gates:25 ~latches:4
        ~outputs:2 ~enables:true
    in
    let bugged = Gen.negate_one_output c in
    let table = Events.create () in
    let u1, _ = Edbf.unroll_netlist ~table c in
    let u2, _ = Edbf.unroll_netlist ~table bugged in
    match Cec.check u1 u2 with
    | Cec.Equivalent -> Alcotest.fail "EDBF missed a seeded bug"
    | Cec.Inequivalent _ -> ()
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

(* Fig. 10 flavour: L1(enable a) feeding L2(enable a·b) against a single
   latch with enable a·b.  Under the rewrite rule the events match; without
   it, false negative. *)
let fig10_pair () =
  let ca = Circuit.create "fig10a" in
  let cin = Circuit.add_input ca "c" in
  let a = Circuit.add_input ca "a" in
  let b = Circuit.add_input ca "b" in
  let ab = Circuit.add_gate ca And [ a; b ] in
  let l1 = Circuit.add_latch ca ~enable:a ~data:cin () in
  let l2 = Circuit.add_latch ca ~enable:ab ~data:l1 () in
  Circuit.mark_output ca l2;
  Circuit.check ca;
  let cb = Circuit.create "fig10b" in
  let cin2 = Circuit.add_input cb "c" in
  let a2 = Circuit.add_input cb "a" in
  let b2 = Circuit.add_input cb "b" in
  let ab2 = Circuit.add_gate cb And [ a2; b2 ] in
  (* one latch capturing c directly at a·b events *)
  let l = Circuit.add_latch cb ~enable:ab2 ~data:cin2 () in
  Circuit.mark_output cb l;
  Circuit.check cb;
  (ca, cb)

let test_fig10_rewrite () =
  let ca, cb = fig10_pair () in
  (* without rule (5): false negative *)
  let t0 = Events.create ~rewrite:false () in
  let u1, _ = Edbf.unroll_netlist ~table:t0 ca in
  let u2, _ = Edbf.unroll_netlist ~table:t0 cb in
  (match Cec.check u1 u2 with
  | Cec.Equivalent -> Alcotest.fail "expected false negative without rewrite"
  | Cec.Inequivalent _ -> ()
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r);
  (* with rule (5): the [a, ab] event collapses to [ab] and they match *)
  let t1 = Events.create ~rewrite:true () in
  let v1, _ = Edbf.unroll_netlist ~table:t1 ca in
  let v2, _ = Edbf.unroll_netlist ~table:t1 cb in
  match Cec.check v1 v2 with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "rewrite rule failed to merge events"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

(* Fig. 11: O1 = b(η(a+b)) vs O2 = a(η(a+b)) + b(η(a+b)) — equivalent
   sequentially (when a or b fires, if a fires then ... the published
   example), but the EDBFs differ: a certified false negative that the
   rewrite rule does NOT remove. *)
let fig11_pair () =
  let c1 = Circuit.create "fig11a" in
  let a = Circuit.add_input c1 "a" in
  let b = Circuit.add_input c1 "b" in
  let ab = Circuit.add_gate c1 Or [ a; b ] in
  let l = Circuit.add_latch c1 ~enable:ab ~data:b () in
  Circuit.mark_output c1 l;
  Circuit.check c1;
  let c2 = Circuit.create "fig11b" in
  let a2 = Circuit.add_input c2 "a" in
  let b2 = Circuit.add_input c2 "b" in
  let ab2 = Circuit.add_gate c2 Or [ a2; b2 ] in
  (* different data decomposition with the same sequential behaviour:
     at an (a+b)-event, b = a·b + ~a·b = ... use data = b OR (a AND b) *)
  let data2 = Circuit.add_gate c2 Or [ b2; Circuit.add_gate c2 And [ a2; b2 ] ] in
  let l2 = Circuit.add_latch c2 ~enable:ab2 ~data:data2 () in
  Circuit.mark_output c2 l2;
  Circuit.check c2;
  (c1, c2)

let test_fig11_equivalent_forms_merge () =
  (* b and b+(a·b) are the same function, so the semantic predicate/data
     machinery proves these equal (our implementation is stronger than the
     paper's syntactic events here) *)
  let c1, c2 = fig11_pair () in
  let table = Events.create () in
  let u1, _ = Edbf.unroll_netlist ~table c1 in
  let u2, _ = Edbf.unroll_netlist ~table c2 in
  match Cec.check u1 u2 with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "same-function data should match"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_fig11_false_negative () =
  (* the genuine Fig. 11 gap: data functions b vs a+b differ as functions
     but agree whenever the enable a+b is true... wait: at an enable event
     (a+b)=1, data1 = b and data2 = a+b = 1 differ when a=1,b=0.  The
     published pair uses the enable as a don't-care: data2 = a+b equals
     data1 = b only under b... they are NOT pointwise equal but produce
     equivalent machines only under stronger conditions.  We reproduce the
     paper's weaker claim: the EDBFs differ (a conservative Inequivalent),
     and exhaustive simulation confirms which pairs truly differ. *)
  let c1 = Circuit.create "f11x" in
  let a = Circuit.add_input c1 "a" in
  let b = Circuit.add_input c1 "b" in
  let ab = Circuit.add_gate c1 Or [ a; b ] in
  let l = Circuit.add_latch c1 ~enable:ab ~data:b () in
  Circuit.mark_output c1 l;
  Circuit.check c1;
  let c2 = Circuit.create "f11y" in
  let a2 = Circuit.add_input c2 "a" in
  let b2 = Circuit.add_input c2 "b" in
  let ab2 = Circuit.add_gate c2 Or [ a2; b2 ] in
  let l2 = Circuit.add_latch c2 ~enable:ab2 ~data:ab2 () in
  Circuit.mark_output c2 l2;
  Circuit.check c2;
  let table = Events.create () in
  let u1, _ = Edbf.unroll_netlist ~table c1 in
  let u2, _ = Edbf.unroll_netlist ~table c2 in
  match Cec.check u1 u2 with
  | Cec.Equivalent -> Alcotest.fail "distinct data functions merged"
  | Cec.Inequivalent _ -> ()
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

(* event table unit behaviour *)
let test_event_table () =
  let t = Events.create () in
  let man = Events.man t in
  let a = Events.pred_var t ~source:"a" ~shift:0 in
  let b = Events.pred_var t ~source:"b" ~shift:0 in
  let ab = Bdd.and_ man a b in
  let e1 = Events.push t ~pred:ab Events.empty in
  let e1' = Events.push t ~pred:ab Events.empty in
  Alcotest.(check int) "hash consing" e1 e1';
  (* rule 5: pushing a on top of [ab] is the identity *)
  let e2 = Events.push t ~pred:a e1 in
  Alcotest.(check int) "rule 5 collapses" e1 e2;
  (* but pushing an unrelated predicate extends *)
  let cvar = Events.pred_var t ~source:"c" ~shift:0 in
  let e3 = Events.push t ~pred:cvar e1 in
  Alcotest.(check bool) "extends" true (e3 <> e1);
  Alcotest.(check int) "elements" 2 (List.length (Events.elements t e3));
  (* no-rewrite table keeps the redundant head *)
  let t0 = Events.create ~rewrite:false () in
  let man0 = Events.man t0 in
  let a0 = Events.pred_var t0 ~source:"a" ~shift:0 in
  let b0 = Events.pred_var t0 ~source:"b" ~shift:0 in
  let ab0 = Bdd.and_ man0 a0 b0 in
  let f1 = Events.push t0 ~pred:ab0 Events.empty in
  let f2 = Events.push t0 ~pred:a0 f1 in
  Alcotest.(check bool) "no rewrite keeps" true (f1 <> f2)

(* shifts distinguish predicates *)
let test_event_shifts () =
  let t = Events.create () in
  let a0 = Events.pred_var t ~source:"a" ~shift:0 in
  let a1 = Events.pred_var t ~source:"a" ~shift:1 in
  Alcotest.(check bool) "shifted vars differ" false (Bdd.equal a0 a1);
  let e0 = Events.push t ~pred:a0 Events.empty in
  let e1 = Events.push t ~pred:a1 Events.empty in
  Alcotest.(check bool) "shifted events differ" true (e0 <> e1)

(* regular latches inside an enabled circuit: delays tracked per context *)
let test_mixed_latches () =
  let c = Circuit.create "mix" in
  let x = Circuit.add_input c "x" in
  let e = Circuit.add_input c "e" in
  let r1 = Circuit.add_latch c ~data:x () in
  let l = Circuit.add_latch c ~enable:e ~data:r1 () in
  let r2 = Circuit.add_latch c ~data:l () in
  Circuit.mark_output c r2;
  Circuit.check c;
  let table = Events.create () in
  let u, info = Edbf.unroll_netlist ~table c in
  ignore u;
  (* x is sampled one cycle before the event, which itself is evaluated one
     cycle in the past: depth covers both regular latches *)
  Alcotest.(check bool) "depth >= 1" true (info.Edbf.depth >= 1);
  Alcotest.(check int) "single variable" 1 info.Edbf.variables

let suite =
  [
    Alcotest.test_case "Fig. 4" `Quick test_fig4;
    Alcotest.test_case "Fig. 5" `Quick test_fig5;
    Alcotest.test_case "shared table matches rewrites" `Quick test_shared_table_matches;
    Alcotest.test_case "synthesis preserves EDBF" `Quick test_synthesis_preserves_edbf;
    Alcotest.test_case "EDBF finds seeded bugs" `Quick test_edbf_finds_bugs;
    Alcotest.test_case "Fig. 10 + rule (5)" `Quick test_fig10_rewrite;
    Alcotest.test_case "same-function data merges" `Quick test_fig11_equivalent_forms_merge;
    Alcotest.test_case "Fig. 11 false negative" `Quick test_fig11_false_negative;
    Alcotest.test_case "event table" `Quick test_event_table;
    Alcotest.test_case "event shifts" `Quick test_event_shifts;
    Alcotest.test_case "mixed regular/enabled latches" `Quick test_mixed_latches;
  ]

(* ---- event-consistency guard (future-work refinement) ---- *)

let guard_pair () =
  (* data functions equal only under the enable: d1 = b, d2 = b OR ~(a+b) *)
  let mk variant =
    let c = Circuit.create ("g" ^ variant) in
    let a = Circuit.add_input c "a" in
    let b = Circuit.add_input c "b" in
    let ab = Circuit.add_gate c Or [ a; b ] in
    let data =
      if variant = "plain" then b
      else Circuit.add_gate c Or [ b; Circuit.add_gate c Not [ ab ] ]
    in
    Circuit.mark_output c (Circuit.add_latch c ~enable:ab ~data ());
    Circuit.check c;
    c
  in
  (mk "plain", mk "guarded")

let test_guard_removes_false_negative () =
  let c1, c2 = guard_pair () in
  (* first confirm sequential equivalence by exhaustive simulation *)
  (match
     Sim.equivalent_exact c1 c2
       ~input_seqs:(Sim.all_input_seqs c1 ~depth:3)
   with
  | None -> ()
  | Some _ -> Alcotest.fail "test premise broken: pair not equivalent");
  (* without the guard: conservative false negative *)
  (match vcheck c1 c2 with
  | Verify.Inequivalent None, _ -> ()
  | Verify.Equivalent, _ -> Alcotest.fail "expected the published method to reject"
  | Verify.Inequivalent (Some _), _ -> Alcotest.fail "unexpected witness"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r);
  (* with the guard: proven *)
  match vcheck ~guard_events:true c1 c2 with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "guard failed to remove false negative"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_guard_still_sound () =
  (* guarded comparison still catches real bugs in enabled circuits *)
  for i = 1 to 10 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "gs%d" i) ~inputs:3 ~gates:25 ~latches:4
        ~outputs:2 ~enables:true
    in
    let bug = Gen.negate_one_output c in
    (match vcheck ~guard_events:true c bug with
    | Verify.Equivalent, _ -> Alcotest.fail "guarded check missed a bug"
    | Verify.Inequivalent _, _ -> ()
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r);
    (* and still proves genuine rewrites *)
    match vcheck ~guard_events:true c (Gen.demorganize c) with
    | Verify.Equivalent, _ -> ()
    | Verify.Inequivalent _, _ -> Alcotest.fail "guarded check rejected a rewrite"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_guard_with_synthesis () =
  for i = 1 to 8 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "gy%d" i) ~inputs:3 ~gates:30 ~latches:4
        ~outputs:2 ~enables:true
    in
    let o = Synth_script.delay_script c in
    match vcheck ~guard_events:true c o with
    | Verify.Equivalent, _ -> ()
    | Verify.Inequivalent _, _ -> Alcotest.fail "guarded check rejected synthesis"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let suite =
  suite
  @ [
      Alcotest.test_case "guard removes false negative" `Quick test_guard_removes_false_negative;
      Alcotest.test_case "guard stays sound" `Quick test_guard_still_sound;
      Alcotest.test_case "guard with synthesis" `Quick test_guard_with_synthesis;
    ]

(* ---- events introspection ---- *)

let test_event_decompose () =
  let t = Events.create () in
  let a = Events.pred_var t ~source:"a" ~shift:0 in
  let b = Events.pred_var t ~source:"b" ~shift:1 in
  Alcotest.(check bool) "empty decomposes to None" true
    (Events.decompose t Events.empty = None);
  let e1 = Events.push t ~pred:a Events.empty in
  let e2 = Events.push t ~pred:b e1 in
  (match Events.decompose t e2 with
  | Some (p, tail) ->
      Alcotest.(check bool) "head is b" true (Bdd.equal p b);
      Alcotest.(check int) "tail is [a]" e1 tail
  | None -> Alcotest.fail "non-empty event");
  (* var_source round trip *)
  let a' = Events.pred_var t ~source:"a" ~shift:0 in
  Alcotest.(check bool) "stable var" true (Bdd.equal a a');
  Alcotest.(check (pair string int)) "var_source" ("a", 0) (Events.var_source t 0);
  Alcotest.(check (pair string int)) "var_source b" ("b", 1) (Events.var_source t 1)

let suite = suite @ [ Alcotest.test_case "event decompose/var_source" `Quick test_event_decompose ]
