(* The symbolic-traversal baseline: transition functions, image/reachable,
   and the product-machine check cross-validated against the combinational
   reduction. *)

let st = Random.State.make [| 0x5EC |]

let test_transition_functions () =
  (* toggle counter: q' = q xor 1 when en *)
  let c = Circuit.create "cnt" in
  let en = Circuit.add_input c "en" in
  let q = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q ~data:(Circuit.add_gate c Xor [ q; en ]) ();
  Circuit.mark_output c q;
  Circuit.check c;
  let t = Transition.build c in
  let man = t.Transition.man in
  (* next-state = q xor en *)
  let expected =
    Bdd.xor_ man
      (Bdd.var man t.Transition.state_vars.(0))
      (Bdd.var man t.Transition.input_vars.(0))
  in
  Alcotest.(check bool) "delta" true (Bdd.equal t.Transition.next_state.(0) expected)

let test_image () =
  (* shift register q1 <- in, q2 <- q1: image of {q1=1,q2=0} is {q2=1} *)
  let c = Circuit.create "shift" in
  let i = Circuit.add_input c "i" in
  let q1 = Circuit.add_latch c ~data:i () in
  let q2 = Circuit.add_latch c ~data:q1 () in
  Circuit.mark_output c q2;
  Circuit.check c;
  let t = Transition.build c in
  let man = t.Transition.man in
  let v1 = Bdd.var man t.Transition.state_vars.(0) in
  let v2 = Bdd.var man t.Transition.state_vars.(1) in
  let s = Bdd.and_ man v1 (Bdd.not_ man v2) in
  let img = Transition.image t s in
  (* q2' = q1 = 1; q1' = input (free) -> img = v2 *)
  Alcotest.(check bool) "image" true (Bdd.equal img v2)

let test_reachable_counter () =
  (* 3-bit ripple counter from 000 reaches all 8 states *)
  let c = Circuit.create "c3" in
  let one = Circuit.const_true c in
  let q0 = Circuit.declare c ~name:"q0" () in
  let q1 = Circuit.declare c ~name:"q1" () in
  let q2 = Circuit.declare c ~name:"q2" () in
  let carry0 = one in
  let carry1 = Circuit.add_gate c And [ q0; carry0 ] in
  let carry2 = Circuit.add_gate c And [ q1; carry1 ] in
  Circuit.set_latch c q0 ~data:(Circuit.add_gate c Xor [ q0; carry0 ]) ();
  Circuit.set_latch c q1 ~data:(Circuit.add_gate c Xor [ q1; carry1 ]) ();
  Circuit.set_latch c q2 ~data:(Circuit.add_gate c Xor [ q2; carry2 ]) ();
  Circuit.mark_output c q2;
  Circuit.check c;
  let t = Transition.build c in
  let man = t.Transition.man in
  let zero_state =
    Bdd.and_list man
      (List.map (fun v -> Bdd.not_ man (Bdd.var man v)) (Array.to_list t.Transition.state_vars))
  in
  match Transition.reachable t ~init:zero_state with
  | None -> Alcotest.fail "fixpoint not reached"
  | Some r ->
      Alcotest.(check int) "all 8 states" 8 (int_of_float (Transition.state_count t r))

let test_reachable_invariant () =
  (* a one-hot ring counter starting one-hot stays one-hot *)
  let c = Circuit.create "ring" in
  let q0 = Circuit.declare c ~name:"q0" () in
  let q1 = Circuit.declare c ~name:"q1" () in
  let q2 = Circuit.declare c ~name:"q2" () in
  Circuit.set_latch c q0 ~data:q2 ();
  Circuit.set_latch c q1 ~data:q0 ();
  Circuit.set_latch c q2 ~data:q1 ();
  Circuit.mark_output c q0;
  Circuit.check c;
  let t = Transition.build c in
  let man = t.Transition.man in
  let v i = Bdd.var man t.Transition.state_vars.(i) in
  let onehot i =
    Bdd.and_list man
      (List.init 3 (fun j -> if i = j then v j else Bdd.not_ man (v j)))
  in
  match Transition.reachable t ~init:(onehot 0) with
  | None -> Alcotest.fail "fixpoint not reached"
  | Some r ->
      Alcotest.(check int) "3 rotations" 3 (int_of_float (Transition.state_count t r));
      let any_onehot = Bdd.or_list man [ onehot 0; onehot 1; onehot 2 ] in
      Alcotest.(check bool) "one-hot invariant" true (Bdd.leq man r any_onehot)

let test_baseline_self () =
  for i = 1 to 8 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "sb%d" i) ~inputs:3
        ~gates:(10 + Random.State.int st 20)
        ~latches:(1 + Random.State.int st 4)
        ~outputs:2 ~enables:false
    in
    match Sec_baseline.check c c with
    | Sec_baseline.Equivalent, _ -> ()
    | Sec_baseline.Inequivalent, _ -> Alcotest.fail "self inequivalent"
    | Sec_baseline.Resource_out why, _ -> Alcotest.fail ("resources: " ^ why)
  done

let test_baseline_agrees_with_cbf () =
  (* on retimed/synthesized pairs both methods must say Equivalent; on
     seeded bugs both must say Inequivalent *)
  for i = 1 to 8 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "ag%d" i) ~inputs:2
        ~gates:(10 + Random.State.int st 25)
        ~latches:(1 + Random.State.int st 4)
        ~outputs:2 ~enables:false
    in
    let o, _ = Retime.min_period (Synth_script.delay_script c) in
    let verdict a b = (Result.get_ok (Verify.check a b)).Verify.verdict in
    (match (Sec_baseline.check c o, verdict c o) with
    | (Sec_baseline.Equivalent, _), Verify.Equivalent -> ()
    | (Sec_baseline.Resource_out _, _), _ -> () (* baseline may give up *)
    | _ -> Alcotest.fail "methods disagree on an equivalent pair");
    let bug = Gen.negate_one_output o in
    match (Sec_baseline.check c bug, verdict c bug) with
    | (Sec_baseline.Inequivalent, _), Verify.Inequivalent _ -> ()
    | (Sec_baseline.Resource_out _, _), Verify.Inequivalent _ -> ()
    | _ -> Alcotest.fail "methods disagree on a seeded bug"
  done

let test_baseline_enabled_latches () =
  (* the baseline handles load-enables natively (e·d + ē·q) *)
  let c = Circuit.create "ben" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.add_latch c ~enable:e ~data:d () in
  Circuit.mark_output c q;
  Circuit.check c;
  let o = Synth_script.delay_script c in
  match Sec_baseline.check c o with
  | Sec_baseline.Equivalent, _ -> ()
  | _ -> Alcotest.fail "baseline failed on enabled latch"

let test_baseline_resource_out () =
  (* a tiny node budget must be reported, not crash *)
  let c =
    Gen.acyclic st ~name:"big" ~inputs:4 ~gates:80 ~latches:8 ~outputs:2 ~enables:false
  in
  match Sec_baseline.check ~node_limit:50 c c with
  | Sec_baseline.Resource_out _, _ -> ()
  | _ -> Alcotest.fail "node budget ignored"

let test_baseline_transient_tolerated () =
  (* retiming may shift latches to the outputs; the recurrent-set check
     tolerates the power-up transient that a step-0 comparison would not *)
  let c = Circuit.create "tr" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.add_latch c ~data:a () in
  (* out = q AND ~q = 0, but a retimed version latches the AND output *)
  Circuit.mark_output c (Circuit.add_gate c And [ q; Circuit.add_gate c Not [ q ] ]);
  Circuit.check c;
  let rt = Circuit.create "tr2" in
  let a2 = Circuit.add_input rt "a" in
  let z = Circuit.add_gate rt And [ a2; Circuit.add_gate rt Not [ a2 ] ] in
  Circuit.mark_output rt (Circuit.add_latch rt ~data:z ());
  Circuit.check rt;
  match Sec_baseline.check c rt with
  | Sec_baseline.Equivalent, _ -> ()
  | _ -> Alcotest.fail "transient not tolerated"

let suite =
  [
    Alcotest.test_case "transition functions" `Quick test_transition_functions;
    Alcotest.test_case "image" `Quick test_image;
    Alcotest.test_case "reachable: counter" `Quick test_reachable_counter;
    Alcotest.test_case "reachable: ring invariant" `Quick test_reachable_invariant;
    Alcotest.test_case "baseline: self" `Quick test_baseline_self;
    Alcotest.test_case "baseline agrees with CBF" `Quick test_baseline_agrees_with_cbf;
    Alcotest.test_case "baseline: enabled latches" `Quick test_baseline_enabled_latches;
    Alcotest.test_case "baseline: resource out" `Quick test_baseline_resource_out;
    Alcotest.test_case "baseline: transient tolerated" `Quick test_baseline_transient_tolerated;
  ]

let test_semantic_gap () =
  (* Reset equivalence and the paper's exact 3-valued equivalence differ on
     power-up-sensitive feedback state.  B: toggle accumulating a pipelined
     input; C: the same with the pipeline latch retimed across an inverter
     pair.  The CBFs agree (same function of the input window), but from
     the all-zero reset the inverter pair's latch powers up to a different
     effective value and the toggles diverge forever. *)
  let b = Circuit.create "gapB" in
  let i = Circuit.add_input b "i" in
  let p = Circuit.add_latch b ~data:i () in
  let q = Circuit.declare b ~name:"q" () in
  Circuit.set_latch b q ~data:(Circuit.add_gate b Xor [ q; p ]) ();
  Circuit.mark_output b q;
  Circuit.check b;
  let c = Circuit.create "gapC" in
  let i = Circuit.add_input c "i" in
  let ni = Circuit.add_gate c Not [ i ] in
  let p' = Circuit.add_latch c ~data:ni () in
  let g = Circuit.add_gate c Not [ p' ] in
  let q' = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q' ~data:(Circuit.add_gate c Xor [ q'; g ]) ();
  Circuit.mark_output c q';
  Circuit.check c;
  (* the combinational reduction (exposing q in both) proves equivalence *)
  (match Result.get_ok (Verify.check ~exposed:[ "q" ] b c) with
  | { Verify.verdict = Verify.Equivalent; _ } -> ()
  | { verdict = Verify.Inequivalent _; _ } ->
      Alcotest.fail "reduction should prove the pair"
  | { verdict = Verify.Undecided r; _ } ->
      Alcotest.failf "unbudgeted check undecided: %s" r);
  (* the reset-equivalence traversal correctly rejects it *)
  match Sec_baseline.check b c with
  | Sec_baseline.Inequivalent, _ -> ()
  | Sec_baseline.Equivalent, _ -> Alcotest.fail "baseline should reject from reset"
  | Sec_baseline.Resource_out w, _ -> Alcotest.fail ("resources: " ^ w)

let suite =
  suite @ [ Alcotest.test_case "semantic gap vs reset equivalence" `Quick test_semantic_gap ]
