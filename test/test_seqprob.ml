(* The problem IR itself: shared-AIG compression vs netlist unrolling,
   typed-variable printing, the diagnosis surface, and counterexample
   replay over asymmetric input sets. *)

let st = Random.State.make [| 0x5E9 |]

(* ---- shared AIG never larger than the netlist unrolling ---- *)

let test_aig_smaller_than_netlist () =
  List.iter
    (fun (name, c) ->
      let plan = Feedback.plan_structural c in
      let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
      let exposed s = List.mem (Circuit.signal_name c s) names in
      let bld = Seqprob.builder () in
      let o1, _ = Result.get_ok (Cbf.unroll ~exposed bld c) in
      let o2, _ = Result.get_ok (Cbf.unroll ~exposed bld c) in
      let direct = Result.get_ok (Seqprob.problem bld ~outs1:o1 ~outs2:o2) in
      (* the reference route: materialize the unrolled netlist, then wrap
         it as a problem (same AND-node currency).  The direct route must
         never be larger. *)
      let u, _ = Cbf.unroll_netlist ~exposed c in
      let via_netlist = Result.get_ok (Seqprob.of_circuits u u) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: direct %d <= via netlist %d" name
           (Seqprob.and_nodes direct)
           (Seqprob.and_nodes via_netlist))
        true
        (Seqprob.and_nodes direct <= Seqprob.and_nodes via_netlist))
    (Workloads.table1_suite_small ())

let test_side_replication_overlap () =
  (* identical sides share everything: each side's cone count equals the
     whole graph's reachable count *)
  let c = Workloads.by_name "minmax10" in
  let plan = Feedback.plan_structural c in
  let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
  let exposed s = List.mem (Circuit.signal_name c s) names in
  let bld = Seqprob.builder () in
  let o1, _ = Result.get_ok (Cbf.unroll ~exposed bld c) in
  let o2, _ = Result.get_ok (Cbf.unroll ~exposed bld c) in
  let p = Result.get_ok (Seqprob.problem bld ~outs1:o1 ~outs2:o2) in
  let s1, s2 = Seqprob.side_replication p in
  Alcotest.(check int) "sides identical" s1 s2;
  Alcotest.(check bool) "outputs interned equal" true (p.Seqprob.outs1 = p.Seqprob.outs2)

(* ---- Var round trips ---- *)

let test_var_roundtrip () =
  let t = Events.create () in
  let e1 =
    Events.push t ~pred:(Events.pred_var t ~source:"en" ~shift:0) Events.empty
  in
  let vars =
    [
      Seqprob.Var.time "x" 0;
      Seqprob.Var.time "x" 7;
      Seqprob.Var.time "weird@name" 3;
      Seqprob.Var.time "a~b" 1;
      Seqprob.Var.at "d" ~shift:0 ~event:Events.empty;
      Seqprob.Var.at "d" ~shift:2 ~event:e1;
      Seqprob.Var.at "q@out" ~shift:1 ~event:e1;
    ]
  in
  List.iter
    (fun v ->
      let s = Seqprob.Var.to_string v in
      let v' = Seqprob.Var.of_string s in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (Seqprob.Var.equal v v'))
    vars;
  (* a plain name with no index suffix reads as Time 0 *)
  Alcotest.(check bool) "bare name = Time 0" true
    (Seqprob.Var.equal (Seqprob.Var.of_string "plain") (Seqprob.Var.time "plain" 0))

(* ---- every diagnosis constructor is producible and printable ---- *)

let printable d =
  Alcotest.(check bool)
    (Printf.sprintf "printable: %s" (Seqprob.diagnosis_to_string d))
    true
    (String.length (Seqprob.diagnosis_to_string d) > 0)

let test_diagnosis_non_exposed_cycle () =
  (* q = latch(q xor a): a sequential self-loop observable at the output *)
  let c = Circuit.create "dfc" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q ~data:(Circuit.add_gate c Xor [ q; a ]) ();
  Circuit.mark_output c q;
  Circuit.check c;
  (match Verify.check c c with
  | Error (Seqprob.Non_exposed_cycle _ as d) -> printable d
  | Error d -> Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "feedback without exposure accepted");
  (* exposing the latch on the cycle makes the same pair checkable *)
  match Result.get_ok (Verify.check ~exposed:[ "q" ] c c) with
  | { Verify.verdict = Verify.Equivalent; _ } -> ()
  | { verdict = Verify.Inequivalent _; _ } -> Alcotest.fail "self-inequivalent once exposed"
  | { verdict = Verify.Undecided r; _ } -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_diagnosis_hidden_enabled_latch () =
  let c = Circuit.create "dhe" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  Circuit.mark_output c (Circuit.add_latch c ~enable:e ~data:d ());
  Circuit.check c;
  match Flow.run ~skip_verify:true c with
  | Error (Seqprob.Hidden_enabled_latch _ as d) -> printable d
  | Error d -> Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "enabled latch accepted by the retiming flow"

let test_diagnosis_infeasible_period () =
  let c = Circuit.create "dip" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  (* an AND on every input-to-output path: no retiming reaches period 0 *)
  let g = Circuit.add_gate c And [ a; b ] in
  Circuit.mark_output c (Circuit.add_latch c ~data:g ());
  Circuit.check c;
  match Flow.run ~skip_verify:true ~period:0 c with
  | Error (Seqprob.Infeasible_period { period; _ } as d) ->
      printable d;
      Alcotest.(check int) "requested period echoed" 0 period
  | Error d -> Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "period 0 accepted"

let test_diagnosis_output_arity_mismatch () =
  let c1 = Gen.acyclic st ~name:"da1" ~inputs:2 ~gates:8 ~latches:1 ~outputs:1 ~enables:false in
  let c2 = Gen.acyclic st ~name:"da2" ~inputs:2 ~gates:8 ~latches:1 ~outputs:2 ~enables:false in
  match Verify.check c1 c2 with
  | Error (Seqprob.Output_arity_mismatch _ as d) -> printable d
  | Error d -> Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "arity mismatch accepted"

let test_diagnosis_no_such_latch () =
  let c = Gen.acyclic st ~name:"dnl" ~inputs:2 ~gates:8 ~latches:1 ~outputs:1 ~enables:false in
  match Verify.check ~exposed:[ "ghost" ] c c with
  | Error (Seqprob.No_such_latch { name; _ } as d) ->
      printable d;
      Alcotest.(check string) "offending name" "ghost" name
  | Error d -> Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "ghost exposure accepted"

(* ---- counterexample replay with asymmetric input sets ---- *)

let test_asymmetric_cex_replay () =
  (* c1: out = latch(a).  c2: out = latch(a xor b) — has an extra input.
     The united universe contains b@1; the witness must still replay on
     both circuits, each over its own input list. *)
  let c1 = Circuit.create "asym1" in
  let a1 = Circuit.add_input c1 "a" in
  Circuit.mark_output c1 (Circuit.add_latch c1 ~data:a1 ());
  Circuit.check c1;
  let c2 = Circuit.create "asym2" in
  let a2 = Circuit.add_input c2 "a" in
  let b2 = Circuit.add_input c2 "b" in
  Circuit.mark_output c2 (Circuit.add_latch c2 ~data:(Circuit.add_gate c2 Xor [ a2; b2 ]) ());
  Circuit.check c2;
  match Result.get_ok (Verify.check c1 c2) with
  | { Verify.verdict = Verify.Inequivalent (Some cex); _ } ->
      Alcotest.(check bool) "replays on asymmetric originals" true
        (Verify.confirm_cex c1 c2 cex);
      (* per-circuit sequences have per-circuit arities *)
      List.iter
        (fun v -> Alcotest.(check int) "c1 vector arity" 1 (Array.length v))
        (Verify.cex_to_sequence c1 cex);
      List.iter
        (fun v -> Alcotest.(check int) "c2 vector arity" 2 (Array.length v))
        (Verify.cex_to_sequence c2 cex)
  | { verdict = Verify.Inequivalent None; _ } ->
      Alcotest.fail "CBF path must produce a witness"
  | { verdict = Verify.Equivalent; _ } -> Alcotest.fail "asymmetric bug missed"
  | { verdict = Verify.Undecided r; _ } -> Alcotest.failf "unbudgeted check undecided: %s" r

let suite =
  [
    Alcotest.test_case "shared AIG <= netlist unroll" `Quick test_aig_smaller_than_netlist;
    Alcotest.test_case "identical sides fully shared" `Quick test_side_replication_overlap;
    Alcotest.test_case "Var to_string/of_string round trip" `Quick test_var_roundtrip;
    Alcotest.test_case "diagnosis: non-exposed cycle" `Quick test_diagnosis_non_exposed_cycle;
    Alcotest.test_case "diagnosis: hidden enabled latch" `Quick test_diagnosis_hidden_enabled_latch;
    Alcotest.test_case "diagnosis: infeasible period" `Quick test_diagnosis_infeasible_period;
    Alcotest.test_case "diagnosis: output arity mismatch" `Quick test_diagnosis_output_arity_mismatch;
    Alcotest.test_case "diagnosis: no such latch" `Quick test_diagnosis_no_such_latch;
    Alcotest.test_case "asymmetric-input cex replay" `Quick test_asymmetric_cex_replay;
  ]
