(* Synthesis passes: function preservation (state-for-state, since latch
   positions are fixed), library discipline, fanout limiting. *)

let st = Random.State.make [| 0x517 |]

(* Latch-identity-preserving equivalence: same-named latches must carry the
   same state; compare behaviour from matched power-up states. *)
let compare_exact c1 c2 ~cycles ~trials =
  let l1 = List.map (Circuit.signal_name c1) (Circuit.latches c1) in
  let l2 = List.map (Circuit.signal_name c2) (Circuit.latches c2) in
  List.iter
    (fun n ->
      if not (List.mem n l1) then Alcotest.fail (Printf.sprintf "latch %s appeared" n))
    l2;
  let ni = List.length (Circuit.inputs c1) in
  for _ = 1 to trials do
    let seq = List.init cycles (fun _ -> Array.init ni (fun _ -> Random.State.bool st)) in
    let init1 = Array.init (List.length l1) (fun _ -> Random.State.bool st) in
    let value_of n =
      let rec idx i = function
        | [] -> Alcotest.fail "latch lookup"
        | m :: _ when m = n -> init1.(i)
        | _ :: tl -> idx (i + 1) tl
      in
      idx 0 l1
    in
    let init2 = Array.of_list (List.map value_of l2) in
    let t1 = Sim.run c1 ~init:init1 ~inputs:seq in
    let t2 = Sim.run c2 ~init:init2 ~inputs:seq in
    if t1 <> t2 then Alcotest.fail "behaviour changed"
  done

let random_cases ~n ~enables f =
  for i = 1 to n do
    let c =
      Gen.acyclic st
        ~name:(Printf.sprintf "s%d" i)
        ~inputs:(2 + Random.State.int st 4)
        ~gates:(20 + Random.State.int st 80)
        ~latches:(2 + Random.State.int st 8)
        ~outputs:(1 + Random.State.int st 3)
        ~enables:(enables && i mod 2 = 0)
    in
    f c
  done

let test_sweep_preserves () =
  random_cases ~n:30 ~enables:true (fun c ->
      compare_exact c (Sweep_pass.run c) ~cycles:25 ~trials:10)

let test_sweep_removes_dead () =
  let c = Circuit.create "dead" in
  let a = Circuit.add_input c "a" in
  let live = Circuit.add_gate c Not [ a ] in
  let _dead_gate = Circuit.add_gate c And [ a; live ] in
  let _dead_latch = Circuit.add_latch c ~data:a () in
  Circuit.mark_output c live;
  Circuit.check c;
  let o = Sweep_pass.run c in
  Alcotest.(check int) "dead gate gone" 1 (Circuit.area o);
  Alcotest.(check int) "dead latch gone" 0 (Circuit.latch_count o);
  Alcotest.(check int) "inputs kept" 1 (List.length (Circuit.inputs o))

let test_sweep_constants () =
  let c = Circuit.create "konst" in
  let a = Circuit.add_input c "a" in
  let t = Circuit.const_true c in
  let g1 = Circuit.add_gate c And [ a; t ] in
  (* a *)
  let g2 = Circuit.add_gate c Or [ g1; t ] in
  (* 1 *)
  let g3 = Circuit.add_gate c Xor [ g2; t ] in
  (* 0 *)
  let g4 = Circuit.add_gate c Not [ Circuit.add_gate c Not [ a ] ] in
  (* a *)
  Circuit.mark_output c g3;
  Circuit.mark_output c g4;
  Circuit.check c;
  let o = Sweep_pass.run c in
  Alcotest.(check int) "all constant-folded" 0 (Circuit.area o);
  (* behaviour identical *)
  compare_exact c o ~cycles:4 ~trials:4

let test_sweep_monotone () =
  (* a second sweep may fuse a few more inverters but never grows the
     circuit, and it never changes behaviour *)
  random_cases ~n:10 ~enables:true (fun c ->
      let once = Sweep_pass.run c in
      let twice = Sweep_pass.run once in
      Alcotest.(check bool) "area non-increasing" true
        (Circuit.area twice <= Circuit.area once);
      (* constant folding can strand a latch behind a folded gate, which
         only the next sweep collects *)
      Alcotest.(check bool) "latches non-increasing" true
        (Circuit.latch_count twice <= Circuit.latch_count once);
      compare_exact once twice ~cycles:15 ~trials:5)

let test_rebalance_preserves () =
  random_cases ~n:30 ~enables:true (fun c ->
      compare_exact c (Rebalance.run c) ~cycles:25 ~trials:10)

let test_rebalance_library () =
  random_cases ~n:15 ~enables:false (fun c ->
      let o = Rebalance.run c in
      List.iter
        (fun g ->
          match Circuit.driver o g with
          | Gate ((Nand | Not | Const _), _) -> ()
          | Gate (fn, _) ->
              Alcotest.fail
                (Printf.sprintf "gate %s outside INV/NAND2 library"
                   (match fn with
                   | And -> "and"
                   | Or -> "or"
                   | Nor -> "nor"
                   | Xor -> "xor"
                   | Xnor -> "xnor"
                   | Mux -> "mux"
                   | Buf -> "buf"
                   | Nand | Not | Const _ -> assert false))
          | Undriven | Input | Latch _ -> assert false)
        (Circuit.gates o);
      (* NAND arity 2 *)
      List.iter
        (fun g ->
          match Circuit.driver o g with
          | Gate (Nand, fs) -> Alcotest.(check int) "nand2" 2 (Array.length fs)
          | _ -> ())
        (Circuit.gates o))

let test_rebalance_reduces_chains () =
  (* a long unbalanced AND chain must come back near-logarithmic *)
  let c = Circuit.create "chain" in
  let n = 32 in
  let ins = List.init n (fun i -> Circuit.add_input c (Printf.sprintf "x%d" i)) in
  let acc = List.fold_left (fun acc x -> Circuit.add_gate c And [ acc; x ]) (List.hd ins) (List.tl ins) in
  Circuit.mark_output c acc;
  Circuit.check c;
  Alcotest.(check int) "chain depth" (n - 1) (Circuit.delay c);
  let o = Rebalance.run c in
  (* balanced AND tree of 32 leaves: 5 AND levels = 10 in NAND/INV *)
  Alcotest.(check bool) "balanced" true (Circuit.delay o <= 11);
  compare_exact c o ~cycles:3 ~trials:5

let test_script_preserves () =
  random_cases ~n:25 ~enables:true (fun c ->
      compare_exact c (Synth_script.delay_script c) ~cycles:25 ~trials:8)

let test_script_fanout_limited () =
  random_cases ~n:15 ~enables:false (fun c ->
      let o = Synth_script.delay_script c in
      Alcotest.(check bool) "fanout <= 4" true (Fanout_pass.max_fanout o <= 4))

let test_fanout_pass_preserves () =
  random_cases ~n:15 ~enables:true (fun c ->
      let o = Fanout_pass.run ~max_fanout:3 c in
      Alcotest.(check bool) "fanout <= 3" true (Fanout_pass.max_fanout o <= 3);
      compare_exact c o ~cycles:20 ~trials:6)

let test_fanout_pass_arg_check () =
  let c = Gen.comb st ~name:"fo" ~inputs:2 ~gates:5 ~outputs:1 in
  try
    ignore (Fanout_pass.run ~max_fanout:1 c);
    Alcotest.fail "max_fanout 1 accepted"
  with Invalid_argument _ -> ()

let test_script_equivalence_by_cec () =
  (* combinational circuits: the checker itself confirms the script *)
  for i = 1 to 15 do
    let c = Gen.comb st ~name:(Printf.sprintf "cc%d" i) ~inputs:4 ~gates:40 ~outputs:2 in
    let o = Synth_script.delay_script c in
    match Cec.check c o with
    | Cec.Equivalent -> ()
    | Cec.Inequivalent _ -> Alcotest.fail "script broke a combinational circuit"
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let suite =
  [
    Alcotest.test_case "sweep preserves function" `Quick test_sweep_preserves;
    Alcotest.test_case "sweep removes dead logic" `Quick test_sweep_removes_dead;
    Alcotest.test_case "sweep folds constants" `Quick test_sweep_constants;
    Alcotest.test_case "sweep monotone" `Quick test_sweep_monotone;
    Alcotest.test_case "rebalance preserves function" `Quick test_rebalance_preserves;
    Alcotest.test_case "rebalance emits INV/NAND2" `Quick test_rebalance_library;
    Alcotest.test_case "rebalance flattens chains" `Quick test_rebalance_reduces_chains;
    Alcotest.test_case "delay script preserves function" `Quick test_script_preserves;
    Alcotest.test_case "delay script limits fanout" `Quick test_script_fanout_limited;
    Alcotest.test_case "fanout pass preserves + limits" `Quick test_fanout_pass_preserves;
    Alcotest.test_case "fanout pass arg check" `Quick test_fanout_pass_arg_check;
    Alcotest.test_case "script equivalent by CEC" `Quick test_script_equivalence_by_cec;
  ]

(* ---- redundancy removal ---- *)

let test_redundancy_finds_seeded () =
  (* plant an untestable connection: g = x AND (x OR y) — the y input of the
     OR is redundant (absorption), as is the whole OR *)
  let c = Circuit.create "red" in
  let x = Circuit.add_input c "x" in
  let y = Circuit.add_input c "y" in
  let o = Circuit.add_gate c Or [ x; y ] in
  let g = Circuit.add_gate c And [ x; o ] in
  Circuit.mark_output c g;
  Circuit.check c;
  let out, report = Redundancy.run c in
  Alcotest.(check bool) "found redundancy" true (report.Redundancy.removed >= 1);
  Alcotest.(check bool) "area reduced" true
    (report.Redundancy.area_after < report.Redundancy.area_before);
  (* function preserved: g = x *)
  compare_exact c out ~cycles:4 ~trials:4

let test_redundancy_preserves () =
  random_cases ~n:10 ~enables:true (fun c ->
      let out, report = Redundancy.run ~max_rounds:10 c in
      Alcotest.(check bool) "area non-increasing" true
        (Circuit.area out <= Circuit.area c);
      ignore report;
      compare_exact c out ~cycles:20 ~trials:6)

let test_redundancy_irredundant_fixpoint () =
  (* a xor chain has no stuck-at redundancy: nothing to remove *)
  let c = Circuit.create "irr" in
  let xs = List.init 5 (fun i -> Circuit.add_input c (Printf.sprintf "x%d" i)) in
  let acc = List.fold_left (fun acc x -> Circuit.add_gate c Xor [ acc; x ]) (List.hd xs) (List.tl xs) in
  Circuit.mark_output c acc;
  Circuit.check c;
  let _, report = Redundancy.run c in
  Alcotest.(check int) "nothing removed" 0 report.Redundancy.removed

let test_comb_view () =
  let c = Circuit.create "cv" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.add_latch c ~data:(Circuit.add_gate c Not [ a ]) () in
  Circuit.mark_output c (Circuit.add_gate c And [ q; a ]);
  Circuit.check c;
  let v = Comb_view.of_sequential c in
  Alcotest.(check int) "no latches" 0 (Circuit.latch_count v);
  Alcotest.(check int) "inputs = PIs + latches" 2 (List.length (Circuit.inputs v));
  Alcotest.(check int) "outputs = POs + data" 2 (List.length (Circuit.outputs v))

let suite =
  suite
  @ [
      Alcotest.test_case "redundancy: seeded" `Quick test_redundancy_finds_seeded;
      Alcotest.test_case "redundancy: preserves function" `Quick test_redundancy_preserves;
      Alcotest.test_case "redundancy: irredundant fixpoint" `Quick test_redundancy_irredundant_fixpoint;
      Alcotest.test_case "comb view" `Quick test_comb_view;
    ]

(* ---- cut-based AIG rewriting ---- *)

let test_cut_enumeration () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g and c = Aig.input g in
  let x = Aig.and_ g a b in
  let y = Aig.and_ g x c in
  let cs = Aig_rewrite.cuts g ~node:(Aig.node_of y) ~max_leaves:4 ~max_cuts:8 in
  (* trivial cut present *)
  Alcotest.(check bool) "trivial cut" true (List.mem [ Aig.node_of y ] cs);
  (* the {a,b,c} leaf cut present *)
  let leaf_cut = List.sort compare [ Aig.node_of a; Aig.node_of b; Aig.node_of c ] in
  Alcotest.(check bool) "full leaf cut" true (List.mem leaf_cut cs)

let test_truth_table () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.and_ g a (Aig.neg b) in
  let tt =
    Aig_rewrite.truth_table g ~node:(Aig.node_of x)
      ~leaves:[ Aig.node_of a; Aig.node_of b ]
  in
  (* a AND NOT b: assignments m: bit0 = a, bit1 = b; true at m=1 (a=1,b=0),
     replicated across the upper bits *)
  Alcotest.(check int) "a & ~b" (0x2222) (tt land 0xFFFF)

let test_rewrite_preserves_function () =
  for i = 1 to 20 do
    let c =
      Gen.comb st ~name:(Printf.sprintf "rw%d" i) ~inputs:4
        ~gates:(20 + Random.State.int st 60)
        ~outputs:2
    in
    let options = { Synth_script.default_options with rewrite = true } in
    let o = Synth_script.delay_script ~options c in
    match Cec.check c o with
    | Cec.Equivalent -> ()
    | Cec.Inequivalent _ -> Alcotest.fail "rewrite broke a circuit"
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_rewrite_sequential_preserves () =
  random_cases ~n:10 ~enables:true (fun c ->
      let options = { Synth_script.default_options with rewrite = true } in
      compare_exact c (Synth_script.delay_script ~options c) ~cycles:20 ~trials:6)

let test_rewrite_compacts_redundant_logic () =
  (* (a AND b) OR (a AND b) duplicated via distinct structure: rewriting
     collapses to the shared form (strash alone cannot see through the
     different shapes) *)
  let c = Circuit.create "dup" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let t1 = Circuit.add_gate c And [ a; b ] in
  (* same function, different structure: ~(~a | ~b) *)
  let t2 =
    Circuit.add_gate c Nor
      [ Circuit.add_gate c Not [ a ]; Circuit.add_gate c Not [ b ] ]
  in
  Circuit.mark_output c (Circuit.add_gate c Or [ t1; t2 ]);
  Circuit.check c;
  let options = { Synth_script.default_options with rewrite = true; fanout_limit = None } in
  let o = Synth_script.delay_script ~options c in
  (* a AND b needs 1 NAND + 1 INV *)
  Alcotest.(check bool) "collapsed" true (Circuit.area o <= 2);
  match Cec.check c o with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "collapse broke it"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let suite =
  suite
  @ [
      Alcotest.test_case "cut enumeration" `Quick test_cut_enumeration;
      Alcotest.test_case "truth tables" `Quick test_truth_table;
      Alcotest.test_case "rewrite preserves (comb)" `Quick test_rewrite_preserves_function;
      Alcotest.test_case "rewrite preserves (seq)" `Quick test_rewrite_sequential_preserves;
      Alcotest.test_case "rewrite compacts logic" `Quick test_rewrite_compacts_redundant_logic;
    ]
