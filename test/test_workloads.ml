(* Benchmark generators: published latch counts, determinism, structure. *)

let table1_latches =
  [
    ("minmax10", 30); ("minmax12", 36); ("minmax20", 60); ("minmax32", 96);
    ("prolog", 65); ("s1196", 18); ("s1238", 18); ("s1269", 37); ("s1423", 74);
    ("s3271", 116); ("s3384", 183); ("s400", 21); ("s444", 21); ("s4863", 88);
    ("s641", 19); ("s6669", 231); ("s713", 19); ("s9234", 135); ("s953", 29);
    ("s967", 29); ("s3330", 65); ("s15850", 515); ("s38417", 1464);
  ]

let table2_shape =
  [
    ("ex1", 2157, 934); ("ex2", 160, 16); ("ex3", 146, 56); ("ex4", 1437, 835);
    ("ex5", 672, 305); ("ex6", 412, 250); ("ex7", 453, 81); ("ex8", 968, 470);
    ("ex9", 783, 15); ("ex10", 634, 174); ("ex11", 792, 369); ("ex12", 2206, 691);
  ]

let test_table1_latch_counts () =
  let suite = Workloads.table1_suite () in
  Alcotest.(check int) "23 circuits" 23 (List.length suite);
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name suite with
      | None -> Alcotest.fail (name ^ " missing")
      | Some c ->
          Alcotest.(check int) (name ^ " latch count") expected (Circuit.latch_count c))
    table1_latches

let test_table1_valid () =
  List.iter (fun (_, c) -> Circuit.check c) (Workloads.table1_suite ())

let test_table2_exposure_counts () =
  (* small members only, to keep the test quick; the bench covers all *)
  List.iter
    (fun (name, latches, exposed) ->
      if latches <= 700 then begin
        let c = Workloads.by_name name in
        Alcotest.(check int) (name ^ " latches") latches (Circuit.latch_count c);
        let plan = Feedback.plan_structural c in
        Alcotest.(check int)
          (name ^ " structural exposure")
          exposed
          (List.length plan.Feedback.exposed)
      end)
    table2_shape

let test_table2_has_enables () =
  let c = Workloads.by_name "ex3" in
  let enabled =
    List.length
      (List.filter (fun l -> snd (Circuit.latch_info c l) <> None) (Circuit.latches c))
  in
  Alcotest.(check bool) "load-enabled latches present" true (enabled > 0)

let test_determinism () =
  let c1 = Workloads.by_name "s400" in
  let c2 = Workloads.by_name "s400" in
  Alcotest.(check string) "generators deterministic" (Netlist_io.to_string c1)
    (Netlist_io.to_string c2)

let test_minmax_functionality () =
  (* The tracker min/max-es the *conditioned* input stream (the deep mixing
     chain feeds the input registers).  Reference-model it: evaluate the
     conditioning combinationally, then replay the register update rules. *)
  let w = 4 in
  let c = Workloads.minmax ~width:w in
  Circuit.check c;
  let latches = Circuit.latches c in
  let inreg = List.filteri (fun i _ -> i < w) latches in
  let cond_data = List.map (fun l -> fst (Circuit.latch_info c l)) inreg in
  let st = Random.State.make [| 77 |] in
  let inputs =
    List.init 12 (fun t ->
        Array.init (w + 1) (fun i ->
            if i < w then Random.State.bool st else t = 0 (* reset pulse *)))
  in
  (* conditioned value per cycle *)
  let conditioned =
    List.map
      (fun (vec : bool array) ->
        let input_order = Circuit.inputs c in
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i s -> Hashtbl.replace tbl s vec.(i)) input_order;
        let source s =
          match Hashtbl.find_opt tbl s with Some b -> b | None -> false
        in
        let values = Eval.comb_eval c ~source in
        let bits = List.map (fun d -> values.(d)) cond_data in
        List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 (List.rev bits))
      inputs
  in
  (* reference tracker: inreg delays by 1; min/max update on compare or
     reset; all registers power up at 0 *)
  let minr = ref 0 and maxr = ref 0 and inr = ref 0 in
  let trace = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs in
  List.iteri
    (fun t (vec : bool array) ->
      let outs = List.nth trace t in
      let value lo =
        let bits = Array.to_list (Array.sub outs lo w) in
        List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 (List.rev bits)
      in
      Alcotest.(check int) (Printf.sprintf "min @%d" t) !minr (value 0);
      Alcotest.(check int) (Printf.sprintf "max @%d" t) !maxr (value w);
      (* state update *)
      let reset = vec.(w) in
      if !inr < !minr || reset then minr := !inr;
      if !inr > !maxr || reset then maxr := !inr;
      inr := List.nth conditioned t)
    inputs

let test_pipeline_acyclic () =
  let c = Workloads.pipeline ~name:"tp" ~width:6 ~stages:5 ~imbalance:3 ~seed:1 in
  let g, _ = Feedback.latch_graph c in
  Alcotest.(check bool) "no latch cycles" true (Vgraph.Topo.is_acyclic g)

let test_fsm_datapath_selfloops () =
  let c = Workloads.fsm_datapath ~name:"tf" ~latches:40 ~self_loops:12 ~gates:200 ~width:8 ~seed:2 in
  Alcotest.(check int) "latches" 40 (Circuit.latch_count c);
  let plan = Feedback.plan_structural c in
  Alcotest.(check int) "exposure = self loops" 12 (List.length plan.Feedback.exposed)

let test_deep_datapath_shape () =
  let c = Workloads.deep_datapath ~name:"td" ~width:5 ~stages:40 ~seed:7 in
  Alcotest.(check int) "latches = width*stages" 200 (Circuit.latch_count c);
  let g, _ = Feedback.latch_graph c in
  Alcotest.(check bool) "acyclic" true (Vgraph.Topo.is_acyclic g);
  (* the retime suite stays within the exact min-area vertex bound *)
  List.iter
    (fun (name, c) ->
      let n = Rgraph.vertex_count (Rgraph.build c) in
      Alcotest.(check bool) (name ^ " within exact bound") true (n <= 4000))
    (Workloads.retime_suite ())

let test_by_name_missing () =
  try
    ignore (Workloads.by_name "nonexistent");
    Alcotest.fail "missing name accepted"
  with Not_found -> ()

(* ---- the name registry ---- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_registry_resolves_everything () =
  let ns = Workloads.names () in
  Alcotest.(check bool) "registry is populated" true (List.length ns > 40);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "name %s listed" n)
        true (List.mem n ns))
    [ "minmax10"; "s1423"; "ex3"; "deep_w4x64"; "fifo64x16s"; "fifo64x16m_bug"; "hfifo_a"; "halu_mut_b" ];
  (* every cheap name builds a valid circuit under its own name *)
  List.iter
    (fun n ->
      match Workloads.lookup n with
      | Ok c ->
          Circuit.check c;
          Alcotest.(check string) "circuit carries its registry name" n (Circuit.name c)
      | Error e -> Alcotest.fail e)
    [ "minmax10"; "ex3"; "hfifo_a" ]

let test_lookup_suggests_near_misses () =
  match Workloads.lookup "mnmax10" with
  | Ok _ -> Alcotest.fail "typo accepted"
  | Error e ->
      Alcotest.(check bool) "suggests the close name" true
        (contains ~sub:"minmax10" e);
      Alcotest.(check bool) "names the unknown input" true
        (contains ~sub:"mnmax10" e)

let test_hier_suite_shape () =
  let suite = Workloads.hier_suite () in
  Alcotest.(check int) "four pairs" 4 (List.length suite);
  List.iter
    (fun (name, l, r, expected) ->
      Alcotest.(check bool)
        (name ^ ": same top") true
        (l.Hier.top = r.Hier.top);
      Alcotest.(check bool)
        (name ^ ": same module names") true
        (List.map (fun m -> m.Hier.mod_name) l.Hier.modules
        = List.map (fun m -> m.Hier.mod_name) r.Hier.modules);
      (* sides differ structurally at every module *)
      List.iter
        (fun lm ->
          let rm = Hier.find_module r lm.Hier.mod_name in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s differs" name lm.Hier.mod_name)
            true
            (Hier.circuit_signature lm.Hier.glue
            <> Hier.circuit_signature rm.Hier.glue))
        l.Hier.modules;
      match expected with
      | `Eq -> ()
      | `Neq m -> ignore (Hier.find_module r m))
    suite

(* ---- large tier ---- *)

let test_fifo_shape () =
  List.iter
    (fun style ->
      let entries = 8 and width = 4 in
      let c = Workloads.fifo ~entries ~width ~style () in
      Circuit.check c;
      (* data latches plus the two log2(entries)-bit pointers *)
      Alcotest.(check int) "latch count"
        ((entries * width) + 6)
        (Circuit.latch_count c);
      (* every data latch is a hold-mux self-loop: the structural plan
         must expose all of them (pointers are a counter cycle too) *)
      let plan = Feedback.plan_structural c in
      Alcotest.(check int) "all latches exposed"
        (Circuit.latch_count c)
        (List.length plan.Feedback.exposed))
    [ `Sop; `Mux ];
  (* the two styles share latch names, so one exposure cut fits both *)
  let names style =
    let c = Workloads.fifo ~entries:8 ~width:4 ~style () in
    List.sort compare (List.map (Circuit.signal_name c) (Circuit.latches c))
  in
  Alcotest.(check (list string)) "styles share latch names" (names `Sop) (names `Mux);
  (* styles are structurally different but must stay functionally equal;
     the bug variant must not *)
  let v c1 c2 =
    (Result.get_ok
       (Verify.check
          ~exposed:
            (List.map
               (Circuit.signal_name c1)
               (Feedback.plan_structural c1).Feedback.exposed)
          c1 c2))
      .Verify.verdict
  in
  let sop = Workloads.fifo ~entries:4 ~width:2 ~style:`Sop () in
  let mux = Workloads.fifo ~entries:4 ~width:2 ~style:`Mux () in
  let bug = Workloads.fifo ~entries:4 ~width:2 ~style:`Mux ~bug:true () in
  Alcotest.(check bool) "styles equivalent" true (v sop mux = Verify.Equivalent);
  (match v sop bug with
  | Verify.Inequivalent _ -> ()
  | _ -> Alcotest.fail "bug variant accepted");
  (* entries must be a power of two (the pointer decode relies on it) *)
  try
    ignore (Workloads.fifo ~entries:6 ~width:2 ~style:`Sop ());
    Alcotest.fail "non-power-of-two entries accepted"
  with Invalid_argument _ -> ()

let test_lane_alu_shape () =
  let lanes = 2 and width = 4 and stages = 3 in
  List.iter
    (fun style ->
      let c = Workloads.lane_alu ~lanes ~width ~stages ~style () in
      Circuit.check c;
      Alcotest.(check int) "flip-flops = lanes*width*stages"
        (lanes * width * stages)
        (Circuit.latch_count c);
      (* acyclic: CBF needs no exposure at all *)
      let g, _ = Feedback.latch_graph c in
      Alcotest.(check bool) "acyclic" true (Vgraph.Topo.is_acyclic g))
    [ `Ripple; `Select ];
  let rip = Workloads.lane_alu ~lanes ~width ~stages:2 ~style:`Ripple () in
  let sel = Workloads.lane_alu ~lanes ~width ~stages:2 ~style:`Select () in
  let v c1 c2 = (Result.get_ok (Verify.check c1 c2)).Verify.verdict in
  Alcotest.(check bool) "adder styles equivalent" true
    (v rip sel = Verify.Equivalent);
  let bug = Workloads.lane_alu ~lanes ~width ~stages:2 ~style:`Select ~bug:true () in
  match v rip bug with
  | Verify.Inequivalent _ -> ()
  | _ -> Alcotest.fail "bug variant accepted"

let test_large_suite_shape () =
  let full = Workloads.large_suite () in
  let smoke = Workloads.large_suite ~smoke:true () in
  Alcotest.(check bool) "smoke is smaller" true
    (List.length smoke < List.length full && smoke <> []);
  List.iter
    (fun (name, c1, c2) ->
      Circuit.check c1;
      Circuit.check c2;
      Alcotest.(check bool) (name ^ ": style names differ") true
        (Circuit.name c1 <> Circuit.name c2);
      (* generators are deterministic and reachable through by_name *)
      Alcotest.(check string) (name ^ ": by_name round-trips")
        (Netlist_io.to_string c1)
        (Netlist_io.to_string (Workloads.by_name (Circuit.name c1))))
    (full @ smoke);
  let mname, m1, m2 = Workloads.large_mutant () in
  Circuit.check m1;
  Circuit.check m2;
  Alcotest.(check bool) "mutant named" true (String.length mname > 0)

let suite =
  [
    Alcotest.test_case "table 1 latch counts" `Quick test_table1_latch_counts;
    Alcotest.test_case "table 1 circuits valid" `Quick test_table1_valid;
    Alcotest.test_case "table 2 exposure counts" `Quick test_table2_exposure_counts;
    Alcotest.test_case "table 2 enables present" `Quick test_table2_has_enables;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "minmax tracks min/max" `Quick test_minmax_functionality;
    Alcotest.test_case "pipeline acyclic" `Quick test_pipeline_acyclic;
    Alcotest.test_case "fsm_datapath self-loops" `Quick test_fsm_datapath_selfloops;
    Alcotest.test_case "deep datapath shape" `Quick test_deep_datapath_shape;
    Alcotest.test_case "by_name missing" `Quick test_by_name_missing;
    Alcotest.test_case "registry resolves everything" `Quick test_registry_resolves_everything;
    Alcotest.test_case "lookup suggests near misses" `Quick test_lookup_suggests_near_misses;
    Alcotest.test_case "hier suite shape" `Quick test_hier_suite_shape;
    Alcotest.test_case "fifo shape and styles" `Quick test_fifo_shape;
    Alcotest.test_case "lane ALU shape and styles" `Quick test_lane_alu_shape;
    Alcotest.test_case "large suite shape" `Quick test_large_suite_shape;
  ]
