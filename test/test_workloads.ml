(* Benchmark generators: published latch counts, determinism, structure. *)

let table1_latches =
  [
    ("minmax10", 30); ("minmax12", 36); ("minmax20", 60); ("minmax32", 96);
    ("prolog", 65); ("s1196", 18); ("s1238", 18); ("s1269", 37); ("s1423", 74);
    ("s3271", 116); ("s3384", 183); ("s400", 21); ("s444", 21); ("s4863", 88);
    ("s641", 19); ("s6669", 231); ("s713", 19); ("s9234", 135); ("s953", 29);
    ("s967", 29); ("s3330", 65); ("s15850", 515); ("s38417", 1464);
  ]

let table2_shape =
  [
    ("ex1", 2157, 934); ("ex2", 160, 16); ("ex3", 146, 56); ("ex4", 1437, 835);
    ("ex5", 672, 305); ("ex6", 412, 250); ("ex7", 453, 81); ("ex8", 968, 470);
    ("ex9", 783, 15); ("ex10", 634, 174); ("ex11", 792, 369); ("ex12", 2206, 691);
  ]

let test_table1_latch_counts () =
  let suite = Workloads.table1_suite () in
  Alcotest.(check int) "23 circuits" 23 (List.length suite);
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name suite with
      | None -> Alcotest.fail (name ^ " missing")
      | Some c ->
          Alcotest.(check int) (name ^ " latch count") expected (Circuit.latch_count c))
    table1_latches

let test_table1_valid () =
  List.iter (fun (_, c) -> Circuit.check c) (Workloads.table1_suite ())

let test_table2_exposure_counts () =
  (* small members only, to keep the test quick; the bench covers all *)
  List.iter
    (fun (name, latches, exposed) ->
      if latches <= 700 then begin
        let c = Workloads.by_name name in
        Alcotest.(check int) (name ^ " latches") latches (Circuit.latch_count c);
        let plan = Feedback.plan_structural c in
        Alcotest.(check int)
          (name ^ " structural exposure")
          exposed
          (List.length plan.Feedback.exposed)
      end)
    table2_shape

let test_table2_has_enables () =
  let c = Workloads.by_name "ex3" in
  let enabled =
    List.length
      (List.filter (fun l -> snd (Circuit.latch_info c l) <> None) (Circuit.latches c))
  in
  Alcotest.(check bool) "load-enabled latches present" true (enabled > 0)

let test_determinism () =
  let c1 = Workloads.by_name "s400" in
  let c2 = Workloads.by_name "s400" in
  Alcotest.(check string) "generators deterministic" (Netlist_io.to_string c1)
    (Netlist_io.to_string c2)

let test_minmax_functionality () =
  (* The tracker min/max-es the *conditioned* input stream (the deep mixing
     chain feeds the input registers).  Reference-model it: evaluate the
     conditioning combinationally, then replay the register update rules. *)
  let w = 4 in
  let c = Workloads.minmax ~width:w in
  Circuit.check c;
  let latches = Circuit.latches c in
  let inreg = List.filteri (fun i _ -> i < w) latches in
  let cond_data = List.map (fun l -> fst (Circuit.latch_info c l)) inreg in
  let st = Random.State.make [| 77 |] in
  let inputs =
    List.init 12 (fun t ->
        Array.init (w + 1) (fun i ->
            if i < w then Random.State.bool st else t = 0 (* reset pulse *)))
  in
  (* conditioned value per cycle *)
  let conditioned =
    List.map
      (fun (vec : bool array) ->
        let input_order = Circuit.inputs c in
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i s -> Hashtbl.replace tbl s vec.(i)) input_order;
        let source s =
          match Hashtbl.find_opt tbl s with Some b -> b | None -> false
        in
        let values = Eval.comb_eval c ~source in
        let bits = List.map (fun d -> values.(d)) cond_data in
        List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 (List.rev bits))
      inputs
  in
  (* reference tracker: inreg delays by 1; min/max update on compare or
     reset; all registers power up at 0 *)
  let minr = ref 0 and maxr = ref 0 and inr = ref 0 in
  let trace = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs in
  List.iteri
    (fun t (vec : bool array) ->
      let outs = List.nth trace t in
      let value lo =
        let bits = Array.to_list (Array.sub outs lo w) in
        List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 (List.rev bits)
      in
      Alcotest.(check int) (Printf.sprintf "min @%d" t) !minr (value 0);
      Alcotest.(check int) (Printf.sprintf "max @%d" t) !maxr (value w);
      (* state update *)
      let reset = vec.(w) in
      if !inr < !minr || reset then minr := !inr;
      if !inr > !maxr || reset then maxr := !inr;
      inr := List.nth conditioned t)
    inputs

let test_pipeline_acyclic () =
  let c = Workloads.pipeline ~name:"tp" ~width:6 ~stages:5 ~imbalance:3 ~seed:1 in
  let g, _ = Feedback.latch_graph c in
  Alcotest.(check bool) "no latch cycles" true (Vgraph.Topo.is_acyclic g)

let test_fsm_datapath_selfloops () =
  let c = Workloads.fsm_datapath ~name:"tf" ~latches:40 ~self_loops:12 ~gates:200 ~width:8 ~seed:2 in
  Alcotest.(check int) "latches" 40 (Circuit.latch_count c);
  let plan = Feedback.plan_structural c in
  Alcotest.(check int) "exposure = self loops" 12 (List.length plan.Feedback.exposed)

let test_deep_datapath_shape () =
  let c = Workloads.deep_datapath ~name:"td" ~width:5 ~stages:40 ~seed:7 in
  Alcotest.(check int) "latches = width*stages" 200 (Circuit.latch_count c);
  let g, _ = Feedback.latch_graph c in
  Alcotest.(check bool) "acyclic" true (Vgraph.Topo.is_acyclic g);
  (* the retime suite stays within the exact min-area vertex bound *)
  List.iter
    (fun (name, c) ->
      let n = Rgraph.vertex_count (Rgraph.build c) in
      Alcotest.(check bool) (name ^ " within exact bound") true (n <= 4000))
    (Workloads.retime_suite ())

let test_by_name_missing () =
  try
    ignore (Workloads.by_name "nonexistent");
    Alcotest.fail "missing name accepted"
  with Not_found -> ()

let suite =
  [
    Alcotest.test_case "table 1 latch counts" `Quick test_table1_latch_counts;
    Alcotest.test_case "table 1 circuits valid" `Quick test_table1_valid;
    Alcotest.test_case "table 2 exposure counts" `Quick test_table2_exposure_counts;
    Alcotest.test_case "table 2 enables present" `Quick test_table2_has_enables;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "minmax tracks min/max" `Quick test_minmax_functionality;
    Alcotest.test_case "pipeline acyclic" `Quick test_pipeline_acyclic;
    Alcotest.test_case "fsm_datapath self-loops" `Quick test_fsm_datapath_selfloops;
    Alcotest.test_case "deep datapath shape" `Quick test_deep_datapath_shape;
    Alcotest.test_case "by_name missing" `Quick test_by_name_missing;
  ]
