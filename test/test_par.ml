(* The domain pool: ordering, determinism, cancellation, exceptions. *)

let job_counts = [ 1; 2; 4 ]

let test_map_preserves_order () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          let xs = List.init 100 Fun.id in
          let got = Par.Pool.map p (fun x -> x * x) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            (List.map (fun x -> x * x) xs)
            got;
          Alcotest.(check (list int)) "empty" [] (Par.Pool.map p (fun x -> x) []);
          Alcotest.(check (list int)) "singleton" [ 7 ] (Par.Pool.map p (fun x -> x) [ 7 ])))
    job_counts

let test_find_first_deterministic () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          let xs = List.init 64 Fun.id in
          let f x = if x mod 7 = 3 then Some (x * 10) else None in
          (* smallest match is 3, independently of scheduling *)
          for _ = 1 to 5 do
            Alcotest.(check (option int))
              (Printf.sprintf "jobs=%d" jobs)
              (List.find_map f xs)
              (Par.Pool.find_first p f xs)
          done;
          Alcotest.(check (option int))
            "no match" None
            (Par.Pool.find_first p (fun _ -> None) xs)))
    job_counts

let test_find_first_cancels () =
  (* once the match at index 0 is known, most later elements must never
     start; with the match placed first this is deterministic enough to
     assert a strict bound even under adversarial scheduling *)
  Par.Pool.with_pool ~jobs:4 (fun p ->
      let started = Atomic.make 0 in
      let n = 10_000 in
      let f i =
        Atomic.incr started;
        if i = 0 then Some i else None
      in
      let r = Par.Pool.find_first p f (List.init n Fun.id) in
      Alcotest.(check (option int)) "found" (Some 0) r;
      Alcotest.(check bool)
        (Printf.sprintf "cancelled most of the sweep (started %d)" (Atomic.get started))
        true
        (Atomic.get started < n))

let test_find_first_found_flag () =
  (* the ?found flag is raised the moment any match is recorded — the hook
     long-running tasks poll for cooperative cancellation *)
  Par.Pool.with_pool ~jobs:2 (fun p ->
      let flag = Atomic.make false in
      let r =
        Par.Pool.find_first ~found:flag p
          (fun x -> if x = 5 then Some x else None)
          (List.init 32 Fun.id)
      in
      Alcotest.(check (option int)) "match found" (Some 5) r;
      Alcotest.(check bool) "flag set on match" true (Atomic.get flag);
      let clear = Atomic.make false in
      let none =
        Par.Pool.find_first ~found:clear p (fun _ -> None) (List.init 32 Fun.id)
      in
      Alcotest.(check (option int)) "no match" None none;
      Alcotest.(check bool) "flag untouched without a match" false (Atomic.get clear))

let test_exceptions_propagate () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          match Par.Pool.map p (fun x -> if x = 13 then failwith "boom" else x) (List.init 20 Fun.id) with
          | _ -> Alcotest.fail (Printf.sprintf "jobs=%d: exception swallowed" jobs)
          | exception Failure m -> Alcotest.(check string) "message" "boom" m))
    job_counts

let test_pool_reuse_and_nesting () =
  (* many runs on one pool; pools created inside pool tasks *)
  Par.Pool.with_pool ~jobs:2 (fun outer ->
      for round = 1 to 20 do
        let xs = List.init 50 (fun i -> i + round) in
        let got =
          Par.Pool.map outer
            (fun x ->
              if x mod 17 = 0 then
                Par.Pool.with_pool ~jobs:2 (fun inner ->
                    List.fold_left ( + ) 0 (Par.Pool.map inner Fun.id [ x; x; x ]))
              else 3 * x)
            xs
        in
        Alcotest.(check (list int)) "nested" (List.map (fun x -> 3 * x) xs) got
      done)

let test_lazy_spawn () =
  (* workers are spawned on first use, never at creation, and never more
     than the run's task count warrants — a pool created for a check that
     turns out monolithic costs nothing *)
  Par.Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "creation spawns nothing" 0 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id [ 42 ]);
      Alcotest.(check int) "a single task needs no worker" 0 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id [ 1; 2 ]);
      Alcotest.(check int) "two tasks: one worker" 1 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id (List.init 16 Fun.id));
      Alcotest.(check int) "capped at jobs-1 workers" 3 (Par.Pool.spawned p);
      (* workers persist once spawned; later small runs don't shrink *)
      ignore (Par.Pool.map p Fun.id [ 7 ]);
      Alcotest.(check int) "workers persist" 3 (Par.Pool.spawned p));
  Par.Pool.with_pool ~jobs:1 (fun p ->
      ignore (Par.Pool.map p Fun.id (List.init 16 Fun.id));
      Alcotest.(check int) "jobs=1 never spawns" 0 (Par.Pool.spawned p))

let test_effects_visible_after_run () =
  Par.Pool.with_pool ~jobs:4 (fun p ->
      let arr = Array.make 1000 0 in
      Par.Pool.run p 1000 (fun i -> arr.(i) <- i + 1);
      let ok = ref true in
      Array.iteri (fun i v -> if v <> i + 1 then ok := false) arr;
      Alcotest.(check bool) "all writes visible" true !ok)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "find_first deterministic" `Quick test_find_first_deterministic;
    Alcotest.test_case "find_first cancels tail" `Quick test_find_first_cancels;
    Alcotest.test_case "find_first found flag" `Quick test_find_first_found_flag;
    Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
    Alcotest.test_case "pool reuse and nesting" `Quick test_pool_reuse_and_nesting;
    Alcotest.test_case "lazy spawn" `Quick test_lazy_spawn;
    Alcotest.test_case "task effects visible" `Quick test_effects_visible_after_run;
  ]
