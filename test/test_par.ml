(* The domain pool: ordering, determinism, cancellation, exceptions. *)

let job_counts = [ 1; 2; 4 ]

let test_map_preserves_order () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          let xs = List.init 100 Fun.id in
          let got = Par.Pool.map p (fun x -> x * x) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            (List.map (fun x -> x * x) xs)
            got;
          Alcotest.(check (list int)) "empty" [] (Par.Pool.map p (fun x -> x) []);
          Alcotest.(check (list int)) "singleton" [ 7 ] (Par.Pool.map p (fun x -> x) [ 7 ])))
    job_counts

let test_find_first_deterministic () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          let xs = List.init 64 Fun.id in
          let f x = if x mod 7 = 3 then Some (x * 10) else None in
          (* smallest match is 3, independently of scheduling *)
          for _ = 1 to 5 do
            Alcotest.(check (option int))
              (Printf.sprintf "jobs=%d" jobs)
              (List.find_map f xs)
              (Par.Pool.find_first p f xs)
          done;
          Alcotest.(check (option int))
            "no match" None
            (Par.Pool.find_first p (fun _ -> None) xs)))
    job_counts

let test_find_first_cancels () =
  (* once the match at index 0 is recorded, the index guard must skip the
     rest of the sweep.  Deterministic formulation: tail tasks park until
     the match is published (via the [?found] flag), so the only tasks
     that can enter [f] before cancellation are the ones already running
     on a worker when the match landed — at most jobs-1 of them.  The
     submitter always executes index 0 itself, so the match is recorded
     without ever waiting on a worker (no deadlock against the gate). *)
  Par.Pool.with_pool ~jobs:4 (fun p ->
      let flag = Atomic.make false in
      let early = Atomic.make 0 in
      let n = 10_000 in
      let f i =
        if i = 0 then Some i
        else begin
          if not (Atomic.get flag) then Atomic.incr early;
          while not (Atomic.get flag) do
            Domain.cpu_relax ()
          done;
          None
        end
      in
      let r = Par.Pool.find_first ~found:flag p f (List.init n Fun.id) in
      Alcotest.(check (option int)) "found" (Some 0) r;
      Alcotest.(check bool)
        (Printf.sprintf "tail cancelled (early entries: %d)" (Atomic.get early))
        true
        (Atomic.get early < 4))

let test_find_first_found_flag () =
  (* the ?found flag is raised the moment any match is recorded — the hook
     long-running tasks poll for cooperative cancellation *)
  Par.Pool.with_pool ~jobs:2 (fun p ->
      let flag = Atomic.make false in
      let r =
        Par.Pool.find_first ~found:flag p
          (fun x -> if x = 5 then Some x else None)
          (List.init 32 Fun.id)
      in
      Alcotest.(check (option int)) "match found" (Some 5) r;
      Alcotest.(check bool) "flag set on match" true (Atomic.get flag);
      let clear = Atomic.make false in
      let none =
        Par.Pool.find_first ~found:clear p (fun _ -> None) (List.init 32 Fun.id)
      in
      Alcotest.(check (option int)) "no match" None none;
      Alcotest.(check bool) "flag untouched without a match" false (Atomic.get clear))

let test_exceptions_propagate () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          match Par.Pool.map p (fun x -> if x = 13 then failwith "boom" else x) (List.init 20 Fun.id) with
          | _ -> Alcotest.fail (Printf.sprintf "jobs=%d: exception swallowed" jobs)
          | exception Failure m -> Alcotest.(check string) "message" "boom" m))
    job_counts

let test_pool_reuse_and_nesting () =
  (* many runs on one pool; pools created inside pool tasks *)
  Par.Pool.with_pool ~jobs:2 (fun outer ->
      for round = 1 to 20 do
        let xs = List.init 50 (fun i -> i + round) in
        let got =
          Par.Pool.map outer
            (fun x ->
              if x mod 17 = 0 then
                Par.Pool.with_pool ~jobs:2 (fun inner ->
                    List.fold_left ( + ) 0 (Par.Pool.map inner Fun.id [ x; x; x ]))
              else 3 * x)
            xs
        in
        Alcotest.(check (list int)) "nested" (List.map (fun x -> 3 * x) xs) got
      done)

let test_lazy_spawn () =
  (* workers are spawned on first use, never at creation, and never more
     than the run's task count warrants — a pool created for a check that
     turns out monolithic costs nothing *)
  Par.Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "creation spawns nothing" 0 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id [ 42 ]);
      Alcotest.(check int) "a single task needs no worker" 0 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id [ 1; 2 ]);
      Alcotest.(check int) "two tasks: one worker" 1 (Par.Pool.spawned p);
      ignore (Par.Pool.map p Fun.id (List.init 16 Fun.id));
      Alcotest.(check int) "capped at jobs-1 workers" 3 (Par.Pool.spawned p);
      (* workers persist once spawned; later small runs don't shrink *)
      ignore (Par.Pool.map p Fun.id [ 7 ]);
      Alcotest.(check int) "workers persist" 3 (Par.Pool.spawned p));
  Par.Pool.with_pool ~jobs:1 (fun p ->
      ignore (Par.Pool.map p Fun.id (List.init 16 Fun.id));
      Alcotest.(check int) "jobs=1 never spawns" 0 (Par.Pool.spawned p))

let test_effects_visible_after_run () =
  Par.Pool.with_pool ~jobs:4 (fun p ->
      let arr = Array.make 1000 0 in
      Par.Pool.run p 1000 (fun i -> arr.(i) <- i + 1);
      let ok = ref true in
      Array.iteri (fun i v -> if v <> i + 1 then ok := false) arr;
      Alcotest.(check bool) "all writes visible" true !ok)

(* ---- one pool, many submitting domains (the server's sharing shape) ---- *)

let test_concurrent_submitters () =
  (* several domains run interleaved map batches on ONE pool: each batch's
     results must be exactly its own (no cross-batch mixing), at every
     jobs level including 1 *)
  List.iter
    (fun jobs ->
      let p = Par.Pool.create ~jobs in
      let doms =
        List.init 4 (fun s ->
            Domain.spawn (fun () ->
                let ok = ref true in
                for round = 1 to 25 do
                  let xs =
                    List.init (10 + ((s + round) mod 17)) (fun i -> (s * 1000) + i)
                  in
                  let got = Par.Pool.map p (fun x -> (x * 2) + s) xs in
                  if got <> List.map (fun x -> (x * 2) + s) xs then ok := false
                done;
                !ok))
      in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d batches intact" jobs)
            true (Domain.join d))
        doms;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d worker cap held" jobs)
        true
        (Par.Pool.spawned p <= max 0 (jobs - 1));
      Par.Pool.shutdown p)
    [ 1; 2; 4 ]

exception Boom of int

let test_concurrent_exception_isolation () =
  (* one domain's batches keep failing while another's keep succeeding on
     the same pool: every exception must land in the batch that submitted
     the raising task (even when a helping sibling domain executed it),
     and the healthy batches must never observe it *)
  let p = Par.Pool.create ~jobs:4 in
  let good =
    Domain.spawn (fun () ->
        let ok = ref true in
        let expect = List.init 32 (fun x -> x + 1) in
        for _ = 1 to 50 do
          match Par.Pool.map p (fun x -> x + 1) (List.init 32 Fun.id) with
          | got -> if got <> expect then ok := false
          | exception _ -> ok := false
        done;
        !ok)
  in
  let bad =
    Domain.spawn (fun () ->
        let landed = ref 0 in
        for r = 1 to 50 do
          match Par.Pool.run p 8 (fun i -> if i = 5 then raise (Boom r)) with
          | () -> ()
          | exception Boom r' -> if r' = r then incr landed
        done;
        !landed)
  in
  Alcotest.(check bool) "healthy batches unaffected" true (Domain.join good);
  Alcotest.(check int) "exceptions land in the raising batch" 50
    (Domain.join bad);
  Par.Pool.shutdown p

let test_concurrent_find_first () =
  let p = Par.Pool.create ~jobs:4 in
  let doms =
    List.init 4 (fun s ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to 25 do
              let f x = if x mod 10 = s then Some (x, s) else None in
              (* lowest index matching this submitter's own predicate *)
              if Par.Pool.find_first p f (List.init 40 Fun.id) <> Some (s, s)
              then ok := false
            done;
            !ok))
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "find_first per-batch result" true (Domain.join d))
    doms;
  Par.Pool.shutdown p

let test_shutdown_races_batch () =
  (* shutdown while a batch may be mid-flight: the batch still completes
     (the submitter drains what the stopped workers leave), shutdown joins
     every worker, and the pool ends empty either way the race goes *)
  for _ = 1 to 10 do
    let p = Par.Pool.create ~jobs:4 in
    let count = Atomic.make 0 in
    let d =
      Domain.spawn (fun () ->
          Par.Pool.run p 64 (fun _ -> Atomic.incr count))
    in
    Par.Pool.shutdown p;
    Domain.join d;
    Alcotest.(check int) "every task of the racing batch ran" 64
      (Atomic.get count);
    Alcotest.(check int) "no workers left" 0 (Par.Pool.spawned p)
  done

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "find_first deterministic" `Quick test_find_first_deterministic;
    Alcotest.test_case "find_first cancels tail" `Quick test_find_first_cancels;
    Alcotest.test_case "find_first found flag" `Quick test_find_first_found_flag;
    Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
    Alcotest.test_case "pool reuse and nesting" `Quick test_pool_reuse_and_nesting;
    Alcotest.test_case "lazy spawn" `Quick test_lazy_spawn;
    Alcotest.test_case "task effects visible" `Quick test_effects_visible_after_run;
    Alcotest.test_case "concurrent submitters" `Quick test_concurrent_submitters;
    Alcotest.test_case "concurrent exception isolation" `Quick
      test_concurrent_exception_isolation;
    Alcotest.test_case "concurrent find_first" `Quick test_concurrent_find_first;
    Alcotest.test_case "shutdown races a batch" `Quick test_shutdown_races_batch;
  ]
