(* CDCL solver cross-checked against brute force on random instances. *)

let st = Random.State.make [| 0x5A7 |]

let brute nvars clauses =
  let sat = ref false in
  for m = 0 to (1 lsl nvars) - 1 do
    if not !sat then begin
      let value v = m land (1 lsl (v - 1)) <> 0 in
      let ok_clause c =
        List.exists (fun l -> if l > 0 then value l else not (value (-l))) c
      in
      if List.for_all ok_clause clauses then sat := true
    end
  done;
  !sat

let random_instance () =
  let nvars = 1 + Random.State.int st 10 in
  let nclauses = 1 + Random.State.int st 45 in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Random.State.int st 3 in
        List.init len (fun _ ->
            let v = 1 + Random.State.int st nvars in
            if Random.State.bool st then v else -v))
  in
  (nvars, clauses)

let model_ok s clauses =
  let value v = Sat.value s v in
  List.for_all
    (fun c -> List.exists (fun l -> if l > 0 then value l else not (value (-l))) c)
    clauses

let test_random_3sat () =
  for _ = 1 to 500 do
    let nvars, clauses = random_instance () in
    let s = Sat.create () in
    List.iter (Sat.add_clause s) clauses;
    let expected = brute nvars clauses in
    (match Sat.solve s with
    | Sat.Sat ->
        Alcotest.(check bool) "expected sat" true expected;
        Alcotest.(check bool) "model valid" true (model_ok s clauses)
    | Sat.Unsat -> Alcotest.(check bool) "expected unsat" false expected
    | Sat.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown")
  done

let test_assumptions () =
  for _ = 1 to 300 do
    let nvars, clauses = random_instance () in
    let s = Sat.create () in
    List.iter (Sat.add_clause s) clauses;
    let a1 = (if Random.State.bool st then 1 else -1) * (1 + Random.State.int st nvars) in
    let a2 = (if Random.State.bool st then 1 else -1) * (1 + Random.State.int st nvars) in
    let expected = brute nvars ([ a1 ] :: [ a2 ] :: clauses) in
    let got = Sat.solve ~assumptions:[ a1; a2 ] s = Sat.Sat in
    Alcotest.(check bool) "under assumptions" expected got;
    (* solver unchanged: solving without assumptions afterwards *)
    let expected0 = brute nvars clauses in
    Alcotest.(check bool) "reuse after assumptions" expected0 (Sat.solve s = Sat.Sat)
  done

let test_incremental_clauses () =
  (* add clauses progressively; satisfiability is monotonically
     non-increasing *)
  for _ = 1 to 50 do
    let nvars = 1 + Random.State.int st 8 in
    let s = Sat.create () in
    let acc = ref [] in
    let was_unsat = ref false in
    for _ = 1 to 25 do
      let len = 1 + Random.State.int st 3 in
      let clause =
        List.init len (fun _ ->
            let v = 1 + Random.State.int st nvars in
            if Random.State.bool st then v else -v)
      in
      Sat.add_clause s clause;
      acc := clause :: !acc;
      let expected = brute nvars !acc in
      let got = Sat.solve s = Sat.Sat in
      Alcotest.(check bool) "incremental" expected got;
      if !was_unsat then Alcotest.(check bool) "stays unsat" false got;
      if not got then was_unsat := true
    done
  done

let test_empty_clause () =
  let s = Sat.create () in
  Sat.add_clause s [ 1; 2 ];
  Sat.add_clause s [];
  Alcotest.(check bool) "empty clause unsat" true (Sat.solve s = Sat.Unsat)

let test_tautology () =
  let s = Sat.create () in
  Sat.add_clause s [ 1; -1 ];
  Alcotest.(check bool) "tautology sat" true (Sat.solve s = Sat.Sat)

let test_unit_chain () =
  (* long implication chain forced by units *)
  let s = Sat.create () in
  let n = 200 in
  Sat.add_clause s [ 1 ];
  for v = 1 to n - 1 do
    Sat.add_clause s [ -v; v + 1 ]
  done;
  Alcotest.(check bool) "chain sat" true (Sat.solve s = Sat.Sat);
  for v = 1 to n do
    Alcotest.(check bool) "all true" true (Sat.value s v)
  done;
  Sat.add_clause s [ -n ];
  Alcotest.(check bool) "contradiction" true (Sat.solve s = Sat.Unsat)

let test_pigeonhole_4_3 () =
  (* 4 pigeons, 3 holes: classic small UNSAT requiring real search *)
  let s = Sat.create () in
  let var p h = (p * 3) + h + 1 in
  for p = 0 to 3 do
    Sat.add_clause s [ var p 0; var p 1; var p 2 ]
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Sat.add_clause s [ -var p1 h; -var p2 h ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (Sat.solve s = Sat.Unsat)

(* php(p,h) clauses: p pigeons into h holes, unsat when p > h *)
let add_pigeonhole s ~pigeons ~holes =
  let var p h = (p * holes) + h + 1 in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (List.init holes (fun h -> var p h))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ -var p1 h; -var p2 h ]
      done
    done
  done

let test_budget_conflicts () =
  (* php(4,3) needs real search: a 1-conflict budget must give up — and the
     interrupted solver must still decide correctly afterwards *)
  let s = Sat.create () in
  add_pigeonhole s ~pigeons:4 ~holes:3;
  Alcotest.(check bool)
    "1-conflict budget gives up" true
    (Sat.solve ~budget:(Sat.budget ~conflicts:1 ()) s = Sat.Unknown);
  Alcotest.(check bool)
    "solver still usable after Unknown" true
    (Sat.solve s = Sat.Unsat);
  (* after the instance is known unsat, budgets no longer matter *)
  Alcotest.(check bool)
    "unsat flag survives budgeted re-solve" true
    (Sat.solve ~budget:(Sat.budget ~conflicts:1 ()) s = Sat.Unsat)

let test_budget_propagations () =
  let s = Sat.create () in
  Sat.add_clause s [ 1 ];
  Sat.add_clause s [ -1; 2 ];
  Alcotest.(check bool)
    "0-propagation budget gives up" true
    (Sat.solve ~budget:(Sat.budget ~propagations:0 ()) s = Sat.Unknown);
  Alcotest.(check bool) "then solves" true (Sat.solve s = Sat.Sat)

let test_budget_never_lies () =
  (* a budgeted answer other than Unknown must match brute force *)
  for _ = 1 to 200 do
    let nvars, clauses = random_instance () in
    let s = Sat.create () in
    List.iter (Sat.add_clause s) clauses;
    match Sat.solve ~budget:(Sat.budget ~conflicts:2 ()) s with
    | Sat.Unknown -> ()
    | Sat.Sat ->
        Alcotest.(check bool) "budgeted sat correct" true (brute nvars clauses);
        Alcotest.(check bool) "budgeted model valid" true (model_ok s clauses)
    | Sat.Unsat ->
        Alcotest.(check bool) "budgeted unsat correct" false (brute nvars clauses)
  done

let test_cancel () =
  let s = Sat.create () in
  add_pigeonhole s ~pigeons:4 ~holes:3;
  let c = Atomic.make true in
  Alcotest.(check bool)
    "pre-set cancel gives up" true
    (Sat.solve ~cancel:c s = Sat.Unknown);
  Atomic.set c false;
  Alcotest.(check bool)
    "cleared cancel solves" true
    (Sat.solve ~cancel:c s = Sat.Unsat)

let test_activity_rescale () =
  (* php(6,5) drives enough conflicts through VSIDS to cross the 1e100
     activity rescale; decisions must stay heap-driven and the answer
     correct *)
  let s = Sat.create () in
  add_pigeonhole s ~pigeons:6 ~holes:5;
  Alcotest.(check bool) "php(6,5) unsat" true (Sat.solve s = Sat.Unsat)

let test_stats_move () =
  let s = Sat.create () in
  Sat.add_clause s [ 1; 2 ];
  Sat.add_clause s [ -1; 2 ];
  ignore (Sat.solve s);
  let _c, _d, p = Sat.stats s in
  Alcotest.(check bool) "propagations counted" true (p >= 0)

let suite =
  [
    Alcotest.test_case "random 3-SAT vs brute force" `Quick test_random_3sat;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental clause addition" `Quick test_incremental_clauses;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "tautology" `Quick test_tautology;
    Alcotest.test_case "unit chain" `Quick test_unit_chain;
    Alcotest.test_case "pigeonhole 4/3" `Quick test_pigeonhole_4_3;
    Alcotest.test_case "conflict budget" `Quick test_budget_conflicts;
    Alcotest.test_case "propagation budget" `Quick test_budget_propagations;
    Alcotest.test_case "budgeted answers never lie" `Quick test_budget_never_lies;
    Alcotest.test_case "cooperative cancel" `Quick test_cancel;
    Alcotest.test_case "activity rescale" `Quick test_activity_rescale;
    Alcotest.test_case "stats" `Quick test_stats_move;
  ]
