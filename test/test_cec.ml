(* Combinational equivalence checking: all three engines against
   structure-perturbing rewrites, seeded bugs and brute-force reference. *)

let st = Random.State.make [| 0xCEC |]

let engines = [ ("bdd", Cec.Bdd_engine); ("sat", Cec.Sat_engine); ("sweep", Cec.Sweep_engine) ]

let test_equivalent_rewrites () =
  for i = 1 to 40 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "eq%d" i) ~inputs:(2 + Random.State.int st 5)
        ~gates:(5 + Random.State.int st 50)
        ~outputs:(1 + Random.State.int st 3)
    in
    let c2 = Gen.demorganize c1 in
    List.iter
      (fun (nm, e) ->
        match Cec.check ~engine:e c1 c2 with
        | Cec.Equivalent -> ()
        | Cec.Inequivalent _ -> Alcotest.fail (nm ^ ": false inequivalence")
        | Cec.Undecided r -> Alcotest.failf "%s: undecided: %s" nm r)
      engines
  done

let test_seeded_bugs_found () =
  for i = 1 to 40 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "bug%d" i) ~inputs:(2 + Random.State.int st 4)
        ~gates:(5 + Random.State.int st 40)
        ~outputs:(1 + Random.State.int st 3)
    in
    let c2 = Gen.negate_one_output (Gen.demorganize c1) in
    List.iter
      (fun (nm, e) ->
        match Cec.check ~engine:e c1 c2 with
        | Cec.Equivalent -> Alcotest.fail (nm ^ ": missed seeded bug")
        | Cec.Undecided r -> Alcotest.failf "%s: undecided: %s" nm r
        | Cec.Inequivalent cex ->
            Alcotest.(check bool) (nm ^ ": cex replays") true
              (Cec.counterexample_is_valid c1 c2 cex))
      engines
  done

let test_engines_agree () =
  (* random pairs (often inequivalent): all engines agree on the verdict *)
  for i = 1 to 30 do
    let n_in = 2 + Random.State.int st 3 in
    let c1 = Gen.comb st ~name:(Printf.sprintf "p%da" i) ~inputs:n_in ~gates:15 ~outputs:2 in
    let c2 = Gen.comb st ~name:(Printf.sprintf "p%db" i) ~inputs:n_in ~gates:15 ~outputs:2 in
    let verdicts =
      List.map
        (fun (_, e) ->
          match Cec.check ~engine:e c1 c2 with
          | Cec.Equivalent -> true
          | Cec.Inequivalent _ -> false
          | Cec.Undecided r -> Alcotest.failf "undecided: %s" r)
        engines
    in
    Alcotest.(check bool) "engines agree" true
      (List.for_all (fun v -> v = List.hd verdicts) verdicts)
  done

let test_vs_brute_force () =
  for i = 1 to 30 do
    let n_in = 2 + Random.State.int st 3 in
    let c1 = Gen.comb st ~name:(Printf.sprintf "b%da" i) ~inputs:n_in ~gates:12 ~outputs:1 in
    let c2 = Gen.comb st ~name:(Printf.sprintf "b%db" i) ~inputs:n_in ~gates:12 ~outputs:1 in
    (* brute force over the union input space; inputs matched by name *)
    let names =
      List.sort_uniq compare
        (List.map (Circuit.signal_name c1) (Circuit.inputs c1)
        @ List.map (Circuit.signal_name c2) (Circuit.inputs c2))
    in
    let nv = List.length names in
    let equal = ref true in
    for m = 0 to (1 lsl nv) - 1 do
      let env name =
        let rec idx i = function
          | [] -> false
          | n :: _ when n = name -> m land (1 lsl i) <> 0
          | _ :: tl -> idx (i + 1) tl
        in
        idx 0 names
      in
      let outs c =
        let source s = env (Circuit.signal_name c s) in
        let v = Eval.comb_eval c ~source in
        List.map (fun o -> v.(o)) (Circuit.outputs c)
      in
      if outs c1 <> outs c2 then equal := false
    done;
    List.iter
      (fun (nm, e) ->
        let got =
          match Cec.check ~engine:e c1 c2 with
          | Cec.Equivalent -> true
          | Cec.Inequivalent _ -> false
          | Cec.Undecided r -> Alcotest.failf "undecided: %s" r
        in
        Alcotest.(check bool) (nm ^ " matches brute force") !equal got)
      engines
  done

let test_constants () =
  let c1 = Circuit.create "k1" in
  ignore (Circuit.add_input c1 "x");
  Circuit.mark_output c1 (Circuit.const_true c1);
  Circuit.check c1;
  let c2 = Circuit.create "k2" in
  let x = Circuit.add_input c2 "x" in
  Circuit.mark_output c2 (Circuit.add_gate c2 Or [ x; Circuit.add_gate c2 Not [ x ] ]);
  Circuit.check c2;
  List.iter
    (fun (nm, e) ->
      match Cec.check ~engine:e c1 c2 with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ -> Alcotest.fail (nm ^ ": tautology not proven")
      | Cec.Undecided r -> Alcotest.failf "%s: undecided: %s" nm r)
    engines

let test_rejects_latches () =
  let c = Circuit.create "seq" in
  let d = Circuit.add_input c "d" in
  Circuit.mark_output c (Circuit.add_latch c ~data:d ());
  Circuit.check c;
  try
    ignore (Cec.check c c);
    Alcotest.fail "latch accepted"
  with Invalid_argument _ -> ()

let test_output_count_mismatch () =
  let c1 = Gen.comb st ~name:"o1" ~inputs:2 ~gates:5 ~outputs:1 in
  let c2 = Gen.comb st ~name:"o2" ~inputs:2 ~gates:5 ~outputs:2 in
  try
    ignore (Cec.check c1 c2);
    Alcotest.fail "output mismatch accepted"
  with Invalid_argument _ -> ()

let test_disjoint_inputs_free () =
  (* an input present in only one circuit is a free variable: f(x) vs
     g(x,y) must compare over x AND y *)
  let c1 = Circuit.create "d1" in
  let x = Circuit.add_input c1 "x" in
  Circuit.mark_output c1 (Circuit.add_gate c1 Buf [ x ]);
  Circuit.check c1;
  let c2 = Circuit.create "d2" in
  let x2 = Circuit.add_input c2 "x" in
  let y2 = Circuit.add_input c2 "y" in
  Circuit.mark_output c2 (Circuit.add_gate c2 And [ x2; y2 ]);
  Circuit.check c2;
  List.iter
    (fun (nm, e) ->
      match Cec.check ~engine:e c1 c2 with
      | Cec.Equivalent -> Alcotest.fail (nm ^ ": y dependence missed")
      | Cec.Undecided r -> Alcotest.failf "%s: undecided: %s" nm r
      | Cec.Inequivalent cex ->
          Alcotest.(check bool) (nm ^ " valid cex") true
            (Cec.counterexample_is_valid c1 c2 cex))
    engines

let test_sweep_on_identical_structures () =
  (* sweeping a miter of two copies should need few/no SAT calls on the
     final miter (internal equivalences collapse it) *)
  let c1 = Gen.comb st ~name:"same" ~inputs:4 ~gates:60 ~outputs:2 in
  let c2 = Gen.demorganize c1 in
  let v, stats = Cec.check_with_stats ~engine:Cec.Sweep_engine c1 c2 in
  (match v with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ | Cec.Undecided _ -> Alcotest.fail "sweep failed");
  Alcotest.(check bool) "sat calls recorded" true (stats.Cec.sat_calls >= 0);
  Alcotest.(check int) "monolithic = 1 partition" 1 stats.Cec.partitions;
  Alcotest.(check bool) "sim rounds recorded" true (stats.Cec.sim_rounds > 0)

(* ---- partitioned / parallel mode ---- *)

let job_counts = [ 1; 2; 4 ]

let test_parallel_agrees_on_equivalent () =
  for i = 1 to 12 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "peq%d" i) ~inputs:(2 + Random.State.int st 5)
        ~gates:(10 + Random.State.int st 50)
        ~outputs:(2 + Random.State.int st 4)
    in
    let c2 = Gen.demorganize c1 in
    let parts_seen =
      List.map
        (fun jobs ->
          let v, stats = Cec.check_with_stats ~jobs ~partition:true c1 c2 in
          (match v with
          | Cec.Equivalent -> ()
          | Cec.Inequivalent _ | Cec.Undecided _ ->
              Alcotest.fail (Printf.sprintf "jobs=%d: false inequivalence" jobs));
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: partition count within bounds" jobs)
            true
            (stats.Cec.partitions >= 1
            && stats.Cec.partitions <= List.length (Circuit.outputs c1));
          stats.Cec.partitions)
        job_counts
    in
    (* cone clustering depends only on the circuits, never on jobs *)
    Alcotest.(check bool) "partition layout independent of jobs" true
      (List.for_all (fun p -> p = List.hd parts_seen) parts_seen)
  done

let test_parallel_agrees_on_bugs () =
  for i = 1 to 12 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "pbug%d" i) ~inputs:(2 + Random.State.int st 4)
        ~gates:(10 + Random.State.int st 40)
        ~outputs:(2 + Random.State.int st 3)
    in
    let c2 = Gen.negate_one_output (Gen.demorganize c1) in
    List.iter
      (fun jobs ->
        match Cec.check ~jobs ~partition:true c1 c2 with
        | Cec.Equivalent ->
            Alcotest.fail (Printf.sprintf "jobs=%d: missed seeded bug" jobs)
        | Cec.Undecided r -> Alcotest.failf "jobs=%d: undecided: %s" jobs r
        | Cec.Inequivalent cex ->
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d: cex replays" jobs)
              true
              (Cec.counterexample_is_valid c1 c2 cex))
      job_counts
  done

let test_parallel_matches_sequential_verdict () =
  (* random (usually inequivalent) pairs: partitioned/parallel and
     monolithic verdicts coincide for every engine *)
  for i = 1 to 15 do
    let n_in = 2 + Random.State.int st 3 in
    let c1 = Gen.comb st ~name:(Printf.sprintf "pm%da" i) ~inputs:n_in ~gates:15 ~outputs:3 in
    let c2 = Gen.comb st ~name:(Printf.sprintf "pm%db" i) ~inputs:n_in ~gates:15 ~outputs:3 in
    List.iter
      (fun (nm, e) ->
        let mono =
          match Cec.check ~engine:e c1 c2 with
          | Cec.Equivalent -> true
          | Cec.Inequivalent _ -> false
          | Cec.Undecided r -> Alcotest.failf "undecided: %s" r
        in
        List.iter
          (fun jobs ->
            match Cec.check ~engine:e ~jobs ~partition:true c1 c2 with
            | Cec.Equivalent ->
                Alcotest.(check bool) (Printf.sprintf "%s jobs=%d" nm jobs) mono true
            | Cec.Undecided r -> Alcotest.failf "%s jobs=%d undecided: %s" nm jobs r
            | Cec.Inequivalent cex ->
                Alcotest.(check bool) (Printf.sprintf "%s jobs=%d" nm jobs) mono false;
                Alcotest.(check bool)
                  (Printf.sprintf "%s jobs=%d cex valid" nm jobs)
                  true
                  (Cec.counterexample_is_valid c1 c2 cex))
          job_counts)
      engines
  done

let test_cache_hits_identical_verdicts () =
  let cache = Cec.Cache.create () in
  let c1 = Gen.comb st ~name:"cachea" ~inputs:5 ~gates:40 ~outputs:3 in
  let c2 = Gen.demorganize c1 in
  let v1, s1 = Cec.check_with_stats ~partition:true ~cache c1 c2 in
  Alcotest.(check int) "cold run misses" 0 s1.Cec.cache_hits;
  let v2, s2 = Cec.check_with_stats ~partition:true ~cache c1 c2 in
  Alcotest.(check bool) "verdicts equal" true (v1 = v2);
  Alcotest.(check int) "warm run all hits" s2.Cec.partitions s2.Cec.cache_hits;
  Alcotest.(check int) "no new SAT work" 0 s2.Cec.sat_calls;
  (* inequivalent pairs replay identically through the cache too *)
  let b1 = Gen.comb st ~name:"cacheb" ~inputs:4 ~gates:30 ~outputs:2 in
  let b2 = Gen.negate_one_output (Gen.demorganize b1) in
  let w1 = Cec.check ~partition:true ~cache b1 b2 in
  let w2 = Cec.check ~partition:true ~cache b1 b2 in
  (match (w1, w2) with
  | Cec.Inequivalent cex1, Cec.Inequivalent cex2 ->
      Alcotest.(check bool) "cached cex identical" true (cex1 = cex2);
      Alcotest.(check bool) "cached cex valid" true
        (Cec.counterexample_is_valid b1 b2 cex2)
  | _ -> Alcotest.fail "seeded bug not found through cache");
  Alcotest.(check bool) "cache populated" true (Cec.Cache.size cache > 0);
  Cec.Cache.clear cache;
  Alcotest.(check int) "cache cleared" 0 (Cec.Cache.size cache)

let test_cache_shares_isomorphic_cones () =
  (* two copies of the same function under different input names: the
     index-encoded cache entry must transfer and the renamed cex must
     replay *)
  let mk prefix =
    let c = Circuit.create (prefix ^ "c") in
    let a = Circuit.add_input c (prefix ^ "a") in
    let b = Circuit.add_input c (prefix ^ "b") in
    Circuit.mark_output c (Circuit.add_gate c And [ a; b ]);
    Circuit.check c;
    c
  in
  let mk_neg prefix =
    let c = Circuit.create (prefix ^ "n") in
    let a = Circuit.add_input c (prefix ^ "a") in
    let b = Circuit.add_input c (prefix ^ "b") in
    Circuit.mark_output c (Circuit.add_gate c Not [ Circuit.add_gate c And [ a; b ] ]);
    Circuit.check c;
    c
  in
  let cache = Cec.Cache.create () in
  let _, s1 = Cec.check_with_stats ~partition:true ~cache (mk "x") (mk_neg "x") in
  Alcotest.(check int) "first pair computes" 0 s1.Cec.cache_hits;
  let v2, s2 = Cec.check_with_stats ~partition:true ~cache (mk "y") (mk_neg "y") in
  Alcotest.(check int) "renamed pair hits" 1 s2.Cec.cache_hits;
  match v2 with
  | Cec.Inequivalent cex ->
      Alcotest.(check bool) "renamed cex valid" true
        (Cec.counterexample_is_valid (mk "y") (mk_neg "y") cex);
      List.iter
        (fun (v, _) ->
          let n = v.Seqprob.Var.base in
          Alcotest.(check bool) "cex uses the hitting pair's names" true
            (String.length n > 0 && n.[0] = 'y'))
        cex
  | Cec.Equivalent | Cec.Undecided _ -> Alcotest.fail "AND vs NAND accepted"

let test_cache_eviction_bound () =
  (* a capacity-bounded cache drops least-recently-used entries instead of
     growing without bound, and eviction never affects verdicts *)
  let chain n =
    let c = Circuit.create (Printf.sprintf "ch%d" n) in
    let ins = List.init n (fun i -> Circuit.add_input c (Printf.sprintf "a%d" i)) in
    let out =
      List.fold_left (fun acc i -> Circuit.add_gate c And [ acc; i ]) (List.hd ins)
        (List.tl ins)
    in
    Circuit.mark_output c out;
    Circuit.check c;
    c
  in
  let cache = Cec.Cache.create ~capacity:4 () in
  let evictions = ref 0 in
  for n = 2 to 7 do
    let c = chain n in
    let v, s = Cec.check_with_stats ~cache c (Gen.demorganize c) in
    Alcotest.(check bool) (Printf.sprintf "chain %d equivalent" n) true (v = Cec.Equivalent);
    evictions := !evictions + s.Cec.cache_evictions
  done;
  (* the 5th insert overflows capacity 4 and compacts down to 3 entries *)
  Alcotest.(check int) "evictions counted in stats" 2 !evictions;
  Alcotest.(check bool) "cache stays within capacity" true (Cec.Cache.size cache <= 4);
  (* an evicted entry just recomputes *)
  let c = chain 2 in
  let v, s = Cec.check_with_stats ~cache c (Gen.demorganize c) in
  Alcotest.(check bool) "evicted pair recomputes" true
    (v = Cec.Equivalent && s.Cec.cache_hits = 0)

let test_parallel_stress () =
  (* repeated parallel checks: no shared mutable state, stable verdicts *)
  let cache = Cec.Cache.create () in
  for round = 1 to 10 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "st%d" round) ~inputs:4 ~gates:30 ~outputs:4
    in
    let c2 = Gen.demorganize c1 in
    let bug = Gen.negate_one_output c2 in
    for _rep = 1 to 3 do
      (match Cec.check ~jobs:4 ~cache c1 c2 with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ | Cec.Undecided _ ->
          Alcotest.fail "stress: false inequivalence");
      match Cec.check ~jobs:4 ~cache c1 bug with
      | Cec.Equivalent | Cec.Undecided _ -> Alcotest.fail "stress: missed bug"
      | Cec.Inequivalent cex ->
          Alcotest.(check bool) "stress cex valid" true
            (Cec.counterexample_is_valid c1 bug cex)
    done
  done

(* ---- resource budgets / escalation / cancellation ---- *)

(* n-input parity, once as a right-leaning chain and once as a balanced
   tree: same function, no shared structure, and the SAT miter needs real
   search — the workhorse for budget semantics *)
let xor_inputs c n = List.init n (fun i -> Circuit.add_input c (Printf.sprintf "x%d" i))

let xor_chain ~name n =
  let c = Circuit.create name in
  let ins = xor_inputs c n in
  let out =
    List.fold_left (fun acc x -> Circuit.add_gate c Xor [ acc; x ]) (List.hd ins)
      (List.tl ins)
  in
  Circuit.mark_output c out;
  Circuit.check c;
  c

let xor_tree ~name n =
  let c = Circuit.create name in
  let ins = xor_inputs c n in
  let rec pair = function
    | a :: b :: tl -> Circuit.add_gate c Xor [ a; b ] :: pair tl
    | rest -> rest
  in
  let rec build = function [ x ] -> x | xs -> build (pair xs) in
  Circuit.mark_output c (build ins);
  Circuit.check c;
  c

let test_budget_gives_undecided () =
  (* a 1-conflict budget cannot decide the parity miter; without escalation
     the answer must be Undecided — never a wrong Equivalent, never a hang *)
  let c1 = xor_chain ~name:"bxa" 14 and c2 = xor_tree ~name:"bxb" 14 in
  let limits = { Cec.no_limits with Cec.sat_conflicts = Some 1; escalate = false } in
  let v, s = Cec.check_with_stats ~engine:Cec.Sat_engine ~limits c1 c2 in
  (match v with
  | Cec.Undecided _ -> ()
  | Cec.Equivalent -> Alcotest.fail "1-conflict budget claimed a proof"
  | Cec.Inequivalent _ -> Alcotest.fail "1-conflict budget invented a bug");
  Alcotest.(check bool) "budget hit recorded" true (s.Cec.budget_hits > 0);
  Alcotest.(check bool) "undecided recorded" true (s.Cec.undecided > 0)

let test_escalation_ladder_proves () =
  (* same miter, same 1-conflict base budget, but with the ladder on: the
     BDD rung proves it (parity BDDs are linear) and records the climb *)
  let c1 = xor_chain ~name:"exa" 14 and c2 = xor_tree ~name:"exb" 14 in
  let limits = { Cec.default_limits with Cec.sat_conflicts = Some 1 } in
  let v, s = Cec.check_with_stats ~engine:Cec.Sweep_engine ~limits c1 c2 in
  (match v with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "ladder invented a bug"
  | Cec.Undecided r -> Alcotest.failf "ladder failed to prove parity: %s" r);
  Alcotest.(check bool) "escalation recorded" true (s.Cec.escalations > 0);
  Alcotest.(check bool) "budget hit recorded" true (s.Cec.budget_hits > 0)

let test_deadline_gives_undecided () =
  (* an already-expired deadline stops the engines before any work; expired
     checks are final (no escalation) *)
  let c1 = xor_chain ~name:"dxa" 14 and c2 = xor_tree ~name:"dxb" 14 in
  let limits = { Cec.no_limits with Cec.seconds = Some 0.0 } in
  let v, s = Cec.check_with_stats ~engine:Cec.Sat_engine ~limits c1 c2 in
  (match v with
  | Cec.Undecided _ -> ()
  | Cec.Equivalent | Cec.Inequivalent _ ->
      Alcotest.fail "expired deadline still answered");
  Alcotest.(check bool) "deadline hit recorded" true (s.Cec.deadline_hits > 0)

let test_budgets_leave_easy_checks_alone () =
  let c1 = Gen.comb st ~name:"easyb" ~inputs:5 ~gates:40 ~outputs:2 in
  let c2 = Gen.demorganize c1 in
  let v, s = Cec.check_with_stats ~limits:Cec.default_limits c1 c2 in
  (match v with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ | Cec.Undecided _ ->
      Alcotest.fail "default limits changed an easy verdict");
  Alcotest.(check int) "no budget hits" 0 s.Cec.budget_hits;
  Alcotest.(check int) "no escalations" 0 s.Cec.escalations;
  Alcotest.(check int) "nothing undecided" 0 s.Cec.undecided

(* two disjoint cones: an instantly-failing AND-vs-NAND pair and the hard
   parity pair — exercises verdict precedence across partitions *)
let two_cone_pair () =
  let mk neg name =
    let c = xor_chain ~name 14 in
    let a = Circuit.add_input c "a" and b = Circuit.add_input c "b" in
    let g = Circuit.add_gate c And [ a; b ] in
    Circuit.mark_output c (if neg then Circuit.add_gate c Not [ g ] else g);
    Circuit.check c;
    c
  in
  (mk false "tc1", mk true "tc2")

let test_cex_wins_over_undecided () =
  (* the parity cone is Undecided under a tiny budget, but the AND-vs-NAND
     cone has a counterexample — which must win at every job count (and,
     in parallel, cancel the sibling solver) *)
  let c1, c2 = two_cone_pair () in
  let limits = { Cec.no_limits with Cec.sat_conflicts = Some 1; escalate = false } in
  List.iter
    (fun jobs ->
      match Cec.check ~engine:Cec.Sat_engine ~jobs ~partition:true ~limits c1 c2 with
      | Cec.Inequivalent cex ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: winning cex replays" jobs)
            true
            (Cec.counterexample_is_valid c1 c2 cex)
      | Cec.Equivalent -> Alcotest.failf "jobs=%d: budget flipped to Equivalent" jobs
      | Cec.Undecided r ->
          Alcotest.failf "jobs=%d: cex lost to Undecided (%s)" jobs r)
    job_counts

let test_jobs_agree_on_undecided () =
  (* out0 identical on both sides (decided within any budget), out1 the
     parity pair (Undecided under 1 conflict): the overall verdict —
     including the lowest-index-partition reason — is jobs-independent *)
  let add_buf c =
    let y = Circuit.add_input c "y" in
    Circuit.mark_output c (Circuit.add_gate c Buf [ y ]);
    Circuit.check c;
    c
  in
  let c1 = add_buf (xor_chain ~name:"ju1" 14)
  and c2 = add_buf (xor_tree ~name:"ju2" 14) in
  let limits = { Cec.no_limits with Cec.sat_conflicts = Some 1; escalate = false } in
  let v1 = Cec.check ~engine:Cec.Sat_engine ~jobs:1 ~partition:true ~limits c1 c2 in
  let v4 = Cec.check ~engine:Cec.Sat_engine ~jobs:4 ~partition:true ~limits c1 c2 in
  (match v1 with
  | Cec.Undecided _ -> ()
  | Cec.Equivalent -> Alcotest.fail "budget flipped to Equivalent"
  | Cec.Inequivalent _ -> Alcotest.fail "budget invented a bug");
  Alcotest.(check bool) "jobs=1 and jobs=4 verdicts identical" true (v1 = v4)

let test_cex_replays_across_time_frames () =
  (* x XOR latch(x) vs constant false: the certified counterexample must
     set x@0 and x@1 differently, and replay on the unrolled netlists must
     key its environment by the full (base, frame) variable — a base-keyed
     environment collapses the two frames and rejects the witness *)
  let c1 = Circuit.create "fr1" in
  let x = Circuit.add_input c1 "x" in
  let l = Circuit.add_latch c1 ~data:x () in
  Circuit.mark_output c1 (Circuit.add_gate c1 Xor [ x; l ]);
  Circuit.check c1;
  let c2 = Circuit.create "fr2" in
  ignore (Circuit.add_input c2 "x");
  Circuit.mark_output c2 (Circuit.const_false c2);
  Circuit.check c2;
  match Result.get_ok (Verify.check c1 c2) with
  | { Verify.verdict = Verify.Inequivalent (Some cex); _ } ->
      let v d =
        match List.assoc_opt (Seqprob.Var.time "x" d) cex with
        | Some b -> b
        | None -> false
      in
      Alcotest.(check bool) "frames disagree" true (v 0 <> v 1);
      let u1, _ = Cbf.unroll_netlist c1 in
      let u2, _ = Cbf.unroll_netlist c2 in
      Alcotest.(check bool) "replays on netlist unrollings" true
        (Cec.counterexample_is_valid u1 u2 cex)
  | { Verify.verdict = _; _ } -> Alcotest.fail "expected a certified counterexample"

(* Guard: stats_pp must print every field.  The record below is a FULL
   literal (no [with]), so adding a stats field breaks this test at compile
   time until the sentinel for it is added — and the assertions catch a
   field dropped from the format string. *)
let test_stats_pp_prints_every_field () =
  let s =
    {
      Cec.sat_calls = 101;
      sim_rounds = 102;
      partitions = 103;
      cache_hits = 104;
      store_hits = 115;
      store_writes = 116;
      cache_evictions = 117;
      conflicts = 105;
      budget_hits = 106;
      deadline_hits = 107;
      escalations = 108;
      undecided = 109;
      elapsed_seconds = 110.5;
      partition_seconds = 111.5;
      bdd_seconds = 112.5;
      sat_seconds = 113.5;
      sweep_seconds = 114.5;
    }
  in
  let text = Format.asprintf "%a" Cec.stats_pp s in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sentinel ->
      Alcotest.(check bool) (sentinel ^ " printed") true (contains sentinel))
    [
      "101"; "102"; "103"; "104"; "105"; "106"; "107"; "108"; "109";
      "110.5"; "111.5"; "112.5"; "113.5"; "114.5"; "115"; "116"; "117";
    ]

(* elapsed_seconds is the true wall clock: sequentially the per-engine
   CPU-second sums are bounded by it (they are disjoint slices of the same
   wall time); in parallel they may exceed it, but the wall clock itself is
   always recorded. *)
let test_elapsed_seconds () =
  let c1 =
    Gen.comb st ~name:"elapsed_a" ~inputs:6 ~gates:120 ~outputs:6
  in
  let c2 = Gen.demorganize c1 in
  let v, s = Cec.check_with_stats ~engine:Cec.Sweep_engine c1 c2 in
  (match v with
  | Cec.Equivalent -> ()
  | _ -> Alcotest.fail "expected equivalent");
  Alcotest.(check bool) "elapsed recorded" true (s.Cec.elapsed_seconds > 0.);
  let engine_sum =
    s.Cec.bdd_seconds +. s.Cec.sat_seconds +. s.Cec.sweep_seconds
  in
  Alcotest.(check bool) "some engine time charged" true (engine_sum > 0.);
  Alcotest.(check bool) "sequential: engine CPU-seconds <= elapsed" true
    (engine_sum <= s.Cec.elapsed_seconds +. 0.05);
  (* parallel: partitions overlap, so only the wall clock is bounded *)
  let v2, s2 = Cec.check_with_stats ~jobs:2 ~engine:Cec.Sweep_engine c1 c2 in
  (match v2 with
  | Cec.Equivalent -> ()
  | _ -> Alcotest.fail "parallel: expected equivalent");
  Alcotest.(check bool) "parallel: elapsed recorded" true
    (s2.Cec.elapsed_seconds > 0.);
  Alcotest.(check bool) "parallel: layout time within elapsed" true
    (s2.Cec.partition_seconds <= s2.Cec.elapsed_seconds)

(* ---- adaptive layout / cost model ---- *)

(* Unroll a sequential pair into the shared Seqprob the layout operates
   on, exposing the structural feedback plan's latches (same recipe as
   Verify.check). *)
let problem_of c1 c2 =
  let names =
    List.map (Circuit.signal_name c1) (Feedback.plan_structural c1).Feedback.exposed
  in
  let ex c s = List.mem (Circuit.signal_name c s) names in
  let bld = Seqprob.builder () in
  let o1, _ = Result.get_ok (Cbf.unroll ~exposed:(ex c1) bld c1) in
  let o2, _ = Result.get_ok (Cbf.unroll ~exposed:(ex c2) bld c2) in
  Result.get_ok (Seqprob.problem bld ~outs1:o1 ~outs2:o2)

let test_estimate_monotone () =
  let pts = [ 0; 1; 2; 5; 17; 100; 4096 ] in
  List.iter
    (fun nodes ->
      List.iter
        (fun depth ->
          let e = Cec.Layout.estimate ~nodes ~depth in
          Alcotest.(check bool) "estimate grows with nodes" true
            (Cec.Layout.estimate ~nodes:(nodes + 1) ~depth >= e);
          Alcotest.(check bool) "estimate grows with depth" true
            (Cec.Layout.estimate ~nodes ~depth:(depth + 1) >= e))
        pts)
    pts;
  (* depth is clamped to >= 1 so a purely combinational cone still costs
     its node count *)
  Alcotest.(check (float 0.)) "depth 0 = depth 1"
    (Cec.Layout.estimate ~nodes:42 ~depth:1)
    (Cec.Layout.estimate ~nodes:42 ~depth:0)

let test_small_problem_goes_monolithic () =
  (* every problem under the threshold collapses to a monolithic layout —
     unless the caller forces partitioning *)
  let c1 = Gen.comb st ~name:"lay_small" ~inputs:5 ~gates:40 ~outputs:4 in
  let p = problem_of c1 (Gen.demorganize c1) in
  let l = Cec.Layout.compute p in
  Alcotest.(check bool) "monolithic" true l.Cec.Layout.monolithic;
  Alcotest.(check bool) "under threshold" true
    (l.Cec.Layout.total_cost < Cec.Layout.default_threshold);
  Alcotest.(check (list (list int))) "no bins" [] l.Cec.Layout.bins;
  let f = Cec.Layout.compute ~forced:true p in
  Alcotest.(check bool) "forced layout partitions" false f.Cec.Layout.monolithic;
  Alcotest.(check bool) "forced layout has bins" true (f.Cec.Layout.bins <> [])

let test_below_threshold_no_pool () =
  (* an adaptive jobs=4 check of a small problem must spin up no worker
     domain at all: the monolithic fast path never creates a pool (spans
     are the observable — every spawned worker opens a pool.worker span) *)
  let c1 = Gen.comb st ~name:"lay_nopool" ~inputs:5 ~gates:60 ~outputs:5 in
  let c2 = Gen.demorganize c1 in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let v, s = Cec.check_with_stats ~jobs:4 c1 c2 in
      (match v with
      | Cec.Equivalent -> ()
      | _ -> Alcotest.fail "expected equivalent");
      Alcotest.(check int) "one partition" 1 s.Cec.partitions;
      let workers =
        List.filter
          (function Obs.Begin { name = "pool.worker"; _ } -> true | _ -> false)
          (Obs.collect ())
      in
      Alcotest.(check int) "no worker domain spawned" 0 (List.length workers))

let test_layout_deterministic_and_partitioning () =
  (* the layout is a pure function of the problem: recomputing gives
     identical clusters and bins, clusters partition the output pairs,
     and a cost prior may reshape bins but never clusters *)
  let c1 = Workloads.fifo ~entries:16 ~width:4 ~style:`Sop () in
  let c2 = Workloads.fifo ~entries:16 ~width:4 ~style:`Mux () in
  let p = problem_of c1 c2 in
  let la = Cec.Layout.compute ~forced:true p in
  let lb = Cec.Layout.compute ~forced:true p in
  Alcotest.(check bool) "clusters identical" true
    (la.Cec.Layout.clusters = lb.Cec.Layout.clusters);
  Alcotest.(check bool) "bins identical" true (la.Cec.Layout.bins = lb.Cec.Layout.bins);
  let n = List.length p.Seqprob.outs1 in
  let members =
    List.concat_map (fun c -> c.Cec.Layout.members) la.Cec.Layout.clusters
  in
  Alcotest.(check (list int)) "clusters partition the output pairs"
    (List.init n Fun.id)
    (List.sort compare members);
  let binned = List.concat la.Cec.Layout.bins in
  Alcotest.(check (list int)) "bins partition the clusters"
    (List.init (List.length la.Cec.Layout.clusters) Fun.id)
    (List.sort compare binned);
  let lp =
    Cec.Layout.compute ~forced:true ~prior:(fun ~signature:_ -> Some 1.0) p
  in
  Alcotest.(check bool) "prior never reshapes clusters" true
    (List.map (fun c -> c.Cec.Layout.members) lp.Cec.Layout.clusters
    = List.map (fun c -> c.Cec.Layout.members) la.Cec.Layout.clusters)

let test_cluster_signature_matches_extraction () =
  (* the signature computed on the shared graph equals the signature of
     the extracted sub-problem — the invariant that lets layout priors and
     the checker's cache index the same entries *)
  let c1 = Workloads.fifo ~entries:8 ~width:4 ~style:`Sop () in
  let c2 = Workloads.fifo ~entries:8 ~width:4 ~style:`Mux () in
  let p = problem_of c1 c2 in
  let l = Cec.Layout.compute ~forced:true p in
  let o1 = Array.of_list p.Seqprob.outs1 and o2 = Array.of_list p.Seqprob.outs2 in
  Alcotest.(check bool) "fifo splits into >1 cluster" true
    (List.length l.Cec.Layout.clusters > 1);
  List.iter
    (fun cl ->
      let roots1 = List.map (fun i -> o1.(i)) cl.Cec.Layout.members in
      let roots2 = List.map (fun i -> o2.(i)) cl.Cec.Layout.members in
      let ex = Aig.extract p.Seqprob.graph ~roots:(roots1 @ roots2) in
      let tr l =
        let m = ex.Aig.map.(Aig.node_of l) in
        if Aig.is_complement l then Aig.neg m else m
      in
      let sub_sig =
        Aig.cone_signature ex.Aig.sub
          ~input_label:(fun _ -> "")
          [ List.map tr roots1; List.map tr roots2 ]
      in
      Alcotest.(check string) "signature survives extraction"
        (Cec.Layout.cluster_signature p cl)
        sub_sig)
    l.Cec.Layout.clusters

let test_large_generators_jobs_agree () =
  (* style pairs of the large-tier generators, partitioned: jobs=1 and
     jobs=4 produce the same verdict, and the intentionally inequivalent
     mutant is caught at both (first-cex cancellation must not lose it) *)
  let check ~jobs p = Cec.check_problem_with_stats ~jobs ~partition:true p in
  let eq_pairs =
    [
      ( "fifo16x4",
        Workloads.fifo ~entries:16 ~width:4 ~style:`Sop (),
        Workloads.fifo ~entries:16 ~width:4 ~style:`Mux () );
      ( "alu2x4x2",
        Workloads.lane_alu ~lanes:2 ~width:4 ~stages:2 ~style:`Ripple (),
        Workloads.lane_alu ~lanes:2 ~width:4 ~stages:2 ~style:`Select () );
    ]
  in
  List.iter
    (fun (name, a, b) ->
      let p = problem_of a b in
      let v1, s1 = check ~jobs:1 p in
      let v4, s4 = check ~jobs:4 p in
      (match (v1, v4) with
      | Cec.Equivalent, Cec.Equivalent -> ()
      | _ -> Alcotest.fail (name ^ ": style pair not proven at both job counts"));
      Alcotest.(check int) (name ^ ": layout independent of jobs")
        s1.Cec.partitions s4.Cec.partitions)
    eq_pairs;
  let p =
    problem_of
      (Workloads.fifo ~entries:16 ~width:4 ~style:`Sop ())
      (Workloads.fifo ~entries:16 ~width:4 ~style:`Mux ~bug:true ())
  in
  List.iter
    (fun jobs ->
      match check ~jobs p with
      | Cec.Inequivalent _, _ -> ()
      | Cec.Equivalent, _ ->
          Alcotest.failf "jobs=%d: mutant accepted as equivalent" jobs
      | Cec.Undecided r, _ -> Alcotest.failf "jobs=%d: mutant undecided: %s" jobs r)
    [ 1; 4 ]

let test_sat_time_charged_to_sat () =
  (* regression: every SAT call's time lands in sat_seconds — the sweep
     engine's merge queries used to be charged to sweep_seconds, leaving
     sat_calls > 0 with phase_sat_cpu_seconds = 0 in the bench output *)
  let c1 = xor_chain ~name:"sta" 12 and c2 = xor_tree ~name:"stb" 12 in
  List.iter
    (fun (nm, e) ->
      let v, s = Cec.check_with_stats ~engine:e c1 c2 in
      (match v with
      | Cec.Equivalent -> ()
      | _ -> Alcotest.fail (nm ^ ": parity pair not proven"));
      Alcotest.(check bool) (nm ^ ": makes SAT calls") true (s.Cec.sat_calls > 0);
      Alcotest.(check bool)
        (nm ^ ": SAT time charged to the sat bucket")
        true (s.Cec.sat_seconds > 0.))
    [ ("sat", Cec.Sat_engine); ("sweep", Cec.Sweep_engine) ]

let suite =
  [
    Alcotest.test_case "equivalent rewrites proven" `Quick test_equivalent_rewrites;
    Alcotest.test_case "seeded bugs found + cex valid" `Quick test_seeded_bugs_found;
    Alcotest.test_case "engines agree" `Quick test_engines_agree;
    Alcotest.test_case "matches brute force" `Quick test_vs_brute_force;
    Alcotest.test_case "constants / tautologies" `Quick test_constants;
    Alcotest.test_case "rejects latches" `Quick test_rejects_latches;
    Alcotest.test_case "output count mismatch" `Quick test_output_count_mismatch;
    Alcotest.test_case "union input space" `Quick test_disjoint_inputs_free;
    Alcotest.test_case "sweep collapses identical logic" `Quick test_sweep_on_identical_structures;
    Alcotest.test_case "parallel agrees: equivalent pairs" `Quick test_parallel_agrees_on_equivalent;
    Alcotest.test_case "parallel agrees: seeded bugs" `Quick test_parallel_agrees_on_bugs;
    Alcotest.test_case "parallel matches sequential verdict" `Quick
      test_parallel_matches_sequential_verdict;
    Alcotest.test_case "cache: hits return identical verdicts" `Quick
      test_cache_hits_identical_verdicts;
    Alcotest.test_case "cache: isomorphic cones transfer" `Quick
      test_cache_shares_isomorphic_cones;
    Alcotest.test_case "cache: capacity bound evicts LRU" `Quick
      test_cache_eviction_bound;
    Alcotest.test_case "parallel stress" `Quick test_parallel_stress;
    Alcotest.test_case "budget gives Undecided" `Quick test_budget_gives_undecided;
    Alcotest.test_case "escalation ladder proves" `Quick test_escalation_ladder_proves;
    Alcotest.test_case "deadline gives Undecided" `Quick test_deadline_gives_undecided;
    Alcotest.test_case "budgets leave easy checks alone" `Quick
      test_budgets_leave_easy_checks_alone;
    Alcotest.test_case "cex wins over Undecided" `Quick test_cex_wins_over_undecided;
    Alcotest.test_case "jobs agree on Undecided" `Quick test_jobs_agree_on_undecided;
    Alcotest.test_case "cex replays across time frames" `Quick
      test_cex_replays_across_time_frames;
    Alcotest.test_case "stats_pp prints every field" `Quick
      test_stats_pp_prints_every_field;
    Alcotest.test_case "elapsed_seconds wall clock" `Quick test_elapsed_seconds;
    Alcotest.test_case "layout: estimate monotone" `Quick test_estimate_monotone;
    Alcotest.test_case "layout: small problems go monolithic" `Quick
      test_small_problem_goes_monolithic;
    Alcotest.test_case "layout: below threshold spawns no pool" `Quick
      test_below_threshold_no_pool;
    Alcotest.test_case "layout: deterministic, partitions outputs" `Quick
      test_layout_deterministic_and_partitioning;
    Alcotest.test_case "layout: signature survives extraction" `Quick
      test_cluster_signature_matches_extraction;
    Alcotest.test_case "large generators: jobs agree, mutant caught" `Quick
      test_large_generators_jobs_agree;
    Alcotest.test_case "sat time charged to sat bucket" `Quick
      test_sat_time_charged_to_sat;
  ]
