(* Tests for the Obs tracing/metrics layer: span nesting through the
   summary tree, attribute round-trips through the Chrome writer (parsed
   back by a small JSON reader below), counter merging across domains, and
   the disabled sink recording nothing. *)

(* Each test owns the global sink: enable+reset on entry, disable+reset on
   exit (also on failure), so no events leak into other suites. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* ---- a minimal JSON reader (just enough to validate Chrome output) ---- *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "eof" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* keep the escape verbatim; the tests only use ASCII *)
              Buffer.add_string buf "\\u"
          | c -> fail (Printf.sprintf "bad escape %c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                skip_ws ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | '"' -> J_str (parse_string ())
    | 't' ->
        pos := !pos + 4;
        J_bool true
    | 'f' ->
        pos := !pos + 5;
        J_bool false
    | 'n' ->
        pos := !pos + 4;
        J_null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          advance ()
        done;
        if !pos = start then fail "bad value";
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | J_obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* ---- tests ---- *)

let find_node name nodes =
  List.find_opt (fun n -> n.Obs.Summary.name = name) nodes

let test_span_nesting () =
  with_obs (fun () ->
      Obs.span ~name:"outer" (fun () ->
          Obs.span ~name:"inner" (fun () -> ());
          Obs.span ~name:"inner" (fun () -> ()));
      Obs.span ~name:"outer" (fun () -> ());
      let tree = Obs.Summary.tree (Obs.collect ()) in
      match find_node "outer" tree with
      | None -> Alcotest.fail "no outer node"
      | Some outer ->
          Alcotest.(check int) "outer aggregated" 2 outer.Obs.Summary.count;
          Alcotest.(check bool)
            "outer total covers children" true
            (outer.Obs.Summary.total >= outer.Obs.Summary.self);
          (match find_node "inner" outer.Obs.Summary.children with
          | None -> Alcotest.fail "inner not nested under outer"
          | Some inner ->
              Alcotest.(check int) "inner aggregated" 2 inner.Obs.Summary.count);
          Alcotest.(check bool)
            "inner not at top level" true
            (find_node "inner" tree = None))

let test_exception_closes_span () =
  with_obs (fun () ->
      (try
         Obs.span ~name:"raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      let begins, ends =
        List.fold_left
          (fun (b, e) ev ->
            match ev with
            | Obs.Begin { name = "raises"; _ } -> (b + 1, e)
            | Obs.End { name = "raises"; _ } -> (b, e + 1)
            | _ -> (b, e))
          (0, 0) (Obs.collect ())
      in
      Alcotest.(check (pair int int)) "begin/end balanced" (1, 1) (begins, ends))

let test_chrome_attrs_roundtrip () =
  with_obs (fun () ->
      Obs.span ~name:"attributed"
        ~attrs:
          [
            ("answer", Obs.Int 42);
            ("ratio", Obs.Float 0.5);
            ("ok", Obs.Bool true);
            ("who", Obs.String "a \"quoted\"\nname");
          ]
        (fun () -> ());
      Obs.instant ~attrs:[ ("k", Obs.Int 7) ] "blip";
      let text = Obs.Chrome.to_string (Obs.collect ()) in
      let j = parse_json text in
      let events =
        match member "traceEvents" j with
        | Some (J_arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let find ph name =
        List.find_opt
          (fun e ->
            member "ph" e = Some (J_str ph) && member "name" e = Some (J_str name))
          events
      in
      (match find "B" "attributed" with
      | None -> Alcotest.fail "no B event"
      | Some b -> (
          Alcotest.(check bool) "ts present" true (member "ts" b <> None);
          match member "args" b with
          | Some args ->
              Alcotest.(check bool) "int attr" true
                (member "answer" args = Some (J_num 42.));
              Alcotest.(check bool) "float attr" true
                (member "ratio" args = Some (J_num 0.5));
              Alcotest.(check bool) "bool attr" true
                (member "ok" args = Some (J_bool true));
              Alcotest.(check bool) "string attr round-trips" true
                (member "who" args = Some (J_str "a \"quoted\"\nname"))
          | None -> Alcotest.fail "no args on B event"));
      Alcotest.(check bool) "E event present" true (find "E" "attributed" <> None);
      match find "i" "blip" with
      | None -> Alcotest.fail "no instant event"
      | Some i ->
          Alcotest.(check bool) "instant attr" true
            (match member "args" i with
            | Some args -> member "k" args = Some (J_num 7.)
            | None -> false))

let test_counter_merge_across_domains () =
  with_obs (fun () ->
      Obs.count "t.shared" 1;
      let ds =
        List.init 2 (fun i ->
            Domain.spawn (fun () ->
                Obs.span ~name:"t.domain" (fun () ->
                    Obs.count "t.shared" (10 * (i + 1));
                    Obs.count "t.own" 1)))
      in
      List.iter Domain.join ds;
      let evs = Obs.collect () in
      let doms =
        List.sort_uniq compare
          (List.filter_map
             (function Obs.Count { name = "t.shared"; dom; _ } -> Some dom | _ -> None)
             evs)
      in
      Alcotest.(check bool) "counted from >= 2 domains" true
        (List.length doms >= 2);
      let totals = Obs.Counters.totals evs in
      Alcotest.(check (option int)) "merged total" (Some 31)
        (List.assoc_opt "t.shared" totals);
      Alcotest.(check (option int)) "per-domain counter" (Some 2)
        (List.assoc_opt "t.own" totals);
      (* the two spans, one per domain, aggregate into one summary node *)
      match find_node "t.domain" (Obs.Summary.tree evs) with
      | None -> Alcotest.fail "no per-domain span node"
      | Some n -> Alcotest.(check int) "spans merged" 2 n.Obs.Summary.count)

let test_disabled_records_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  Obs.span ~name:"ghost" (fun () -> ());
  Obs.instant "ghost.i";
  Obs.count "ghost.c" 3;
  Obs.attr (fun () -> Alcotest.fail "attr thunk evaluated while disabled");
  let r, dt = Obs.timed_span ~name:"ghost.t" (fun () -> 17) in
  Alcotest.(check int) "timed_span still runs" 17 r;
  Alcotest.(check bool) "timed_span still measures" true (dt >= 0.);
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.collect ()));
  (* a trace of zero collected events is still valid JSON, carrying only
     the process-name metadata record *)
  match member "traceEvents" (parse_json (Obs.Chrome.to_string [])) with
  | Some (J_arr evs) ->
      Alcotest.(check bool) "only metadata in empty trace" true
        (List.for_all (fun e -> member "ph" e = Some (J_str "M")) evs)
  | _ -> Alcotest.fail "empty chrome trace is not an object with traceEvents"

let test_jsonl_lines_parse () =
  with_obs (fun () ->
      Obs.span ~name:"a" ~attrs:[ ("x", Obs.Int 1) ] (fun () ->
          Obs.count "c" 2);
      let text = Obs.Jsonl.to_string (Obs.collect ()) in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "some lines" true (List.length lines >= 3);
      List.iter
        (fun l ->
          match parse_json l with
          | J_obj kvs ->
              Alcotest.(check bool) "type field" true
                (List.mem_assoc "type" kvs)
          | _ -> Alcotest.fail "jsonl line is not an object")
        lines)

let suite =
  [
    Alcotest.test_case "span nesting in summary tree" `Quick test_span_nesting;
    Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
    Alcotest.test_case "chrome attrs round-trip as JSON" `Quick
      test_chrome_attrs_roundtrip;
    Alcotest.test_case "counters merge across domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
  ]
