(* Tests for the Obs tracing/metrics layer: span nesting through the
   summary tree, attribute round-trips through the Chrome writer (parsed
   back by a small JSON reader below), counter merging across domains, and
   the disabled sink recording nothing. *)

(* Each test owns the global sink: enable+reset on entry, disable+reset on
   exit (also on failure), so no events leak into other suites. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* ---- a minimal JSON reader (just enough to validate Chrome output) ---- *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "eof" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* keep the escape verbatim; the tests only use ASCII *)
              Buffer.add_string buf "\\u"
          | c -> fail (Printf.sprintf "bad escape %c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                skip_ws ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | '"' -> J_str (parse_string ())
    | 't' ->
        pos := !pos + 4;
        J_bool true
    | 'f' ->
        pos := !pos + 5;
        J_bool false
    | 'n' ->
        pos := !pos + 4;
        J_null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          advance ()
        done;
        if !pos = start then fail "bad value";
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | J_obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* ---- tests ---- *)

let find_node name nodes =
  List.find_opt (fun n -> n.Obs.Summary.name = name) nodes

let test_span_nesting () =
  with_obs (fun () ->
      Obs.span ~name:"outer" (fun () ->
          Obs.span ~name:"inner" (fun () -> ());
          Obs.span ~name:"inner" (fun () -> ()));
      Obs.span ~name:"outer" (fun () -> ());
      let tree = Obs.Summary.tree (Obs.collect ()) in
      match find_node "outer" tree with
      | None -> Alcotest.fail "no outer node"
      | Some outer ->
          Alcotest.(check int) "outer aggregated" 2 outer.Obs.Summary.count;
          Alcotest.(check bool)
            "outer total covers children" true
            (outer.Obs.Summary.total >= outer.Obs.Summary.self);
          (match find_node "inner" outer.Obs.Summary.children with
          | None -> Alcotest.fail "inner not nested under outer"
          | Some inner ->
              Alcotest.(check int) "inner aggregated" 2 inner.Obs.Summary.count);
          Alcotest.(check bool)
            "inner not at top level" true
            (find_node "inner" tree = None))

let test_exception_closes_span () =
  with_obs (fun () ->
      (try
         Obs.span ~name:"raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      let begins, ends =
        List.fold_left
          (fun (b, e) ev ->
            match ev with
            | Obs.Begin { name = "raises"; _ } -> (b + 1, e)
            | Obs.End { name = "raises"; _ } -> (b, e + 1)
            | _ -> (b, e))
          (0, 0) (Obs.collect ())
      in
      Alcotest.(check (pair int int)) "begin/end balanced" (1, 1) (begins, ends))

let test_chrome_attrs_roundtrip () =
  with_obs (fun () ->
      Obs.span ~name:"attributed"
        ~attrs:
          [
            ("answer", Obs.Int 42);
            ("ratio", Obs.Float 0.5);
            ("ok", Obs.Bool true);
            ("who", Obs.String "a \"quoted\"\nname");
          ]
        (fun () -> ());
      Obs.instant ~attrs:[ ("k", Obs.Int 7) ] "blip";
      let text = Obs.Chrome.to_string (Obs.collect ()) in
      let j = parse_json text in
      let events =
        match member "traceEvents" j with
        | Some (J_arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let find ph name =
        List.find_opt
          (fun e ->
            member "ph" e = Some (J_str ph) && member "name" e = Some (J_str name))
          events
      in
      (match find "B" "attributed" with
      | None -> Alcotest.fail "no B event"
      | Some b -> (
          Alcotest.(check bool) "ts present" true (member "ts" b <> None);
          match member "args" b with
          | Some args ->
              Alcotest.(check bool) "int attr" true
                (member "answer" args = Some (J_num 42.));
              Alcotest.(check bool) "float attr" true
                (member "ratio" args = Some (J_num 0.5));
              Alcotest.(check bool) "bool attr" true
                (member "ok" args = Some (J_bool true));
              Alcotest.(check bool) "string attr round-trips" true
                (member "who" args = Some (J_str "a \"quoted\"\nname"))
          | None -> Alcotest.fail "no args on B event"));
      Alcotest.(check bool) "E event present" true (find "E" "attributed" <> None);
      match find "i" "blip" with
      | None -> Alcotest.fail "no instant event"
      | Some i ->
          Alcotest.(check bool) "instant attr" true
            (match member "args" i with
            | Some args -> member "k" args = Some (J_num 7.)
            | None -> false))

let test_counter_merge_across_domains () =
  with_obs (fun () ->
      Obs.count "t.shared" 1;
      let ds =
        List.init 2 (fun i ->
            Domain.spawn (fun () ->
                Obs.span ~name:"t.domain" (fun () ->
                    Obs.count "t.shared" (10 * (i + 1));
                    Obs.count "t.own" 1)))
      in
      List.iter Domain.join ds;
      let evs = Obs.collect () in
      let doms =
        List.sort_uniq compare
          (List.filter_map
             (function Obs.Count { name = "t.shared"; dom; _ } -> Some dom | _ -> None)
             evs)
      in
      Alcotest.(check bool) "counted from >= 2 domains" true
        (List.length doms >= 2);
      let totals = Obs.Counters.totals evs in
      Alcotest.(check (option int)) "merged total" (Some 31)
        (List.assoc_opt "t.shared" totals);
      Alcotest.(check (option int)) "per-domain counter" (Some 2)
        (List.assoc_opt "t.own" totals);
      (* the two spans, one per domain, aggregate into one summary node *)
      match find_node "t.domain" (Obs.Summary.tree evs) with
      | None -> Alcotest.fail "no per-domain span node"
      | Some n -> Alcotest.(check int) "spans merged" 2 n.Obs.Summary.count)

let test_disabled_records_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  Obs.span ~name:"ghost" (fun () -> ());
  Obs.instant "ghost.i";
  Obs.count "ghost.c" 3;
  Obs.attr (fun () -> Alcotest.fail "attr thunk evaluated while disabled");
  let r, dt = Obs.timed_span ~name:"ghost.t" (fun () -> 17) in
  Alcotest.(check int) "timed_span still runs" 17 r;
  Alcotest.(check bool) "timed_span still measures" true (dt >= 0.);
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.collect ()));
  (* a trace of zero collected events is still valid JSON, carrying only
     the process-name metadata record *)
  match member "traceEvents" (parse_json (Obs.Chrome.to_string [])) with
  | Some (J_arr evs) ->
      Alcotest.(check bool) "only metadata in empty trace" true
        (List.for_all (fun e -> member "ph" e = Some (J_str "M")) evs)
  | _ -> Alcotest.fail "empty chrome trace is not an object with traceEvents"

let test_jsonl_lines_parse () =
  with_obs (fun () ->
      Obs.span ~name:"a" ~attrs:[ ("x", Obs.Int 1) ] (fun () ->
          Obs.count "c" 2);
      let text = Obs.Jsonl.to_string (Obs.collect ()) in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "some lines" true (List.length lines >= 3);
      List.iter
        (fun l ->
          match parse_json l with
          | J_obj kvs ->
              Alcotest.(check bool) "type field" true
                (List.mem_assoc "type" kvs)
          | _ -> Alcotest.fail "jsonl line is not an object")
        lines)

(* ---- live metrics: histograms, gauges, Prometheus exposition ---- *)

(* Each test owns the live-metrics switch the same way [with_obs] owns the
   tracing switch. *)
let with_counters f =
  Obs.reset ();
  Obs.enable_counters ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable_counters ();
      Obs.reset ())
    f

let test_nearest_rank_pinned () =
  let nr = Obs.Histogram.nearest_rank in
  Alcotest.(check (float 0.)) "empty" 0. (nr [||] 0.5);
  (* the regression the bench percentile fix pins: rank = ceil (q*n), so
     p50 of two samples is the FIRST one, not the second *)
  Alcotest.(check (float 0.)) "p50 of [1;2]" 1. (nr [| 1.; 2. |] 0.5);
  Alcotest.(check (float 0.)) "p50 of [1;2;3]" 2. (nr [| 1.; 2.; 3. |] 0.5);
  let hundred = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.)) "p50 of 1..100" 50. (nr hundred 0.50);
  Alcotest.(check (float 0.)) "p95 of 1..100" 95. (nr hundred 0.95);
  Alcotest.(check (float 0.)) "p99 of 1..100" 99. (nr hundred 0.99);
  Alcotest.(check (float 0.)) "p100 clamps" 100. (nr hundred 1.0);
  Alcotest.(check (float 0.)) "p0 clamps" 1. (nr hundred 0.)

(* Four domains hammer one histogram concurrently; the merged snapshot
   must equal the single-domain sequential snapshot of the same samples
   (same count, same buckets; sum up to summation order). *)
let test_histogram_merge_across_domains () =
  with_counters (fun () ->
      let ndom = 4 and per = 500 in
      let sample i j = (float_of_int ((i * 97) + j) +. 1.) /. 17. in
      let ds =
        List.init ndom (fun i ->
            Domain.spawn (fun () ->
                for j = 0 to per - 1 do
                  Obs.observe "h.merge" (sample i j)
                done))
      in
      List.iter Domain.join ds;
      let merged =
        match Obs.Histogram.find "h.merge" with
        | Some s -> s
        | None -> Alcotest.fail "no merged histogram"
      in
      Obs.reset ();
      for i = 0 to ndom - 1 do
        for j = 0 to per - 1 do
          Obs.observe "h.merge" (sample i j)
        done
      done;
      let seq =
        match Obs.Histogram.find "h.merge" with
        | Some s -> s
        | None -> Alcotest.fail "no sequential histogram"
      in
      Alcotest.(check int) "count" seq.Obs.Histogram.count
        merged.Obs.Histogram.count;
      Alcotest.(check int) "total samples" (ndom * per)
        merged.Obs.Histogram.count;
      Alcotest.(check (float 1e-6)) "sum" seq.Obs.Histogram.sum
        merged.Obs.Histogram.sum;
      Alcotest.(check bool) "buckets identical" true
        (merged.Obs.Histogram.buckets = seq.Obs.Histogram.buckets))

(* Adversarial sample sets: every histogram quantile must sit within one
   bucket of the exact nearest-rank value — at the bucket's upper bound,
   never below the exact sample. *)
let test_quantile_bucket_bound () =
  let distributions =
    [
      ("all-equal", Array.make 1000 0.5);
      ("two-point", Array.init 1000 (fun i -> if i mod 2 = 0 then 1e-6 else 9.9));
      ("geometric", Array.init 200 (fun i -> Float.ldexp 1. ((i mod 25) - 15)));
      (* exact powers of two sit on bucket boundaries *)
      ("boundary-powers", [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 |]);
      ("underflow-heavy", Array.init 100 (fun i -> if i < 90 then 1e-9 else 1.0));
    ]
  in
  let qs = [ 0.; 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ] in
  List.iter
    (fun (label, samples) ->
      with_counters (fun () ->
          Array.iter (Obs.observe "h.adv") samples;
          let s =
            match Obs.Histogram.find "h.adv" with
            | Some s -> s
            | None -> Alcotest.fail "no histogram"
          in
          let sorted = Array.copy samples in
          Array.sort compare sorted;
          List.iter
            (fun q ->
              let exact = Obs.Histogram.nearest_rank sorted q in
              let hq = Obs.Histogram.quantile s q in
              let _, hi = Obs.Histogram.bucket_bounds_of_value exact in
              if not (hq >= exact && hq <= hi) then
                Alcotest.failf
                  "%s q=%.2f: histogram %.9g outside (exact %.9g, bucket top \
                   %.9g]"
                  label q hq exact hi)
            qs))
    distributions

(* The exposition text must parse: HELP/TYPE per family, cumulative
   monotone buckets, a +Inf bucket equal to _count, and _sum matching. *)
let test_prom_round_trip () =
  with_counters (fun () ->
      Obs.count "prom.hits" 3;
      Obs.Gauge.set "prom.depth" 2.5;
      let samples = [ 0.0011; 0.0042; 0.0042; 0.093; 0.72; 1.9 ] in
      List.iter (Obs.observe "prom.lat seconds") samples;
      (* name needs sanitizing: space and dot both become '_' *)
      let text = Obs.Prom.to_string () in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "ends with newline" true
        (String.length text > 0 && text.[String.length text - 1] = '\n');
      let parse_sample line =
        (* "name value" or "name{le=\"x\"} value" *)
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "unparseable sample line %S" line
        | Some i ->
            let name_part = String.sub line 0 i in
            let v =
              match
                float_of_string_opt
                  (String.sub line (i + 1) (String.length line - i - 1))
              with
              | Some v -> v
              | None -> Alcotest.failf "bad value in %S" line
            in
            let name, label =
              match String.index_opt name_part '{' with
              | None -> (name_part, None)
              | Some b ->
                  let base = String.sub name_part 0 b in
                  let le_val =
                    Scanf.sscanf
                      (String.sub name_part b
                         (String.length name_part - b))
                      "{le=%S}" Fun.id
                  in
                  (base, Some le_val)
            in
            (name, label, v)
      in
      let helps = Hashtbl.create 8 and types = Hashtbl.create 8 in
      let samples_seen = ref [] in
      List.iter
        (fun line ->
          if String.length line > 0 && line.[0] = '#' then
            Scanf.sscanf line "# %s %s" (fun kind name ->
                match kind with
                | "HELP" -> Hashtbl.replace helps name ()
                | "TYPE" -> Hashtbl.replace types name ()
                | k -> Alcotest.failf "unknown comment kind %s" k)
          else samples_seen := parse_sample line :: !samples_seen)
        lines;
      let samples_seen = List.rev !samples_seen in
      let value name =
        match
          List.find_opt (fun (n, l, _) -> n = name && l = None) samples_seen
        with
        | Some (_, _, v) -> v
        | None -> Alcotest.failf "missing sample %s" name
      in
      (* names: "seqver_" prefix, '.'/' ' sanitized, counters get _total *)
      Alcotest.(check (float 0.)) "counter" 3. (value "seqver_prom_hits_total");
      Alcotest.(check (float 0.)) "gauge" 2.5 (value "seqver_prom_depth");
      let h = "seqver_prom_lat_seconds" in
      let buckets =
        List.filter_map
          (function
            | n, Some le, v when n = h ^ "_bucket" -> Some (le, v) | _ -> None)
          samples_seen
      in
      Alcotest.(check bool) "has buckets" true (List.length buckets >= 2);
      (* cumulative counts never decrease; le bounds strictly increase *)
      let rec check_monotone = function
        | (le1, v1) :: ((le2, v2) :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "cumulative %s <= %s" le1 le2)
              true (v1 <= v2);
            if le2 <> "+Inf" then
              Alcotest.(check bool)
                (Printf.sprintf "le %s < %s" le1 le2)
                true
                (float_of_string le1 < float_of_string le2);
            check_monotone rest
        | _ -> ()
      in
      check_monotone buckets;
      (match List.rev buckets with
      | (le, v) :: _ ->
          Alcotest.(check string) "last bucket is +Inf" "+Inf" le;
          Alcotest.(check (float 0.)) "+Inf == _count" (value (h ^ "_count")) v
      | [] -> Alcotest.fail "no buckets");
      Alcotest.(check (float 0.)) "_count" 6. (value (h ^ "_count"));
      Alcotest.(check (float 1e-9)) "_sum"
        (List.fold_left ( +. ) 0. samples)
        (value (h ^ "_sum"));
      (* every exposed family carries HELP and TYPE *)
      List.iter
        (fun fam ->
          Alcotest.(check bool) (fam ^ " HELP") true (Hashtbl.mem helps fam);
          Alcotest.(check bool) (fam ^ " TYPE") true (Hashtbl.mem types fam))
        [ "seqver_prom_hits_total"; "seqver_prom_depth"; h ])

let test_buffer_cap_drops () =
  let original = Obs.buffer_cap () in
  Fun.protect
    ~finally:(fun () -> Obs.set_buffer_cap original)
    (fun () ->
      with_obs (fun () ->
          Obs.set_buffer_cap 10;
          for i = 1 to 100 do
            Obs.instant (Printf.sprintf "cap.%d" i)
          done;
          Alcotest.(check int) "buffer capped" 10
            (List.length (Obs.collect ()));
          Alcotest.(check int) "drops counted" 90 (Obs.dropped_events ());
          (* reset restarts the window and the drop counter *)
          Obs.reset ();
          Obs.instant "cap.fresh";
          Alcotest.(check int) "window restarts" 1
            (List.length (Obs.collect ()));
          Alcotest.(check int) "drop counter cleared" 0 (Obs.dropped_events ())))

(* The satellite regression: [reset] must be safe while another domain is
   emitting full tilt.  The old implementation zeroed the foreign domain's
   buffer length from the resetting domain, racing its in-flight append. *)
let test_reset_race_with_emitter () =
  Obs.reset ();
  Obs.enable ();
  Obs.enable_counters ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.disable_counters ();
      Obs.reset ())
    (fun () ->
      let stop = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            let n = ref 0 in
            while not (Atomic.get stop) do
              Obs.instant "race.i";
              Obs.count "race.c" 1;
              Obs.observe "race.h" 0.5;
              incr n
            done;
            !n)
      in
      for _ = 1 to 500 do
        Obs.reset ();
        ignore (Obs.collect ());
        ignore (Obs.Counters.snapshot ());
        ignore (Obs.Histogram.snapshot ())
      done;
      Atomic.set stop true;
      let n = Domain.join d in
      Alcotest.(check bool) "emitter made progress" true (n > 0);
      (* after a final reset the world is clean and fresh emissions land *)
      Obs.reset ();
      Obs.count "race.after" 2;
      Alcotest.(check (option int)) "fresh counter after reset" (Some 2)
        (List.assoc_opt "race.after" (Obs.Counters.snapshot ()));
      Alcotest.(check bool) "no resurrected events" true
        (List.for_all
           (function
             | Obs.Instant { name = "race.i"; _ } -> false | _ -> true)
           (Obs.collect ())))

let test_capture_semantics () =
  Obs.reset ();
  Alcotest.(check bool) "tracing stays disabled" false (Obs.enabled ());
  let r, evs =
    Obs.capture (fun () ->
        Obs.span ~name:"cap.s" (fun () -> Obs.instant "cap.i");
        42)
  in
  Alcotest.(check int) "capture returns the result" 42 r;
  let names =
    List.filter_map
      (function
        | Obs.Begin { name; _ } -> Some ("B:" ^ name)
        | Obs.End { name; _ } -> Some ("E:" ^ name)
        | Obs.Instant { name; _ } -> Some ("I:" ^ name)
        | Obs.Count _ -> None)
      evs
  in
  Alcotest.(check (list string)) "events in emission order"
    [ "B:cap.s"; "I:cap.i"; "E:cap.s" ]
    names;
  Alcotest.(check int) "nothing leaked to the global sink" 0
    (List.length (Obs.collect ()));
  (* nested captures shadow: the inner one takes the events *)
  let inner_evs, outer_evs =
    Obs.capture (fun () ->
        Obs.instant "outer.a";
        let _, inner = Obs.capture (fun () -> Obs.instant "inner.b") in
        Obs.instant "outer.c";
        inner)
  in
  let inst evs =
    List.filter_map
      (function Obs.Instant { name; _ } -> Some name | _ -> None)
      evs
  in
  Alcotest.(check (list string)) "inner capture took its events"
    [ "inner.b" ] (inst inner_evs);
  Alcotest.(check (list string)) "outer capture kept the rest"
    [ "outer.a"; "outer.c" ]
    (inst outer_evs);
  Obs.reset ()

let suite =
  [
    Alcotest.test_case "span nesting in summary tree" `Quick test_span_nesting;
    Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
    Alcotest.test_case "chrome attrs round-trip as JSON" `Quick
      test_chrome_attrs_roundtrip;
    Alcotest.test_case "counters merge across domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
    Alcotest.test_case "nearest-rank percentile pinned" `Quick
      test_nearest_rank_pinned;
    Alcotest.test_case "histogram merge across domains" `Quick
      test_histogram_merge_across_domains;
    Alcotest.test_case "quantile error within bucket bound" `Quick
      test_quantile_bucket_bound;
    Alcotest.test_case "prometheus exposition round-trips" `Quick
      test_prom_round_trip;
    Alcotest.test_case "buffer cap drops are counted" `Quick
      test_buffer_cap_drops;
    Alcotest.test_case "reset races a counting domain" `Quick
      test_reset_race_with_emitter;
    Alcotest.test_case "capture is request-scoped" `Quick
      test_capture_semantics;
  ]
