(* Shared random-circuit generators for the test suite.  All generators are
   deterministic given the Random.State. *)

let gate_fn_of_int n : Circuit.gate_fn =
  match n mod 9 with
  | 0 -> And
  | 1 -> Or
  | 2 -> Nand
  | 3 -> Nor
  | 4 -> Xor
  | 5 -> Xnor
  | 6 -> Not
  | 7 -> Buf
  | _ -> Mux

let arity (fn : Circuit.gate_fn) =
  match fn with Const _ -> 0 | Not | Buf -> 1 | Mux -> 3 | _ -> 2

let pick st pool = List.nth pool (Random.State.int st (List.length pool))

let random_gate st c pool =
  let fn = gate_fn_of_int (Random.State.int st 9) in
  Circuit.add_gate c fn (List.init (arity fn) (fun _ -> pick st pool))

(* Pure combinational circuit. *)
let comb st ~name ~inputs ~gates ~outputs =
  let c = Circuit.create name in
  let pool = ref [] in
  for i = 0 to inputs - 1 do
    pool := Circuit.add_input c (Printf.sprintf "i%d" i) :: !pool
  done;
  for _ = 1 to gates do
    pool := random_gate st c !pool :: !pool
  done;
  for _ = 1 to outputs do
    Circuit.mark_output c (pick st !pool)
  done;
  Circuit.check c;
  c

(* Acyclic sequential circuit (latches inserted on the fly, no feedback). *)
let acyclic st ~name ~inputs ~gates ~latches ~outputs ~enables =
  let c = Circuit.create name in
  let pool = ref [] in
  for i = 0 to inputs - 1 do
    pool := Circuit.add_input c (Printf.sprintf "i%d" i) :: !pool
  done;
  let total = gates + latches in
  for k = 1 to total do
    if k mod (total / max 1 latches) = 0 && Circuit.latch_count c < latches then begin
      let enable = if enables && Random.State.bool st then Some (pick st !pool) else None in
      pool := Circuit.add_latch c ?enable ~data:(pick st !pool) () :: !pool
    end
    else pool := random_gate st c !pool :: !pool
  done;
  for _ = 1 to outputs do
    Circuit.mark_output c (pick st !pool)
  done;
  Circuit.check c;
  c

(* Sequential circuit with feedback: latches declared first so their outputs
   can appear anywhere in the logic. *)
let feedback st ~name ~inputs ~gates ~latches ~outputs =
  let c = Circuit.create name in
  let ins = List.init inputs (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i)) in
  let qs = List.init latches (fun i -> Circuit.declare c ~name:(Printf.sprintf "q%d" i) ()) in
  let pool = ref (ins @ qs) in
  for _ = 1 to gates do
    pool := random_gate st c !pool :: !pool
  done;
  List.iter (fun q -> Circuit.set_latch c q ~data:(pick st !pool) ()) qs;
  for _ = 1 to outputs do
    Circuit.mark_output c (pick st !pool)
  done;
  Circuit.check c;
  c

(* Structure-perturbing, function-preserving rewrite (uses De Morgan and
   mux expansion); keeps input names and output order. *)
let demorganize c =
  let nc = Circuit.create (Circuit.name c ^ "_dm") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  List.iter
    (fun s -> Hashtbl.replace map s (Circuit.add_input nc (Circuit.signal_name c s)))
    (Circuit.inputs c);
  (* declare latch outputs first to allow feedback *)
  List.iter
    (fun l -> Hashtbl.replace map l (Circuit.declare nc ~name:(Circuit.signal_name c l) ()))
    (Circuit.latches c);
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          let ins = Array.to_list (Array.map get fs) in
          let out =
            match (fn, ins) with
            | Circuit.And, ins -> Circuit.add_gate nc Not [ Circuit.add_gate nc Nand ins ]
            | Or, ins ->
                Circuit.add_gate nc Nand (List.map (fun i -> Circuit.add_gate nc Not [ i ]) ins)
            | Nand, ins ->
                Circuit.add_gate nc Or (List.map (fun i -> Circuit.add_gate nc Not [ i ]) ins)
            | Nor, ins -> Circuit.add_gate nc Not [ Circuit.add_gate nc Or ins ]
            | Not, [ a ] -> Circuit.add_gate nc Nand [ a; a ]
            | Buf, [ a ] -> Circuit.add_gate nc And [ a; a ]
            | Xor, [ a; b ] ->
                Circuit.add_gate nc Or
                  [
                    Circuit.add_gate nc And [ a; Circuit.add_gate nc Not [ b ] ];
                    Circuit.add_gate nc And [ Circuit.add_gate nc Not [ a ]; b ];
                  ]
            | Xnor, [ a; b ] ->
                Circuit.add_gate nc Not
                  [
                    Circuit.add_gate nc Or
                      [
                        Circuit.add_gate nc And [ a; Circuit.add_gate nc Not [ b ] ];
                        Circuit.add_gate nc And [ Circuit.add_gate nc Not [ a ]; b ];
                      ];
                  ]
            | Mux, [ s; t; e ] ->
                Circuit.add_gate nc Or
                  [
                    Circuit.add_gate nc And [ s; t ];
                    Circuit.add_gate nc And [ Circuit.add_gate nc Not [ s ]; e ];
                  ]
            | fn, ins -> Circuit.add_gate nc fn ins
          in
          Hashtbl.replace map s out
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.set_latch nc (get l) ?enable:(Option.map get enable) ~data:(get data) ())
    (Circuit.latches c);
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  Circuit.check nc;
  nc

(* Structure-preserving copy with every input renamed; cone signatures
   computed with a blank [input_label] must not see the difference. *)
let rename_inputs ?(prefix = "r_") c =
  let nc = Circuit.create (Circuit.name c ^ "_ren") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  List.iter
    (fun s ->
      Hashtbl.replace map s (Circuit.add_input nc (prefix ^ Circuit.signal_name c s)))
    (Circuit.inputs c);
  List.iter
    (fun l -> Hashtbl.replace map l (Circuit.declare nc ~name:(Circuit.signal_name c l) ()))
    (Circuit.latches c);
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          Hashtbl.replace map s (Circuit.add_gate nc fn (Array.to_list (Array.map get fs)))
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.set_latch nc (get l) ?enable:(Option.map get enable) ~data:(get data) ())
    (Circuit.latches c);
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  Circuit.check nc;
  nc

(* Copy with a single output negated (a seeded bug). *)
let negate_one_output c =
  let nc = Circuit.create (Circuit.name c ^ "_bug") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  List.iter
    (fun s -> Hashtbl.replace map s (Circuit.add_input nc (Circuit.signal_name c s)))
    (Circuit.inputs c);
  List.iter
    (fun l -> Hashtbl.replace map l (Circuit.declare nc ~name:(Circuit.signal_name c l) ()))
    (Circuit.latches c);
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          Hashtbl.replace map s (Circuit.add_gate nc fn (Array.to_list (Array.map get fs)))
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.set_latch nc (get l) ?enable:(Option.map get enable) ~data:(get data) ())
    (Circuit.latches c);
  (match Circuit.outputs c with
  | [] -> ()
  | o :: rest ->
      Circuit.mark_output nc (Circuit.add_gate nc Not [ get o ]);
      List.iter (fun o -> Circuit.mark_output nc (get o)) rest);
  Circuit.check nc;
  nc

let random_inputs st c ~cycles =
  let ni = List.length (Circuit.inputs c) in
  List.init cycles (fun _ -> Array.init ni (fun _ -> Random.State.bool st))
