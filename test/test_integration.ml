(* Cross-subsystem integration: format round trips through the whole
   optimize-and-verify pipeline, multi-step optimization chains, engine
   cross-checks, and end-to-end negative tests. *)

let st = Random.State.make [| 0x1A7 |]

let vcheck c1 c2 =
  match Verify.check c1 c2 with
  | Ok o -> (o.Verify.verdict, o.Verify.stats)
  | Error d ->
      Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)

let test_blif_through_flow () =
  (* export a suite circuit to BLIF, reimport, run the full flow *)
  let c = Workloads.by_name "s400" in
  let { Blif.circuit = c2; _ } = Blif.parse (Blif.to_string c) in
  let row =
    match Flow.run c2 with
    | Ok row -> row
    | Error d ->
        Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)
  in
  match row.Flow.verify_verdict with
  | Verify.Equivalent -> ()
  | Verify.Inequivalent _ -> Alcotest.fail "flow failed on BLIF-round-tripped circuit"
  | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_long_optimization_chain () =
  (* five alternations of synthesis and retiming — the paper's "arbitrary
     sequences of retiming and synthesis operations" *)
  let c =
    Gen.acyclic st ~name:"chain" ~inputs:4 ~gates:60 ~latches:6 ~outputs:2 ~enables:false
  in
  let o = ref c in
  for i = 1 to 5 do
    o := Synth_script.delay_script !o;
    let rt, _ =
      if i mod 2 = 0 then Retime.min_area !o else Retime.min_period !o
    in
    o := rt
  done;
  match vcheck c !o with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "five-round chain not verified"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_redundancy_then_retime_then_verify () =
  let c =
    Gen.acyclic st ~name:"rrv" ~inputs:3 ~gates:50 ~latches:4 ~outputs:2 ~enables:false
  in
  let o1, _ = Redundancy.run ~max_rounds:5 c in
  let o2, _ = Retime.min_period (Synth_script.delay_script o1) in
  match vcheck c o2 with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "redundancy+retime chain not verified"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_engines_on_flow_miters () =
  (* all three CEC engines agree on real flow miters *)
  let c = Workloads.by_name "s641" in
  let b, copt = Result.get_ok (Flow.circuits c) in
  let plan = Feedback.plan_structural c in
  let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
  let ex cc s = List.mem (Circuit.signal_name cc s) names in
  let bld = Seqprob.builder () in
  let o1, _ = Result.get_ok (Cbf.unroll ~exposed:(ex b) bld b) in
  let o2, _ = Result.get_ok (Cbf.unroll ~exposed:(ex copt) bld copt) in
  let p = Result.get_ok (Seqprob.problem bld ~outs1:o1 ~outs2:o2) in
  List.iter
    (fun engine ->
      match Cec.check_problem ~engine p with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ -> Alcotest.fail "engine disagrees on flow miter"
      | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r)
    [ Cec.Bdd_engine; Cec.Sat_engine; Cec.Sweep_engine ]

let test_word_eval_matches_scalar () =
  for i = 1 to 20 do
    let c =
      Gen.comb st ~name:(Printf.sprintf "w%d" i) ~inputs:4
        ~gates:(10 + Random.State.int st 30)
        ~outputs:2
    in
    let words = Hashtbl.create 8 in
    List.iter
      (fun s -> Hashtbl.replace words s (Random.State.int64 st Int64.max_int))
      (Circuit.inputs c);
    let wvals = Eval.comb_eval_words c ~source:(Hashtbl.find words) in
    for bit = 0 to 63 do
      let source s =
        Int64.logand (Int64.shift_right_logical (Hashtbl.find words s) bit) 1L = 1L
      in
      let svals = Eval.comb_eval c ~source in
      List.iter
        (fun o ->
          let wbit = Int64.logand (Int64.shift_right_logical wvals.(o) bit) 1L = 1L in
          if wbit <> svals.(o) then Alcotest.fail "word eval mismatch")
        (Circuit.outputs c)
    done
  done

let test_corrupted_netlist_detected_everywhere () =
  (* a single-gate corruption introduced at any pipeline stage is caught *)
  let c =
    Gen.acyclic st ~name:"corr" ~inputs:3 ~gates:40 ~latches:4 ~outputs:2 ~enables:false
  in
  let stages =
    [
      ("after synth", fun c -> Synth_script.delay_script c);
      ("after retime", fun c -> fst (Retime.min_period c));
      ("after both", fun c -> fst (Retime.min_period (Synth_script.delay_script c)));
    ]
  in
  List.iter
    (fun (tag, f) ->
      let o = f c in
      let bug = Gen.negate_one_output o in
      match vcheck c bug with
      | Verify.Inequivalent _, _ -> ()
      | Verify.Equivalent, _ -> Alcotest.fail ("bug missed " ^ tag)
      | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r)
    stages

let test_flow_area_metric_counts_latches () =
  let c = Circuit.create "fm" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.add_latch c ~data:a () in
  Circuit.mark_output c (Circuit.add_gate c Not [ q ]);
  Circuit.check c;
  let m = Flow.metrics_of c in
  Alcotest.(check int) "1 gate + 4/latch" 5 m.Flow.area;
  Alcotest.(check int) "latches" 1 m.Flow.latches

let test_cli_formats_by_extension () =
  (* the two on-disk formats both reload to the same behaviour *)
  let c = Workloads.by_name "s1196" in
  let text_native = Netlist_io.to_string c in
  let text_blif = Blif.to_string c in
  let c1 = Netlist_io.parse text_native in
  let { Blif.circuit = c2; _ } = Blif.parse text_blif in
  match vcheck c1 c2 with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "formats disagree"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let suite =
  [
    Alcotest.test_case "BLIF through the flow" `Quick test_blif_through_flow;
    Alcotest.test_case "five-round optimization chain" `Quick test_long_optimization_chain;
    Alcotest.test_case "redundancy+retime+verify" `Quick test_redundancy_then_retime_then_verify;
    Alcotest.test_case "engines agree on flow miters" `Quick test_engines_on_flow_miters;
    Alcotest.test_case "word eval matches scalar" `Quick test_word_eval_matches_scalar;
    Alcotest.test_case "corruption detected at all stages" `Quick test_corrupted_netlist_detected_everywhere;
    Alcotest.test_case "flow area metric" `Quick test_flow_area_metric_counts_latches;
    Alcotest.test_case "format cross-check" `Quick test_cli_formats_by_extension;
  ]
