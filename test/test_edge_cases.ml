(* Edge cases and failure injection across the stack. *)

let st = Random.State.make [| 0xED6E |]

(* ---- exposed load-enabled latches ---- *)

let test_cbf_exposed_enabled_latch () =
  (* an exposed latch may be load-enabled: its data AND enable functions
     become outputs, and its output is a pseudo-input *)
  let c = Circuit.create "xe" in
  let a = Circuit.add_input c "a" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q ~enable:e ~data:(Circuit.add_gate c Xor [ q; a ]) ();
  Circuit.mark_output c q;
  Circuit.check c;
  let exposed s = Circuit.signal_name c s = "q" in
  let u, _ = Cbf.unroll_netlist ~exposed c in
  (* outputs: PO q, data fn, enable fn *)
  Alcotest.(check int) "three outputs" 3 (List.length (Circuit.outputs u));
  Alcotest.(check int) "no latches" 0 (Circuit.latch_count u)

let test_verify_exposed_enabled () =
  (* verifying two variants of an exposed enabled latch: equivalent when
     both data and enable match, inequivalent when the enable differs *)
  let mk en_fn =
    let c = Circuit.create "ve" in
    let a = Circuit.add_input c "a" in
    let e = Circuit.add_input c "e" in
    let q = Circuit.declare c ~name:"q" () in
    let enable = if en_fn then e else Circuit.add_gate c Not [ e ] in
    Circuit.set_latch c q ~enable ~data:(Circuit.add_gate c And [ q; a ]) ();
    Circuit.mark_output c q;
    Circuit.check c;
    c
  in
  let verdict a b =
    (Result.get_ok (Verify.check ~exposed:[ "q" ] a b)).Verify.verdict
  in
  (match verdict (mk true) (mk true) with
  | Verify.Equivalent -> ()
  | Verify.Inequivalent _ -> Alcotest.fail "same enabled latch rejected"
  | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r);
  match verdict (mk true) (mk false) with
  | Verify.Inequivalent _ -> ()
  | Verify.Equivalent -> Alcotest.fail "enable difference missed"
  | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

(* ---- sweep mux simplifications ---- *)

let test_sweep_mux_rules () =
  let check_case build expected_area =
    let c = Circuit.create "mx" in
    let a = Circuit.add_input c "a" in
    let b = Circuit.add_input c "b" in
    let s = Circuit.add_input c "s" in
    Circuit.mark_output c (build c a b s);
    Circuit.check c;
    let o = Sweep_pass.run c in
    Alcotest.(check bool)
      (Printf.sprintf "area <= %d" expected_area)
      true
      (Circuit.area o <= expected_area);
    (* behaviour preserved *)
    for m = 0 to 7 do
      let tbl = Hashtbl.create 4 in
      List.iteri (fun i x -> Hashtbl.replace tbl x (m land (1 lsl i) <> 0)) (Circuit.inputs c);
      let v1 = Eval.comb_eval c ~source:(Hashtbl.find tbl) in
      let tbl2 = Hashtbl.create 4 in
      List.iteri (fun i x -> Hashtbl.replace tbl2 x (m land (1 lsl i) <> 0)) (Circuit.inputs o);
      let v2 = Eval.comb_eval o ~source:(Hashtbl.find tbl2) in
      let o1 = List.map (fun x -> v1.(x)) (Circuit.outputs c) in
      let o2 = List.map (fun x -> v2.(x)) (Circuit.outputs o) in
      if o1 <> o2 then Alcotest.fail "mux rule broke semantics"
    done
  in
  (* mux(s, a, a) = a *)
  check_case (fun c a _ s -> Circuit.add_gate c Mux [ s; a; a ]) 0;
  (* mux(1, a, b) = a *)
  check_case (fun c a b _ -> Circuit.add_gate c Mux [ Circuit.const_true c; a; b ]) 0;
  (* mux(s, 1, 0) = s *)
  check_case
    (fun c _ _ s -> Circuit.add_gate c Mux [ s; Circuit.const_true c; Circuit.const_false c ])
    0;
  (* mux(s, 0, 1) = ~s *)
  check_case
    (fun c _ _ s -> Circuit.add_gate c Mux [ s; Circuit.const_false c; Circuit.const_true c ])
    1;
  (* mux(s, a, 0) = s & a *)
  check_case (fun c a _ s -> Circuit.add_gate c Mux [ s; a; Circuit.const_false c ]) 1

(* ---- fanout trees ---- *)

let test_fanout_wide () =
  (* one signal driving 40 sinks, limited to 3 *)
  let c = Circuit.create "wide" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let src = Circuit.add_gate c And [ a; b ] in
  for _ = 1 to 40 do
    Circuit.mark_output c (Circuit.add_gate c Not [ src ])
  done;
  Circuit.check c;
  let o = Fanout_pass.run ~max_fanout:3 c in
  Alcotest.(check bool) "limited" true (Fanout_pass.max_fanout o <= 3);
  (* all 40 outputs still compute ~(a&b) *)
  let tbl = Hashtbl.create 4 in
  List.iter (fun s -> Hashtbl.replace tbl s true) (Circuit.inputs o);
  let v = Eval.comb_eval o ~source:(Hashtbl.find tbl) in
  List.iter
    (fun out -> Alcotest.(check bool) "output value" false v.(out))
    (Circuit.outputs o)

(* ---- BDD cache stress ---- *)

let test_bdd_many_vars () =
  (* a 40-variable conjunction chain: linear BDD, exercises table growth *)
  let man = Bdd.man () in
  let f = ref (Bdd.one man) in
  for i = 0 to 39 do
    f := Bdd.and_ man !f (Bdd.var man i)
  done;
  Alcotest.(check int) "linear size" 42 (Bdd.size man !f);
  Alcotest.(check int) "support" 40 (List.length (Bdd.support man !f));
  (* quantify half away *)
  let q = Bdd.exists man (List.init 20 (fun i -> 2 * i)) !f in
  Alcotest.(check int) "remaining support" 20 (List.length (Bdd.support man q))

let test_bdd_sat_count_large () =
  let man = Bdd.man () in
  let x0 = Bdd.var man 0 in
  Alcotest.(check bool) "2^39" true
    (abs_float (Bdd.sat_count man x0 ~nvars:40 -. ldexp 1.0 39) < 1.0)

(* ---- retiming corner cases ---- *)

let test_retime_no_latches () =
  (* a latch-free circuit must come back latch-free, with the same period
     (dangling logic is pruned, not pipelined) *)
  let c = Gen.comb st ~name:"nolatch" ~inputs:3 ~gates:15 ~outputs:2 in
  let rt, rep = Retime.min_period c in
  Alcotest.(check int) "still none" 0 (Circuit.latch_count rt);
  Alcotest.(check int) "period unchanged" rep.Retime.period_before
    rep.Retime.period_after;
  match Cec.check c rt with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "latch-free retime changed function"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_retime_illegal_labels () =
  let c = Circuit.create "il" in
  let a = Circuit.add_input c "a" in
  let g1 = Circuit.add_gate c Not [ a ] in
  let q = Circuit.add_latch c ~data:g1 () in
  let g2 = Circuit.add_gate c Not [ q ] in
  Circuit.mark_output c g2;
  Circuit.check c;
  let g = Rgraph.build c in
  let n = Vgraph.Digraph.node_count g.Rgraph.graph in
  let bad = Array.make n 0 in
  (* push a register past the environment: r of the first gate = -1 moves
     the PI-side weight negative *)
  bad.(2) <- -5;
  Alcotest.(check bool) "illegal detected" false (Rgraph.is_legal g ~r:bad);
  try
    ignore (Rgraph.apply g ~r:bad);
    Alcotest.fail "applied illegal retiming"
  with Invalid_argument _ -> ()

let test_verify_output_mismatch () =
  let c1 = Gen.acyclic st ~name:"om1" ~inputs:2 ~gates:10 ~latches:2 ~outputs:1 ~enables:false in
  let c2 = Gen.acyclic st ~name:"om2" ~inputs:2 ~gates:10 ~latches:2 ~outputs:2 ~enables:false in
  match Verify.check c1 c2 with
  | Error (Seqprob.Output_arity_mismatch { left; right }) ->
      Alcotest.(check bool) "arity counts differ" true (left <> right)
  | Error d ->
      Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "output count mismatch accepted"

(* ---- empty / degenerate circuits ---- *)

let test_empty_circuit () =
  let c = Circuit.create "empty" in
  Circuit.check c;
  Alcotest.(check int) "area" 0 (Circuit.area c);
  Alcotest.(check int) "delay" 0 (Circuit.delay c);
  let u, info = Cbf.unroll_netlist c in
  Alcotest.(check int) "no outputs" 0 (List.length (Circuit.outputs u));
  Alcotest.(check int) "depth" 0 info.Cbf.depth

let test_constant_only_circuit () =
  let c = Circuit.create "konst" in
  ignore (Circuit.add_input c "unused");
  Circuit.mark_output c (Circuit.const_true c);
  Circuit.check c;
  let rt, _ = Retime.min_period c in
  match (Result.get_ok (Verify.check c rt)).Verify.verdict with
  | Verify.Equivalent -> ()
  | Verify.Inequivalent _ -> Alcotest.fail "constant circuit broken"
  | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let suite =
  [
    Alcotest.test_case "CBF with exposed enabled latch" `Quick test_cbf_exposed_enabled_latch;
    Alcotest.test_case "verify exposed enabled latch" `Quick test_verify_exposed_enabled;
    Alcotest.test_case "sweep mux rules" `Quick test_sweep_mux_rules;
    Alcotest.test_case "fanout tree, wide" `Quick test_fanout_wide;
    Alcotest.test_case "bdd 40-variable chain" `Quick test_bdd_many_vars;
    Alcotest.test_case "bdd sat_count large" `Quick test_bdd_sat_count_large;
    Alcotest.test_case "retime latch-free circuit" `Quick test_retime_no_latches;
    Alcotest.test_case "illegal retiming rejected" `Quick test_retime_illegal_labels;
    Alcotest.test_case "verify output mismatch" `Quick test_verify_output_mismatch;
    Alcotest.test_case "empty circuit" `Quick test_empty_circuit;
    Alcotest.test_case "constant circuit" `Quick test_constant_only_circuit;
  ]
