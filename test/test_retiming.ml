(* Retiming: graph extraction, FEAS min-period, min-area LP vs brute force,
   application legality, sequential equivalence of the result. *)

let st = Random.State.make [| 0x4E7 |]

let flush_compare c1 c2 ~cycles ~skip =
  let ni = List.length (Circuit.inputs c1) in
  let seq = List.init cycles (fun _ -> Array.init ni (fun _ -> Random.State.bool st)) in
  let t1 = Sim.run c1 ~init:(Array.make (Circuit.latch_count c1) false) ~inputs:seq in
  let t2 = Sim.run c2 ~init:(Array.make (Circuit.latch_count c2) false) ~inputs:seq in
  List.iteri
    (fun t o1 ->
      if t >= skip && o1 <> List.nth t2 t then Alcotest.fail "retimed behaviour differs")
    t1

let random_acyclic i =
  Gen.acyclic st
    ~name:(Printf.sprintf "r%d" i)
    ~inputs:(2 + Random.State.int st 4)
    ~gates:(15 + Random.State.int st 60)
    ~latches:(2 + Random.State.int st 8)
    ~outputs:(1 + Random.State.int st 3)
    ~enables:false

let random_feedback i =
  Gen.feedback st
    ~name:(Printf.sprintf "rf%d" i)
    ~inputs:(2 + Random.State.int st 3)
    ~gates:(20 + Random.State.int st 50)
    ~latches:(2 + Random.State.int st 6)
    ~outputs:(1 + Random.State.int st 3)

let test_rgraph_weights () =
  (* two latches in series between gates = edge weight 2 *)
  let c = Circuit.create "w2" in
  let a = Circuit.add_input c "a" in
  let g1 = Circuit.add_gate c Not [ a ] in
  let l1 = Circuit.add_latch c ~data:g1 () in
  let l2 = Circuit.add_latch c ~data:l1 () in
  let g2 = Circuit.add_gate c Not [ l2 ] in
  Circuit.mark_output c g2;
  Circuit.check c;
  let g = Rgraph.build c in
  let found = ref false in
  Vgraph.Digraph.iter_edges
    (fun _ e -> if e.weight = 2 then found := true)
    g.Rgraph.graph;
  Alcotest.(check bool) "weight-2 edge" true !found

let test_rgraph_rejects_enabled () =
  let c = Circuit.create "en" in
  let a = Circuit.add_input c "a" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.add_latch c ~enable:e ~data:a () in
  Circuit.mark_output c (Circuit.add_gate c Not [ q ]);
  Circuit.check c;
  try
    ignore (Rgraph.build c);
    Alcotest.fail "enabled latch accepted"
  with Invalid_argument _ -> ()

let test_latch_ring_auto_exposed () =
  (* a gate-free latch ring must survive via auto-exposure *)
  let c = Circuit.create "ring" in
  let q0 = Circuit.declare c ~name:"q0" () in
  let q1 = Circuit.add_latch c ~data:q0 () in
  Circuit.set_latch c q0 ~data:q1 ();
  let a = Circuit.add_input c "a" in
  Circuit.mark_output c (Circuit.add_gate c And [ a; q0 ]);
  Circuit.check c;
  let rt, _ = Retime.min_period c in
  Circuit.check rt;
  flush_compare c rt ~cycles:20 ~skip:10

let test_min_period_legal_and_better () =
  for i = 1 to 40 do
    let c = random_acyclic i in
    let rt, rep = Retime.min_period c in
    Alcotest.(check bool) "period not worse" true
      (rep.Retime.period_after <= rep.Retime.period_before);
    Alcotest.(check int) "delay agrees with report" rep.Retime.period_after
      (Circuit.delay rt);
    flush_compare c rt ~cycles:40 ~skip:20
  done

let test_min_period_feedback () =
  (* Feedback state need not flush, so behaviour is compared under the
     paper's exact 3-valued semantics (all power-up states), past the
     initialization transient that retiming may lengthen. *)
  for i = 1 to 12 do
    let c =
      Gen.feedback st
        ~name:(Printf.sprintf "rf%d" i)
        ~inputs:2 ~gates:(15 + Random.State.int st 25) ~latches:(2 + Random.State.int st 3)
        ~outputs:2
    in
    let rt, rep = Retime.min_period c in
    Alcotest.(check bool) "period not worse" true
      (rep.Retime.period_after <= rep.Retime.period_before);
    if Circuit.latch_count rt <= 10 then begin
      let cycles = 12 in
      let skip = Circuit.latch_count c + Circuit.latch_count rt + 2 in
      let seq = Gen.random_inputs st c ~cycles in
      let t1 = Sim.run_exact ~max_latches:10 c ~inputs:seq in
      let t2 = Sim.run_exact ~max_latches:10 rt ~inputs:seq in
      List.iteri
        (fun t o1 ->
          let o2 = List.nth t2 t in
          if t >= skip then
            Array.iteri
              (fun j v1 ->
                (* a defined original output must stay defined and equal *)
                if not (Sim.tv_equal v1 Sim.X) && not (Sim.tv_equal v1 o2.(j)) then
                  Alcotest.fail "retimed exact-3v behaviour differs")
              o1)
        t1
    end
  done

let test_min_area_vs_bruteforce () =
  (* exhaustive check of the LP on small graphs: enumerate r in [-2..2]^V *)
  for i = 1 to 20 do
    let c =
      Gen.acyclic st
        ~name:(Printf.sprintf "ma%d" i)
        ~inputs:2 ~gates:(5 + Random.State.int st 8) ~latches:(2 + Random.State.int st 3)
        ~outputs:2 ~enables:false
    in
    let g = Rgraph.build c in
    let n = Vgraph.Digraph.node_count g.Rgraph.graph in
    if n <= 9 then begin
      let r =
        match Minarea.solve g with
        | Some r -> r
        | None -> Alcotest.fail "unconstrained min-area LP infeasible"
      in
      let cost = Rgraph.total_latches_after g ~r in
      (* brute force *)
      let best = ref max_int in
      let labels = Array.make n 0 in
      let rec go v =
        if v = n then begin
          if Rgraph.is_legal g ~r:labels then
            best := min !best (Rgraph.total_latches_after g ~r:labels)
        end
        else if v <= 1 then begin
          labels.(v) <- 0;
          go (v + 1) (* both hosts pinned *)
        end
        else
          for x = -2 to 2 do
            labels.(v) <- x;
            go (v + 1)
          done
      in
      go 0;
      Alcotest.(check bool) "legal" true (Rgraph.is_legal g ~r);
      Alcotest.(check int) "LP optimum = brute force" !best cost
    end
  done

let test_constrained_min_area () =
  for i = 1 to 25 do
    let c = random_acyclic (100 + i) in
    let period0 = Circuit.delay c in
    let rt, rep = Result.get_ok (Retime.constrained_min_area ~period:period0 c) in
    Alcotest.(check bool) "period respected" true (rep.Retime.period_after <= period0);
    flush_compare c rt ~cycles:40 ~skip:20;
    (* unconstrained can only be <= constrained in latches *)
    let _, rep_u = Retime.min_area c in
    Alcotest.(check bool) "unconstrained <= constrained" true
      (rep_u.Retime.latches_after <= rep.Retime.latches_after)
  done

let test_infeasible_period () =
  let c = Circuit.create "inf" in
  let a = Circuit.add_input c "a" in
  (* combinational path of depth 4 with no latch: period < 4 impossible *)
  let g = ref a in
  for _ = 1 to 4 do
    g := Circuit.add_gate c Not [ !g ]
  done;
  Circuit.mark_output c !g;
  Circuit.check c;
  match Retime.constrained_min_area ~period:2 c with
  | Error Retime.Infeasible_period -> ()
  | Ok _ -> Alcotest.fail "infeasible period accepted"

let test_exposed_latches_stay () =
  for i = 1 to 15 do
    let c = random_feedback (200 + i) in
    let plan = Feedback.plan_structural c in
    let exposed_names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
    let exposed s = List.mem (Circuit.signal_name c s) exposed_names in
    let rt, _ = Retime.min_period ~exposed c in
    (* every exposed latch survives with its name and stays a latch *)
    List.iter
      (fun n ->
        match Circuit.find_signal rt n with
        | None -> Alcotest.fail (Printf.sprintf "exposed latch %s vanished" n)
        | Some s -> (
            match Circuit.driver rt s with
            | Latch _ -> ()
            | Undriven | Input | Gate _ ->
                Alcotest.fail (Printf.sprintf "exposed %s no longer a latch" n)))
      exposed_names;
    flush_compare c rt ~cycles:40 ~skip:20
  done

let test_pipeline_balances () =
  let c = Workloads.pipeline ~name:"pb" ~width:6 ~stages:4 ~imbalance:5 ~seed:3 in
  let rt, rep = Retime.min_period c in
  Alcotest.(check bool) "pipeline delay improves" true
    (rep.Retime.period_after < rep.Retime.period_before);
  flush_compare c rt ~cycles:40 ~skip:20

(* ---- fast engines vs retained references ---- *)

let random_rgraph i =
  let c = if i mod 2 = 0 then random_acyclic i else random_feedback i in
  Rgraph.build c

let labels = Alcotest.(list int)

let test_feas_fast_vs_naive () =
  (* the incremental warm-started search must return the very same minimal
     labeling as the cold-start reference, not just the same period *)
  for i = 1 to 30 do
    let g = random_rgraph (300 + i) in
    let p_fast, r_fast = Feas.min_period g in
    let p_naive, r_naive = Feas.Naive.min_period g in
    Alcotest.(check int) "periods agree" p_naive p_fast;
    Alcotest.check labels "labels agree" (Array.to_list r_naive)
      (Array.to_list r_fast);
    Alcotest.(check bool) "legal" true (Rgraph.is_legal g ~r:r_fast);
    Alcotest.(check bool) "meets period" true (Feas.period_of g ~r:r_fast <= p_fast)
  done

let test_feas_fast_vs_naive_pooled () =
  Par.Pool.with_pool ~jobs:3 @@ fun pool ->
  for i = 1 to 12 do
    let g = random_rgraph (400 + i) in
    let p_fast, r_fast = Feas.min_period ~pool g in
    let p_naive, r_naive = Feas.Naive.min_period g in
    Alcotest.(check int) "periods agree (pool)" p_naive p_fast;
    Alcotest.check labels "labels agree (pool)" (Array.to_list r_naive)
      (Array.to_list r_fast)
  done

let test_feas_feasible_differential () =
  (* same verdict and same labeling at every period, warm and cold *)
  for i = 1 to 20 do
    let g = random_rgraph (500 + i) in
    let p_min, r_min = Feas.Naive.min_period g in
    List.iter
      (fun period ->
        let fast = Feas.feasible g ~period in
        let naive = Feas.Naive.feasible g ~period in
        (match (fast, naive) with
        | Some rf, Some rn ->
            Alcotest.check labels "feasible labels agree" (Array.to_list rn)
              (Array.to_list rf)
        | None, None -> ()
        | _ -> Alcotest.fail "feasibility verdicts differ");
        (* warm start from the min-period labeling (legal by construction) *)
        match
          (Feas.feasible ~init:r_min g ~period, Feas.Naive.feasible ~init:r_min g ~period)
        with
        | Some rf, Some rn ->
            Alcotest.check labels "warm labels agree" (Array.to_list rn)
              (Array.to_list rf)
        | None, None -> ()
        | _ -> Alcotest.fail "warm feasibility verdicts differ")
      [ p_min - 1; p_min; p_min + 1 ]
  done

let test_feas_arrival_differential () =
  for i = 1 to 20 do
    let g = random_rgraph (600 + i) in
    let _, r = Feas.Naive.min_period g in
    Alcotest.check labels "arrival agrees"
      (Array.to_list (Feas.Naive.arrival g ~r))
      (Array.to_list (Feas.arrival g ~r));
    Alcotest.(check int) "period_of agrees" (Feas.Naive.period_of g ~r)
      (Feas.period_of g ~r)
  done

let test_minarea_fast_vs_reference () =
  (* both engines must reach the same optimal latch total (labelings may
     differ between equal-cost optima) and agree on infeasibility *)
  for i = 1 to 15 do
    let g = random_rgraph (700 + i) in
    let p_min, _ = Feas.Naive.min_period g in
    List.iter
      (fun period ->
        match
          (Minarea.solve ~period g, Minarea.solve ~period ~reference:true g)
        with
        | Some rf, Some rr ->
            Alcotest.(check bool) "fast legal" true (Rgraph.is_legal g ~r:rf);
            Alcotest.(check bool) "fast meets period" true
              (Feas.period_of g ~r:rf <= period);
            Alcotest.(check bool) "reference meets period" true
              (Feas.period_of g ~r:rr <= period);
            Alcotest.(check int) "same latch total"
              (Rgraph.total_latches_after g ~r:rr)
              (Rgraph.total_latches_after g ~r:rf)
        | None, None ->
            Alcotest.(check bool) "below minimum period" true (period < p_min)
        | _ -> Alcotest.fail "min-area feasibility verdicts differ")
      [ p_min - 1; p_min; p_min + 2 ]
  done

(* ---- latch classes (Fig. 16) ---- *)

let test_classes_grouping () =
  let c = Circuit.create "cls" in
  let d = Circuit.add_input c "d" in
  let e1 = Circuit.add_input c "e1" in
  let _q1 = Circuit.add_latch c ~enable:e1 ~data:d () in
  let _q2 = Circuit.add_latch c ~enable:e1 ~data:d () in
  let _q3 = Circuit.add_latch c ~data:d () in
  Alcotest.(check int) "two classes" 2 (List.length (Classes.classes c))

let test_forward_move_legality () =
  let c = Circuit.create "fwd" in
  let d1 = Circuit.add_input c "d1" in
  let d2 = Circuit.add_input c "d2" in
  let e = Circuit.add_input c "e" in
  let q1 = Circuit.add_latch c ~enable:e ~data:d1 () in
  let q2 = Circuit.add_latch c ~enable:e ~data:d2 () in
  let g = Circuit.add_gate c And [ q1; q2 ] in
  Circuit.mark_output c g;
  Circuit.check c;
  Alcotest.(check bool) "same class movable" true (Classes.can_forward_move c ~gate:g);
  (* different classes: not movable *)
  let c2 = Circuit.create "fwd2" in
  let d1 = Circuit.add_input c2 "d1" in
  let e1 = Circuit.add_input c2 "e1" in
  let e2 = Circuit.add_input c2 "e2" in
  let q1 = Circuit.add_latch c2 ~enable:e1 ~data:d1 () in
  let q2 = Circuit.add_latch c2 ~enable:e2 ~data:d1 () in
  let g2 = Circuit.add_gate c2 And [ q1; q2 ] in
  Circuit.mark_output c2 g2;
  Circuit.check c2;
  Alcotest.(check bool) "mixed classes blocked" false (Classes.can_forward_move c2 ~gate:g2)

let test_forward_move_preserves () =
  (* Fig. 16: moving same-class enabled latches across a gate preserves the
     sequential function when power-up states are matched (we check the
     flushed behaviour: after the first enable pulse the outputs agree) *)
  let c = Circuit.create "fwd3" in
  let d1 = Circuit.add_input c "d1" in
  let d2 = Circuit.add_input c "d2" in
  let e = Circuit.add_input c "e" in
  let q1 = Circuit.add_latch c ~enable:e ~data:d1 () in
  let q2 = Circuit.add_latch c ~enable:e ~data:d2 () in
  let g = Circuit.add_gate c Or [ q1; q2 ] in
  Circuit.mark_output c g;
  Circuit.check c;
  let moved = Classes.forward_move c ~gate:g in
  Circuit.check moved;
  (* drive with enable always on after cycle 0 -> states flush *)
  let seq =
    List.init 20 (fun _ ->
        [| Random.State.bool st; Random.State.bool st; true |])
  in
  let t1 = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs:seq in
  let t2 = Sim.run moved ~init:(Array.make (Circuit.latch_count moved) false) ~inputs:seq in
  List.iteri
    (fun t o1 -> if t >= 2 && o1 <> List.nth t2 t then Alcotest.fail "move changed function")
    t1

let suite =
  [
    Alcotest.test_case "rgraph edge weights" `Quick test_rgraph_weights;
    Alcotest.test_case "rgraph rejects enabled latches" `Quick test_rgraph_rejects_enabled;
    Alcotest.test_case "latch ring auto-exposed" `Quick test_latch_ring_auto_exposed;
    Alcotest.test_case "min-period legal + better" `Quick test_min_period_legal_and_better;
    Alcotest.test_case "min-period with feedback" `Quick test_min_period_feedback;
    Alcotest.test_case "min-area LP = brute force" `Quick test_min_area_vs_bruteforce;
    Alcotest.test_case "constrained min-area" `Quick test_constrained_min_area;
    Alcotest.test_case "infeasible period rejected" `Quick test_infeasible_period;
    Alcotest.test_case "exposed latches pinned" `Quick test_exposed_latches_stay;
    Alcotest.test_case "pipeline balancing" `Quick test_pipeline_balances;
    Alcotest.test_case "FEAS fast = naive (min period)" `Quick test_feas_fast_vs_naive;
    Alcotest.test_case "FEAS fast = naive (pooled)" `Quick test_feas_fast_vs_naive_pooled;
    Alcotest.test_case "FEAS feasible differential" `Quick test_feas_feasible_differential;
    Alcotest.test_case "FEAS arrival differential" `Quick test_feas_arrival_differential;
    Alcotest.test_case "min-area fast = reference" `Quick test_minarea_fast_vs_reference;
    Alcotest.test_case "latch class grouping" `Quick test_classes_grouping;
    Alcotest.test_case "forward move legality" `Quick test_forward_move_legality;
    Alcotest.test_case "forward move preserves" `Quick test_forward_move_preserves;
  ]

(* ---- single-class retiming (Legl reduction) ---- *)

let single_class_circuit st ~gates ~latches =
  let c = Circuit.create "sc" in
  let ins = List.init 3 (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i)) in
  let en = Circuit.add_input c "en" in
  let pool = ref ins in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let total = gates + latches in
  for k = 1 to total do
    if k mod (total / max 1 latches) = 0 && Circuit.latch_count c < latches then
      pool := Circuit.add_latch c ~enable:en ~data:(pick ()) () :: !pool
    else begin
      let fn : Circuit.gate_fn =
        match Random.State.int st 5 with
        | 0 -> And | 1 -> Or | 2 -> Nand | 3 -> Xor | _ -> Not
      in
      let arity = match fn with Not -> 1 | _ -> 2 in
      pool := Circuit.add_gate c fn (List.init arity (fun _ -> pick ())) :: !pool
    end
  done;
  Circuit.mark_output c (pick ());
  Circuit.mark_output c (pick ());
  Circuit.check c;
  c

let test_single_class_detection () =
  let c = single_class_circuit st ~gates:20 ~latches:4 in
  Alcotest.(check bool) "detected" true (Classes.single_class_enable c <> None);
  (* mixed classes rejected *)
  let m = Circuit.create "mixed" in
  let d = Circuit.add_input m "d" in
  let e = Circuit.add_input m "e" in
  let _q1 = Circuit.add_latch m ~enable:e ~data:d () in
  let _q2 = Circuit.add_latch m ~data:d () in
  Circuit.mark_output m d;
  Circuit.check m;
  Alcotest.(check bool) "mixed rejected" true (Classes.single_class_enable m = None);
  (* gate-driven enable rejected *)
  let g = Circuit.create "gen" in
  let d = Circuit.add_input g "d" in
  let e = Circuit.add_gate g Not [ d ] in
  let _q = Circuit.add_latch g ~enable:e ~data:d () in
  Circuit.mark_output g d;
  Circuit.check g;
  Alcotest.(check bool) "derived enable rejected" true (Classes.single_class_enable g = None)

let test_single_class_retime_verified () =
  (* the Legl reduction: retimed single-class circuits verify by EDBF *)
  for i = 1 to 10 do
    ignore i;
    let c = single_class_circuit st ~gates:(20 + Random.State.int st 40) ~latches:(3 + Random.State.int st 4) in
    let rt, rep = Classes.min_period_single_class c in
    Alcotest.(check bool) "period not worse" true
      (rep.Retime.period_after <= rep.Retime.period_before);
    (* all surviving latches still single-class (dangling latches may have
       been pruned away entirely) *)
    Alcotest.(check bool) "class preserved" true
      (Circuit.latch_count rt = 0 || Classes.single_class_enable rt <> None);
    match Result.get_ok (Verify.check c rt) with
    | { Verify.verdict = Verify.Equivalent; stats } ->
        Alcotest.(check bool) "edbf used" true (stats.Verify.method_ = Verify.Edbf_method)
    | { verdict = Verify.Inequivalent _; _ } ->
        Alcotest.fail "single-class retime not verified"
    | { verdict = Verify.Undecided r; _ } ->
        Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_single_class_retime_simulated () =
  (* belt and braces: simulation with sparse enables, matched flush *)
  for i = 1 to 10 do
    ignore i;
    let c = single_class_circuit st ~gates:30 ~latches:4 in
    let rt, _ = Classes.min_period_single_class c in
    let cycles = 60 in
    let seq =
      List.init cycles (fun t ->
          (* inputs random; enable on ~half the cycles, always early *)
          [| Random.State.bool st; Random.State.bool st; Random.State.bool st;
             t < 20 || Random.State.bool st |])
    in
    let t1 = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs:seq in
    let t2 = Sim.run rt ~init:(Array.make (Circuit.latch_count rt) false) ~inputs:seq in
    List.iteri
      (fun t o1 ->
        if t >= 30 && o1 <> List.nth t2 t then
          Alcotest.fail "single-class retime behaviour differs")
      t1
  done

let test_single_class_min_area () =
  let c = single_class_circuit st ~gates:40 ~latches:5 in
  let period = Circuit.delay c in
  let rt, rep = Result.get_ok (Classes.constrained_min_area_single_class ~period c) in
  Alcotest.(check bool) "period respected" true (rep.Retime.period_after <= period);
  match Result.get_ok (Verify.check c rt) with
  | { Verify.verdict = Verify.Equivalent; _ } -> ()
  | { verdict = Verify.Inequivalent _; _ } ->
      Alcotest.fail "single-class min-area not verified"
  | { verdict = Verify.Undecided r; _ } ->
      Alcotest.failf "unbudgeted check undecided: %s" r

let suite =
  suite
  @ [
      Alcotest.test_case "single-class detection" `Quick test_single_class_detection;
      Alcotest.test_case "single-class retime verified" `Quick test_single_class_retime_verified;
      Alcotest.test_case "single-class retime simulated" `Quick test_single_class_retime_simulated;
      Alcotest.test_case "single-class min-area" `Quick test_single_class_min_area;
    ]
