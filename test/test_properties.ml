(* Property-based tests (QCheck, registered through QCheck_alcotest). *)

let count = 100

(* ---- generators ---- *)

let expr_gen =
  (* (nvars, expr) for the BDD/Boolean properties *)
  QCheck.Gen.(
    sized_size (int_range 1 40) (fun sz st ->
        let nvars = 1 + int_bound 4 st in
        let rec go depth st =
          if depth = 0 || int_bound 3 st = 0 then
            if int_bound 7 st = 0 then Test_bdd.Const (bool st)
            else Test_bdd.V (int_bound (nvars - 1) st)
          else
            match int_bound 4 st with
            | 0 -> Test_bdd.Not (go (depth - 1) st)
            | 1 -> Test_bdd.And (go (depth - 1) st, go (depth - 1) st)
            | 2 -> Test_bdd.Or (go (depth - 1) st, go (depth - 1) st)
            | 3 -> Test_bdd.Xor (go (depth - 1) st, go (depth - 1) st)
            | _ -> Test_bdd.Ite (go (depth - 1) st, go (depth - 1) st, go (depth - 1) st)
        in
        (nvars, go (min sz 7) st)))

let expr_arb = QCheck.make expr_gen

let circuit_gen ~enables =
  QCheck.Gen.(
    map
      (fun (seed, gates, latches) ->
        let st = Random.State.make [| seed; 0xDEAD |] in
        Gen.acyclic st
          ~name:(Printf.sprintf "qc%d" seed)
          ~inputs:3
          ~gates:(10 + gates)
          ~latches:(1 + latches)
          ~outputs:2 ~enables)
      (triple (int_bound 100000) (int_bound 40) (int_bound 5)))

let circuit_arb ~enables =
  QCheck.make
    ~print:(fun c -> Netlist_io.to_string c)
    (circuit_gen ~enables)

(* ---- BDD properties ---- *)

let prop_bdd_semantics =
  QCheck.Test.make ~count ~name:"bdd computes the expression"
    expr_arb
    (fun (nvars, e) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e in
      let ok = ref true in
      for m = 0 to (1 lsl nvars) - 1 do
        let env i = m land (1 lsl i) <> 0 in
        if Bdd.eval man f env <> Test_bdd.eval_expr env e then ok := false
      done;
      !ok)

let prop_bdd_negation_involution =
  QCheck.Test.make ~count ~name:"bdd double negation"
    expr_arb
    (fun (_, e) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e in
      Bdd.equal f (Bdd.not_ man (Bdd.not_ man f)))

let prop_bdd_or_absorption =
  QCheck.Test.make ~count ~name:"bdd absorption f+(f·g)=f"
    (QCheck.pair expr_arb expr_arb)
    (fun ((_, e1), (_, e2)) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e1 and g = Test_bdd.build man e2 in
      Bdd.equal f (Bdd.or_ man f (Bdd.and_ man f g)))

let prop_bdd_quantifier_duality =
  QCheck.Test.make ~count ~name:"bdd ∃x.f = ¬∀x.¬f"
    expr_arb
    (fun (nvars, e) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e in
      let v = nvars - 1 in
      Bdd.equal (Bdd.exists man [ v ] f)
        (Bdd.not_ man (Bdd.forall man [ v ] (Bdd.not_ man f))))

let prop_bdd_unate_cofactor_order =
  QCheck.Test.make ~count ~name:"bdd unate iff cofactor order"
    expr_arb
    (fun (nvars, e) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e in
      let v = nvars - 1 in
      let f0 = Bdd.cofactor man f ~var:v false in
      let f1 = Bdd.cofactor man f ~var:v true in
      Bdd.is_positive_unate man f ~var:v = Bdd.leq man f0 f1)

(* ---- AIG properties ---- *)

let prop_aig_matches_bdd =
  QCheck.Test.make ~count ~name:"aig and bdd agree on expressions"
    expr_arb
    (fun (nvars, e) ->
      let man = Bdd.man () in
      let f = Test_bdd.build man e in
      let g = Aig.create () in
      let vars = Array.init nvars (fun _ -> Aig.input g) in
      let rec build = function
        | Test_bdd.V i -> vars.(i)
        | Test_bdd.Const b -> if b then Aig.lit_true else Aig.lit_false
        | Test_bdd.Not x -> Aig.neg (build x)
        | Test_bdd.And (x, y) -> Aig.and_ g (build x) (build y)
        | Test_bdd.Or (x, y) -> Aig.or_ g (build x) (build y)
        | Test_bdd.Xor (x, y) -> Aig.xor_ g (build x) (build y)
        | Test_bdd.Ite (s, t, e') -> Aig.mux g (build s) (build t) (build e')
      in
      let root = build e in
      let ok = ref true in
      for m = 0 to (1 lsl nvars) - 1 do
        let env = Array.init nvars (fun i -> m land (1 lsl i) <> 0) in
        if Aig.eval g env root <> Bdd.eval man f (fun i -> env.(i)) then ok := false
      done;
      !ok)

(* ---- cone-signature properties (the verdict-store cache key) ---- *)

(* The persistent verdict store keys on [Aig.cone_signature] with blank
   input labels, so these invariants are exactly what makes cross-run
   verdict transfer sound: renaming inputs or reordering graph
   construction must not change the key, and a key collision must only
   ever happen between equivalent cone pairs. *)

let pair_sig p =
  Aig.cone_signature p.Seqprob.graph
    ~input_label:(fun _ -> "")
    [ p.Seqprob.outs1; p.Seqprob.outs2 ]

let side_sig p side =
  Aig.cone_signature p.Seqprob.graph
    ~input_label:(fun _ -> "")
    [ (if side = 1 then p.Seqprob.outs1 else p.Seqprob.outs2) ]

let comb_of_seed ?(name = "sig") seed =
  let st = Random.State.make [| seed; 0x516 |] in
  Gen.comb st ~name ~inputs:4 ~gates:25 ~outputs:2

let pair_problem a b = Result.get_ok (Seqprob.of_circuits a b)

let prop_signature_ignores_input_names =
  QCheck.Test.make ~count ~name:"cone signature invariant under input renaming"
    QCheck.(int_bound 100000)
    (fun seed ->
      let c = comb_of_seed seed in
      let r = Gen.rename_inputs ~prefix:"zz_" c in
      pair_sig (pair_problem c (Gen.negate_one_output c))
      = pair_sig (pair_problem r (Gen.negate_one_output r)))

let prop_signature_ignores_build_order =
  QCheck.Test.make ~count ~name:"cone signature invariant under outside insertions"
    (QCheck.pair expr_arb QCheck.(int_range 1 20))
    (fun ((nvars, e), junk) ->
      (* nodes created before and outside the cone shift every id in the
         cone uniformly; the signature may not notice *)
      let build_sig ~junk =
        let g = Aig.create () in
        for _ = 1 to junk do
          let a = Aig.input g and b = Aig.input g in
          ignore (Aig.and_ g a b)
        done;
        let vars = Array.init nvars (fun _ -> Aig.input g) in
        let rec build = function
          | Test_bdd.V i -> vars.(i)
          | Test_bdd.Const b -> if b then Aig.lit_true else Aig.lit_false
          | Test_bdd.Not x -> Aig.neg (build x)
          | Test_bdd.And (x, y) -> Aig.and_ g (build x) (build y)
          | Test_bdd.Or (x, y) -> Aig.or_ g (build x) (build y)
          | Test_bdd.Xor (x, y) -> Aig.xor_ g (build x) (build y)
          | Test_bdd.Ite (s, t, e') -> Aig.mux g (build s) (build t) (build e')
        in
        let root = build e in
        Aig.cone_signature g ~input_label:(fun _ -> "") [ [ root ] ]
      in
      build_sig ~junk:0 = build_sig ~junk)

let prop_signature_distinguishes =
  QCheck.Test.make ~count ~name:"distinct cone pairs get distinct signatures"
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (s1, s2) ->
      let a = comb_of_seed ~name:"sa" s1 and b = comb_of_seed ~name:"sb" s2 in
      let bug = Gen.negate_one_output a in
      (* a negated output is never equivalent, so its pair may not collide *)
      pair_sig (pair_problem a a) <> pair_sig (pair_problem a bug)
      && side_sig (pair_problem a a) 1 <> side_sig (pair_problem bug bug) 1
      (* store soundness: an always-equivalent pair's key must differ from
         an always-inequivalent pair's key — a collision would transfer
         the wrong verdict.  (Keys CAN legitimately collide between two
         equivalent pairs over different circuits: the signature names a
         pair shape, not a function, and that transfer is sound.) *)
      && pair_sig (pair_problem a a)
         <> pair_sig (pair_problem b (Gen.negate_one_output b)))

(* ---- netlist properties ---- *)

let prop_roundtrip_behaviour =
  QCheck.Test.make ~count:40 ~name:"netlist parse∘print preserves behaviour"
    (circuit_arb ~enables:true)
    (fun c ->
      let c2 = Netlist_io.parse (Netlist_io.to_string c) in
      let st = Random.State.make [| 1 |] in
      let inputs = Gen.random_inputs st c ~cycles:10 in
      (* the parser may renumber latches: match power-up state by name *)
      let names1 = List.map (Circuit.signal_name c) (Circuit.latches c) in
      let names2 = List.map (Circuit.signal_name c2) (Circuit.latches c2) in
      let init1 = Array.init (List.length names1) (fun i -> i mod 2 = 0) in
      let init2 =
        Array.of_list
          (List.map
             (fun n ->
               let rec find i = function
                 | [] -> false
                 | m :: _ when m = n -> init1.(i)
                 | _ :: tl -> find (i + 1) tl
               in
               find 0 names1)
             names2)
      in
      Sim.run c ~init:init1 ~inputs = Sim.run c2 ~init:init2 ~inputs)

let prop_sweep_preserves =
  QCheck.Test.make ~count:40 ~name:"sweep preserves sequential function"
    (circuit_arb ~enables:true)
    (fun c ->
      let o = Sweep_pass.run c in
      (* compare on the surviving latch set *)
      let st = Random.State.make [| 2 |] in
      let inputs = Gen.random_inputs st c ~cycles:15 in
      let names1 = List.map (Circuit.signal_name c) (Circuit.latches c) in
      let names2 = List.map (Circuit.signal_name o) (Circuit.latches o) in
      let init1 = Array.init (List.length names1) (fun i -> i mod 3 = 0) in
      let init2 =
        Array.of_list
          (List.map
             (fun n ->
               let rec find i = function
                 | [] -> false
                 | m :: _ when m = n -> init1.(i)
                 | _ :: tl -> find (i + 1) tl
               in
               find 0 names1)
             names2)
      in
      Sim.run c ~init:init1 ~inputs = Sim.run o ~init:init2 ~inputs)

let prop_retime_flush_equivalent =
  QCheck.Test.make ~count:30 ~name:"min-period retiming flush-equivalent"
    (circuit_arb ~enables:false)
    (fun c ->
      let rt, rep = Retime.min_period c in
      let st = Random.State.make [| 3 |] in
      let cycles = 30 in
      let skip = 15 in
      let inputs = Gen.random_inputs st c ~cycles in
      let t1 = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs in
      let t2 = Sim.run rt ~init:(Array.make (Circuit.latch_count rt) false) ~inputs in
      rep.Retime.period_after <= rep.Retime.period_before
      && List.for_all2
           (fun a b -> a = b)
           (List.filteri (fun t _ -> t >= skip) t1)
           (List.filteri (fun t _ -> t >= skip) t2))

let prop_cbf_verifies_retime =
  QCheck.Test.make ~count:25 ~name:"CBF check proves retime+synth"
    (circuit_arb ~enables:false)
    (fun c ->
      let o, _ = Retime.min_period (Synth_script.delay_script c) in
      (Result.get_ok (Verify.check c o)).Verify.verdict = Verify.Equivalent)

let prop_cbf_catches_negation =
  QCheck.Test.make ~count:25 ~name:"CBF check catches negated output"
    (circuit_arb ~enables:false)
    (fun c ->
      let bug = Gen.negate_one_output c in
      match Verify.check c bug with
      | Ok { Verify.verdict = Verify.Inequivalent (Some cex); _ } ->
          (* replay on the original circuits *)
          Verify.confirm_cex c bug cex
      | _ -> false)

let prop_mfvs_sound =
  QCheck.Test.make ~count ~name:"mfvs always a feedback set"
    QCheck.(pair (int_bound 100000) (int_bound 40))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed |] in
      let g = Vgraph.Digraph.create () in
      let n = 5 + (extra / 4) in
      Vgraph.Digraph.add_nodes g n;
      for _ = 1 to 2 * n do
        ignore
          (Vgraph.Digraph.add_edge g (Random.State.int st n) (Random.State.int st n))
      done;
      let s = Vgraph.Mfvs.solve g ~candidates:(fun _ -> true) in
      Vgraph.Mfvs.is_feedback_set g s)

let prop_sat_model_sound =
  QCheck.Test.make ~count ~name:"sat models satisfy the formula"
    QCheck.(pair (int_bound 100000) (int_bound 30))
    (fun (seed, nclauses) ->
      let st = Random.State.make [| seed |] in
      let nvars = 1 + Random.State.int st 12 in
      let clauses =
        List.init (1 + nclauses) (fun _ ->
            List.init
              (1 + Random.State.int st 3)
              (fun _ ->
                let v = 1 + Random.State.int st nvars in
                if Random.State.bool st then v else -v))
      in
      let s = Sat.create () in
      List.iter (Sat.add_clause s) clauses;
      match Sat.solve s with
      | Sat.Unsat -> true
      | Sat.Unknown -> false
      | Sat.Sat ->
          List.for_all
            (fun cl ->
              List.exists
                (fun l -> if l > 0 then Sat.value s l else not (Sat.value s (-l)))
                cl)
            clauses)

(* retiming theory invariants: for the computed min-area labels, every
   cycle keeps its weight and every I/O path keeps its weight *)
let prop_retiming_invariants =
  QCheck.Test.make ~count:30 ~name:"retiming preserves cycle and I/O weights"
    (circuit_arb ~enables:false)
    (fun c ->
      let g = Rgraph.build c in
      let r =
        match Minarea.solve g with
        | Some r -> r
        | None -> QCheck.Test.fail_report "unconstrained min-area infeasible"
      in
      (* legality *)
      Rgraph.is_legal g ~r
      &&
      (* per-edge weight change telescopes: total around any cycle is 0.
         Check on the strongly connected components via a random walk:
         sum of (w_r - w) along any closed walk must be 0; we verify the
         equivalent nodewise property directly from the definition. *)
      let ok = ref true in
      Vgraph.Digraph.iter_edges
        (fun _ e ->
          let w_r = e.weight + r.(e.dst) - r.(e.src) in
          if w_r < 0 then ok := false)
        g.Rgraph.graph;
      (* I/O path weights: host labels are pinned at 0, so any path from
         host to host_sink keeps its total weight; verify on the direct
         PO origins *)
      Array.iter
        (fun (o : Rgraph.origin) ->
          let w_r = o.weight + r.(Rgraph.host_sink) - r.(o.vertex) in
          if w_r < 0 then ok := false)
        g.Rgraph.po_origin;
      !ok)

let prop_feas_reaches_optimum =
  QCheck.Test.make ~count:20 ~name:"FEAS period is achieved by the result"
    (circuit_arb ~enables:false)
    (fun c ->
      let rt, rep = Retime.min_period c in
      Circuit.delay rt = rep.Retime.period_after
      && rep.Retime.period_after <= rep.Retime.period_before)

let prop_exposure_breaks_cycles =
  QCheck.Test.make ~count:30 ~name:"exposure leaves no unexposed cycle"
    QCheck.(pair (int_bound 100000) (int_bound 5))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; 77 |] in
      let c =
        Gen.feedback st ~name:"px" ~inputs:3
          ~gates:(15 + (extra * 8))
          ~latches:(2 + extra) ~outputs:2
      in
      let plan = Feedback.plan_structural c in
      let g, latches = Feedback.latch_graph c in
      let exposed = Array.make (Array.length latches) false in
      Array.iteri
        (fun i l -> if List.mem l plan.Feedback.exposed then exposed.(i) <- true)
        latches;
      let remaining =
        Vgraph.Digraph.induced g ~keep:(fun i -> not exposed.(i))
      in
      Vgraph.Topo.is_acyclic remaining)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_retiming_invariants;
      prop_feas_reaches_optimum;
      prop_exposure_breaks_cycles;
      prop_bdd_semantics;
      prop_bdd_negation_involution;
      prop_bdd_or_absorption;
      prop_bdd_quantifier_duality;
      prop_bdd_unate_cofactor_order;
      prop_aig_matches_bdd;
      prop_signature_ignores_input_names;
      prop_signature_ignores_build_order;
      prop_signature_distinguishes;
      prop_roundtrip_behaviour;
      prop_sweep_preserves;
      prop_retime_flush_equivalent;
      prop_cbf_verifies_retime;
      prop_cbf_catches_negation;
      prop_mfvs_sound;
      prop_sat_model_sound;
    ]
