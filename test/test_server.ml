(* The verification server: wire protocol, concurrent clients, admission
   shedding, per-request budgets, graceful drain.  Every test runs a real
   in-process server over a Unix socket — the same code path as
   [seqver serve]. *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_srv_%d_%d.sock" (Unix.getpid ()) !n)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_srvstore_%d_%d" (Unix.getpid ()) !n)

let with_server ?(executors = 2) ?(pool_jobs = 2) ?(max_pending = 64)
    ?cache_dir ?metrics_addr ?trace_sample ?slow_ms f =
  let base = Server.default_config ~socket_path:(fresh_sock ()) in
  let cfg =
    {
      base with
      Server.executors;
      pool_jobs;
      max_pending;
      cache_dir;
      metrics_addr;
      trace_sample = Option.value ~default:base.Server.trace_sample trace_sample;
      slow_ms = Option.value ~default:base.Server.slow_ms slow_ms;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let c = Server.Client.connect ~retries:50 cfg.Server.socket_path in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f cfg c))

(* JSON path accessors over Sjson *)
let sget j path =
  List.fold_left (fun a k -> Option.bind a (Sjson.member k)) (Some j) path

let sint j path = Option.bind (sget j path) Sjson.get_int
let sstr j path = Option.bind (sget j path) Sjson.get_string
let sbool j path = Option.bind (sget j path) Sjson.get_bool
let sfloat j path = Option.bind (sget j path) Sjson.get_float

let check_ok msg j = Alcotest.(check (option bool)) msg (Some true) (sbool j [ "ok" ])

(* a raw connection for byte-level tests (malformed lines, split
   send/receive around a drain) *)
type raw = { rfd : Unix.file_descr; ric : in_channel }

let raw_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { rfd = fd; ric = Unix.in_channel_of_descr fd }

let raw_send r line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write r.rfd b !off (n - !off)
  done

let raw_recv r = Sjson.parse (input_line r.ric)
let raw_close r = try Unix.close r.rfd with Unix.Unix_error _ -> ()

let fifo_text style = Netlist_io.to_string (Workloads.fifo ~entries:8 ~width:4 ~style ())
let fifo_bug_text () =
  Netlist_io.to_string (Workloads.fifo ~bug:true ~entries:8 ~width:4 ~style:`Mux ())

let check_req ?(id = 1) ?engine ?timeout left right =
  Sjson.Obj
    ([
       ("id", Sjson.Int id);
       ("op", Sjson.String "check");
       ("left", Sjson.String left);
       ("right", Sjson.String right);
     ]
    @ (match engine with Some e -> [ ("engine", Sjson.String e) ] | None -> [])
    @ match timeout with Some s -> [ ("timeout", Sjson.Float s) ] | None -> [])

(* ---- protocol basics ---- *)

let test_ping () =
  with_server (fun _ c ->
      let r =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 42); ("op", String "ping") ])
      in
      check_ok "ok" r;
      Alcotest.(check (option int)) "id echoed" (Some 42) (sint r [ "id" ]);
      Alcotest.(check (option bool)) "pong" (Some true) (sbool r [ "pong" ]))

let test_check_equivalent () =
  with_server (fun _ c ->
      (* two genuinely different implementations of the same FIFO, sent as
         inline netlist text; exposure defaults to "auto" *)
      let r =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "verdict" (Some "equivalent")
        (sstr r [ "verdict" ]);
      Alcotest.(check bool) "method reported" true (sstr r [ "method" ] <> None);
      Alcotest.(check bool) "phase timings present" true
        (sget r [ "phases"; "unroll_seconds" ] <> None
        && sget r [ "phases"; "sweep_cpu_seconds" ] <> None);
      Alcotest.(check bool) "counters present" true
        (sint r [ "counters"; "partitions" ] <> None);
      (* suite circuits by @name resolve too *)
      let r2 = Server.Client.request c (check_req ~id:2 "@minmax10" "@minmax10") in
      check_ok "ok @name" r2;
      Alcotest.(check (option string)) "@name verdict" (Some "equivalent")
        (sstr r2 [ "verdict" ]))

let test_check_inequivalent () =
  with_server (fun _ c ->
      let r =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_bug_text ()))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "verdict" (Some "inequivalent")
        (sstr r [ "verdict" ]);
      (* a certified counterexample carries the assignment *)
      match sbool r [ "certified" ] with
      | Some true ->
          Alcotest.(check bool) "cex present" true (sget r [ "cex" ] <> None)
      | Some false -> ()
      | None -> Alcotest.fail "inequivalent response must say certified")

let test_request_limits () =
  with_server (fun _ c ->
      (* an already-expired per-request deadline: the engine gives up
         before doing any work, deterministically *)
      let mk name tree =
        let c = Circuit.create name in
        let ins =
          List.init 14 (fun i -> Circuit.add_input c (Printf.sprintf "p%d" i))
        in
        let out =
          if tree then begin
            let rec pair = function
              | a :: b :: tl -> Circuit.add_gate c Xor [ a; b ] :: pair tl
              | rest -> rest
            in
            let rec build = function [ x ] -> x | xs -> build (pair xs) in
            build ins
          end
          else
            List.fold_left
              (fun acc i -> Circuit.add_gate c Xor [ acc; i ])
              (List.hd ins) (List.tl ins)
        in
        Circuit.mark_output c out;
        Circuit.check c;
        Netlist_io.to_string c
      in
      let r =
        Server.Client.request c
          (check_req ~engine:"sat" ~timeout:0.0 (mk "uchain" false)
             (mk "utree" true))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "expired budget -> undecided"
        (Some "undecided")
        (sstr r [ "verdict" ]))

(* ---- errors never kill the connection ---- *)

let test_errors_and_survival () =
  with_server (fun cfg c ->
      let r = Server.Client.request c Sjson.(Obj [ ("op", String "frob") ]) in
      Alcotest.(check (option bool)) "unknown op rejected" (Some false)
        (sbool r [ "ok" ]);
      let r =
        Server.Client.request c Sjson.(Obj [ ("id", Int 7) ])
      in
      Alcotest.(check (option bool)) "missing op rejected" (Some false)
        (sbool r [ "ok" ]);
      Alcotest.(check (option int)) "id echoed on error" (Some 7)
        (sint r [ "id" ]);
      let r = Server.Client.request c (check_req "@no_such_circuit" "@minmax10") in
      Alcotest.(check (option bool)) "unknown circuit rejected" (Some false)
        (sbool r [ "ok" ]);
      Alcotest.(check bool) "error message present" true
        (sstr r [ "error" ] <> None);
      (* malformed JSON on a raw connection: error response, and the SAME
         connection keeps working afterwards *)
      let raw = raw_connect cfg.Server.socket_path in
      raw_send raw "{this is not json";
      let e = raw_recv raw in
      Alcotest.(check (option bool)) "parse error rejected" (Some false)
        (sbool e [ "ok" ]);
      raw_send raw {|{"id":9,"op":"ping"}|};
      let p = raw_recv raw in
      Alcotest.(check (option bool)) "connection survives a bad line"
        (Some true)
        (sbool p [ "pong" ]);
      raw_close raw)

(* ---- admission control ---- *)

let test_shedding () =
  (* max_pending = 0 sheds every check deterministically; ping and stats
     still answer inline *)
  with_server ~max_pending:0 (fun _ c ->
      let r = Server.Client.request c (check_req "@minmax10" "@minmax10") in
      check_ok "shed response well-formed" r;
      Alcotest.(check (option string)) "verdict" (Some "undecided")
        (sstr r [ "verdict" ]);
      Alcotest.(check (option string)) "reason" (Some "busy")
        (sstr r [ "reason" ]);
      let s =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
      in
      Alcotest.(check (option int)) "shed counted" (Some 1)
        (sint s [ "server"; "shed" ]);
      Alcotest.(check (option int)) "nothing admitted" (Some 0)
        (sint s [ "server"; "checks" ]))

(* ---- stats ---- *)

let test_stats () =
  let dir = fresh_dir () in
  with_server ~cache_dir:dir (fun _ c ->
      let (_ : Sjson.t) =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      let s =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 5); ("op", String "stats") ])
      in
      check_ok "ok" s;
      Alcotest.(check (option int)) "checks" (Some 1) (sint s [ "server"; "checks" ]);
      Alcotest.(check (option int)) "completed" (Some 1)
        (sint s [ "server"; "completed" ]);
      Alcotest.(check (option int)) "nothing in flight" (Some 0)
        (sint s [ "server"; "inflight" ]);
      Alcotest.(check bool) "live Obs counters exposed" true
        (match sget s [ "counters" ] with
        | Some (Sjson.Obj kvs) ->
            List.mem_assoc "server.admitted" kvs
            && List.mem_assoc "server.completed" kvs
        | _ -> false);
      Alcotest.(check bool) "store info exposed" true
        (match sint s [ "store"; "entries" ] with Some n -> n >= 0 | None -> false);
      (* the telemetry extension: uptime, config echo, gauges, quantiles *)
      Alcotest.(check bool) "uptime" true
        (match sfloat s [ "uptime_seconds" ] with
        | Some u -> u >= 0.
        | None -> false);
      Alcotest.(check (option int)) "config echoes executors" (Some 2)
        (sint s [ "config"; "executors" ]);
      Alcotest.(check (option string)) "config echoes engine" (Some "sweep")
        (sstr s [ "config"; "engine" ]);
      Alcotest.(check (option string)) "config echoes cache_dir" (Some dir)
        (sstr s [ "config"; "cache_dir" ]);
      Alcotest.(check bool) "live gauges exposed" true
        (match sget s [ "gauges" ] with
        | Some (Sjson.Obj kvs) -> List.mem_assoc "server.inflight" kvs
        | _ -> false);
      Alcotest.(check bool) "latency quantiles from the live histogram" true
        (match sint s [ "latency"; "count" ] with Some n -> n >= 1 | None -> false);
      Alcotest.(check bool) "latency percentiles present" true
        (sfloat s [ "latency"; "p50_ms" ] <> None
        && sfloat s [ "latency"; "p95_ms" ] <> None
        && sfloat s [ "latency"; "p99_ms" ] <> None);
      Alcotest.(check bool) "queue wait histogram" true
        (match sint s [ "queue_wait"; "count" ] with
        | Some n -> n >= 1
        | None -> false);
      Alcotest.(check (option int)) "no dropped events" (Some 0)
        (sint s [ "dropped_events" ]))

(* ---- the shared cache is warm across requests ---- *)

let test_warm_requests () =
  let dir = fresh_dir () in
  with_server ~cache_dir:dir (fun _ c ->
      let req id = check_req ~id (fifo_text `Sop) (fifo_text `Mux) in
      let r1 = Server.Client.request c (req 1) in
      check_ok "cold" r1;
      Alcotest.(check (option string)) "cold verdict" (Some "equivalent")
        (sstr r1 [ "verdict" ]);
      let wrote = Option.value ~default:0 (sint r1 [ "counters"; "store_writes" ]) in
      Alcotest.(check bool) "cold run persists verdicts" true (wrote > 0);
      let r2 = Server.Client.request c (req 2) in
      check_ok "warm" r2;
      Alcotest.(check (option string)) "warm verdict" (Some "equivalent")
        (sstr r2 [ "verdict" ]);
      let hits =
        Option.value ~default:0 (sint r2 [ "counters"; "cache_hits" ])
        + Option.value ~default:0 (sint r2 [ "counters"; "store_hits" ])
      in
      Alcotest.(check bool) "warm run answered from the shared cache" true
        (hits > 0))

(* ---- concurrency ---- *)

let test_concurrent_clients () =
  (* 8 clients at once on 2 executor domains sharing one pool: every
     client gets its own correct verdict, nothing is dropped *)
  with_server ~executors:2 ~pool_jobs:4 (fun cfg _ ->
      let eq_l = fifo_text `Sop and eq_r = fifo_text `Mux in
      let bug = fifo_bug_text () in
      let results = Array.make 8 None in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                let c = Server.Client.connect cfg.Server.socket_path in
                let right = if i mod 2 = 0 then eq_r else bug in
                let r = Server.Client.request c (check_req ~id:i eq_l right) in
                Server.Client.close c;
                results.(i) <- sstr r [ "verdict" ])
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i v ->
          let expect = if i mod 2 = 0 then "equivalent" else "inequivalent" in
          Alcotest.(check (option string))
            (Printf.sprintf "client %d" i)
            (Some expect) v)
        results)

let test_round_robin_fairness () =
  (* one executor, a chatty connection that queues 4 checks, then a second
     connection's single check: round-robin admission means the single
     check is answered before the chatty connection's tail *)
  with_server ~executors:1 ~pool_jobs:2 (fun cfg c ->
      let chatty = raw_connect cfg.Server.socket_path in
      let l = fifo_text `Sop and r = fifo_text `Mux in
      let line id =
        Sjson.to_string (check_req ~id l r)
      in
      for i = 1 to 4 do
        raw_send chatty (line i)
      done;
      (* wait until the chatty batch is admitted (so the executor is busy
         and its queue nonempty), then race the single check in *)
      let rec wait () =
        let s =
          Server.Client.request c
            Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
        in
        match sint s [ "server"; "checks" ] with
        | Some n when n >= 4 -> ()
        | _ ->
            Thread.yield ();
            wait ()
      in
      wait ();
      let single = raw_connect cfg.Server.socket_path in
      raw_send single (line 99);
      let r99 = raw_recv single in
      Alcotest.(check (option int)) "single check answered" (Some 99)
        (sint r99 [ "id" ]);
      (* the chatty connection still gets all four answers, in order *)
      for i = 1 to 4 do
        let ri = raw_recv chatty in
        Alcotest.(check (option int)) "chatty answer" (Some i) (sint ri [ "id" ])
      done;
      raw_close single;
      raw_close chatty)

(* ---- graceful drain ---- *)

let test_drain_finishes_admitted () =
  (* stop while requests are queued and in flight: every admitted check
     still gets its real verdict before the server exits *)
  let cfg =
    {
      (Server.default_config ~socket_path:(fresh_sock ())) with
      Server.executors = 1;
      pool_jobs = 2;
    }
  in
  let t = Server.start cfg in
  let stats_c = Server.Client.connect ~retries:50 cfg.Server.socket_path in
  let raw = raw_connect cfg.Server.socket_path in
  let l = fifo_text `Sop and r = fifo_text `Mux in
  raw_send raw (Sjson.to_string (check_req ~id:1 l r));
  raw_send raw (Sjson.to_string (check_req ~id:2 l r));
  let rec wait () =
    let s =
      Server.Client.request stats_c
        Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
    in
    match sint s [ "server"; "checks" ] with
    | Some n when n >= 2 -> ()
    | _ ->
        Thread.yield ();
        wait ()
  in
  wait ();
  Server.stop t;
  let r1 = raw_recv raw in
  let r2 = raw_recv raw in
  List.iter
    (fun (resp, id) ->
      Alcotest.(check (option int)) "id" (Some id) (sint resp [ "id" ]);
      Alcotest.(check (option string)) "drained to a real verdict"
        (Some "equivalent")
        (sstr resp [ "verdict" ]))
    [ (r1, 1); (r2, 2) ];
  raw_close raw;
  Server.Client.close stats_c;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists cfg.Server.socket_path)

(* ---- live telemetry: metrics op, HTTP scrape, trace ring ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_op () =
  (* a clean global slate so the exposed totals are this test's alone *)
  Obs.reset ();
  with_server (fun _ c ->
      let (_ : Sjson.t) =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      let m =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 3); ("op", String "metrics") ])
      in
      check_ok "ok" m;
      Alcotest.(check (option string)) "content type"
        (Some "text/plain; version=0.0.4")
        (sstr m [ "content_type" ]);
      let text = Option.value ~default:"" (sstr m [ "metrics" ]) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("exposes " ^ needle) true (contains text needle))
        [
          "# TYPE seqver_server_request_seconds histogram";
          "seqver_server_request_seconds_bucket{le=";
          "seqver_server_request_seconds_bucket{le=\"+Inf\"} 1";
          "seqver_server_request_seconds_count 1";
          "seqver_server_request_seconds_sum ";
          "seqver_server_queue_wait_seconds_count 1";
          "seqver_server_admitted_total 1";
          "seqver_server_completed_total 1";
          "# TYPE seqver_server_pending gauge";
          "seqver_pool_spawned ";
          "seqver_cec_engine_seconds_";
        ])

let test_http_metrics () =
  Obs.reset ();
  let cfg =
    {
      (Server.default_config ~socket_path:(fresh_sock ())) with
      Server.executors = 1;
      pool_jobs = 2;
      metrics_addr = Some "127.0.0.1:0" (* ephemeral port *);
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let port =
        match Server.metrics_port t with
        | Some p -> p
        | None -> Alcotest.fail "no metrics port bound"
      in
      let c = Server.Client.connect ~retries:50 cfg.Server.socket_path in
      let (_ : Sjson.t) =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      Server.Client.close c;
      let http_get path =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        output_string oc
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path);
        flush oc;
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel buf ic 1
           done
         with End_of_file -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Buffer.contents buf
      in
      let resp = http_get "/metrics" in
      Alcotest.(check bool) "200 OK" true (contains resp "HTTP/1.1 200 OK");
      Alcotest.(check bool) "prometheus content type" true
        (contains resp "Content-Type: text/plain; version=0.0.4");
      Alcotest.(check bool) "request histogram exposed" true
        (contains resp "seqver_server_request_seconds_bucket{le=");
      Alcotest.(check bool) "count reconciles with the one check" true
        (contains resp "seqver_server_request_seconds_count 1");
      Alcotest.(check bool) "connection closed per scrape" true
        (contains resp "Connection: close");
      let missing = http_get "/nope" in
      Alcotest.(check bool) "404 elsewhere" true
        (contains missing "HTTP/1.1 404"))

let trace_req = Sjson.(Obj [ ("id", Int 9); ("op", String "trace") ])

let trace_entries tr =
  match sget tr [ "traces" ] with
  | Some (Sjson.List l) -> l
  | _ -> Alcotest.fail "no traces list"

let test_trace_sampling () =
  (* trace_sample=2, slow path off: admission seqs 2 and 4 of 4 checks are
     captured — deterministically, by sequence number *)
  with_server ~executors:1 ~trace_sample:2 ~slow_ms:infinity (fun _ c ->
      let l = fifo_text `Sop and r = fifo_text `Mux in
      for i = 1 to 4 do
        check_ok "check" (Server.Client.request c (check_req ~id:i l r))
      done;
      let tr = Server.Client.request c trace_req in
      check_ok "ok" tr;
      Alcotest.(check (option int)) "ring capacity" (Some 64)
        (sint tr [ "trace_ring_capacity" ]);
      let entries = trace_entries tr in
      Alcotest.(check (list int)) "sampled seqs, oldest first" [ 2; 4 ]
        (List.filter_map (fun e -> sint e [ "trace_id" ]) entries);
      List.iter
        (fun e ->
          Alcotest.(check (option bool)) "sampled" (Some true)
            (sbool e [ "sampled" ]);
          Alcotest.(check (option bool)) "not slow" (Some false)
            (sbool e [ "slow" ]);
          Alcotest.(check (option string)) "verdict" (Some "equivalent")
            (sstr e [ "verdict" ]);
          Alcotest.(check bool) "engine attributed" true
            (sstr e [ "engine" ] <> None);
          Alcotest.(check bool) "phase breakdown" true
            (sfloat e [ "phases"; "unroll_seconds" ] <> None);
          Alcotest.(check bool) "span tree captured" true
            (match sget e [ "spans" ] with
            | Some (Sjson.List _) -> true
            | _ -> false))
        entries)

let test_trace_slow_log () =
  (* slow_ms=0: every check is "slow", lands in the ring and in the stats
     slow-request log (which strips the span trees) *)
  with_server ~executors:1 ~slow_ms:0. (fun _ c ->
      let l = fifo_text `Sop and r = fifo_text `Mux in
      for i = 1 to 2 do
        check_ok "check" (Server.Client.request c (check_req ~id:i l r))
      done;
      let tr = Server.Client.request c trace_req in
      let entries = trace_entries tr in
      Alcotest.(check int) "every check kept" 2 (List.length entries);
      List.iter
        (fun e ->
          Alcotest.(check (option bool)) "slow" (Some true) (sbool e [ "slow" ]);
          Alcotest.(check (option bool)) "not sampled" (Some false)
            (sbool e [ "sampled" ]))
        entries;
      let s =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
      in
      match sget s [ "slow" ] with
      | Some (Sjson.List sl) ->
          Alcotest.(check int) "slow log mirrors the ring" 2 (List.length sl);
          List.iter
            (fun e ->
              Alcotest.(check bool) "no spans in the slow log" true
                (sget e [ "spans" ] = None))
            sl
      | _ -> Alcotest.fail "no slow list in stats")

let test_trace_disabled () =
  (* slow path off and no sampling: the ring stays empty *)
  with_server ~slow_ms:infinity (fun _ c ->
      check_ok "check"
        (Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux)));
      let tr = Server.Client.request c trace_req in
      Alcotest.(check int) "ring empty" 0 (List.length (trace_entries tr)))

let suite =
  [
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "check equivalent" `Quick test_check_equivalent;
    Alcotest.test_case "check inequivalent" `Quick test_check_inequivalent;
    Alcotest.test_case "per-request limits" `Quick test_request_limits;
    Alcotest.test_case "errors keep the connection" `Quick test_errors_and_survival;
    Alcotest.test_case "load shedding" `Quick test_shedding;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "warm shared cache" `Quick test_warm_requests;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    Alcotest.test_case "graceful drain" `Quick test_drain_finishes_admitted;
    Alcotest.test_case "metrics op" `Quick test_metrics_op;
    Alcotest.test_case "http GET /metrics" `Quick test_http_metrics;
    Alcotest.test_case "deterministic trace sampling" `Quick test_trace_sampling;
    Alcotest.test_case "slow-request log" `Quick test_trace_slow_log;
    Alcotest.test_case "trace ring disabled" `Quick test_trace_disabled;
  ]
