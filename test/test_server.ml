(* The verification server: wire protocol, concurrent clients, admission
   shedding, per-request budgets, graceful drain.  Every test runs a real
   in-process server over a Unix socket — the same code path as
   [seqver serve]. *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_srv_%d_%d.sock" (Unix.getpid ()) !n)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_srvstore_%d_%d" (Unix.getpid ()) !n)

let with_server ?(executors = 2) ?(pool_jobs = 2) ?(max_pending = 64)
    ?cache_dir f =
  let cfg =
    {
      (Server.default_config ~socket_path:(fresh_sock ())) with
      Server.executors;
      pool_jobs;
      max_pending;
      cache_dir;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let c = Server.Client.connect ~retries:50 cfg.Server.socket_path in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f cfg c))

(* JSON path accessors over Sjson *)
let sget j path =
  List.fold_left (fun a k -> Option.bind a (Sjson.member k)) (Some j) path

let sint j path = Option.bind (sget j path) Sjson.get_int
let sstr j path = Option.bind (sget j path) Sjson.get_string
let sbool j path = Option.bind (sget j path) Sjson.get_bool

let check_ok msg j = Alcotest.(check (option bool)) msg (Some true) (sbool j [ "ok" ])

(* a raw connection for byte-level tests (malformed lines, split
   send/receive around a drain) *)
type raw = { rfd : Unix.file_descr; ric : in_channel }

let raw_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { rfd = fd; ric = Unix.in_channel_of_descr fd }

let raw_send r line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write r.rfd b !off (n - !off)
  done

let raw_recv r = Sjson.parse (input_line r.ric)
let raw_close r = try Unix.close r.rfd with Unix.Unix_error _ -> ()

let fifo_text style = Netlist_io.to_string (Workloads.fifo ~entries:8 ~width:4 ~style ())
let fifo_bug_text () =
  Netlist_io.to_string (Workloads.fifo ~bug:true ~entries:8 ~width:4 ~style:`Mux ())

let check_req ?(id = 1) ?engine ?timeout left right =
  Sjson.Obj
    ([
       ("id", Sjson.Int id);
       ("op", Sjson.String "check");
       ("left", Sjson.String left);
       ("right", Sjson.String right);
     ]
    @ (match engine with Some e -> [ ("engine", Sjson.String e) ] | None -> [])
    @ match timeout with Some s -> [ ("timeout", Sjson.Float s) ] | None -> [])

(* ---- protocol basics ---- *)

let test_ping () =
  with_server (fun _ c ->
      let r =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 42); ("op", String "ping") ])
      in
      check_ok "ok" r;
      Alcotest.(check (option int)) "id echoed" (Some 42) (sint r [ "id" ]);
      Alcotest.(check (option bool)) "pong" (Some true) (sbool r [ "pong" ]))

let test_check_equivalent () =
  with_server (fun _ c ->
      (* two genuinely different implementations of the same FIFO, sent as
         inline netlist text; exposure defaults to "auto" *)
      let r =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "verdict" (Some "equivalent")
        (sstr r [ "verdict" ]);
      Alcotest.(check bool) "method reported" true (sstr r [ "method" ] <> None);
      Alcotest.(check bool) "phase timings present" true
        (sget r [ "phases"; "unroll_seconds" ] <> None
        && sget r [ "phases"; "sweep_cpu_seconds" ] <> None);
      Alcotest.(check bool) "counters present" true
        (sint r [ "counters"; "partitions" ] <> None);
      (* suite circuits by @name resolve too *)
      let r2 = Server.Client.request c (check_req ~id:2 "@minmax10" "@minmax10") in
      check_ok "ok @name" r2;
      Alcotest.(check (option string)) "@name verdict" (Some "equivalent")
        (sstr r2 [ "verdict" ]))

let test_check_inequivalent () =
  with_server (fun _ c ->
      let r =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_bug_text ()))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "verdict" (Some "inequivalent")
        (sstr r [ "verdict" ]);
      (* a certified counterexample carries the assignment *)
      match sbool r [ "certified" ] with
      | Some true ->
          Alcotest.(check bool) "cex present" true (sget r [ "cex" ] <> None)
      | Some false -> ()
      | None -> Alcotest.fail "inequivalent response must say certified")

let test_request_limits () =
  with_server (fun _ c ->
      (* an already-expired per-request deadline: the engine gives up
         before doing any work, deterministically *)
      let mk name tree =
        let c = Circuit.create name in
        let ins =
          List.init 14 (fun i -> Circuit.add_input c (Printf.sprintf "p%d" i))
        in
        let out =
          if tree then begin
            let rec pair = function
              | a :: b :: tl -> Circuit.add_gate c Xor [ a; b ] :: pair tl
              | rest -> rest
            in
            let rec build = function [ x ] -> x | xs -> build (pair xs) in
            build ins
          end
          else
            List.fold_left
              (fun acc i -> Circuit.add_gate c Xor [ acc; i ])
              (List.hd ins) (List.tl ins)
        in
        Circuit.mark_output c out;
        Circuit.check c;
        Netlist_io.to_string c
      in
      let r =
        Server.Client.request c
          (check_req ~engine:"sat" ~timeout:0.0 (mk "uchain" false)
             (mk "utree" true))
      in
      check_ok "ok" r;
      Alcotest.(check (option string)) "expired budget -> undecided"
        (Some "undecided")
        (sstr r [ "verdict" ]))

(* ---- errors never kill the connection ---- *)

let test_errors_and_survival () =
  with_server (fun cfg c ->
      let r = Server.Client.request c Sjson.(Obj [ ("op", String "frob") ]) in
      Alcotest.(check (option bool)) "unknown op rejected" (Some false)
        (sbool r [ "ok" ]);
      let r =
        Server.Client.request c Sjson.(Obj [ ("id", Int 7) ])
      in
      Alcotest.(check (option bool)) "missing op rejected" (Some false)
        (sbool r [ "ok" ]);
      Alcotest.(check (option int)) "id echoed on error" (Some 7)
        (sint r [ "id" ]);
      let r = Server.Client.request c (check_req "@no_such_circuit" "@minmax10") in
      Alcotest.(check (option bool)) "unknown circuit rejected" (Some false)
        (sbool r [ "ok" ]);
      Alcotest.(check bool) "error message present" true
        (sstr r [ "error" ] <> None);
      (* malformed JSON on a raw connection: error response, and the SAME
         connection keeps working afterwards *)
      let raw = raw_connect cfg.Server.socket_path in
      raw_send raw "{this is not json";
      let e = raw_recv raw in
      Alcotest.(check (option bool)) "parse error rejected" (Some false)
        (sbool e [ "ok" ]);
      raw_send raw {|{"id":9,"op":"ping"}|};
      let p = raw_recv raw in
      Alcotest.(check (option bool)) "connection survives a bad line"
        (Some true)
        (sbool p [ "pong" ]);
      raw_close raw)

(* ---- admission control ---- *)

let test_shedding () =
  (* max_pending = 0 sheds every check deterministically; ping and stats
     still answer inline *)
  with_server ~max_pending:0 (fun _ c ->
      let r = Server.Client.request c (check_req "@minmax10" "@minmax10") in
      check_ok "shed response well-formed" r;
      Alcotest.(check (option string)) "verdict" (Some "undecided")
        (sstr r [ "verdict" ]);
      Alcotest.(check (option string)) "reason" (Some "busy")
        (sstr r [ "reason" ]);
      let s =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
      in
      Alcotest.(check (option int)) "shed counted" (Some 1)
        (sint s [ "server"; "shed" ]);
      Alcotest.(check (option int)) "nothing admitted" (Some 0)
        (sint s [ "server"; "checks" ]))

(* ---- stats ---- *)

let test_stats () =
  let dir = fresh_dir () in
  with_server ~cache_dir:dir (fun _ c ->
      let (_ : Sjson.t) =
        Server.Client.request c (check_req (fifo_text `Sop) (fifo_text `Mux))
      in
      let s =
        Server.Client.request c
          Sjson.(Obj [ ("id", Int 5); ("op", String "stats") ])
      in
      check_ok "ok" s;
      Alcotest.(check (option int)) "checks" (Some 1) (sint s [ "server"; "checks" ]);
      Alcotest.(check (option int)) "completed" (Some 1)
        (sint s [ "server"; "completed" ]);
      Alcotest.(check (option int)) "nothing in flight" (Some 0)
        (sint s [ "server"; "inflight" ]);
      Alcotest.(check bool) "live Obs counters exposed" true
        (match sget s [ "counters" ] with
        | Some (Sjson.Obj kvs) ->
            List.mem_assoc "server.admitted" kvs
            && List.mem_assoc "server.completed" kvs
        | _ -> false);
      Alcotest.(check bool) "store info exposed" true
        (match sint s [ "store"; "entries" ] with Some n -> n >= 0 | None -> false))

(* ---- the shared cache is warm across requests ---- *)

let test_warm_requests () =
  let dir = fresh_dir () in
  with_server ~cache_dir:dir (fun _ c ->
      let req id = check_req ~id (fifo_text `Sop) (fifo_text `Mux) in
      let r1 = Server.Client.request c (req 1) in
      check_ok "cold" r1;
      Alcotest.(check (option string)) "cold verdict" (Some "equivalent")
        (sstr r1 [ "verdict" ]);
      let wrote = Option.value ~default:0 (sint r1 [ "counters"; "store_writes" ]) in
      Alcotest.(check bool) "cold run persists verdicts" true (wrote > 0);
      let r2 = Server.Client.request c (req 2) in
      check_ok "warm" r2;
      Alcotest.(check (option string)) "warm verdict" (Some "equivalent")
        (sstr r2 [ "verdict" ]);
      let hits =
        Option.value ~default:0 (sint r2 [ "counters"; "cache_hits" ])
        + Option.value ~default:0 (sint r2 [ "counters"; "store_hits" ])
      in
      Alcotest.(check bool) "warm run answered from the shared cache" true
        (hits > 0))

(* ---- concurrency ---- *)

let test_concurrent_clients () =
  (* 8 clients at once on 2 executor domains sharing one pool: every
     client gets its own correct verdict, nothing is dropped *)
  with_server ~executors:2 ~pool_jobs:4 (fun cfg _ ->
      let eq_l = fifo_text `Sop and eq_r = fifo_text `Mux in
      let bug = fifo_bug_text () in
      let results = Array.make 8 None in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                let c = Server.Client.connect cfg.Server.socket_path in
                let right = if i mod 2 = 0 then eq_r else bug in
                let r = Server.Client.request c (check_req ~id:i eq_l right) in
                Server.Client.close c;
                results.(i) <- sstr r [ "verdict" ])
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i v ->
          let expect = if i mod 2 = 0 then "equivalent" else "inequivalent" in
          Alcotest.(check (option string))
            (Printf.sprintf "client %d" i)
            (Some expect) v)
        results)

let test_round_robin_fairness () =
  (* one executor, a chatty connection that queues 4 checks, then a second
     connection's single check: round-robin admission means the single
     check is answered before the chatty connection's tail *)
  with_server ~executors:1 ~pool_jobs:2 (fun cfg c ->
      let chatty = raw_connect cfg.Server.socket_path in
      let l = fifo_text `Sop and r = fifo_text `Mux in
      let line id =
        Sjson.to_string (check_req ~id l r)
      in
      for i = 1 to 4 do
        raw_send chatty (line i)
      done;
      (* wait until the chatty batch is admitted (so the executor is busy
         and its queue nonempty), then race the single check in *)
      let rec wait () =
        let s =
          Server.Client.request c
            Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
        in
        match sint s [ "server"; "checks" ] with
        | Some n when n >= 4 -> ()
        | _ ->
            Thread.yield ();
            wait ()
      in
      wait ();
      let single = raw_connect cfg.Server.socket_path in
      raw_send single (line 99);
      let r99 = raw_recv single in
      Alcotest.(check (option int)) "single check answered" (Some 99)
        (sint r99 [ "id" ]);
      (* the chatty connection still gets all four answers, in order *)
      for i = 1 to 4 do
        let ri = raw_recv chatty in
        Alcotest.(check (option int)) "chatty answer" (Some i) (sint ri [ "id" ])
      done;
      raw_close single;
      raw_close chatty)

(* ---- graceful drain ---- *)

let test_drain_finishes_admitted () =
  (* stop while requests are queued and in flight: every admitted check
     still gets its real verdict before the server exits *)
  let cfg =
    {
      (Server.default_config ~socket_path:(fresh_sock ())) with
      Server.executors = 1;
      pool_jobs = 2;
    }
  in
  let t = Server.start cfg in
  let stats_c = Server.Client.connect ~retries:50 cfg.Server.socket_path in
  let raw = raw_connect cfg.Server.socket_path in
  let l = fifo_text `Sop and r = fifo_text `Mux in
  raw_send raw (Sjson.to_string (check_req ~id:1 l r));
  raw_send raw (Sjson.to_string (check_req ~id:2 l r));
  let rec wait () =
    let s =
      Server.Client.request stats_c
        Sjson.(Obj [ ("id", Int 0); ("op", String "stats") ])
    in
    match sint s [ "server"; "checks" ] with
    | Some n when n >= 2 -> ()
    | _ ->
        Thread.yield ();
        wait ()
  in
  wait ();
  Server.stop t;
  let r1 = raw_recv raw in
  let r2 = raw_recv raw in
  List.iter
    (fun (resp, id) ->
      Alcotest.(check (option int)) "id" (Some id) (sint resp [ "id" ]);
      Alcotest.(check (option string)) "drained to a real verdict"
        (Some "equivalent")
        (sstr resp [ "verdict" ]))
    [ (r1, 1); (r2, 2) ];
  raw_close raw;
  Server.Client.close stats_c;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists cfg.Server.socket_path)

let suite =
  [
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "check equivalent" `Quick test_check_equivalent;
    Alcotest.test_case "check inequivalent" `Quick test_check_inequivalent;
    Alcotest.test_case "per-request limits" `Quick test_request_limits;
    Alcotest.test_case "errors keep the connection" `Quick test_errors_and_survival;
    Alcotest.test_case "load shedding" `Quick test_shedding;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "warm shared cache" `Quick test_warm_requests;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    Alcotest.test_case "graceful drain" `Quick test_drain_finishes_admitted;
  ]
