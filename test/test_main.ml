let () =
  Alcotest.run "seqver"
    [
      ("vgraph", Test_vgraph.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("bdd", Test_bdd.suite);
      ("sat", Test_sat.suite);
      ("circuit", Test_circuit.suite);
      ("blif", Test_blif.suite);
      ("aig", Test_aig.suite);
      ("sim", Test_sim.suite);
      ("cec", Test_cec.suite);
      ("synth", Test_synth.suite);
      ("retiming", Test_retiming.suite);
      ("seqprob", Test_seqprob.suite);
      ("cbf", Test_cbf.suite);
      ("edbf", Test_edbf.suite);
      ("feedback", Test_feedback.suite);
      ("verify", Test_verify.suite);
      ("flow", Test_flow.suite);
      ("workloads", Test_workloads.suite);
      ("seqbdd", Test_seqbdd.suite);
      ("properties", Test_properties.suite);
      ("store", Test_store.suite);
      ("hier", Test_hier.suite);
      ("server", Test_server.suite);
      ("integration", Test_integration.suite);
      ("edge-cases", Test_edge_cases.suite);
    ]
