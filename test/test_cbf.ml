(* Clocked Boolean Functions: the Fig. 2/3 examples, unrolling mechanics,
   and Theorem 5.1 (CBF equality <=> exact 3-valued equivalence, past the
   pipeline-fill transient) validated on random acyclic circuits. *)

let st = Random.State.make [| 0xCBF |]

(* Fig. 2(c): latch followed by AND gate: x(t) = y(t-1)z(t-1) ... the latch
   sits before the AND here: w(t) = y(t-1) AND z(t-1). *)
let test_fig2 () =
  let c = Circuit.create "fig2c" in
  let y = Circuit.add_input c "y" in
  let z = Circuit.add_input c "z" in
  let x = Circuit.add_gate c And [ y; z ] in
  let w = Circuit.add_latch c ~data:x () in
  Circuit.mark_output c w;
  Circuit.check c;
  let u, info = Cbf.unroll_netlist c in
  Alcotest.(check int) "depth 1" 1 info.Cbf.depth;
  Alcotest.(check int) "two variables" 2 info.Cbf.variables;
  (* reference: w(t) = y(t-1) /\ z(t-1) *)
  let r = Circuit.create "ref" in
  let y1 = Circuit.add_input r (Cbf.var_name "y" 1) in
  let z1 = Circuit.add_input r (Cbf.var_name "z" 1) in
  Circuit.mark_output r (Circuit.add_gate r And [ y1; z1 ]);
  Circuit.check r;
  match Cec.check u r with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "fig2 CBF wrong"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

(* Fig. 3: latch trapped in a combinational block.
   b(t) = a(t-1); c(t) = b(t)a(t); d(t) = c(t-1); o = c(t)d(t)
   => o(t) = [a(t-1) /\ a(t)] /\ [a(t-2) /\ a(t-1)] *)
let test_fig3 () =
  let c = Circuit.create "fig3" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_latch c ~data:a () in
  let cc = Circuit.add_gate c And [ b; a ] in
  let d = Circuit.add_latch c ~data:cc () in
  let o = Circuit.add_gate c And [ cc; d ] in
  Circuit.mark_output c o;
  Circuit.check c;
  let u, info = Cbf.unroll_netlist c in
  Alcotest.(check int) "depth 2" 2 info.Cbf.depth;
  Alcotest.(check int) "three variables" 3 info.Cbf.variables;
  let r = Circuit.create "ref3" in
  let a0 = Circuit.add_input r (Cbf.var_name "a" 0) in
  let a1 = Circuit.add_input r (Cbf.var_name "a" 1) in
  let a2 = Circuit.add_input r (Cbf.var_name "a" 2) in
  Circuit.mark_output r (Circuit.add_gate r And [ a1; a0; a2; a1 ]);
  Circuit.check r;
  match Cec.check u r with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "fig3 CBF wrong"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_unroll_is_combinational () =
  for i = 1 to 20 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "uc%d" i) ~inputs:3 ~gates:30 ~latches:5
        ~outputs:2 ~enables:false
    in
    let u, info = Cbf.unroll_netlist c in
    Alcotest.(check int) "no latches" 0 (Circuit.latch_count u);
    Alcotest.(check int) "outputs preserved" (List.length (Circuit.outputs c))
      (List.length (Circuit.outputs u));
    Alcotest.(check bool) "depth bounded by latch count" true
      (info.Cbf.depth <= Circuit.latch_count c);
    Alcotest.(check bool) "depth = sequential depth" true
      (info.Cbf.depth <= Cbf.sequential_depth c)
  done

let test_unroll_rejects_feedback () =
  let c = Gen.feedback st ~name:"fb" ~inputs:2 ~gates:10 ~latches:2 ~outputs:1 in
  (* only if an actual cycle exists *)
  let g, _ = Feedback.latch_graph c in
  if not (Vgraph.Topo.is_acyclic g) then
    try
      ignore (Cbf.unroll_netlist c);
      Alcotest.fail "cycle accepted"
    with Invalid_argument _ -> ()

let test_unroll_rejects_hidden_enables () =
  let c = Circuit.create "he" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.add_latch c ~enable:e ~data:d () in
  Circuit.mark_output c q;
  Circuit.check c;
  try
    ignore (Cbf.unroll_netlist c);
    Alcotest.fail "enabled latch accepted"
  with Invalid_argument _ -> ()

(* semantic correctness: the unrolled circuit evaluated on a window of the
   input trace equals the sequential output once the pipeline is full *)
let test_unroll_semantics () =
  for i = 1 to 25 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "us%d" i) ~inputs:3 ~gates:25 ~latches:4
        ~outputs:2 ~enables:false
    in
    let u, info = Cbf.unroll_netlist c in
    let d = info.Cbf.depth in
    let cycles = d + 6 in
    let seq = Gen.random_inputs st c ~cycles in
    let trace = Sim.run c ~init:(Array.make (Circuit.latch_count c) false) ~inputs:seq in
    let input_names = List.map (Circuit.signal_name c) (Circuit.inputs c) in
    for t = d to cycles - 1 do
      (* window assignment: var "i@k" = input i at cycle t-k *)
      let source s =
        let n = Circuit.signal_name u s in
        match String.rindex_opt n '@' with
        | None -> false
        | Some j ->
            let base = String.sub n 0 j in
            let k = int_of_string (String.sub n (j + 1) (String.length n - j - 1)) in
            let vec = List.nth seq (t - k) in
            let rec find idx = function
              | [] -> false
              | m :: _ when m = base -> vec.(idx)
              | _ :: tl -> find (idx + 1) tl
            in
            find 0 input_names
      in
      let values = Eval.comb_eval u ~source in
      let got = List.map (fun o -> values.(o)) (Circuit.outputs u) in
      let expected = Array.to_list (List.nth trace t) in
      if got <> expected then Alcotest.fail "CBF window semantics differ"
    done
  done

(* Theorem 5.1, both directions, on random pairs *)
let test_theorem_5_1 () =
  for i = 1 to 20 do
    let c1 =
      Gen.acyclic st ~name:(Printf.sprintf "tA%d" i) ~inputs:2 ~gates:15
        ~latches:(1 + Random.State.int st 3) ~outputs:1 ~enables:false
    in
    let c2 =
      if i mod 2 = 0 then Gen.demorganize c1
      else
        Gen.acyclic st ~name:(Printf.sprintf "tB%d" i) ~inputs:2 ~gates:15
          ~latches:(1 + Random.State.int st 3) ~outputs:1 ~enables:false
    in
    let u1, i1 = Cbf.unroll_netlist c1 in
    let u2, i2 = Cbf.unroll_netlist c2 in
    let cbf_equal = Cec.check u1 u2 = Cec.Equivalent in
    (* exact 3-valued equivalence past the fill transient, sampled *)
    let depth = max i1.Cbf.depth i2.Cbf.depth in
    let cycles = depth + 5 in
    let seqs = List.init 30 (fun _ -> Gen.random_inputs st c1 ~cycles) in
    let sim_equal =
      List.for_all
        (fun seq ->
          let t1 = Sim.run_exact c1 ~inputs:seq in
          let t2 = Sim.run_exact c2 ~inputs:seq in
          List.for_all2
            (fun a b -> Array.for_all2 Sim.tv_equal a b)
            (List.filteri (fun t _ -> t >= depth) t1)
            (List.filteri (fun t _ -> t >= depth) t2))
        seqs
    in
    if cbf_equal && not sim_equal then Alcotest.fail "CBF-equal but behaviour differs";
    if (not cbf_equal) && sim_equal then begin
      (* simulation sampling may just have missed the difference; confirm
         the counterexample instead *)
      match Cec.check u1 u2 with
      | Cec.Inequivalent cex ->
          Alcotest.(check bool) "counterexample is real" true
            (Cec.counterexample_is_valid u1 u2 cex)
      | Cec.Equivalent | Cec.Undecided _ -> assert false
    end
  done

let test_retime_synth_preserves_cbf () =
  (* the headline: arbitrary retiming + synthesis keeps the CBF *)
  for i = 1 to 15 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "rs%d" i) ~inputs:3 ~gates:40
        ~latches:(2 + Random.State.int st 5) ~outputs:2 ~enables:false
    in
    let o, _ = Retime.min_period (Synth_script.delay_script c) in
    let o2, _ = Retime.min_area (Synth_script.delay_script o) in
    let u1, _ = Cbf.unroll_netlist c in
    let u2, _ = Cbf.unroll_netlist o2 in
    match Cec.check u1 u2 with
    | Cec.Equivalent -> ()
    | Cec.Inequivalent _ -> Alcotest.fail "retime+synth changed the CBF"
    | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_exposed_latch_cbf () =
  (* exposing turns latch outputs into variables and data cones into
     outputs; a feedback circuit becomes unrollable *)
  let c = Circuit.create "exp" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.declare c ~name:"q" () in
  let nq = Circuit.add_gate c Xor [ q; a ] in
  Circuit.set_latch c q ~data:nq ();
  Circuit.mark_output c nq;
  Circuit.check c;
  let exposed s = Circuit.signal_name c s = "q" in
  let u, info = Cbf.unroll_netlist ~exposed c in
  Alcotest.(check int) "no latches" 0 (Circuit.latch_count u);
  (* outputs: original PO + q's next-state function *)
  Alcotest.(check int) "outputs" 2 (List.length (Circuit.outputs u));
  Alcotest.(check int) "depth 0" 0 info.Cbf.depth

let test_depth_mismatch_detected () =
  (* Lemma 5.1: different sequential depths => inequivalent; the CBF check
     must catch it through the extra variable *)
  let mk n name =
    let c = Circuit.create name in
    let a = Circuit.add_input c "a" in
    let s = ref a in
    for _ = 1 to n do
      s := Circuit.add_latch c ~data:!s ()
    done;
    Circuit.mark_output c !s;
    Circuit.check c;
    c
  in
  let c1 = mk 1 "d1" and c2 = mk 2 "d2" in
  let u1, _ = Cbf.unroll_netlist c1 in
  let u2, _ = Cbf.unroll_netlist c2 in
  match Cec.check u1 u2 with
  | Cec.Equivalent -> Alcotest.fail "depth mismatch missed"
  | Cec.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r
  | Cec.Inequivalent cex ->
      Alcotest.(check bool) "valid cex" true (Cec.counterexample_is_valid u1 u2 cex)

let suite =
  [
    Alcotest.test_case "Fig. 2 CBF" `Quick test_fig2;
    Alcotest.test_case "Fig. 3 trapped latch" `Quick test_fig3;
    Alcotest.test_case "unroll produces combinational" `Quick test_unroll_is_combinational;
    Alcotest.test_case "unroll rejects feedback" `Quick test_unroll_rejects_feedback;
    Alcotest.test_case "unroll rejects hidden enables" `Quick test_unroll_rejects_hidden_enables;
    Alcotest.test_case "window semantics" `Quick test_unroll_semantics;
    Alcotest.test_case "Theorem 5.1" `Quick test_theorem_5_1;
    Alcotest.test_case "retime+synth preserves CBF" `Quick test_retime_synth_preserves_cbf;
    Alcotest.test_case "exposed latches" `Quick test_exposed_latch_cbf;
    Alcotest.test_case "depth mismatch (Lemma 5.1)" `Quick test_depth_mismatch_detected;
  ]

let test_functional_depth () =
  (* q XOR q cancels: topological latch depth 1, functional depth 0 *)
  let c = Circuit.create "fd" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.add_latch c ~data:a () in
  Circuit.mark_output c (Circuit.add_gate c Xor [ q; q ]);
  Circuit.check c;
  Alcotest.(check int) "topological" 1 (Cbf.sequential_depth c);
  Alcotest.(check int) "functional" 0 (Result.get_ok (Cbf.functional_depth c));
  (* a real dependency keeps the depth *)
  let c2 = Circuit.create "fd2" in
  let a = Circuit.add_input c2 "a" in
  let q1 = Circuit.add_latch c2 ~data:a () in
  let q2 = Circuit.add_latch c2 ~data:q1 () in
  Circuit.mark_output c2 (Circuit.add_gate c2 Not [ q2 ]);
  Circuit.check c2;
  Alcotest.(check int) "true depth" 2 (Result.get_ok (Cbf.functional_depth c2));
  (* functional <= topological always *)
  for i = 1 to 10 do
    let c =
      Gen.acyclic st ~name:(Printf.sprintf "fdp%d" i) ~inputs:3 ~gates:20 ~latches:4
        ~outputs:2 ~enables:false
    in
    Alcotest.(check bool) "bounded" true
      (Result.get_ok (Cbf.functional_depth c) <= Cbf.sequential_depth c)
  done

let suite = suite @ [ Alcotest.test_case "functional depth (Def. 4)" `Quick test_functional_depth ]
