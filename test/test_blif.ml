(* BLIF import/export: hand-written fragments, round trips, semantics. *)

let st = Random.State.make [| 0xB11F |]

let test_parse_simple () =
  let text =
    {|# a full adder
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end|}
  in
  let { Blif.circuit = c; warnings } = Blif.parse text in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check string) "name" "adder" (Circuit.name c);
  Alcotest.(check int) "inputs" 3 (List.length (Circuit.inputs c));
  Alcotest.(check int) "outputs" 2 (List.length (Circuit.outputs c));
  (* semantics: full adder truth table *)
  for m = 0 to 7 do
    let bit i = m land (1 lsl i) <> 0 in
    let tbl = Hashtbl.create 4 in
    List.iteri (fun i s -> Hashtbl.replace tbl s (bit i)) (Circuit.inputs c);
    let values = Eval.comb_eval c ~source:(Hashtbl.find tbl) in
    let outs = List.map (fun o -> values.(o)) (Circuit.outputs c) in
    let total = (if bit 0 then 1 else 0) + (if bit 1 then 1 else 0) + if bit 2 then 1 else 0 in
    Alcotest.(check (list bool)) "adder row" [ total mod 2 = 1; total >= 2 ] outs
  done

let test_parse_latch_and_warning () =
  let text =
    {|.model seq
.inputs d
.outputs q
.latch d q re clk 1
.end|}
  in
  let { Blif.circuit = c; warnings } = Blif.parse text in
  Alcotest.(check int) "one latch" 1 (Circuit.latch_count c);
  Alcotest.(check int) "init warning" 1 (List.length warnings)

let test_parse_constants_and_offset () =
  let text =
    {|.model k
.inputs x
.outputs one zero notx
.names one
1
.names zero
.names x notx
1 0
.end|}
  in
  let { Blif.circuit = c; _ } = Blif.parse text in
  let tbl = Hashtbl.create 1 in
  List.iter (fun s -> Hashtbl.replace tbl s true) (Circuit.inputs c);
  let values = Eval.comb_eval c ~source:(Hashtbl.find tbl) in
  Alcotest.(check (list bool)) "const / off-set cover" [ true; false; false ]
    (List.map (fun o -> values.(o)) (Circuit.outputs c))

let test_parse_continuation () =
  let text = ".model m\n.inputs a \\\nb\n.outputs o\n.names a b o\n11 1\n.end" in
  let { Blif.circuit = c; _ } = Blif.parse text in
  Alcotest.(check int) "continued inputs" 2 (List.length (Circuit.inputs c))

let test_roundtrip () =
  for i = 1 to 20 do
    let c =
      Gen.acyclic st
        ~name:(Printf.sprintf "blif%d" i)
        ~inputs:(2 + Random.State.int st 3)
        ~gates:(10 + Random.State.int st 30)
        ~latches:(Random.State.int st 5)
        ~outputs:(1 + Random.State.int st 3)
        ~enables:false
    in
    let { Blif.circuit = c2; warnings } = Blif.parse (Blif.to_string c) in
    Alcotest.(check (list string)) "no warnings" [] warnings;
    (* behavioural identity, matching latch state by name *)
    let inputs = Gen.random_inputs st c ~cycles:10 in
    let names1 = List.map (Circuit.signal_name c) (Circuit.latches c) in
    let names2 = List.map (Circuit.signal_name c2) (Circuit.latches c2) in
    let init1 = Array.init (List.length names1) (fun _ -> Random.State.bool st) in
    let init2 =
      Array.of_list
        (List.map
           (fun n ->
             let rec find i = function
               | [] -> false
               | m :: _ when m = n -> init1.(i)
               | _ :: tl -> find (i + 1) tl
             in
             find 0 names1)
           names2)
    in
    Alcotest.(check bool) "behaviour preserved" true
      (Sim.run c ~init:init1 ~inputs = Sim.run c2 ~init:init2 ~inputs)
  done

let test_print_rejects_enables () =
  let c = Circuit.create "en" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  Circuit.mark_output c (Circuit.add_latch c ~enable:e ~data:d ());
  Circuit.check c;
  try
    ignore (Blif.to_string c);
    Alcotest.fail "enabled latch printed"
  with Invalid_argument _ -> ()

let test_parse_errors () =
  List.iter
    (fun text ->
      try
        ignore (Blif.parse text);
        Alcotest.fail ("accepted: " ^ text)
      with Invalid_argument _ -> ())
    [
      ".model m\n.gate foo\n.end";
      ".model m\n.inputs a\n.outputs o\n.names a o\n111 1\n.end";
      ".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n0 0\n.end";
      ".model m\n.latch\n.end";
    ]

let test_verify_across_formats () =
  (* a circuit exported to BLIF and reimported verifies equivalent *)
  let c =
    Gen.acyclic st ~name:"xfmt" ~inputs:3 ~gates:25 ~latches:3 ~outputs:2 ~enables:false
  in
  let { Blif.circuit = c2; _ } = Blif.parse (Blif.to_string c) in
  match Verify.check c c2 with
  | Ok { Verify.verdict = Verify.Equivalent; _ } -> ()
  | Ok { verdict = Verify.Inequivalent _; _ } ->
      Alcotest.fail "format round trip broke equivalence"
  | Ok { verdict = Verify.Undecided r; _ } ->
      Alcotest.failf "unbudgeted check undecided: %s" r
  | Error d ->
      Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)

let suite =
  [
    Alcotest.test_case "full adder" `Quick test_parse_simple;
    Alcotest.test_case "latch + init warning" `Quick test_parse_latch_and_warning;
    Alcotest.test_case "constants and off-set covers" `Quick test_parse_constants_and_offset;
    Alcotest.test_case "line continuation" `Quick test_parse_continuation;
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "print rejects enables" `Quick test_print_rejects_enables;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "verify across formats" `Quick test_verify_across_formats;
  ]
