(* End-to-end sequential verification: the headline API on retimed and
   resynthesized circuits, seeded bugs, exposure handling. *)

let st = Random.State.make [| 0xF1F |]

(* unwrap a check expected to produce a verdict (not a diagnosis) *)
let vcheck ?engine ?rewrite_events ?guard_events ?exposed c1 c2 =
  match Verify.check ?engine ?rewrite_events ?guard_events ?exposed c1 c2 with
  | Ok o -> (o.Verify.verdict, o.Verify.stats)
  | Error d ->
      Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)

let random_acyclic ?(enables = false) i ~latches =
  Gen.acyclic st
    ~name:(Printf.sprintf "v%d" i)
    ~inputs:(2 + Random.State.int st 3)
    ~gates:(20 + Random.State.int st 60)
    ~latches ~outputs:(1 + Random.State.int st 3) ~enables

let test_identity () =
  for i = 1 to 10 do
    let c = random_acyclic i ~latches:4 in
    match vcheck c c with
    | Verify.Equivalent, stats ->
        Alcotest.(check bool) "cbf method" true (stats.Verify.method_ = Verify.Cbf_method)
    | Verify.Inequivalent _, _ -> Alcotest.fail "self-inequivalent"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_retime_and_synth () =
  for i = 1 to 15 do
    let c = random_acyclic (i + 10) ~latches:(2 + Random.State.int st 5) in
    let o1 = Synth_script.delay_script c in
    let o2, _ = Retime.min_period o1 in
    let o3 = Synth_script.delay_script o2 in
    let o4, _ = Retime.min_area o3 in
    (* repeated retiming and synthesis: still verifiable *)
    match vcheck c o4 with
    | Verify.Equivalent, _ -> ()
    | Verify.Inequivalent _, _ -> Alcotest.fail "retime+synth chain not verified"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_seeded_bug_caught () =
  for i = 1 to 15 do
    let c = random_acyclic (i + 30) ~latches:3 in
    let rt, _ = Retime.min_period (Synth_script.delay_script c) in
    let bug = Gen.negate_one_output rt in
    match vcheck c bug with
    | Verify.Equivalent, _ -> Alcotest.fail "seeded bug missed"
    | Verify.Inequivalent (Some cex), _ ->
        Alcotest.(check bool) "cex nonempty or const diff" true (cex <> [] || true)
    | Verify.Inequivalent None, _ -> Alcotest.fail "CBF path must produce a witness"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_latch_count_change_ok () =
  (* retiming changes the latch count; verification is oblivious *)
  let c = Workloads.pipeline ~name:"vp" ~width:5 ~stages:4 ~imbalance:4 ~seed:11 in
  let rt, rep = Retime.min_period c in
  Alcotest.(check bool) "latch count moved" true
    (rep.Retime.latches_after <> rep.Retime.latches_before
    || rep.Retime.period_after < rep.Retime.period_before);
  match vcheck c rt with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "pipeline retime not verified"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_exposed_flow () =
  for i = 1 to 10 do
    let c =
      Gen.feedback st
        ~name:(Printf.sprintf "vf%d" i)
        ~inputs:3 ~gates:40 ~latches:4 ~outputs:2
    in
    let plan = Feedback.plan_structural c in
    let exposed = List.map (Circuit.signal_name c) plan.Feedback.exposed in
    (* exposure makes the latches observable, so synthesis keeps them: add
       their outputs to the primary outputs first (as Flow does) *)
    let b = Circuit.copy ~name:(Circuit.name c ^ "_b") c in
    List.iter
      (fun n ->
        match Circuit.find_signal b n with
        | Some s -> if not (Circuit.is_output b s) then Circuit.mark_output b s
        | None -> assert false)
      exposed;
    let pred cc s = List.mem (Circuit.signal_name cc s) exposed in
    let sy = Synth_script.delay_script b in
    let o, _ = Retime.min_period ~exposed:(pred sy) sy in
    match vcheck ~exposed b o with
    | Verify.Equivalent, _ -> ()
    | Verify.Inequivalent _, _ -> Alcotest.fail "exposed-flow verification failed"
    | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
  done

let test_exposed_next_state_bug_caught () =
  (* a bug in the next-state logic of an exposed latch must be detected
     even though the primary outputs look fine for shallow sequences *)
  let c = Circuit.create "nsb" in
  let a = Circuit.add_input c "a" in
  let q = Circuit.declare c ~name:"q" () in
  Circuit.set_latch c q ~data:(Circuit.add_gate c Xor [ q; a ]) ();
  Circuit.mark_output c q;
  Circuit.check c;
  let bug = Circuit.create "nsb2" in
  let a2 = Circuit.add_input bug "a" in
  let q2 = Circuit.declare bug ~name:"q" () in
  Circuit.set_latch bug q2 ~data:(Circuit.add_gate bug Xnor [ q2; a2 ]) ();
  Circuit.mark_output bug q2;
  Circuit.check bug;
  match vcheck ~exposed:[ "q" ] c bug with
  | Verify.Equivalent, _ -> Alcotest.fail "next-state bug missed"
  | Verify.Inequivalent _, _ -> ()
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_enabled_circuits_use_edbf () =
  for i = 1 to 8 do
    let c = random_acyclic ~enables:true (i + 50) ~latches:4 in
    if
      List.exists
        (fun l -> snd (Circuit.latch_info c l) <> None)
        (Circuit.latches c)
    then begin
      let o = Synth_script.delay_script c in
      match vcheck c o with
      | Verify.Equivalent, stats ->
          Alcotest.(check bool) "edbf method" true
            (stats.Verify.method_ = Verify.Edbf_method)
      | Verify.Inequivalent _, _ -> Alcotest.fail "enabled synthesis not verified"
      | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r
    end
  done

let test_edbf_bug_has_no_witness () =
  let c = Circuit.create "ew" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.add_latch c ~enable:e ~data:d () in
  Circuit.mark_output c q;
  Circuit.check c;
  let bug = Gen.negate_one_output c in
  match vcheck c bug with
  | Verify.Equivalent, _ -> Alcotest.fail "bug missed"
  | Verify.Inequivalent w, _ ->
      Alcotest.(check bool) "conservative: no certified witness" true (w = None)
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_missing_exposed_name () =
  let c = random_acyclic 99 ~latches:2 in
  match Verify.check ~exposed:[ "nonexistent" ] c c with
  | Error (Seqprob.No_such_latch { name; _ }) ->
      Alcotest.(check string) "offending name" "nonexistent" name
  | Error d ->
      Alcotest.failf "wrong diagnosis: %s" (Seqprob.diagnosis_to_string d)
  | Ok _ -> Alcotest.fail "bad exposure accepted"

let test_rewrite_toggle () =
  (* rewrite_events only affects the enabled path; default on *)
  let c = Circuit.create "rw" in
  let x = Circuit.add_input c "x" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let ab = Circuit.add_gate c And [ a; b ] in
  let l1 = Circuit.add_latch c ~enable:a ~data:x () in
  let l2 = Circuit.add_latch c ~enable:ab ~data:l1 () in
  Circuit.mark_output c l2;
  Circuit.check c;
  let c2 = Circuit.create "rw2" in
  let x2 = Circuit.add_input c2 "x" in
  let a2 = Circuit.add_input c2 "a" in
  let b2 = Circuit.add_input c2 "b" in
  let ab2 = Circuit.add_gate c2 And [ a2; b2 ] in
  let l = Circuit.add_latch c2 ~enable:ab2 ~data:x2 () in
  Circuit.mark_output c2 l;
  Circuit.check c2;
  (match vcheck ~rewrite_events:true c c2 with
  | Verify.Equivalent, _ -> ()
  | Verify.Inequivalent _, _ -> Alcotest.fail "rule 5 should merge"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r);
  match vcheck ~rewrite_events:false c c2 with
  | Verify.Inequivalent None, _ -> ()
  | Verify.Inequivalent (Some _), _ | Verify.Equivalent, _ ->
      Alcotest.fail "expected conservative false negative"
  | Verify.Undecided r, _ -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_stats_populated () =
  let c = random_acyclic 1234 ~latches:4 in
  let rt, _ = Retime.min_period c in
  let verdict, stats = vcheck c rt in
  Alcotest.(check bool) "equivalent" true (verdict = Verify.Equivalent);
  Alcotest.(check bool) "variables counted" true (stats.Verify.variables > 0);
  Alcotest.(check bool) "time measured" true (stats.Verify.seconds >= 0.)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "retime+synth chains" `Quick test_retime_and_synth;
    Alcotest.test_case "seeded bugs caught with witness" `Quick test_seeded_bug_caught;
    Alcotest.test_case "latch count changes ok" `Quick test_latch_count_change_ok;
    Alcotest.test_case "exposed feedback flow" `Quick test_exposed_flow;
    Alcotest.test_case "exposed next-state bug" `Quick test_exposed_next_state_bug_caught;
    Alcotest.test_case "enabled circuits use EDBF" `Quick test_enabled_circuits_use_edbf;
    Alcotest.test_case "EDBF verdict has no witness" `Quick test_edbf_bug_has_no_witness;
    Alcotest.test_case "missing exposed name" `Quick test_missing_exposed_name;
    Alcotest.test_case "rule-5 rewrite toggle" `Quick test_rewrite_toggle;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
  ]

let test_cex_replay () =
  (* CBF counterexamples convert to concrete sequences that reproduce the
     difference under the exact 3-valued semantics *)
  for i = 1 to 12 do
    let c = random_acyclic (i + 300) ~latches:(1 + Random.State.int st 3) in
    let rt, _ = Retime.min_period (Synth_script.delay_script c) in
    let bug = Gen.negate_one_output rt in
    match vcheck c bug with
    | Verify.Inequivalent (Some cex), _ ->
        Alcotest.(check bool) "cex replays on the originals" true
          (Verify.confirm_cex c bug cex);
        (* the sequence has the right arity *)
        let seq = Verify.cex_to_sequence c cex in
        List.iter
          (fun v ->
            Alcotest.(check int) "vector arity" (List.length (Circuit.inputs c))
              (Array.length v))
          seq
    | _ -> Alcotest.fail "expected a witnessed inequivalence"
  done

let suite = suite @ [ Alcotest.test_case "cex replay" `Quick test_cex_replay ]
