(* Hierarchical compositional SEC: glue building, flattening, signatures
   and invalidation, adversarial resynthesis, the leaf-first planner
   (verdict reuse, flat fallback, black-box soundness) and the hier
   workload suite. *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_hier_%d_%d"
         (Unix.getpid ())
         (incr n;
          !n))

let exposed_of c =
  List.map (Circuit.signal_name c) (Feedback.plan_structural c).Feedback.exposed

let flat_verdict l r =
  match Verify.check ~exposed:(exposed_of l) l r with
  | Ok o -> o.Verify.verdict
  | Error d -> Alcotest.fail (Seqprob.diagnosis_to_string d)

(* ---- tiny designs ---- *)

(* Leaf: one hold-mux register (self-loop, so exposure matters) plus a
   combinational function of the two ports; [impl] picks the gate
   structure ([`Xor] and [`Xor2] are equivalent, [`And] is not). *)
let tiny_leaf impl =
  let c = Circuit.create "leaf" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let l = Circuit.declare c ~name:"l" () in
  Circuit.set_latch c l ~data:(Circuit.add_gate c Mux [ a; b; l ]) ();
  let f =
    match impl with
    | `Xor -> Circuit.add_gate c Xor [ a; b ]
    | `Xor2 -> Circuit.add_gate c Not [ Circuit.add_gate c Xnor [ a; b ] ]
    | `And -> Circuit.add_gate c And [ a; b ]
  in
  Circuit.mark_output c l;
  Circuit.mark_output c f;
  Circuit.check c;
  c

let leaf impl =
  {
    Hier.mod_name = "leaf";
    glue = tiny_leaf impl;
    ports_in = [ "a"; "b" ];
    out_count = 2;
    instances = [];
  }

let build_mid lf =
  let b = Hier.Build.create "mid" in
  let g = Hier.Build.glue b in
  let p = Hier.Build.input b "p" in
  let q = Hier.Build.input b "q" in
  let u = Hier.Build.inst b ~name:"u" ~child:lf ~inputs:[ p; q ] in
  let ua = Array.of_list u in
  Hier.Build.output b (Circuit.add_gate g And [ ua.(0); ua.(1) ]);
  List.iter (Hier.Build.output b) u;
  Hier.Build.finish b

let build_top mid lf =
  let b = Hier.Build.create "top" in
  let g = Hier.Build.glue b in
  let x = Hier.Build.input b "x" in
  let y = Hier.Build.input b "y" in
  let m = Hier.Build.inst b ~name:"m" ~child:mid ~inputs:[ x; y ] in
  let w = Hier.Build.inst b ~name:"w" ~child:lf ~inputs:[ y; x ] in
  let ma = Array.of_list m and wa = Array.of_list w in
  Hier.Build.output b (Circuit.add_gate g Xor [ ma.(0); wa.(0) ]);
  List.iter (Hier.Build.output b) m;
  List.iter (Hier.Build.output b) w;
  Hier.Build.finish b

(* leaf <- mid <- top, with the leaf also instantiated directly by top *)
let chain_design ?(name = "chain") ?glue_seed impl =
  let lf = leaf impl in
  let mid = build_mid lf in
  let top = build_top mid lf in
  let d = Hier.make_design ~name ~top:"top" [ lf; mid; top ] in
  match glue_seed with
  | None -> d
  | Some seed ->
      List.fold_left
        (fun d n -> Hier.map_module d ~name:n ~f:(Hier.resynthesize ~seed))
        d [ "mid"; "top" ]

(* ---- structure ---- *)

let test_order_and_invalidation () =
  let d = chain_design `Xor in
  Alcotest.(check (list string))
    "leaf-first order"
    [ "leaf"; "mid"; "top" ]
    (Hier.module_order d);
  Alcotest.(check (list string))
    "leaf invalidates everything"
    [ "leaf"; "mid"; "top" ]
    (Hier.invalidation_set d "leaf");
  Alcotest.(check (list string))
    "mid invalidates its chain" [ "mid"; "top" ]
    (Hier.invalidation_set d "mid");
  Alcotest.(check (list string))
    "top invalidates only itself" [ "top" ]
    (Hier.invalidation_set d "top")

let test_flatten () =
  let d = chain_design `Xor in
  let c = Hier.flatten d in
  Alcotest.(check (list string))
    "flat inputs are the top ports" [ "x"; "y" ]
    (List.map (Circuit.signal_name c) (Circuit.inputs c));
  let latch_names =
    List.sort compare (List.map (Circuit.signal_name c) (Circuit.latches c))
  in
  Alcotest.(check (list string))
    "instance-path latch names"
    [ "m/u/l"; "w/l" ]
    latch_names;
  (* flattening is stable: the same design flattens to the same netlist *)
  Alcotest.(check string) "flatten deterministic"
    (Netlist_io.to_string c)
    (Netlist_io.to_string (Hier.flatten d));
  (* flatten_at the mid subtree only *)
  let m = Hier.flatten_at d "mid" in
  Alcotest.(check (list string))
    "subtree inputs" [ "p"; "q" ]
    (List.map (Circuit.signal_name m) (Circuit.inputs m))

let test_signatures () =
  let d = chain_design `Xor in
  let d' = Hier.map_module d ~name:"mid" ~f:(Hier.resynthesize ~seed:5) in
  Alcotest.(check bool) "leaf signature survives a mid edit" true
    (Hier.subtree_signature d "leaf" = Hier.subtree_signature d' "leaf");
  Alcotest.(check bool) "mid signature changes" true
    (Hier.subtree_signature d "mid" <> Hier.subtree_signature d' "mid");
  Alcotest.(check bool) "top signature changes (ancestor)" true
    (Hier.subtree_signature d "top" <> Hier.subtree_signature d' "top");
  Alcotest.(check bool) "boundary signature is structural only" true
    (Hier.boundary_signature d "mid" = Hier.boundary_signature d' "mid");
  Alcotest.(check bool) "module keys differ after the edit" true
    (Hier.module_key ~left:d ~right:d "mid"
    <> Hier.module_key ~left:d ~right:d' "mid")

(* ---- resynthesis ---- *)

let test_resynthesize_equivalent () =
  let c = Workloads.fifo ~entries:4 ~width:4 ~style:`Sop () in
  let r = Hier.resynthesize ~seed:3 c in
  Alcotest.(check bool) "structure actually changed" true
    (Netlist_io.to_string c <> Netlist_io.to_string r);
  (match flat_verdict c r with
  | Verify.Equivalent -> ()
  | _ -> Alcotest.fail "resynthesized circuit must stay equivalent");
  match flat_verdict c (Hier.break_output ~output:1 c) with
  | Verify.Inequivalent _ -> ()
  | _ -> Alcotest.fail "break_output must be caught"

(* ---- planner ---- *)

let test_planner_equivalent_pair () =
  let l = chain_design ~name:"chainL" `Xor in
  let r = chain_design ~name:"chainR" ~glue_seed:11 `Xor2 in
  let rep = Hier.check l r in
  (match rep.Hier.verdict with
  | Hier.Equivalent -> ()
  | _ -> Alcotest.fail "compositional check must prove the pair");
  Alcotest.(check int) "three module pairs checked" 3 rep.Hier.checked;
  Alcotest.(check int) "no fallbacks" 0 rep.Hier.flat_fallbacks;
  (* the compositional verdict agrees with flat verification *)
  match flat_verdict (Hier.flatten l) (Hier.flatten r) with
  | Verify.Equivalent -> ()
  | _ -> Alcotest.fail "flat reference disagrees"

(* Satellite: black-box soundness.  The two designs differ only in the
   leaf's internal function behind identical parent glue; black-boxing
   the leaf makes the parents indistinguishable, so a sound planner must
   refute at the leaf (never report Equivalent). *)
let test_blackbox_soundness () =
  let l = chain_design ~name:"soundL" `Xor in
  let r = chain_design ~name:"soundR" `And in
  let rep = Hier.check l r in
  (match rep.Hier.verdict with
  | Hier.Inequivalent { offending; _ } ->
      Alcotest.(check string) "attributed to the leaf" "leaf" offending
  | Hier.Equivalent -> Alcotest.fail "false Equivalent through a black box"
  | Hier.Undecided _ -> Alcotest.fail "pair is decidable");
  (* flat reference agrees *)
  match flat_verdict (Hier.flatten l) (Hier.flatten r) with
  | Verify.Inequivalent _ -> ()
  | _ -> Alcotest.fail "flat reference disagrees"

(* A blackbox refutation proves nothing: free cut-points can produce
   values the real child never does.  Here the child output is constant
   false, the left glue inverts it and the right glue hardwires true —
   the glue pair differs over a free cut-point but the composed designs
   are equivalent, so the planner must fall back to flat and prove it. *)
let test_blackbox_fallback () =
  let cleaf =
    let c = Circuit.create "cleaf" in
    let a = Circuit.add_input c "a" in
    Circuit.mark_output c
      (Circuit.add_gate c And [ a; Circuit.add_gate c Not [ a ] ]);
    Circuit.check c;
    {
      Hier.mod_name = "cleaf";
      glue = c;
      ports_in = [ "a" ];
      out_count = 1;
      instances = [];
    }
  in
  let top out_of =
    let b = Hier.Build.create "top" in
    let g = Hier.Build.glue b in
    let a = Hier.Build.input b "a" in
    let u = Hier.Build.inst b ~name:"u" ~child:cleaf ~inputs:[ a ] in
    Hier.Build.output b (out_of g (List.hd u));
    Hier.Build.finish b
  in
  let l =
    Hier.make_design ~name:"cpL" ~top:"top"
      [ cleaf; top (fun g u -> Circuit.add_gate g Not [ u ]) ]
  in
  let r =
    Hier.make_design ~name:"cpR" ~top:"top"
      [ cleaf; top (fun g _ -> Circuit.const_true g) ]
  in
  let rep = Hier.check l r in
  (match rep.Hier.verdict with
  | Hier.Equivalent -> ()
  | _ -> Alcotest.fail "flat fallback must prove the pair");
  Alcotest.(check int) "exactly one flat fallback" 1 rep.Hier.flat_fallbacks;
  let top_mode =
    List.find_map
      (fun m -> if m.Hier.rm_module = "top" then Some m.Hier.rm_mode else None)
      rep.Hier.modules
  in
  Alcotest.(check bool) "top decided flat" true (top_mode = Some Hier.Flat)

let test_verdict_reuse () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  let l = chain_design ~name:"warmL" `Xor in
  let r = chain_design ~name:"warmR" ~glue_seed:11 `Xor2 in
  let cold = Hier.check ~store:st l r in
  Alcotest.(check int) "cold: no hits" 0 cold.Hier.store_hits;
  Alcotest.(check int) "cold: all checked" 3 cold.Hier.checked;
  let warm = Hier.check ~store:st l r in
  (match warm.Hier.verdict with
  | Hier.Equivalent -> ()
  | _ -> Alcotest.fail "warm verdict differs");
  Alcotest.(check int) "warm: all hits" 3 warm.Hier.store_hits;
  Alcotest.(check int) "warm: nothing re-checked" 0 warm.Hier.checked;
  (* editing mid invalidates exactly its ancestor chain *)
  let r' = Hier.map_module r ~name:"mid" ~f:(Hier.resynthesize ~seed:23) in
  let third = Hier.check ~store:st l r' in
  (match third.Hier.verdict with
  | Hier.Equivalent -> ()
  | _ -> Alcotest.fail "edited pair must still prove");
  Alcotest.(check int) "untouched leaf is a store hit" 1 third.Hier.store_hits;
  Alcotest.(check int) "only the ancestor chain re-checked" 2 third.Hier.checked;
  (* hier records carry their kind in the store *)
  let kinds = (Store.info st).Store.kinds in
  Alcotest.(check bool) "store attributes hier records" true
    (match List.assoc_opt "hier" kinds with Some n -> n >= 3 | None -> false);
  Store.close st

let test_hierarchy_mismatch_falls_flat () =
  let l = chain_design ~name:"mmL" `Xor in
  (* same function, different hierarchy: a single-module design holding
     the whole flattened netlist *)
  let flat = Hier.flatten l in
  let r =
    Hier.make_design ~name:"mmR" ~top:"top"
      [
        {
          Hier.mod_name = "top";
          glue = Circuit.copy ~name:"top" flat;
          ports_in = [ "x"; "y" ];
          out_count = List.length (Circuit.outputs flat);
          instances = [];
        };
      ]
  in
  let rep = Hier.check l r in
  (match rep.Hier.verdict with
  | Hier.Equivalent -> ()
  | _ -> Alcotest.fail "mismatched hierarchies must still decide the pair");
  Alcotest.(check int) "decided by one flat check" 1 rep.Hier.flat_fallbacks

(* ---- the workload suite ---- *)

let test_hier_suite_verdicts () =
  List.iter
    (fun (name, l, r, expected) ->
      let rep = Hier.check l r in
      match (expected, rep.Hier.verdict) with
      | `Eq, Hier.Equivalent -> ()
      | `Neq m, Hier.Inequivalent { offending; _ } ->
          Alcotest.(check string) (name ^ ": offending module") m offending
      | _, _ -> Alcotest.fail (name ^ ": wrong compositional verdict"))
    (Workloads.hier_suite ())

let test_hier_mutant_agrees_with_flat () =
  let _, l, r, _ =
    List.find (fun (n, _, _, _) -> n = "halu_mut") (Workloads.hier_suite ())
  in
  match flat_verdict (Hier.flatten l) (Hier.flatten r) with
  | Verify.Inequivalent _ -> ()
  | _ -> Alcotest.fail "flat check must refute the broken mutant too"

let suite =
  [
    Alcotest.test_case "order and invalidation" `Quick test_order_and_invalidation;
    Alcotest.test_case "flatten" `Quick test_flatten;
    Alcotest.test_case "signatures" `Quick test_signatures;
    Alcotest.test_case "resynthesize equivalence" `Quick test_resynthesize_equivalent;
    Alcotest.test_case "planner proves equivalent pair" `Quick test_planner_equivalent_pair;
    Alcotest.test_case "black-box soundness" `Quick test_blackbox_soundness;
    Alcotest.test_case "black-box refutation falls back flat" `Quick test_blackbox_fallback;
    Alcotest.test_case "verdict reuse and invalidation scope" `Quick test_verdict_reuse;
    Alcotest.test_case "hierarchy mismatch falls flat" `Quick test_hierarchy_mismatch_falls_flat;
    Alcotest.test_case "hier suite verdicts" `Quick test_hier_suite_verdicts;
    Alcotest.test_case "broken mutant agrees with flat" `Quick test_hier_mutant_agrees_with_flat;
  ]
