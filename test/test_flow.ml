(* The Fig. 19 experimental flow and the Table 1/2 claims in miniature. *)

let st = Random.State.make [| 0xF10 |]

let flow_ok ?jobs ?skip_verify c =
  match Flow.run ?jobs ?skip_verify c with
  | Ok row -> row
  | Error d ->
      Alcotest.failf "unexpected diagnosis: %s" (Seqprob.diagnosis_to_string d)

let test_flow_verifies () =
  for i = 1 to 6 do
    let c =
      Gen.feedback st
        ~name:(Printf.sprintf "fl%d" i)
        ~inputs:3 ~gates:(30 + Random.State.int st 40) ~latches:(3 + Random.State.int st 4)
        ~outputs:2
    in
    let row = flow_ok c in
    (match row.Flow.verify_verdict with
    | Verify.Equivalent -> ()
    | Verify.Inequivalent _ -> Alcotest.fail "B vs C verification failed"
    | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r);
    Alcotest.(check bool) "exposure percentage sane" true
      (row.Flow.exposed_percent >= 0. && row.Flow.exposed_percent <= 100.)
  done

let test_flow_shape_on_pipeline () =
  (* pipelines: C at least as fast as D, E no more latches than C at D's
     delay *)
  let c = Workloads.pipeline ~name:"fshape" ~width:8 ~stages:6 ~imbalance:4 ~seed:5 in
  let row = flow_ok ~skip_verify:true c in
  Alcotest.(check int) "no exposure on acyclic" 0 row.Flow.exposed;
  Alcotest.(check bool) "C delay <= D delay" true
    (row.Flow.c.Flow.delay <= row.Flow.d.Flow.delay);
  Alcotest.(check bool) "E delay <= D delay" true
    (row.Flow.e.Flow.delay <= row.Flow.d.Flow.delay);
  Alcotest.(check bool) "E latches <= C latches" true
    (row.Flow.e.Flow.latches <= row.Flow.c.Flow.latches)

let test_flow_minmax_shape () =
  let row = flow_ok (Workloads.minmax ~width:8) in
  (* two thirds of the latches are feedback min/max registers *)
  Alcotest.(check int) "exposed = 2w" 16 row.Flow.exposed;
  Alcotest.(check bool) "~66%" true
    (row.Flow.exposed_percent > 60. && row.Flow.exposed_percent < 70.);
  Alcotest.(check bool) "retiming wins on delay" true
    (row.Flow.c.Flow.delay < row.Flow.d.Flow.delay);
  (* F (no exposure constraints) is at least as good as C *)
  Alcotest.(check bool) "exposure penalty" true
    (row.Flow.f.Flow.delay <= row.Flow.c.Flow.delay);
  match row.Flow.verify_verdict with
  | Verify.Equivalent -> ()
  | Verify.Inequivalent _ -> Alcotest.fail "minmax flow verification failed"
  | Verify.Undecided r -> Alcotest.failf "unbudgeted check undecided: %s" r

let test_flow_b_keeps_outputs () =
  let c =
    Gen.feedback st ~name:"fb_out" ~inputs:3 ~gates:30 ~latches:4 ~outputs:2
  in
  let b, copt = Result.get_ok (Flow.circuits c) in
  (* B has the original outputs plus one per exposed latch *)
  Alcotest.(check bool) "B outputs grew" true
    (List.length (Circuit.outputs b) >= List.length (Circuit.outputs c));
  Circuit.check copt

let test_exposure_report () =
  let c =
    Workloads.industrial ~name:"tiny" ~latches:60 ~exposed:20 ~unate_fraction:0.5
      ~enable_fraction:0.3 ~seed:9
  in
  let total, structural, functional = Flow.exposure_report c in
  Alcotest.(check int) "total" 60 total;
  Alcotest.(check int) "structural = generated self-loops" 20 structural;
  Alcotest.(check bool) "functional <= structural" true (functional <= structural);
  (* half the self-loops are conditional updates: functional about halves *)
  Alcotest.(check bool) "functional close to half" true (functional <= 14)

let test_flow_parallel_verify_agrees () =
  (* the whole reduction, end to end, at jobs 1/2/4: same verdict, and the
     parallel runs report a jobs-independent cone partitioning *)
  for i = 1 to 3 do
    let c =
      Gen.feedback st
        ~name:(Printf.sprintf "flp%d" i)
        ~inputs:3 ~gates:(30 + Random.State.int st 30) ~latches:(3 + Random.State.int st 3)
        ~outputs:2
    in
    let rows = List.map (fun jobs -> (jobs, flow_ok ~jobs c)) [ 1; 2; 4 ] in
    let verdicts =
      List.map (fun (_, r) -> r.Flow.verify_verdict = Verify.Equivalent) rows
    in
    Alcotest.(check bool) "verdicts agree across jobs" true
      (List.for_all (fun v -> v = List.hd verdicts) verdicts);
    let parts =
      List.filter_map
        (fun (jobs, r) ->
          let cec = r.Flow.verify_stats.Verify.cec in
          if jobs > 1 then begin
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d partitioned" jobs)
              true (cec.Cec.partitions >= 1);
            Some cec.Cec.partitions
          end
          else None)
        rows
    in
    Alcotest.(check bool) "partition layout independent of jobs" true
      (List.for_all (fun p -> p = List.hd parts) parts)
  done

let suite =
  [
    Alcotest.test_case "flow verifies B vs C" `Quick test_flow_verifies;
    Alcotest.test_case "parallel flow verify agrees" `Quick test_flow_parallel_verify_agrees;
    Alcotest.test_case "pipeline shape" `Quick test_flow_shape_on_pipeline;
    Alcotest.test_case "minmax shape" `Quick test_flow_minmax_shape;
    Alcotest.test_case "B keeps outputs" `Quick test_flow_b_keeps_outputs;
    Alcotest.test_case "exposure report" `Quick test_exposure_report;
  ]
