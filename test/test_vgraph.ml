(* Unit + property tests for the graph substrate. *)

let st = Random.State.make [| 0x5EED1 |]

let random_digraph ?(allow_self = true) ~nodes ~edges () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g nodes;
  for _ = 1 to edges do
    let u = Random.State.int st nodes in
    let v = Random.State.int st nodes in
    if allow_self || u <> v then ignore (Vgraph.Digraph.add_edge g u v)
  done;
  g

let random_dag ~nodes ~edges =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g nodes;
  for _ = 1 to edges do
    let u = Random.State.int st nodes and v = Random.State.int st nodes in
    if u < v then ignore (Vgraph.Digraph.add_edge g u v)
  done;
  g

(* ---- Vec ---- *)

let test_vec_push_pop () =
  let v = Vgraph.Vec.create ~dummy:0 () in
  for i = 0 to 999 do
    Alcotest.(check int) "push index" i (Vgraph.Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vgraph.Vec.length v);
  for i = 999 downto 0 do
    Alcotest.(check int) "pop" i (Vgraph.Vec.pop v)
  done;
  Alcotest.(check bool) "empty" true (Vgraph.Vec.is_empty v)

let test_vec_bounds () =
  let v = Vgraph.Vec.create ~dummy:0 () in
  ignore (Vgraph.Vec.push v 42);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of bounds (len 1)")
    (fun () -> ignore (Vgraph.Vec.get v 1));
  Alcotest.check_raises "get neg" (Invalid_argument "Vec: index -1 out of bounds (len 1)")
    (fun () -> ignore (Vgraph.Vec.get v (-1)))

let test_vec_shrink_iter () =
  let v = Vgraph.Vec.create ~dummy:(-1) () in
  for i = 0 to 9 do
    ignore (Vgraph.Vec.push v i)
  done;
  Vgraph.Vec.shrink v 5;
  Alcotest.(check (list int)) "after shrink" [ 0; 1; 2; 3; 4 ] (Vgraph.Vec.to_list v);
  let sum = Vgraph.Vec.fold ( + ) 0 v in
  Alcotest.(check int) "fold" 10 sum

(* ---- Heap ---- *)

let test_heap_sorts () =
  let h = Vgraph.Heap.create ~cmp:compare ~dummy:0 () in
  let xs = List.init 500 (fun _ -> Random.State.int st 10000) in
  List.iter (Vgraph.Heap.add h) xs;
  let out = List.init 500 (fun _ -> Vgraph.Heap.pop_min h) in
  Alcotest.(check (list int)) "heap sort" (List.sort compare xs) out

(* ---- Topo ---- *)

let test_topo_dag () =
  for _ = 1 to 50 do
    let g = random_dag ~nodes:30 ~edges:80 in
    match Vgraph.Topo.sort g with
    | None -> Alcotest.fail "DAG reported cyclic"
    | Some order ->
        let pos = Array.make 30 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        Vgraph.Digraph.iter_edges
          (fun _ e ->
            if pos.(e.src) >= pos.(e.dst) then Alcotest.fail "order violates edge")
          g
  done

let test_topo_cycle_detect () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 3;
  ignore (Vgraph.Digraph.add_edge g 0 1);
  ignore (Vgraph.Digraph.add_edge g 1 2);
  ignore (Vgraph.Digraph.add_edge g 2 0);
  Alcotest.(check bool) "cyclic" false (Vgraph.Topo.is_acyclic g);
  match Vgraph.Topo.find_cycle g with
  | None -> Alcotest.fail "no cycle found"
  | Some cyc ->
      Alcotest.(check int) "cycle length" 3 (List.length cyc)

let test_topo_levels () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 4;
  ignore (Vgraph.Digraph.add_edge g 0 1);
  ignore (Vgraph.Digraph.add_edge g 1 2);
  ignore (Vgraph.Digraph.add_edge g 0 2);
  ignore (Vgraph.Digraph.add_edge g 2 3);
  let lev = Vgraph.Topo.levels g in
  Alcotest.(check (list int)) "levels" [ 0; 1; 2; 3 ] (Array.to_list lev)

(* ---- SCC ---- *)

let test_scc_partition () =
  for _ = 1 to 30 do
    let n = 20 in
    let g = random_digraph ~nodes:n ~edges:40 () in
    let comps = Vgraph.Scc.components g in
    (* partition: every node exactly once *)
    let seen = Array.make n 0 in
    List.iter (List.iter (fun v -> seen.(v) <- seen.(v) + 1)) comps;
    Array.iter (fun k -> Alcotest.(check int) "node in exactly one SCC" 1 k) seen;
    (* reverse topological order: sinks first, so a cross edge src -> dst
       must point to an earlier-listed component *)
    let id, _ = Vgraph.Scc.component_ids g in
    Vgraph.Digraph.iter_edges
      (fun _ e ->
        if id.(e.src) <> id.(e.dst) && id.(e.src) < id.(e.dst) then
          Alcotest.fail "component order violated")
      g
  done

let test_scc_mutual_reach () =
  (* two nodes in same SCC iff mutually reachable *)
  let reachable g src =
    let n = Vgraph.Digraph.node_count g in
    let seen = Array.make n false in
    let rec go v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Vgraph.Digraph.iter_succ g v (fun _ e -> go e.dst)
      end
    in
    go src;
    seen
  in
  for _ = 1 to 20 do
    let n = 12 in
    let g = random_digraph ~nodes:n ~edges:20 () in
    let id, _ = Vgraph.Scc.component_ids g in
    let reach = Array.init n (fun v -> reachable g v) in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        let mutual = reach.(u).(v) && reach.(v).(u) in
        Alcotest.(check bool)
          (Printf.sprintf "scc %d %d" u v)
          mutual
          (id.(u) = id.(v))
      done
    done
  done

(* ---- Bellman-Ford ---- *)

let test_bf_feasible_difference_constraints () =
  for _ = 1 to 40 do
    let n = 10 in
    let g = Vgraph.Digraph.create () in
    Vgraph.Digraph.add_nodes g n;
    (* generate a feasible system from a hidden assignment *)
    let x = Array.init n (fun _ -> Random.State.int st 20 - 10) in
    for _ = 1 to 25 do
      let u = Random.State.int st n and v = Random.State.int st n in
      (* constraint d(v) <= d(u) + w with w >= x(v) - x(u): feasible *)
      let w = x.(v) - x.(u) + Random.State.int st 3 in
      ignore (Vgraph.Digraph.add_edge g ~weight:w u v)
    done;
    match Vgraph.Bellman_ford.feasible_potentials g with
    | None -> Alcotest.fail "feasible system declared infeasible"
    | Some p ->
        Vgraph.Digraph.iter_edges
          (fun _ e ->
            if p.(e.dst) > p.(e.src) + e.weight then Alcotest.fail "potentials invalid")
          g
  done

let test_bf_negative_cycle () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 3;
  ignore (Vgraph.Digraph.add_edge g ~weight:1 0 1);
  ignore (Vgraph.Digraph.add_edge g ~weight:(-2) 1 2);
  ignore (Vgraph.Digraph.add_edge g ~weight:0 2 0);
  (match Vgraph.Bellman_ford.solve g with
  | Vgraph.Bellman_ford.Distances _ -> Alcotest.fail "missed negative cycle"
  | Vgraph.Bellman_ford.Negative_cycle cyc ->
      Alcotest.(check bool) "cycle nonempty" true (cyc <> []));
  Alcotest.(check bool) "feasible none" true
    (Vgraph.Bellman_ford.feasible_potentials g = None)

(* ---- Dijkstra ---- *)

let test_dijkstra_vs_bf () =
  for _ = 1 to 30 do
    let n = 15 in
    let g = Vgraph.Digraph.create () in
    Vgraph.Digraph.add_nodes g n;
    for _ = 1 to 40 do
      let u = Random.State.int st n and v = Random.State.int st n in
      ignore (Vgraph.Digraph.add_edge g ~weight:(Random.State.int st 10) u v)
    done;
    let d = Vgraph.Dijkstra.shortest g ~src:0 in
    (* reference: Bellman-Ford style relaxation *)
    let ref_d = Array.make n max_int in
    ref_d.(0) <- 0;
    for _ = 1 to n do
      Vgraph.Digraph.iter_edges
        (fun _ e ->
          if ref_d.(e.src) < max_int && ref_d.(e.src) + e.weight < ref_d.(e.dst) then
            ref_d.(e.dst) <- ref_d.(e.src) + e.weight)
        g
    done;
    Alcotest.(check (array int)) "dijkstra = bf" ref_d d
  done

let test_dijkstra_lexicographic () =
  (* diamond: two paths of equal weight, different delay: D must take max *)
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 4;
  let delay = [| 0; 5; 1; 2 |] in
  ignore (Vgraph.Digraph.add_edge g ~weight:1 0 1);
  ignore (Vgraph.Digraph.add_edge g ~weight:0 1 3);
  ignore (Vgraph.Digraph.add_edge g ~weight:0 0 2);
  ignore (Vgraph.Digraph.add_edge g ~weight:1 2 3);
  let w, d = Vgraph.Dijkstra.lexicographic g ~src:0 ~tie:(fun e -> delay.(e.dst)) in
  Alcotest.(check int) "W(0,3)" 1 w.(3);
  (* both paths have weight 1; delays: via 1: 5+2=7, via 2: 1+2=3 -> 7 *)
  Alcotest.(check int) "D(0,3) picks max-delay min-weight path" 7 d.(3)

(* ---- Min-cost flow ---- *)

let test_flow_simple_transport () =
  (* source 0 (supply 4), sink 2 (-4); two routes with different costs *)
  let arcs =
    [
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 3; cost = 1 };
      { Vgraph.Mincost_flow.src = 1; dst = 2; capacity = 3; cost = 1 };
      { Vgraph.Mincost_flow.src = 0; dst = 2; capacity = 10; cost = 5 };
    ]
  in
  match Vgraph.Mincost_flow.solve ~nodes:3 ~arcs [| 4; 0; -4 |] with
  | None -> Alcotest.fail "feasible flow declared infeasible"
  | Some r ->
      (* 3 units via cheap route (cost 2 each), 1 via expensive (5) *)
      Alcotest.(check int) "total cost" ((3 * 2) + 5) r.Vgraph.Mincost_flow.total_cost

let test_flow_infeasible () =
  let arcs = [ { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 1; cost = 0 } ] in
  Alcotest.(check bool) "infeasible" true
    (Vgraph.Mincost_flow.solve ~nodes:2 ~arcs [| 3; -3 |] = None)

let test_flow_potentials_optimality () =
  (* after solving, reduced costs on arcs with residual capacity >= 0 *)
  for _ = 1 to 20 do
    let n = 6 in
    let arcs =
      List.init 12 (fun _ ->
          {
            Vgraph.Mincost_flow.src = Random.State.int st n;
            dst = Random.State.int st n;
            capacity = 1 + Random.State.int st 5;
            cost = Random.State.int st 8;
          })
    in
    (* supply: route 2 units between two random distinct nodes, plus a
       direct high-capacity arc to guarantee feasibility *)
    let s = Random.State.int st n in
    let t = (s + 1 + Random.State.int st (n - 1)) mod n in
    let arcs = { Vgraph.Mincost_flow.src = s; dst = t; capacity = 10; cost = 20 } :: arcs in
    let supply = Array.make n 0 in
    supply.(s) <- 2;
    supply.(t) <- -2;
    match Vgraph.Mincost_flow.solve ~nodes:n ~arcs supply with
    | None -> Alcotest.fail "unexpected infeasible"
    | Some r ->
        List.iteri
          (fun i (a : Vgraph.Mincost_flow.arc) ->
            let pi = r.Vgraph.Mincost_flow.potentials in
            if r.Vgraph.Mincost_flow.flow.(i) < a.capacity then
              Alcotest.(check bool) "reduced cost >= 0" true
                (a.cost + pi.(a.src) - pi.(a.dst) >= 0);
            if r.Vgraph.Mincost_flow.flow.(i) > 0 then
              Alcotest.(check bool) "reverse reduced cost >= 0" true
                (-a.cost + pi.(a.dst) - pi.(a.src) >= 0))
          arcs
  done

let test_flow_zero_capacity_arcs () =
  (* a zero-capacity arc carries nothing: the expensive route must win ... *)
  let arcs =
    [
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 0; cost = 0 };
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 2; cost = 7 };
    ]
  in
  (match Vgraph.Mincost_flow.solve ~nodes:2 ~arcs [| 2; -2 |] with
  | None -> Alcotest.fail "zero-capacity arc made a feasible problem infeasible"
  | Some r ->
      Alcotest.(check int) "cost via priced route" 14 r.Vgraph.Mincost_flow.total_cost;
      Alcotest.(check int) "zero-cap arc unused" 0 r.Vgraph.Mincost_flow.flow.(0));
  (* ... and with only the zero-capacity route the problem is infeasible *)
  let only = [ { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 0; cost = 0 } ] in
  Alcotest.(check bool) "zero-capacity-only route infeasible" true
    (Vgraph.Mincost_flow.solve ~nodes:2 ~arcs:only [| 1; -1 |] = None)

let test_flow_negative_cost_arc () =
  (* acyclic negative-cost arcs are legal and preferred *)
  let arcs =
    [
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 5; cost = -2 };
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 5; cost = 3 };
    ]
  in
  match Vgraph.Mincost_flow.solve ~nodes:2 ~arcs [| 4; -4 |] with
  | None -> Alcotest.fail "negative-cost arc made a feasible problem infeasible"
  | Some r -> Alcotest.(check int) "all flow on the cheap arc" (-8) r.Vgraph.Mincost_flow.total_cost

let test_flow_negative_cycle_rejected () =
  (* a residual negative-cost cycle is a caller bug, not an infeasibility *)
  let arcs =
    [
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 5; cost = -3 };
      { Vgraph.Mincost_flow.src = 1; dst = 0; capacity = 5; cost = 1 };
    ]
  in
  Alcotest.check_raises "negative cycle rejected"
    (Invalid_argument "Mincost_flow.solve: negative-cost cycle") (fun () ->
      ignore (Vgraph.Mincost_flow.solve ~nodes:2 ~arcs [| 0; 0 |]))

let test_flow_init_potentials () =
  let arcs =
    [
      { Vgraph.Mincost_flow.src = 0; dst = 1; capacity = 3; cost = 1 };
      { Vgraph.Mincost_flow.src = 1; dst = 2; capacity = 3; cost = 1 };
      { Vgraph.Mincost_flow.src = 0; dst = 2; capacity = 10; cost = 5 };
    ]
  in
  (* all-zero potentials are reduced-cost feasible on non-negative costs *)
  (match
     Vgraph.Mincost_flow.solve ~init_potentials:(Array.make 3 0) ~nodes:3 ~arcs
       [| 4; 0; -4 |]
   with
  | None -> Alcotest.fail "warm-started solve infeasible"
  | Some r -> Alcotest.(check int) "warm-started cost" 11 r.Vgraph.Mincost_flow.total_cost);
  (* infeasible potentials must be rejected, not silently accepted *)
  let bad = [| 0; 5; 0 |] in
  Alcotest.check_raises "bad potentials rejected"
    (Invalid_argument "Mincost_flow.solve: init_potentials not reduced-cost feasible")
    (fun () -> ignore (Vgraph.Mincost_flow.solve ~init_potentials:bad ~nodes:3 ~arcs [| 4; 0; -4 |]))

let test_flow_fast_vs_reference_random () =
  (* the scaling core and the retained reference must agree on feasibility
     and on the optimal cost over random instances *)
  for _ = 1 to 60 do
    let n = 2 + Random.State.int st 6 in
    let arcs =
      List.init
        (4 + Random.State.int st 14)
        (fun _ ->
          {
            Vgraph.Mincost_flow.src = Random.State.int st n;
            dst = Random.State.int st n;
            capacity = Random.State.int st 6;
            cost = Random.State.int st 9;
          })
    in
    let supply = Array.make n 0 in
    let units = 1 + Random.State.int st 4 in
    for _ = 1 to units do
      let s = Random.State.int st n in
      let t = Random.State.int st n in
      supply.(s) <- supply.(s) + 1;
      supply.(t) <- supply.(t) - 1
    done;
    match
      ( Vgraph.Mincost_flow.solve ~nodes:n ~arcs supply,
        Vgraph.Mincost_flow.solve_reference ~nodes:n ~arcs supply )
    with
    | Some f, Some r ->
        Alcotest.(check int) "optimal costs agree" r.Vgraph.Mincost_flow.total_cost
          f.Vgraph.Mincost_flow.total_cost
    | None, None -> ()
    | Some _, None -> Alcotest.fail "fast feasible, reference infeasible"
    | None, Some _ -> Alcotest.fail "fast infeasible, reference feasible"
  done

(* ---- MFVS ---- *)

let test_mfvs_breaks_all_cycles () =
  for _ = 1 to 40 do
    let g = random_digraph ~nodes:15 ~edges:30 () in
    let s = Vgraph.Mfvs.solve g ~candidates:(fun _ -> true) in
    Alcotest.(check bool) "is feedback set" true (Vgraph.Mfvs.is_feedback_set g s)
  done

let test_mfvs_minimal_under_inclusion () =
  for _ = 1 to 20 do
    let g = random_digraph ~nodes:12 ~edges:22 () in
    let s = Vgraph.Mfvs.solve g ~candidates:(fun _ -> true) in
    List.iter
      (fun v ->
        let without = List.filter (fun u -> u <> v) s in
        Alcotest.(check bool) "no member is redundant" false
          (Vgraph.Mfvs.is_feedback_set g without))
      s
  done

let test_mfvs_self_loops_forced () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 3;
  ignore (Vgraph.Digraph.add_edge g 0 0);
  ignore (Vgraph.Digraph.add_edge g 2 2);
  ignore (Vgraph.Digraph.add_edge g 0 1);
  let s = Vgraph.Mfvs.solve g ~candidates:(fun _ -> true) in
  Alcotest.(check (list int)) "both self-loops chosen" [ 0; 2 ] s

let test_mfvs_acyclic_empty () =
  let g = random_dag ~nodes:20 ~edges:40 in
  Alcotest.(check (list int)) "DAG needs nothing" []
    (Vgraph.Mfvs.solve g ~candidates:(fun _ -> true))

let test_mfvs_no_candidate () =
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g 2;
  ignore (Vgraph.Digraph.add_edge g 0 1);
  ignore (Vgraph.Digraph.add_edge g 1 0);
  Alcotest.check_raises "cycle without candidates"
    (Invalid_argument "Mfvs.solve: a cycle contains no candidate node") (fun () ->
      ignore (Vgraph.Mfvs.solve g ~candidates:(fun _ -> false)))

let suite =
  [
    Alcotest.test_case "vec push/pop" `Quick test_vec_push_pop;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec shrink/iter" `Quick test_vec_shrink_iter;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "topo on DAGs" `Quick test_topo_dag;
    Alcotest.test_case "topo cycle detection" `Quick test_topo_cycle_detect;
    Alcotest.test_case "topo levels" `Quick test_topo_levels;
    Alcotest.test_case "scc partition + order" `Quick test_scc_partition;
    Alcotest.test_case "scc = mutual reachability" `Quick test_scc_mutual_reach;
    Alcotest.test_case "bellman-ford feasible systems" `Quick test_bf_feasible_difference_constraints;
    Alcotest.test_case "bellman-ford negative cycle" `Quick test_bf_negative_cycle;
    Alcotest.test_case "dijkstra matches bellman-ford" `Quick test_dijkstra_vs_bf;
    Alcotest.test_case "dijkstra lexicographic (W,D)" `Quick test_dijkstra_lexicographic;
    Alcotest.test_case "min-cost flow transport" `Quick test_flow_simple_transport;
    Alcotest.test_case "min-cost flow infeasible" `Quick test_flow_infeasible;
    Alcotest.test_case "flow potentials optimal" `Quick test_flow_potentials_optimality;
    Alcotest.test_case "flow zero-capacity arcs" `Quick test_flow_zero_capacity_arcs;
    Alcotest.test_case "flow negative-cost arc" `Quick test_flow_negative_cost_arc;
    Alcotest.test_case "flow negative cycle rejected" `Quick test_flow_negative_cycle_rejected;
    Alcotest.test_case "flow warm-start potentials" `Quick test_flow_init_potentials;
    Alcotest.test_case "flow fast = reference" `Quick test_flow_fast_vs_reference_random;
    Alcotest.test_case "mfvs breaks all cycles" `Quick test_mfvs_breaks_all_cycles;
    Alcotest.test_case "mfvs inclusion-minimal" `Quick test_mfvs_minimal_under_inclusion;
    Alcotest.test_case "mfvs self-loops forced" `Quick test_mfvs_self_loops_forced;
    Alcotest.test_case "mfvs empty on DAG" `Quick test_mfvs_acyclic_empty;
    Alcotest.test_case "mfvs missing candidate" `Quick test_mfvs_no_candidate;
  ]
