(* Persistent verdict store: binary round-trip, LRU eviction, crash and
   corruption recovery, multi-handle sharing, and end-to-end verdict
   transfer through Cec at a different unrolling depth. *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "seqver_store_%d_%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Unix.rmdir d
    end;
    d

let log_path dir = Filename.concat dir Store.file_name

let verdict_eq (a : Store.verdict) b = a = b

let check_verdict msg expected got =
  Alcotest.(check bool) msg true (Option.fold ~none:false ~some:(verdict_eq expected) got)

(* ---- CRC32 ---- *)

let test_crc32 () =
  (* the standard IEEE check value *)
  Alcotest.(check int) "crc32 check vector" 0xCBF43926 (Store.crc32 "123456789");
  Alcotest.(check int) "crc32 empty" 0 (Store.crc32 "");
  Alcotest.(check bool) "crc32 detects a flip" true
    (Store.crc32 "123456789" <> Store.crc32 "123456788")

(* ---- round trip ---- *)

let test_roundtrip () =
  let dir = fresh_dir () in
  let cex = [ (0, true); (3, false); (17, true) ] in
  let st = Store.open_ dir in
  Alcotest.(check bool) "fresh add" true (Store.add st "sig-eq" Store.Equivalent);
  Alcotest.(check bool) "fresh add cex" true (Store.add st "sig-ineq" (Store.Inequivalent cex));
  Alcotest.(check bool) "duplicate add is a no-op" false (Store.add st "sig-eq" Store.Equivalent);
  check_verdict "find before close" (Store.Inequivalent cex) (Store.find st "sig-ineq");
  Store.close st;
  let st = Store.open_ dir in
  let i = Store.info st in
  Alcotest.(check int) "entries survive reopen" 2 i.Store.entries;
  Alcotest.(check (option string)) "no quarantine" None i.Store.quarantined_to;
  check_verdict "equivalent round-trips" Store.Equivalent (Store.find st "sig-eq");
  check_verdict "cex round-trips" (Store.Inequivalent cex) (Store.find st "sig-ineq");
  Alcotest.(check (option string)) "miss" None
    (Option.map (fun _ -> "hit") (Store.find st "sig-absent"));
  let i = Store.info st in
  Alcotest.(check int) "hits counted" 2 i.Store.hits;
  Alcotest.(check int) "misses counted" 1 i.Store.misses;
  Store.close st;
  Alcotest.check_raises "use after close" (Invalid_argument "Store: store is closed")
    (fun () -> ignore (Store.find st "sig-eq"))

(* ---- LRU eviction at capacity ---- *)

let test_eviction () =
  let dir = fresh_dir () in
  let st = Store.open_ ~capacity:8 dir in
  for k = 0 to 7 do
    ignore (Store.add st (Printf.sprintf "k%d" k) Store.Equivalent)
  done;
  (* refresh k0 and k1 so the eviction pass must drop k2..k4 instead *)
  ignore (Store.find st "k0");
  ignore (Store.find st "k1");
  ignore (Store.add st "k8" Store.Equivalent);
  let i = Store.info st in
  Alcotest.(check int) "evicted down to 3/4 capacity" 6 i.Store.entries;
  Alcotest.(check int) "evictions counted" 3 i.Store.evictions;
  Alcotest.(check int) "one automatic compaction" 1 i.Store.compactions;
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " survives") true (Store.mem st k))
    [ "k0"; "k1"; "k5"; "k6"; "k7"; "k8" ];
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " evicted") false (Store.mem st k))
    [ "k2"; "k3"; "k4" ];
  Store.close st;
  (* recency was persisted by the compaction: the survivors reload *)
  let st = Store.open_ ~capacity:8 dir in
  Alcotest.(check int) "survivors reload" 6 (Store.info st).Store.entries;
  Store.close st

(* ---- two handles on one directory (the cross-process protocol) ---- *)

let test_two_handles () =
  let dir = fresh_dir () in
  let t1 = Store.open_ dir in
  let t2 = Store.open_ dir in
  ignore (Store.add t1 "from-1" Store.Equivalent);
  ignore (Store.add t2 "from-2" (Store.Inequivalent [ (1, true) ]));
  (* appends interleave in one log; each handle only indexes its own until
     a compaction merges the file *)
  Alcotest.(check bool) "t1 blind to t2 before merge" false (Store.mem t1 "from-2");
  Store.compact t1;
  Alcotest.(check bool) "t1 sees t2 after merge" true (Store.mem t1 "from-2");
  ignore (Store.add t2 "from-2-late" Store.Equivalent);
  Store.close t1;
  Store.close t2;
  (* t2 appended through t1's compaction rewrite; nothing may be lost *)
  let st = Store.open_ dir in
  Alcotest.(check int) "all writers merged" 3 (Store.info st).Store.entries;
  Alcotest.(check (option string)) "log stayed healthy" None
    (Store.info st).Store.quarantined_to;
  Store.close st

let test_concurrent_domains () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  let per = 40 in
  let writer w () =
    for k = 0 to per - 1 do
      ignore (Store.add st (Printf.sprintf "d%d-%d" w k) Store.Equivalent)
    done
  in
  let ds = List.init 4 (fun w -> Domain.spawn (writer w)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "all writes indexed" (4 * per) (Store.info st).Store.entries;
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "all writes durable" (4 * per) (Store.info st).Store.entries;
  Alcotest.(check (option string)) "no torn records" None
    (Store.info st).Store.quarantined_to;
  Store.close st

(* ---- corruption recovery ---- *)

let seed_store dir n =
  let st = Store.open_ dir in
  for k = 0 to n - 1 do
    ignore
      (Store.add st (Printf.sprintf "c%d" k) (Store.Inequivalent [ (k, true) ]))
  done;
  Store.close st

let quarantine_count dir =
  Array.fold_left
    (fun acc f ->
      if String.length f >= 10 && String.sub f 0 10 = "verdicts.b"
         && String.length f > String.length Store.file_name
      then acc + 1
      else acc)
    0 (Sys.readdir dir)

let test_truncated_log () =
  let dir = fresh_dir () in
  seed_store dir 3;
  let path = log_path dir in
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 3) (* tear the final record mid-payload *);
  let st = Store.open_ dir in
  let i = Store.info st in
  Alcotest.(check int) "valid prefix salvaged" 2 i.Store.entries;
  Alcotest.(check bool) "quarantine reported" true (i.Store.quarantined_to <> None);
  let q = Option.get i.Store.quarantined_to in
  Alcotest.(check bool) "quarantine file exists" true (Sys.file_exists q);
  check_verdict "salvaged record intact" (Store.Inequivalent [ (0, true) ])
    (Store.find st "c0");
  (* the store is live again: writes go to a fresh healthy log *)
  Alcotest.(check bool) "store writable after recovery" true
    (Store.add st "after" Store.Equivalent);
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "recovered log reloads" 3 (Store.info st).Store.entries;
  Alcotest.(check (option string)) "second open is clean" None
    (Store.info st).Store.quarantined_to;
  Store.close st

let test_bit_flip () =
  let dir = fresh_dir () in
  seed_store dir 3;
  let path = log_path dir in
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (size - 2) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1) (* flip payload bytes *);
  Unix.close fd;
  let st = Store.open_ dir in
  Alcotest.(check int) "crc rejects the damaged tail" 2 (Store.info st).Store.entries;
  Alcotest.(check bool) "damaged log quarantined" true
    ((Store.info st).Store.quarantined_to <> None);
  Store.close st

let test_bad_magic () =
  let dir = fresh_dir () in
  seed_store dir 2;
  let oc = open_out (log_path dir) in
  output_string oc "definitely not a verdict store";
  close_out oc;
  let st = Store.open_ dir in
  Alcotest.(check int) "cold start from bad magic" 0 (Store.info st).Store.entries;
  Alcotest.(check bool) "bad file quarantined" true
    ((Store.info st).Store.quarantined_to <> None);
  Alcotest.(check bool) "two quarantines never collide" true (quarantine_count dir >= 1);
  ignore (Store.add st "fresh" Store.Equivalent);
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "fresh log after quarantine" 1 (Store.info st).Store.entries;
  Store.close st

(* ---- verdict transfer through Cec ---- *)

(* [x] vs [x AND y] at unrolling depth [d]: inequivalent, cex x=1, y=0. *)
let xy_problem d =
  let b = Seqprob.builder () in
  let x = Seqprob.var_lit b (Seqprob.Var.time "x" d) in
  let y = Seqprob.var_lit b (Seqprob.Var.time "y" d) in
  let xy = Aig.and_ (Seqprob.graph b) x y in
  Result.get_ok (Seqprob.problem b ~outs1:[ x ] ~outs2:[ xy ])

let test_cex_replay_across_depths () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  let v0, s0 = Cec.check_problem_with_stats ~store:st (xy_problem 0) in
  (match v0 with
  | Cec.Inequivalent _ -> ()
  | _ -> Alcotest.fail "cold check must find the counterexample");
  Alcotest.(check int) "cold check had no store hit" 0 s0.Cec.store_hits;
  Alcotest.(check int) "cold run wrote the verdict" 1 s0.Cec.store_writes;
  Store.close st;
  (* same cones, one unrolling step later: structurally identical, so the
     stored verdict transfers and the cex is rebased onto the new vars *)
  let st = Store.open_ dir in
  let p1 = xy_problem 1 in
  let v1, s1 = Cec.check_problem_with_stats ~store:st p1 in
  Alcotest.(check int) "warm check answered from store" 1 s1.Cec.store_hits;
  Alcotest.(check int) "no solver work on the warm check" 0 s1.Cec.sat_calls;
  (match v1 with
  | Cec.Inequivalent cex ->
      Alcotest.(check bool) "replayed cex is valid at depth 1" true
        (Seqprob.cex_is_valid p1 cex);
      List.iter
        (fun ((v : Seqprob.Var.t), _) ->
          Alcotest.(check bool)
            ("cex variable rebased: " ^ Seqprob.Var.to_string v)
            true
            (v.Seqprob.Var.index = Seqprob.Var.Time 1))
        cex
  | _ -> Alcotest.fail "warm check must replay the counterexample");
  Store.close st

(* a parity miter (chain vs tree) under an already-expired deadline: the
   check gives up before any engine runs *)
let parity_pair n =
  let mk name tree =
    let c = Circuit.create name in
    let ins = List.init n (fun i -> Circuit.add_input c (Printf.sprintf "p%d" i)) in
    let out =
      if tree then begin
        let rec pair = function
          | a :: b :: tl -> Circuit.add_gate c Xor [ a; b ] :: pair tl
          | rest -> rest
        in
        let rec build = function [ x ] -> x | xs -> build (pair xs) in
        build ins
      end
      else
        List.fold_left
          (fun acc i -> Circuit.add_gate c Xor [ acc; i ])
          (List.hd ins) (List.tl ins)
    in
    Circuit.mark_output c out;
    Circuit.check c;
    c
  in
  (mk "uchain" false, mk "utree" true)

let test_undecided_never_persisted () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  let limits = { Cec.no_limits with seconds = Some 0.0 } in
  let c1, c2 = parity_pair 14 in
  let v, _ =
    Cec.check_with_stats ~engine:Cec.Sat_engine ~limits ~store:st c1 c2
  in
  (match v with
  | Cec.Undecided _ -> ()
  | _ -> Alcotest.fail "expired deadline must yield Undecided");
  Alcotest.(check int) "nothing written" 0 (Store.info st).Store.writes;
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "store still empty" 0 (Store.info st).Store.entries;
  Store.close st

(* ---- record kinds ---- *)

let test_kinds () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  ignore (Store.add st "flatkey" Store.Equivalent);
  ignore (Store.add ~kind:"hier" st "hierkey1" Store.Equivalent);
  ignore (Store.add ~kind:"hier" st "hierkey2" (Store.Inequivalent [ (2, true) ]));
  let kinds st = (Store.info st).Store.kinds in
  Alcotest.(check (list (pair string int)))
    "per-kind counts"
    [ ("flat", 1); ("hier", 2) ]
    (kinds st);
  Store.close st;
  (* kinds and payloads survive reopen and compaction *)
  let st = Store.open_ dir in
  Alcotest.(check (list (pair string int)))
    "kinds after reopen"
    [ ("flat", 1); ("hier", 2) ]
    (kinds st);
  check_verdict "kinded cex round-trips"
    (Store.Inequivalent [ (2, true) ])
    (Store.find st "hierkey2");
  Store.compact st;
  Alcotest.(check (list (pair string int)))
    "kinds after compaction"
    [ ("flat", 1); ("hier", 2) ]
    (kinds st);
  Store.close st

(* A store holding only default-kind records must stay byte-compatible
   with the pre-kind format: record tags 0/1, no kind field.  (A pre-kind
   reader sees tags 2/3 as unknown — corruption — and quarantines into a
   cold start, which is the safe direction.) *)
let test_flat_records_legacy_framing () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  ignore (Store.add st "k" Store.Equivalent);
  ignore (Store.add st "k2" (Store.Inequivalent [ (0, false) ]));
  Store.close st;
  let ic = open_in_bin (log_path dir) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* magic(8) | len(4) crc(4) payload... — payload byte 0 is the tag *)
  let tag1 = Char.code s.[16] in
  let len1 = Char.code s.[8] lor (Char.code s.[9] lsl 8) in
  let tag2 = Char.code s.[16 + 8 + len1] in
  Alcotest.(check int) "equivalent record uses legacy tag 0" 0 tag1;
  Alcotest.(check int) "inequivalent record uses legacy tag 1" 1 tag2

(* ---- close: idempotent, race-safe ---- *)

(* spin barrier: releases once [n] parties arrive *)
let barrier n =
  let c = Atomic.make n in
  fun () ->
    Atomic.decr c;
    while Atomic.get c > 0 do
      Domain.cpu_relax ()
    done

let test_close_idempotent () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  Alcotest.(check bool) "add" true (Store.add st "sig-a" Store.Equivalent);
  Store.close st;
  (* a second close is a no-op, not a double-free of the fd or channel *)
  Store.close st;
  Store.close st;
  let st2 = Store.open_ dir in
  Alcotest.(check int) "entries intact" 1 (Store.info st2).Store.entries;
  Store.close st2;
  (* two domains racing to close ONE handle: exactly one wins, none crash *)
  let st = Store.open_ dir in
  ignore (Store.add st "sig-b" Store.Equivalent);
  let bar = barrier 2 in
  let closer () =
    bar ();
    Store.close st;
    true
  in
  let d1 = Domain.spawn closer and d2 = Domain.spawn closer in
  Alcotest.(check bool) "both closers return" true (Domain.join d1 && Domain.join d2);
  let st3 = Store.open_ dir in
  Alcotest.(check int) "no entry lost to the racing close" 2
    (Store.info st3).Store.entries;
  Alcotest.(check (option string)) "no quarantine" None
    (Store.info st3).Store.quarantined_to;
  Store.close st3

let test_close_races_writer () =
  (* one domain streams unique-key adds while another closes the handle:
     every add either lands fully or raises the closed error — afterwards
     the log replays cleanly and holds exactly the successful adds *)
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  let bar = barrier 2 in
  let writer =
    Domain.spawn (fun () ->
        bar ();
        let landed = ref 0 in
        (try
           for i = 0 to 999 do
             if Store.add st (Printf.sprintf "race-%04d" i) Store.Equivalent
             then incr landed
           done
         with Invalid_argument _ -> ());
        !landed)
  in
  bar ();
  (* let the writer get some adds in, then pull the rug *)
  while (Store.info st).Store.writes = 0 do
    Domain.cpu_relax ()
  done;
  Store.close st;
  let landed = Domain.join writer in
  let st2 = Store.open_ dir in
  let i = Store.info st2 in
  Alcotest.(check (option string)) "log replays cleanly" None i.Store.quarantined_to;
  Alcotest.(check int) "exactly the successful adds survive" landed i.Store.entries;
  Alcotest.(check bool) "the race actually wrote something" true (landed > 0);
  Store.close st2

(* ---- two domains, one store handle, warm verification reads ---- *)

let test_two_domain_warm_reads () =
  (* seed the store with one cold check, then two domains replay the same
     problem concurrently through the SAME handle: both must be answered
     from the store without solver work — the server's steady state *)
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  (match Cec.check_problem ~store:st (xy_problem 0) with
  | Cec.Inequivalent _ -> ()
  | _ -> Alcotest.fail "cold check must find the counterexample");
  let warm () =
    let _, s = Cec.check_problem_with_stats ~store:st (xy_problem 0) in
    (s.Cec.store_hits, s.Cec.sat_calls)
  in
  let d1 = Domain.spawn warm and d2 = Domain.spawn warm in
  let h1, sat1 = Domain.join d1 in
  let h2, sat2 = Domain.join d2 in
  Alcotest.(check bool) "both domains hit the store" true (h1 > 0 && h2 > 0);
  Alcotest.(check int) "no solver work (domain 1)" 0 sat1;
  Alcotest.(check int) "no solver work (domain 2)" 0 sat2;
  Store.close st

let suite =
  [
    Alcotest.test_case "crc32" `Quick test_crc32;
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "lru eviction" `Quick test_eviction;
    Alcotest.test_case "two handles, one directory" `Quick test_two_handles;
    Alcotest.test_case "concurrent domain writers" `Quick test_concurrent_domains;
    Alcotest.test_case "truncated log recovery" `Quick test_truncated_log;
    Alcotest.test_case "bit flip recovery" `Quick test_bit_flip;
    Alcotest.test_case "bad magic cold start" `Quick test_bad_magic;
    Alcotest.test_case "cex replay across depths" `Quick test_cex_replay_across_depths;
    Alcotest.test_case "undecided never persisted" `Quick test_undecided_never_persisted;
    Alcotest.test_case "record kinds" `Quick test_kinds;
    Alcotest.test_case "flat records keep legacy framing" `Quick test_flat_records_legacy_framing;
    Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
    Alcotest.test_case "close races a writer" `Quick test_close_races_writer;
    Alcotest.test_case "two-domain warm reads" `Quick test_two_domain_warm_reads;
  ]
