(** Symbolic (BDD) functional representation of a sequential circuit.

    This is the substrate of the classical state-traversal equivalence
    checkers ([13, 14] in the paper) that the combinational reduction is
    positioned against: present-state and input variables, next-state and
    output functions as BDDs, and image computation by composition.

    Variable order: present-state variables first (one per latch, in
    [Circuit.latches] order), then primary inputs — interleaving is not
    attempted; the baseline is intentionally the textbook construction. *)

type t = {
  man : Bdd.man;
  circuit : Circuit.t;
  state_vars : int array;  (** BDD variable index per latch *)
  input_vars : int array;  (** BDD variable index per primary input *)
  next_state : Bdd.t array;
      (** next-state function per latch (enable folded in: [e·d + ē·q]) *)
  outputs : Bdd.t array;  (** output functions *)
}

val build : ?node_limit:int -> Circuit.t -> t
(** @raise Feedback.Node_budget_exceeded via [Bdd] growth past [node_limit]
    (default unlimited). *)

exception Node_limit

val image : ?node_limit:int -> t -> Bdd.t -> Bdd.t
(** [image t s] is the set of states reachable from state-set [s] (a BDD
    over state variables) in one step, for some input: [∃x,s. S(s) ∧ (s' =
    δ(s,x))], re-expressed over the state variables.
    @raise Node_limit when the manager outgrows [node_limit]. *)

val reachable :
  ?node_limit:int -> ?max_steps:int -> t -> init:Bdd.t -> Bdd.t option
(** Least fixpoint of [image] from [init]; [None] if [max_steps] (default
    10_000) or the node limit is exceeded. *)

val state_count : t -> Bdd.t -> float
(** Number of states in a state-set BDD. *)
