type t = {
  man : Bdd.man;
  circuit : Circuit.t;
  state_vars : int array;
  input_vars : int array;
  next_state : Bdd.t array;
  outputs : Bdd.t array;
}

exception Node_limit

let build ?(node_limit = max_int) c =
  Circuit.check c;
  let man = Bdd.man () in
  let latches = Array.of_list (Circuit.latches c) in
  let inputs = Array.of_list (Circuit.inputs c) in
  let state_vars = Array.mapi (fun i _ -> i) latches in
  let input_vars = Array.mapi (fun i _ -> Array.length latches + i) inputs in
  let source_bdd = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace source_bdd l (Bdd.var man state_vars.(i))) latches;
  Array.iteri (fun i s -> Hashtbl.replace source_bdd s (Bdd.var man input_vars.(i))) inputs;
  let memo = Hashtbl.create 256 in
  let rec bdd_of s =
    match Hashtbl.find_opt memo s with
    | Some b -> b
    | None ->
        if Bdd.node_count man > node_limit then raise Node_limit;
        let b =
          match Circuit.driver c s with
          | Input | Latch _ -> Hashtbl.find source_bdd s
          | Undriven -> assert false
          | Gate (fn, fs) -> (
              let ins = Array.map bdd_of fs in
              let ins_l = Array.to_list ins in
              match fn with
              | Const b -> if b then Bdd.one man else Bdd.zero man
              | Buf -> ins.(0)
              | Not -> Bdd.not_ man ins.(0)
              | And -> Bdd.and_list man ins_l
              | Nand -> Bdd.not_ man (Bdd.and_list man ins_l)
              | Or -> Bdd.or_list man ins_l
              | Nor -> Bdd.not_ man (Bdd.or_list man ins_l)
              | Xor -> List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l
              | Xnor -> Bdd.not_ man (List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l)
              | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2))
        in
        Hashtbl.replace memo s b;
        b
  in
  let next_state =
    Array.mapi
      (fun i l ->
        let data, enable = Circuit.latch_info c l in
        let d = bdd_of data in
        match enable with
        | None -> d
        | Some e ->
            let eb = bdd_of e in
            let q = Bdd.var man state_vars.(i) in
            Bdd.ite man eb d q)
      latches
  in
  let outputs = Array.of_list (List.map bdd_of (Circuit.outputs c)) in
  { man; circuit = c; state_vars; input_vars; next_state; outputs }

(* Image by input-first quantification and variable-wise constrain:
   Img(S)(v) = ∃s,x. S(s) ∧ ⋀_i (v_i ↔ δ_i(s,x)), computed without
   auxiliary primed variables by the standard recursive output expansion:
   we build the image over fresh temporary variables placed after all the
   existing ones, then rename back by composition. *)
let image ?(node_limit = max_int) t s =
  let man = t.man in
  let n = Array.length t.state_vars in
  let base = Array.length t.state_vars + Array.length t.input_vars in
  (* conjunction of (v'_i <-> delta_i) restricted to S *)
  let check () = if Bdd.node_count man > node_limit then raise Node_limit in
  let rel = ref s in
  Array.iteri
    (fun i delta ->
      check ();
      let primed = Bdd.var man (base + i) in
      rel := Bdd.and_ man !rel (Bdd.xnor_ man primed delta))
    t.next_state;
  check ();
  (* quantify the present state and the inputs *)
  let qvars =
    Array.to_list t.state_vars @ Array.to_list t.input_vars
  in
  let img_primed = Bdd.exists man qvars !rel in
  check ();
  (* rename primed -> plain state variables (primed are above everything,
     so composing top-down is safe) *)
  let result = ref img_primed in
  for i = 0 to n - 1 do
    check ();
    result := Bdd.compose man !result ~var:(base + i) (Bdd.var man t.state_vars.(i))
  done;
  !result

let reachable ?(node_limit = max_int) ?(max_steps = 10_000) t ~init =
  let man = t.man in
  let rec go frontier reached steps =
    if steps > max_steps then None
    else begin
      match image ~node_limit t frontier with
      | exception Node_limit -> None
      | img ->
          let new_states = Bdd.and_ man img (Bdd.not_ man reached) in
          if Bdd.is_zero man new_states then Some reached
          else go new_states (Bdd.or_ man reached new_states) (steps + 1)
    end
  in
  go init init 0

let state_count t set =
  Bdd.sat_count t.man set ~nvars:(Array.length t.state_vars)
