lib/seqbdd/transition.mli: Bdd Circuit
