lib/seqbdd/sec_baseline.mli: Circuit
