lib/seqbdd/sec_baseline.ml: Array Bdd Circuit Hashtbl List Option Sys Transition
