lib/seqbdd/transition.ml: Array Bdd Circuit Hashtbl List
