type import = { circuit : Circuit.t; warnings : string list }

(* ---------- parsing ---------- *)

type statement =
  | Model of string
  | Inputs of string list
  | Outputs of string list
  | Names of string list * (string * char) list (* signals (out last), rows *)
  | Latch of string * string * string option (* input, output, init *)
  | End

let tokenize text =
  (* join continuation lines, strip comments, split into token lists *)
  let lines = String.split_on_char '\n' text in
  let joined = ref [] in
  let pending = Buffer.create 80 in
  List.iter
    (fun raw ->
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        Buffer.add_string pending (String.sub line 0 (String.length line - 1) ^ " ")
      else begin
        Buffer.add_string pending line;
        joined := Buffer.contents pending :: !joined;
        Buffer.clear pending
      end)
    lines;
  if Buffer.length pending > 0 then joined := Buffer.contents pending :: !joined;
  List.rev_map
    (fun l -> List.filter (fun t -> t <> "") (String.split_on_char ' ' l))
    !joined
  |> List.filter (fun l -> l <> [])

let parse_statements tokens =
  (* group .names with their cover rows *)
  let rec go acc = function
    | [] -> List.rev acc
    | (".model" :: rest) :: tl ->
        go (Model (match rest with n :: _ -> n | [] -> "anonymous") :: acc) tl
    | (".inputs" :: names) :: tl -> go (Inputs names :: acc) tl
    | (".outputs" :: names) :: tl -> go (Outputs names :: acc) tl
    | (".latch" :: args) :: tl -> (
        match args with
        | [ i; o ] -> go (Latch (i, o, None) :: acc) tl
        | [ i; o; init ] -> go (Latch (i, o, Some init) :: acc) tl
        | [ i; o; _type; _clock ] -> go (Latch (i, o, None) :: acc) tl
        | [ i; o; _type; _clock; init ] -> go (Latch (i, o, Some init) :: acc) tl
        | _ -> invalid_arg "Blif.parse: malformed .latch")
    | (".names" :: signals) :: tl ->
        if signals = [] then invalid_arg "Blif.parse: .names without signals";
        let rec rows acc_rows = function
          | (tok :: _ as line) :: tl' when String.length tok > 0 && tok.[0] <> '.' ->
              let row =
                match line with
                | [ out ] when List.length signals = 1 ->
                    ("", (if out = "1" then '1' else '0'))
                | [ ins; out ] -> (ins, if out = "1" then '1' else '0')
                | _ -> invalid_arg "Blif.parse: malformed cover row"
              in
              rows (row :: acc_rows) tl'
          | rest -> (List.rev acc_rows, rest)
        in
        let cover, rest = rows [] tl in
        go (Names (signals, cover) :: acc) rest
    | (".end" :: _) :: tl -> go (End :: acc) tl
    | (".exdc" :: _) :: _ -> List.rev acc (* ignore external don't-care block *)
    | (tok :: _) :: _ when String.length tok > 0 && tok.[0] = '.' ->
        invalid_arg (Printf.sprintf "Blif.parse: unsupported construct %s" tok)
    | _ :: tl -> go acc tl
  in
  go [] tokens

let parse text =
  let statements = parse_statements (tokenize text) in
  let name =
    match List.find_map (function Model n -> Some n | _ -> None) statements with
    | Some n -> n
    | None -> "anonymous"
  in
  let c = Circuit.create name in
  let warnings = ref [] in
  (* pass 1: declare inputs first, then every other signal on first use *)
  List.iter
    (fun st ->
      match st with
      | Inputs names -> List.iter (fun n -> ignore (Circuit.add_input c n)) names
      | Model _ | Outputs _ | Names _ | Latch _ | End -> ())
    statements;
  let resolve n =
    match Circuit.find_signal c n with
    | Some s -> s
    | None -> Circuit.declare c ~name:n ()
  in
  (* declare every file-referenced name up front, so the helper gates
     created while expanding covers cannot steal a file name *)
  List.iter
    (fun st ->
      match st with
      | Model _ | Inputs _ | End -> ()
      | Outputs names -> List.iter (fun n -> ignore (resolve n)) names
      | Latch (i, o, _) ->
          ignore (resolve i);
          ignore (resolve o)
      | Names (signals, _) -> List.iter (fun n -> ignore (resolve n)) signals)
    statements;
  (* pass 2: build logic *)
  List.iter
    (fun st ->
      match st with
      | Model _ | Inputs _ | End -> ()
      | Outputs names -> List.iter (fun n -> Circuit.mark_output c (resolve n)) names
      | Latch (i, o, init) ->
          (match init with
          | Some ("3" | "2") | None -> ()
          | Some v ->
              warnings :=
                Printf.sprintf "latch %s: initial value %s ignored (power-up is non-deterministic)" o v
                :: !warnings);
          Circuit.set_latch c (resolve o) ~data:(resolve i) ()
      | Names (signals, cover) -> (
          let rec split_last acc = function
            | [] -> invalid_arg "Blif.parse: empty .names"
            | [ out ] -> (List.rev acc, out)
            | x :: tl -> split_last (x :: acc) tl
          in
          let ins, out = split_last [] signals in
          let in_sigs = List.map resolve ins in
          let out_sig = resolve out in
          (* build the single-output cover *)
          let on_rows = List.filter (fun (_, o) -> o = '1') cover in
          let off_rows = List.filter (fun (_, o) -> o = '0') cover in
          let build_rows rows =
            (* OR over rows of AND over literals *)
            let terms =
              List.map
                (fun (pattern, _) ->
                  if String.length pattern <> List.length ins then
                    invalid_arg "Blif.parse: cover row width mismatch";
                  let lits =
                    List.concat
                      (List.mapi
                         (fun i s ->
                           match pattern.[i] with
                           | '1' -> [ s ]
                           | '0' -> [ Circuit.add_gate c Not [ s ] ]
                           | '-' -> []
                           | ch ->
                               invalid_arg
                                 (Printf.sprintf "Blif.parse: bad cover char %c" ch))
                         in_sigs)
                  in
                  match lits with
                  | [] -> Circuit.const_true c
                  | [ one ] -> one
                  | many -> Circuit.add_gate c And many)
                rows
            in
            match terms with
            | [] -> Circuit.const_false c
            | [ one ] -> one
            | many -> Circuit.add_gate c Or many
          in
          match (on_rows, off_rows) with
          | [], [] -> Circuit.set_gate c out_sig (Const false) []
          | on_rows, [] ->
              let f = build_rows on_rows in
              Circuit.set_gate c out_sig Buf [ f ]
          | [], off_rows ->
              let f = build_rows off_rows in
              Circuit.set_gate c out_sig Not [ f ]
          | _ -> invalid_arg "Blif.parse: mixed on-set and off-set cover"))
    statements;
  Circuit.check c;
  { circuit = c; warnings = List.rev !warnings }

(* ---------- printing ---------- *)

let print ppf c =
  let sn = Circuit.signal_name c in
  Format.fprintf ppf ".model %s@." (Circuit.name c);
  (match Circuit.inputs c with
  | [] -> ()
  | ins -> Format.fprintf ppf ".inputs %s@." (String.concat " " (List.map sn ins)));
  (match Circuit.outputs c with
  | [] -> ()
  | outs -> Format.fprintf ppf ".outputs %s@." (String.concat " " (List.map sn outs)));
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      match enable with
      | None -> Format.fprintf ppf ".latch %s %s 3@." (sn data) (sn l)
      | Some _ ->
          invalid_arg
            "Blif.print: load-enabled latches have no standard BLIF form; \
             model the enable explicitly first")
    (Circuit.latches c);
  let pattern bits = String.concat "" bits in
  let row ppf (bits, out) = Format.fprintf ppf "%s %c@." (pattern bits) out in
  let emit_gate g =
    match Circuit.driver c g with
    | Gate (fn, fs) -> (
        let names = Array.to_list (Array.map sn fs) in
        let head ins = Format.fprintf ppf ".names %s %s@." (String.concat " " ins) (sn g) in
        let n = Array.length fs in
        let dashes_except i ch = List.init n (fun j -> if i = j then ch else "-") in
        match fn with
        | Const b ->
            Format.fprintf ppf ".names %s@." (sn g);
            if b then Format.fprintf ppf "1@."
        | Buf ->
            head names;
            row ppf ([ "1" ], '1')
        | Not ->
            head names;
            row ppf ([ "0" ], '1')
        | And ->
            head names;
            row ppf (List.init n (fun _ -> "1"), '1')
        | Nand ->
            head names;
            row ppf (List.init n (fun _ -> "1"), '0')
        | Or ->
            head names;
            List.iteri (fun i _ -> row ppf (dashes_except i "1", '1')) names
        | Nor ->
            head names;
            row ppf (List.init n (fun _ -> "0"), '1')
        | Xor | Xnor ->
            (* enumerate the parity function; gates are small in practice *)
            if n > 10 then invalid_arg "Blif.print: xor arity too large";
            head names;
            for m = 0 to (1 lsl n) - 1 do
              let ones = ref 0 in
              let bits =
                List.init n (fun i ->
                    if m land (1 lsl i) <> 0 then begin
                      incr ones;
                      "1"
                    end
                    else "0")
              in
              let odd = !ones mod 2 = 1 in
              if (fn = Xor && odd) || (fn = Xnor && not odd) then row ppf (bits, '1')
            done
        | Mux ->
            head names;
            row ppf ([ "1"; "1"; "-" ], '1');
            row ppf ([ "0"; "-"; "1" ], '1'))
    | Undriven | Input | Latch _ -> assert false
  in
  List.iter emit_gate (Circuit.gates c);
  Format.fprintf ppf ".end@."

let to_string c = Format.asprintf "%a" print c
