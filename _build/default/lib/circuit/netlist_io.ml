let fn_to_string : Circuit.gate_fn -> string = function
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Mux -> "mux"

let fn_of_string = function
  | "const0" -> Circuit.Const false
  | "const1" -> Const true
  | "buf" -> Buf
  | "not" -> Not
  | "and" -> And
  | "or" -> Or
  | "nand" -> Nand
  | "nor" -> Nor
  | "xor" -> Xor
  | "xnor" -> Xnor
  | "mux" -> Mux
  | s -> invalid_arg (Printf.sprintf "Netlist_io: unknown gate function %S" s)

let print ppf c =
  let sn = Circuit.signal_name c in
  Format.fprintf ppf ".model %s@." (Circuit.name c);
  (match Circuit.inputs c with
  | [] -> ()
  | ins ->
      Format.fprintf ppf ".inputs %s@." (String.concat " " (List.map sn ins)));
  (match Circuit.outputs c with
  | [] -> ()
  | outs ->
      Format.fprintf ppf ".outputs %s@." (String.concat " " (List.map sn outs)));
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      match enable with
      | None -> Format.fprintf ppf ".latch %s %s@." (sn l) (sn data)
      | Some e -> Format.fprintf ppf ".latche %s %s %s@." (sn l) (sn data) (sn e))
    (Circuit.latches c);
  List.iter
    (fun g ->
      match Circuit.driver c g with
      | Gate (fn, fs) ->
          Format.fprintf ppf ".gate %s %s%s@." (fn_to_string fn) (sn g)
            (Array.fold_left (fun acc f -> acc ^ " " ^ sn f) "" fs)
      | Undriven | Input | Latch _ -> assert false)
    (Circuit.gates c);
  Format.fprintf ppf ".end@."

let to_string c = Format.asprintf "%a" print c

let parse text =
  let lines = String.split_on_char '\n' text in
  let c = ref (Circuit.create "anonymous") in
  let resolve s =
    match Circuit.find_signal !c s with
    | Some id -> id
    | None -> Circuit.declare !c ~name:s ()
  in
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let ended = ref false in
  List.iter
    (fun raw ->
      let line = strip raw in
      if line <> "" && not !ended then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | ".model" :: rest ->
            let name = match rest with [ n ] -> n | _ -> "anonymous" in
            c := Circuit.create name
        | ".inputs" :: names ->
            List.iter (fun n -> ignore (Circuit.add_input !c n)) names
        | ".outputs" :: names ->
            List.iter (fun n -> Circuit.mark_output !c (resolve n)) names
        | [ ".latch"; q; d ] ->
            Circuit.set_latch !c (resolve q) ~data:(resolve d) ()
        | [ ".latche"; q; d; e ] ->
            Circuit.set_latch !c (resolve q) ~enable:(resolve e) ~data:(resolve d) ()
        | ".gate" :: fn :: out :: fanins ->
            Circuit.set_gate !c (resolve out) (fn_of_string fn) (List.map resolve fanins)
        | [ ".end" ] -> ended := true
        | _ -> invalid_arg (Printf.sprintf "Netlist_io.parse: bad line %S" line))
    lines;
  Circuit.check !c;
  !c
