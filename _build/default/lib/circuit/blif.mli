(** BLIF (Berkeley Logic Interchange Format) import/export.

    Supports the subset used by the MCNC/ISCAS benchmark distributions:

    - [.model], [.inputs], [.outputs], [.end] (line continuation with [\ ]);
    - [.names] single-output PLA cover with [0], [1], [-] input literals
      (both on-set and off-set covers);
    - [.latch input output \[type clock\] \[init\]] — edge-triggered latch;
      the init value is parsed but {e ignored} with a warning collected in
      the result (this library's semantics is non-deterministic power-up,
      Section 3.2 of the paper).

    Export writes gates as [.names] covers (each of our gate functions has
    an exact small cover). *)

type import = {
  circuit : Circuit.t;
  warnings : string list;  (** ignored constructs, e.g. latch init values *)
}

val parse : string -> import
(** @raise Invalid_argument on malformed input. *)

val to_string : Circuit.t -> string

val print : Format.formatter -> Circuit.t -> unit
