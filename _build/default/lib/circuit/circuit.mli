(** Gate-level sequential netlists.

    A circuit is a set of signals, each driven by a primary input, a
    combinational gate, or an edge-triggered latch (optionally load-enabled).
    All latches are driven by one implicit single-phase clock, matching the
    paper's circuit model [(I, O, G, L)].  Latches have no initial value:
    power-up state is non-deterministic (exact 3-valued equivalence,
    Section 3.2 of the paper).

    The combinational part must be acyclic; cycles are legal only through a
    latch (data input → latch output). *)

type signal = int
(** Dense signal identifier, valid within one circuit. *)

type gate_fn =
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor  (** n-ary parity *)
  | Xnor
  | Mux  (** fanins [s; t; e]: [if s then t else e] *)

type driver =
  | Undriven  (** declared but not yet connected *)
  | Input
  | Gate of gate_fn * signal array
  | Latch of { data : signal; enable : signal option }

type t

(** {1 Construction} *)

val create : string -> t

val name : t -> string

val declare : t -> ?name:string -> unit -> signal
(** A fresh, undriven signal (for forward references when building feedback
    paths).  @raise Invalid_argument if [name] is already taken. *)

val add_input : t -> string -> signal

val add_gate : t -> ?name:string -> gate_fn -> signal list -> signal
(** Fresh signal driven by a gate.  Arity is checked. *)

val add_latch : t -> ?name:string -> ?enable:signal -> data:signal -> unit -> signal

val set_gate : t -> signal -> gate_fn -> signal list -> unit
(** Drive a previously declared signal.  @raise Invalid_argument if the
    signal is already driven. *)

val set_latch : t -> signal -> ?enable:signal -> data:signal -> unit -> unit

val mark_output : t -> signal -> unit
(** Appends to the primary output list (a signal may be listed more than
    once; outputs are positional). *)

val const_true : t -> signal
(** The (shared) constant-1 signal. *)

val const_false : t -> signal

(** {1 Access} *)

val signal_count : t -> int

val driver : t -> signal -> driver

val signal_name : t -> signal -> string

val find_signal : t -> string -> signal option

val inputs : t -> signal list
(** Primary inputs in declaration order. *)

val outputs : t -> signal list

val is_output : t -> signal -> bool

val latches : t -> signal list
(** Latch output signals, in id order. *)

val latch_info : t -> signal -> signal * signal option
(** [(data, enable)] of a latch signal.  @raise Invalid_argument on
    non-latch. *)

val gates : t -> signal list
(** Gate-driven signals in id order. *)

val fanins : t -> signal -> signal list
(** Immediate fanins: gate fanins, or latch data+enable; inputs have none. *)

val fanout_counts : t -> int array
(** [counts.(s)] = number of fanin references to [s] plus 1 if [s] is a
    primary output. *)

(** {1 Structure} *)

val check : t -> unit
(** Validates the circuit: no undriven signals, arities correct, the
    combinational part acyclic.  @raise Invalid_argument with a message
    otherwise. *)

val comb_topo : t -> signal list
(** Gate-driven signals in topological order (fanins before fanouts),
    treating inputs and latch outputs as sources.
    @raise Invalid_argument on combinational cycles. *)

val cone : t -> signal list -> bool array
(** [cone c roots] marks the transitive fanin of [roots], stopping at
    (and including) inputs and latch outputs; latch outputs are not
    traversed through. *)

val seq_cone : t -> signal list -> bool array
(** Like {!cone} but traverses through latches (full sequential support). *)

val fn_cost : gate_fn -> int
(** Unit-delay/area cost of a gate: 0 for [Const] and [Buf], 1 otherwise. *)

val depth_levels : t -> int array
(** Unit-delay level of every signal: inputs and latch outputs at 0, a gate
    at 1 + max fanin level ([Buf] and [Const] cost 0). *)

val delay : t -> int
(** Max level over primary outputs and latch data inputs (the clock-period
    lower bound under the unit-delay model). *)

val area : t -> int
(** Number of logic gates (excluding [Const] and [Buf]). *)

val latch_count : t -> int

(** {1 Whole-circuit transforms} *)

val copy : ?name:string -> t -> t

val extract :
  t -> keep_outputs:signal list -> t * (signal * signal) list
(** [extract c ~keep_outputs] builds a new circuit containing exactly the
    sequential cone of [keep_outputs] (inputs become inputs, latches are
    kept).  Returns the new circuit and the old→new signal map restricted
    to kept signals. *)

val stats_pp : Format.formatter -> t -> unit
