(** Combinational evaluation of netlists. *)

val gate_eval : Circuit.gate_fn -> bool array -> bool
(** Semantics of one gate on concrete fanin values. *)

val comb_eval : Circuit.t -> source:(Circuit.signal -> bool) -> bool array
(** [comb_eval c ~source] computes the value of every signal given values of
    the sources ([source] is consulted exactly on primary inputs and latch
    outputs). *)

val comb_eval_words : Circuit.t -> source:(Circuit.signal -> int64) -> int64 array
(** 64 parallel evaluations: like {!comb_eval} but on bit-packed words. *)

val gate_eval_word : Circuit.gate_fn -> int64 array -> int64
(** Word-level semantics of one gate. *)
