lib/circuit/eval.ml: Array Circuit Fun Int64 List
