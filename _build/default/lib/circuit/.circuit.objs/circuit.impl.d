lib/circuit/circuit.ml: Array Format Hashtbl List Option Printf Vgraph
