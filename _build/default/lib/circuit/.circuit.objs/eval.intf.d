lib/circuit/eval.mli: Circuit
