lib/circuit/blif.ml: Array Buffer Circuit Format List Printf String
