lib/circuit/comb_view.mli: Circuit
