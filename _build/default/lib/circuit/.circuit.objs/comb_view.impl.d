lib/circuit/comb_view.ml: Array Circuit Hashtbl List Option
