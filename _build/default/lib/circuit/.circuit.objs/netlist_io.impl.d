lib/circuit/netlist_io.ml: Array Circuit Format List Printf String
