lib/circuit/netlist_io.mli: Circuit Format
