let gate_eval (fn : Circuit.gate_fn) (vs : bool array) =
  match fn with
  | Const b -> b
  | Buf -> vs.(0)
  | Not -> not vs.(0)
  | And -> Array.for_all Fun.id vs
  | Or -> Array.exists Fun.id vs
  | Nand -> not (Array.for_all Fun.id vs)
  | Nor -> not (Array.exists Fun.id vs)
  | Xor -> Array.fold_left (fun acc v -> if v then not acc else acc) false vs
  | Xnor -> Array.fold_left (fun acc v -> if v then not acc else acc) true vs
  | Mux -> if vs.(0) then vs.(1) else vs.(2)

let comb_eval c ~source =
  let n = Circuit.signal_count c in
  let value = Array.make n false in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input | Latch _ -> value.(s) <- source s
    | Undriven | Gate _ -> ()
  done;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) -> value.(s) <- gate_eval fn (Array.map (fun f -> value.(f)) fs)
      | Undriven | Input | Latch _ -> assert false)
    (Circuit.comb_topo c);
  value

let gate_eval_word (fn : Circuit.gate_fn) (vs : int64 array) =
  let open Int64 in
  match fn with
  | Const b -> if b then minus_one else zero
  | Buf -> vs.(0)
  | Not -> lognot vs.(0)
  | And -> Array.fold_left logand minus_one vs
  | Or -> Array.fold_left logor zero vs
  | Nand -> lognot (Array.fold_left logand minus_one vs)
  | Nor -> lognot (Array.fold_left logor zero vs)
  | Xor -> Array.fold_left logxor zero vs
  | Xnor -> lognot (Array.fold_left logxor zero vs)
  | Mux -> logor (logand vs.(0) vs.(1)) (logand (lognot vs.(0)) vs.(2))

let comb_eval_words c ~source =
  let n = Circuit.signal_count c in
  let value = Array.make n 0L in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input | Latch _ -> value.(s) <- source s
    | Undriven | Gate _ -> ()
  done;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          value.(s) <- gate_eval_word fn (Array.map (fun f -> value.(f)) fs)
      | Undriven | Input | Latch _ -> assert false)
    (Circuit.comb_topo c);
  value
