(** Combinational view of a sequential circuit.

    Latch outputs become primary inputs (keeping their names) and the
    combinational sink functions — primary outputs, then latch data inputs,
    then latch enables, in [Circuit.latches] order — become the outputs.
    Two circuits whose combinational views are equivalent and whose latch
    sets correspond by name implement the same sequential machine
    state-for-state (this is what combinational synthesis preserves). *)

val of_sequential : Circuit.t -> Circuit.t
