let of_sequential c =
  Circuit.check c;
  let nc = Circuit.create (Circuit.name c ^ "_cv") in
  let map = Hashtbl.create 64 in
  let get s = Hashtbl.find map s in
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Input | Latch _ ->
        Hashtbl.replace map s (Circuit.add_input nc (Circuit.signal_name c s))
    | Gate _ -> Hashtbl.replace map s (Circuit.declare nc ~name:(Circuit.signal_name c s) ())
    | Undriven -> ()
  done;
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Gate (fn, fs) -> Circuit.set_gate nc (get s) fn (Array.to_list (Array.map get fs))
    | Undriven | Input | Latch _ -> ()
  done;
  List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      Circuit.mark_output nc (get data);
      Option.iter (fun e -> Circuit.mark_output nc (get e)) enable)
    (Circuit.latches c);
  Circuit.check nc;
  nc
