(** Textual netlist format (a BLIF-flavoured subset).

    {v
    .model <name>
    .inputs a b c
    .outputs z
    .latch  q d          # q <= d each cycle
    .latche q d e        # q <= d when e, else holds
    .gate <fn> out in1 in2 ...
    .end
    v}

    [<fn>] is one of [const0 const1 buf not and or nand nor xor xnor mux].
    Lines starting with [#] are comments.  Signals may be referenced before
    definition. *)

val to_string : Circuit.t -> string

val print : Format.formatter -> Circuit.t -> unit

val parse : string -> Circuit.t
(** @raise Invalid_argument on malformed input. *)
