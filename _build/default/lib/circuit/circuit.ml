type signal = int

type gate_fn =
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux

type driver =
  | Undriven
  | Input
  | Gate of gate_fn * signal array
  | Latch of { data : signal; enable : signal option }

type t = {
  cname : string;
  drivers : driver Vgraph.Vec.t;
  names : string Vgraph.Vec.t;
  by_name : (string, signal) Hashtbl.t;
  mutable inputs_rev : signal list;
  mutable outputs_rev : signal list;
  mutable out_set : (signal, unit) Hashtbl.t;
  mutable c0 : signal; (* shared constants, -1 if absent *)
  mutable c1 : signal;
}

let create cname =
  {
    cname;
    drivers = Vgraph.Vec.create ~dummy:Undriven ();
    names = Vgraph.Vec.create ~dummy:"" ();
    by_name = Hashtbl.create 64;
    inputs_rev = [];
    outputs_rev = [];
    out_set = Hashtbl.create 16;
    c0 = -1;
    c1 = -1;
  }

let name c = c.cname
let signal_count c = Vgraph.Vec.length c.drivers

let declare c ?name () =
  let id = Vgraph.Vec.push c.drivers Undriven in
  let n =
    match name with
    | None ->
        let rec fresh k =
          let cand = if k = 0 then Printf.sprintf "n%d" id else Printf.sprintf "n%d_%d" id k in
          if Hashtbl.mem c.by_name cand then fresh (k + 1) else cand
        in
        fresh 0
    | Some n ->
        if Hashtbl.mem c.by_name n then
          invalid_arg (Printf.sprintf "Circuit.declare: duplicate name %S" n);
        n
  in
  ignore (Vgraph.Vec.push c.names n);
  Hashtbl.replace c.by_name n id;
  id

let driver c s = Vgraph.Vec.get c.drivers s
let signal_name c s = Vgraph.Vec.get c.names s
let find_signal c n = Hashtbl.find_opt c.by_name n

let arity_ok fn n =
  match fn with
  | Const _ -> n = 0
  | Buf | Not -> n = 1
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 1
  | Mux -> n = 3

let fn_name = function
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Mux -> "mux"

let set_driver c s d =
  (match Vgraph.Vec.get c.drivers s with
  | Undriven -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Circuit: signal %s already driven" (signal_name c s)));
  Vgraph.Vec.set c.drivers s d

let check_signal c s =
  if s < 0 || s >= signal_count c then invalid_arg "Circuit: bad signal id"

let set_gate c s fn fanins =
  check_signal c s;
  List.iter (check_signal c) fanins;
  if not (arity_ok fn (List.length fanins)) then
    invalid_arg (Printf.sprintf "Circuit.set_gate: bad arity for %s" (fn_name fn));
  set_driver c s (Gate (fn, Array.of_list fanins))

let set_latch c s ?enable ~data () =
  check_signal c s;
  check_signal c data;
  Option.iter (check_signal c) enable;
  set_driver c s (Latch { data; enable })

let add_input c n =
  let s = declare c ~name:n () in
  set_driver c s Input;
  c.inputs_rev <- s :: c.inputs_rev;
  s

let add_gate c ?name fn fanins =
  let s = declare c ?name () in
  set_gate c s fn fanins;
  s

let add_latch c ?name ?enable ~data () =
  let s = declare c ?name () in
  set_latch c s ?enable ~data ();
  s

let mark_output c s =
  check_signal c s;
  Hashtbl.replace c.out_set s ();
  c.outputs_rev <- s :: c.outputs_rev

let const_false c =
  if c.c0 >= 0 then c.c0
  else begin
    let s = add_gate c (Const false) [] in
    c.c0 <- s;
    s
  end

let const_true c =
  if c.c1 >= 0 then c.c1
  else begin
    let s = add_gate c (Const true) [] in
    c.c1 <- s;
    s
  end

let inputs c = List.rev c.inputs_rev
let outputs c = List.rev c.outputs_rev
let is_output c s = Hashtbl.mem c.out_set s

let latches c =
  let acc = ref [] in
  for s = signal_count c - 1 downto 0 do
    match driver c s with Latch _ -> acc := s :: !acc | _ -> ()
  done;
  !acc

let latch_info c s =
  match driver c s with
  | Latch { data; enable } -> (data, enable)
  | Undriven | Input | Gate _ ->
      invalid_arg (Printf.sprintf "Circuit.latch_info: %s is not a latch" (signal_name c s))

let gates c =
  let acc = ref [] in
  for s = signal_count c - 1 downto 0 do
    match driver c s with Gate _ -> acc := s :: !acc | _ -> ()
  done;
  !acc

let fanins c s =
  match driver c s with
  | Undriven | Input -> []
  | Gate (_, fs) -> Array.to_list fs
  | Latch { data; enable } -> (
      match enable with None -> [ data ] | Some e -> [ data; e ])

let fanout_counts c =
  let n = signal_count c in
  let counts = Array.make n 0 in
  for s = 0 to n - 1 do
    List.iter (fun f -> counts.(f) <- counts.(f) + 1) (fanins c s)
  done;
  List.iter (fun s -> counts.(s) <- counts.(s) + 1) (outputs c);
  counts

(* Topological order of gate-driven signals.  Latch outputs and inputs are
   sources; only gate->gate dependencies are followed. *)
let comb_topo c =
  let n = signal_count c in
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let order = ref [] in
  let rec visit s =
    match driver c s with
    | Undriven | Input | Latch _ -> ()
    | Gate (_, fs) ->
        if state.(s) = 1 then
          invalid_arg
            (Printf.sprintf "Circuit: combinational cycle through %s" (signal_name c s));
        if state.(s) = 0 then begin
          state.(s) <- 1;
          Array.iter visit fs;
          state.(s) <- 2;
          order := s :: !order
        end
  in
  for s = 0 to n - 1 do
    visit s
  done;
  List.rev !order

let check c =
  let n = signal_count c in
  for s = 0 to n - 1 do
    match driver c s with
    | Undriven ->
        invalid_arg (Printf.sprintf "Circuit.check: undriven signal %s" (signal_name c s))
    | Input | Latch _ | Gate _ -> ()
  done;
  ignore (comb_topo c)

let cone c roots =
  let marked = Array.make (signal_count c) false in
  let rec visit s =
    if not marked.(s) then begin
      marked.(s) <- true;
      match driver c s with
      | Undriven | Input | Latch _ -> ()
      | Gate (_, fs) -> Array.iter visit fs
    end
  in
  List.iter visit roots;
  marked

let seq_cone c roots =
  let marked = Array.make (signal_count c) false in
  let rec visit s =
    if not marked.(s) then begin
      marked.(s) <- true;
      List.iter visit (fanins c s)
    end
  in
  List.iter visit roots;
  marked

let gate_cost = function Const _ | Buf -> 0 | Not | And | Or | Nand | Nor | Xor | Xnor | Mux -> 1

let fn_cost = gate_cost

let depth_levels c =
  let lev = Array.make (signal_count c) 0 in
  List.iter
    (fun s ->
      match driver c s with
      | Gate (fn, fs) ->
          let m = Array.fold_left (fun acc f -> max acc lev.(f)) 0 fs in
          lev.(s) <- m + gate_cost fn
      | Undriven | Input | Latch _ -> ())
    (comb_topo c);
  lev

let delay c =
  let lev = depth_levels c in
  let at = List.fold_left (fun acc s -> max acc lev.(s)) 0 in
  let out_delay = at (outputs c) in
  let latch_delay =
    List.fold_left
      (fun acc l ->
        let data, enable = latch_info c l in
        let acc = max acc lev.(data) in
        match enable with None -> acc | Some e -> max acc lev.(e))
      0 (latches c)
  in
  max out_delay latch_delay

let area c =
  List.fold_left
    (fun acc s ->
      match driver c s with
      | Gate (fn, _) -> acc + gate_cost fn
      | Undriven | Input | Latch _ -> acc)
    0 (gates c)

let latch_count c = List.length (latches c)

let copy ?name c =
  let cname = Option.value name ~default:c.cname in
  {
    cname;
    drivers = Vgraph.Vec.copy c.drivers;
    names = Vgraph.Vec.copy c.names;
    by_name = Hashtbl.copy c.by_name;
    inputs_rev = c.inputs_rev;
    outputs_rev = c.outputs_rev;
    out_set = Hashtbl.copy c.out_set;
    c0 = c.c0;
    c1 = c.c1;
  }

let extract c ~keep_outputs =
  let marked = seq_cone c keep_outputs in
  let nc = create (c.cname ^ "_xt") in
  let map = Hashtbl.create 64 in
  (* create signals in id order to keep determinism *)
  for s = 0 to signal_count c - 1 do
    if marked.(s) then begin
      let ns = declare nc ~name:(signal_name c s) () in
      Hashtbl.replace map s ns
    end
  done;
  let get s = Hashtbl.find map s in
  for s = 0 to signal_count c - 1 do
    if marked.(s) then begin
      match driver c s with
      | Undriven -> ()
      | Input ->
          Vgraph.Vec.set nc.drivers (get s) Input;
          nc.inputs_rev <- get s :: nc.inputs_rev
      | Gate (fn, fs) -> set_gate nc (get s) fn (Array.to_list (Array.map get fs))
      | Latch { data; enable } ->
          set_latch nc (get s) ?enable:(Option.map get enable) ~data:(get data) ()
    end
  done;
  List.iter (fun s -> if marked.(s) then mark_output nc (get s)) keep_outputs;
  let assoc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) map [] in
  (nc, List.sort compare assoc)

let stats_pp ppf c =
  Format.fprintf ppf "%s: %d in, %d out, %d latches, area %d, delay %d"
    c.cname (List.length (inputs c)) (List.length (outputs c)) (latch_count c)
    (area c) (delay c)
