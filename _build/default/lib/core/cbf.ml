type info = { depth : int; variables : int; replication : int }

let var_name i d = Printf.sprintf "%s@%d" i d

let unroll ?(exposed = fun _ -> false) c =
  Circuit.check c;
  let nc = Circuit.create (Circuit.name c ^ "_cbf") in
  let memo : (Circuit.signal * int, Circuit.signal) Hashtbl.t = Hashtbl.create 256 in
  let pins : (string, Circuit.signal) Hashtbl.t = Hashtbl.create 64 in
  let depth = ref 0 in
  let replication = ref 0 in
  let visiting : (Circuit.signal * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let pin name d =
    depth := max !depth d;
    let n = var_name name d in
    match Hashtbl.find_opt pins n with
    | Some s -> s
    | None ->
        let s = Circuit.add_input nc n in
        Hashtbl.replace pins n s;
        s
  in
  (* Compute_CBF_Recursively (Fig. 7) *)
  let rec cbf s d =
    match Hashtbl.find_opt memo (s, d) with
    | Some r -> r
    | None ->
        if Hashtbl.mem visiting (s, d) then
          invalid_arg "Cbf.unroll: sequential cycle with no exposed latch";
        Hashtbl.replace visiting (s, d) ();
        let r =
          match Circuit.driver c s with
          | Input -> pin (Circuit.signal_name c s) d
          | Latch _ when exposed s -> pin (Circuit.signal_name c s) d
          | Latch { data; enable = None } -> cbf data (d + 1)
          | Latch { enable = Some _; _ } ->
              invalid_arg
                (Printf.sprintf "Cbf.unroll: non-exposed load-enabled latch %s"
                   (Circuit.signal_name c s))
          | Gate (fn, fs) ->
              incr replication;
              Circuit.add_gate nc fn (Array.to_list (Array.map (fun f -> cbf f d) fs))
          | Undriven -> assert false
        in
        Hashtbl.remove visiting (s, d);
        Hashtbl.replace memo (s, d) r;
        r
  in
  List.iter (fun o -> Circuit.mark_output nc (cbf o 0)) (Circuit.outputs c);
  (* exposed latches: data (and enable) functions become outputs, ordered by
     latch name so both sides of a comparison line up *)
  let exposed_latches =
    List.filter exposed (Circuit.latches c)
    |> List.sort (fun a b -> compare (Circuit.signal_name c a) (Circuit.signal_name c b))
  in
  List.iter
    (fun l ->
      let data, _ = Circuit.latch_info c l in
      Circuit.mark_output nc (cbf data 0))
    exposed_latches;
  List.iter
    (fun l ->
      match Circuit.latch_info c l with
      | _, Some e -> Circuit.mark_output nc (cbf e 0)
      | _, None -> ())
    exposed_latches;
  Circuit.check nc;
  (nc, { depth = !depth; variables = Hashtbl.length pins; replication = !replication })

let sequential_depth ?(exposed = fun _ -> false) c =
  let memo = Hashtbl.create 256 in
  let rec go s =
    match Hashtbl.find_opt memo s with
    | Some d -> d
    | None ->
        Hashtbl.replace memo s 0;
        (* cycle guard: exposed breaks cycles; a hit during recursion would
           mean a non-exposed cycle, reported by unroll *)
        let d =
          match Circuit.driver c s with
          | Input -> 0
          | Latch _ when exposed s -> 0
          | Latch { data; _ } -> 1 + go data
          | Gate (_, fs) -> Array.fold_left (fun acc f -> max acc (go f)) 0 fs
          | Undriven -> 0
        in
        Hashtbl.replace memo s d;
        d
  in
  let at_outputs = List.fold_left (fun acc o -> max acc (go o)) 0 (Circuit.outputs c) in
  List.fold_left
    (fun acc l ->
      if exposed l then
        let data, enable = Circuit.latch_info c l in
        let acc = max acc (go data) in
        match enable with None -> acc | Some e -> max acc (go e)
      else acc)
    at_outputs (Circuit.latches c)

let functional_depth ?exposed c =
  let u, info = unroll ?exposed c in
  (* BDD support of the unrolled outputs, mapped back to delays *)
  let man = Bdd.man () in
  let var_of_input = Hashtbl.create 32 in
  let delay_of_var = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun s ->
      let n = Circuit.signal_name u s in
      let d =
        match String.rindex_opt n '@' with
        | None -> 0
        | Some j -> (
            match int_of_string_opt (String.sub n (j + 1) (String.length n - j - 1)) with
            | Some d -> d
            | None -> 0)
      in
      let v = !next in
      incr next;
      Hashtbl.replace var_of_input s (Bdd.var man v);
      Hashtbl.replace delay_of_var v d)
    (Circuit.inputs u);
  let node = Hashtbl.create 256 in
  let rec bdd_of s =
    match Hashtbl.find_opt node s with
    | Some b -> b
    | None ->
        let b =
          match Circuit.driver u s with
          | Input -> Hashtbl.find var_of_input s
          | Undriven | Latch _ -> assert false
          | Gate (fn, fs) -> (
              let ins = Array.map bdd_of fs in
              let ins_l = Array.to_list ins in
              match fn with
              | Const b -> if b then Bdd.one man else Bdd.zero man
              | Buf -> ins.(0)
              | Not -> Bdd.not_ man ins.(0)
              | And -> Bdd.and_list man ins_l
              | Nand -> Bdd.not_ man (Bdd.and_list man ins_l)
              | Or -> Bdd.or_list man ins_l
              | Nor -> Bdd.not_ man (Bdd.or_list man ins_l)
              | Xor -> List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l
              | Xnor -> Bdd.not_ man (List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l)
              | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2))
        in
        Hashtbl.replace node s b;
        b
  in
  let depth = ref 0 in
  List.iter
    (fun o ->
      List.iter
        (fun v -> depth := max !depth (Hashtbl.find delay_of_var v))
        (Bdd.support man (bdd_of o)))
    (Circuit.outputs u);
  ignore info;
  !depth
