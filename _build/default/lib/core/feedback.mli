(** Feedback analysis (Section 6).

    A latch whose next-state function [F] is positive unate in its own
    output [x] decomposes as [F = e·d + ē·x] (Lemma 6.1): the feedback can
    be modelled by a load-enabled latch with enable [e] (unique) and data
    [d] (any function in the interval [[F|x=0, F|x=1]], Lemma 6.2 giving a
    canonical disjoint-support choice when one exists).  Latches that fail
    the condition are {e exposed} — a minimum feedback vertex set of the
    latch dependency graph — and pinned during synthesis, reducing the
    verification problem to the acyclic case. *)

(** How to pick the data function [d] from its interval (the ablation of
    DESIGN.md — different choices on the two sides cause Fig. 11 false
    negatives). *)
type dchoice =
  | D_low  (** [d = F|x=0], the interval's lower end — deterministic *)
  | D_disjoint
      (** the unique [d] whose support is disjoint from [e]'s, when it
          exists (Lemma 6.2); falls back to [D_low] otherwise *)

type analysis = {
  latch : Circuit.signal;
  self_feedback : bool;  (** its own output is in its next-state cone *)
  in_cycle : bool;  (** lies on some latch-dependency cycle *)
  positive_unate : bool;  (** next-state function positive unate in self *)
}

val latch_graph : Circuit.t -> Vgraph.Digraph.t * Circuit.signal array
(** Latch dependency graph: one node per latch (indexed as in the returned
    array, which follows [Circuit.latches] order); an edge [u -> v] when
    [u]'s output feeds the data or enable cone of [v]. *)

val analyze : ?max_cone:int -> Circuit.t -> analysis list
(** Per-latch feedback analysis.  Cones with more than [max_cone] (default
    64) sources are conservatively reported not unate. *)

type plan = {
  exposed : Circuit.signal list;  (** latches to expose (made observable) *)
  converted : Circuit.signal list;
      (** self-feedback latches remodelled as load-enabled *)
}

val plan_structural : Circuit.t -> plan
(** The paper's experimental mode: no functional analysis, expose a minimal
    feedback vertex set (Table 2's "# Exposed"). *)

val plan_functional : ?max_cone:int -> Circuit.t -> plan
(** Unateness-aware mode: self-loops of positive-unate latches are removed
    by conversion; the remaining cycles are broken by exposure.  The paper
    predicts this "would lead to reduced number of exposed latches". *)

val decompose :
  Bdd.man -> Bdd.t -> x:int -> dchoice:dchoice -> (Bdd.t * Bdd.t) option
(** [decompose man f ~x ~dchoice] is [Some (e, d)] with
    [f = e·d + ē·x_var] when [f] is positive unate in variable [x]. *)

val apply_plan : ?dchoice:dchoice -> Circuit.t -> plan -> Circuit.t
(** Rebuilds the circuit with every [converted] latch remodelled as a
    load-enabled latch ([exposed] latches are untouched — exposure is a
    property consumed by unrolling and retiming, not a netlist change). *)

exception Node_budget_exceeded

val next_state_function :
  ?node_limit:int ->
  Circuit.t ->
  Circuit.signal ->
  Bdd.man * Bdd.t * (int -> Circuit.signal)
(** The next-state BDD of a latch over its cone sources, and the mapping
    from BDD variable index back to the source signal.  The latch's own
    output, when present, is always variable 0.
    @raise Node_budget_exceeded when the BDD grows past [node_limit]
    (default unlimited); {!analyze} uses a budget and conservatively reports
    such latches as not unate. *)
