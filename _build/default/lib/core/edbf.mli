(** Event-Driven Boolean Functions (Sections 4.2, 5.2).

    Extends CBF unrolling to load-enabled latches: the value of an enabled
    latch at evaluation context [(d, E)] (delay [d] relative to the event
    [E]) is its data input at context [(0, push(pred, E))], where [pred] is
    the semantic predicate of its enable at shift [d].  Unrolled input
    variables are named ["source@d@event"], with event identities drawn from
    a {!Events.table} that must be {e shared} between the two circuits being
    compared.

    The check is {e conservative} (Theorem 5.2): equal unrollings imply
    equivalence for circuits related by enable-class-preserving synthesis,
    but false negatives exist (Figs. 10, 11); the rule-(5) rewrite in
    {!Events} removes the Fig. 10 class. *)

type info = {
  depth : int;  (** largest delay used in any context *)
  variables : int;  (** distinct unrolled input variables *)
  events : int;  (** distinct events in the shared table after unrolling *)
  replication : int;  (** gate instances created *)
}

val unroll :
  ?guard:bool ->
  table:Events.table ->
  ?exposed:(Circuit.signal -> bool) ->
  Circuit.t ->
  Circuit.t * info
(** With [~guard:true] (default false), every unrolled output is weakened
    by the {e event-consistency} facts — the head predicate of each event
    held at the instant the event denotes — so the comparison becomes
    [facts → outputs equal].  This is a sound refinement implementing the
    paper's future-work direction ("a complete technique to distinguish
    events and combination of events and signals"): data functions that
    differ only where their enable is false no longer cause false
    negatives.  Both circuits sharing the table build identical guards.

    Outputs: primary outputs in order, then exposed-latch data functions
    (name order), then exposed-latch enable functions (name order, enabled
    latches only) — the same convention as {!Cbf.unroll}.
    @raise Invalid_argument on a sequential cycle with no exposed latch. *)
