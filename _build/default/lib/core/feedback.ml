type dchoice = D_low | D_disjoint

type analysis = {
  latch : Circuit.signal;
  self_feedback : bool;
  in_cycle : bool;
  positive_unate : bool;
}

type plan = { exposed : Circuit.signal list; converted : Circuit.signal list }

let latch_sinks c l =
  let data, enable = Circuit.latch_info c l in
  match enable with None -> [ data ] | Some e -> [ data; e ]

(* One bottom-up pass with per-signal latch bitsets: reach.(s) holds the set
   of latch outputs in the combinational cone of s. *)
let latch_graph c =
  let latches = Array.of_list (Circuit.latches c) in
  let nl = Array.length latches in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) latches;
  let words = (nl + 62) / 63 in
  let n = Circuit.signal_count c in
  let reach = Array.make_matrix n (max words 1) 0 in
  Array.iteri
    (fun i l -> reach.(l).(i / 63) <- reach.(l).(i / 63) lor (1 lsl (i mod 63)))
    latches;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (_, fs) ->
          let dst = reach.(s) in
          Array.iter
            (fun f ->
              let src = reach.(f) in
              for w = 0 to words - 1 do
                dst.(w) <- dst.(w) lor src.(w)
              done)
            fs
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  let g = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g nl;
  Array.iteri
    (fun i l ->
      let acc = Array.make (max words 1) 0 in
      List.iter
        (fun sink ->
          let src = reach.(sink) in
          for w = 0 to words - 1 do
            acc.(w) <- acc.(w) lor src.(w)
          done)
        (latch_sinks c l);
      (* decode set bits *)
      for j = 0 to nl - 1 do
        if acc.(j / 63) land (1 lsl (j mod 63)) <> 0 then
          ignore (Vgraph.Digraph.add_edge g j i)
      done)
    latches;
  (g, latches)

exception Node_budget_exceeded

(* BDD of the next-state cone of latch [l]; sources (inputs and latch
   outputs) become variables, the latch's own output first so tests can rely
   on x = variable 0.  [node_limit] bounds the BDD size during construction
   (@raise Node_budget_exceeded). *)
let next_state_function ?(node_limit = max_int) c l =
  let data, _ = Circuit.latch_info c l in
  let marked = Circuit.cone c [ data ] in
  let man = Bdd.man () in
  let var_of_signal = Hashtbl.create 32 in
  let signal_of_var = Vgraph.Vec.create ~dummy:(-1) () in
  let alloc s =
    let i = Vgraph.Vec.push signal_of_var s in
    Hashtbl.replace var_of_signal s (Bdd.var man i)
  in
  if marked.(l) then alloc l;
  for s = 0 to Circuit.signal_count c - 1 do
    if marked.(s) && s <> l then begin
      match Circuit.driver c s with
      | Input | Latch _ -> alloc s
      | Undriven | Gate _ -> ()
    end
  done;
  let node = Hashtbl.create 64 in
  let rec bdd_of s =
    match Hashtbl.find_opt node s with
    | Some b -> b
    | None ->
        if Bdd.node_count man > node_limit then raise Node_budget_exceeded;
        let b =
          match Circuit.driver c s with
          | Input | Latch _ -> Hashtbl.find var_of_signal s
          | Undriven -> assert false
          | Gate (fn, fs) -> (
              let ins = Array.map bdd_of fs in
              let ins_l = Array.to_list ins in
              match fn with
              | Const b -> if b then Bdd.one man else Bdd.zero man
              | Buf -> ins.(0)
              | Not -> Bdd.not_ man ins.(0)
              | And -> Bdd.and_list man ins_l
              | Nand -> Bdd.not_ man (Bdd.and_list man ins_l)
              | Or -> Bdd.or_list man ins_l
              | Nor -> Bdd.not_ man (Bdd.or_list man ins_l)
              | Xor -> List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l
              | Xnor ->
                  Bdd.not_ man (List.fold_left (Bdd.xor_ man) (Bdd.zero man) ins_l)
              | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2))
        in
        Hashtbl.replace node s b;
        b
  in
  let f = bdd_of data in
  (man, f, fun i -> Vgraph.Vec.get signal_of_var i)

let cone_sources c l =
  let data, _ = Circuit.latch_info c l in
  let marked = Circuit.cone c [ data ] in
  let n = ref 0 in
  for s = 0 to Circuit.signal_count c - 1 do
    if marked.(s) then
      match Circuit.driver c s with Input | Latch _ -> incr n | Undriven | Gate _ -> ()
  done;
  !n

let analyze ?(max_cone = 64) c =
  let g, latches = latch_graph c in
  let comp_id, _ = Vgraph.Scc.component_ids g in
  let comps = Vgraph.Scc.components g in
  let nontrivial = Array.make (List.length comps) false in
  List.iteri (fun i comp -> nontrivial.(i) <- Vgraph.Scc.is_nontrivial g comp) comps;
  Array.to_list
    (Array.mapi
       (fun i l ->
         let self_feedback = Vgraph.Digraph.has_self_loop g i in
         let in_cycle = nontrivial.(comp_id.(i)) in
         let positive_unate =
           if not self_feedback then true
           else if cone_sources c l > max_cone then false
           else
             match next_state_function ~node_limit:100_000 c l with
             | man, f, _ -> Bdd.is_positive_unate man f ~var:0
             | exception Node_budget_exceeded -> false
         in
         { latch = l; self_feedback; in_cycle; positive_unate })
       latches)

let plan_structural c =
  let g, latches = latch_graph c in
  let fvs = Vgraph.Mfvs.solve g ~candidates:(fun _ -> true) in
  { exposed = List.map (fun i -> latches.(i)) fvs; converted = [] }

let plan_functional ?max_cone c =
  let g, latches = latch_graph c in
  let analyses = Array.of_list (analyze ?max_cone c) in
  (* drop self-loops of positive-unate self-feedback regular latches (an
     already-enabled latch keeps its enable; we do not compose enables) *)
  let convertible =
    Array.map
      (fun a ->
        a.self_feedback && a.positive_unate
        && snd (Circuit.latch_info c a.latch) = None)
      analyses
  in
  let g' = Vgraph.Digraph.create () in
  Vgraph.Digraph.add_nodes g' (Vgraph.Digraph.node_count g);
  Vgraph.Digraph.iter_edges
    (fun _ e ->
      if not (e.src = e.dst && convertible.(e.src)) then
        ignore (Vgraph.Digraph.add_edge g' e.src e.dst))
    g;
  let fvs = Vgraph.Mfvs.solve g' ~candidates:(fun _ -> true) in
  let exposed_set = Array.make (Array.length latches) false in
  List.iter (fun i -> exposed_set.(i) <- true) fvs;
  let converted = ref [] in
  Array.iteri
    (fun i keep -> if keep && not exposed_set.(i) then converted := latches.(i) :: !converted)
    convertible;
  {
    exposed = List.map (fun i -> latches.(i)) fvs;
    converted = List.rev !converted;
  }

let decompose man f ~x ~dchoice =
  let f0 = Bdd.cofactor man f ~var:x false in
  let f1 = Bdd.cofactor man f ~var:x true in
  if not (Bdd.leq man f0 f1) then None
  else begin
    (* ē = F1·¬F0 is forced, hence e = ¬F1 + F0 *)
    let e = Bdd.or_ man (Bdd.not_ man f1) f0 in
    let d =
      match dchoice with
      | D_low -> f0
      | D_disjoint -> (
          let s = Bdd.support man e in
          let cand = Bdd.exists man s f0 in
          if Bdd.leq man f0 cand && Bdd.leq man cand f1 then cand else f0)
    in
    Some (e, d)
  end

let bdd_to_gates nc man f ~sig_of = Bdd_gates.to_gates nc man f ~sig_of

let apply_plan ?(dchoice = D_low) c plan =
  match plan.converted with
  | [] -> c
  | converted ->
      let to_convert = Hashtbl.create 8 in
      List.iter (fun l -> Hashtbl.replace to_convert l ()) converted;
      let nc = Circuit.create (Circuit.name c ^ "_fb") in
      let map = Hashtbl.create 64 in
      let get s = Hashtbl.find map s in
      for s = 0 to Circuit.signal_count c - 1 do
        let ns =
          match Circuit.driver c s with
          | Input -> Circuit.add_input nc (Circuit.signal_name c s)
          | Undriven | Gate _ | Latch _ ->
              Circuit.declare nc ~name:(Circuit.signal_name c s) ()
        in
        Hashtbl.replace map s ns
      done;
      for s = 0 to Circuit.signal_count c - 1 do
        match Circuit.driver c s with
        | Undriven | Input -> ()
        | Gate (fn, fs) ->
            Circuit.set_gate nc (get s) fn (Array.to_list (Array.map get fs))
        | Latch { data; enable } ->
            if Hashtbl.mem to_convert s then begin
              assert (enable = None);
              let man, f, sig_of_var = next_state_function c s in
              (match decompose man f ~x:0 ~dchoice with
              | None -> assert false
              | Some (e, d) ->
                  let sig_of i = get (sig_of_var i) in
                  let e_sig = bdd_to_gates nc man e ~sig_of in
                  let d_sig = bdd_to_gates nc man d ~sig_of in
                  Circuit.set_latch nc (get s) ~enable:e_sig ~data:d_sig ())
            end
            else
              Circuit.set_latch nc (get s)
                ?enable:(Option.map get enable)
                ~data:(get data) ()
      done;
      List.iter (fun o -> Circuit.mark_output nc (get o)) (Circuit.outputs c);
      Circuit.check nc;
      nc
