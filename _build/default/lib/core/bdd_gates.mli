(** Synthesize a BDD back into netlist gates: one [Mux] per DAG node,
    shared through the fold's memoization. *)

val to_gates :
  Circuit.t -> Bdd.man -> Bdd.t -> sig_of:(int -> Circuit.signal) -> Circuit.signal
