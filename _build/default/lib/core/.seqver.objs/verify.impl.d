lib/core/verify.ml: Array Cbf Cec Circuit Edbf Events Hashtbl List Printf Sim String Sys
