lib/core/cbf.mli: Circuit
