lib/core/flow.ml: Circuit Feedback Hashtbl List Retime Synth_script Verify
