lib/core/flow.mli: Cec Circuit Verify
