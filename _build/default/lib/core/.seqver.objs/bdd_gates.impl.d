lib/core/bdd_gates.ml: Bdd Circuit
