lib/core/edbf.mli: Circuit Events
