lib/core/events.mli: Bdd
