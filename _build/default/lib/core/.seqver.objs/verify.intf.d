lib/core/verify.mli: Cec Circuit
