lib/core/events.ml: Bdd Hashtbl List String Vgraph
