lib/core/feedback.ml: Array Bdd Bdd_gates Circuit Hashtbl List Option Vgraph
