lib/core/edbf.ml: Array Bdd Bdd_gates Circuit Events Hashtbl List Printf
