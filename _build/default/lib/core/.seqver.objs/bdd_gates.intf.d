lib/core/bdd_gates.mli: Bdd Circuit
