lib/core/feedback.mli: Bdd Circuit Vgraph
