lib/core/cbf.ml: Array Bdd Circuit Hashtbl List Printf String
