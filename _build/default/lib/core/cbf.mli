(** Clocked Boolean Functions (Section 4.1, 5.1 of the paper).

    For an acyclic sequential circuit with regular latches, the CBF of each
    output is an ordinary Boolean function over time-indexed copies of the
    primary inputs: a latch output at relative delay [d] is its data input
    at delay [d+1].  {!unroll} materializes the CBFs as a combinational
    circuit (Fig. 18): input [(i, d)] becomes a primary input named
    ["i@d"], and the cone of every signal is replicated once per distinct
    delay at which it is needed.

    Theorem 5.1: two such circuits are exact 3-valued equivalent iff their
    CBFs are equal — so equivalence of the unrolled circuits (decided by
    {!Cec.check}) decides sequential equivalence.

    Latches designated [exposed] are treated as an I/O boundary: their
    output is a fresh CBF variable ["<latch>@d"] and their data function is
    appended to the unrolled circuit's outputs (so that verification also
    checks the exposed next-state functions).  Exposed latches may be
    load-enabled (their enable is then also checked, as part of the data /
    enable output pair). *)

type info = {
  depth : int;  (** largest delay at which any input variable is used *)
  variables : int;  (** distinct (source, delay) input variables *)
  replication : int;  (** gate instances in the unrolled circuit *)
}

val unroll : ?exposed:(Circuit.signal -> bool) -> Circuit.t -> Circuit.t * info
(** Unrolled combinational circuit.  Its outputs are: the original primary
    outputs (in order) at delay 0, then for every exposed latch (in name
    order) its data CBF, then for every exposed load-enabled latch its
    enable CBF.  Non-exposed latches must be regular.
    @raise Invalid_argument on a non-exposed load-enabled latch or on a
    sequential cycle that contains no exposed latch. *)

val sequential_depth : ?exposed:(Circuit.signal -> bool) -> Circuit.t -> int
(** Topological latch depth (an upper bound on the functional sequential
    depth of Definition 4, which can be lower due to false
    dependencies). *)

val var_name : string -> int -> string
(** [var_name i d] is the unrolled input name for source [i] at delay [d]
    (["i@0" = i] at the current cycle). *)

val functional_depth : ?exposed:(Circuit.signal -> bool) -> Circuit.t -> int
(** The {e functional} sequential depth of Definition 4: the largest delay
    [d] such that some output (or exposed next-state function) truly
    depends on an input at delay [d].  Can be strictly smaller than
    {!sequential_depth} when deep paths carry only false dependencies
    (e.g. logic that cancels, like [q XOR q]).  Detected with BDDs on the
    unrolled circuit. *)
