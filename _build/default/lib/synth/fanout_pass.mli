(** Fanout limiting.

    The paper's library restricts every gate to at most four fanouts "for
    reasonable optimization results"; this pass enforces such a bound by
    inserting buffer trees (each buffer costs one unit of area and delay).
    Function-preserving. *)

val run : max_fanout:int -> Circuit.t -> Circuit.t
(** @raise Invalid_argument if [max_fanout < 2]. *)

val max_fanout : Circuit.t -> int
(** Largest fanout count over gate/input/latch signals (diagnostic). *)
