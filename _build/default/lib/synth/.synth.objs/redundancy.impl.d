lib/synth/redundancy.ml: Array Cec Circuit Comb_view Eval Hashtbl Int64 List Option Random Sweep_pass
