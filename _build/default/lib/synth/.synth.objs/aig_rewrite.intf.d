lib/synth/aig_rewrite.mli: Aig
