lib/synth/redundancy.mli: Circuit
