lib/synth/synth_script.ml: Fanout_pass Rebalance Sweep_pass
