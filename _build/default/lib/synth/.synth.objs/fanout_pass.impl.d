lib/synth/fanout_pass.ml: Array Circuit Hashtbl List Option
