lib/synth/aig_rewrite.ml: Aig Array Hashtbl List
