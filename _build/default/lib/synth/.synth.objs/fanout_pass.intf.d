lib/synth/fanout_pass.mli: Circuit
