lib/synth/rebalance.mli: Circuit
