lib/synth/sweep_pass.mli: Circuit
