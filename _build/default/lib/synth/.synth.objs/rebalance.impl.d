lib/synth/rebalance.ml: Aig Aig_rewrite Array Circuit Hashtbl List Vgraph
