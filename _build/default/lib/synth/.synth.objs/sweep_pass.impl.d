lib/synth/sweep_pass.ml: Array Circuit Hashtbl List Option Set
