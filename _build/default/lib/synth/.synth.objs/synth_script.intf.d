lib/synth/synth_script.mli: Circuit
