(* Values flowing through the rewrite: a constant, or a new-circuit signal
   with a polarity (so double inversions vanish without creating gates). *)
type v = C of bool | S of Circuit.signal * bool

let cneg = function C b -> C (not b) | S (s, p) -> S (s, not p)

let run c =
  Circuit.check c;
  let live = Circuit.seq_cone c (Circuit.outputs c) in
  let nc = Circuit.create (Circuit.name c ^ "_sw") in
  let values = Array.make (Circuit.signal_count c) (C false) in
  let const_cache = Hashtbl.create 2 in
  let not_cache = Hashtbl.create 64 in
  let const_sig b =
    match Hashtbl.find_opt const_cache b with
    | Some s -> s
    | None ->
        let s = if b then Circuit.const_true nc else Circuit.const_false nc in
        Hashtbl.replace const_cache b s;
        s
  in
  let realize = function
    | C b -> const_sig b
    | S (s, false) -> s
    | S (s, true) -> (
        match Hashtbl.find_opt not_cache s with
        | Some n -> n
        | None ->
            let n = Circuit.add_gate nc Not [ s ] in
            Hashtbl.replace not_cache s n;
            n)
  in
  (* inputs (all kept) *)
  List.iter
    (fun s -> values.(s) <- S (Circuit.add_input nc (Circuit.signal_name c s), false))
    (Circuit.inputs c);
  (* live latches: declare outputs up front so gates can reference them *)
  let live_latches = List.filter (fun l -> live.(l)) (Circuit.latches c) in
  List.iter
    (fun l ->
      values.(l) <- S (Circuit.declare nc ~name:(Circuit.signal_name c l) (), false))
    live_latches;
  (* AND/OR with polarity-tracked operands; returns simplified value *)
  let mk_andor ~is_and ~complement operands =
    let absorbing = C (not is_and) and neutral = C is_and in
    let module SS = Set.Make (struct
      type t = int * bool

      let compare = compare
    end) in
    let rec collect acc = function
      | [] -> Some acc
      | C b :: rest ->
          if b = is_and then collect acc rest (* neutral *) else None (* absorbing *)
      | S (s, p) :: rest ->
          if SS.mem (s, not p) acc then None (* x op ~x *)
          else collect (SS.add (s, p) acc) rest
    in
    let v =
      match collect SS.empty operands with
      | None -> absorbing
      | Some set -> (
          match SS.elements set with
          | [] -> neutral
          | [ (s, p) ] -> S (s, p)
          | elts ->
              let fanins = List.map (fun (s, p) -> realize (S (s, p))) elts in
              let fn : Circuit.gate_fn = if is_and then And else Or in
              S (Circuit.add_gate nc fn fanins, false))
    in
    if complement then cneg v else v
  in
  let mk_xor ~complement operands =
    let parity = ref complement in
    let count = Hashtbl.create 8 in
    List.iter
      (fun op ->
        match op with
        | C b -> if b then parity := not !parity
        | S (s, p) ->
            if p then parity := not !parity;
            Hashtbl.replace count s (1 + Option.value (Hashtbl.find_opt count s) ~default:0))
      operands;
    let sigs = Hashtbl.fold (fun s n acc -> if n mod 2 = 1 then s :: acc else acc) count [] in
    match List.sort compare sigs with
    | [] -> C !parity
    | [ s ] -> S (s, !parity)
    | sigs -> S (Circuit.add_gate nc (if !parity then Xnor else Xor) sigs, false)
  in
  let mk_mux s t e =
    match (s, t, e) with
    | C true, _, _ -> t
    | C false, _, _ -> e
    | _, t, e when t = e -> t
    | s, C true, C false -> s
    | s, C false, C true -> cneg s
    | s, t, C false -> mk_andor ~is_and:true ~complement:false [ s; t ]
    | s, C true, e -> mk_andor ~is_and:false ~complement:false [ s; e ]
    | s, t, C true ->
        (* s·t + ~s = t + ~s *)
        mk_andor ~is_and:false ~complement:false [ cneg s; t ]
    | s, C false, e -> mk_andor ~is_and:true ~complement:false [ cneg s; e ]
    | s, t, e -> S (Circuit.add_gate nc Mux [ realize s; realize t; realize e ], false)
  in
  (* gates in topological order, only those in a live cone *)
  List.iter
    (fun g ->
      if live.(g) then
        match Circuit.driver c g with
        | Gate (fn, fs) ->
            let ops = Array.to_list (Array.map (fun f -> values.(f)) fs) in
            let v =
              match (fn, ops) with
              | Const b, _ -> C b
              | Buf, [ a ] -> a
              | Not, [ a ] -> cneg a
              | And, ops -> mk_andor ~is_and:true ~complement:false ops
              | Nand, ops -> mk_andor ~is_and:true ~complement:true ops
              | Or, ops -> mk_andor ~is_and:false ~complement:false ops
              | Nor, ops -> mk_andor ~is_and:false ~complement:true ops
              | Xor, ops -> mk_xor ~complement:false ops
              | Xnor, ops -> mk_xor ~complement:true ops
              | Mux, [ s; t; e ] -> mk_mux s t e
              | (Buf | Not | Mux), _ -> assert false
            in
            values.(g) <- v
        | Undriven | Input | Latch _ -> assert false)
    (Circuit.comb_topo c);
  (* connect live latches *)
  List.iter
    (fun l ->
      let data, enable = Circuit.latch_info c l in
      let out = match values.(l) with S (s, false) -> s | C _ | S _ -> assert false in
      Circuit.set_latch nc out
        ?enable:(Option.map (fun e -> realize values.(e)) enable)
        ~data:(realize values.(data)) ())
    live_latches;
  List.iter (fun o -> Circuit.mark_output nc (realize values.(o))) (Circuit.outputs c);
  Circuit.check nc;
  nc
