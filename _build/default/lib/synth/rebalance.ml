(* Compile the inter-latch combinational logic to an AIG, balance AND trees,
   and regenerate a netlist in the {INV, NAND2} library. *)

let build_aig c =
  let g = Aig.create () in
  let sources = ref [] in
  let src_lit = Hashtbl.create 64 in
  let source s =
    match Hashtbl.find_opt src_lit s with
    | Some l -> l
    | None ->
        let l = Aig.input g in
        Hashtbl.replace src_lit s l;
        sources := s :: !sources;
        l
  in
  let env = Aig.of_circuit_comb g c ~source in
  (g, env, List.rev !sources)

(* Balanced reconstruction into a fresh AIG.  A node is a tree root if it is
   used complemented, has fanout > 1, or feeds a sink; expansion of the AND
   tree stops at roots and inputs. *)
let balance g (sinks : Aig.lit list) =
  let n = Aig.node_count g in
  let fanout = Array.make n 0 in
  let compl_use = Array.make n false in
  let reach = Array.make n false in
  let rec mark n' =
    if not reach.(n') then begin
      reach.(n') <- true;
      if n' > 0 && not (Aig.is_input_node g n') then begin
        let f0, f1 = Aig.fanins g n' in
        let use l =
          let m = Aig.node_of l in
          fanout.(m) <- fanout.(m) + 1;
          if Aig.is_complement l then compl_use.(m) <- true;
          mark m
        in
        use f0;
        use f1
      end
    end
  in
  List.iter
    (fun l ->
      let m = Aig.node_of l in
      fanout.(m) <- fanout.(m) + 1;
      if Aig.is_complement l then compl_use.(m) <- true;
      mark m)
    sinks;
  let is_root n' =
    n' = 0 || Aig.is_input_node g n' || fanout.(n') > 1 || compl_use.(n')
  in
  let g2 = Aig.create () in
  (* inputs of g2 mirror inputs of g, in order *)
  let input_map = Array.make n Aig.lit_false in
  for i = 0 to Aig.num_inputs g - 1 do
    let l = Aig.input_lit g i in
    input_map.(Aig.node_of l) <- Aig.input g2
  done;
  let memo = Array.make n (-1) in
  (* collect the operand leaves of the AND tree rooted at node [n'] *)
  let rec leaves acc n' =
    let f0, f1 = Aig.fanins g n' in
    let expand l acc =
      let m = Aig.node_of l in
      if (not (Aig.is_complement l)) && not (is_root m) then leaves acc m
      else l :: acc
    in
    expand f1 (expand f0 acc)
  in
  let rec build_node n' =
    if memo.(n') >= 0 then memo.(n')
    else begin
      let result =
        if n' = 0 then Aig.lit_false
        else if Aig.is_input_node g n' then input_map.(n')
        else begin
          let ls = leaves [] n' in
          let ls2 = List.map build_lit ls in
          (* combine lowest levels first *)
          let cmp a b =
            compare (Aig.level g2 (Aig.node_of a)) (Aig.level g2 (Aig.node_of b))
          in
          let heap = Vgraph.Heap.create ~cmp ~dummy:Aig.lit_false () in
          List.iter (Vgraph.Heap.add heap) ls2;
          let rec combine () =
            let a = Vgraph.Heap.pop_min heap in
            if Vgraph.Heap.is_empty heap then a
            else begin
              let b = Vgraph.Heap.pop_min heap in
              Vgraph.Heap.add heap (Aig.and_ g2 a b);
              combine ()
            end
          in
          combine ()
        end
      in
      memo.(n') <- result;
      result
    end
  and build_lit l =
    let r = build_node (Aig.node_of l) in
    if Aig.is_complement l then Aig.neg r else r
  in
  let mapped = List.map build_lit sinks in
  (g2, mapped)

(* Regenerate a netlist from an AIG in the chosen style. *)
type style = Nand_inv | And_not

let emit_netlist style nc g2 source_signals lits =
  (* source_signals.(i) is the netlist signal feeding input i of g2 *)
  let n = Aig.node_count g2 in
  let pos = Array.make n (-1) in
  (* signal computing the node positively *)
  let neg_sig = Array.make n (-1) in
  let rec signal_of_node n' =
    if pos.(n') >= 0 then pos.(n')
    else begin
      assert (n' > 0);
      let s =
        if Aig.is_input_node g2 n' then assert false
        else begin
          let f0, f1 = Aig.fanins g2 n' in
          match style with
          | Nand_inv ->
              let nand = Circuit.add_gate nc Nand [ signal_neg_aware f0; signal_neg_aware f1 ] in
              neg_sig.(n') <- nand;
              Circuit.add_gate nc Not [ nand ]
          | And_not -> Circuit.add_gate nc And [ signal_neg_aware f0; signal_neg_aware f1 ]
        end
      in
      pos.(n') <- s;
      s
    end
  and signal_neg_aware l =
    let n' = Aig.node_of l in
    if not (Aig.is_complement l) then signal_of_node n'
    else begin
      (* need the complement of n' *)
      if neg_sig.(n') >= 0 then neg_sig.(n')
      else begin
        let s = Circuit.add_gate nc Not [ signal_of_node n' ] in
        neg_sig.(n') <- s;
        s
      end
    end
  in
  (* pre-assign input nodes *)
  for i = 0 to Aig.num_inputs g2 - 1 do
    let node = Aig.node_of (Aig.input_lit g2 i) in
    pos.(node) <- source_signals.(i)
  done;
  let lit_signal l =
    if l = Aig.lit_false then Circuit.const_false nc
    else if l = Aig.lit_true then Circuit.const_true nc
    else signal_neg_aware l
  in
  List.map lit_signal lits

let optimize ?(rewrite = false) style c =
  Circuit.check c;
  let g, env, sources = build_aig c in
  (* sinks: primary outputs, latch data, latch enables *)
  let outs = List.map (fun o -> env.Aig.of_signal.(o)) (Circuit.outputs c) in
  let latch_sinks =
    List.concat_map
      (fun l ->
        let data, enable = Circuit.latch_info c l in
        let d = env.Aig.of_signal.(data) in
        match enable with
        | None -> [ d ]
        | Some e -> [ d; env.Aig.of_signal.(e) ])
      (Circuit.latches c)
  in
  let sinks = outs @ latch_sinks in
  let g, sinks =
    if rewrite then Aig_rewrite.rewrite g ~sinks else (g, sinks)
  in
  let g2, mapped = balance g sinks in
  (* build the new netlist *)
  let nc = Circuit.create (Circuit.name c ^ "_bal") in
  let new_of_src = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let ns =
        match Circuit.driver c s with
        | Input -> Circuit.add_input nc (Circuit.signal_name c s)
        | Latch _ -> Circuit.declare nc ~name:(Circuit.signal_name c s) ()
        | Undriven | Gate _ -> assert false
      in
      Hashtbl.replace new_of_src s ns)
    sources;
  (* inputs of c that never reached the AIG still must exist *)
  List.iter
    (fun s ->
      if not (Hashtbl.mem new_of_src s) then
        Hashtbl.replace new_of_src s (Circuit.add_input nc (Circuit.signal_name c s)))
    (Circuit.inputs c);
  (* latch outputs that are not sources of any cone (dangling) are dropped *)
  let source_signals =
    Array.of_list (List.map (fun s -> Hashtbl.find new_of_src s) sources)
  in
  let mapped_signals = emit_netlist style nc g2 source_signals mapped in
  let n_out = List.length (Circuit.outputs c) in
  let out_signals = List.filteri (fun i _ -> i < n_out) mapped_signals in
  let rest = List.filteri (fun i _ -> i >= n_out) mapped_signals in
  (* reconnect latches *)
  let rest = ref rest in
  let take () =
    match !rest with
    | [] -> assert false
    | x :: tl ->
        rest := tl;
        x
  in
  List.iter
    (fun l ->
      let _, enable = Circuit.latch_info c l in
      let data = take () in
      let en = match enable with None -> None | Some _ -> Some (take ()) in
      match Hashtbl.find_opt new_of_src l with
      | Some out -> Circuit.set_latch nc out ?enable:en ~data ()
      | None ->
          (* the latch output feeds nothing: recreate it anyway to keep the
             latch count honest only if it is live; dangling latches are
             dropped (sweep semantics) *)
          ())
    (Circuit.latches c);
  List.iter (Circuit.mark_output nc) out_signals;
  Circuit.check nc;
  nc

let run ?rewrite c = optimize ?rewrite Nand_inv c
let balance_only c = optimize And_not c
