(** Delay-oriented restructuring (the working core of our SIS
    ["script.delay"] stand-in).

    The combinational logic between latch/IO boundaries is compiled into a
    structurally hashed AIG, every AND tree is rebuilt balanced
    (lowest-level operands first, as in ABC's [balance]), and the result is
    mapped back to the paper's library — inverters and 2-input NAND gates —
    with complement edges absorbed into NAND outputs.  Latch positions,
    input names and output order are preserved. *)

val run : ?rewrite:bool -> Circuit.t -> Circuit.t
(** With [~rewrite:true] (default false) the AIG is first restructured by
    {!Aig_rewrite.rewrite}. *)

val balance_only : Circuit.t -> Circuit.t
(** Same pipeline but mapped back through generic 2-input AND/NOT gates
    (useful to inspect the balancing in isolation). *)
