(* 16-bit truth tables over <= 4 variables: variable i has the canonical
   pattern [patterns.(i)]; an assignment m in 0..15 reads bit m. *)
let patterns = [| 0xAAAA; 0xCCCC; 0xF0F0; 0xFF00 |]

let tt_mask = 0xFFFF

(* ---- cut enumeration ---- *)

let merge_cuts a b ~max_leaves =
  let merged = List.sort_uniq compare (a @ b) in
  if List.length merged <= max_leaves then Some merged else None

let dominates a b =
  (* cut a dominates b if a ⊆ b (a is at least as good) *)
  List.for_all (fun x -> List.mem x b) a

let add_cut cuts cut =
  if List.exists (fun c -> dominates c cut) cuts then cuts
  else cut :: List.filter (fun c -> not (dominates cut c)) cuts

let cuts g ~node ~max_leaves ~max_cuts =
  (* bottom-up over the cone; memoized per node *)
  let memo = Hashtbl.create 64 in
  let rec go n =
    match Hashtbl.find_opt memo n with
    | Some cs -> cs
    | None ->
        let cs =
          if n = 0 || Aig.is_input_node g n then [ [ n ] ]
          else begin
            let f0, f1 = Aig.fanins g n in
            let c0 = go (Aig.node_of f0) in
            let c1 = go (Aig.node_of f1) in
            let merged =
              List.concat_map
                (fun a ->
                  List.filter_map (fun b -> merge_cuts a b ~max_leaves) c1)
                c0
            in
            let all = List.fold_left add_cut [ [ n ] ] merged in
            (* keep the smallest few to bound the work *)
            let sorted =
              List.sort (fun a b -> compare (List.length a) (List.length b)) all
            in
            List.filteri (fun i _ -> i < max_cuts) sorted
          end
        in
        Hashtbl.replace memo n cs;
        cs
  in
  go node

(* ---- truth tables ---- *)

let truth_table g ~node ~leaves =
  if List.length leaves > 4 then invalid_arg "Aig_rewrite.truth_table: > 4 leaves";
  let leaf_tt = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace leaf_tt l patterns.(i)) leaves;
  let memo = Hashtbl.create 16 in
  let rec go n =
    match Hashtbl.find_opt leaf_tt n with
    | Some tt -> tt
    | None -> (
        match Hashtbl.find_opt memo n with
        | Some tt -> tt
        | None ->
            if n = 0 then 0
            else if Aig.is_input_node g n then
              invalid_arg "Aig_rewrite.truth_table: cone escapes the leaves"
            else begin
              let f0, f1 = Aig.fanins g n in
              let t0 = go (Aig.node_of f0) in
              let t0 = if Aig.is_complement f0 then lnot t0 land tt_mask else t0 in
              let t1 = go (Aig.node_of f1) in
              let t1 = if Aig.is_complement f1 then lnot t1 land tt_mask else t1 in
              let tt = t0 land t1 in
              Hashtbl.replace memo n tt;
              tt
            end)
  in
  go node

(* ---- resynthesis from a truth table ---- *)

(* Shannon decomposition into [g2], reusing hash-consed nodes.  [vars] are
   the leaf literals in [g2], variable i with pattern patterns.(i). *)
(* positive/negative cofactor of [tt] on variable [i], expanded back to a
   full (variable-i-independent) table *)
let cofactor tt i keep =
  let r = ref 0 in
  for m = 0 to 15 do
    let m' = if (m lsr i) land 1 = keep then m else m lxor (1 lsl i) in
    r := !r lor (((tt lsr m') land 1) lsl m)
  done;
  !r

let rec synth_tt g2 vars tt =
  if tt = 0 then Aig.lit_false
  else if tt = tt_mask then Aig.lit_true
  else begin
    (* Shannon-decompose on the first variable the function depends on *)
    let rec pick i =
      if i >= Array.length vars then None
      else
        let f1 = cofactor tt i 1 and f0 = cofactor tt i 0 in
        if f1 <> f0 then Some (i, f0, f1) else pick (i + 1)
    in
    match pick 0 with
    | None -> assert false (* non-constant table must depend on something *)
    | Some (i, f0, f1) ->
        let v = vars.(i) in
        let hi = synth_tt g2 vars f1 in
        let lo = synth_tt g2 vars f0 in
        Aig.mux g2 v hi lo
  end

(* ---- the rewriting pass ---- *)

let rewrite g ~sinks =
  let n = Aig.node_count g in
  let g2 = Aig.create () in
  let map = Array.make n (-1) in
  map.(0) <- Aig.lit_false;
  (* cuts computed bottom-up once, shared across the pass *)
  let all_cuts : int list list array = Array.make n [] in
  all_cuts.(0) <- [ [ 0 ] ];
  let max_leaves = 4 and max_cuts = 6 in
  let lit_map l =
    let m = map.(Aig.node_of l) in
    assert (m >= 0);
    if Aig.is_complement l then Aig.neg m else m
  in
  for node = 1 to n - 1 do
    (if Aig.is_input_node g node then all_cuts.(node) <- [ [ node ] ]
     else begin
       let f0, f1 = Aig.fanins g node in
       let c0 = all_cuts.(Aig.node_of f0) in
       let c1 = all_cuts.(Aig.node_of f1) in
       let merged =
         List.concat_map
           (fun a -> List.filter_map (fun b -> merge_cuts a b ~max_leaves) c1)
           c0
       in
       let all = List.fold_left add_cut [ [ node ] ] merged in
       let sorted =
         List.sort (fun a b -> compare (List.length a) (List.length b)) all
       in
       all_cuts.(node) <- List.filteri (fun i _ -> i < max_cuts) sorted
     end);
    if Aig.is_input_node g node then map.(node) <- Aig.input g2
    else begin
      let f0, f1 = Aig.fanins g node in
      (* default: structural copy; count the fresh nodes it materializes *)
      let snap0 = Aig.node_count g2 in
      let default = Aig.and_ g2 (lit_map f0) (lit_map f1) in
      let best = ref default in
      let best_fresh = ref (Aig.node_count g2 - snap0) in
      (* candidates: resynthesize each non-trivial 4-cut; keep whichever
         implementation materializes the fewest fresh nodes (rejected trial
         nodes stay in g2 unused; only sink cones are emitted later) *)
      List.iter
        (fun cut ->
          match cut with
          | [ single ] when single = node -> ()
          | leaves -> (
              match truth_table g ~node ~leaves with
              | tt ->
                  let vars = Array.of_list (List.map (fun l -> map.(l)) leaves) in
                  if Array.for_all (fun v -> v >= 0) vars then begin
                    let snapshot = Aig.node_count g2 in
                    let cand = synth_tt g2 vars tt in
                    let fresh = Aig.node_count g2 - snapshot in
                    if fresh < !best_fresh then begin
                      best := cand;
                      best_fresh := fresh
                    end
                  end
              | exception Invalid_argument _ -> ()))
        all_cuts.(node);
      map.(node) <- !best
    end
  done;
  (g2, List.map lit_map sinks)
