(** Cut-based AIG rewriting (the restructuring step of the synthesis
    script, standing in for SIS's [simplify]/[fx]).

    For every AND node, 4-feasible cuts are enumerated; each cut's 16-entry
    truth table is resynthesized by Shannon decomposition (reusing existing
    nodes through structural hashing), and the cheapest implementation —
    original or resynthesized — wins.  Rewriting is function-preserving by
    construction and typically removes the redundancy that a random or
    legacy netlist accumulates. *)

val rewrite : Aig.t -> sinks:Aig.lit list -> Aig.t * Aig.lit list
(** Returns a fresh AIG and the images of [sinks].  Nodes not reachable
    from the sinks are dropped. *)

val cuts : Aig.t -> node:int -> max_leaves:int -> max_cuts:int -> int list list
(** The enumerated cuts of a node (each cut a sorted list of leaf nodes,
    including the trivial cut [[node]]); exposed for tests. *)

val truth_table : Aig.t -> node:int -> leaves:int list -> int
(** 16-bit truth table of [node] over up to 4 [leaves] (entry [i] = value
    under the assignment encoded by [i]'s bits, leaf 0 = LSB).
    @raise Invalid_argument if the node's cone is not covered by the
    leaves or there are more than 4. *)
