(** Netlist cleanup ("sweep" in SIS): constant propagation, buffer and
    double-inverter collapsing, removal of logic and latches that reach no
    primary output.  Function-preserving; latch positions of live latches
    are unchanged.  Primary inputs are all kept (the interface is part of
    the circuit's identity). *)

val run : Circuit.t -> Circuit.t
