(** SAT-based redundancy removal.

    A gate fanin is {e stuck-at redundant} when tying it to a constant does
    not change any combinational sink function (primary outputs, latch data
    and enables).  Such connections are untestable faults; removing them is
    the classical ATPG-flavoured cleanup the paper mentions when discussing
    AQUILA-style flows ("redundancy identification and removal").

    Candidates are screened with 256-pattern parallel simulation, then
    confirmed with an incremental SAT miter; each committed removal
    restarts screening on the simplified circuit (a removal can expose
    further redundancies).  Function-preserving on the sequential circuit;
    latch positions unchanged. *)

type report = {
  removed : int;  (** connections tied to constants *)
  sat_calls : int;
  area_before : int;
  area_after : int;
}

val run : ?max_rounds:int -> Circuit.t -> Circuit.t * report
(** [run c]: each round scans for the first provable redundancy, commits
    it, and rescans (a removal changes downstream testability); stops when
    a scan finds nothing or after [max_rounds] (default 50) commits, then
    sweeps. *)
