(** The synthesis script of Fig. 17 ("script.delay", modified), as a
    composable pipeline:

    sweep → balance/remap into the INV+NAND2 library → optional fanout
    limiting → final sweep.

    Function-preserving on the sequential circuit (latch positions fixed
    between passes — this is pure combinational synthesis in the paper's
    sense). *)

type options = {
  fanout_limit : int option;  (** paper uses 4; [None] disables the pass *)
  final_sweep : bool;
  rewrite : bool;  (** cut-based AIG rewriting ({!Aig_rewrite}) before balancing *)
}

val default_options : options

val delay_script : ?options:options -> Circuit.t -> Circuit.t
(** The full pipeline. *)

val quick_cleanup : Circuit.t -> Circuit.t
(** Just the sweep (constant propagation + dead logic removal). *)
