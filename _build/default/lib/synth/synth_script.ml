type options = { fanout_limit : int option; final_sweep : bool; rewrite : bool }

let default_options = { fanout_limit = Some 4; final_sweep = true; rewrite = false }

let delay_script ?(options = default_options) c =
  let c = Sweep_pass.run c in
  let c = Rebalance.run ~rewrite:options.rewrite c in
  (* sweep before fanout limiting: the sweep collapses buffers, so it must
     not run after them *)
  let c = if options.final_sweep then Sweep_pass.run c else c in
  match options.fanout_limit with
  | None -> c
  | Some k -> Fanout_pass.run ~max_fanout:k c

let quick_cleanup c = Sweep_pass.run c
