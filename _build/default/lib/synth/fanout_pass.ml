let max_fanout c =
  Array.fold_left max 0 (Circuit.fanout_counts c)

(* Rebuild the circuit; every signal with more than [k] consumers feeds a
   buffer tree whose leaves are handed out to consumers round-robin. *)
let run ~max_fanout:k c =
  if k < 2 then invalid_arg "Fanout_pass.run: max_fanout must be >= 2";
  Circuit.check c;
  let counts = Circuit.fanout_counts c in
  let nc = Circuit.create (Circuit.name c ^ "_fo") in
  let base = Hashtbl.create 64 in
  (* taps.(s) = remaining list of new signals to hand to consumers of s *)
  let taps : (Circuit.signal, Circuit.signal list) Hashtbl.t = Hashtbl.create 64 in
  (* Build a tree over [s] with [n] usable leaves, each node driving <= k
     children; the root occupies one of the driver's k slots.  Returns leaf
     list. *)
  let build_taps s n =
    let root = Hashtbl.find base s in
    if n <= k then List.init n (fun _ -> root)
    else begin
      (* the root can drive up to k buffers; distribute n leaves among
         ceil(n/k) groups recursively *)
      let rec layer srcs need =
        (* srcs: signals currently available; need: leaves required *)
        let cap = k * List.length srcs in
        if cap >= need then begin
          (* hand out leaves: each src replicated up to k times *)
          let rec emit srcs need acc =
            match srcs with
            | [] -> List.rev acc
            | src :: rest ->
                let take = min k need in
                let acc = List.rev_append (List.init take (fun _ -> src)) acc in
                if need - take = 0 then List.rev acc else emit rest (need - take) acc
          in
          emit srcs need []
        end
        else begin
          (* expand: each src becomes k buffers *)
          let next =
            List.concat_map
              (fun src -> List.init k (fun _ -> Circuit.add_gate nc Buf [ src ]))
              srcs
          in
          layer next need
        end
      in
      layer [ root ] n
    end
  in
  let consume s =
    let remaining =
      match Hashtbl.find_opt taps s with
      | Some l -> l
      | None -> build_taps s counts.(s)
    in
    match remaining with
    | [] -> assert false
    | x :: rest ->
        Hashtbl.replace taps s rest;
        x
  in
  (* declare all signals *)
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Input -> Hashtbl.replace base s (Circuit.add_input nc (Circuit.signal_name c s))
    | Undriven -> ()
    | Gate _ | Latch _ ->
        Hashtbl.replace base s (Circuit.declare nc ~name:(Circuit.signal_name c s) ())
  done;
  (* drive gates and latches through taps *)
  for s = 0 to Circuit.signal_count c - 1 do
    match Circuit.driver c s with
    | Undriven | Input -> ()
    | Gate (fn, fs) ->
        Circuit.set_gate nc (Hashtbl.find base s) fn
          (Array.to_list (Array.map consume fs))
    | Latch { data; enable } ->
        Circuit.set_latch nc (Hashtbl.find base s)
          ?enable:(Option.map consume enable)
          ~data:(consume data) ()
  done;
  List.iter (fun o -> Circuit.mark_output nc (consume o)) (Circuit.outputs c);
  Circuit.check nc;
  nc
