(** Sequential simulation and the exact 3-valued equivalence oracle.

    Semantics (paper, Section 3): all latches share one clock; a
    load-enabled latch updates iff its enable evaluates true this cycle,
    otherwise it holds.  Outputs of cycle [t] are combinational functions of
    the inputs at [t] and the state at [t]; the state then updates.  Latches
    power up non-deterministically. *)

type tv = F | T | X
(** Three-valued logic; [X] is unknown / undefined. *)

val tv_pp : Format.formatter -> tv -> unit

val tv_equal : tv -> tv -> bool

(** {1 Two-valued simulation} *)

val step :
  Circuit.t -> state:bool array -> inputs:bool array -> bool array * bool array
(** [step c ~state ~inputs] is [(outputs, next_state)].  [state] is indexed
    in [Circuit.latches] order, [inputs] in [Circuit.inputs] order. *)

val run :
  Circuit.t -> init:bool array -> inputs:bool array list -> bool array list
(** Outputs per cycle for a fixed power-up state. *)

(** {1 Conservative three-valued simulation} *)

val run_3v : Circuit.t -> inputs:bool array list -> tv array list
(** Classic X-propagation simulation with all latches starting at [X].  May
    report [X] where the exact semantics has a defined value (Fig. 1). *)

(** {1 Exact three-valued semantics} *)

val run_exact : ?max_latches:int -> Circuit.t -> inputs:bool array list -> tv array list
(** Output function [O_C(π)] of Definition 1: the value if every power-up
    state produces it, [X] (⊥) otherwise.  Enumerates all [2^L] power-up
    states.  @raise Invalid_argument if the circuit has more than
    [max_latches] (default 16) latches. *)

val equivalent_exact :
  ?max_latches:int ->
  Circuit.t ->
  Circuit.t ->
  input_seqs:bool array list list ->
  (bool array list * tv array list * tv array list) option
(** Checks exact 3-valued equivalence on the given input sequences; returns
    a distinguishing sequence and the two output traces on mismatch. *)

val all_input_seqs : Circuit.t -> depth:int -> bool array list list
(** All input sequences of the given length (use only for tiny circuits). *)

val random_input_seq :
  Random.State.t -> Circuit.t -> cycles:int -> bool array list
